// The paper's science case (Figs. 1b, 2, 7), scaled to laptop size: a
// femtosecond laser hits a *hybrid solid-gas target* — a solid foil (plasma
// mirror) with gas in front of it. The reflection ejects dense electron
// bunches from the solid surface (injection stage); the reflected pulse then
// drives a wakefield in the gas that traps and accelerates them
// (acceleration stage). A mesh-refinement patch covers the solid target
// (which needs the highest resolution), follows the moving window, and is
// removed once the target leaves the window — the mechanism behind the
// paper's 1.5-4x time-to-solution savings (Fig. 6).
//
// Reduced-geometry note: the paper's 3D case uses 45-degree incidence; in
// this 2D reduction the laser is emitted leftward from an antenna on the
// right, reflects off the foil at normal incidence (plasma-mirror injection
// per the paper's Ref. [19]) and the +x moving window follows the
// *reflected* pulse through the gas.
//
// Run: ./hybrid_target_mr [--outdir DIR] [--no-mr] [--insitu] [--memory]
//                         [--node-budget-gb G] [t_end_fs]
// With --memory, the byte ledger runs alongside: per-step mem_* gauges in
// the metrics, and a final measured-vs-analytic MR memory-savings print
// (the memory half of the Fig. 6 affordability argument).
// With --insitu, the in-situ physics registry (src/insitu) additionally
// tracks beam moments/emittance, spectrum peak/FWHM, laser a0/centroid,
// wakefield amplitude and per-level field energy at their cadences
// (hybrid_insitu.jsonl) and streams downsampled field slices + a beam
// phase-space histogram (hybrid_stream.*.bin + manifest).
// Output (in --outdir, default out/): hybrid_history.csv,
//         hybrid_spectrum.csv, hybrid_field.csv, hybrid_phase_space.csv

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "src/core/simulation.hpp"
#include "src/diag/csv_writer.hpp"
#include "src/diag/output_dir.hpp"
#include "src/diag/phase_space.hpp"
#include "src/diag/spectrum.hpp"

#include "example_args.hpp"

using namespace mrpic;
using namespace mrpic::constants;

int main(int argc, char** argv) {
  const auto out = diag::OutputDir::from_args(argc, argv);
  const auto args = examples::parse_example_args(argc, argv, /*default fs*/ 150.0);
  const bool use_mr = !args.no_mr;
  const bool with_insitu = args.insitu;
  const Real t_end = args.t_end;

  const Real wavelength = 0.8e-6;
  const Real nc = plasma::critical_density(wavelength);

  // 30 x 10 um window; 0.05 um (lambda/16) longitudinal, 0.2 um transverse.
  core::SimulationConfig<2> cfg;
  cfg.domain = Box2(IntVect2(0, 0), IntVect2(599, 49));
  cfg.prob_lo = RealVect2(0, 0);
  cfg.prob_hi = RealVect2(30e-6, 10e-6);
  cfg.periodic = {false, false};
  cfg.use_pml = true;
  cfg.pml.npml = 10;
  cfg.max_grid_size = IntVect2(150, 50);
  cfg.shape_order = 3;
  // Remove the MR patch once the window has moved past the foil (at 4.5 um).
  cfg.mr_remove_when_lo_above = 4.6e-6;

  core::Simulation<2> sim(cfg);
  if (args.memory) { sim.enable_memory_obs(args.memory_cfg()); }

  // Hybrid target: foil at 3..4.5 um (15 n_c; the fine patch resolves its
  // ~35 nm skin depth), gas from 5.5 um onward (0.01 n_c, plasma wavelength
  // ~8 um). Paper values: solid 50-55 n_c, gas 2.34e18 cm^-3.
  const Real n_gas = 0.025 * nc;
  const Real n_solid = 15 * nc;
  plasma::InjectorConfig<2> gas_inj;
  gas_inj.density = plasma::gas_jet<2>(n_gas, 5.5e-6, 800e-6, 2e-6);
  gas_inj.ppc = IntVect2(1, 2); // paper: two gas species at 2x2(x2)/1x1(x2)
  const int gas_e = sim.add_species(particles::Species::electron("gas_electrons"), gas_inj);

  plasma::InjectorConfig<2> solid_inj;
  solid_inj.density = plasma::slab<2>(n_solid, 3e-6, 4.5e-6);
  solid_inj.ppc = IntVect2(3, 2); // paper: 3x2(x3) for solid electrons
  const int solid_e =
      sim.add_species(particles::Species::electron("solid_electrons"), solid_inj);
  plasma::InjectorConfig<2> ion_inj = solid_inj;
  sim.add_species(particles::Species::proton("solid_ions"), ion_inj);

  // Laser emitted leftward from x = 20 um (the antenna radiates both ways;
  // the right-going half exits through the PML), focused on the foil.
  laser::LaserConfig lc;
  lc.a0 = 6.0;
  lc.wavelength = wavelength;
  lc.waist = 3e-6;
  lc.duration = 9e-15;
  lc.t_peak = 16e-15;
  lc.x_antenna = 20e-6;
  lc.center = {5e-6, 0};
  lc.polarization = 1; // in-plane (p-like) polarization drives extraction
  sim.add_laser(lc);

  if (use_mr) {
    // Patch over the foil and the vacuum gap in front of it.
    mr::MRPatch<2>::Config pcfg;
    pcfg.region = Box2(IntVect2(40, 4), IntVect2(139, 45)); // 2..7 um
    pcfg.ratio = 2;
    pcfg.transition_cells = 2;
    pcfg.pml.npml = 8;
    sim.enable_mr_patch(pcfg);
  }
  // The reflected pulse forms at ~70 fs; follow it from 75 fs on.
  sim.set_moving_window(0, c, /*start_time=*/75e-15);

  // Injected-beam diagnostics through the insitu registry: the final
  // spectrum print/CSV below always goes through it (one code path);
  // --insitu turns on the cadence series and the streaming exporter.
  const Real mev = 1e6 * q_e;
  insitu::InsituConfig icfg;
  icfg.beam_species = solid_e;
  icfg.beam_e_min_J = 0.5 * mev;
  icfg.spectrum_e_min_J = 0.5 * mev;
  icfg.spectrum_e_max_J = 40 * mev;
  icfg.spectrum_bins = 80;
  if (with_insitu) {
    icfg.moments_interval = 10;
    icfg.spectrum_interval = 50;
    icfg.laser_interval = 10;
    icfg.wakefield_interval = 10;
    icfg.field_energy_interval = 10; // per-level: fine_* keys while MR is on
    icfg.series_path = out.path("hybrid_insitu.jsonl");
    icfg.stream_interval = 100;
    icfg.stream_downsample = 4;
    icfg.stream.basename = out.path("hybrid_stream");
    icfg.stream.max_file_bytes = 1u << 20;
    icfg.stream.max_files = 4;
    icfg.phase_space.ax = diag::Axis::Energy;
    icfg.phase_space.ay = diag::Axis::Ux;
    icfg.phase_space.a_max = 40 * mev;
    icfg.phase_space.b_min = -5 * c;
    icfg.phase_space.b_max = 40 * c;
    icfg.phase_space.na = 160;
    icfg.phase_space.nb = 90;
  } else {
    icfg.moments_interval = icfg.spectrum_interval = icfg.laser_interval =
        icfg.wakefield_interval = icfg.field_energy_interval = 0;
  }
  sim.enable_insitu(icfg);

  sim.init();

  std::printf("hybrid target (%s): gas %.3f n_c, solid %.0f n_c, a0 = %.0f, %lld particles\n",
              use_mr ? "with MR" : "no MR", n_gas / nc, n_solid / nc, lc.a0,
              static_cast<long long>(sim.total_particles()));

  diag::CsvSeries history({"t_fs", "charge_above_1MeV_pC", "solid_charge_pC",
                           "field_energy_J", "active_cells", "patch_active"});
  while (sim.time() < t_end) {
    sim.step();
    if (sim.step_count() % 100 == 0) {
      Real q_solid = diag::charge_above<2>(sim.species_level0(solid_e), 1 * mev) +
                     diag::charge_above<2>(sim.species_patch(solid_e), 1 * mev);
      Real q_all = q_solid + diag::charge_above<2>(sim.species_level0(gas_e), 1 * mev) +
                   diag::charge_above<2>(sim.species_patch(gas_e), 1 * mev);
      const bool patch_on = sim.patch() != nullptr && sim.patch()->active();
      history.add_row({sim.time() * 1e15, q_all * 1e12, q_solid * 1e12,
                       sim.fields().field_energy(),
                       static_cast<Real>(sim.active_cells()),
                       patch_on ? Real(1) : Real(0)});
      std::printf("t = %6.1f fs  beam>1MeV = %9.1f pC/m (from solid: %9.1f)  %s\n",
                  sim.time() * 1e15, q_all * 1e12, q_solid * 1e12,
                  patch_on ? "[MR patch active]" : "");
    }
  }

  // Fig. 7b analogue: spectrum of the injected (solid) electrons, forced
  // through the insitu registry so the print, the CSV, the insitu_* gauges
  // and the JSONL series come from one computation.
  sim.insitu()->collect(sim.step_count(), sim.time(), /*force=*/true);
  const auto& summary = *sim.last_spectrum();
  const auto& spec = summary.spectrum;
  const auto& beam = summary.beam;
  std::printf("\ninjected-beam spectrum: peak %.2f MeV, spread %.1f%%, charge %.3f nC/m\n",
              beam.peak_energy / mev, 100 * beam.energy_spread, beam.charge * 1e9);
  const auto& mom = *sim.last_beam_moments();
  std::printf("injected beam (>0.5 MeV): norm. emittance %.3f mm mrad, <gamma> %.1f\n",
              mom.emit_ny * 1e6, mom.mean_gamma);

  diag::CsvSeries spec_csv({"energy_MeV", "dN"});
  for (std::size_t b = 0; b < spec.counts.size(); ++b) {
    spec_csv.add_row({spec.bin_center(b) / mev, spec.counts[b]});
  }
  spec_csv.write(out.path("hybrid_spectrum.csv"));
  history.write(out.path("hybrid_history.csv"));

  // Longitudinal phase space x-u_x of the trapped beam (Fig. 2-style view).
  diag::PhaseSpaceConfig psc;
  psc.ax = diag::Axis::X0;
  psc.ay = diag::Axis::Ux;
  psc.a_min = sim.geom().prob_lo()[0];
  psc.a_max = sim.geom().prob_hi()[0];
  psc.b_min = -5 * c;
  psc.b_max = 40 * c;
  psc.na = 160;
  psc.nb = 90;
  diag::PhaseSpace ps(psc);
  ps.accumulate(sim.species_level0(solid_e));
  ps.accumulate(sim.species_patch(solid_e));
  ps.accumulate(sim.species_level0(gas_e));
  ps.write(out.path("hybrid_phase_space.csv"));
  diag::write_field_2d(out.path("hybrid_field.csv"), sim.fields().E(), fields::Y);
  if (args.memory) {
    const auto& ledger = obs::memory_ledger();
    std::printf("\nmemory: %s live (high water %s), checkpoint staging peak %s\n",
                obs::format_bytes(double(ledger.total_current())).c_str(),
                obs::format_bytes(double(ledger.total_high_water())).c_str(),
                obs::format_bytes(double(ledger.high_water("checkpoint"))).c_str());
    if (use_mr) {
      const auto measured = sim.measured_mr_savings();
      const auto analytic = obs::analytic_mr_savings(sim.mr_savings_inputs());
      std::printf("memory: MR savings vs uniform fine grid — measured %.2fx, "
                  "analytic %.2fx\n",
                  measured.factor, analytic.factor);
    }
  }
  std::printf("wrote hybrid_{history,spectrum,field,phase_space}.csv in %s/\n",
              out.dir().c_str());
  sim.profiler().report(std::cout);
  return 0;
}
