// The paper's science case (Figs. 1b, 2, 7), scaled to laptop size: a
// femtosecond laser hits a *hybrid solid-gas target* — a solid foil (plasma
// mirror) with gas in front of it. The reflection ejects dense electron
// bunches from the solid surface (injection stage); the reflected pulse then
// drives a wakefield in the gas that traps and accelerates them
// (acceleration stage). A mesh-refinement patch covers the solid target
// (which needs the highest resolution), follows the moving window, and is
// removed once the target leaves the window — the mechanism behind the
// paper's 1.5-4x time-to-solution savings (Fig. 6).
//
// The target/laser/patch setup lives in the scenario library
// ("hybrid_target_mr") and is assembled by scenario::build_simulation; this
// driver keeps the example's charge-tracking loop and Fig. 7b-style
// spectrum/phase-space reporting.
//
// Reduced-geometry note: the paper's 3D case uses 45-degree incidence; in
// this 2D reduction the laser is emitted leftward from an antenna on the
// right, reflects off the foil at normal incidence (plasma-mirror injection
// per the paper's Ref. [19]) and the +x moving window follows the
// *reflected* pulse through the gas.
//
// Run: ./hybrid_target_mr [--outdir DIR] [--no-mr] [--insitu] [--memory]
//                         [--node-budget-gb G] [t_end_fs]
// With --memory, the byte ledger runs alongside: per-step mem_* gauges in
// the metrics, and a final measured-vs-analytic MR memory-savings print
// (the memory half of the Fig. 6 affordability argument).
// With --insitu, the in-situ physics registry (src/insitu) additionally
// tracks beam moments/emittance, spectrum peak/FWHM, laser a0/centroid,
// wakefield amplitude and per-level field energy at their cadences
// (hybrid_insitu.jsonl) and streams downsampled field slices + a beam
// phase-space histogram (hybrid_stream.*.bin + manifest).
// Output (in --outdir, default out/): hybrid_history.csv,
//         hybrid_spectrum.csv, hybrid_field.csv, hybrid_phase_space.csv

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "src/core/simulation.hpp"
#include "src/diag/csv_writer.hpp"
#include "src/diag/output_dir.hpp"
#include "src/diag/phase_space.hpp"
#include "src/diag/spectrum.hpp"
#include "src/scenario/builder.hpp"
#include "src/scenario/library.hpp"

#include "example_args.hpp"

using namespace mrpic;
using namespace mrpic::constants;

int main(int argc, char** argv) {
  const auto out = diag::OutputDir::from_args(argc, argv);
  const auto args = examples::parse_example_args(argc, argv, /*default fs*/ 150.0);
  const bool use_mr = !args.no_mr;
  const bool with_insitu = args.insitu;
  const Real t_end = args.t_end;

  scenario::ScenarioSpec spec = scenario::make_hybrid_target_mr();
  scenario::BuildOptions bopt;
  bopt.no_mr = args.no_mr;
  bopt.init = false; // observability first, then init
  auto sim_ptr = scenario::build_simulation(spec, bopt);
  core::Simulation<2>& sim = *sim_ptr;
  const int gas_e = 0, solid_e = 1; // the spec's species order

  if (args.memory) { sim.enable_memory_obs(args.memory_cfg()); }
  if (args.health) {
    health::MonitorConfig hcfg = spec.health;
    hcfg.alerts_path = out.path("hybrid_alerts.jsonl");
    sim.enable_health(hcfg);
  }

  // Injected-beam diagnostics through the insitu registry: the final
  // spectrum print/CSV below always goes through it (one code path);
  // --insitu turns on the cadence series and the streaming exporter.
  const Real mev = 1e6 * q_e;
  insitu::InsituConfig icfg = spec.insitu;
  if (with_insitu) {
    icfg.series_path = out.path("hybrid_insitu.jsonl");
    icfg.stream.basename = out.path("hybrid_stream");
  } else {
    icfg.moments_interval = icfg.spectrum_interval = icfg.laser_interval =
        icfg.wakefield_interval = icfg.field_energy_interval = 0;
    icfg.stream_interval = 0;
  }
  sim.enable_insitu(icfg);

  sim.init();

  std::printf("hybrid target (%s): gas %.3f n_c, solid %.0f n_c, a0 = %.0f, %lld particles\n",
              use_mr ? "with MR" : "no MR", 0.025, 15.0, spec.lasers[0].a0,
              static_cast<long long>(sim.total_particles()));

  diag::CsvSeries history({"t_fs", "charge_above_1MeV_pC", "solid_charge_pC",
                           "field_energy_J", "active_cells", "patch_active"});
  while (sim.time() < t_end) {
    sim.step();
    if (spec.cadences.diagnostics.due(sim.step_count())) {
      Real q_solid = diag::charge_above<2>(sim.species_level0(solid_e), 1 * mev) +
                     diag::charge_above<2>(sim.species_patch(solid_e), 1 * mev);
      Real q_all = q_solid + diag::charge_above<2>(sim.species_level0(gas_e), 1 * mev) +
                   diag::charge_above<2>(sim.species_patch(gas_e), 1 * mev);
      const bool patch_on = sim.patch() != nullptr && sim.patch()->active();
      history.add_row({sim.time() * 1e15, q_all * 1e12, q_solid * 1e12,
                       sim.fields().field_energy(),
                       static_cast<Real>(sim.active_cells()),
                       patch_on ? Real(1) : Real(0)});
      std::printf("t = %6.1f fs  beam>1MeV = %9.1f pC/m (from solid: %9.1f)  %s\n",
                  sim.time() * 1e15, q_all * 1e12, q_solid * 1e12,
                  patch_on ? "[MR patch active]" : "");
    }
  }

  // Fig. 7b analogue: spectrum of the injected (solid) electrons, forced
  // through the insitu registry so the print, the CSV, the insitu_* gauges
  // and the JSONL series come from one computation.
  sim.insitu()->collect(sim.step_count(), sim.time(), /*force=*/true);
  const auto& summary = *sim.last_spectrum();
  const auto& spectrum = summary.spectrum;
  const auto& beam = summary.beam;
  std::printf("\ninjected-beam spectrum: peak %.2f MeV, spread %.1f%%, charge %.3f nC/m\n",
              beam.peak_energy / mev, 100 * beam.energy_spread, beam.charge * 1e9);
  const auto& mom = *sim.last_beam_moments();
  std::printf("injected beam (>0.5 MeV): norm. emittance %.3f mm mrad, <gamma> %.1f\n",
              mom.emit_ny * 1e6, mom.mean_gamma);

  diag::CsvSeries spec_csv({"energy_MeV", "dN"});
  for (std::size_t b = 0; b < spectrum.counts.size(); ++b) {
    spec_csv.add_row({spectrum.bin_center(b) / mev, spectrum.counts[b]});
  }
  spec_csv.write(out.path("hybrid_spectrum.csv"));
  history.write(out.path("hybrid_history.csv"));

  // Longitudinal phase space x-u_x of the trapped beam (Fig. 2-style view).
  diag::PhaseSpaceConfig psc;
  psc.ax = diag::Axis::X0;
  psc.ay = diag::Axis::Ux;
  psc.a_min = sim.geom().prob_lo()[0];
  psc.a_max = sim.geom().prob_hi()[0];
  psc.b_min = -5 * c;
  psc.b_max = 40 * c;
  psc.na = 160;
  psc.nb = 90;
  diag::PhaseSpace ps(psc);
  ps.accumulate(sim.species_level0(solid_e));
  ps.accumulate(sim.species_patch(solid_e));
  ps.accumulate(sim.species_level0(gas_e));
  ps.write(out.path("hybrid_phase_space.csv"));
  diag::write_field_2d(out.path("hybrid_field.csv"), sim.fields().E(), fields::Y);
  if (args.memory) {
    const auto& ledger = obs::memory_ledger();
    std::printf("\nmemory: %s live (high water %s), checkpoint staging peak %s\n",
                obs::format_bytes(double(ledger.total_current())).c_str(),
                obs::format_bytes(double(ledger.total_high_water())).c_str(),
                obs::format_bytes(double(ledger.high_water("checkpoint"))).c_str());
    if (use_mr) {
      const auto measured = sim.measured_mr_savings();
      const auto analytic = obs::analytic_mr_savings(sim.mr_savings_inputs());
      std::printf("memory: MR savings vs uniform fine grid — measured %.2fx, "
                  "analytic %.2fx\n",
                  measured.factor, analytic.factor);
    }
  }
  std::printf("wrote hybrid_{history,spectrum,field,phase_space}.csv in %s/\n",
              out.dir().c_str());
  sim.profiler().report(std::cout);
  return 0;
}
