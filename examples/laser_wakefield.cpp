// Laser Wakefield Accelerator (LWFA): a femtosecond laser pulse drives a
// plasma wake in an underdense gas jet and the moving window follows the
// pulse — the acceleration stage of the paper's hybrid scheme (Fig. 1a),
// scaled down to laptop size.
//
// Demonstrates: laser antenna injection, gas-jet density profile, PML
// boundaries, moving window with continuous plasma refill, anisotropic
// cells (lambda/16 longitudinal so the numerical group velocity stays close
// to c and the pulse does not slip out of the c-moving window), and the
// electron energy spectrum diagnostic.
//
// Run: ./laser_wakefield [--outdir DIR] [--health] [--insitu] [--memory]
//                        [--node-budget-gb G] [t_end_fs]
// With --health, the in-situ invariant ledger + NaN/stability watchdog run
// alongside (src/health): lwfa_health.jsonl carries the per-step ledger,
// lwfa_alerts.jsonl any alerts, and the perf report gains a "Simulation
// health" section with the probe-overhead line item.
// With --insitu, the in-situ physics registry (src/insitu) tracks beam
// moments/emittance, spectrum peak/FWHM, laser a0/centroid, wakefield
// amplitude and field energy at their cadences (lwfa_insitu.jsonl), streams
// downsampled Ex/Ey slices + a beam phase-space histogram as binary frames
// (lwfa_stream.*.bin + lwfa_stream.manifest.json), and the perf report
// gains a "Beam physics" section.
// With --memory, the byte ledger (src/obs/memory) publishes per-step mem_*
// gauges into lwfa_metrics.jsonl, the per-rank resident model fills
// memory_heatmap.csv, and the perf report gains a "## Memory" section with
// the measured-vs-analytic MR memory-savings factor — a ratio-2 MR patch is
// placed over the wake region for this mode so the savings accounting has a
// patch to account. --node-budget-gb G (implies --memory) adds the OOM
// headroom gauge and first-rank-to-OOM prediction against a G-GiB budget.
// Output (in --outdir, default out/): lwfa_history.csv (time series),
//         lwfa_field.csv, lwfa_trace.json (Chrome/Perfetto trace with one
//         lane per profiled thread plus one lane per simulated rank, halo
//         messages drawn as flow arrows between rank lanes),
//         lwfa_metrics.jsonl (per-step counters/gauges + per-rank sections),
//         rank_heatmap.csv (step x rank compute/comm/imbalance matrix),
//         lwfa_ranks.json (the full recorder dump, re-loadable by the
//         perf_report CLI), lwfa_perf_report.{md,json} (critical-path /
//         loss-attribution report over the run, obs::analysis)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "src/core/simulation.hpp"
#include "src/diag/csv_writer.hpp"
#include "src/diag/output_dir.hpp"
#include "src/diag/spectrum.hpp"
#include "src/obs/analysis.hpp"
#include "src/obs/perf_report.hpp"
#include "src/obs/rank_recorder_io.hpp"
#include "src/obs/trace.hpp"
#include "src/particles/deposition.hpp"
#include "src/particles/gather.hpp"
#include "src/particles/pusher.hpp"
#include "src/perf/flop_counter.hpp"
#include "src/perf/machine.hpp"

#include "example_args.hpp"

using namespace mrpic;
using namespace mrpic::constants;

int main(int argc, char** argv) {
  const auto out = diag::OutputDir::from_args(argc, argv);
  const auto args = examples::parse_example_args(argc, argv, /*default fs*/ 150.0);
  const bool with_health = args.health;
  const bool with_insitu = args.insitu;
  const Real t_end = args.t_end;

  // 30 x 10 um window; 0.05 um (lambda/16) longitudinal, 0.2 um transverse.
  core::SimulationConfig<2> cfg;
  cfg.domain = Box2(IntVect2(0, 0), IntVect2(599, 49));
  cfg.prob_lo = RealVect2(0, 0);
  cfg.prob_hi = RealVect2(30e-6, 10e-6);
  cfg.periodic = {false, false};
  cfg.use_pml = true;
  cfg.pml.npml = 10;
  cfg.max_grid_size = IntVect2(150, 50);
  cfg.shape_order = 3;

  // Observe the run as if it were domain-decomposed over 4 ranks: the
  // virtual cluster replays each step's box->rank mapping, recording the
  // per-rank compute/comm split, the message-level halo log (rank lanes in
  // lwfa_trace.json) and load-balancer snapshots (the laser sweeping the
  // jet drives real imbalance).
  cfg.nranks = 4;
  cfg.dynamic_lb = true;
  cfg.lb_interval = 50;

  core::Simulation<2> sim(cfg);
  sim.enable_cluster_obs();
  if (args.memory) {
    // Byte-ledger publication every step; the wake region gets a ratio-2 MR
    // patch so the MR memory-savings accounting has a patch to measure (the
    // physics-motivated placement: highest resolution where the bunch forms).
    sim.enable_memory_obs(args.memory_cfg());
    mr::MRPatch<2>::Config pcfg;
    pcfg.region = Box2(IntVect2(200, 10), IntVect2(399, 39));
    pcfg.ratio = 2;
    pcfg.transition_cells = 2;
    pcfg.pml.npml = 8;
    sim.enable_mr_patch(pcfg);
  }

  // Gas jet: n = 5e25 m^-3 ~ 0.029 n_c at 800 nm (plasma wavelength
  // ~4.7 um, resolved; short enough for self-injection within the run).
  const Real n_gas = 5e25;
  plasma::InjectorConfig<2> inj;
  inj.density = plasma::gas_jet<2>(n_gas, 8e-6, 500e-6, 4e-6);
  inj.ppc = IntVect2(1, 2);
  const int electrons = sim.add_species(particles::Species::electron(), inj);

  laser::LaserConfig lc;
  lc.a0 = 3.5;
  lc.wavelength = 0.8e-6;
  lc.waist = 3.5e-6;
  lc.duration = 9e-15;
  lc.t_peak = 20e-15;
  lc.x_antenna = 2e-6;
  lc.center = {5e-6, 0};
  lc.focal_distance = 10e-6;
  sim.add_laser(lc);

  // Window follows the pulse once it is fully emitted.
  sim.set_moving_window(0, c, /*start_time=*/40e-15);
  sim.profiler().set_tracing(true); // collect Chrome trace events per region

  if (with_health) {
    // Light self-diagnostics: ledger + NaN scan every step, the expensive
    // charge-conservation residuals every 20th, plus a relativistic-gamma
    // sanity bound (a0 = 3.5 wakes top out far below gamma ~ 1e4). A NaN
    // anywhere checkpoints (when a policy is armed) and aborts cleanly with
    // the telemetry flushed.
    health::MonitorConfig hcfg;
    hcfg.ledger_interval = 1;
    hcfg.nan_interval = 1;
    hcfg.residual_interval = 20;
    hcfg.alerts_path = out.path("lwfa_alerts.jsonl");
    hcfg.watchdog.bounds.push_back(
        {"max_gamma", 0.0, 1e4, health::Severity::Warn, {}});
    health::DriftRule drift;
    drift.quantity = "step_wall_s";
    drift.z_threshold = 50.0; // flag only pathological per-step slowdowns
    drift.warmup = 32;
    hcfg.watchdog.drifts.push_back(drift);
    sim.enable_health(hcfg);
  }

  // The in-situ physics registry computes the run's beam deliverables; the
  // final spectrum/beam-quality print below always goes through it (one
  // code path), --insitu additionally turns on the cadence series and the
  // streaming exporter.
  const Real mev = 1e6 * q_e;
  insitu::InsituConfig icfg;
  icfg.beam_species = electrons;
  icfg.beam_e_min_J = 2 * mev;       // accelerated beam, not the thermal bulk
  icfg.spectrum_e_min_J = 2 * mev;
  icfg.spectrum_e_max_J = 60 * mev;
  icfg.spectrum_bins = 116;
  if (with_insitu) {
    icfg.moments_interval = 10;
    icfg.spectrum_interval = 50;
    icfg.laser_interval = 10;
    icfg.wakefield_interval = 10;
    icfg.field_energy_interval = 10;
    icfg.series_path = out.path("lwfa_insitu.jsonl");
    icfg.stream_interval = 100;
    icfg.stream_downsample = 4;
    icfg.stream.basename = out.path("lwfa_stream");
    icfg.stream.max_file_bytes = 1u << 20;
    icfg.stream.max_files = 4;
    icfg.phase_space.ax = diag::Axis::Energy;
    icfg.phase_space.ay = diag::Axis::Ux;
    icfg.phase_space.a_min = 0;
    icfg.phase_space.a_max = 60 * mev;
    icfg.phase_space.b_min = -2e9;
    icfg.phase_space.b_max = 4e10;
  } else {
    icfg.moments_interval = icfg.spectrum_interval = icfg.laser_interval =
        icfg.wakefield_interval = icfg.field_energy_interval = 0;
  }
  sim.enable_insitu(icfg);

  sim.init();
  if (with_health) {
    // On a watchdog abort these run before the AbortError propagates, so
    // the dying run's telemetry is already on disk.
    sim.health()->add_flush_sink(
        [&] { sim.metrics().write_jsonl(out.path("lwfa_metrics.jsonl")); });
    sim.health()->add_flush_sink([&] {
      obs::write_chrome_trace(sim.profiler(), sim.rank_recorder(),
                              out.path("lwfa_trace.json"), "laser_wakefield");
    });
    sim.health()->add_flush_sink(
        [&] { sim.health()->write_ledger_jsonl(out.path("lwfa_health.jsonl")); });
  }

  std::printf("LWFA: n_gas/n_c = %.4f, a0 = %.1f, %lld particles, dt = %.2e s\n",
              n_gas / plasma::critical_density(lc.wavelength), lc.a0,
              static_cast<long long>(sim.total_particles()), sim.dt());

  diag::CsvSeries history({"t_fs", "window_x_um", "field_energy_J", "charge_above_1MeV_pC",
                           "max_Ex_GV_per_m"});
  while (sim.time() < t_end) {
    sim.step();
    if (sim.step_count() % 100 == 0) {
      const Real q_pc = diag::charge_above<2>(sim.species_level0(electrons), 1 * mev) * 1e12;
      history.add_row({sim.time() * 1e15, sim.geom().prob_lo()[0] * 1e6,
                       sim.fields().field_energy(), q_pc,
                       sim.fields().E().max_abs(fields::X) / 1e9});
      std::printf(
          "t = %6.1f fs  window at %5.1f um  wake E_x = %6.1f GV/m  charge>1MeV = %9.1f pC/m\n",
          sim.time() * 1e15, sim.geom().prob_lo()[0] * 1e6,
          sim.fields().E().max_abs(fields::X) / 1e9, q_pc);
    }
  }

  // Final reduced diagnostics of the accelerated electrons (spectrum above
  // the wave-breaking thermal bulk) — forced through the insitu registry so
  // this print, the insitu_* gauges and the JSONL series are one code path.
  sim.insitu()->collect(sim.step_count(), sim.time(), /*force=*/true);
  const auto& beam = sim.last_spectrum()->beam;
  std::printf("\nspectral peak: %.2f MeV, relative spread %.1f%%, charge %.3f nC/m\n",
              beam.peak_energy / mev, 100 * beam.energy_spread, beam.charge * 1e9);
  const auto& mom = *sim.last_beam_moments();
  std::printf("beam (>2 MeV): %.3f pC/m, norm. emittance %.3f mm mrad, <gamma> %.1f\n",
              std::abs(mom.charge_C) * 1e12, mom.emit_ny * 1e6, mom.mean_gamma);

  history.write(out.path("lwfa_history.csv"));
  diag::write_field_2d(out.path("lwfa_field.csv"), sim.fields().E(), fields::X);
  obs::write_chrome_trace(sim.profiler(), sim.rank_recorder(),
                          out.path("lwfa_trace.json"), "laser_wakefield");
  sim.metrics().write_jsonl(out.path("lwfa_metrics.jsonl"));
  sim.rank_recorder().write_rank_heatmap_csv(out.path("rank_heatmap.csv"));
  obs::write_recorder_json(sim.rank_recorder(), out.path("lwfa_ranks.json"));

  // Attribution report over the recorded run: per-step critical paths and
  // overhead decomposition, plus a roofline placement of the PIC stages
  // (canonical per-element flop counts x this run's last-step volume).
  obs::PerfReportOptions ropt;
  ropt.title = "LWFA attribution (4 simulated ranks)";
  ropt.latency_s = cluster::CommModel{}.latency_s;
  auto report = obs::build_perf_report(sim.rank_recorder(), ropt);
  if (with_insitu) {
    report.beam = obs::summarize_insitu(*sim.insitu(), sim.profiler(), sim.insitu_stream());
  }
  if (with_health) {
    report.health = obs::summarize_health(*sim.health(), sim.profiler());
    sim.health()->write_ledger_jsonl(out.path("lwfa_health.jsonl"));
    std::printf("\nhealth: %lld ledger samples, %lld alerts, probe overhead %.2f%% "
                "(energy drift %.2e, worst continuity residual %.2e)\n",
                static_cast<long long>(report.health.samples),
                static_cast<long long>(report.health.alerts),
                100 * report.health.probe_overhead, report.health.energy_drift,
                report.health.max_continuity_residual);
  }
  if (args.memory) {
    const auto measured = sim.measured_mr_savings();
    const auto analytic = obs::analytic_mr_savings(sim.mr_savings_inputs());
    report.memory = obs::summarize_memory(
        obs::memory_ledger(), sim.profiler(), &measured, &analytic,
        &sim.rank_recorder(), args.memory_cfg().budget_bytes());
    sim.rank_recorder().write_memory_heatmap_csv(out.path("memory_heatmap.csv"));
    std::printf("\nmemory: %s live (high water %s), MR savings measured %.2fx / "
                "analytic %.2fx\n",
                obs::format_bytes(double(report.memory.total_bytes)).c_str(),
                obs::format_bytes(double(report.memory.high_water_bytes)).c_str(),
                measured.factor, analytic.factor);
    if (report.memory.oom.peak_bytes > 0 && args.node_budget_gb > 0) {
      std::printf("memory: per-rank peak %s vs %.0f GiB budget -> %s\n",
                  obs::format_bytes(double(report.memory.oom.peak_bytes)).c_str(),
                  args.node_budget_gb,
                  report.memory.oom.predicted ? "predicted OOM" : "fits");
    }
  }
  {
    const auto& rep = sim.last_step_report();
    perf::FlopCounter fc;
    fc.record("gather", particles::gather_flops_per_particle(cfg.shape_order, 2) *
                            rep.particles_pushed);
    fc.record("push", particles::push_flops_per_particle() * rep.particles_pushed);
    fc.record("deposition", particles::deposit_flops_per_particle(cfg.shape_order, 2) *
                                rep.particles_pushed);
    fc.record("field_solve",
              fields::FDTDSolver<2>::flops_per_cell() * rep.cells_advanced);
    report.machine = "Summit";
    report.roofline = obs::analysis::roofline(
        fc,
        obs::analysis::pic_kernel_bytes(static_cast<double>(rep.particles_pushed),
                                        static_cast<double>(rep.cells_advanced)),
        perf::machine_by_name(report.machine));
  }
  obs::write_markdown(report, out.path("lwfa_perf_report.md"));
  obs::write_json(report, out.path("lwfa_perf_report.json"));

  // Name the run's dominant critical path: which rank chain gated the worst
  // step and what it was made of.
  if (!report.paths.empty()) {
    const auto& worst = report.paths[std::size_t(report.worst_steps().front())];
    std::printf("\ncritical path (worst step %lld, %.3f ms makespan): ranks",
                static_cast<long long>(worst.step), worst.makespan_s * 1e3);
    const std::size_t shown = worst.rank_chain.size() < 8 ? worst.rank_chain.size() : 8;
    for (std::size_t i = 0; i < shown; ++i) {
      std::printf(" %d%s", worst.rank_chain[i], i + 1 < shown ? " ->" : "");
    }
    if (shown < worst.rank_chain.size()) {
      std::printf(" ... (%zu hops)", worst.rank_chain.size());
    }
    std::printf("\n  composition: compute %.1f%%  halo transfer %.1f%%  latency %.1f%%"
                "  resil %.1f%%\n",
                100 * worst.compute_s / worst.makespan_s,
                100 * worst.transfer_s / worst.makespan_s,
                100 * worst.latency_s / worst.makespan_s,
                100 * worst.retry_s / worst.makespan_s);
    const auto stragglers = report.summary.stragglers();
    if (!stragglers.empty()) {
      std::printf("  straggler rank %d: %.3f ms on the critical path over %d steps\n",
                  stragglers.front(),
                  report.summary.critical_s_per_rank[std::size_t(stragglers.front())] * 1e3,
                  report.summary.steps);
    }
  }

  std::printf("wrote lwfa_{history,field}.csv, lwfa_trace.json, lwfa_metrics.jsonl, "
              "rank_heatmap.csv, lwfa_ranks.json, lwfa_perf_report.{md,json} in %s/\n",
              out.dir().c_str());
  sim.profiler().report(std::cout);
  const auto& rep = sim.last_step_report();
  std::printf("last step %lld: %.3f ms wall, %lld particles, %lld cells\n",
              static_cast<long long>(rep.step), rep.wall_s * 1e3,
              static_cast<long long>(rep.particles_pushed),
              static_cast<long long>(rep.cells_advanced));
  return 0;
}
