// Laser Wakefield Accelerator (LWFA): a femtosecond laser pulse drives a
// plasma wake in an underdense gas jet and the moving window follows the
// pulse — the acceleration stage of the paper's hybrid scheme (Fig. 1a),
// scaled down to laptop size.
//
// The physics setup lives in the scenario library ("lwfa", plus "lwfa_mr"
// for the --memory mode's MR patch) and is assembled by
// scenario::build_simulation; this driver keeps the example's rich final
// reporting (critical path, roofline, straggler naming) on top of it.
//
// Run: ./laser_wakefield [--outdir DIR] [--health] [--insitu] [--memory]
//                        [--node-budget-gb G] [t_end_fs]
// With --health, the in-situ invariant ledger + NaN/stability watchdog run
// alongside (src/health): lwfa_health.jsonl carries the per-step ledger,
// lwfa_alerts.jsonl any alerts, and the perf report gains a "Simulation
// health" section with the probe-overhead line item.
// With --insitu, the in-situ physics registry (src/insitu) tracks beam
// moments/emittance, spectrum peak/FWHM, laser a0/centroid, wakefield
// amplitude and field energy at their cadences (lwfa_insitu.jsonl), streams
// downsampled Ex/Ey slices + a beam phase-space histogram as binary frames
// (lwfa_stream.*.bin + lwfa_stream.manifest.json), and the perf report
// gains a "Beam physics" section.
// With --memory, the byte ledger (src/obs/memory) publishes per-step mem_*
// gauges into lwfa_metrics.jsonl, the per-rank resident model fills
// memory_heatmap.csv, and the perf report gains a "## Memory" section with
// the measured-vs-analytic MR memory-savings factor — the run uses the
// "lwfa_mr" spec (ratio-2 MR patch over the wake region) so the savings
// accounting has a patch to account. --node-budget-gb G (implies --memory)
// adds the OOM headroom gauge and first-rank-to-OOM prediction against a
// G-GiB budget.
// Output (in --outdir, default out/): lwfa_history.csv (time series),
//         lwfa_field.csv, lwfa_trace.json (Chrome/Perfetto trace with one
//         lane per profiled thread plus one lane per simulated rank, halo
//         messages drawn as flow arrows between rank lanes),
//         lwfa_metrics.jsonl (per-step counters/gauges + per-rank sections),
//         rank_heatmap.csv (step x rank compute/comm/imbalance matrix),
//         lwfa_ranks.json (the full recorder dump, re-loadable by the
//         perf_report CLI), lwfa_perf_report.{md,json} (critical-path /
//         loss-attribution report over the run, obs::analysis)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "src/core/simulation.hpp"
#include "src/diag/csv_writer.hpp"
#include "src/diag/output_dir.hpp"
#include "src/diag/spectrum.hpp"
#include "src/obs/analysis.hpp"
#include "src/obs/perf_report.hpp"
#include "src/obs/rank_recorder_io.hpp"
#include "src/obs/trace.hpp"
#include "src/particles/deposition.hpp"
#include "src/particles/gather.hpp"
#include "src/particles/pusher.hpp"
#include "src/perf/flop_counter.hpp"
#include "src/perf/machine.hpp"
#include "src/scenario/builder.hpp"
#include "src/scenario/library.hpp"

#include "example_args.hpp"

using namespace mrpic;
using namespace mrpic::constants;

int main(int argc, char** argv) {
  const auto out = diag::OutputDir::from_args(argc, argv);
  const auto args = examples::parse_example_args(argc, argv, /*default fs*/ 150.0);
  const bool with_health = args.health;
  const bool with_insitu = args.insitu;
  const Real t_end = args.t_end;

  // The declarative setup: grid, jet, pulse, window, cadences and the
  // health/insitu policy blocks all come from the registered spec. The
  // --memory mode runs the MR variant so the savings accounting has a
  // patch to measure (physics-motivated placement: highest resolution
  // where the bunch forms).
  scenario::ScenarioSpec spec =
      args.memory ? scenario::make_lwfa_mr() : scenario::make_lwfa();
  scenario::BuildOptions bopt;
  bopt.init = false; // observability first, then init
  auto sim_ptr = scenario::build_simulation(spec, bopt);
  core::Simulation<2>& sim = *sim_ptr;
  const int electrons = 0; // the spec's single species

  // Observe the run as if it were domain-decomposed over 4 ranks (the
  // spec's nranks): per-rank compute/comm split, message-level halo log
  // (rank lanes in lwfa_trace.json) and load-balancer snapshots (the laser
  // sweeping the jet drives real imbalance).
  sim.enable_cluster_obs();
  if (args.memory) { sim.enable_memory_obs(args.memory_cfg()); }
  sim.profiler().set_tracing(true); // collect Chrome trace events per region

  if (with_health) {
    health::MonitorConfig hcfg = spec.health;
    hcfg.alerts_path = out.path("lwfa_alerts.jsonl");
    sim.enable_health(hcfg);
  }

  // The in-situ physics registry computes the run's beam deliverables; the
  // final spectrum/beam-quality print below always goes through it (one
  // code path), --insitu additionally turns on the cadence series and the
  // streaming exporter.
  const Real mev = 1e6 * q_e;
  insitu::InsituConfig icfg = spec.insitu;
  if (with_insitu) {
    icfg.series_path = out.path("lwfa_insitu.jsonl");
    icfg.stream.basename = out.path("lwfa_stream");
  } else {
    icfg.moments_interval = icfg.spectrum_interval = icfg.laser_interval =
        icfg.wakefield_interval = icfg.field_energy_interval = 0;
    icfg.stream_interval = 0;
  }
  sim.enable_insitu(icfg);

  sim.init();
  if (with_health) {
    // On a watchdog abort these run before the AbortError propagates, so
    // the dying run's telemetry is already on disk.
    sim.health()->add_flush_sink(
        [&] { sim.metrics().write_jsonl(out.path("lwfa_metrics.jsonl")); });
    sim.health()->add_flush_sink([&] {
      obs::write_chrome_trace(sim.profiler(), sim.rank_recorder(),
                              out.path("lwfa_trace.json"), "laser_wakefield");
    });
    sim.health()->add_flush_sink(
        [&] { sim.health()->write_ledger_jsonl(out.path("lwfa_health.jsonl")); });
  }

  const Real n_gas = 5e25; // the spec's jet plateau density
  std::printf("LWFA: n_gas/n_c = %.4f, a0 = %.1f, %lld particles, dt = %.2e s\n",
              n_gas / plasma::critical_density(spec.lasers[0].wavelength),
              spec.lasers[0].a0, static_cast<long long>(sim.total_particles()),
              sim.dt());

  diag::CsvSeries history({"t_fs", "window_x_um", "field_energy_J", "charge_above_1MeV_pC",
                           "max_Ex_GV_per_m"});
  while (sim.time() < t_end) {
    sim.step();
    if (spec.cadences.diagnostics.due(sim.step_count())) {
      const Real q_pc = diag::charge_above<2>(sim.species_level0(electrons), 1 * mev) * 1e12;
      history.add_row({sim.time() * 1e15, sim.geom().prob_lo()[0] * 1e6,
                       sim.fields().field_energy(), q_pc,
                       sim.fields().E().max_abs(fields::X) / 1e9});
      std::printf(
          "t = %6.1f fs  window at %5.1f um  wake E_x = %6.1f GV/m  charge>1MeV = %9.1f pC/m\n",
          sim.time() * 1e15, sim.geom().prob_lo()[0] * 1e6,
          sim.fields().E().max_abs(fields::X) / 1e9, q_pc);
    }
  }

  // Final reduced diagnostics of the accelerated electrons (spectrum above
  // the wave-breaking thermal bulk) — forced through the insitu registry so
  // this print, the insitu_* gauges and the JSONL series are one code path.
  sim.insitu()->collect(sim.step_count(), sim.time(), /*force=*/true);
  const auto& beam = sim.last_spectrum()->beam;
  std::printf("\nspectral peak: %.2f MeV, relative spread %.1f%%, charge %.3f nC/m\n",
              beam.peak_energy / mev, 100 * beam.energy_spread, beam.charge * 1e9);
  const auto& mom = *sim.last_beam_moments();
  std::printf("beam (>2 MeV): %.3f pC/m, norm. emittance %.3f mm mrad, <gamma> %.1f\n",
              std::abs(mom.charge_C) * 1e12, mom.emit_ny * 1e6, mom.mean_gamma);

  history.write(out.path("lwfa_history.csv"));
  diag::write_field_2d(out.path("lwfa_field.csv"), sim.fields().E(), fields::X);
  obs::write_chrome_trace(sim.profiler(), sim.rank_recorder(),
                          out.path("lwfa_trace.json"), "laser_wakefield");
  sim.metrics().write_jsonl(out.path("lwfa_metrics.jsonl"));
  sim.rank_recorder().write_rank_heatmap_csv(out.path("rank_heatmap.csv"));
  obs::write_recorder_json(sim.rank_recorder(), out.path("lwfa_ranks.json"));

  // Attribution report over the recorded run: per-step critical paths and
  // overhead decomposition, plus a roofline placement of the PIC stages
  // (canonical per-element flop counts x this run's last-step volume).
  obs::PerfReportOptions ropt;
  ropt.title = "LWFA attribution (4 simulated ranks)";
  ropt.latency_s = cluster::CommModel{}.latency_s;
  auto report = obs::build_perf_report(sim.rank_recorder(), ropt);
  if (with_insitu) {
    report.beam = obs::summarize_insitu(*sim.insitu(), sim.profiler(), sim.insitu_stream());
  }
  if (with_health) {
    report.health = obs::summarize_health(*sim.health(), sim.profiler());
    sim.health()->write_ledger_jsonl(out.path("lwfa_health.jsonl"));
    std::printf("\nhealth: %lld ledger samples, %lld alerts, probe overhead %.2f%% "
                "(energy drift %.2e, worst continuity residual %.2e)\n",
                static_cast<long long>(report.health.samples),
                static_cast<long long>(report.health.alerts),
                100 * report.health.probe_overhead, report.health.energy_drift,
                report.health.max_continuity_residual);
  }
  if (args.memory) {
    const auto measured = sim.measured_mr_savings();
    const auto analytic = obs::analytic_mr_savings(sim.mr_savings_inputs());
    report.memory = obs::summarize_memory(
        obs::memory_ledger(), sim.profiler(), &measured, &analytic,
        &sim.rank_recorder(), args.memory_cfg().budget_bytes());
    sim.rank_recorder().write_memory_heatmap_csv(out.path("memory_heatmap.csv"));
    std::printf("\nmemory: %s live (high water %s), MR savings measured %.2fx / "
                "analytic %.2fx\n",
                obs::format_bytes(double(report.memory.total_bytes)).c_str(),
                obs::format_bytes(double(report.memory.high_water_bytes)).c_str(),
                measured.factor, analytic.factor);
    if (report.memory.oom.peak_bytes > 0 && args.node_budget_gb > 0) {
      std::printf("memory: per-rank peak %s vs %.0f GiB budget -> %s\n",
                  obs::format_bytes(double(report.memory.oom.peak_bytes)).c_str(),
                  args.node_budget_gb,
                  report.memory.oom.predicted ? "predicted OOM" : "fits");
    }
  }
  {
    const auto& rep = sim.last_step_report();
    perf::FlopCounter fc;
    fc.record("gather", particles::gather_flops_per_particle(spec.sim.shape_order, 2) *
                            rep.particles_pushed);
    fc.record("push", particles::push_flops_per_particle() * rep.particles_pushed);
    fc.record("deposition",
              particles::deposit_flops_per_particle(spec.sim.shape_order, 2) *
                  rep.particles_pushed);
    fc.record("field_solve",
              fields::FDTDSolver<2>::flops_per_cell() * rep.cells_advanced);
    report.machine = "Summit";
    report.roofline = obs::analysis::roofline(
        fc,
        obs::analysis::pic_kernel_bytes(static_cast<double>(rep.particles_pushed),
                                        static_cast<double>(rep.cells_advanced)),
        perf::machine_by_name(report.machine));
  }
  obs::write_markdown(report, out.path("lwfa_perf_report.md"));
  obs::write_json(report, out.path("lwfa_perf_report.json"));

  // Name the run's dominant critical path: which rank chain gated the worst
  // step and what it was made of.
  if (!report.paths.empty()) {
    const auto& worst = report.paths[std::size_t(report.worst_steps().front())];
    std::printf("\ncritical path (worst step %lld, %.3f ms makespan): ranks",
                static_cast<long long>(worst.step), worst.makespan_s * 1e3);
    const std::size_t shown = worst.rank_chain.size() < 8 ? worst.rank_chain.size() : 8;
    for (std::size_t i = 0; i < shown; ++i) {
      std::printf(" %d%s", worst.rank_chain[i], i + 1 < shown ? " ->" : "");
    }
    if (shown < worst.rank_chain.size()) {
      std::printf(" ... (%zu hops)", worst.rank_chain.size());
    }
    std::printf("\n  composition: compute %.1f%%  halo transfer %.1f%%  latency %.1f%%"
                "  resil %.1f%%\n",
                100 * worst.compute_s / worst.makespan_s,
                100 * worst.transfer_s / worst.makespan_s,
                100 * worst.latency_s / worst.makespan_s,
                100 * worst.retry_s / worst.makespan_s);
    const auto stragglers = report.summary.stragglers();
    if (!stragglers.empty()) {
      std::printf("  straggler rank %d: %.3f ms on the critical path over %d steps\n",
                  stragglers.front(),
                  report.summary.critical_s_per_rank[std::size_t(stragglers.front())] * 1e3,
                  report.summary.steps);
    }
  }

  std::printf("wrote lwfa_{history,field}.csv, lwfa_trace.json, lwfa_metrics.jsonl, "
              "rank_heatmap.csv, lwfa_ranks.json, lwfa_perf_report.{md,json} in %s/\n",
              out.dir().c_str());
  sim.profiler().report(std::cout);
  const auto& rep = sim.last_step_report();
  std::printf("last step %lld: %.3f ms wall, %lld particles, %lld cells\n",
              static_cast<long long>(rep.step), rep.wall_s * 1e3,
              static_cast<long long>(rep.particles_pushed),
              static_cast<long long>(rep.cells_advanced));
  return 0;
}
