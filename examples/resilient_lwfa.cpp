// Laser wakefield under fire: the LWFA run of laser_wakefield.cpp on a
// 4-rank simulated cluster with an injected fault plan — one straggling
// rank, a lossy wire, and a rank crash mid-run. The ResilientRunner
// checkpoints on the Daly-optimal cadence, detects the crash, shrinks the
// cluster to 3 ranks (re-homing the dead rank's boxes) and replays from the
// last checkpoint; the physics finishes as if nothing happened (the
// bit-identity property proven by the resil_smoke ctest).
//
// Run: ./resilient_lwfa [--outdir DIR] [--health] [--insitu] [--memory]
//                       [--node-budget-gb G] [t_end_fs]
// With --memory, every incarnation publishes the process-global byte ledger
// as mem_* gauges; because the ledger outlives any one Simulation, the
// high-water mark carries across crash -> shrink -> replay, so the final
// print shows the worst footprint of the whole campaign (asserted by the
// memory tests).
// With --health, every rebuilt simulation (initial + post-recovery replays)
// carries the invariant ledger + watchdog; alerts land in
// resil_alerts.jsonl and the final ledger in resil_health.jsonl.
// With --insitu, every incarnation also runs the in-situ physics registry;
// the resil_insitu.jsonl series is opened in append mode by replay
// incarnations, so it stays continuous across crash -> shrink -> replay
// (reader-side canonicalize collapses the replayed overlap).
// Output (in --outdir, default out/): resil_trace.json (Chrome/Perfetto
//         trace: rank lanes + crash/detect/rollback/remap/replay instants),
//         resil_metrics.jsonl (per-step metrics incl. resil_* counters),
//         resil_rank_heatmap.csv, and a recovery report on stdout.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "src/diag/output_dir.hpp"
#include "src/insitu/registry.hpp"
#include "src/obs/trace.hpp"
#include "src/resil/resilient_runner.hpp"
#include "src/scenario/builder.hpp"

#include "example_args.hpp"

using namespace mrpic;
using namespace mrpic::constants;

int main(int argc, char** argv) {
  const auto out = diag::OutputDir::from_args(argc, argv);
  const auto args = examples::parse_example_args(argc, argv, /*default fs*/ 60.0);
  const bool with_health = args.health;
  const bool with_insitu = args.insitu;
  const Real t_end = args.t_end;

  // The half-size LWFA stage as a local (off-registry) ScenarioSpec: the
  // ResilientRunner rebuilds the simulation from scratch after every crash,
  // so the declarative spec is the natural factory input.
  scenario::ScenarioSpec spec;
  spec.sim.domain = Box2(IntVect2(0, 0), IntVect2(299, 49));
  spec.sim.prob_lo = RealVect2(0, 0);
  spec.sim.prob_hi = RealVect2(15e-6, 10e-6);
  spec.sim.periodic = {false, false};
  spec.sim.use_pml = true;
  spec.sim.pml.npml = 8;
  spec.sim.max_grid_size = IntVect2(75, 25); // 8 boxes over 4 ranks
  spec.sim.shape_order = 3;
  spec.sim.nranks = 4;
  {
    scenario::SpeciesSpec sp;
    sp.species = particles::Species::electron();
    sp.injector.density = plasma::gas_jet<2>(5e25, 6e-6, 500e-6, 3e-6);
    sp.injector.ppc = IntVect2(1, 2);
    spec.species.push_back(sp);

    laser::LaserConfig lc;
    lc.a0 = 2.5;
    lc.wavelength = 0.8e-6;
    lc.waist = 3.0e-6;
    lc.duration = 8e-15;
    lc.t_peak = 14e-15;
    lc.x_antenna = 2e-6;
    lc.center = {4e-6, 0};
    spec.lasers.push_back(lc);
  }
  spec.window = {true, 0, c, /*start_time=*/30e-15};

  int incarnation = 0; // 0 = initial sim, >0 = post-recovery replays
  const auto factory = [&args, &spec, with_health, with_insitu, &incarnation, &out] {
    scenario::BuildOptions bopt;
    bopt.init = false; // per-incarnation observability first, then init
    auto sim = scenario::build_simulation(spec, bopt);
    sim->enable_cluster_obs();
    sim->profiler().set_tracing(true);
    if (args.memory) { sim->enable_memory_obs(args.memory_cfg()); }
    if (with_health) {
      // Every incarnation of the sim (initial and the post-recovery
      // replays) watches its own invariants; the alerts file is shared and
      // appended across incarnations within this process.
      health::MonitorConfig hcfg;
      hcfg.nan_interval = 1;
      hcfg.residual_interval = 25;
      hcfg.alerts_path = out.path("resil_alerts.jsonl");
      hcfg.watchdog.bounds.push_back(
          {"max_gamma", 0.0, 1e4, health::Severity::Warn, {}});
      sim->enable_health(hcfg);
    }
    if (with_insitu) {
      // The physics series survives the crash: the initial incarnation
      // truncates, every replay incarnation appends (each record is
      // flushed as it is written, so nothing of the pre-crash run is lost).
      insitu::InsituConfig icfg;
      icfg.moments_interval = 5;
      icfg.spectrum_interval = 25;
      icfg.laser_interval = 5;
      icfg.wakefield_interval = 5;
      icfg.field_energy_interval = 5;
      icfg.beam_e_min_J = 0.5e6 * q_e;
      icfg.spectrum_e_min_J = 0.5e6 * q_e;
      icfg.spectrum_e_max_J = 30e6 * q_e;
      icfg.spectrum_bins = 60;
      icfg.series_path = out.path("resil_insitu.jsonl");
      icfg.series_append = incarnation > 0;
      sim->enable_insitu(icfg);
    }
    ++incarnation;
    sim->init();
    return sim;
  };

  // Size the run from the requested end time (dt is config-determined).
  const int total_steps = [&] {
    auto probe = factory();
    return static_cast<int>(t_end / probe->dt()) + 1;
  }();

  resil::ResilientRunner<2>::Config rcfg;
  rcfg.total_steps = total_steps;
  rcfg.checkpoint_path = out.path("resil_lwfa_ckpt.bin");
  rcfg.policy.mode = resil::CheckpointMode::Daly;
  rcfg.policy.mtbf_s = 2.0;        // wall seconds: failures are *frequent* here
  rcfg.policy.checkpoint_cost_s = 0.01;
  rcfg.plan.seed = 2022;
  // Rank 1 straggles at 1.6x for the first half of the run, the wire drops
  // 2% and delays 3% of halo messages, and rank 2 dies at 60% of the run.
  rcfg.plan.slowdowns.push_back(
      {.rank = 1, .factor = 1.6, .from_step = 0, .to_step = total_steps / 2});
  rcfg.plan.message.drop_p = 0.02;
  rcfg.plan.message.delay_p = 0.03;
  rcfg.plan.message.delay_s = 50e-6;
  rcfg.plan.crashes.push_back({.rank = 2, .step = (total_steps * 3) / 5});

  std::printf("resilient LWFA: %d steps on 4 simulated ranks; rank 2 dies at step %lld\n",
              total_steps, static_cast<long long>(rcfg.plan.crashes[0].step));

  resil::ResilientRunner<2> runner(factory, rcfg);
  const auto rep = runner.run();
  auto& sim = runner.sim();

  std::printf("\nrecovery report:\n");
  std::printf("  completed:            %s\n", rep.completed ? "yes" : "NO");
  std::printf("  steps run (w/ replay): %d (%lld replayed)\n", rep.steps_run,
              static_cast<long long>(rep.replayed_steps));
  std::printf("  crashes / recoveries: %d / %d\n", rep.crashes, rep.recoveries);
  std::printf("  checkpoints written:  %d\n", rep.checkpoints_written);
  std::printf("  modeled detection:    %.3f ms\n", rep.detection_s * 1e3);
  std::printf("  restore wall time:    %.3f ms\n", rep.restore_wall_s * 1e3);
  std::printf("  final cluster size:   %d ranks\n", rep.final_nranks);
  std::printf("  final sim state:      step %d, t = %.1f fs, E_field = %.3e J\n",
              sim.step_count(), sim.time() * 1e15, sim.fields().field_energy());

  obs::write_chrome_trace(sim.profiler(), sim.rank_recorder(),
                          out.path("resil_trace.json"), "resilient_lwfa");
  sim.metrics().write_jsonl(out.path("resil_metrics.jsonl"));
  sim.rank_recorder().write_rank_heatmap_csv(out.path("resil_rank_heatmap.csv"));
  if (with_insitu && sim.insitu_enabled()) {
    // Continuity check over the surviving series: schema-valid, and per
    // diagnostic strictly increasing steps once the replayed overlap is
    // collapsed (last occurrence wins).
    const auto path = out.path("resil_insitu.jsonl");
    const auto errors = insitu::Registry::validate_series(path);
    const auto raw = insitu::Registry::read_series_jsonl(path);
    const auto canonical = insitu::Registry::canonicalize(raw);
    std::printf("  insitu: %zu series records (%zu canonical after replay), %s\n",
                raw.size(), canonical.size(),
                errors.empty() ? "continuous" : errors.front().c_str());
  }
  if (with_health && sim.health_enabled()) {
    sim.health()->write_ledger_jsonl(out.path("resil_health.jsonl"));
    std::printf("  health: %lld samples, %lld alerts across the surviving run\n",
                static_cast<long long>(sim.health()->num_samples()),
                static_cast<long long>(sim.health()->num_alerts()));
  }
  if (args.memory) {
    // High water is the campaign-wide peak: the process-global ledger
    // carried it across every crash -> shrink -> replay incarnation.
    const auto& ledger = obs::memory_ledger();
    std::printf("  memory: %s live in the surviving incarnation, campaign high "
                "water %s\n",
                obs::format_bytes(double(ledger.total_current())).c_str(),
                obs::format_bytes(double(ledger.total_high_water())).c_str());
  }
  std::printf("wrote resil_trace.json, resil_metrics.jsonl, resil_rank_heatmap.csv in %s/\n",
              out.dir().c_str());
  return rep.completed ? 0 : 1;
}
