// Quickstart: a uniform thermal plasma in a periodic box — the "hello
// world" of PIC (and the workload of the paper's scaling benchmarks). The
// setup lives in the scenario registry as "quickstart"; this binary is a
// shim so `./quickstart [nsteps]` keeps working.
//
// Run: ./quickstart [nsteps]   (equivalent: mrpic_run --scenario quickstart --steps N)

#include <vector>

#include "src/scenario/driver.hpp"

int main(int argc, char** argv) {
  // Legacy positional [nsteps] -> the driver's --steps N (default 50).
  const bool has_nsteps = argc > 1 && argv[1][0] != '-';
  const char* steps = has_nsteps ? argv[1] : "50";
  std::vector<char*> args = {argv[0], const_cast<char*>("--steps"),
                             const_cast<char*>(steps)};
  for (int i = has_nsteps ? 2 : 1; i < argc; ++i) { args.push_back(argv[i]); }
  return mrpic::scenario::run_scenario_main(static_cast<int>(args.size()), args.data(),
                                            "quickstart");
}
