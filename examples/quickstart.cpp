// Quickstart: a uniform thermal plasma in a periodic box — the "hello
// world" of PIC (and the workload of the paper's scaling benchmarks).
//
// Demonstrates: configuring a Simulation, registering a species with a
// plasma injector, stepping, and reading reduced diagnostics.
//
// Run: ./quickstart [nsteps]

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "src/core/simulation.hpp"

using namespace mrpic;

int main(int argc, char** argv) {
  const int nsteps = argc > 1 ? std::atoi(argv[1]) : 50;

  // 64 x 64 cells, 6.4 x 6.4 um, fully periodic.
  core::SimulationConfig<2> cfg;
  cfg.domain = Box2(IntVect2(0, 0), IntVect2(63, 63));
  cfg.prob_lo = RealVect2(0, 0);
  cfg.prob_hi = RealVect2(6.4e-6, 6.4e-6);
  cfg.periodic = {true, true};
  cfg.max_grid_size = IntVect2(32);
  cfg.shape_order = 3;

  core::Simulation<2> sim(cfg);

  // Warm electrons on a neutralizing background (ions implicit: the field
  // solver only sees currents, so a uniform immobile background is free).
  plasma::InjectorConfig<2> inj;
  inj.density = plasma::uniform<2>(1e24); // m^-3
  inj.ppc = IntVect2(2, 2);
  inj.temperature_ev = 100.0;
  sim.add_species(particles::Species::electron(), inj);

  sim.init();
  std::printf("quickstart: %lld particles on %lld cells, dt = %.3e s\n",
              static_cast<long long>(sim.total_particles()),
              static_cast<long long>(sim.active_cells()), sim.dt());

  const Real e0 = sim.total_energy();
  for (int s = 0; s < nsteps; ++s) {
    sim.step();
    if ((s + 1) % 10 == 0) {
      std::printf("step %4d  t = %.3e s  field E = %.3e J  total E/E0 = %.4f\n", s + 1,
                  sim.time(), sim.fields().field_energy(), sim.total_energy() / e0);
    }
  }

  std::printf("\nper-stage timing:\n");
  sim.profiler().report(std::cout);
  return 0;
}
