// Plasma mirror: an intense laser reflecting off an overdense solid-density
// target (paper Refs. [16]-[20]) — the injection stage of the hybrid scheme.
// The laser impinges obliquely (30 degrees; the paper's science case uses
// 45) with p-polarization, so Brunel/vacuum heating pulls electron bunches
// out of the surface once per cycle.
//
// The foil/laser setup lives in the scenario library ("plasma_mirror") and
// is assembled by scenario::build_simulation; this driver keeps the
// example's extracted-charge bookkeeping and adds the shared observability
// flags.
//
// Run: ./plasma_mirror [--outdir DIR] [--a0 A] [--s-pol] [--health]
//                      [--insitu] [--memory] [--node-budget-gb G] [t_end_fs]
// (the laser amplitude moved from a positional to --a0 when the examples
// adopted the shared strict parser; the positional is now t_end_fs)
// Output (in --outdir, default out/): mirror_history.csv, mirror_field.csv

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "src/core/simulation.hpp"
#include "src/diag/csv_writer.hpp"
#include "src/diag/output_dir.hpp"
#include "src/diag/spectrum.hpp"
#include "src/scenario/builder.hpp"
#include "src/scenario/library.hpp"

#include "example_args.hpp"

using namespace mrpic;
using namespace mrpic::constants;

int main(int argc, char** argv) {
  const auto out = diag::OutputDir::from_args(argc, argv);
  double a0 = 8.0;
  bool s_pol = false;
  const auto args = examples::parse_example_args(
      argc, argv, /*default fs*/ 90.0,
      {{"--a0", nullptr, &a0, "laser amplitude (default 8)"},
       {"--s-pol", &s_pol, nullptr, "s-polarization (out-of-plane; default p-pol)"}});
  const bool p_pol = !s_pol;

  scenario::ScenarioSpec spec = scenario::make_plasma_mirror();
  spec.lasers[0].a0 = a0;
  spec.lasers[0].polarization = p_pol ? 1 : 2; // Ey = p-pol (in-plane), Ez = s-pol
  scenario::BuildOptions bopt;
  bopt.init = false;
  auto sim_ptr = scenario::build_simulation(spec, bopt);
  core::Simulation<2>& sim = *sim_ptr;
  const int electrons = 0, ions = 1; // the spec's species order

  if (args.memory) { sim.enable_memory_obs(args.memory_cfg()); }
  if (args.health) {
    health::MonitorConfig hcfg = spec.health;
    hcfg.alerts_path = out.path("mirror_alerts.jsonl");
    sim.enable_health(hcfg);
  }
  if (args.insitu) {
    insitu::InsituConfig icfg = spec.insitu;
    icfg.series_path = out.path("mirror_insitu.jsonl");
    sim.enable_insitu(icfg);
  }
  sim.init();

  std::printf("plasma mirror: n/n_c = 20, a0 = %.1f, 30 deg incidence, %s-pol, %lld particles\n",
              a0, p_pol ? "p" : "s", static_cast<long long>(sim.total_particles()));

  diag::CsvSeries history(
      {"t_fs", "field_energy_J", "extracted_gt_0p2MeV_pC", "extracted_gt_0p5MeV_pC"});
  const Real mev = 1e6 * q_e;

  while (sim.time() < args.t_end) {
    sim.step();
    if (spec.cadences.diagnostics.due(sim.step_count())) {
      // Extracted charge: energetic electrons in front of the foil.
      Real q02 = 0, q05 = 0;
      const auto& pc = sim.species_level0(electrons);
      for (int ti = 0; ti < pc.num_tiles(); ++ti) {
        const auto& t = pc.tile(ti);
        for (std::size_t p = 0; p < t.size(); ++p) {
          if (t.x[0][p] < 5.5e-6) {
            const Real u2 =
                t.u[0][p] * t.u[0][p] + t.u[1][p] * t.u[1][p] + t.u[2][p] * t.u[2][p];
            const Real ke = (std::sqrt(1 + u2 / (c * c)) - 1) * m_e * c * c;
            if (ke > 0.2 * mev) { q02 += t.w[p] * q_e; }
            if (ke > 0.5 * mev) { q05 += t.w[p] * q_e; }
          }
        }
      }
      history.add_row(
          {sim.time() * 1e15, sim.fields().field_energy(), q02 * 1e12, q05 * 1e12});
      std::printf("t = %5.1f fs  field E = %.3e J  extracted: %9.1f pC/m (>0.2 MeV)\n",
                  sim.time() * 1e15, sim.fields().field_energy(), q02 * 1e12);
    }
  }

  const auto espec =
      diag::energy_spectrum<2>(sim.species_level0(electrons), 0.1 * mev, 10 * mev, 50);
  const auto beam = diag::analyze_beam(espec, q_e);
  std::printf("\nhot-electron spectral peak %.2f MeV (foil ions intact: %lld)\n",
              beam.peak_energy / mev, static_cast<long long>(sim.num_particles(ions)));

  history.write(out.path("mirror_history.csv"));
  diag::write_field_2d(out.path("mirror_field.csv"), sim.fields().E(), fields::Y);
  if (args.memory) {
    const auto& ledger = obs::memory_ledger();
    std::printf("memory: %s live (high water %s)\n",
                obs::format_bytes(double(ledger.total_current())).c_str(),
                obs::format_bytes(double(ledger.total_high_water())).c_str());
  }
  std::printf("wrote mirror_history.csv, mirror_field.csv in %s/\n", out.dir().c_str());
  return 0;
}
