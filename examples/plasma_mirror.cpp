// Plasma mirror: an intense laser reflecting off an overdense solid-density
// target (paper Refs. [16]-[20]) — the injection stage of the hybrid scheme.
// The laser impinges obliquely (30 degrees; the paper's science case uses
// 45) with p-polarization, so Brunel/vacuum heating pulls electron bunches
// out of the surface once per cycle.
//
// Demonstrates: overdense slab targets, two mobile species, oblique
// incidence via the antenna phase tilt, p- vs s-polarization, extraction of
// charge from a solid surface.
//
// Run: ./plasma_mirror [--outdir DIR] [a0] [--s-pol]
// Output (in --outdir, default out/): mirror_history.csv, mirror_field.csv

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "src/core/simulation.hpp"
#include "src/diag/csv_writer.hpp"
#include "src/diag/output_dir.hpp"
#include "src/diag/spectrum.hpp"

using namespace mrpic;
using namespace mrpic::constants;

int main(int argc, char** argv) {
  const auto out = diag::OutputDir::from_args(argc, argv);
  Real a0 = 8.0;
  bool p_pol = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--s-pol") == 0) {
      p_pol = false;
    } else {
      a0 = std::atof(argv[i]);
    }
  }

  // 10 x 10 um; 0.05 um (lambda/16) cells along x, 0.1 um along y (the
  // tilted wavefront needs transverse resolution too).
  core::SimulationConfig<2> cfg;
  cfg.domain = Box2(IntVect2(0, 0), IntVect2(199, 99));
  cfg.prob_lo = RealVect2(0, 0);
  cfg.prob_hi = RealVect2(10e-6, 10e-6);
  cfg.periodic = {false, false};
  cfg.use_pml = true;
  cfg.pml.npml = 10;
  cfg.max_grid_size = IntVect2(100, 100);
  cfg.shape_order = 3;

  core::Simulation<2> sim(cfg);

  const Real wavelength = 0.8e-6;
  const Real nc = plasma::critical_density(wavelength);

  // Solid foil at x = 6..7.5 um, 20 n_c (mildly overdense to stay laptop-
  // scale; the paper's science case used 50-55 n_c).
  plasma::InjectorConfig<2> inj;
  inj.density = plasma::slab<2>(20 * nc, 6e-6, 7.5e-6);
  inj.ppc = IntVect2(3, 2); // like the paper's 3x2(x3) solid loading
  const int electrons = sim.add_species(particles::Species::electron(), inj);
  // Mobile ions keep the foil from exploding unphysically fast.
  plasma::InjectorConfig<2> ion_inj = inj;
  const int ions = sim.add_species(particles::Species::proton(), ion_inj);

  laser::LaserConfig lc;
  lc.a0 = a0;
  lc.wavelength = wavelength;
  lc.waist = 2.5e-6;
  lc.duration = 8e-15;
  lc.t_peak = 20e-15;
  lc.x_antenna = 1.0e-6;
  lc.center = {2.8e-6, 0};
  lc.tilt = 30.0 * pi / 180.0;   // oblique incidence
  lc.focal_distance = 5e-6;
  lc.polarization = p_pol ? 1 : 2; // Ey = p-pol (in-plane), Ez = s-pol
  sim.add_laser(lc);
  sim.init();

  std::printf("plasma mirror: n/n_c = 20, a0 = %.1f, 30 deg incidence, %s-pol, %lld particles\n",
              a0, p_pol ? "p" : "s", static_cast<long long>(sim.total_particles()));

  diag::CsvSeries history(
      {"t_fs", "field_energy_J", "extracted_gt_0p2MeV_pC", "extracted_gt_0p5MeV_pC"});
  const Real mev = 1e6 * q_e;

  while (sim.time() < 90e-15) {
    sim.step();
    if (sim.step_count() % 50 == 0) {
      // Extracted charge: energetic electrons in front of the foil.
      Real q02 = 0, q05 = 0;
      const auto& pc = sim.species_level0(electrons);
      for (int ti = 0; ti < pc.num_tiles(); ++ti) {
        const auto& t = pc.tile(ti);
        for (std::size_t p = 0; p < t.size(); ++p) {
          if (t.x[0][p] < 5.5e-6) {
            const Real u2 =
                t.u[0][p] * t.u[0][p] + t.u[1][p] * t.u[1][p] + t.u[2][p] * t.u[2][p];
            const Real ke = (std::sqrt(1 + u2 / (c * c)) - 1) * m_e * c * c;
            if (ke > 0.2 * mev) { q02 += t.w[p] * q_e; }
            if (ke > 0.5 * mev) { q05 += t.w[p] * q_e; }
          }
        }
      }
      history.add_row(
          {sim.time() * 1e15, sim.fields().field_energy(), q02 * 1e12, q05 * 1e12});
      std::printf("t = %5.1f fs  field E = %.3e J  extracted: %9.1f pC/m (>0.2 MeV)\n",
                  sim.time() * 1e15, sim.fields().field_energy(), q02 * 1e12);
    }
  }

  const auto spec =
      diag::energy_spectrum<2>(sim.species_level0(electrons), 0.1 * mev, 10 * mev, 50);
  const auto beam = diag::analyze_beam(spec, q_e);
  std::printf("\nhot-electron spectral peak %.2f MeV (foil ions intact: %lld)\n",
              beam.peak_energy / mev, static_cast<long long>(sim.num_particles(ions)));

  history.write(out.path("mirror_history.csv"));
  diag::write_field_2d(out.path("mirror_field.csv"), sim.fields().E(), fields::Y);
  std::printf("wrote mirror_history.csv, mirror_field.csv in %s/\n", out.dir().c_str());
  return 0;
}
