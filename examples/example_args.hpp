#pragma once

// Shared argv parsing for the example drivers (laser_wakefield,
// hybrid_target_mr, resilient_lwfa): one place for the common observability
// flags instead of three copies of the same strcmp loop. --outdir is parsed
// by diag::OutputDir::from_args; this helper only skips its value.
//
//   --health              in-situ invariant ledger + watchdog (src/health)
//   --insitu              in-situ physics registry + streaming (src/insitu)
//   --memory              byte ledger published as mem_* gauges, per-rank
//                         resident model + memory_heatmap.csv, "## Memory"
//                         perf-report section (src/obs memory observability)
//   --node-budget-gb G    per-rank memory budget for the OOM headroom gauge
//                         and first-rank-to-OOM prediction (e.g. 16 =
//                         Summit V100, 40 = Perlmutter A100; see
//                         perf::Machine::hbm_gb_device). Implies --memory.
//   --no-mr               disable the MR patch (hybrid_target_mr only)
//   <number>              t_end in femtoseconds (positional)

#include <cstdlib>
#include <cstring>

#include "src/core/simulation.hpp"

namespace examples {

struct ExampleArgs {
  bool health = false;
  bool insitu = false;
  bool memory = false;
  bool no_mr = false;
  double node_budget_gb = 0; // 0 = no budget configured
  double t_end = 0;          // seconds (default passed to parse, in fs)

  // Memory-observability config for core::Simulation::enable_memory_obs.
  mrpic::core::MemoryObsConfig memory_cfg() const {
    mrpic::core::MemoryObsConfig cfg;
    cfg.interval = 1;
    cfg.node_budget_gb = node_budget_gb;
    return cfg;
  }
};

inline ExampleArgs parse_example_args(int argc, char** argv, double default_t_end_fs) {
  ExampleArgs a;
  a.t_end = default_t_end_fs * 1e-15;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--health") == 0) {
      a.health = true;
    } else if (std::strcmp(argv[i], "--insitu") == 0) {
      a.insitu = true;
    } else if (std::strcmp(argv[i], "--memory") == 0) {
      a.memory = true;
    } else if (std::strcmp(argv[i], "--node-budget-gb") == 0 && i + 1 < argc) {
      a.node_budget_gb = std::atof(argv[++i]);
      a.memory = true;
    } else if (std::strcmp(argv[i], "--no-mr") == 0) {
      a.no_mr = true;
    } else if (std::strcmp(argv[i], "--outdir") == 0) {
      ++i; // value consumed by diag::OutputDir::from_args
    } else if (argv[i][0] != '-') {
      a.t_end = std::atof(argv[i]) * 1e-15;
    }
  }
  return a;
}

} // namespace examples
