#pragma once

// Shared argv parsing for the example drivers: one place for the common
// observability flags instead of per-example copies of the same strcmp
// loop. --outdir is parsed by diag::OutputDir::from_args; this helper only
// skips its value. Unknown flags are rejected with a usage message and
// exit code 2 (a mistyped --helath silently ignored is a silently
// unmonitored run).
//
//   --health              in-situ invariant ledger + watchdog (src/health)
//   --insitu              in-situ physics registry + streaming (src/insitu)
//   --memory              byte ledger published as mem_* gauges, per-rank
//                         resident model + memory_heatmap.csv, "## Memory"
//                         perf-report section (src/obs memory observability)
//   --node-budget-gb G    per-rank memory budget for the OOM headroom gauge
//                         and first-rank-to-OOM prediction (e.g. 16 =
//                         Summit V100, 40 = Perlmutter A100; see
//                         perf::Machine::hbm_gb_device). Implies --memory.
//   --no-mr               disable the MR patch (MR-capable examples)
//   <number>              t_end in femtoseconds (positional)
//
// Per-example flags (plasma_mirror --a0/--s-pol, boosted_frame --gamma)
// register as ExtraFlag entries so they share the strict parse and the
// usage text.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/core/simulation.hpp"

namespace examples {

// One example-specific flag: either a boolean switch (`flag`) or a flag
// consuming one numeric value (`value`). Exactly one target must be set.
struct ExtraFlag {
  const char* name;        // e.g. "--gamma"
  bool* flag = nullptr;    // boolean switch target
  double* value = nullptr; // numeric-value target (consumes the next arg)
  const char* help = "";
};

struct ExampleArgs {
  bool health = false;
  bool insitu = false;
  bool memory = false;
  bool no_mr = false;
  double node_budget_gb = 0; // 0 = no budget configured
  double t_end = 0;          // seconds (default passed to parse, in fs)

  // Memory-observability config for core::Simulation::enable_memory_obs.
  mrpic::core::MemoryObsConfig memory_cfg() const {
    mrpic::core::MemoryObsConfig cfg;
    cfg.interval = 1;
    cfg.node_budget_gb = node_budget_gb;
    return cfg;
  }
};

inline void print_example_usage(const char* prog,
                                const std::vector<ExtraFlag>& extras) {
  std::fprintf(stderr,
               "usage: %s [options] [t_end_fs]\n"
               "  --outdir DIR          artifact directory (default out/)\n"
               "  --health              invariant ledger + NaN/stability watchdog\n"
               "  --insitu              in-situ physics series + streaming exporter\n"
               "  --memory              byte ledger + per-rank memory model\n"
               "  --node-budget-gb G    OOM headroom vs G GiB/rank (implies --memory)\n"
               "  --no-mr               disable the MR patch\n",
               prog);
  for (const auto& e : extras) {
    std::fprintf(stderr, "  %-21s %s\n",
                 (std::string(e.name) + (e.value != nullptr ? " V" : "")).c_str(),
                 e.help);
  }
  std::fprintf(stderr, "  t_end_fs              end time in femtoseconds (positional)\n");
}

inline ExampleArgs parse_example_args(int argc, char** argv, double default_t_end_fs,
                                      const std::vector<ExtraFlag>& extras = {}) {
  ExampleArgs a;
  a.t_end = default_t_end_fs * 1e-15;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--health") == 0) {
      a.health = true;
    } else if (std::strcmp(argv[i], "--insitu") == 0) {
      a.insitu = true;
    } else if (std::strcmp(argv[i], "--memory") == 0) {
      a.memory = true;
    } else if (std::strcmp(argv[i], "--node-budget-gb") == 0 && i + 1 < argc) {
      a.node_budget_gb = std::atof(argv[++i]);
      a.memory = true;
    } else if (std::strcmp(argv[i], "--no-mr") == 0) {
      a.no_mr = true;
    } else if (std::strcmp(argv[i], "--outdir") == 0) {
      ++i; // value consumed by diag::OutputDir::from_args
    } else if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      print_example_usage(argv[0], extras);
      std::exit(0);
    } else if (argv[i][0] != '-') {
      a.t_end = std::atof(argv[i]) * 1e-15;
    } else {
      bool matched = false;
      for (const auto& e : extras) {
        if (std::strcmp(argv[i], e.name) != 0) { continue; }
        if (e.flag != nullptr) {
          *e.flag = true;
          matched = true;
        } else if (e.value != nullptr && i + 1 < argc) {
          *e.value = std::atof(argv[++i]);
          matched = true;
        }
        break;
      }
      if (!matched) {
        std::fprintf(stderr, "%s: unknown flag '%s'\n", argv[0], argv[i]);
        print_example_usage(argv[0], extras);
        std::exit(2);
      }
    }
  }
  return a;
}

} // namespace examples
