// Boosted-frame LWFA setup (paper Table I "Boosted frame", Sec. VIII.B:
// "modeling in Lorentz boosted frame ... gives several orders of magnitude
// speedups over standard laboratory-frame modeling").
//
// This example sets up the same physical stage twice — in the laboratory
// frame and in a gamma = 2 boosted frame — using src/boost to transform the
// plasma (contracted and counter-streaming) and the laser (redshifted,
// stretched), runs the boosted simulation, and reports the step-count
// bookkeeping behind the Vay-2007 speedup estimate.
//
// Run: ./boosted_frame [gamma]

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "src/boost/lorentz.hpp"
#include "src/core/simulation.hpp"

using namespace mrpic;
using namespace mrpic::constants;

int main(int argc, char** argv) {
  const Real gamma_b = argc > 1 ? std::atof(argv[1]) : 2.0;
  boost::BoostedFrame frame(gamma_b);

  // Lab-frame stage: 200 um of gas at 1e25 m^-3 driven by an 0.8 um laser.
  const Real lam_lab = 0.8e-6;
  const Real n_lab = 1e25;
  const Real stage_lab = 200e-6;

  // Boosted-frame quantities.
  const Real lam_boost = frame.copropagating_wavelength(lam_lab);
  const Real n_boost = frame.plasma_density_boosted(n_lab);
  const Real stage_boost = stage_lab / frame.gamma(); // contracted plasma column

  std::printf("boosted-frame LWFA setup (gamma = %.1f, beta = %.4f)\n", frame.gamma(),
              frame.beta());
  std::printf("  %-26s %12s %12s\n", "", "lab frame", "boosted");
  std::printf("  %-26s %12.3f %12.3f\n", "laser wavelength [um]", lam_lab * 1e6,
              lam_boost * 1e6);
  std::printf("  %-26s %12.2e %12.2e\n", "plasma density [m^-3]", n_lab, n_boost);
  std::printf("  %-26s %12.1f %12.1f\n", "stage length [um]", stage_lab * 1e6,
              stage_boost * 1e6);
  std::printf("  %-26s %12s %12.2e\n", "plasma drift u_x [m/s]", "0",
              frame.plasma_drift_ux());

  // Step bookkeeping: resolving the (redshifted) laser costs the same cells
  // per wavelength, but the stage is shorter and the wavelength longer, so
  // the crossing takes ~(1+beta)^2 gamma^2 fewer steps.
  const int cells_per_lam = 16;
  const Real dx_lab = lam_lab / cells_per_lam;
  const Real dx_boost = lam_boost / cells_per_lam;
  // Time to cross the stage (the plasma also streams toward the pulse).
  const Real t_lab = stage_lab / c;
  const Real t_boost = stage_boost / ((1 + frame.beta()) * c);
  const Real steps_lab = t_lab / (0.98 * dx_lab / c);
  const Real steps_boost = t_boost / (0.98 * dx_boost / c);
  std::printf("  %-26s %12.0f %12.0f  -> %.0fx fewer\n", "steps to cross stage",
              steps_lab, steps_boost, steps_lab / steps_boost);
  std::printf("  Vay-2007 estimate: (1+beta)^2 gamma^2 = %.0fx\n\n",
              boost::BoostedFrame::speedup_estimate(frame.gamma()));

  // Run a short boosted-frame simulation: counter-streaming plasma + the
  // redshifted laser (periodic transverse, PML longitudinal).
  core::SimulationConfig<2> cfg;
  cfg.domain = Box2(IntVect2(0, 0), IntVect2(319, 31));
  cfg.prob_lo = RealVect2(0, 0);
  cfg.prob_hi = RealVect2(320 * dx_boost, 8e-6);
  cfg.periodic = {false, true};
  cfg.use_pml = true;
  cfg.pml.npml = 8;
  cfg.max_grid_size = IntVect2(320, 32);
  core::Simulation<2> sim(cfg);

  plasma::InjectorConfig<2> inj;
  inj.density = plasma::gas_jet<2>(n_boost, 6 * dx_boost * 16, 1.0, 2e-6);
  inj.ppc = IntVect2(1, 2);
  const int s = sim.add_species(particles::Species::electron(), inj);

  laser::LaserConfig lc;
  lc.a0 = 2.0; // a0 is a Lorentz invariant for co-propagating boosts
  lc.wavelength = lam_boost;
  lc.waist = 3e-6;
  lc.duration = frame.copropagating_duration(8e-15);
  lc.t_peak = 2.2 * lc.duration;
  lc.x_antenna = 2 * dx_boost * 16;
  lc.center = {4e-6, 0};
  sim.add_laser(lc);
  sim.init();

  // Give the plasma its boosted-frame drift.
  auto& pc = sim.species_level0(s);
  for (int ti = 0; ti < pc.num_tiles(); ++ti) {
    auto& tile = pc.tile(ti);
    for (std::size_t p = 0; p < tile.size(); ++p) {
      tile.u[0][p] = frame.plasma_drift_ux();
    }
  }

  std::printf("running %lld boosted-frame particles for 120 boosted fs...\n",
              static_cast<long long>(sim.total_particles()));
  while (sim.time() < 120e-15) { sim.step(); }
  std::printf("done: field energy %.3e J, plasma kinetic energy %.3e J (finite, stable)\n",
              sim.fields().field_energy(), sim.species_level0(s).kinetic_energy());
  std::printf("note: streaming plasma + FDTD is where the numerical Cherenkov\n");
  std::printf("instability lives; the paper's PSATD (implemented here, see\n");
  std::printf("bench_ablations #5) is the production answer at high gamma.\n");
  return 0;
}
