// Boosted-frame LWFA setup (paper Table I "Boosted frame", Sec. VIII.B:
// "modeling in Lorentz boosted frame ... gives several orders of magnitude
// speedups over standard laboratory-frame modeling").
//
// This example describes the same physical stage twice — in the laboratory
// frame and in a Lorentz-boosted frame — using src/boost to transform the
// plasma (contracted and counter-streaming) and the laser (redshifted,
// stretched), runs the boosted simulation, and reports the step-count
// bookkeeping behind the Vay-2007 speedup estimate. The boosted setup
// itself lives in the scenario library (make_boosted_lwfa; registered as
// "boosted_lwfa" at gamma = 2 and "boosted_lwfa_g4" at gamma = 4).
//
// Run: ./boosted_frame [--outdir DIR] [--gamma G] [--health] [--insitu]
//                      [--memory] [--node-budget-gb G] [t_end_fs]
// (gamma moved from a positional to --gamma when the examples adopted the
// shared strict parser; the positional is now t_end_fs, in boosted-frame fs)

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "src/boost/lorentz.hpp"
#include "src/core/simulation.hpp"
#include "src/diag/output_dir.hpp"
#include "src/scenario/builder.hpp"
#include "src/scenario/library.hpp"

#include "example_args.hpp"

using namespace mrpic;
using namespace mrpic::constants;

int main(int argc, char** argv) {
  const auto out = diag::OutputDir::from_args(argc, argv);
  double gamma_b = 2.0;
  const auto args = examples::parse_example_args(
      argc, argv, /*default fs*/ 120.0,
      {{"--gamma", nullptr, &gamma_b, "boost gamma (default 2)"}});
  boost::BoostedFrame frame(gamma_b);

  // Lab-frame stage: 200 um of gas at 1e25 m^-3 driven by an 0.8 um laser.
  const Real lam_lab = 0.8e-6;
  const Real n_lab = 1e25;
  const Real stage_lab = 200e-6;

  // Boosted-frame quantities (the same transforms make_boosted_lwfa applies).
  const Real lam_boost = frame.copropagating_wavelength(lam_lab);
  const Real n_boost = frame.plasma_density_boosted(n_lab);
  const Real stage_boost = stage_lab / frame.gamma(); // contracted plasma column

  std::printf("boosted-frame LWFA setup (gamma = %.1f, beta = %.4f)\n", frame.gamma(),
              frame.beta());
  std::printf("  %-26s %12s %12s\n", "", "lab frame", "boosted");
  std::printf("  %-26s %12.3f %12.3f\n", "laser wavelength [um]", lam_lab * 1e6,
              lam_boost * 1e6);
  std::printf("  %-26s %12.2e %12.2e\n", "plasma density [m^-3]", n_lab, n_boost);
  std::printf("  %-26s %12.1f %12.1f\n", "stage length [um]", stage_lab * 1e6,
              stage_boost * 1e6);
  std::printf("  %-26s %12s %12.2e\n", "plasma drift u_x [m/s]", "0",
              frame.plasma_drift_ux());

  // Step bookkeeping: resolving the (redshifted) laser costs the same cells
  // per wavelength, but the stage is shorter and the wavelength longer, so
  // the crossing takes ~(1+beta)^2 gamma^2 fewer steps.
  const int cells_per_lam = 16;
  const Real dx_lab = lam_lab / cells_per_lam;
  const Real dx_boost = lam_boost / cells_per_lam;
  // Time to cross the stage (the plasma also streams toward the pulse).
  const Real t_lab = stage_lab / c;
  const Real t_boost = stage_boost / ((1 + frame.beta()) * c);
  const Real steps_lab = t_lab / (0.98 * dx_lab / c);
  const Real steps_boost = t_boost / (0.98 * dx_boost / c);
  std::printf("  %-26s %12.0f %12.0f  -> %.0fx fewer\n", "steps to cross stage",
              steps_lab, steps_boost, steps_lab / steps_boost);
  std::printf("  Vay-2007 estimate: (1+beta)^2 gamma^2 = %.0fx\n\n",
              boost::BoostedFrame::speedup_estimate(frame.gamma()));

  // Run a short boosted-frame simulation: counter-streaming plasma + the
  // redshifted laser (periodic transverse, PML longitudinal). The spec
  // carries the transformed parameters and the plasma drift.
  scenario::ScenarioSpec spec = scenario::make_boosted_lwfa(gamma_b);
  scenario::BuildOptions bopt;
  bopt.init = false;
  auto sim_ptr = scenario::build_simulation(spec, bopt);
  core::Simulation<2>& sim = *sim_ptr;
  const int s = 0; // the spec's single (drifting) species

  if (args.memory) { sim.enable_memory_obs(args.memory_cfg()); }
  if (args.health) {
    health::MonitorConfig hcfg = spec.health;
    hcfg.alerts_path = out.path("boosted_alerts.jsonl");
    sim.enable_health(hcfg);
  }
  if (args.insitu) {
    insitu::InsituConfig icfg = spec.insitu;
    icfg.series_path = out.path("boosted_insitu.jsonl");
    icfg.stream.basename = out.path("boosted_stream");
    sim.enable_insitu(icfg);
  }
  sim.init();
  scenario::apply_species_drifts(sim, spec); // the boosted-frame plasma stream

  std::printf("running %lld boosted-frame particles for %.0f boosted fs...\n",
              static_cast<long long>(sim.total_particles()), args.t_end * 1e15);
  while (sim.time() < args.t_end) { sim.step(); }
  std::printf("done: field energy %.3e J, plasma kinetic energy %.3e J (finite, stable)\n",
              sim.fields().field_energy(), sim.species_level0(s).kinetic_energy());
  std::printf("note: streaming plasma + FDTD is where the numerical Cherenkov\n");
  std::printf("instability lives; the paper's PSATD (implemented here, see\n");
  std::printf("bench_ablations #5) is the production answer at high gamma.\n");
  return 0;
}
