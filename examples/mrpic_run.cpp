// mrpic_run: the single scenario driver. Every registered workload —
// uniform benchmark boxes, the LWFA injection variants, boosted-frame LWFA,
// plasma mirror, hybrid solid-gas target, thin-foil ion acceleration — runs
// through one lifecycle (src/scenario/driver.cpp) with the shared
// observability flags.
//
//   mrpic_run --list
//   mrpic_run --scenario lwfa_mr --steps 50 --health --insitu --memory

#include "src/scenario/driver.hpp"

int main(int argc, char** argv) {
  return mrpic::scenario::run_scenario_main(argc, argv);
}
