#include "src/core/simulation.hpp"

#include <cassert>
#include <limits>

#include "src/obs/event_log.hpp"
#include "src/resil/recovery.hpp"

namespace mrpic::core {

template <int DIM>
Simulation<DIM>::Simulation(SimulationConfig<DIM> cfg) : m_cfg(std::move(cfg)), m_lb(m_cfg.lb) {
  m_lb.set_metrics(&m_metrics);
}

template <int DIM>
int Simulation<DIM>::add_species(particles::Species sp) {
  assert(!m_initialized);
  m_species.push_back(SpeciesData{particles::ParticleContainer<DIM>(sp, {}),
                                  particles::ParticleContainer<DIM>(sp, {}), std::nullopt});
  return static_cast<int>(m_species.size()) - 1;
}

template <int DIM>
int Simulation<DIM>::add_species(particles::Species sp, plasma::InjectorConfig<DIM> injector) {
  const int id = add_species(std::move(sp));
  m_species[id].injector = std::move(injector);
  return id;
}

template <int DIM>
void Simulation<DIM>::add_laser(const laser::LaserConfig& cfg) {
  assert(!m_initialized);
  m_lasers.emplace_back(cfg);
}

template <int DIM>
void Simulation<DIM>::set_moving_window(int dir, Real speed, Real start_time) {
  assert(!m_initialized);
  m_window = fields::MovingWindow<DIM>(dir, speed, start_time);
}

template <int DIM>
void Simulation<DIM>::enable_cluster_obs(cluster::CommModel cm, double cost_unit_s) {
  m_cluster = std::make_unique<cluster::SimCluster>(m_cfg.nranks, cm);
  m_cluster->set_metrics(&m_metrics);
  m_cluster_cost_unit_s = cost_unit_s;
  m_rank_recorder = obs::RankRecorder(m_cfg.nranks);
  m_rank_recorder.set_event_log(m_event_log);  // survive the reassignment
  m_lb.set_rank_recorder(&m_rank_recorder);
}

template <int DIM>
void Simulation<DIM>::enable_memory_obs(MemoryObsConfig cfg) {
  m_memory_cfg = cfg;
  m_memory_enabled = true;
}

template <int DIM>
void Simulation<DIM>::enable_kernel_obs(obs::KernelObsConfig cfg) {
  m_kernel_probe = std::make_unique<obs::KernelProbe>(std::move(cfg));
}

template <int DIM>
obs::MrSavingsInputs Simulation<DIM>::mr_savings_inputs() const {
  obs::MrSavingsInputs in;
  in.dim = DIM;
  in.ratio = m_patch ? m_patch->config().ratio : 1;
  in.bytes_per_real = static_cast<int>(sizeof(Real));
  const auto& ba = m_fields.box_array();
  const int ng = m_fields.num_ghost();
  for (int i = 0; i < ba.size(); ++i) {
    in.level0_grown_cells += ba[i].grown(ng).num_cells();
  }
  in.num_particles = total_particles();
  // Patch storage persists after remove() (only the update is skipped), so
  // the byte model keys on patch existence, not activity.
  if (m_patch) {
    const int ngf = m_patch->fine().num_ghost();
    in.fine_grown_cells = m_patch->fine_region().grown(ngf).num_cells();
    in.coarse_grown_cells = m_patch->region().grown(ngf).num_cells();
    in.aux_grown_cells =
        m_patch->fine_region().grown(m_patch->aux_E().num_ghost()).num_cells();
    const auto pml_cells = [](const fields::Pml<DIM>& pml) {
      std::int64_t n = 0;
      const auto& fab = pml.split_fab();
      for (int i = 0; i < fab.num_fabs(); ++i) { n += fab.grown_box(i).num_cells(); }
      return n;
    };
    in.fine_pml_cells = pml_cells(m_patch->fine_pml());
    in.coarse_pml_cells = pml_cells(m_patch->coarse_pml());
  }
  return in;
}

template <int DIM>
void Simulation<DIM>::enable_health(health::MonitorConfig cfg) {
  m_health = std::make_unique<health::HealthMonitor>(std::move(cfg));
  m_health->set_metrics(&m_metrics);
  m_health->set_event_log(m_event_log);
}

template <int DIM>
void Simulation<DIM>::enable_event_log(obs::EventLog* log) {
  m_event_log = log;
  m_rank_recorder.set_event_log(log);
  // Rebalance snapshots reach the timeline through the recorder even when
  // cluster obs is off (count_rebalance publishes via add_rebalance).
  m_lb.set_rank_recorder(&m_rank_recorder);
  if (m_health) { m_health->set_event_log(log); }
}

template <int DIM>
void Simulation<DIM>::enable_insitu(insitu::InsituConfig cfg) {
  m_insitu_cfg = std::move(cfg);
  m_insitu = std::make_unique<insitu::Registry>();
  m_insitu->set_metrics(&m_metrics);
  m_insitu->set_history_limit(m_insitu_cfg.history_limit);
  if (!m_insitu_cfg.series_path.empty()) {
    m_insitu->open_series(m_insitu_cfg.series_path, m_insitu_cfg.series_append);
  }
  if (m_insitu_cfg.stream_interval > 0 && !m_insitu_cfg.stream.basename.empty()) {
    m_insitu_stream = std::make_unique<insitu::StreamWriter>(m_insitu_cfg.stream);
  }
  register_insitu_diagnostics();
}

template <int DIM>
void Simulation<DIM>::remove_rank(int dead_rank) {
  assert(m_initialized);
  assert(m_cfg.nranks > 1);
  assert(dead_rank >= 0 && dead_rank < m_cfg.nranks);
  const auto before = m_dm;
  m_dm = resil::remap_after_failure(m_dm, box_cost_heuristic(), dead_rank).mapping;
  m_cfg.nranks -= 1;
  if (m_cluster) {
    // Rebuild the simulated cluster at the shrunken size; keep the wire
    // model, metrics sink and any attached fault hooks.
    const auto* faults = m_cluster->faults();
    const auto cm = m_cluster->comm();
    m_cluster = std::make_unique<cluster::SimCluster>(m_cfg.nranks, cm);
    m_cluster->set_metrics(&m_metrics);
    m_cluster->set_faults(faults);
  }
  m_lb.record_costs(box_cost_heuristic());
  m_lb.count_rebalance(before, m_dm);
}

template <int DIM>
void Simulation<DIM>::enable_mr_patch(const typename mr::MRPatch<DIM>::Config& cfg) {
  assert(!m_initialized);
  const mrpic::Geometry<DIM> geom(m_cfg.domain, m_cfg.prob_lo, m_cfg.prob_hi,
                                  m_cfg.periodic);
  m_patch = std::make_unique<mr::MRPatch<DIM>>(geom, cfg);
}

template <int DIM>
void Simulation<DIM>::init() {
  assert(!m_initialized);
  const mrpic::Geometry<DIM> geom(m_cfg.domain, m_cfg.prob_lo, m_cfg.prob_hi,
                                  m_cfg.periodic);
  const auto ba = mrpic::BoxArray<DIM>::decompose(m_cfg.domain, m_cfg.max_grid_size);
  m_dm = dist::DistributionMapping::make(ba, m_cfg.nranks, m_cfg.lb.strategy);
  {
    obs::ScopedMemTag mem_tag("fields.level0");
    m_fields = fields::FieldSet<DIM>(geom, ba, m_dm);
  }

  if (m_cfg.maxwell == MaxwellSolver::PSATD) {
    // Spectral solve: fully periodic, one global box, no PML/MR.
    for (int d = 0; d < DIM; ++d) { assert(m_cfg.periodic[d]); }
    assert(ba.size() == 1 && "PSATD requires a single-box level");
    assert(!m_cfg.use_pml && m_patch == nullptr);
    m_psatd = std::make_unique<fields::PsatdSolver<DIM>>(geom);
  }

  if (m_cfg.use_pml) {
    std::array<bool, DIM> absorb;
    for (int d = 0; d < DIM; ++d) { absorb[d] = !m_cfg.periodic[d]; }
    obs::ScopedMemTag mem_tag("pml.level0");
    m_pml = std::make_unique<fields::Pml<DIM>>(geom, m_cfg.domain, absorb, m_cfg.pml);
  }

  // Global time step: the finest level sets the CFL limit (no subcycling,
  // paper Sec. V.B).
  m_cfl_limit_dt = m_patch ? fields::cfl_dt(geom.refined(m_patch->config().ratio), Real(1))
                           : fields::cfl_dt(geom, Real(1));
  if (m_cfg.forced_dt > 0) {
    m_dt = m_cfg.forced_dt;
  } else if (m_patch) {
    m_dt = fields::cfl_dt(geom.refined(m_patch->config().ratio), m_cfg.cfl);
  } else {
    m_dt = fields::cfl_dt(geom, m_cfg.cfl);
  }

  // Build particle containers on the final box arrays and load plasma.
  for (auto& sd : m_species) {
    const auto sp = sd.level0.species();
    sd.level0 = particles::ParticleContainer<DIM>(sp, ba);
    if (m_patch) {
      sd.patch =
          particles::ParticleContainer<DIM>(sp, mrpic::BoxArray<DIM>(m_patch->fine_region()));
    }
    if (sd.injector) {
      plasma::PlasmaInjector<DIM> inj(*sd.injector);
      inj.inject_all(sd.level0, geom);
    }
  }
  m_initialized = true;

  // Seed patch containers and the auxiliary gather fields.
  if (m_patch) {
    migrate_patch_particles();
    m_patch->build_aux(m_fields);
  }

  if (m_event_log != nullptr) {
    m_event_log->publish("lifecycle", "init", obs::EventSeverity::Info, 0, "",
                         {{"boxes", double(ba.size())},
                          {"nranks", double(m_cfg.nranks)},
                          {"particles", double(total_particles())}});
  }
}

template <int DIM>
Real Simulation<DIM>::total_energy() const {
  Real e = m_fields.field_energy();
  for (const auto& sd : m_species) {
    e += sd.level0.kinetic_energy() + sd.patch.kinetic_energy();
  }
  return e;
}

} // namespace mrpic::core

// The PIC step machinery lives in pic_step.ipp; it must be visible here so
// the explicit class instantiations below cover every member.
#include "src/core/pic_step.ipp"

namespace mrpic::core {

template class Simulation<2>;
template class Simulation<3>;

} // namespace mrpic::core
