// One explicit PIC cycle (paper Fig. 3) with mesh refinement, moving window,
// PML boundaries and dynamic load balancing. Included by simulation.cpp.

#include <chrono>

#include "src/diag/diagnostics.hpp"
#include "src/particles/sorting.hpp"

namespace mrpic::core {

template <int DIM>
void Simulation<DIM>::step() {
  assert(m_initialized);
  const std::int64_t this_step = m_step;
  m_profiler.set_step(this_step);
  m_rank_recorder.set_step(this_step); // tags rebalance + cluster records
  m_metrics.begin_step(this_step);
  // Flat region totals before the step: the after-before difference is the
  // per-region breakdown of exactly this step (StepReport::region_s).
  const auto flat_before = m_profiler.flat_totals();

  m_window_shifted = false;
  const bool health_residual = m_health && m_health->residual_due(this_step);

  {
    auto t_step = m_profiler.scope("step");

    // 0. Residual probe, charge side: rho at t^n from the pre-push particle
    // positions (private copies; the physics path never sees them).
    if (health_residual) {
      auto t = m_profiler.scope("health");
      begin_health_probe();
    }

    // 1. Particles: gather -> push -> deposit (fills J on every level).
    {
      auto t = m_profiler.scope("particles");
      advance_particles();
    }

    // 1b. Residual probe, current side: rho at t^{n+1} plus the raw particle
    // currents, snapshotted before the laser antenna and the MR coupling add
    // non-particle terms — the continuity identity is particle-only.
    if (health_residual) {
      auto t = m_profiler.scope("health");
      snapshot_health_currents();
    }

    // 2. External sources: laser antenna currents at t^{n+1/2} (level 0; the
    // laser enters MR patches through the parent term of the aux fields).
    {
      auto t = m_profiler.scope("laser");
      for (const auto& laser : m_lasers) {
        laser.deposit_current(m_fields, m_time + m_dt / 2);
      }
    }

    // 3. Current reductions: fold ghost deposits into owners, then couple the
    // fine-patch current to the coarse companion and the parent.
    {
      auto t = m_profiler.scope("current_sync");
      m_fields.J().sum_boundary(m_fields.geom());
      if (m_patch && m_patch->active()) {
        m_patch->fine().J().sum_boundary(m_patch->fine().geom());
        m_patch->sync_currents(m_fields.J());
      }
    }

    // 4. Maxwell solve on all grids: B half / E full / B half.
    {
      auto t = m_profiler.scope("field_solve");
      solve_fields();
    }

    // 5. Auxiliary gather fields for the next step.
    if (m_patch && m_patch->active()) {
      auto t = m_profiler.scope("mr_aux");
      m_patch->build_aux(m_fields);
    }

    // 6. Moving window: scroll grids, drop/trim/inject particles.
    {
      auto t = m_profiler.scope("moving_window");
      apply_moving_window();
    }

    // 7. Particle housekeeping: redistribute, migrate across levels, sort.
    {
      auto t = m_profiler.scope("redistribute");
      std::int64_t escaped = 0;
      for (auto& sd : m_species) { escaped += sd.level0.redistribute(m_fields.geom()); }
      if (escaped > 0) {
        m_escaped_total += escaped;
        m_metrics.counter("particles_escaped").add(escaped);
      }
      if (m_patch) { migrate_patch_particles(); }
      if (m_cfg.sort_interval > 0 && (m_step + 1) % m_cfg.sort_interval == 0) {
        for (auto& sd : m_species) {
          for (int ti = 0; ti < sd.level0.num_tiles(); ++ti) {
            particles::sort_tile_by_cell(sd.level0.tile(ti), m_fields.geom(),
                                         sd.level0.box_array()[ti]);
          }
        }
      }
    }

    // 8. Patch lifecycle + load balancing.
    maybe_remove_patch();
    if (m_cfg.dynamic_lb && (m_step + 1) % m_cfg.lb_interval == 0) { maybe_rebalance(); }

    // 9. Virtual-cluster observation: replay this step's decomposition on
    // the simulated cluster to capture the per-rank picture.
    if (m_cluster) {
      auto t = m_profiler.scope("cluster_obs");
      observe_cluster(this_step);
    }

    // 9a. Kernel-grain observability: publish the probe's per-kernel
    // aggregates and locality model as kernel_* gauges on sampled steps (the
    // per-invocation records were collected inside advance_particles).
    if (m_kernel_probe && m_kernel_probe->due(this_step)) {
      auto t = m_profiler.scope("kernel_obs");
      observe_kernels(this_step);
    }

    m_time += m_dt;
    ++m_step;

    // 9b. Memory observability: refresh the per-species particle byte
    // accounts, model the per-rank resident footprint (feeding the memory
    // lanes of the step recorded by 9.) and publish the ledger as mem_*
    // gauges — before the health sample below so an OOM guard-rail
    // BoundRule on mem_total_bytes sees this step's occupancy.
    if (m_memory_enabled && m_memory_cfg.interval > 0 &&
        this_step % m_memory_cfg.interval == 0) {
      auto t = m_profiler.scope("memory");
      observe_memory(this_step);
    }

    // 10. Invariant ledger + watchdog: sample the end-of-step state (still
    // inside the "step" scope so the probe cost shows up in the attribution,
    // and before end_step() so the health_* gauges land in this step's
    // JSONL record).
    if (m_health && m_health->sample_due(this_step)) {
      auto t = m_profiler.scope("health");
      observe_health(this_step);
    }

    // 11. In-situ reduced physics diagnostics + streaming frames: same
    // placement rationale as health (inside "step" for attribution, before
    // end_step() so insitu_* gauges land in this step's metrics record).
    if (m_insitu &&
        (m_insitu->any_due(this_step) ||
         (m_insitu_stream && insitu::Registry::due(this_step, m_insitu_cfg.stream_interval)))) {
      auto t = m_profiler.scope("insitu");
      m_insitu->collect(this_step, m_time);
      maybe_stream_insitu(this_step);
    }
  }

  // Publish the unified per-step picture: counters into the registry, the
  // region second-breakdown into a StepReport for callbacks/benches.
  m_metrics.counter("cells_advanced").add(active_cells());
  m_report = obs::StepReport{};
  m_report.step = this_step;
  m_report.time = m_time;
  m_report.cells_advanced = active_cells();
  for (const auto& [name, s] : m_profiler.flat_totals()) {
    const auto it = flat_before.find(name);
    const double dt = s.inclusive_s - (it == flat_before.end() ? 0.0 : it->second.inclusive_s);
    if (dt > 0) { m_report.region_s[name] = dt; }
  }
  m_report.wall_s = m_report.region("step");
  m_metrics.gauge("step_wall_s").set(m_report.wall_s);
  const auto rec = m_metrics.end_step();
  {
    const auto it = rec.counters.find("particles_pushed");
    m_report.particles_pushed = it == rec.counters.end() ? 0 : it->second;
  }
  if (m_step_callback) { m_step_callback(m_report); }

  // 12. Health actions, then automatic checkpointing (after the report so
  // the policy sees this step's wall seconds; the write itself is outside
  // the step's timings). Checkpoint-now runs before any abort, so a fatal
  // alert with both actions saves state and then stops.
  if (m_health && m_health->consume_checkpoint_request() && m_ckpt_policy) {
    m_ckpt_policy->request_now();
  }
  maybe_checkpoint();
  if (m_health && m_health->abort_requested()) {
    m_health->flush(); // metrics JSONL, traces, ... are on disk before we die
    throw health::AbortError(m_health->abort_alert());
  }
}

template <int DIM>
void Simulation<DIM>::maybe_checkpoint() {
  if (!m_ckpt_policy || !m_ckpt_writer) { return; }
  m_ckpt_policy->add_step(m_report.wall_s);
  if (!m_ckpt_policy->should_checkpoint()) { return; }
  const bool health_forced = m_ckpt_policy->now_pending();
  auto t = m_profiler.scope("checkpoint");
  const auto t0 = std::chrono::steady_clock::now();
  const bool ok = m_ckpt_writer(*this);
  const double cost =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  // A failed write keeps the accruals, so the policy retries next step.
  if (!ok) { return; }
  m_ckpt_policy->notify_checkpoint(m_step, cost);
  // maybe_checkpoint runs after end_step(), so the counter's per-step delta
  // is invisible in the JSONL; the gauge carries the running total instead.
  m_metrics.counter("checkpoints").inc();
  m_metrics.gauge("checkpoints_total").set(
      static_cast<double>(m_metrics.counter_value("checkpoints")));
  m_metrics.gauge("checkpoint_cost_s").set(cost);
  m_metrics.gauge("checkpoint_interval_s").set(m_ckpt_policy->optimal_interval_s());
  m_rank_recorder.add_fault_event(
      {m_step - 1, health_forced ? "health_checkpoint" : "checkpoint", -1, cost, ""});
}

template <int DIM>
void Simulation<DIM>::advance_particles() {
  m_fields.zero_current();
  if (m_patch && m_patch->active()) {
    m_patch->fine().zero_current();
    m_patch->coarse().zero_current();
  }

  // Kernel-grain probing (enable_kernel_obs): on sampled steps each kernel
  // launch below is bracketed with a steady-clock pair and recorded at
  // tile/species granularity; off-cadence steps pay only this null check.
  obs::KernelProbe* probe =
      m_kernel_probe && m_kernel_probe->due(m_step) ? m_kernel_probe.get() : nullptr;
  const auto timed = [&](obs::KernelKind kind, const std::string& species_name,
                         int tile_idx, std::int64_t np, auto&& launch) {
    if (probe == nullptr) {
      launch();
      return;
    }
    const auto t0 = obs::Profiler::clock::now();
    launch();
    const double dt_s =
        std::chrono::duration<double>(obs::Profiler::clock::now() - t0).count();
    probe->record(kind, m_step, species_name, tile_idx, np, dt_s, m_cfg.shape_order,
                  DIM);
  };

  std::int64_t pushed = 0;
  for (auto& sd : m_species) {
    const Real q = sd.level0.species().charge;
    const Real mass = sd.level0.species().mass;
    const std::string& sp_name = sd.level0.species().name;

    // Level 0: tile-by-tile against the tile's own fab.
    for (int ti = 0; ti < sd.level0.num_tiles(); ++ti) {
      auto& tile = sd.level0.tile(ti);
      if (tile.size() == 0) { continue; }
      const auto np = static_cast<std::int64_t>(tile.size());
      // Locality sample before the push: the gather walked exactly this
      // particle order over the pre-push positions.
      if (probe != nullptr) {
        probe->sample_locality<DIM>(tile, m_fields.geom(), sd.level0.box_array()[ti]);
      }
      timed(obs::KernelKind::Gather, sp_name, ti, np, [&] {
        particles::gather_fields<DIM>(m_cfg.shape_order, tile, m_fields.geom(),
                                      m_fields.E().const_array(ti),
                                      m_fields.B().const_array(ti), m_gathered);
      });
      for (int d = 0; d < DIM; ++d) { m_x_old[d] = tile.x[d]; }
      timed(obs::KernelKind::Push, sp_name, ti, np, [&] {
        particles::push_particles<DIM>(m_cfg.pusher, tile, m_gathered, q, mass, m_dt);
      });
      timed(obs::KernelKind::Deposit, sp_name, ti, np, [&] {
        particles::deposit_current<DIM>(m_cfg.deposition, m_cfg.shape_order, tile,
                                        m_x_old, m_fields.geom(), m_fields.J().array(ti),
                                        q, m_dt);
      });
      pushed += np;
    }

    // Patch interior: gather from the auxiliary solution, deposit fine.
    // Probed like a level-0 tile, with index -1 marking the patch tile.
    if (m_patch && m_patch->active() && sd.patch.total_particles() > 0) {
      auto& tile = sd.patch.tile(0);
      const auto& fine_geom = m_patch->fine().geom();
      const auto np = static_cast<std::int64_t>(tile.size());
      if (probe != nullptr) {
        probe->sample_locality<DIM>(tile, fine_geom, sd.patch.box_array()[0]);
      }
      timed(obs::KernelKind::Gather, sp_name, -1, np, [&] {
        particles::gather_fields<DIM>(m_cfg.shape_order, tile, fine_geom,
                                      m_patch->aux_E().const_array(0),
                                      m_patch->aux_B().const_array(0), m_gathered);
      });
      for (int d = 0; d < DIM; ++d) { m_x_old[d] = tile.x[d]; }
      timed(obs::KernelKind::Push, sp_name, -1, np, [&] {
        particles::push_particles<DIM>(m_cfg.pusher, tile, m_gathered, q, mass, m_dt);
      });
      timed(obs::KernelKind::Deposit, sp_name, -1, np, [&] {
        particles::deposit_current<DIM>(m_cfg.deposition, m_cfg.shape_order, tile,
                                        m_x_old, fine_geom, m_patch->fine().J().array(0),
                                        q, m_dt);
      });
      pushed += np;
    }
  }
  m_metrics.counter("particles_pushed").add(pushed);
}

template <int DIM>
void Simulation<DIM>::exchange_level0() {
  m_fields.fill_boundary();
  if (m_pml) {
    m_pml->exchange_from_interior(m_fields);
    m_pml->fill_boundary();
    m_pml->copy_to_interior(m_fields);
  }
}

template <int DIM>
void Simulation<DIM>::solve_fields() {
  const Real dt = m_dt;

  if (m_psatd) {
    // Spectral path: one exact step for the whole field state.
    m_psatd->advance(m_fields, dt);
    exchange_level0();
    return;
  }

  exchange_level0();
  m_solver.evolve_b(m_fields, dt / 2);
  if (m_pml) { m_pml->evolve_b(dt / 2); }
  if (m_patch) { m_patch->evolve_b(dt / 2); }

  exchange_level0();
  m_solver.evolve_e(m_fields, dt);
  if (m_pml) { m_pml->evolve_e(dt); }
  if (m_patch) { m_patch->evolve_e(dt); }

  exchange_level0();
  m_solver.evolve_b(m_fields, dt / 2);
  if (m_pml) { m_pml->evolve_b(dt / 2); }
  if (m_patch) { m_patch->evolve_b(dt / 2); }

  // Leave ghosts consistent for the next gather.
  exchange_level0();
}

template <int DIM>
void Simulation<DIM>::apply_moving_window() {
  if (!m_window.active(m_time)) { return; }
  const int dir = m_window.dir();
  const int ncells = m_window.advance(m_time, m_dt, m_fields);
  if (ncells == 0) { return; }

  if (m_pml) { m_pml->shift_data(dir, ncells); }
  if (m_patch && m_patch->active()) { m_patch->shift_window(dir, ncells); }
  m_window_shifted = true; // end-of-step Gauss probe is invalid this step

  const auto& geom = m_fields.geom();
  // Drop particles that fell off the trailing edge...
  std::int64_t swept = 0;
  for (auto& sd : m_species) {
    swept += sd.level0.remove_below(dir, geom.prob_lo()[dir]);
    swept += sd.patch.remove_below(dir, geom.prob_lo()[dir]);
  }
  if (swept > 0) {
    m_swept_total += swept;
    m_metrics.counter("particles_swept").add(swept);
  }
  // ...and fill the freshly exposed strip at the leading edge.
  mrpic::Box<DIM> strip = geom.domain();
  auto lo = strip.lo();
  lo[dir] = strip.hi(dir) - ncells + 1;
  strip = mrpic::Box<DIM>(lo, strip.hi());
  for (auto& sd : m_species) {
    if (!sd.injector) { continue; }
    plasma::PlasmaInjector<DIM> inj(*sd.injector);
    inj.inject(sd.level0, geom, strip);
  }
}

template <int DIM>
void Simulation<DIM>::migrate_patch_particles() {
  if (!m_patch) { return; }
  const auto& geom = m_fields.geom();

  for (auto& sd : m_species) {
    if (m_patch->active()) {
      // Level 0 -> patch interior.
      for (int ti = 0; ti < sd.level0.num_tiles(); ++ti) {
        auto& tile = sd.level0.tile(ti);
        std::size_t i = 0;
        while (i < tile.size()) {
          std::array<Real, DIM> pos;
          for (int d = 0; d < DIM; ++d) { pos[d] = tile.x[d][i]; }
          if (m_patch->in_interior(geom, pos)) {
            tile.transfer_to(i, sd.patch.tile(0));
          } else {
            ++i;
          }
        }
      }
    }
    // Patch -> level 0 for particles that left the interior (or all of them
    // when the patch has been removed).
    auto& ptile = sd.patch.tile(0);
    if (sd.patch.num_tiles() == 0) { continue; }
    std::size_t i = 0;
    while (i < ptile.size()) {
      std::array<Real, DIM> pos;
      for (int d = 0; d < DIM; ++d) { pos[d] = ptile.x[d][i]; }
      if (!m_patch->active() || !m_patch->in_interior(geom, pos)) {
        mrpic::IntVect<DIM> cell;
        for (int d = 0; d < DIM; ++d) { cell[d] = geom.cell_index(pos[d], d); }
        int dest = -1;
        if (sd.level0.box_array().contains(cell, &dest)) {
          ptile.transfer_to(i, sd.level0.tile(dest));
        } else {
          ptile.erase(i); // left the domain
        }
      } else {
        ++i;
      }
    }
  }
}

template <int DIM>
void Simulation<DIM>::maybe_remove_patch() {
  if (!m_patch || !m_patch->active()) { return; }
  const Real threshold = m_cfg.mr_remove_when_lo_above;
  if (std::isnan(threshold)) { return; }
  if (m_fields.geom().prob_lo()[0] > threshold) {
    m_patch->remove();
    migrate_patch_particles(); // hand every patch particle back to level 0
  }
}

template <int DIM>
std::vector<Real> Simulation<DIM>::box_cost_heuristic() const {
  // Cost heuristic per box: cells + measured particle weight (the paper's
  // in-situ cost instrumentation is modeled by particle counts; see also
  // dist::LoadBalancer for timed costs).
  const auto& ba = m_fields.box_array();
  std::vector<Real> costs(ba.size());
  for (int i = 0; i < ba.size(); ++i) {
    costs[i] = Real(0.1) * static_cast<Real>(ba[i].num_cells());
  }
  for (const auto& sd : m_species) {
    for (int ti = 0; ti < sd.level0.num_tiles(); ++ti) {
      costs[ti] += Real(0.9) * static_cast<Real>(sd.level0.tile(ti).size());
    }
  }
  return costs;
}

template <int DIM>
void Simulation<DIM>::maybe_rebalance() {
  m_lb.record_costs(box_cost_heuristic());
  if (m_lb.should_rebalance(m_dm)) {
    const auto before = m_dm;
    m_dm = m_lb.rebalance(m_fields.box_array(), m_cfg.nranks);
    m_lb.count_rebalance(before, m_dm);
  }
}

template <int DIM>
void Simulation<DIM>::begin_health_probe() {
  // Scratch copies bind their ledger accounts to "health.scratch" so the
  // probe's footprint is attributable (and excluded from the MR-savings
  // field terms).
  obs::ScopedMemTag mem_tag("health.scratch");
  if (!m_hscratch) { m_hscratch = std::make_unique<HealthScratch>(); }
  auto& h = *m_hscratch;
  h.level0_valid = false;
  h.fine_valid = false;

  const auto& geom = m_fields.geom();
  h.rho_old0 = mrpic::MultiFab<DIM>(m_fields.box_array(), m_dm, 1, m_fields.num_ghost());
  for (auto& sd : m_species) {
    diag::accumulate_charge<DIM>(m_cfg.shape_order, sd.level0, geom, h.rho_old0);
  }
  h.rho_old0.sum_boundary(geom);
  h.level0_valid = true;

  if (m_patch && m_patch->active()) {
    const auto& fgeom = m_patch->fine().geom();
    const mrpic::BoxArray<DIM> fba(m_patch->fine_region());
    h.rho_oldf = mrpic::MultiFab<DIM>(fba, 1, m_patch->fine().num_ghost());
    for (auto& sd : m_species) {
      diag::accumulate_charge<DIM>(m_cfg.shape_order, sd.patch, fgeom, h.rho_oldf);
    }
    h.rho_oldf.sum_boundary(fgeom);
    h.fine_valid = true;
  }
}

template <int DIM>
void Simulation<DIM>::snapshot_health_currents() {
  obs::ScopedMemTag mem_tag("health.scratch");
  if (!m_hscratch) { return; }
  auto& h = *m_hscratch;

  if (h.level0_valid) {
    const auto& geom = m_fields.geom();
    h.rho_new0 = mrpic::MultiFab<DIM>(m_fields.box_array(), m_dm, 1, m_fields.num_ghost());
    for (auto& sd : m_species) {
      diag::accumulate_charge<DIM>(m_cfg.shape_order, sd.level0, geom, h.rho_new0);
    }
    h.rho_new0.sum_boundary(geom);
    // Ghost deposits are still un-folded on the physics J at this point; the
    // private copy takes them along and reduces them itself.
    h.J0 = m_fields.J();
    h.J0.sum_boundary(geom);
  }

  if (h.fine_valid && m_patch && m_patch->active()) {
    const auto& fgeom = m_patch->fine().geom();
    const mrpic::BoxArray<DIM> fba(m_patch->fine_region());
    h.rho_newf = mrpic::MultiFab<DIM>(fba, 1, m_patch->fine().num_ghost());
    for (auto& sd : m_species) {
      diag::accumulate_charge<DIM>(m_cfg.shape_order, sd.patch, fgeom, h.rho_newf);
    }
    h.rho_newf.sum_boundary(fgeom);
    h.Jf = m_patch->fine().J();
    h.Jf.sum_boundary(fgeom);
  }
}

template <int DIM>
void Simulation<DIM>::observe_health(std::int64_t step) {
  health::LedgerSample s;
  s.step = step;
  s.time = m_time;
  s.field_energy_J = m_fields.field_energy();
  for (const auto& sd : m_species) {
    health::SpeciesSample sp;
    sp.name = sd.level0.species().name;
    sp.level0 = sd.level0.total_particles();
    sp.patch = sd.patch.total_particles();
    sp.kinetic_J = sd.level0.kinetic_energy() + sd.patch.kinetic_energy();
    sp.charge_C = sd.level0.total_charge() + sd.patch.total_charge();
    sp.max_gamma = std::max(sd.level0.max_gamma(), sd.patch.max_gamma());
    s.kinetic_energy_J += sp.kinetic_J;
    s.total_charge_C += sp.charge_C;
    s.num_particles += sp.level0 + sp.patch;
    s.max_gamma = std::max(s.max_gamma, sp.max_gamma);
    s.species.push_back(std::move(sp));
  }
  s.escaped = m_escaped_total;
  s.swept = m_swept_total;
  s.cfl_margin = m_cfl_limit_dt > 0 ? 1 - m_dt / m_cfl_limit_dt : 0;
  s.step_wall_s = m_report.wall_s; // previous step (this one is still open)
  if (m_memory_enabled) {
    s.mem_total_bytes = static_cast<double>(obs::memory_ledger().total_current());
  }

  if (m_health->nan_due(step)) {
    s.nan_cells = 0;
    const auto scan = [&](const mrpic::MultiFab<DIM>& mf, const char* name) {
      const auto n = health::count_nonfinite<DIM>(mf);
      if (n > 0 && s.nan_field.empty()) { s.nan_field = name; }
      s.nan_cells += n;
    };
    scan(m_fields.E(), "E");
    scan(m_fields.B(), "B");
    scan(m_fields.J(), "J");
    if (m_patch && m_patch->active()) {
      scan(m_patch->fine().E(), "fine_E");
      scan(m_patch->fine().B(), "fine_B");
      scan(m_patch->fine().J(), "fine_J");
    }
  }

  if (m_hscratch && m_health->residual_due(step)) {
    auto& h = *m_hscratch;
    if (h.level0_valid) {
      const auto& geom = m_fields.geom();
      const Real scale = h.rho_new0.max_abs(0) / m_dt;
      const Real raw =
          diag::continuity_residual<DIM>(h.rho_old0, h.rho_new0, h.J0, geom, m_dt);
      s.continuity_residual = scale > 0 ? raw / scale : raw;
      // Gauss needs the post-solve E against the post-push rho; a window
      // shift scrolled E after the rho snapshot, so skip it on those steps.
      if (!m_window_shifted) {
        s.gauss_residual = diag::gauss_residual<DIM>(m_fields, h.rho_new0);
      }
    }
    if (h.fine_valid && m_patch && m_patch->active()) {
      const auto& fgeom = m_patch->fine().geom();
      // Keep the fine-level stencil away from the patch PML and the
      // transition zone (where particles deposit on the parent instead).
      const int shrink =
          m_patch->config().transition_cells * m_patch->config().ratio + 1;
      const Real scale = h.rho_newf.max_abs(0) / m_dt;
      const Real raw = diag::continuity_residual<DIM>(h.rho_oldf, h.rho_newf, h.Jf,
                                                      fgeom, m_dt, shrink);
      s.continuity_residual_fine = scale > 0 ? raw / scale : raw;
      if (!m_window_shifted) {
        s.gauss_residual_fine =
            diag::gauss_residual<DIM>(m_patch->fine(), h.rho_newf, shrink);
      }
    }
    h.level0_valid = false;
    h.fine_valid = false;
  }

  m_health->record(std::move(s));
}

// The standard reduced diagnostics of enable_insitu: closures over the
// Simulation state so the physics-agnostic insitu::Registry never needs to
// know about Simulation. Registration order matters for same-step cadences:
// "laser" runs before "wakefield" so the wakefield probe can sit behind the
// freshly-probed pulse centroid.
template <int DIM>
void Simulation<DIM>::register_insitu_diagnostics() {
  const auto beam_index = [this]() {
    const int s = m_insitu_cfg.beam_species;
    return s >= 0 && s < num_species() ? s : -1;
  };

  m_insitu->add("beam", m_insitu_cfg.moments_interval, [this, beam_index](insitu::Record& r) {
    const int s = beam_index();
    if (s < 0) { return; }
    insitu::BeamMomentsAccumulator<DIM> acc(m_insitu_cfg.beam_e_min_J);
    acc.add(m_species[s].level0);
    acc.add(m_species[s].patch);
    const auto m = acc.finalize();
    m_last_moments = m;
    r.set("count", static_cast<double>(m.count));
    r.set("charge_C", m.charge_C);
    r.set("mean_x_m", m.mean_x[0]);
    r.set("rms_y_m", m.rms_x[1]);
    r.set("emit_ny_m_rad", m.emit_ny);
    r.set("emit_nz_m_rad", m.emit_nz);
    r.set("mean_gamma", m.mean_gamma);
    r.set("max_gamma", m.max_gamma);
    r.set("mean_energy_J", m.mean_energy_J);
  });

  m_insitu->add("spectrum", m_insitu_cfg.spectrum_interval, [this, beam_index](insitu::Record& r) {
    const auto& c = m_insitu_cfg;
    const int s = beam_index();
    if (s < 0 || c.spectrum_e_max_J <= c.spectrum_e_min_J) { return; }
    const std::vector<const particles::ParticleContainer<DIM>*> pcs{
        &m_species[s].level0, &m_species[s].patch};
    const auto sum = insitu::summarize_spectrum<DIM>(
        pcs, static_cast<Real>(c.spectrum_e_min_J), static_cast<Real>(c.spectrum_e_max_J),
        c.spectrum_bins, std::abs(m_species[s].level0.species().charge));
    m_last_spectrum = sum;
    r.set("peak_energy_J", sum.beam.peak_energy);
    r.set("energy_spread", sum.beam.energy_spread);
    r.set("charge_C", sum.beam.charge);
    r.set("weight_total", sum.weight_total);
  });

  m_insitu->add("laser", m_insitu_cfg.laser_interval, [this](insitu::Record& r) {
    double wavelength = m_insitu_cfg.laser_wavelength;
    int pol = m_insitu_cfg.laser_polarization;
    if (wavelength <= 0 && !m_lasers.empty()) {
      wavelength = m_lasers.front().config().wavelength;
      pol = m_lasers.front().config().polarization;
    }
    if (wavelength <= 0) { return; }
    const auto ls = insitu::laser_probe<DIM>(m_fields, static_cast<Real>(wavelength), pol);
    r.set("a0", ls.a0);
    r.set("peak_E_V_m", ls.peak_E_V_m);
    r.set("centroid_x_m", ls.centroid_x_m);
  });

  m_insitu->add("wakefield", m_insitu_cfg.wakefield_interval, [this](insitu::Record& r) {
    Real x_behind = std::numeric_limits<Real>::infinity();
    if (const auto* l = m_insitu->last("laser")) {
      const double c = l->value("centroid_x_m");
      if (std::isfinite(c)) { x_behind = static_cast<Real>(c); }
    }
    r.set("max_Ex_V_m", insitu::wakefield_amplitude<DIM>(m_fields, x_behind));
  });

  m_insitu->add("field_energy", m_insitu_cfg.field_energy_interval, [this](insitu::Record& r) {
    const auto b0 = insitu::field_energy_breakdown<DIM>(m_fields);
    r.set("level0_Ex_J", b0.E_J[0]);
    r.set("level0_Ey_J", b0.E_J[1]);
    r.set("level0_Ez_J", b0.E_J[2]);
    r.set("level0_B_J", b0.B_J[0] + b0.B_J[1] + b0.B_J[2]);
    r.set("level0_total_J", b0.total_J());
    if (m_patch && m_patch->active()) {
      const auto bf = insitu::field_energy_breakdown<DIM>(m_patch->fine());
      r.set("fine_Ex_J", bf.E_J[0]);
      r.set("fine_total_J", bf.total_J());
    }
  });
}

template <int DIM>
void Simulation<DIM>::maybe_stream_insitu(std::int64_t step) {
  if (!m_insitu_stream || !insitu::Registry::due(step, m_insitu_cfg.stream_interval)) {
    return;
  }
  static constexpr char comp_names[3] = {'x', 'y', 'z'};
  for (int comp : m_insitu_cfg.stream_components) {
    if (comp < 0 || comp > 2) { continue; }
    auto fr = insitu::downsample_slice<DIM>(m_fields.E(), m_fields.geom(), comp,
                                            m_insitu_cfg.stream_downsample,
                                            std::string("E") + comp_names[comp]);
    fr.step = step;
    fr.time = m_time;
    m_insitu_stream->write(fr);
  }
  const int s = m_insitu_cfg.beam_species;
  if (s >= 0 && s < num_species()) {
    diag::PhaseSpace ps(m_insitu_cfg.phase_space);
    ps.accumulate(m_species[s].level0);
    ps.accumulate(m_species[s].patch);
    auto fr = insitu::phase_space_frame(ps, "beam_phase_space");
    fr.step = step;
    fr.time = m_time;
    m_insitu_stream->write(fr);
  }
  m_metrics.gauge("insitu_stream_frames")
      .set(static_cast<double>(m_insitu_stream->frames_written()));
  m_metrics.gauge("insitu_stream_bytes")
      .set(static_cast<double>(m_insitu_stream->bytes_written()));
}

template <int DIM>
void Simulation<DIM>::observe_cluster(std::int64_t step) {
  m_rank_recorder.set_step(step); // robust to direct calls outside step()
  auto costs = box_cost_heuristic();
  for (auto& c : costs) { c *= static_cast<Real>(m_cluster_cost_unit_s); }
  // E+B+J components with shape-order ghosts, double precision on the wire.
  m_cluster->step_cost(m_fields.box_array(), m_dm, costs, 3 * DIM,
                       m_cfg.shape_order + 1, 8, &m_rank_recorder);
}

template <int DIM>
void Simulation<DIM>::refresh_particle_mem_accounts() {
  // One pair of accounts per species ("particles.<name>.level0"/".patch"),
  // created lazily because species can be added in any order relative to
  // enable_memory_obs(). Accounts are *size*-based (live particles times
  // bytes-per-particle, vector slack excluded) so the measured footprint
  // matches the analytic MR-savings model term for term.
  if (m_mem_particles.size() != m_species.size()) {
    m_mem_particles.clear();
    m_mem_particles.resize(m_species.size());
    for (std::size_t i = 0; i < m_species.size(); ++i) {
      const std::string base = "particles." + m_species[i].level0.species().name;
      m_mem_particles[i].level0 = obs::MemCharge(base + ".level0");
      m_mem_particles[i].patch = obs::MemCharge(base + ".patch");
    }
  }
  for (std::size_t i = 0; i < m_species.size(); ++i) {
    m_mem_particles[i].level0.update(m_species[i].level0.byte_footprint());
    m_mem_particles[i].patch.update(m_species[i].patch.byte_footprint());
  }
}

template <int DIM>
std::vector<std::int64_t> Simulation<DIM>::model_rank_resident_bytes() const {
  // Distribute the ledger's live bytes over simulated ranks: level-0 field
  // and particle bytes go to the owner of their box/tile, the whole MR-patch
  // surcharge (fields + patch particles) to the rank owning the box under
  // the patch center (the patch is not domain-decomposed), and whatever the
  // per-box model does not explain (PMLs, scratch, checkpoint staging, ...)
  // is spread evenly so the per-rank sum equals the ledger total exactly.
  std::vector<std::int64_t> bytes(std::max(m_cfg.nranks, 1), 0);
  const auto& ledger = obs::memory_ledger();
  const auto& ba = m_fields.box_array();
  const int ng = m_fields.num_ghost();
  std::int64_t assigned = 0;

  for (int i = 0; i < ba.size(); ++i) {
    // E+B+J components, ghosts included, matching FieldSet's footprint.
    const std::int64_t b =
        9 * ba[i].grown(ng).num_cells() * static_cast<std::int64_t>(sizeof(Real));
    bytes[m_dm.rank(i)] += b;
    assigned += b;
  }
  for (const auto& sd : m_species) {
    for (int ti = 0; ti < sd.level0.num_tiles(); ++ti) {
      const std::int64_t b = sd.level0.tile(ti).byte_footprint();
      bytes[m_dm.rank(ti)] += b;
      assigned += b;
    }
  }
  if (m_patch) {
    std::int64_t patch_bytes = ledger.current_prefix("mr");
    for (const auto& sd : m_species) { patch_bytes += sd.patch.byte_footprint(); }
    int owner = 0;
    const auto& region = m_patch->region();
    mrpic::IntVect<DIM> center;
    for (int d = 0; d < DIM; ++d) { center[d] = (region.lo(d) + region.hi(d)) / 2; }
    int which = -1;
    if (ba.contains(center, &which)) { owner = m_dm.rank(which); }
    bytes[owner] += patch_bytes;
    assigned += patch_bytes;
  }

  // Remainder (may be negative if accounts lag the model; keep the sum exact
  // either way): spread evenly, first rank takes the rounding slack.
  const std::int64_t total = ledger.total_current();
  const std::int64_t remainder = total - assigned;
  const auto nranks = static_cast<std::int64_t>(bytes.size());
  const std::int64_t share = remainder / nranks;
  for (auto& b : bytes) { b += share; }
  bytes[0] += remainder - share * nranks;
  return bytes;
}

template <int DIM>
void Simulation<DIM>::observe_memory(std::int64_t step) {
  refresh_particle_mem_accounts();
  auto& ledger = obs::memory_ledger();

  if (m_cluster) {
    m_last_rank_resident = model_rank_resident_bytes();
    m_rank_recorder.set_last_step_resident_bytes(m_last_rank_resident);
    std::int64_t max_b = 0;
    double sum_b = 0;
    for (const auto b : m_last_rank_resident) {
      max_b = std::max(max_b, b);
      sum_b += static_cast<double>(b);
    }
    const double mean_b = sum_b / static_cast<double>(m_last_rank_resident.size());
    m_metrics.gauge("mem_rank_max_bytes").set(static_cast<double>(max_b));
    m_metrics.gauge("mem_rank_imbalance")
        .set(mean_b > 0 ? static_cast<double>(max_b) / mean_b : 1.0);
    if (m_memory_cfg.node_budget_gb > 0 && max_b > 0) {
      m_metrics.gauge("mem_node_headroom")
          .set(m_memory_cfg.budget_bytes() / static_cast<double>(max_b));
    }
  }

  m_metrics.gauge("mem_total_bytes").set(static_cast<double>(ledger.total_current()));
  m_metrics.gauge("mem_total_high_water_bytes")
      .set(static_cast<double>(ledger.total_high_water()));
  m_metrics.gauge("mem_fields_bytes")
      .set(static_cast<double>(ledger.current_prefix("fields")));
  m_metrics.gauge("mem_particles_bytes")
      .set(static_cast<double>(ledger.current_prefix("particles")));
  m_metrics.gauge("mem_mr_bytes").set(static_cast<double>(ledger.current_prefix("mr")));
  m_metrics.gauge("mem_pml_bytes").set(static_cast<double>(ledger.current_prefix("pml")));
  m_metrics.gauge("mem_checkpoint_high_water_bytes")
      .set(static_cast<double>(ledger.high_water("checkpoint")));
  m_metrics.gauge("mem_insitu_stream_bytes")
      .set(static_cast<double>(ledger.current("insitu.stream")));
  m_metrics.gauge("mem_alloc_count").set(static_cast<double>(ledger.total_alloc_count()));
  if (m_patch) {
    m_metrics.gauge("mem_mr_savings_factor").set(measured_mr_savings().factor);
  }
  (void)step;
}

template <int DIM>
void Simulation<DIM>::observe_kernels(std::int64_t step) {
  m_kernel_probe->publish(m_metrics);
  (void)step;
}

} // namespace mrpic::core
