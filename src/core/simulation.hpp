#pragma once

// Simulation<DIM>: the top-level PIC driver, orchestrating the explicit PIC
// cycle of paper Fig. 3 (field gather -> particle push -> current deposition
// -> Maxwell solve) together with every capability of Table I that the
// science case needs: high-order shapes, moving window, mesh refinement,
// PML-terminated boundaries, and dynamic load balancing.
//
// Particles live in per-level containers: a level-0 container tiled on the
// level-0 BoxArray, and (when an MR patch is active) a patch container for
// particles in the patch interior, which gather from the auxiliary fields
// and deposit onto the fine grid. Particles migrate between the containers
// as they cross the patch interior boundary.

#include <cmath>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/amr/config.hpp"
#include "src/cluster/sim_cluster.hpp"
#include "src/health/monitor.hpp"
#include "src/insitu/reductions.hpp"
#include "src/insitu/registry.hpp"
#include "src/dist/load_balancer.hpp"
#include "src/obs/kernel_probe.hpp"
#include "src/obs/memory.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/profiler.hpp"
#include "src/obs/rank_recorder.hpp"
#include "src/obs/step_report.hpp"
#include "src/fields/fdtd.hpp"
#include "src/fields/field_set.hpp"
#include "src/fields/moving_window.hpp"
#include "src/fields/pml.hpp"
#include "src/fields/psatd.hpp"
#include "src/laser/laser_antenna.hpp"
#include "src/mr/mr_patch.hpp"
#include "src/particles/deposition.hpp"
#include "src/particles/gather.hpp"
#include "src/particles/pusher.hpp"
#include "src/plasma/plasma_injector.hpp"
#include "src/resil/checkpoint_policy.hpp"

namespace mrpic::core {

// Maxwell solver selection (paper Table I: FDTD is the standard recipe;
// PSATD is WarpX's spectral extension — periodic single-box domains only).
enum class MaxwellSolver { FDTD, PSATD };

template <int DIM>
struct SimulationConfig {
  // Domain.
  mrpic::Box<DIM> domain;                      // cell index box
  mrpic::RealVect<DIM> prob_lo{}, prob_hi{};   // physical extents [m]
  std::array<bool, DIM> periodic{};
  mrpic::IntVect<DIM> max_grid_size = mrpic::IntVect<DIM>(64);

  // Numerics.
  MaxwellSolver maxwell = MaxwellSolver::FDTD;
  int shape_order = 3;
  particles::DepositionKind deposition = particles::DepositionKind::Esirkepov;
  particles::PusherKind pusher = particles::PusherKind::Boris;
  Real cfl = Real(0.98);
  // Override the CFL-derived time step (e.g. to compare MR and no-MR runs
  // at the same dt). Must respect the finest-level CFL limit. 0 = derive.
  Real forced_dt = 0;

  // Boundaries: PML on all non-periodic directions when true, otherwise
  // perfect-conductor-like (zero ghost) boundaries.
  bool use_pml = false;
  fields::PmlConfig pml{};

  // Particle housekeeping.
  int sort_interval = 20; // counting-sort tiles every N steps (0 = never)

  // Dynamic load balancing (box->rank mapping + cost accounting).
  bool dynamic_lb = false;
  int lb_interval = 10;
  dist::LoadBalanceConfig lb{};
  int nranks = 1;

  // Mesh refinement: when the moving window has advanced past this physical
  // x, the patch is removed (NaN = never remove automatically).
  Real mr_remove_when_lo_above = std::numeric_limits<Real>::quiet_NaN();
};

// Memory observability (enable_memory_obs): publish the process-global
// obs::MemoryLedger per step as mem_* gauges, keep the per-species particle
// accounts fresh, and (with cluster obs on) feed the per-rank resident-bytes
// model into the RankRecorder's memory lanes.
struct MemoryObsConfig {
  int interval = 1;           // gauge/account refresh cadence (steps)
  // Per-rank (per-device) memory budget in GiB for the OOM headroom gauge
  // and first-rank-to-OOM prediction, e.g. a machine-table HBM capacity
  // (perf::Machine::hbm_gb_device). 0 = no budget tracking.
  double node_budget_gb = 0;

  double budget_bytes() const { return node_budget_gb * 1024.0 * 1024.0 * 1024.0; }
};

template <int DIM>
class Simulation {
public:
  explicit Simulation(SimulationConfig<DIM> cfg);

  // --- setup (call before init()) -------------------------------------
  // Register a species; returns its index.
  int add_species(particles::Species sp);
  // Register a species with a plasma injector (loaded at init; refreshed at
  // the leading edge when the moving window advances).
  int add_species(particles::Species sp, plasma::InjectorConfig<DIM> injector);
  void add_laser(const laser::LaserConfig& cfg);
  void set_moving_window(int dir, Real speed, Real start_time = 0);
  void enable_mr_patch(const typename mr::MRPatch<DIM>::Config& cfg);

  // Build fields/PML/patch and load the initial plasma.
  void init();

  // --- run -------------------------------------------------------------
  void step();
  void run(int nsteps) {
    for (int i = 0; i < nsteps; ++i) { step(); }
  }

  // --- accessors ---------------------------------------------------------
  Real time() const { return m_time; }
  Real dt() const { return m_dt; }
  int step_count() const { return m_step; }
  const mrpic::Geometry<DIM>& geom() const { return m_fields.geom(); }
  fields::FieldSet<DIM>& fields() { return m_fields; }
  const fields::FieldSet<DIM>& fields() const { return m_fields; }
  fields::Pml<DIM>* domain_pml() { return m_pml ? m_pml.get() : nullptr; }
  mr::MRPatch<DIM>* patch() { return m_patch ? m_patch.get() : nullptr; }
  const mr::MRPatch<DIM>* patch() const { return m_patch ? m_patch.get() : nullptr; }

  int num_species() const { return static_cast<int>(m_species.size()); }
  particles::ParticleContainer<DIM>& species_level0(int s) { return m_species[s].level0; }
  particles::ParticleContainer<DIM>& species_patch(int s) { return m_species[s].patch; }
  const particles::ParticleContainer<DIM>& species_level0(int s) const {
    return m_species[s].level0;
  }
  const particles::ParticleContainer<DIM>& species_patch(int s) const {
    return m_species[s].patch;
  }
  // Total macroparticles of species s across levels.
  std::int64_t num_particles(int s) const {
    return m_species[s].level0.total_particles() + m_species[s].patch.total_particles();
  }
  std::int64_t total_particles() const {
    std::int64_t n = 0;
    for (int s = 0; s < num_species(); ++s) { n += num_particles(s); }
    return n;
  }
  // Cells advanced per step (level 0 + active patch grids).
  std::int64_t active_cells() const {
    std::int64_t n = geom().domain().num_cells();
    if (m_patch && m_patch->active()) { n += m_patch->extra_cells(); }
    return n;
  }

  // --- observability -----------------------------------------------------
  // Hierarchical region profiler (enable tracing on it to collect Chrome
  // trace events; export with obs::write_chrome_trace).
  obs::Profiler& profiler() { return m_profiler; }
  const obs::Profiler& profiler() const { return m_profiler; }
  // Unified step-metrics registry (particles pushed, cells advanced, load
  // imbalance, ...); one StepRecord is appended per step.
  obs::MetricsRegistry& metrics() { return m_metrics; }
  const obs::MetricsRegistry& metrics() const { return m_metrics; }
  // Summary of the most recent step (valid once step() has run).
  const obs::StepReport& last_step_report() const { return m_report; }
  // Invoked at the end of every step with that step's report.
  void set_step_callback(std::function<void(const obs::StepReport&)> cb) {
    m_step_callback = std::move(cb);
  }

  // Cluster-level observability: evaluate the simulated cluster
  // (cfg.nranks ranks, `cm` wire model) against the level-0 decomposition
  // every step, capturing the per-rank compute/comm breakdown, the
  // message-level halo log and load-balancer rebalance snapshots into
  // rank_recorder(), per-rank sections into metrics(), and rank lanes into
  // any Chrome trace exported with the recorder. `cost_unit_s` converts the
  // load balancer's heuristic cost units (cells + weighted particles) into
  // modeled seconds. Callable before or after init().
  void enable_cluster_obs(cluster::CommModel cm = {}, double cost_unit_s = 1e-8);
  bool cluster_obs_enabled() const { return m_cluster != nullptr; }
  obs::RankRecorder& rank_recorder() { return m_rank_recorder; }
  const obs::RankRecorder& rank_recorder() const { return m_rank_recorder; }
  // The simulated cluster behind enable_cluster_obs() (nullptr before); the
  // handle through which a fault model attaches (SimCluster::set_faults).
  cluster::SimCluster* sim_cluster() { return m_cluster.get(); }

  // --- memory observability ----------------------------------------------
  // Per-step publication of the process-global obs::MemoryLedger: mem_*
  // gauges in metrics() (total/high-water/per-subsystem bytes, MR savings
  // factor), per-species particle byte accounts, and — when cluster obs is
  // enabled — per-rank resident-bytes lanes in rank_recorder() (exported by
  // write_memory_heatmap_csv) plus budget-headroom gauges. The probe runs
  // inside a "memory" profiler region so its overhead is attributable (and
  // gated <= 1% by bench_memory). Callable before or after init().
  void enable_memory_obs(MemoryObsConfig cfg = {});
  bool memory_obs_enabled() const { return m_memory_enabled; }
  const MemoryObsConfig& memory_obs_config() const { return m_memory_cfg; }
  // Structural inputs for the analytic MR memory-savings model, taken from
  // the live box layout (cells/particles, no ledger involved) — the
  // cross-check for the ledger-measured factor.
  obs::MrSavingsInputs mr_savings_inputs() const;
  // Ledger-measured MR savings factor (uniform-fine-equivalent / actual).
  obs::MrSavings measured_mr_savings() const {
    const int ratio = m_patch ? m_patch->config().ratio : 1;
    return obs::measure_mr_savings(obs::memory_ledger(), ratio, DIM);
  }
  // Modeled per-rank resident bytes of the most recent observed step (empty
  // until cluster obs + memory obs have both run).
  const std::vector<std::int64_t>& last_rank_resident_bytes() const {
    return m_last_rank_resident;
  }

  // --- kernel-grain observability -----------------------------------------
  // Per-invocation probing of the PIC cycle's hot kernels (gather/push/
  // deposit) at tile/species granularity on sampled steps: wall time,
  // particles, modeled bytes, roofline placement (obs::KernelProbe), plus
  // sampled cell-key locality metrics that predict the cell-binned sort's
  // payoff. Aggregates publish as kernel_* gauges inside a "kernel_obs"
  // profiler region; off-cadence steps pay one branch per kernel call.
  // Callable before or after init().
  void enable_kernel_obs(obs::KernelObsConfig cfg = {});
  bool kernel_obs_enabled() const { return m_kernel_probe != nullptr; }
  obs::KernelProbe* kernel_probe() { return m_kernel_probe.get(); }
  const obs::KernelProbe* kernel_probe() const { return m_kernel_probe.get(); }

  // --- simulation health --------------------------------------------------
  // In-situ invariant ledger + NaN/stability watchdog (src/health). At the
  // configured cadences each step assembles a LedgerSample (energies, charge,
  // particle accounting, CFL margin, max gamma, optional NaN scan and
  // Gauss/continuity residuals on every active level) inside a "health"
  // profiler region, so probe overhead is attributable like any other stage.
  // Watchdog alert actions are honored at the end of the step: checkpoint-now
  // arms the checkpoint policy (set_checkpoint_policy), abort flushes the
  // monitor's registered telemetry sinks and throws health::AbortError.
  // Callable before or after init().
  void enable_health(health::MonitorConfig cfg = {});
  bool health_enabled() const { return m_health != nullptr; }
  health::HealthMonitor* health() { return m_health.get(); }
  const health::HealthMonitor* health() const { return m_health.get(); }

  // --- unified event timeline ---------------------------------------------
  // Route every event emitter through one severity-leveled obs::EventLog
  // (non-owning; the driver owns it): health alerts, resil fault/checkpoint/
  // recovery events and rebalance snapshots (both via the RankRecorder), and
  // an "init" lifecycle event when init() runs. Callable before or after
  // enable_health()/enable_cluster_obs() — the wiring survives either order.
  void enable_event_log(obs::EventLog* log);
  obs::EventLog* event_log() { return m_event_log; }

  // --- in-situ physics diagnostics ----------------------------------------
  // Reduced physics diagnostics (insitu::Registry) at the configured
  // cadences: beam moments/emittance, energy-spectrum peak/FWHM, laser
  // a0/centroid, wakefield amplitude, per-level field energy — computed at
  // the end of each due step inside an "insitu" profiler region, published
  // as insitu_* gauges and appended (+flushed) to the JSONL series. When
  // cfg.stream_interval > 0 and cfg.stream.basename is set, downsampled
  // field slices and a beam phase-space histogram are additionally exported
  // as rotating binary stream frames (insitu::StreamWriter).
  // Callable before or after init().
  void enable_insitu(insitu::InsituConfig cfg = {});
  bool insitu_enabled() const { return m_insitu != nullptr; }
  insitu::Registry* insitu() { return m_insitu.get(); }
  const insitu::Registry* insitu() const { return m_insitu.get(); }
  const insitu::InsituConfig& insitu_config() const { return m_insitu_cfg; }
  insitu::StreamWriter* insitu_stream() { return m_insitu_stream.get(); }
  // Most recent spectrum/moments computed by the registry (nullptr until
  // the diagnostic first runs) — examples write their CSVs from these so
  // file output and gauges come from one code path.
  const insitu::SpectrumSummary* last_spectrum() const {
    return m_last_spectrum ? &*m_last_spectrum : nullptr;
  }
  const insitu::BeamMoments* last_beam_moments() const {
    return m_last_moments ? &*m_last_moments : nullptr;
  }

  // Cumulative particle-loss accounting (also in the ledger): particles that
  // left the domain through boundaries / were dropped at the moving-window
  // trailing edge.
  std::int64_t particles_escaped() const { return m_escaped_total; }
  std::int64_t particles_swept() const { return m_swept_total; }

  // dt ceiling of the finest active level at cfl = 1 (set by init);
  // cfl_margin in the ledger is 1 - dt / this.
  Real cfl_limit_dt() const { return m_cfl_limit_dt; }

  // --- resilience ---------------------------------------------------------
  // Automatic checkpointing: after each step the policy accrues that step's
  // wall seconds; when it fires, `writer` is invoked (e.g. a lambda around
  // io::write_checkpoint), its wall cost is measured and folded back into
  // the policy (Young/Daly interval adaptation), and counter "checkpoints" /
  // gauge "checkpoint_cost_s" are published to metrics().
  using CheckpointWriter = std::function<bool(Simulation&)>;
  void set_checkpoint_policy(resil::CheckpointPolicy policy, CheckpointWriter writer) {
    m_ckpt_policy = std::move(policy);
    m_ckpt_writer = std::move(writer);
  }
  const resil::CheckpointPolicy* checkpoint_policy() const {
    return m_ckpt_policy ? &*m_ckpt_policy : nullptr;
  }

  // Elastic shrink after a simulated rank crash: re-home the dead rank's
  // boxes onto the survivors (resil::remap_after_failure keeps survivor
  // assignments, compacts rank ids), drop cfg.nranks by one and rebuild the
  // simulated cluster at the new size. Records a rebalance snapshot. The
  // physics state is untouched — ranks only exist in the cluster model.
  void remove_rank(int dead_rank);

  const SimulationConfig<DIM>& config() const { return m_cfg; }
  const dist::DistributionMapping& dist_map() const { return m_dm; }
  const dist::LoadBalancer& load_balancer() const { return m_lb; }
  fields::MovingWindow<DIM>& window() { return m_window; }

  // Restart support (io::read_checkpoint): set the clock/step counter after
  // the field and particle state has been restored.
  void set_time_and_step(Real time, int step) {
    m_time = time;
    m_step = step;
  }

  // Total kinetic + field energy [J] (energy-conservation checks).
  Real total_energy() const;

private:
  // pic_step.cpp:
  void advance_particles();
  void solve_fields();
  void apply_moving_window();
  void migrate_patch_particles();
  void maybe_remove_patch();
  void maybe_rebalance();
  void maybe_checkpoint();
  void observe_cluster(std::int64_t step);
  // Health probes (pic_step.ipp): rho_old deposit at step start, rho_new + J
  // snapshots right after the particle advance (before the laser/MR current
  // couplings), ledger assembly + watchdog evaluation at step end.
  void begin_health_probe();
  void snapshot_health_currents();
  void observe_health(std::int64_t step);
  // Memory probe (pic_step.ipp): refresh particle accounts, model per-rank
  // resident bytes, publish mem_* gauges.
  void observe_memory(std::int64_t step);
  // Kernel probe publication (pic_step.ipp): kernel_* gauges on due steps.
  void observe_kernels(std::int64_t step);
  void refresh_particle_mem_accounts();
  std::vector<std::int64_t> model_rank_resident_bytes() const;
  void register_insitu_diagnostics();
  void maybe_stream_insitu(std::int64_t step);
  void exchange_level0();
  // Per-box cost heuristic (cells + weighted particle counts) shared by the
  // load balancer and the cluster observer.
  std::vector<Real> box_cost_heuristic() const;

  struct SpeciesData {
    particles::ParticleContainer<DIM> level0;
    particles::ParticleContainer<DIM> patch;
    std::optional<plasma::InjectorConfig<DIM>> injector;
  };

  // Private per-level charge/current copies for the residual probes; the
  // snapshots carry their own sum_boundary so the physics-path J is never
  // touched. Rebuilt on probe steps only.
  struct HealthScratch {
    bool level0_valid = false;
    bool fine_valid = false;
    mrpic::MultiFab<DIM> rho_old0, rho_new0, J0;
    mrpic::MultiFab<DIM> rho_oldf, rho_newf, Jf;
  };

  SimulationConfig<DIM> m_cfg;
  fields::FieldSet<DIM> m_fields;
  fields::FDTDSolver<DIM> m_solver;
  std::unique_ptr<fields::PsatdSolver<DIM>> m_psatd;
  std::unique_ptr<fields::Pml<DIM>> m_pml;
  std::unique_ptr<mr::MRPatch<DIM>> m_patch;
  std::vector<SpeciesData> m_species;
  std::vector<laser::LaserAntenna<DIM>> m_lasers;
  fields::MovingWindow<DIM> m_window;
  dist::DistributionMapping m_dm;
  dist::LoadBalancer m_lb;
  obs::Profiler m_profiler;
  obs::MetricsRegistry m_metrics;
  std::unique_ptr<cluster::SimCluster> m_cluster; // set by enable_cluster_obs()
  obs::RankRecorder m_rank_recorder;
  double m_cluster_cost_unit_s = 1e-8;
  obs::StepReport m_report;
  std::function<void(const obs::StepReport&)> m_step_callback;
  std::optional<resil::CheckpointPolicy> m_ckpt_policy;
  CheckpointWriter m_ckpt_writer;
  std::unique_ptr<health::HealthMonitor> m_health; // set by enable_health()
  obs::EventLog* m_event_log = nullptr;            // set by enable_event_log()
  std::unique_ptr<HealthScratch> m_hscratch;
  bool m_memory_enabled = false;                   // set by enable_memory_obs()
  MemoryObsConfig m_memory_cfg;
  std::unique_ptr<obs::KernelProbe> m_kernel_probe; // set by enable_kernel_obs()
  // Per-species ledger accounts ("particles.<name>.level0" / ".patch"),
  // refreshed from live tile sizes on memory-probe steps.
  struct SpeciesMem {
    obs::MemCharge level0, patch;
  };
  std::vector<SpeciesMem> m_mem_particles;
  std::vector<std::int64_t> m_last_rank_resident;
  std::unique_ptr<insitu::Registry> m_insitu;      // set by enable_insitu()
  insitu::InsituConfig m_insitu_cfg;
  std::unique_ptr<insitu::StreamWriter> m_insitu_stream;
  std::optional<insitu::SpectrumSummary> m_last_spectrum;
  std::optional<insitu::BeamMoments> m_last_moments;
  Real m_cfl_limit_dt = 0;
  std::int64_t m_escaped_total = 0;
  std::int64_t m_swept_total = 0;
  bool m_window_shifted = false; // grid scrolled this step (Gauss probe skips)

  // Reused per-tile scratch.
  particles::GatheredFields m_gathered;
  std::array<std::vector<Real>, DIM> m_x_old;

  Real m_time = 0;
  Real m_dt = 0;
  int m_step = 0;
  bool m_initialized = false;
};

extern template class Simulation<2>;
extern template class Simulation<3>;

} // namespace mrpic::core
