#include "src/diag/timers.hpp"

// Header-only; translation unit anchors the module in the library.
