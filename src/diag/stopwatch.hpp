#pragma once

// diag::Stopwatch — a bare wall-clock interval timer for benches and ad-hoc
// measurements. Instrumented code paths should use obs::Profiler scopes
// instead; this exists for timing loops where a named region would be noise.

#include <chrono>

namespace mrpic::diag {

class Stopwatch {
public:
  using clock = std::chrono::steady_clock;

  Stopwatch() : m_start(clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - m_start).count();
  }
  void restart() { m_start = clock::now(); }

private:
  clock::time_point m_start;
};

} // namespace mrpic::diag
