#include "src/diag/phase_space.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>

namespace mrpic::diag {

using mrpic::constants::c;

template <int DIM>
Real PhaseSpace::value_of(const particles::ParticleTile<DIM>& t, std::size_t p, Axis axis,
                          Real mass) const {
  switch (axis) {
    case Axis::X0: return t.x[0][p];
    case Axis::X1: return DIM > 1 ? t.x[1][p] : Real(0);
    case Axis::Ux: return t.u[0][p];
    case Axis::Uy: return t.u[1][p];
    case Axis::Uz: return t.u[2][p];
    case Axis::Energy: {
      const Real u2 = t.u[0][p] * t.u[0][p] + t.u[1][p] * t.u[1][p] + t.u[2][p] * t.u[2][p];
      return (std::sqrt(1 + u2 / (c * c)) - 1) * mass * c * c;
    }
  }
  return 0;
}

template <int DIM>
void PhaseSpace::accumulate(const particles::ParticleContainer<DIM>& pc) {
  const Real mass = pc.species().mass;
  const Real ia_scale = m_cfg.na / (m_cfg.a_max - m_cfg.a_min);
  const Real ib_scale = m_cfg.nb / (m_cfg.b_max - m_cfg.b_min);
  for (int ti = 0; ti < pc.num_tiles(); ++ti) {
    const auto& t = pc.tile(ti);
    for (std::size_t p = 0; p < t.size(); ++p) {
      const Real a = value_of<DIM>(t, p, m_cfg.ax, mass);
      const Real b = value_of<DIM>(t, p, m_cfg.ay, mass);
      if (a < m_cfg.a_min || a >= m_cfg.a_max || b < m_cfg.b_min || b >= m_cfg.b_max) {
        continue;
      }
      const int ia = static_cast<int>((a - m_cfg.a_min) * ia_scale);
      const int ib = static_cast<int>((b - m_cfg.b_min) * ib_scale);
      m_counts[static_cast<std::size_t>(ib) * m_cfg.na + ia] += t.w[p];
    }
  }
}

Real PhaseSpace::total() const {
  Real s = 0;
  for (Real v : m_counts) { s += v; }
  return s;
}

bool PhaseSpace::write(const std::string& path) const {
  std::ofstream os(path);
  if (!os) { return false; }
  os << "a,b,weight\n";
  const Real da = (m_cfg.a_max - m_cfg.a_min) / m_cfg.na;
  const Real db = (m_cfg.b_max - m_cfg.b_min) / m_cfg.nb;
  for (int ib = 0; ib < m_cfg.nb; ++ib) {
    for (int ia = 0; ia < m_cfg.na; ++ia) {
      os << m_cfg.a_min + (ia + Real(0.5)) * da << ',' << m_cfg.b_min + (ib + Real(0.5)) * db
         << ',' << at(ia, ib) << '\n';
    }
  }
  return static_cast<bool>(os);
}

template void PhaseSpace::accumulate<2>(const particles::ParticleContainer<2>&);
template void PhaseSpace::accumulate<3>(const particles::ParticleContainer<3>&);

} // namespace mrpic::diag
