#pragma once

// Lightweight CSV output for time series and 2D field slices (the repo's
// stand-in for WarpX's openPMD diagnostics; enough to plot every figure).

#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/amr/config.hpp"
#include "src/amr/multifab.hpp"

namespace mrpic::diag {

// Accumulates rows of named columns, written on flush().
class CsvSeries {
public:
  explicit CsvSeries(std::vector<std::string> columns) : m_columns(std::move(columns)) {}

  // Rows must match the declared column count; a silent mismatch would
  // corrupt every row below it on flush.
  void add_row(const std::vector<Real>& values) {
    if (values.size() != m_columns.size()) {
      throw std::invalid_argument("CsvSeries::add_row: got " +
                                  std::to_string(values.size()) + " values for " +
                                  std::to_string(m_columns.size()) + " columns");
    }
    m_rows.push_back(values);
  }
  std::size_t num_rows() const { return m_rows.size(); }
  const std::vector<std::vector<Real>>& rows() const { return m_rows; }

  bool write(const std::string& path) const;

private:
  std::vector<std::string> m_columns;
  std::vector<std::vector<Real>> m_rows;
};

// Write one component of a 2D MultiFab (valid regions) as CSV rows
// i,j,value. Returns false on I/O failure.
bool write_field_2d(const std::string& path, const mrpic::MultiFab<2>& mf, int comp);

// Write an x-z (2D: x-y) plane slice of a 3D MultiFab at index k.
bool write_field_slice_3d(const std::string& path, const mrpic::MultiFab<3>& mf, int comp,
                          int k);

} // namespace mrpic::diag
