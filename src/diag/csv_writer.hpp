#pragma once

// Lightweight CSV output for time series and 2D field slices (the repo's
// stand-in for WarpX's openPMD diagnostics; enough to plot every figure).

#include <fstream>
#include <string>
#include <vector>

#include "src/amr/config.hpp"
#include "src/amr/multifab.hpp"

namespace mrpic::diag {

// Accumulates rows of named columns, written on flush().
class CsvSeries {
public:
  explicit CsvSeries(std::vector<std::string> columns) : m_columns(std::move(columns)) {}

  void add_row(const std::vector<Real>& values) { m_rows.push_back(values); }
  std::size_t num_rows() const { return m_rows.size(); }
  const std::vector<std::vector<Real>>& rows() const { return m_rows; }

  bool write(const std::string& path) const;

private:
  std::vector<std::string> m_columns;
  std::vector<std::vector<Real>> m_rows;
};

// Write one component of a 2D MultiFab (valid regions) as CSV rows
// i,j,value. Returns false on I/O failure.
bool write_field_2d(const std::string& path, const mrpic::MultiFab<2>& mf, int comp);

// Write an x-z (2D: x-y) plane slice of a 3D MultiFab at index k.
bool write_field_slice_3d(const std::string& path, const mrpic::MultiFab<3>& mf, int comp,
                          int k);

} // namespace mrpic::diag
