#include "src/diag/output_dir.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>

namespace mrpic::diag {

OutputDir OutputDir::from_args(int& argc, char** argv, std::string default_dir) {
  std::string dir = std::move(default_dir);
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--outdir") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: --outdir requires a directory argument\n", argv[0]);
        std::exit(2);
      }
      dir = argv[++i];
    } else if (std::strncmp(argv[i], "--outdir=", 9) == 0) {
      dir = argv[i] + 9;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  argv[argc] = nullptr;
  return OutputDir(dir);
}

std::string OutputDir::path(std::string_view filename) const {
  if (!m_created) {
    std::error_code ec;
    std::filesystem::create_directories(m_dir, ec); // best effort; open() reports
    m_created = true;
  }
  return (std::filesystem::path(m_dir) / filename).string();
}

} // namespace mrpic::diag
