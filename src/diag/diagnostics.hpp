#pragma once

// Reduced diagnostics computed in-situ each step ("light self-diagnostics"
// in the paper's benchmark protocol): charge in the window, field and
// particle energy, and divergence/continuity residuals used by the
// correctness tests.

#include "src/amr/multifab.hpp"
#include "src/fields/field_set.hpp"
#include "src/particles/particle_container.hpp"

namespace mrpic::diag {

// Max |div E - rho/eps0| over the interior of the valid regions (Gauss law
// residual; exact conservation requires Esirkepov deposition + consistent
// initialization). rho must be nodal, deposited with the same shape order.
template <int DIM>
Real gauss_residual(const fields::FieldSet<DIM>& f, const mrpic::MultiFab<DIM>& rho);

// Max |(rho_new - rho_old)/dt + div J| over interior cells: the discrete
// continuity residual that Esirkepov deposition satisfies to round-off.
template <int DIM>
Real continuity_residual(const mrpic::MultiFab<DIM>& rho_old,
                         const mrpic::MultiFab<DIM>& rho_new,
                         const mrpic::MultiFab<DIM>& J, const mrpic::Geometry<DIM>& geom,
                         Real dt);

extern template Real gauss_residual<2>(const fields::FieldSet<2>&, const mrpic::MultiFab<2>&);
extern template Real gauss_residual<3>(const fields::FieldSet<3>&, const mrpic::MultiFab<3>&);
extern template Real continuity_residual<2>(const mrpic::MultiFab<2>&,
                                            const mrpic::MultiFab<2>&,
                                            const mrpic::MultiFab<2>&,
                                            const mrpic::Geometry<2>&, Real);
extern template Real continuity_residual<3>(const mrpic::MultiFab<3>&,
                                            const mrpic::MultiFab<3>&,
                                            const mrpic::MultiFab<3>&,
                                            const mrpic::Geometry<3>&, Real);

} // namespace mrpic::diag
