#pragma once

// Reduced diagnostics computed in-situ each step ("light self-diagnostics"
// in the paper's benchmark protocol): charge in the window, field and
// particle energy, and divergence/continuity residuals used by the
// correctness tests and the runtime health ledger (src/health).
//
// The residuals are per-level primitives: call them on the level-0 FieldSet
// and again on an MR patch's fine FieldSet (with that level's rho/J) to
// cover every level. `interior_shrink` strips cells from each face of the
// valid regions before evaluating — 1 (the default) keeps the divergence
// stencil inside the fab; MR fine levels pass npml + 1 so the patch PML and
// transition zone do not pollute the residual.

#include "src/amr/multifab.hpp"
#include "src/fields/field_set.hpp"
#include "src/particles/particle_container.hpp"

namespace mrpic::diag {

// Max |div E - rho/eps0| over the interior of the valid regions (Gauss law
// residual; exact conservation requires Esirkepov deposition + consistent
// initialization). rho must be nodal, deposited with the same shape order.
template <int DIM>
Real gauss_residual(const fields::FieldSet<DIM>& f, const mrpic::MultiFab<DIM>& rho,
                    int interior_shrink = 1);

// Max |(rho_new - rho_old)/dt + div J| over interior cells: the discrete
// continuity residual that Esirkepov deposition satisfies to round-off.
template <int DIM>
Real continuity_residual(const mrpic::MultiFab<DIM>& rho_old,
                         const mrpic::MultiFab<DIM>& rho_new,
                         const mrpic::MultiFab<DIM>& J, const mrpic::Geometry<DIM>& geom,
                         Real dt, int interior_shrink = 1);

// Accumulate the macro-charge of every tile of `pc` into `rho` (nodal,
// 1-component, on the same BoxArray: tile i deposits into fab i). Callers
// zero rho first, repeat per species, then sum_boundary once to fold the
// ghost deposits — the charge side of the residual probes above.
template <int DIM>
void accumulate_charge(int order, const particles::ParticleContainer<DIM>& pc,
                       const mrpic::Geometry<DIM>& geom, mrpic::MultiFab<DIM>& rho);

extern template Real gauss_residual<2>(const fields::FieldSet<2>&, const mrpic::MultiFab<2>&,
                                       int);
extern template Real gauss_residual<3>(const fields::FieldSet<3>&, const mrpic::MultiFab<3>&,
                                       int);
extern template Real continuity_residual<2>(const mrpic::MultiFab<2>&,
                                            const mrpic::MultiFab<2>&,
                                            const mrpic::MultiFab<2>&,
                                            const mrpic::Geometry<2>&, Real, int);
extern template Real continuity_residual<3>(const mrpic::MultiFab<3>&,
                                            const mrpic::MultiFab<3>&,
                                            const mrpic::MultiFab<3>&,
                                            const mrpic::Geometry<3>&, Real, int);
extern template void accumulate_charge<2>(int, const particles::ParticleContainer<2>&,
                                          const mrpic::Geometry<2>&, mrpic::MultiFab<2>&);
extern template void accumulate_charge<3>(int, const particles::ParticleContainer<3>&,
                                          const mrpic::Geometry<3>&, mrpic::MultiFab<3>&);

} // namespace mrpic::diag
