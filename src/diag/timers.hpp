#pragma once

// Accumulating named timers (TinyProfiler-style): every PIC stage is timed
// per step; the per-box variants feed measured costs to the dynamic load
// balancer, mirroring WarpX's runtime cost instrumentation.

#include <chrono>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace mrpic::diag {

class Timers {
public:
  using clock = std::chrono::steady_clock;

  class Scope {
  public:
    Scope(Timers& t, const std::string& name) : m_t(&t), m_name(name), m_start(clock::now()) {}
    ~Scope() { m_t->add(m_name, elapsed()); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    double elapsed() const {
      return std::chrono::duration<double>(clock::now() - m_start).count();
    }

  private:
    Timers* m_t;
    std::string m_name;
    clock::time_point m_start;
  };

  Scope scope(const std::string& name) { return Scope(*this, name); }

  void add(const std::string& name, double seconds) {
    auto& e = m_entries[name];
    e.total += seconds;
    ++e.count;
  }

  double total(const std::string& name) const {
    const auto it = m_entries.find(name);
    return it == m_entries.end() ? 0.0 : it->second.total;
  }
  std::int64_t count(const std::string& name) const {
    const auto it = m_entries.find(name);
    return it == m_entries.end() ? 0 : it->second.count;
  }

  void reset() { m_entries.clear(); }

  void report(std::ostream& os) const {
    for (const auto& [name, e] : m_entries) {
      os << "  " << name << ": " << e.total << " s over " << e.count << " calls\n";
    }
  }

private:
  struct Entry {
    double total = 0;
    std::int64_t count = 0;
  };
  std::map<std::string, Entry> m_entries;
};

// Simple stopwatch for benches.
class Stopwatch {
public:
  Stopwatch() : m_start(Timers::clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(Timers::clock::now() - m_start).count();
  }
  void restart() { m_start = Timers::clock::now(); }

private:
  Timers::clock::time_point m_start;
};

} // namespace mrpic::diag
