#pragma once

// Accumulating named flat timers. Since the obs:: subsystem landed this is
// a thin compatibility shim: the hierarchical obs::Profiler owns the live
// measurements and refreshes a Timers via Profiler::flatten_into() so the
// original report()/total()/count() call sites keep working. Standalone use
// (benches timing a loop by hand) is still supported.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace mrpic::diag {

class Timers {
public:
  using clock = std::chrono::steady_clock;

  class Scope {
  public:
    Scope(Timers& t, const std::string& name) : m_t(&t), m_name(name), m_start(clock::now()) {}
    ~Scope() { m_t->add(m_name, elapsed()); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    double elapsed() const {
      return std::chrono::duration<double>(clock::now() - m_start).count();
    }

  private:
    Timers* m_t;
    std::string m_name;
    clock::time_point m_start;
  };

  Scope scope(const std::string& name) { return Scope(*this, name); }

  void add(const std::string& name, double seconds) {
    auto& e = m_entries[name];
    e.total += seconds;
    ++e.count;
  }

  // Overwrite an entry wholesale (obs::Profiler::flatten_into refresh).
  void set(const std::string& name, double total, std::int64_t count) {
    m_entries[name] = Entry{total, count};
  }

  double total(const std::string& name) const {
    const auto it = m_entries.find(name);
    return it == m_entries.end() ? 0.0 : it->second.total;
  }
  std::int64_t count(const std::string& name) const {
    const auto it = m_entries.find(name);
    return it == m_entries.end() ? 0 : it->second.count;
  }

  void reset() { m_entries.clear(); }

  // Table sorted by descending total, with count and per-call mean columns.
  void report(std::ostream& os) const {
    std::vector<std::pair<std::string, Entry>> rows(m_entries.begin(), m_entries.end());
    std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
      return a.second.total > b.second.total;
    });
    char line[160];
    std::snprintf(line, sizeof(line), "  %-24s %12s %8s %12s\n", "timer", "total(s)",
                  "count", "mean(s)");
    os << line;
    for (const auto& [name, e] : rows) {
      std::snprintf(line, sizeof(line), "  %-24s %12.4f %8lld %12.6f\n", name.c_str(),
                    e.total, static_cast<long long>(e.count),
                    e.count > 0 ? e.total / e.count : 0.0);
      os << line;
    }
  }

private:
  struct Entry {
    double total = 0;
    std::int64_t count = 0;
  };
  std::map<std::string, Entry> m_entries;
};

// Simple stopwatch for benches.
class Stopwatch {
public:
  Stopwatch() : m_start(Timers::clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(Timers::clock::now() - m_start).count();
  }
  void restart() { m_start = Timers::clock::now(); }

private:
  Timers::clock::time_point m_start;
};

} // namespace mrpic::diag
