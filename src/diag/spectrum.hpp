#pragma once

// Electron energy spectra and beam-quality metrics (paper Fig. 7b: peaked
// spectrum with < 10% energy spread above 100 MeV).

#include <vector>

#include "src/amr/config.hpp"
#include "src/particles/particle_container.hpp"

namespace mrpic::diag {

struct Spectrum {
  Real e_min = 0, e_max = 0; // [J] histogram range
  std::vector<Real> counts;  // sum of weights per bin (dN, not dN/dE)

  Real bin_width() const { return (e_max - e_min) / counts.size(); }
  Real bin_center(std::size_t b) const { return e_min + (b + Real(0.5)) * bin_width(); }
};

// Histogram of kinetic energies weighted by macroparticle weight.
template <int DIM>
Spectrum energy_spectrum(const mrpic::particles::ParticleContainer<DIM>& pc, Real e_min,
                         Real e_max, int nbins);

struct BeamQuality {
  Real peak_energy = 0;   // [J] location of the spectral peak
  Real energy_spread = 0; // FWHM / peak energy (relative)
  Real charge = 0;        // [C] total charge in the analyzed range
};

// Peak location, relative FWHM spread and integrated charge of a spectrum
// (charge_per_count converts summed weights to Coulombs: |q| of the species).
BeamQuality analyze_beam(const Spectrum& s, Real charge_per_count);

// Total |charge| of particles with kinetic energy above e_min [J] —
// the "beam charge in the simulation window" of paper Fig. 7a.
template <int DIM>
Real charge_above(const mrpic::particles::ParticleContainer<DIM>& pc, Real e_min);

extern template Spectrum energy_spectrum<2>(const mrpic::particles::ParticleContainer<2>&,
                                            Real, Real, int);
extern template Spectrum energy_spectrum<3>(const mrpic::particles::ParticleContainer<3>&,
                                            Real, Real, int);
extern template Real charge_above<2>(const mrpic::particles::ParticleContainer<2>&, Real);
extern template Real charge_above<3>(const mrpic::particles::ParticleContainer<3>&, Real);

} // namespace mrpic::diag
