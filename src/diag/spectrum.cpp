#include "src/diag/spectrum.hpp"

#include <algorithm>
#include <cmath>

namespace mrpic::diag {

using mrpic::constants::c;

namespace {

template <int DIM>
Real kinetic_energy_of(const mrpic::particles::ParticleTile<DIM>& t, std::size_t i,
                       Real mass) {
  const Real u2 = t.u[0][i] * t.u[0][i] + t.u[1][i] * t.u[1][i] + t.u[2][i] * t.u[2][i];
  const Real gamma = std::sqrt(1 + u2 / (c * c));
  return (gamma - 1) * mass * c * c;
}

} // namespace

template <int DIM>
Spectrum energy_spectrum(const mrpic::particles::ParticleContainer<DIM>& pc, Real e_min,
                         Real e_max, int nbins) {
  Spectrum s;
  s.e_min = e_min;
  s.e_max = e_max;
  s.counts.assign(nbins, Real(0));
  const Real mass = pc.species().mass;
  const Real inv_bw = nbins / (e_max - e_min);
  for (int ti = 0; ti < pc.num_tiles(); ++ti) {
    const auto& t = pc.tile(ti);
    for (std::size_t i = 0; i < t.size(); ++i) {
      const Real e = kinetic_energy_of<DIM>(t, i, mass);
      if (e < e_min || e >= e_max) { continue; }
      const int b = static_cast<int>((e - e_min) * inv_bw);
      s.counts[b] += t.w[i];
    }
  }
  return s;
}

BeamQuality analyze_beam(const Spectrum& s, Real charge_per_count) {
  BeamQuality q;
  if (s.counts.empty()) { return q; }
  const auto peak_it = std::max_element(s.counts.begin(), s.counts.end());
  const std::size_t pk = static_cast<std::size_t>(peak_it - s.counts.begin());
  q.peak_energy = s.bin_center(pk);
  const Real half = *peak_it / 2;

  // FWHM: walk outward from the peak to the half-maximum crossings.
  std::size_t lo = pk;
  while (lo > 0 && s.counts[lo] > half) { --lo; }
  std::size_t hi = pk;
  while (hi + 1 < s.counts.size() && s.counts[hi] > half) { ++hi; }
  const Real fwhm = (hi - lo) * s.bin_width();
  q.energy_spread = q.peak_energy > 0 ? fwhm / q.peak_energy : Real(0);

  Real total = 0;
  for (Real v : s.counts) { total += v; }
  q.charge = total * charge_per_count;
  return q;
}

template <int DIM>
Real charge_above(const mrpic::particles::ParticleContainer<DIM>& pc, Real e_min) {
  const Real mass = pc.species().mass;
  Real w_sum = 0;
  for (int ti = 0; ti < pc.num_tiles(); ++ti) {
    const auto& t = pc.tile(ti);
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (kinetic_energy_of<DIM>(t, i, mass) >= e_min) { w_sum += t.w[i]; }
    }
  }
  return w_sum * std::abs(pc.species().charge);
}

template Spectrum energy_spectrum<2>(const mrpic::particles::ParticleContainer<2>&, Real,
                                     Real, int);
template Spectrum energy_spectrum<3>(const mrpic::particles::ParticleContainer<3>&, Real,
                                     Real, int);
template Real charge_above<2>(const mrpic::particles::ParticleContainer<2>&, Real);
template Real charge_above<3>(const mrpic::particles::ParticleContainer<3>&, Real);

} // namespace mrpic::diag
