#include "src/diag/diagnostics.hpp"

#include <cmath>

#include "src/particles/deposition.hpp"

namespace mrpic::diag {

namespace {

// Yee divergence of an E-staggered 3-component field at nodal points:
// (F_x(i) - F_x(i-1))/dx + ... (component index i sits at i+1/2).
template <int DIM>
Real div_at(const mrpic::Array4<const Real>& f, const mrpic::IntVect<DIM>& p,
            const mrpic::RealVect<DIM>& inv_dx) {
  if constexpr (DIM == 2) {
    return (f(p[0], p[1], 0, 0) - f(p[0] - 1, p[1], 0, 0)) * inv_dx[0] +
           (f(p[0], p[1], 0, 1) - f(p[0], p[1] - 1, 0, 1)) * inv_dx[1];
  } else {
    return (f(p[0], p[1], p[2], 0) - f(p[0] - 1, p[1], p[2], 0)) * inv_dx[0] +
           (f(p[0], p[1], p[2], 1) - f(p[0], p[1] - 1, p[2], 1)) * inv_dx[1] +
           (f(p[0], p[1], p[2], 2) - f(p[0], p[1], p[2] - 1, 2)) * inv_dx[2];
  }
}

} // namespace

template <int DIM>
Real gauss_residual(const fields::FieldSet<DIM>& f, const mrpic::MultiFab<DIM>& rho,
                    int interior_shrink) {
  const auto inv_dx = f.geom().inv_dx();
  Real worst = 0;
  for (int m = 0; m < rho.num_fabs(); ++m) {
    const auto e = f.E().const_array(m);
    const auto r = rho.const_array(m);
    const auto interior = rho.valid_box(m).grown(-interior_shrink);
    if (interior.empty()) { continue; }
    rho.fab(m).for_each_cell(interior, [&](const mrpic::IntVect<DIM>& p) {
      Real div;
      if constexpr (DIM == 2) {
        div = div_at<2>(e, p, inv_dx);
        worst = std::max(worst,
                         std::abs(div - r(p[0], p[1], 0, 0) / mrpic::constants::eps0));
      } else {
        div = div_at<3>(e, p, inv_dx);
        worst = std::max(
            worst, std::abs(div - r(p[0], p[1], p[2], 0) / mrpic::constants::eps0));
      }
    });
  }
  return worst;
}

template <int DIM>
Real continuity_residual(const mrpic::MultiFab<DIM>& rho_old,
                         const mrpic::MultiFab<DIM>& rho_new, const mrpic::MultiFab<DIM>& J,
                         const mrpic::Geometry<DIM>& geom, Real dt, int interior_shrink) {
  const auto inv_dx = geom.inv_dx();
  Real worst = 0;
  for (int m = 0; m < J.num_fabs(); ++m) {
    const auto j4 = J.const_array(m);
    const auto r0 = rho_old.const_array(m);
    const auto r1 = rho_new.const_array(m);
    const auto interior = J.valid_box(m).grown(-interior_shrink);
    if (interior.empty()) { continue; }
    J.fab(m).for_each_cell(interior, [&](const mrpic::IntVect<DIM>& p) {
      const Real div = div_at<DIM>(j4, p, inv_dx);
      Real drho;
      if constexpr (DIM == 2) {
        drho = (r1(p[0], p[1], 0, 0) - r0(p[0], p[1], 0, 0)) / dt;
      } else {
        drho = (r1(p[0], p[1], p[2], 0) - r0(p[0], p[1], p[2], 0)) / dt;
      }
      worst = std::max(worst, std::abs(drho + div));
    });
  }
  return worst;
}

template <int DIM>
void accumulate_charge(int order, const particles::ParticleContainer<DIM>& pc,
                       const mrpic::Geometry<DIM>& geom, mrpic::MultiFab<DIM>& rho) {
  for (int ti = 0; ti < pc.num_tiles() && ti < rho.num_fabs(); ++ti) {
    particles::deposit_charge<DIM>(order, pc.tile(ti), geom, rho.array(ti),
                                   pc.species().charge);
  }
}

template Real gauss_residual<2>(const fields::FieldSet<2>&, const mrpic::MultiFab<2>&, int);
template Real gauss_residual<3>(const fields::FieldSet<3>&, const mrpic::MultiFab<3>&, int);
template Real continuity_residual<2>(const mrpic::MultiFab<2>&, const mrpic::MultiFab<2>&,
                                     const mrpic::MultiFab<2>&, const mrpic::Geometry<2>&,
                                     Real, int);
template Real continuity_residual<3>(const mrpic::MultiFab<3>&, const mrpic::MultiFab<3>&,
                                     const mrpic::MultiFab<3>&, const mrpic::Geometry<3>&,
                                     Real, int);
template void accumulate_charge<2>(int, const particles::ParticleContainer<2>&,
                                   const mrpic::Geometry<2>&, mrpic::MultiFab<2>&);
template void accumulate_charge<3>(int, const particles::ParticleContainer<3>&,
                                   const mrpic::Geometry<3>&, mrpic::MultiFab<3>&);

} // namespace mrpic::diag
