#include "src/diag/csv_writer.hpp"

namespace mrpic::diag {

bool CsvSeries::write(const std::string& path) const {
  std::ofstream os(path);
  if (!os) { return false; }
  for (std::size_t i = 0; i < m_columns.size(); ++i) {
    os << m_columns[i] << (i + 1 < m_columns.size() ? ',' : '\n');
  }
  for (const auto& row : m_rows) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << row[i] << (i + 1 < row.size() ? ',' : '\n');
    }
  }
  return static_cast<bool>(os);
}

bool write_field_2d(const std::string& path, const mrpic::MultiFab<2>& mf, int comp) {
  std::ofstream os(path);
  if (!os) { return false; }
  os << "i,j,value\n";
  for (int m = 0; m < mf.num_fabs(); ++m) {
    const auto& vb = mf.valid_box(m);
    const auto a = mf.const_array(m);
    for (int j = vb.lo(1); j <= vb.hi(1); ++j) {
      for (int i = vb.lo(0); i <= vb.hi(0); ++i) {
        os << i << ',' << j << ',' << a(i, j, 0, comp) << '\n';
      }
    }
  }
  return static_cast<bool>(os);
}

bool write_field_slice_3d(const std::string& path, const mrpic::MultiFab<3>& mf, int comp,
                          int k) {
  std::ofstream os(path);
  if (!os) { return false; }
  os << "i,j,value\n";
  for (int m = 0; m < mf.num_fabs(); ++m) {
    const auto& vb = mf.valid_box(m);
    if (k < vb.lo(2) || k > vb.hi(2)) { continue; }
    const auto a = mf.const_array(m);
    for (int j = vb.lo(1); j <= vb.hi(1); ++j) {
      for (int i = vb.lo(0); i <= vb.hi(0); ++i) {
        os << i << ',' << j << ',' << a(i, j, k, comp) << '\n';
      }
    }
  }
  return static_cast<bool>(os);
}

} // namespace mrpic::diag
