#pragma once

// Phase-space diagnostics: 2D histograms of particle coordinates (x vs u_x,
// x vs energy, ...) — the standard way to see trapping, injection and
// acceleration structure (the paper's Fig. 2/7 visualizations are built
// from exactly this kind of reduced particle data).

#include <string>
#include <vector>

#include "src/amr/config.hpp"
#include "src/particles/particle_container.hpp"

namespace mrpic::diag {

// Which particle quantity feeds a histogram axis.
enum class Axis {
  X0,      // position along dim 0 [m]
  X1,      // position along dim 1 [m]
  Ux,      // proper velocity u_x [m/s]
  Uy,
  Uz,
  Energy,  // kinetic energy [J]
};

struct PhaseSpaceConfig {
  Axis ax = Axis::X0;
  Axis ay = Axis::Ux;
  Real a_min = 0, a_max = 1;
  Real b_min = 0, b_max = 1;
  int na = 64, nb = 64;
};

class PhaseSpace {
public:
  explicit PhaseSpace(PhaseSpaceConfig cfg)
      : m_cfg(cfg), m_counts(static_cast<std::size_t>(cfg.na) * cfg.nb, Real(0)) {}

  const PhaseSpaceConfig& config() const { return m_cfg; }

  // Accumulate the weights of every particle of `pc` (out-of-range
  // particles are dropped). Can be called repeatedly (multiple containers,
  // multiple levels).
  template <int DIM>
  void accumulate(const particles::ParticleContainer<DIM>& pc);

  Real at(int ia, int ib) const {
    return m_counts[static_cast<std::size_t>(ib) * m_cfg.na + ia];
  }
  Real total() const;
  void reset() { std::fill(m_counts.begin(), m_counts.end(), Real(0)); }

  // CSV rows: a_center, b_center, weight.
  bool write(const std::string& path) const;

private:
  template <int DIM>
  Real value_of(const particles::ParticleTile<DIM>& t, std::size_t p, Axis axis,
                Real mass) const;

  PhaseSpaceConfig m_cfg;
  std::vector<Real> m_counts;
};

} // namespace mrpic::diag
