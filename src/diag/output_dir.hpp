#pragma once

// Run-artifact output directory for examples and benches. Every binary that
// writes CSV/JSON/trace artifacts routes them through an OutputDir so the
// repo root stays clean: the default directory is "out/" (gitignored),
// overridable with `--outdir DIR` (or `--outdir=DIR`) on any example/bench
// command line. The directory is created on first use, so dry runs that
// never write leave no empty directories behind.

#include <string>
#include <string_view>

namespace mrpic::diag {

class OutputDir {
public:
  explicit OutputDir(std::string dir = "out") : m_dir(std::move(dir)) {}

  // Extract `--outdir DIR` / `--outdir=DIR` from argv (compacting argc/argv
  // so later flag parsing never sees it). Exits with a usage message when
  // the flag is given without a value.
  static OutputDir from_args(int& argc, char** argv, std::string default_dir = "out");

  const std::string& dir() const { return m_dir; }

  // Join `filename` onto the directory, creating the directory (and
  // parents) on demand.
  std::string path(std::string_view filename) const;

private:
  std::string m_dir;
  mutable bool m_created = false;
};

} // namespace mrpic::diag
