#include "src/cluster/sim_cluster.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "src/obs/metrics.hpp"

namespace mrpic::cluster {

void SimCluster::record_metrics(const StepCost& cost) const {
  if (m_metrics == nullptr) { return; }
  m_metrics->counter("halo_bytes").add(cost.total_bytes);
  m_metrics->counter("halo_messages").add(cost.num_messages);
  m_metrics->gauge("cluster_compute_s").set(cost.compute_s);
  m_metrics->gauge("cluster_comm_s").set(cost.comm_s);
  m_metrics->gauge("cluster_imbalance").set(cost.imbalance);
}

template <int DIM>
StepCost SimCluster::step_cost(const mrpic::BoxArray<DIM>& ba,
                               const dist::DistributionMapping& dm,
                               const std::vector<Real>& box_compute_s, int ncomp, int ngrow,
                               int bytes_per_value) const {
  assert(dm.size() == ba.size());
  assert(static_cast<int>(box_compute_s.size()) == ba.size());

  StepCost cost;
  std::vector<double> rank_compute(m_nranks, 0.0);
  std::vector<double> rank_comm(m_nranks, 0.0);

  for (int i = 0; i < ba.size(); ++i) {
    rank_compute[dm.rank(i)] += static_cast<double>(box_compute_s[i]);
  }

  // Halo exchange: for each pair of boxes whose grown region overlaps the
  // other's valid region, one message of the intersection volume. Receiver
  // and sender are both charged (send+recv occupy both NICs).
  for (int i = 0; i < ba.size(); ++i) {
    const auto gi = ba[i].grown(ngrow);
    for (int j = 0; j < ba.size(); ++j) {
      if (i == j) { continue; }
      const auto region = gi & ba[j];
      if (region.empty()) { continue; }
      const std::int64_t bytes = region.num_cells() * ncomp * bytes_per_value;
      const bool same_rank = dm.rank(i) == dm.rank(j);
      const double t = m_comm.message_time(bytes, same_rank);
      rank_comm[dm.rank(i)] += t;
      if (!same_rank) {
        rank_comm[dm.rank(j)] += t;
        cost.total_bytes += bytes;
        ++cost.num_messages;
      }
    }
  }

  cost.compute_s = *std::max_element(rank_compute.begin(), rank_compute.end());
  cost.comm_s = *std::max_element(rank_comm.begin(), rank_comm.end());
  cost.total_s = cost.compute_s + cost.comm_s;
  const double mean =
      std::accumulate(rank_compute.begin(), rank_compute.end(), 0.0) / m_nranks;
  cost.imbalance = mean > 0 ? cost.compute_s / mean : 1.0;
  record_metrics(cost);
  return cost;
}

template StepCost SimCluster::step_cost<2>(const mrpic::BoxArray<2>&,
                                           const dist::DistributionMapping&,
                                           const std::vector<Real>&, int, int, int) const;
template StepCost SimCluster::step_cost<3>(const mrpic::BoxArray<3>&,
                                           const dist::DistributionMapping&,
                                           const std::vector<Real>&, int, int, int) const;

} // namespace mrpic::cluster
