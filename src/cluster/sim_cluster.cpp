#include "src/cluster/sim_cluster.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "src/dist/imbalance.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/rank_recorder.hpp"

namespace mrpic::cluster {

void SimCluster::record_metrics(const StepCost& cost) const {
  if (m_metrics == nullptr) { return; }
  m_metrics->counter("halo_bytes").add(cost.total_bytes);
  m_metrics->counter("halo_messages").add(cost.num_messages);
  m_metrics->gauge("cluster_compute_s").set(cost.compute_s);
  m_metrics->gauge("cluster_comm_s").set(cost.comm_s);
  m_metrics->gauge("cluster_imbalance").set(cost.imbalance);
  m_metrics->gauge("cluster_post_s").set(cost.post_s);
  m_metrics->gauge("cluster_wait_s").set(cost.wait_s);
  m_metrics->gauge("cluster_interior_compute_s").set(cost.interior_compute_s);
  m_metrics->gauge("cluster_overlap_headroom_s").set(cost.overlap_headroom_s);
  if (m_faults != nullptr) {
    m_metrics->counter("halo_retries").add(cost.retries);
    m_metrics->counter("halo_corrupt").add(cost.corrupt_messages);
    m_metrics->counter("halo_delayed").add(cost.delayed_messages);
    m_metrics->counter("halo_undelivered").add(cost.undelivered_messages);
    m_metrics->gauge("cluster_retry_s").set(cost.retry_s);
    m_metrics->gauge("cluster_detect_s").set(cost.detect_s);
    m_metrics->gauge("cluster_failed_rank").set(cost.failed_rank);
  }
}

template <int DIM>
StepCost SimCluster::step_cost(const mrpic::BoxArray<DIM>& ba,
                               const dist::DistributionMapping& dm,
                               const std::vector<Real>& box_compute_s, int ncomp, int ngrow,
                               int bytes_per_value, obs::RankRecorder* recorder) const {
  assert(dm.size() == ba.size());
  assert(static_cast<int>(box_compute_s.size()) == ba.size());

  StepCost cost;
  std::vector<obs::RankStepStats> ranks(static_cast<std::size_t>(m_nranks));
  for (int r = 0; r < m_nranks; ++r) { ranks[r].rank = r; }
  std::vector<obs::HaloMessage> messages;

  for (int i = 0; i < ba.size(); ++i) {
    auto& r = ranks[dm.rank(i)];
    r.compute_s += static_cast<double>(box_compute_s[i]);
    // Interior share of the box's work: cells more than ngrow from the box
    // surface need no ghost data, so their update could overlap the halo
    // exchange. Small boxes (fully within ngrow of their surface) have no
    // interior and contribute nothing.
    const auto interior = ba[i].grown(-ngrow);
    if (ba[i].num_cells() > 0) {
      r.interior_compute_s += static_cast<double>(box_compute_s[i]) *
                              static_cast<double>(interior.num_cells()) /
                              static_cast<double>(ba[i].num_cells());
    }
    ++r.boxes;
  }

  // Fault model, compute side: stragglers run slow, dead ranks do no work
  // (their boxes are lost until recovery re-homes them) and a crash charges
  // the heartbeat detection stall to the step.
  if (m_faults != nullptr) {
    for (auto& r : ranks) {
      if (!m_faults->rank_alive(r.rank)) {
        if (cost.failed_rank < 0) { cost.failed_rank = r.rank; }
        r.compute_s = 0;
        r.interior_compute_s = 0;
      } else {
        r.compute_s *= m_faults->compute_multiplier(r.rank);
        r.interior_compute_s *= m_faults->compute_multiplier(r.rank);
      }
    }
    if (cost.failed_rank >= 0) { cost.detect_s = m_faults->detection_time_s(); }
  }

  // Halo exchange: for each pair of boxes whose grown region overlaps the
  // other's valid region, one message of the intersection volume (box j
  // supplies the ghost data of box i). Receiver and sender are both charged
  // (send+recv occupy both NICs).
  int ordinal = 0; // inter-rank message index within this step (fault RNG key)
  for (int i = 0; i < ba.size(); ++i) {
    const auto gi = ba[i].grown(ngrow);
    for (int j = 0; j < ba.size(); ++j) {
      if (i == j) { continue; }
      const auto region = gi & ba[j];
      if (region.empty()) { continue; }
      const std::int64_t bytes = region.num_cells() * ncomp * bytes_per_value;
      const int dst = dm.rank(i), src = dm.rank(j);
      const bool same_rank = src == dst;
      const double t = m_comm.message_time(bytes, same_rank);
      if (same_rank) {
        // Device-local copy: no descriptor post, the whole span is wait
        // (keeps the per-rank invariant post_s + wait_s == comm_s).
        ranks[dst].comm_s += t;
        ranks[dst].wait_s += t;
        continue;
      }
      // Wire faults: a retried message occupies the wire once per attempt
      // plus the protocol wait (timeouts/backoff/delay) priced by the hooks.
      double t_total = t;
      MessageFate fate;
      if (m_faults != nullptr) {
        fate = m_faults->message_fate(src, dst, bytes, ordinal++);
        t_total = t * fate.attempts + fate.extra_s;
        const double overhead = t_total - t;
        ranks[src].retry_s += overhead;
        ranks[dst].retry_s += overhead;
        ranks[src].retries += fate.attempts - 1;
        ranks[dst].retries += fate.attempts - 1;
        cost.retries += fate.attempts - 1;
        if (fate.corrupted) { ++cost.corrupt_messages; }
        if (fate.delayed) { ++cost.delayed_messages; }
        if (!fate.delivered) { ++cost.undelivered_messages; }
      }
      ranks[dst].comm_s += t_total;
      ranks[src].comm_s += t_total;
      // Phase split of the message's comm charge: a fixed nonblocking-post
      // CPU cost, the rest blocked on the wire. A split, not a surcharge —
      // post + wait == t_total on both endpoints.
      const double post = std::min(t_total, m_comm.post_overhead_s);
      const double wait = t_total - post;
      ranks[dst].post_s += post;
      ranks[dst].wait_s += wait;
      ranks[src].post_s += post;
      ranks[src].wait_s += wait;
      ranks[src].bytes_sent += bytes;
      ranks[dst].bytes_recv += bytes;
      ++ranks[src].messages;
      ++ranks[dst].messages;
      cost.total_bytes += bytes;
      ++cost.num_messages;
      if (recorder != nullptr) {
        obs::HaloMessage msg;
        msg.src_rank = src;
        msg.dst_rank = dst;
        msg.src_box = j;
        msg.dst_box = i;
        msg.bytes = bytes;
        msg.latency_s = m_comm.latency_s;
        msg.transfer_s = t - m_comm.latency_s;
        msg.attempts = fate.attempts;
        msg.retry_s = t_total - t;
        messages.push_back(msg);
      }
    }
  }

  std::vector<double> compute_loads(ranks.size());
  std::size_t critical = 0;
  for (std::size_t r = 0; r < ranks.size(); ++r) {
    ranks[r].overlap_headroom_s =
        std::min(ranks[r].wait_s, ranks[r].interior_compute_s);
    cost.compute_s = std::max(cost.compute_s, ranks[r].compute_s);
    cost.comm_s = std::max(cost.comm_s, ranks[r].comm_s);
    cost.retry_s = std::max(cost.retry_s, ranks[r].retry_s);
    compute_loads[r] = ranks[r].compute_s;
    if (ranks[r].total_s() > ranks[critical].total_s()) { critical = r; }
  }
  if (!ranks.empty()) {
    // Phase timeline of the rank that gates the step.
    cost.post_s = ranks[critical].post_s;
    cost.wait_s = ranks[critical].wait_s;
    cost.interior_compute_s = ranks[critical].interior_compute_s;
    cost.overlap_headroom_s = ranks[critical].overlap_headroom_s;
  }
  cost.total_s = cost.compute_s + cost.comm_s + cost.detect_s;
  cost.imbalance = dist::max_over_mean(compute_loads);
  record_metrics(cost);

  if (m_metrics != nullptr) {
    std::vector<obs::StepRecord::RankSection> sections(ranks.size());
    for (std::size_t r = 0; r < ranks.size(); ++r) {
      sections[r] = {{"compute_s", ranks[r].compute_s},
                     {"comm_s", ranks[r].comm_s},
                     {"post_s", ranks[r].post_s},
                     {"wait_s", ranks[r].wait_s},
                     {"interior_compute_s", ranks[r].interior_compute_s},
                     {"overlap_headroom_s", ranks[r].overlap_headroom_s},
                     {"bytes_sent", static_cast<double>(ranks[r].bytes_sent)},
                     {"bytes_recv", static_cast<double>(ranks[r].bytes_recv)},
                     {"messages", static_cast<double>(ranks[r].messages)},
                     {"boxes", static_cast<double>(ranks[r].boxes)}};
      if (m_faults != nullptr) {
        sections[r]["retry_s"] = ranks[r].retry_s;
        sections[r]["retries"] = static_cast<double>(ranks[r].retries);
      }
    }
    m_metrics->set_step_ranks(std::move(sections));
  }
  if (recorder != nullptr) {
    obs::RankStepBreakdown breakdown;
    breakdown.step = recorder->current_step();
    breakdown.ranks = std::move(ranks);
    recorder->add_step(std::move(breakdown), std::move(messages));
  }
  return cost;
}

template StepCost SimCluster::step_cost<2>(const mrpic::BoxArray<2>&,
                                           const dist::DistributionMapping&,
                                           const std::vector<Real>&, int, int, int,
                                           obs::RankRecorder*) const;
template StepCost SimCluster::step_cost<3>(const mrpic::BoxArray<3>&,
                                           const dist::DistributionMapping&,
                                           const std::vector<Real>&, int, int, int,
                                           obs::RankRecorder*) const;

} // namespace mrpic::cluster
