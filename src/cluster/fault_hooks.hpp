#pragma once

// FaultHooks: the seam through which a fault model perturbs the simulated
// cluster. SimCluster::step_cost() consults the attached hooks for per-rank
// compute slowdowns (stragglers), per-rank liveness (crashes) and the fate
// of every inter-rank halo message (drop / delay / corruption, including the
// retry cost already computed by the injector's retry policy). The interface
// lives in cluster/ so the cluster layer stays independent of resil/, which
// provides the concrete seeded implementation (resil::FaultInjector).

#include <cstdint>

namespace mrpic::cluster {

// What happened to one inter-rank message once the wire faults and the
// sender's retry protocol have played out.
struct MessageFate {
  bool delivered = true;  // false: every retry exhausted (e.g. dead peer)
  int attempts = 1;       // total wire sends, >= 1 (1 = clean first try)
  double extra_s = 0;     // protocol wait time beyond the wire transfers
                          // (ack timeouts, backoff, in-flight delay)
  bool corrupted = false; // >= 1 attempt arrived corrupted (checksum reject)
  bool delayed = false;   // an in-flight delay was injected
};

class FaultHooks {
public:
  virtual ~FaultHooks() = default;

  // False once the rank has crashed (as of the injector's current step).
  virtual bool rank_alive(int /*rank*/) const { return true; }

  // Multiplier >= 1 applied to the rank's summed compute time (straggler).
  virtual double compute_multiplier(int /*rank*/) const { return 1.0; }

  // Fate of the `ordinal`-th inter-rank message of the current step.
  // Deterministic: a pure function of (plan seed, step, ordinal).
  virtual MessageFate message_fate(int /*src*/, int /*dst*/, std::int64_t /*bytes*/,
                                   int /*ordinal*/) const {
    return {};
  }

  // Modeled latency between a rank dying and the survivors declaring it dead
  // (heartbeat timeout); charged into the step on which the crash occurs.
  virtual double detection_time_s() const { return 0.0; }
};

} // namespace mrpic::cluster
