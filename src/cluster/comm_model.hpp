#pragma once

// Communication cost model for the simulated cluster: the latency/bandwidth
// alpha-beta model that underlies the reproduction of the paper's multi-node
// behaviour on a single host (DESIGN.md §1). Message cost = latency +
// bytes/bandwidth; on-rank copies are free (bandwidth-only, charged at the
// intra-node rate).

#include <cstdint>

#include "src/amr/config.hpp"

namespace mrpic::cluster {

struct CommModel {
  double latency_s = 2e-6;          // per-message network latency [s]
  double bandwidth_Bps = 12.5e9;    // inter-rank bandwidth [bytes/s]
  double intranode_Bps = 200e9;     // same-rank (device-local) copy rate
  double allreduce_latency_s = 5e-6; // per-hop cost of a reduction tree
  // CPU cost of posting one nonblocking send/recv pair (descriptor setup,
  // not wire time). Used only to *split* a message's comm time into a post
  // sub-span and a wait sub-span for the halo phase timeline — it is never
  // added on top of message_time(), so totals are unchanged.
  double post_overhead_s = 1e-7;

  double message_time(std::int64_t bytes, bool same_rank) const {
    if (same_rank) { return static_cast<double>(bytes) / intranode_Bps; }
    return latency_s + static_cast<double>(bytes) / bandwidth_Bps;
  }

  // log2-tree allreduce across nranks.
  double allreduce_time(int nranks, std::int64_t bytes) const {
    if (nranks <= 1) { return 0; }
    int hops = 0;
    for (int n = nranks - 1; n > 0; n >>= 1) { ++hops; }
    return hops * (allreduce_latency_s + static_cast<double>(bytes) / bandwidth_Bps);
  }
};

} // namespace mrpic::cluster
