#include "src/cluster/comm_model.hpp"

// Header-only; anchors the module in the library build.
