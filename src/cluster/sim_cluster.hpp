#pragma once

// SimCluster: a simulated distributed-memory runtime. The box -> rank
// assignment of a DistributionMapping is executed virtually: per-rank
// compute time comes from per-box costs, halo-exchange time from the actual
// ghost-region intersections of the BoxArray (message sizes and partner
// counts are exact; only the wire transport is modeled). This is the
// substitute for MPI on real machines (DESIGN.md §1) and drives the
// load-balancing and scaling benchmarks.

#include <vector>

#include "src/amr/box_array.hpp"
#include "src/cluster/comm_model.hpp"
#include "src/cluster/fault_hooks.hpp"
#include "src/dist/distribution_mapping.hpp"

namespace mrpic::obs {
class MetricsRegistry;
class RankRecorder;
}

namespace mrpic::cluster {

struct StepCost {
  double compute_s = 0;        // max over ranks of summed box costs
  double comm_s = 0;           // max over ranks of halo-exchange time
  double total_s = 0;          // compute + comm (+ failure detection stall)
  double imbalance = 1;        // max/mean compute
  std::int64_t total_bytes = 0;   // bytes crossing rank boundaries
  std::int64_t num_messages = 0;  // inter-rank messages
  // Halo phase timeline of the critical rank (argmax compute + comm):
  // comm splits into a nonblocking post sub-span and a blocked wait
  // sub-span (post_s + wait_s == that rank's comm_s), interior_compute_s is
  // its compute on ghost-free interior cells, and overlap_headroom_s =
  // min(wait_s, interior_compute_s) — the step time a comm/compute overlap
  // scheme (ROADMAP item 2) could hide.
  double post_s = 0;
  double wait_s = 0;
  double interior_compute_s = 0;
  double overlap_headroom_s = 0;
  // Fault accounting (all zero / -1 unless FaultHooks are attached).
  double retry_s = 0;          // max over ranks of fault-induced extra comm time
  double detect_s = 0;         // failure-detection stall (a rank died this step)
  std::int64_t retries = 0;    // total retransmission attempts
  std::int64_t corrupt_messages = 0;     // >= 1 attempt failed the checksum
  std::int64_t delayed_messages = 0;     // in-flight delay injected
  std::int64_t undelivered_messages = 0; // retry ladder exhausted
  int failed_rank = -1;        // lowest rank dead this step (-1 = all alive)
};

class SimCluster {
public:
  SimCluster(int nranks, CommModel comm = {}) : m_nranks(nranks), m_comm(comm) {}

  int nranks() const { return m_nranks; }
  const CommModel& comm() const { return m_comm; }

  // When set, every step_cost() evaluation records into the registry:
  // counters halo_bytes / halo_messages, gauges cluster_compute_s /
  // cluster_comm_s / cluster_imbalance plus the critical rank's halo phase
  // timeline (cluster_post_s / cluster_wait_s / cluster_interior_compute_s /
  // cluster_overlap_headroom_s), and a per-rank section (compute_s/comm_s/
  // phase split/bytes/messages/boxes per rank) on the in-flight step
  // record. The registry must outlive this cluster (or be detached with
  // nullptr).
  void set_metrics(obs::MetricsRegistry* metrics) { m_metrics = metrics; }
  obs::MetricsRegistry* metrics() const { return m_metrics; }

  // Attach a fault model (e.g. resil::FaultInjector): step_cost() then
  // applies per-rank slowdowns, charges message retry/backoff time, flags
  // dead ranks (StepCost::failed_rank) and adds the heartbeat detection
  // stall on crash steps. The hooks must outlive this cluster (or be
  // detached with nullptr).
  void set_faults(const FaultHooks* faults) { m_faults = faults; }
  const FaultHooks* faults() const { return m_faults; }

  // Cost of one step: per-box compute seconds + halo exchange of `ncomp`
  // components with `ngrow` ghosts over `ba` distributed by `dm`.
  // `bytes_per_value` is 8 (DP) or 4 (SP). When `recorder` is given, the
  // full per-rank breakdown plus the message-level halo log (src/dst rank,
  // bytes, latency + transfer time) are captured instead of only the
  // max-over-ranks scalars; the step is tagged with recorder->current_step().
  template <int DIM>
  StepCost step_cost(const mrpic::BoxArray<DIM>& ba, const dist::DistributionMapping& dm,
                     const std::vector<Real>& box_compute_s, int ncomp, int ngrow,
                     int bytes_per_value = 8, obs::RankRecorder* recorder = nullptr) const;

private:
  void record_metrics(const StepCost& cost) const;

  int m_nranks;
  CommModel m_comm;
  obs::MetricsRegistry* m_metrics = nullptr;
  const FaultHooks* m_faults = nullptr;
};

extern template StepCost SimCluster::step_cost<2>(const mrpic::BoxArray<2>&,
                                                  const dist::DistributionMapping&,
                                                  const std::vector<Real>&, int, int, int,
                                                  obs::RankRecorder*) const;
extern template StepCost SimCluster::step_cost<3>(const mrpic::BoxArray<3>&,
                                                  const dist::DistributionMapping&,
                                                  const std::vector<Real>&, int, int, int,
                                                  obs::RankRecorder*) const;

} // namespace mrpic::cluster
