#include "src/dist/morton.hpp"

namespace mrpic::dist {

std::uint64_t spread_bits_3(std::uint32_t x) {
  std::uint64_t v = x & 0x1fffff; // 21 bits
  v = (v | v << 32) & 0x1f00000000ffffULL;
  v = (v | v << 16) & 0x1f0000ff0000ffULL;
  v = (v | v << 8) & 0x100f00f00f00f00fULL;
  v = (v | v << 4) & 0x10c30c30c30c30c3ULL;
  v = (v | v << 2) & 0x1249249249249249ULL;
  return v;
}

std::uint64_t spread_bits_2(std::uint32_t x) {
  std::uint64_t v = x;
  v = (v | v << 16) & 0x0000ffff0000ffffULL;
  v = (v | v << 8) & 0x00ff00ff00ff00ffULL;
  v = (v | v << 4) & 0x0f0f0f0f0f0f0f0fULL;
  v = (v | v << 2) & 0x3333333333333333ULL;
  v = (v | v << 1) & 0x5555555555555555ULL;
  return v;
}

std::uint64_t morton_encode(std::uint32_t x, std::uint32_t y) {
  return spread_bits_2(x) | (spread_bits_2(y) << 1);
}

std::uint64_t morton_encode(std::uint32_t x, std::uint32_t y, std::uint32_t z) {
  return spread_bits_3(x) | (spread_bits_3(y) << 1) | (spread_bits_3(z) << 2);
}

} // namespace mrpic::dist
