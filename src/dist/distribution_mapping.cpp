#include "src/dist/distribution_mapping.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "src/dist/imbalance.hpp"
#include "src/dist/knapsack.hpp"
#include "src/dist/morton.hpp"

namespace mrpic::dist {

const char* to_string(Strategy s) {
  switch (s) {
    case Strategy::RoundRobin: return "round_robin";
    case Strategy::SpaceFillingCurve: return "sfc";
    case Strategy::Knapsack: return "knapsack";
  }
  return "unknown";
}

namespace {

template <int DIM>
std::vector<Real> default_costs(const mrpic::BoxArray<DIM>& ba) {
  std::vector<Real> costs(ba.size());
  for (int i = 0; i < ba.size(); ++i) {
    costs[i] = static_cast<Real>(ba[i].num_cells());
  }
  return costs;
}

// Cut a cost-ordered sequence into nranks contiguous segments of roughly
// equal cumulative cost. Greedy: close a segment once its cost reaches the
// remaining-average.
std::vector<int> cut_curve(const std::vector<int>& order, const std::vector<Real>& costs,
                           int nranks) {
  std::vector<int> ranks(order.size(), 0);
  Real remaining = 0;
  for (Real c : costs) { remaining += c; }
  int rank = 0;
  Real seg = 0;
  int segments_left = nranks;
  // Target cost of the current segment, fixed at segment start (recomputing
  // it per item would shrink the target as the segment fills and close
  // segments early).
  Real target = remaining / segments_left;
  for (std::size_t t = 0; t < order.size(); ++t) {
    ranks[order[t]] = rank;
    seg += costs[order[t]];
    remaining -= costs[order[t]];
    // Close when the target is met (with a half-item tolerance so a segment
    // straddling the boundary takes the closer cut), or when exactly one
    // item must remain for each remaining segment.
    const std::size_t items_left = order.size() - t - 1;
    const bool must_close = items_left > 0 &&
                            items_left == static_cast<std::size_t>(segments_left - 1);
    if ((seg + Real(0.5) * costs[order[t]] >= target || must_close) && rank + 1 < nranks) {
      ++rank;
      --segments_left;
      seg = 0;
      target = remaining / segments_left;
    }
  }
  return ranks;
}

} // namespace

template <int DIM>
DistributionMapping DistributionMapping::make(const mrpic::BoxArray<DIM>& ba, int nranks,
                                              Strategy strategy,
                                              const std::vector<Real>& costs_in) {
  assert(nranks >= 1);
  const int n = ba.size();
  std::vector<Real> costs = costs_in.empty() ? default_costs(ba) : costs_in;
  assert(static_cast<int>(costs.size()) == n);

  std::vector<int> ranks(n, 0);
  switch (strategy) {
    case Strategy::RoundRobin: {
      for (int i = 0; i < n; ++i) { ranks[i] = i % nranks; }
      break;
    }
    case Strategy::SpaceFillingCurve: {
      // Z-sort boxes by the Morton key of their (shifted non-negative)
      // centers, then cut the curve into cost-balanced contiguous segments.
      auto mb = ba.minimal_box();
      std::vector<std::uint64_t> keys(n);
      for (int i = 0; i < n; ++i) {
        mrpic::IntVect<DIM> c;
        for (int d = 0; d < DIM; ++d) {
          c[d] = (ba[i].lo(d) + ba[i].hi(d)) / 2 - mb.lo(d);
        }
        keys[i] = morton_key(c);
      }
      std::vector<int> order(n);
      std::iota(order.begin(), order.end(), 0);
      std::sort(order.begin(), order.end(), [&](int a, int b) { return keys[a] < keys[b]; });
      ranks = cut_curve(order, costs, nranks);
      break;
    }
    case Strategy::Knapsack: {
      ranks = knapsack_partition(costs, nranks).assignment;
      break;
    }
  }
  return DistributionMapping(std::move(ranks), nranks);
}

std::vector<Real> DistributionMapping::rank_loads(const std::vector<Real>& costs) const {
  std::vector<Real> loads(m_nranks, Real(0));
  for (int i = 0; i < size(); ++i) { loads[m_ranks[i]] += costs[i]; }
  return loads;
}

Real DistributionMapping::imbalance(const std::vector<Real>& costs) const {
  return static_cast<Real>(max_over_mean(rank_loads(costs)));
}

template DistributionMapping DistributionMapping::make<2>(const mrpic::BoxArray<2>&, int,
                                                          Strategy,
                                                          const std::vector<Real>&);
template DistributionMapping DistributionMapping::make<3>(const mrpic::BoxArray<3>&, int,
                                                          Strategy,
                                                          const std::vector<Real>&);

} // namespace mrpic::dist
