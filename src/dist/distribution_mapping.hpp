#pragma once

// DistributionMapping: the box -> rank assignment for a BoxArray, with the
// three strategies described in the paper (Sec. V.C):
//   - round robin:        box i -> rank i % nranks
//   - space-filling curve: boxes Z-sorted by Morton key of their centers,
//                          then the curve is cut into nranks contiguous
//                          segments of approximately equal cost
//   - knapsack:           cost-balanced with no locality consideration
//
// The same object is used by the in-process MultiFab (where all boxes are
// resident) and by the simulated cluster runtime (where rank assignment
// drives communication cost accounting).

#include <vector>

#include "src/amr/box_array.hpp"
#include "src/amr/config.hpp"

namespace mrpic::dist {

enum class Strategy { RoundRobin, SpaceFillingCurve, Knapsack };

const char* to_string(Strategy s);

class DistributionMapping {
public:
  DistributionMapping() = default;

  explicit DistributionMapping(std::vector<int> ranks, int nranks)
      : m_ranks(std::move(ranks)), m_nranks(nranks) {}

  // Build a mapping for `ba` over `nranks` ranks. `costs` (one entry per
  // box) weights the SFC cuts and the knapsack; if empty, each box's cost is
  // its cell count.
  template <int DIM>
  static DistributionMapping make(const mrpic::BoxArray<DIM>& ba, int nranks,
                                  Strategy strategy,
                                  const std::vector<Real>& costs = {});

  int size() const { return static_cast<int>(m_ranks.size()); }
  int nranks() const { return m_nranks; }
  int rank(int box) const { return m_ranks[box]; }
  const std::vector<int>& ranks() const { return m_ranks; }

  bool operator==(const DistributionMapping&) const = default;

  // Load (sum of costs) per rank under this mapping.
  std::vector<Real> rank_loads(const std::vector<Real>& costs) const;

  // max load / mean load; 1.0 = perfect.
  Real imbalance(const std::vector<Real>& costs) const;

private:
  std::vector<int> m_ranks;
  int m_nranks = 1;
};

} // namespace mrpic::dist
