#include "src/dist/knapsack.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <queue>

namespace mrpic::dist {

namespace {

struct RankLoad {
  Real load;
  int rank;
  bool operator>(const RankLoad& o) const { return load > o.load; }
};

} // namespace

KnapsackResult knapsack_partition(const std::vector<Real>& weights, int nranks,
                                  bool do_swap_refinement) {
  assert(nranks >= 1);
  KnapsackResult res;
  const int n = static_cast<int>(weights.size());
  res.assignment.assign(n, 0);
  res.rank_loads.assign(nranks, Real(0));
  if (n == 0) {
    res.max_load = 0;
    res.efficiency = 1;
    return res;
  }

  // LPT: sort items by descending weight, always give the next item to the
  // currently least-loaded rank (min-heap).
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return weights[a] > weights[b]; });

  std::priority_queue<RankLoad, std::vector<RankLoad>, std::greater<>> heap;
  for (int r = 0; r < nranks; ++r) { heap.push({Real(0), r}); }
  for (int idx : order) {
    RankLoad rl = heap.top();
    heap.pop();
    res.assignment[idx] = rl.rank;
    rl.load += weights[idx];
    res.rank_loads[rl.rank] = rl.load;
    heap.push(rl);
  }

  // Pairwise swap refinement: try moving one item from the heaviest rank to
  // the lightest as long as it lowers the max load.
  if (do_swap_refinement) {
    std::vector<std::vector<int>> items(nranks);
    for (int i = 0; i < n; ++i) { items[res.assignment[i]].push_back(i); }
    for (int pass = 0; pass < 8; ++pass) {
      const auto hi_it = std::max_element(res.rank_loads.begin(), res.rank_loads.end());
      const auto lo_it = std::min_element(res.rank_loads.begin(), res.rank_loads.end());
      const int hi = static_cast<int>(hi_it - res.rank_loads.begin());
      const int lo = static_cast<int>(lo_it - res.rank_loads.begin());
      if (hi == lo) { break; }
      const Real gap = res.rank_loads[hi] - res.rank_loads[lo];
      // Best single move: the item on `hi` whose weight is closest to gap/2
      // without exceeding gap (so the move strictly reduces the max).
      int best = -1;
      Real best_dist = gap; // must be < gap to improve
      for (std::size_t t = 0; t < items[hi].size(); ++t) {
        const Real w = weights[items[hi][t]];
        if (w < gap) {
          const Real dist = std::abs(w - gap / 2);
          if (best < 0 || dist < best_dist) {
            best = static_cast<int>(t);
            best_dist = dist;
          }
        }
      }
      if (best < 0) { break; }
      const int item = items[hi][best];
      items[hi].erase(items[hi].begin() + best);
      items[lo].push_back(item);
      res.assignment[item] = lo;
      res.rank_loads[hi] -= weights[item];
      res.rank_loads[lo] += weights[item];
    }
  }

  res.max_load = *std::max_element(res.rank_loads.begin(), res.rank_loads.end());
  const Real total = std::accumulate(res.rank_loads.begin(), res.rank_loads.end(), Real(0));
  res.efficiency = res.max_load > 0 ? (total / nranks) / res.max_load : Real(1);
  return res;
}

} // namespace mrpic::dist
