#pragma once

// Dynamic load balancing (paper Sec. V.C): boxes carry measured runtime
// costs; when the imbalance of the current DistributionMapping exceeds a
// threshold, a new mapping is computed with the configured strategy. Also
// implements the PML co-location heuristic: PML boxes are placed on the rank
// of the spatially closest parent-grid box, which the paper credits with a
// 25% performance gain.

#include <vector>

#include "src/amr/box_array.hpp"
#include "src/dist/distribution_mapping.hpp"

namespace mrpic::obs {
class MetricsRegistry;
class RankRecorder;
}

namespace mrpic::dist {

struct LoadBalanceConfig {
  Strategy strategy = Strategy::SpaceFillingCurve;
  // Rebalance when max_load / mean_load exceeds this factor.
  Real imbalance_threshold = Real(1.1);
  // Exponential smoothing factor for cost measurements (1 = use newest only).
  Real cost_smoothing = Real(0.5);
};

class LoadBalancer {
public:
  explicit LoadBalancer(LoadBalanceConfig cfg = {}) : m_cfg(cfg) {}

  const LoadBalanceConfig& config() const { return m_cfg; }

  // Record a new cost observation per box (e.g. measured kernel seconds or a
  // particles+cells heuristic). Costs are exponentially smoothed.
  void record_costs(const std::vector<Real>& new_costs);
  const std::vector<Real>& costs() const { return m_costs; }
  void reset_costs() { m_costs.clear(); }

  // True if the given mapping's imbalance exceeds the threshold.
  bool should_rebalance(const DistributionMapping& dm) const;

  // Compute a new mapping for `ba` using smoothed costs.
  template <int DIM>
  DistributionMapping rebalance(const mrpic::BoxArray<DIM>& ba, int nranks) const {
    return DistributionMapping::make(ba, nranks, m_cfg.strategy, m_costs);
  }

  int num_rebalances() const { return m_num_rebalances; }
  void count_rebalance();
  // Count a rebalance AND snapshot the per-rank summed costs under the old
  // and the new mapping: publishes gauges "lb_imbalance_before"/"_after" to
  // the metrics registry and a RebalanceRecord (tagged with the recorder's
  // current step) to the rank recorder, when attached.
  void count_rebalance(const DistributionMapping& before, const DistributionMapping& after);

  // Per-rank sums of the smoothed costs under a mapping (size = nranks).
  std::vector<double> rank_costs(const DistributionMapping& dm) const;

  // Imbalance (max/mean) of the currently smoothed costs; 1 when empty.
  Real cost_imbalance() const;

  // When set, record_costs() publishes gauge "lb_cost_imbalance" and
  // count_rebalance() bumps counter "lb_rebalances". The registry must
  // outlive this balancer (or be detached with nullptr).
  void set_metrics(obs::MetricsRegistry* metrics) { m_metrics = metrics; }
  // When set, count_rebalance(before, after) records a before/after
  // per-rank cost snapshot. Same lifetime contract as the registry.
  void set_rank_recorder(obs::RankRecorder* recorder) { m_recorder = recorder; }

private:
  LoadBalanceConfig m_cfg;
  std::vector<Real> m_costs;
  int m_num_rebalances = 0;
  obs::MetricsRegistry* m_metrics = nullptr;
  obs::RankRecorder* m_recorder = nullptr;
};

// Assign each PML box to the rank of the nearest box of the parent grid
// (minimizing the frequent PML<->parent data exchanges).
template <int DIM>
DistributionMapping colocate_pml(const mrpic::BoxArray<DIM>& pml_boxes,
                                 const mrpic::BoxArray<DIM>& parent_boxes,
                                 const DistributionMapping& parent_dm);

} // namespace mrpic::dist
