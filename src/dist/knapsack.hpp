#pragma once

// Knapsack load balancing: distribute weighted items across ranks so that the
// maximum rank load is minimized, with no consideration of locality. As in
// AMReX, the NP-hard problem is solved heuristically: Longest-Processing-Time
// (LPT) greedy assignment followed by a pairwise-swap refinement pass.

#include <cstdint>
#include <vector>

#include "src/amr/config.hpp"

namespace mrpic::dist {

struct KnapsackResult {
  std::vector<int> assignment;   // item index -> rank
  std::vector<Real> rank_loads;  // total weight per rank
  Real max_load = 0;
  Real efficiency = 0; // mean load / max load, 1.0 = perfectly balanced
};

// weights[i] is the cost of item i; nranks >= 1.
KnapsackResult knapsack_partition(const std::vector<Real>& weights, int nranks,
                                  bool do_swap_refinement = true);

} // namespace mrpic::dist
