#pragma once

// The one load-imbalance metric of the codebase: lambda = max/mean over
// per-rank loads (1.0 = perfect balance; the paper's Sec. V.C load-balance
// factor). Every layer that reports imbalance — DistributionMapping,
// LoadBalancer rebalance snapshots, cluster::StepCost, obs::RankRecorder
// and the obs::analysis scaling-loss decomposition — funnels through this
// helper so their numbers are bit-identical for the same rank loads.

#include <vector>

namespace mrpic::dist {

// max/mean of per-rank loads, accumulated in double; 1.0 when the load set
// is empty or the mean is not positive.
template <typename T>
double max_over_mean(const std::vector<T>& loads) {
  if (loads.empty()) { return 1.0; }
  double mx = 0;
  double sum = 0;
  for (const T& v : loads) {
    const double d = static_cast<double>(v);
    if (d > mx) { mx = d; }
    sum += d;
  }
  const double mean = sum / static_cast<double>(loads.size());
  return mean > 0 ? mx / mean : 1.0;
}

} // namespace mrpic::dist
