#include "src/dist/load_balancer.hpp"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <limits>
#include <numeric>

#include "src/dist/imbalance.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/rank_recorder.hpp"

namespace mrpic::dist {

void LoadBalancer::record_costs(const std::vector<Real>& new_costs) {
  if (m_costs.size() != new_costs.size()) {
    m_costs = new_costs;
  } else {
    const Real a = m_cfg.cost_smoothing;
    for (std::size_t i = 0; i < m_costs.size(); ++i) {
      m_costs[i] = (1 - a) * m_costs[i] + a * new_costs[i];
    }
  }
  if (m_metrics != nullptr) {
    m_metrics->gauge("lb_cost_imbalance").set(static_cast<double>(cost_imbalance()));
  }
}

Real LoadBalancer::cost_imbalance() const {
  return static_cast<Real>(max_over_mean(m_costs));
}

void LoadBalancer::count_rebalance() {
  ++m_num_rebalances;
  if (m_metrics != nullptr) { m_metrics->counter("lb_rebalances").inc(); }
}

std::vector<double> LoadBalancer::rank_costs(const DistributionMapping& dm) const {
  std::vector<double> sums(static_cast<std::size_t>(dm.nranks()), 0.0);
  if (dm.size() != static_cast<int>(m_costs.size())) { return sums; }
  for (int i = 0; i < dm.size(); ++i) {
    sums[dm.rank(i)] += static_cast<double>(m_costs[i]);
  }
  return sums;
}

void LoadBalancer::count_rebalance(const DistributionMapping& before,
                                   const DistributionMapping& after) {
  count_rebalance();
  obs::RebalanceRecord rec;
  rec.rank_cost_before = rank_costs(before);
  rec.rank_cost_after = rank_costs(after);
  rec.imbalance_before = max_over_mean(rec.rank_cost_before);
  rec.imbalance_after = max_over_mean(rec.rank_cost_after);
  if (m_metrics != nullptr) {
    m_metrics->gauge("lb_imbalance_before").set(rec.imbalance_before);
    m_metrics->gauge("lb_imbalance_after").set(rec.imbalance_after);
  }
  if (m_recorder != nullptr) { m_recorder->add_rebalance(std::move(rec)); }
}

bool LoadBalancer::should_rebalance(const DistributionMapping& dm) const {
  if (m_costs.empty() || dm.size() != static_cast<int>(m_costs.size())) { return false; }
  return dm.imbalance(m_costs) > m_cfg.imbalance_threshold;
}

namespace {

// Squared distance between box centers (in index space of the same level).
template <int DIM>
std::int64_t center_dist2(const mrpic::Box<DIM>& a, const mrpic::Box<DIM>& b) {
  std::int64_t d2 = 0;
  for (int d = 0; d < DIM; ++d) {
    // Centers in doubled coordinates to stay integral.
    const std::int64_t ca = a.lo(d) + a.hi(d);
    const std::int64_t cb = b.lo(d) + b.hi(d);
    d2 += (ca - cb) * (ca - cb);
  }
  return d2;
}

} // namespace

template <int DIM>
DistributionMapping colocate_pml(const mrpic::BoxArray<DIM>& pml_boxes,
                                 const mrpic::BoxArray<DIM>& parent_boxes,
                                 const DistributionMapping& parent_dm) {
  assert(parent_dm.size() == parent_boxes.size());
  std::vector<int> ranks(pml_boxes.size(), 0);
  for (int i = 0; i < pml_boxes.size(); ++i) {
    std::int64_t best = std::numeric_limits<std::int64_t>::max();
    for (int j = 0; j < parent_boxes.size(); ++j) {
      const std::int64_t d2 = center_dist2(pml_boxes[i], parent_boxes[j]);
      if (d2 < best) {
        best = d2;
        ranks[i] = parent_dm.rank(j);
      }
    }
  }
  return DistributionMapping(std::move(ranks), parent_dm.nranks());
}

template DistributionMapping colocate_pml<2>(const mrpic::BoxArray<2>&,
                                             const mrpic::BoxArray<2>&,
                                             const DistributionMapping&);
template DistributionMapping colocate_pml<3>(const mrpic::BoxArray<3>&,
                                             const mrpic::BoxArray<3>&,
                                             const DistributionMapping&);

} // namespace mrpic::dist
