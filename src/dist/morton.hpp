#pragma once

// Morton (Z-order) encoding used by the space-filling-curve distribution
// strategy: spatially close boxes get close curve positions, so contiguous
// curve segments assigned to a rank minimize halo-exchange partners.

#include <cstdint>

#include "src/amr/int_vect.hpp"

namespace mrpic::dist {

// Spread the low 21 bits of x so that there are two zero bits between
// consecutive bits (3D interleave component).
std::uint64_t spread_bits_3(std::uint32_t x);

// Spread the low 32 bits of x with one zero bit between bits (2D).
std::uint64_t spread_bits_2(std::uint32_t x);

std::uint64_t morton_encode(std::uint32_t x, std::uint32_t y);
std::uint64_t morton_encode(std::uint32_t x, std::uint32_t y, std::uint32_t z);

// Morton key of a (non-negative) index vector.
inline std::uint64_t morton_key(const mrpic::IntVect<2>& p) {
  return morton_encode(static_cast<std::uint32_t>(p[0]), static_cast<std::uint32_t>(p[1]));
}
inline std::uint64_t morton_key(const mrpic::IntVect<3>& p) {
  return morton_encode(static_cast<std::uint32_t>(p[0]), static_cast<std::uint32_t>(p[1]),
                       static_cast<std::uint32_t>(p[2]));
}

} // namespace mrpic::dist
