#pragma once

// CheckpointPolicy: when to write a checkpoint during a long campaign run.
// Two families:
//   - Periodic: every `interval_steps` steps (deterministic, what the
//     bit-identity recovery tests use).
//   - Young / Daly: the optimal-interval results for a machine with mean
//     time between failures M and checkpoint cost C. Young's first-order
//     optimum is T = sqrt(2 C M); Daly's refinement subtracts the cost of
//     the checkpoint itself, T = sqrt(2 C M) - C (clamped to > 0). The
//     policy accumulates measured step seconds and fires when the work
//     since the last checkpoint exceeds the current optimum; the measured
//     checkpoint cost is folded back in with exponential smoothing, so the
//     interval adapts as the state (and thus C) grows.
//
// The policy is pure arithmetic with no dependency on core/, which lets
// core::Simulation own one directly (set_checkpoint_policy).

#include <cstdint>

namespace mrpic::resil {

enum class CheckpointMode { Periodic, Young, Daly };

const char* to_string(CheckpointMode m);

struct CheckpointPolicyConfig {
  CheckpointMode mode = CheckpointMode::Periodic;
  int interval_steps = 100;       // Periodic
  double mtbf_s = 3600;           // Young/Daly: mean time between failures
  double checkpoint_cost_s = 1.0; // initial estimate of C, refined by measurements
  double cost_smoothing = 0.5;    // EWMA factor for measured costs (1 = newest only)
  double min_interval_s = 1e-6;   // floor for the Young/Daly optimum
};

class CheckpointPolicy {
public:
  explicit CheckpointPolicy(CheckpointPolicyConfig cfg = {});

  const CheckpointPolicyConfig& config() const { return m_cfg; }

  // Current Young/Daly optimal interval in work seconds (from the smoothed
  // checkpoint cost). Meaningful for Periodic too (uses the same formula
  // with mode Young) but unused by its trigger.
  double optimal_interval_s() const;

  // Record one completed step of `step_seconds` work (called once per step).
  void add_step(double step_seconds);

  // True when the work since the last checkpoint warrants a new one, or a
  // checkpoint-now request is pending.
  bool should_checkpoint() const;

  // Out-of-band checkpoint-now request (health watchdog alert actions):
  // latches until the next checkpoint is written, overriding the interval
  // trigger. notify_checkpoint clears it.
  void request_now() { m_now_pending = true; }
  bool now_pending() const { return m_now_pending; }

  // A checkpoint was written at `step` and took `measured_cost_s` (<= 0:
  // keep the current estimate). Resets the interval accumulators and folds
  // the measurement into the smoothed cost.
  void notify_checkpoint(std::int64_t step, double measured_cost_s);

  double checkpoint_cost_s() const { return m_cost_s; }
  std::int64_t steps_since_checkpoint() const { return m_steps_since; }
  double seconds_since_checkpoint() const { return m_seconds_since; }
  std::int64_t last_checkpoint_step() const { return m_last_step; }
  int num_checkpoints() const { return m_num_checkpoints; }

private:
  CheckpointPolicyConfig m_cfg;
  double m_cost_s;
  std::int64_t m_steps_since = 0;
  double m_seconds_since = 0;
  std::int64_t m_last_step = -1;
  int m_num_checkpoints = 0;
  bool m_now_pending = false;
};

// The expected overhead fraction of checkpointing every `interval_s` work
// seconds on a machine with the given MTBF: C/T for the writes plus T/(2M)
// for the expected half-interval of lost work per failure. The curve
// bench_resilience sweeps.
double checkpoint_overhead_fraction(double interval_s, double checkpoint_cost_s,
                                    double mtbf_s);

} // namespace mrpic::resil
