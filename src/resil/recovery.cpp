#include "src/resil/recovery.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace mrpic::resil {

namespace {

double imbalance(const std::vector<double>& loads) {
  if (loads.empty()) { return 1; }
  const double mx = *std::max_element(loads.begin(), loads.end());
  const double mean =
      std::accumulate(loads.begin(), loads.end(), 0.0) / static_cast<double>(loads.size());
  return mean > 0 ? mx / mean : 1.0;
}

} // namespace

RemapResult remap_after_failure(const dist::DistributionMapping& dm,
                                const std::vector<Real>& costs, int dead_rank) {
  const int nranks = dm.nranks();
  assert(nranks >= 2);
  assert(dead_rank >= 0 && dead_rank < nranks);
  assert(costs.empty() || static_cast<int>(costs.size()) == dm.size());

  const auto cost_of = [&](int box) {
    return costs.empty() ? 1.0 : static_cast<double>(costs[box]);
  };

  RemapResult res;
  std::vector<int> ranks(dm.size(), -1);
  std::vector<double> loads(static_cast<std::size_t>(nranks - 1), 0.0);
  std::vector<int> orphans;
  for (int i = 0; i < dm.size(); ++i) {
    const int r = dm.rank(i);
    if (r == dead_rank) {
      orphans.push_back(i);
      continue;
    }
    ranks[i] = r > dead_rank ? r - 1 : r; // compact ids above the dead rank
    loads[ranks[i]] += cost_of(i);
  }
  res.imbalance_before = imbalance(loads);

  // LPT greedy: heaviest orphan first onto the least-loaded survivor.
  std::sort(orphans.begin(), orphans.end(), [&](int a, int b) {
    const double ca = cost_of(a), cb = cost_of(b);
    return ca != cb ? ca > cb : a < b; // cost ties broken by index: deterministic
  });
  for (int box : orphans) {
    const auto it = std::min_element(loads.begin(), loads.end());
    const int r = static_cast<int>(it - loads.begin());
    ranks[box] = r;
    loads[r] += cost_of(box);
  }
  res.boxes_moved = static_cast<int>(orphans.size());
  res.imbalance_after = imbalance(loads);
  res.mapping = dist::DistributionMapping(std::move(ranks), nranks - 1);
  return res;
}

} // namespace mrpic::resil
