#pragma once

// FaultInjector: deterministic, seeded fault plans for the simulated
// cluster. A FaultPlan declares per-rank compute slowdowns (stragglers),
// probabilistic wire faults on the halo messages (drop / delay / corrupt)
// and rank crashes at a given step; the injector implements
// cluster::FaultHooks, so attaching it to a SimCluster (set_faults) makes
// every step_cost() evaluation feel the plan. Every decision is a pure hash
// of (seed, step, message ordinal, retry attempt) — two runs of the same
// plan, and the replay after a rollback, see byte-identical fault sequences.
//
// The injector also *prices* the faults: a dropped message costs an ack
// timeout plus exponential backoff per retry (RetryPolicy), a corrupted one
// is NACKed immediately and costs only the backoff, a delivery to a dead
// peer exhausts the whole retry ladder. The resulting MessageFate carries
// attempts + extra protocol seconds, which SimCluster charges into
// StepCost/RankStepStats so stragglers and retry storms show up in the
// Chrome trace rank lanes and the metrics JSONL.

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "src/amr/multifab.hpp"
#include "src/cluster/fault_hooks.hpp"
#include "src/resil/failure_detector.hpp"

namespace mrpic::resil {

struct FaultPlan {
  std::uint64_t seed = 0;

  // Multiply rank `rank`'s compute time by `factor` for steps in [from, to).
  struct Slowdown {
    int rank = 0;
    double factor = 1.0;
    std::int64_t from_step = 0;
    std::int64_t to_step = std::numeric_limits<std::int64_t>::max();
  };
  std::vector<Slowdown> slowdowns;

  // Wire faults applied independently to every inter-rank message for steps
  // in [from, to). Probabilities are per attempt; drop + corrupt + delay
  // must not exceed 1.
  struct MessageFaults {
    double drop_p = 0;
    double corrupt_p = 0;
    double delay_p = 0;
    double delay_s = 1e-3; // in-flight delay when the delay fault fires
    std::int64_t from_step = 0;
    std::int64_t to_step = std::numeric_limits<std::int64_t>::max();
  };
  MessageFaults message;

  // Rank `rank` dies at the start of step `step` and stays dead until the
  // recovery path retires the crash (FaultInjector::retire_crash).
  struct Crash {
    int rank = 0;
    std::int64_t step = 0;
  };
  std::vector<Crash> crashes;

  // Silent data corruption: poison `nan_cells` valid cells of a field
  // MultiFab with quiet NaNs at step `step` (-1 = never). Which cells is a
  // pure hash of the seed, so the health_smoke test and its replay corrupt
  // the same memory. Applied by FaultInjector::corrupt_field, which the
  // driver calls on a field of its choosing after the field solve.
  struct FieldFaults {
    std::int64_t step = -1;
    int nan_cells = 1;
  };
  FieldFaults field;
};

class FaultInjector final : public cluster::FaultHooks {
public:
  explicit FaultInjector(FaultPlan plan, DetectorConfig detector = {});

  const FaultPlan& plan() const { return m_plan; }
  const DetectorConfig& detector() const { return m_detector.config(); }

  // Select the step whose faults apply (driver-side, once per step).
  void set_step(std::int64_t step) { m_step = step; }
  std::int64_t current_step() const { return m_step; }

  // First not-yet-retired rank whose crash step == `step` (-1 = none):
  // the recovery driver polls this to know a crash fires this step.
  int crash_due(std::int64_t step) const;
  // First rank dead as of the current step (-1 = none).
  int first_dead_rank() const;
  // Recovery completed: the crash no longer reports the rank dead (the
  // shrunken cluster renumbers ranks, so stale entries must not re-fire).
  void retire_crash(int rank);

  // Silent-data-corruption injection: when the current step matches
  // plan.field.step, write quiet NaNs into plan.field.nan_cells
  // deterministically chosen valid cells of `mf`. Returns the number of
  // cells corrupted (0 when the step does not match or mf is empty).
  template <int DIM>
  int corrupt_field(mrpic::MultiFab<DIM>& mf) const {
    if (m_step != m_plan.field.step || mf.num_fabs() == 0) { return 0; }
    int corrupted = 0;
    for (int k = 0; k < m_plan.field.nan_cells; ++k) {
      const int fi = static_cast<int>(u01(m_step, k, 0, 0xF1E1Du) * mf.num_fabs());
      const auto& vb = mf.valid_box(std::min(fi, mf.num_fabs() - 1));
      if (vb.empty()) { continue; }
      const int m = std::min(fi, mf.num_fabs() - 1);
      mrpic::IntVect<DIM> p;
      const auto sz = vb.size();
      for (int d = 0; d < DIM; ++d) {
        const auto off = static_cast<std::int64_t>(u01(m_step, k, d + 1, 0xF1E1Du) * sz[d]);
        p[d] = vb.lo()[d] + static_cast<int>(std::min<std::int64_t>(off, sz[d] - 1));
      }
      const int c =
          static_cast<int>(u01(m_step, k, DIM + 1, 0xF1E1Du) * mf.num_comp()) %
          mf.num_comp();
      auto a = mf.array(m);
      if constexpr (DIM == 2) {
        a(p[0], p[1], 0, c) = std::numeric_limits<Real>::quiet_NaN();
      } else {
        a(p[0], p[1], p[2], c) = std::numeric_limits<Real>::quiet_NaN();
      }
      ++corrupted;
    }
    return corrupted;
  }

  // --- cluster::FaultHooks ------------------------------------------------
  bool rank_alive(int rank) const override;
  double compute_multiplier(int rank) const override;
  cluster::MessageFate message_fate(int src, int dst, std::int64_t bytes,
                                    int ordinal) const override;
  double detection_time_s() const override { return m_detector.detection_time_s(); }

private:
  // Uniform [0,1) from the plan seed and the decision coordinates.
  double u01(std::int64_t step, int ordinal, int attempt, std::uint64_t salt) const;

  FaultPlan m_plan;
  FailureDetector m_detector;
  std::int64_t m_step = 0;
  std::vector<bool> m_retired; // parallel to m_plan.crashes
};

} // namespace mrpic::resil
