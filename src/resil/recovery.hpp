#pragma once

// Elastic recovery after a rank crash: the cluster shrinks by one and the
// dead rank's boxes are re-mapped onto the survivors. Survivor assignments
// are preserved (their data is already resident; moving it would add
// restore traffic), with rank ids above the dead rank compacted down by
// one; the orphaned boxes are then distributed LPT-style (heaviest first
// onto the least-loaded survivor) — the same greedy core as the knapsack
// balancer, reused here because recovery is just load redistribution under
// a shrunken rank set (Beck et al.'s observation in PAPERS.md).

#include <vector>

#include "src/amr/config.hpp"
#include "src/dist/distribution_mapping.hpp"

namespace mrpic::resil {

struct RemapResult {
  dist::DistributionMapping mapping; // over nranks - 1 ranks
  int boxes_moved = 0;               // orphans re-homed
  double imbalance_before = 1;       // max/mean cost, dead rank excluded...
  double imbalance_after = 1;        // ...vs after re-homing the orphans
};

// Shrink `dm` (over nranks ranks) by removing `dead_rank`: survivors keep
// their boxes with compacted ids, the dead rank's boxes are re-homed onto
// the least-loaded survivors by descending `costs` (one entry per box; an
// empty vector weights every box equally). Requires dm.nranks() >= 2.
RemapResult remap_after_failure(const dist::DistributionMapping& dm,
                                const std::vector<Real>& costs, int dead_rank);

} // namespace mrpic::resil
