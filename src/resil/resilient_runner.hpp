#pragma once

// ResilientRunner: drives a Simulation to a target step count under a
// seeded FaultPlan, surviving rank crashes the way a production campaign
// does — checkpoint, detect, shrink, roll back, replay:
//
//   1. The run checkpoints via the CheckpointPolicy (an unconditional
//      baseline checkpoint is written before step 0 so rollback always has
//      a target). A checkpoint cannot commit on a step whose crash fired —
//      the write "fails" and the policy retries after recovery.
//   2. On the crash step the attached FaultInjector makes the simulated
//      cluster feel the dead rank (zero compute, exhausted retry ladders,
//      heartbeat detection stall in StepCost), then the runner performs
//      recovery: restore the last checkpoint *into the same Simulation
//      object* (observability — profiler, metrics, rank recorder — keeps
//      accumulating across the rollback), retire the crash, shrink the
//      cluster by one rank (Simulation::remove_rank re-homes the dead
//      rank's boxes onto survivors) and replay the lost steps.
//   3. Every phase emits FaultEvents ("crash", "detect", "rollback",
//      "remap", "replay") into the rank recorder — visible as instant
//      events on the Chrome-trace rank lanes — and resil_* counters into
//      the metrics JSONL.
//
// Because checkpoint restore is bit-exact and the PIC step deterministic,
// a recovered run finishes bit-identical to an uninterrupted one (asserted
// by tests/resil/test_resilient_runner.cpp, the resil_smoke ctest).
//
// Limitation: a rollback may not cross an MR-patch lifecycle boundary (a
// patch auto-removed between the checkpoint and the crash is not re-built
// by the in-place restore); keep crashes away from patch removal or
// checkpoint after it.

#include <functional>
#include <memory>
#include <string>

#include "src/core/simulation.hpp"
#include "src/resil/fault_injector.hpp"

namespace mrpic::resil {

template <int DIM>
class ResilientRunner {
public:
  using SimPtr = std::unique_ptr<core::Simulation<DIM>>;
  // Builds the fully configured simulation (init() called). Invoked once.
  using Factory = std::function<SimPtr()>;

  struct Config {
    int total_steps = 0;
    std::string checkpoint_path = "resil_ckpt.bin";
    CheckpointPolicyConfig policy{};
    FaultPlan plan{};
    DetectorConfig detector{};
  };

  struct Report {
    bool completed = false;      // reached total_steps (false: restore failed)
    int steps_run = 0;           // step() invocations, replayed steps included
    int crashes = 0;
    int recoveries = 0;
    std::int64_t replayed_steps = 0; // lost work re-run from checkpoints
    double detection_s = 0;      // summed modeled crash-detection latency
    double restore_wall_s = 0;   // wall seconds reading checkpoints back
    int checkpoints_written = 0;
    int final_nranks = 0;
  };

  ResilientRunner(Factory factory, Config cfg)
      : m_factory(std::move(factory)), m_cfg(std::move(cfg)),
        m_injector(m_cfg.plan, m_cfg.detector) {}

  Report run();

  // Valid once run() has been called.
  core::Simulation<DIM>& sim() { return *m_sim; }
  const core::Simulation<DIM>& sim() const { return *m_sim; }
  const FaultInjector& injector() const { return m_injector; }

private:
  Factory m_factory;
  Config m_cfg;
  FaultInjector m_injector;
  SimPtr m_sim;
};

extern template class ResilientRunner<2>;
extern template class ResilientRunner<3>;

} // namespace mrpic::resil
