#include "src/resil/resilient_runner.hpp"

#include <cassert>
#include <chrono>

#include "src/io/checkpoint.hpp"

namespace mrpic::resil {

template <int DIM>
typename ResilientRunner<DIM>::Report ResilientRunner<DIM>::run() {
  Report rep;
  m_sim = m_factory();
  assert(m_sim && "ResilientRunner factory returned null");
  auto& sim = *m_sim;

  // Crashes are felt through the simulated cluster; make sure one exists.
  if (!sim.cluster_obs_enabled()) { sim.enable_cluster_obs(); }
  sim.sim_cluster()->set_faults(&m_injector);

  // The policy's writer refuses to commit while a crash is in flight: a
  // checkpoint cannot complete on the step that killed a rank (the policy
  // keeps its accruals and retries after recovery).
  bool crash_in_flight = false;
  sim.set_checkpoint_policy(
      CheckpointPolicy(m_cfg.policy),
      [this, &rep, &crash_in_flight](core::Simulation<DIM>& s) {
        if (crash_in_flight) { return false; }
        const bool ok = io::write_checkpoint(m_cfg.checkpoint_path, s);
        if (ok) { ++rep.checkpoints_written; }
        return ok;
      });

  // Baseline checkpoint before step 0 so rollback always has a target.
  if (!io::write_checkpoint(m_cfg.checkpoint_path, sim)) { return rep; }
  ++rep.checkpoints_written;

  while (sim.step_count() < m_cfg.total_steps) {
    const std::int64_t step = sim.step_count();
    m_injector.set_step(step);
    const int dead = m_injector.crash_due(step);
    crash_in_flight = dead >= 0;

    // The step runs either way: on a crash step the cluster model charges
    // the dead rank (zero compute, exhausted retries, detection stall) and
    // the step's physics is discarded by the rollback below.
    sim.step();
    ++rep.steps_run;
    if (dead < 0) { continue; }

    // --- recovery ---------------------------------------------------------
    ++rep.crashes;
    const int nranks = sim.config().nranks;
    const double detect_s = m_injector.detection_time_s();
    rep.detection_s += detect_s;
    auto& rec = sim.rank_recorder();
    rec.add_fault_event({step, "crash", dead,
                         0.0, "rank " + std::to_string(dead) + " of " +
                                  std::to_string(nranks) + " died"});
    rec.add_fault_event({step, "detect", dead, detect_s, "heartbeat timeout"});
    // Recovery happens between step brackets, so per-step counter deltas
    // would read 0 in the JSONL; mirror the running totals into gauges,
    // which report their current value in every subsequent record.
    sim.metrics().counter("resil_crashes").inc();
    sim.metrics().gauge("resil_crashes_total").set(rep.crashes);
    sim.metrics().gauge("resil_detection_s").set(detect_s);

    // Roll back: restore the last checkpoint into the same Simulation
    // (observability history survives the rollback).
    const auto t0 = std::chrono::steady_clock::now();
    if (!io::read_checkpoint(m_cfg.checkpoint_path, sim)) { return rep; }
    const double restore_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    rep.restore_wall_s += restore_s;
    const std::int64_t lost = step + 1 - sim.step_count();
    rep.replayed_steps += lost;
    rec.set_step(sim.step_count());
    rec.add_fault_event({sim.step_count(), "rollback", dead, restore_s,
                         "restored step " + std::to_string(sim.step_count())});

    // Shrink: retire the crash first so the renumbered survivors are not
    // re-matched against the stale crash entry, then re-home the dead
    // rank's boxes.
    m_injector.retire_crash(dead);
    crash_in_flight = false;
    sim.remove_rank(dead);
    rec.add_fault_event({sim.step_count(), "remap", dead, 0.0,
                         std::to_string(sim.config().nranks) + " survivor ranks"});
    rec.add_fault_event({sim.step_count(), "replay", -1, 0.0,
                         "replaying " + std::to_string(lost) + " steps"});
    ++rep.recoveries;
    sim.metrics().counter("resil_recoveries").inc();
    sim.metrics().counter("resil_replayed_steps").add(lost);
    sim.metrics().gauge("resil_recoveries_total").set(rep.recoveries);
    sim.metrics().gauge("resil_replayed_steps_total").set(rep.replayed_steps);
    sim.metrics().gauge("resil_restore_s").set(restore_s);
  }

  rep.completed = true;
  rep.final_nranks = sim.config().nranks;
  return rep;
}

template class ResilientRunner<2>;
template class ResilientRunner<3>;

} // namespace mrpic::resil
