#include "src/resil/failure_detector.hpp"

#include <algorithm>
#include <cmath>

namespace mrpic::resil {

double RetryPolicy::backoff_s(int attempt) const {
  const double b = backoff_base_s * std::pow(backoff_factor, attempt);
  return std::min(b, backoff_max_s);
}

double RetryPolicy::give_up_time_s() const {
  double t = timeout_s; // first send times out
  for (int k = 0; k < max_retries; ++k) { t += backoff_s(k) + timeout_s; }
  return t;
}

} // namespace mrpic::resil
