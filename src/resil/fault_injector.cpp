#include "src/resil/fault_injector.hpp"

namespace mrpic::resil {

namespace {

// splitmix64 finalizer: the standard avalanche mix for hash-based RNG.
std::uint64_t mix(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

} // namespace

FaultInjector::FaultInjector(FaultPlan plan, DetectorConfig detector)
    : m_plan(std::move(plan)),
      m_detector(detector),
      m_retired(m_plan.crashes.size(), false) {}

double FaultInjector::u01(std::int64_t step, int ordinal, int attempt,
                          std::uint64_t salt) const {
  std::uint64_t h = mix(m_plan.seed ^ salt);
  h = mix(h ^ static_cast<std::uint64_t>(step));
  h = mix(h ^ static_cast<std::uint64_t>(ordinal));
  h = mix(h ^ static_cast<std::uint64_t>(attempt));
  // 53-bit mantissa -> uniform double in [0, 1).
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

int FaultInjector::crash_due(std::int64_t step) const {
  for (std::size_t i = 0; i < m_plan.crashes.size(); ++i) {
    if (!m_retired[i] && m_plan.crashes[i].step == step) { return m_plan.crashes[i].rank; }
  }
  return -1;
}

int FaultInjector::first_dead_rank() const {
  for (std::size_t i = 0; i < m_plan.crashes.size(); ++i) {
    if (!m_retired[i] && m_step >= m_plan.crashes[i].step) { return m_plan.crashes[i].rank; }
  }
  return -1;
}

void FaultInjector::retire_crash(int rank) {
  for (std::size_t i = 0; i < m_plan.crashes.size(); ++i) {
    if (m_plan.crashes[i].rank == rank) { m_retired[i] = true; }
  }
}

bool FaultInjector::rank_alive(int rank) const {
  for (std::size_t i = 0; i < m_plan.crashes.size(); ++i) {
    if (!m_retired[i] && m_plan.crashes[i].rank == rank &&
        m_step >= m_plan.crashes[i].step) {
      return false;
    }
  }
  return true;
}

double FaultInjector::compute_multiplier(int rank) const {
  double f = 1.0;
  for (const auto& s : m_plan.slowdowns) {
    if (s.rank == rank && m_step >= s.from_step && m_step < s.to_step) { f *= s.factor; }
  }
  return f;
}

cluster::MessageFate FaultInjector::message_fate(int src, int dst,
                                                 std::int64_t /*bytes*/,
                                                 int ordinal) const {
  const auto& retry = m_detector.config().retry;
  cluster::MessageFate fate;

  // A dead peer never acks: the sender exhausts the full retry ladder.
  if (!rank_alive(src) || !rank_alive(dst)) {
    fate.delivered = false;
    fate.attempts = 1 + retry.max_retries;
    fate.extra_s = retry.give_up_time_s();
    return fate;
  }

  const auto& mf = m_plan.message;
  if (m_step < mf.from_step || m_step >= mf.to_step) { return fate; }

  for (int attempt = 0;; ++attempt) {
    const double r = u01(m_step, ordinal, attempt, 0x6d7367ULL /* "msg" */);
    if (r < mf.drop_p) {
      // Lost on the wire: wait out the ack timeout, back off, retransmit.
      if (attempt == retry.max_retries) {
        fate.delivered = false;
        fate.extra_s += retry.timeout_s;
        break;
      }
      fate.extra_s += retry.timeout_s + retry.backoff_s(attempt);
      ++fate.attempts;
    } else if (r < mf.drop_p + mf.corrupt_p) {
      // Arrived but failed the payload checksum: immediate NACK, so only
      // the backoff (no timeout wait) before the retransmit.
      fate.corrupted = true;
      if (attempt == retry.max_retries) {
        fate.delivered = false;
        break;
      }
      fate.extra_s += retry.backoff_s(attempt);
      ++fate.attempts;
    } else if (r < mf.drop_p + mf.corrupt_p + mf.delay_p) {
      fate.delayed = true;
      fate.extra_s += mf.delay_s;
      break;
    } else {
      break; // clean delivery
    }
  }
  return fate;
}

} // namespace mrpic::resil
