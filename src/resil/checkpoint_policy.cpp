#include "src/resil/checkpoint_policy.hpp"

#include <algorithm>
#include <cmath>

namespace mrpic::resil {

const char* to_string(CheckpointMode m) {
  switch (m) {
    case CheckpointMode::Periodic: return "periodic";
    case CheckpointMode::Young: return "young";
    case CheckpointMode::Daly: return "daly";
  }
  return "?";
}

CheckpointPolicy::CheckpointPolicy(CheckpointPolicyConfig cfg)
    : m_cfg(cfg), m_cost_s(cfg.checkpoint_cost_s) {}

double CheckpointPolicy::optimal_interval_s() const {
  const double young = std::sqrt(2.0 * m_cost_s * m_cfg.mtbf_s);
  const double t = m_cfg.mode == CheckpointMode::Daly ? young - m_cost_s : young;
  return std::max(t, m_cfg.min_interval_s);
}

void CheckpointPolicy::add_step(double step_seconds) {
  ++m_steps_since;
  m_seconds_since += std::max(step_seconds, 0.0);
}

bool CheckpointPolicy::should_checkpoint() const {
  if (m_now_pending) { return true; }
  if (m_cfg.mode == CheckpointMode::Periodic) {
    return m_steps_since >= m_cfg.interval_steps;
  }
  return m_seconds_since >= optimal_interval_s();
}

void CheckpointPolicy::notify_checkpoint(std::int64_t step, double measured_cost_s) {
  if (measured_cost_s > 0) {
    const double a = std::clamp(m_cfg.cost_smoothing, 0.0, 1.0);
    m_cost_s = a * measured_cost_s + (1 - a) * m_cost_s;
  }
  m_steps_since = 0;
  m_seconds_since = 0;
  m_last_step = step;
  ++m_num_checkpoints;
  m_now_pending = false;
}

double checkpoint_overhead_fraction(double interval_s, double checkpoint_cost_s,
                                    double mtbf_s) {
  if (interval_s <= 0 || mtbf_s <= 0) { return 0; }
  return checkpoint_cost_s / interval_s + interval_s / (2.0 * mtbf_s);
}

} // namespace mrpic::resil
