#pragma once

// Failure detection for the simulated cluster: the retry/timeout/backoff
// protocol that every inter-rank message runs under, and the heartbeat model
// by which survivors declare a silent rank dead. Both are cost models, not
// wire protocols — their output is modeled seconds charged into
// cluster::StepCost (per-message retry cost via resil::FaultInjector, crash
// detection latency via FaultHooks::detection_time_s), which is how the
// paper-scale reality of 152k-node campaigns (where failure is routine)
// becomes visible in traces and metrics.

#include <cstdint>

namespace mrpic::resil {

// Retransmission protocol: a send that is not acknowledged within
// `timeout_s` is retried after an exponentially growing backoff, up to
// `max_retries` retransmissions before the peer is declared unreachable.
struct RetryPolicy {
  int max_retries = 4;          // retransmissions after the first send
  double timeout_s = 200e-6;    // per-attempt ack timeout
  double backoff_base_s = 100e-6;
  double backoff_factor = 2.0;
  double backoff_max_s = 10e-3;

  // Backoff before retransmission `attempt` (0-based), clamped.
  double backoff_s(int attempt) const;

  // Total protocol wait to declare a peer unreachable: every attempt times
  // out, every retry waits its backoff.
  double give_up_time_s() const;
};

struct DetectorConfig {
  double heartbeat_interval_s = 1e-3; // gossip/ping cadence between ranks
  int missed_heartbeats = 3;          // consecutive misses before suspicion
  RetryPolicy retry{};
};

// Heartbeat-based failure detector: a rank is declared dead after
// `missed_heartbeats` silent intervals plus one ack timeout (the probe that
// confirms the suspicion).
class FailureDetector {
public:
  explicit FailureDetector(DetectorConfig cfg = {}) : m_cfg(cfg) {}

  const DetectorConfig& config() const { return m_cfg; }

  // Modeled latency from the crash instant to the dead declaration.
  double detection_time_s() const {
    return m_cfg.heartbeat_interval_s * m_cfg.missed_heartbeats + m_cfg.retry.timeout_s;
  }

private:
  DetectorConfig m_cfg;
};

} // namespace mrpic::resil
