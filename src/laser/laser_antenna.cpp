#include "src/laser/laser_antenna.hpp"

#include "src/amr/parallel_for.hpp"
#include "src/fields/yee.hpp"

namespace mrpic::laser {

using namespace mrpic::constants;

template <int DIM>
Real LaserAntenna<DIM>::field_at(Real ty, Real tz, Real t) const {
  const Real k = 2 * pi / m_cfg.wavelength;
  const Real w0 = m_cfg.waist;
  const Real zf = m_cfg.focal_distance;
  const Real zR = pi * w0 * w0 / m_cfg.wavelength; // Rayleigh length

  // Beam width and curvature at the antenna plane (distance zf from focus).
  Real wa = w0;
  Real curv = 0; // k/(2R)
  if (zf != 0) {
    wa = w0 * std::sqrt(1 + (zf / zR) * (zf / zR));
    const Real R = zf * (1 + (zR / zf) * (zR / zf));
    curv = k / (2 * R);
  }

  const Real r2 = ty * ty + tz * tz;
  // Slab (2D) beams focus like 1/sqrt(w); full 3D beams like 1/w.
  const Real amp_geo = DIM == 2 ? std::sqrt(w0 / wa) : (w0 / wa);
  const Real env_t = std::exp(-((t - m_cfg.t_peak) / m_cfg.duration) *
                              ((t - m_cfg.t_peak) / m_cfg.duration));
  const Real env_r = std::exp(-r2 / (wa * wa));
  const Real phase = m_cfg.omega() * (t - m_cfg.t_peak) + curv * r2 +
                     k * std::sin(m_cfg.tilt) * ty;
  return m_cfg.peak_field() * amp_geo * env_t * env_r * std::sin(phase);
}

template <int DIM>
void LaserAntenna<DIM>::deposit_current(fields::FieldSet<DIM>& f, Real t) const {
  if (!active(t)) { return; }
  auto& geom = f.geom();
  const int i0 = geom.cell_index(m_cfg.x_antenna, 0);
  if (!geom.domain().contains([&] {
        mrpic::IntVect<DIM> p(0);
        p[0] = i0;
        for (int d = 1; d < DIM; ++d) { p[d] = geom.domain().lo(d); }
        return p;
      }())) {
    return;
  }

  const int comp = m_cfg.polarization; // 1 = Jy, 2 = Jz
  const auto stag = fields::j_stag<DIM>(comp);
  const Real dx = geom.cell_size(0);
  const Real amp = -2 * eps0 * c / dx;

  auto& J = f.J();
  for (int m = 0; m < J.num_fabs(); ++m) {
    const auto& vb = J.valid_box(m);
    if (i0 < vb.lo(0) || i0 > vb.hi(0)) { continue; }
    auto j4 = J.array(m);
    if constexpr (DIM == 2) {
      for (int j = vb.lo(1); j <= vb.hi(1); ++j) {
        const Real y = geom.node_pos(j, 1) + Real(0.5) * stag[1] * geom.cell_size(1);
        const Real ty = y - m_cfg.center[0];
        j4(i0, j, 0, comp) += amp * field_at(ty, 0, t);
      }
    } else {
      for (int k = vb.lo(2); k <= vb.hi(2); ++k) {
        const Real z = geom.node_pos(k, 2) + Real(0.5) * stag[2] * geom.cell_size(2);
        for (int j = vb.lo(1); j <= vb.hi(1); ++j) {
          const Real y = geom.node_pos(j, 1) + Real(0.5) * stag[1] * geom.cell_size(1);
          j4(i0, j, k, comp) +=
              amp * field_at(y - m_cfg.center[0], z - m_cfg.center[1], t);
        }
      }
    }
  }
}

template class LaserAntenna<2>;
template class LaserAntenna<3>;

} // namespace mrpic::laser
