#pragma once

// Laser injection by a current-sheet antenna: an oscillating transverse
// current on a single plane of cells radiates the prescribed pulse in both
// directions (the backward half leaves through the boundary/PML). A surface
// current K [A/m] radiates |E| = K / (2 eps0 c) on each side, which fixes
// the antenna amplitude for a requested peak field E0 (or normalized
// amplitude a0).
//
// The profile is a (transversally) Gaussian beam with a Gaussian temporal
// envelope, optional propagation tilt (for the paper's 45-degree oblique
// incidence on the plasma mirror) and optional focusing curvature.

#include <array>
#include <cmath>

#include "src/amr/config.hpp"
#include "src/fields/field_set.hpp"

namespace mrpic::laser {

struct LaserConfig {
  Real wavelength = 0.8e-6;  // [m]
  Real a0 = 1.0;             // normalized vector potential at focus
  Real waist = 5e-6;         // focal waist w0 [m]
  Real duration = 20e-15;    // Gaussian field duration tau [s]: exp(-(t/tau)^2)
  Real t_peak = 40e-15;      // time of envelope peak at the antenna [s]
  Real x_antenna = 0;        // physical x of the emission plane [m]
  Real focal_distance = 0;   // distance from antenna to focus along x [m]
  std::array<Real, 2> center{}; // transverse center (y in 2D; y,z in 3D) [m]
  Real tilt = 0;             // propagation angle in the x-y plane [rad]
  int polarization = 2;      // field component driven: 1 = Ey, 2 = Ez

  // Peak electric field E0 [V/m] from a0: a0 = e E0 / (me omega c).
  Real peak_field() const {
    using namespace mrpic::constants;
    const Real omega = 2 * pi * c / wavelength;
    return a0 * m_e * omega * c / q_e;
  }
  Real omega() const {
    using namespace mrpic::constants;
    return 2 * pi * c / wavelength;
  }
};

template <int DIM>
class LaserAntenna {
public:
  explicit LaserAntenna(LaserConfig cfg) : m_cfg(cfg) {}

  const LaserConfig& config() const { return m_cfg; }

  // Transverse field profile (amplitude factor and phase) at transverse
  // offsets (ty, tz) and time t, evaluated at the antenna plane.
  Real field_at(Real ty, Real tz, Real t) const;

  // Add the antenna current for time t into f.J() (call once per step
  // before the E update; the antenna occupies one cell-plane in x).
  void deposit_current(fields::FieldSet<DIM>& f, Real t) const;

  // True while the envelope still carries non-negligible energy.
  bool active(Real t) const {
    return std::abs(t - m_cfg.t_peak) < 5 * m_cfg.duration;
  }

private:
  LaserConfig m_cfg;
};

extern template class LaserAntenna<2>;
extern template class LaserAntenna<3>;

} // namespace mrpic::laser
