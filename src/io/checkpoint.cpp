#include "src/io/checkpoint.hpp"

#include <cstring>
#include <fstream>
#include <sstream>
#include <string_view>

#include "src/obs/memory.hpp"

namespace mrpic::io {

namespace {

// --- primitive serialization -------------------------------------------

template <typename T>
void put(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool get(std::istream& is, T& v) {
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  return static_cast<bool>(is);
}

void put_vec(std::ostream& os, const std::vector<Real>& v) {
  put(os, static_cast<std::uint64_t>(v.size()));
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(Real)));
}

bool get_vec(std::istream& is, std::vector<Real>& v) {
  std::uint64_t n = 0;
  if (!get(is, n)) { return false; }
  v.resize(n);
  is.read(reinterpret_cast<char*>(v.data()), static_cast<std::streamsize>(n * sizeof(Real)));
  return static_cast<bool>(is);
}

// --- composite sections ---------------------------------------------------

template <int DIM>
void put_multifab(std::ostream& os, const mrpic::MultiFab<DIM>& mf) {
  put(os, static_cast<std::int32_t>(mf.num_fabs()));
  for (int i = 0; i < mf.num_fabs(); ++i) {
    const auto& f = mf.fab(i);
    put(os, static_cast<std::uint64_t>(f.size()));
    os.write(reinterpret_cast<const char*>(f.data()),
             static_cast<std::streamsize>(f.size() * sizeof(Real)));
  }
}

template <int DIM>
bool get_multifab(std::istream& is, mrpic::MultiFab<DIM>& mf) {
  std::int32_t nfabs = 0;
  if (!get(is, nfabs) || nfabs != mf.num_fabs()) { return false; }
  for (int i = 0; i < mf.num_fabs(); ++i) {
    auto& f = mf.fab(i);
    std::uint64_t n = 0;
    if (!get(is, n) || n != f.size()) { return false; }
    is.read(reinterpret_cast<char*>(f.data()),
            static_cast<std::streamsize>(n * sizeof(Real)));
    if (!is) { return false; }
  }
  return true;
}

template <int DIM>
void put_fieldset(std::ostream& os, fields::FieldSet<DIM>& f) {
  // Physical anchor (moving window) + field data.
  for (int d = 0; d < DIM; ++d) { put(os, f.geom().prob_lo()[d]); }
  put_multifab(os, f.E());
  put_multifab(os, f.B());
  put_multifab(os, f.J());
}

template <int DIM>
bool get_fieldset(std::istream& is, fields::FieldSet<DIM>& f) {
  mrpic::RealVect<DIM> lo;
  for (int d = 0; d < DIM; ++d) {
    if (!get(is, lo[d])) { return false; }
  }
  f.geom().set_anchor(lo);
  return get_multifab(is, f.E()) && get_multifab(is, f.B()) && get_multifab(is, f.J());
}

template <int DIM>
void put_particles(std::ostream& os, const particles::ParticleContainer<DIM>& pc) {
  put(os, static_cast<std::int32_t>(pc.num_tiles()));
  for (int t = 0; t < pc.num_tiles(); ++t) {
    const auto& tile = pc.tile(t);
    for (int d = 0; d < DIM; ++d) { put_vec(os, tile.x[d]); }
    for (int cc = 0; cc < 3; ++cc) { put_vec(os, tile.u[cc]); }
    put_vec(os, tile.w);
  }
}

template <int DIM>
bool get_particles(std::istream& is, particles::ParticleContainer<DIM>& pc) {
  std::int32_t ntiles = 0;
  if (!get(is, ntiles) || ntiles != pc.num_tiles()) { return false; }
  for (int t = 0; t < pc.num_tiles(); ++t) {
    auto& tile = pc.tile(t);
    for (int d = 0; d < DIM; ++d) {
      if (!get_vec(is, tile.x[d])) { return false; }
    }
    for (int cc = 0; cc < 3; ++cc) {
      if (!get_vec(is, tile.u[cc])) { return false; }
    }
    if (!get_vec(is, tile.w)) { return false; }
  }
  return true;
}

// --- payload (everything between the magic and the v2 checksum) ----------

template <int DIM>
void put_payload(std::ostream& os, core::Simulation<DIM>& sim) {
  put(os, static_cast<std::int32_t>(DIM));
  put(os, sim.time());
  put(os, static_cast<std::int32_t>(sim.step_count()));
  put(os, sim.window().accumulated());

  put_fieldset(os, sim.fields());
  const bool has_pml = sim.domain_pml() != nullptr;
  put(os, static_cast<std::int32_t>(has_pml ? 1 : 0));
  if (has_pml) { put_multifab(os, sim.domain_pml()->split_fab()); }

  const auto* patch = sim.patch();
  put(os, static_cast<std::int32_t>(patch != nullptr ? (patch->active() ? 2 : 1) : 0));
  if (patch != nullptr && patch->active()) {
    auto* p = sim.patch();
    put_fieldset(os, p->fine());
    put_fieldset(os, p->coarse());
    put_multifab(os, p->fine_pml().split_fab());
    put_multifab(os, p->coarse_pml().split_fab());
  }

  put(os, static_cast<std::int32_t>(sim.num_species()));
  for (int s = 0; s < sim.num_species(); ++s) {
    put_particles(os, sim.species_level0(s));
    put_particles(os, sim.species_patch(s));
  }
}

template <int DIM>
bool get_payload(std::istream& is, core::Simulation<DIM>& sim) {
  std::int32_t dim = 0;
  Real time = 0, window_acc = 0;
  std::int32_t step = 0;
  if (!get(is, dim) || dim != DIM) { return false; }
  if (!get(is, time) || !get(is, step) || !get(is, window_acc)) { return false; }

  if (!get_fieldset(is, sim.fields())) { return false; }
  std::int32_t has_pml = 0;
  if (!get(is, has_pml)) { return false; }
  if (has_pml != 0) {
    if (sim.domain_pml() == nullptr) { return false; }
    if (!get_multifab(is, sim.domain_pml()->split_fab())) { return false; }
  }

  std::int32_t patch_state = 0;
  if (!get(is, patch_state)) { return false; }
  if ((patch_state != 0) != (sim.patch() != nullptr)) { return false; }
  if (patch_state == 1 && sim.patch()->active()) { sim.patch()->remove(); }
  if (patch_state == 2) {
    auto* p = sim.patch();
    if (!get_fieldset(is, p->fine()) || !get_fieldset(is, p->coarse())) { return false; }
    if (!get_multifab(is, p->fine_pml().split_fab())) { return false; }
    if (!get_multifab(is, p->coarse_pml().split_fab())) { return false; }
  }

  std::int32_t nspecies = 0;
  if (!get(is, nspecies) || nspecies != sim.num_species()) { return false; }
  for (int s = 0; s < nspecies; ++s) {
    if (!get_particles(is, sim.species_level0(s))) { return false; }
    if (!get_particles(is, sim.species_patch(s))) { return false; }
  }

  sim.set_time_and_step(time, step);
  sim.window().set_accumulated(window_acc);
  // The auxiliary gather fields are derived state: rebuild them from the
  // restored parent/patch solution so the next gather is bit-identical.
  if (patch_state == 2) { sim.patch()->build_aux(sim.fields()); }
  return true;
}

} // namespace

std::uint64_t fnv1a64(const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

template <int DIM>
bool write_checkpoint(const std::string& path, core::Simulation<DIM>& sim) {
  // Serialize the payload to memory first so the checksum covers exactly
  // the bytes written between the magic and the trailer.
  std::ostringstream payload(std::ios::binary);
  put_payload(payload, sim);
  const std::string bytes = payload.str();

  // The staging buffer is a real (transient) memory cost at checkpoint time
  // — charge it so the ledger's "checkpoint" high-water mark records the
  // extra footprint a write adds on top of the resident state.
  obs::MemCharge mem("checkpoint");
  mem.update(static_cast<std::int64_t>(bytes.size()));

  std::ofstream os(path, std::ios::binary);
  if (!os) { return false; }
  put(os, checkpoint_magic_v2);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  put(os, fnv1a64(bytes.data(), bytes.size()));
  return static_cast<bool>(os);
}

template <int DIM>
bool read_checkpoint(const std::string& path, core::Simulation<DIM>& sim) {
  std::ifstream is(path, std::ios::binary);
  if (!is) { return false; }
  std::ostringstream slurp(std::ios::binary);
  slurp << is.rdbuf();
  const std::string file = slurp.str();
  if (file.size() < sizeof(std::uint64_t)) { return false; }

  std::uint64_t magic = 0;
  std::memcpy(&magic, file.data(), sizeof(magic));

  std::string_view payload;
  if (magic == checkpoint_magic_v2) {
    // v2: verify the trailing checksum over the payload BEFORE any
    // simulation state is touched — a truncated or bit-flipped file must
    // not leave the simulation half-restored.
    if (file.size() < 2 * sizeof(std::uint64_t)) { return false; }
    payload = std::string_view(file).substr(sizeof(std::uint64_t),
                                            file.size() - 2 * sizeof(std::uint64_t));
    std::uint64_t stored = 0;
    std::memcpy(&stored, file.data() + file.size() - sizeof(stored), sizeof(stored));
    if (fnv1a64(payload.data(), payload.size()) != stored) { return false; }
  } else if (magic == checkpoint_magic) {
    // v1: legacy files carry no checksum.
    payload = std::string_view(file).substr(sizeof(std::uint64_t));
  } else {
    return false;
  }

  std::istringstream ps(std::string(payload), std::ios::binary);
  return get_payload(ps, sim);
}

template bool write_checkpoint<2>(const std::string&, core::Simulation<2>&);
template bool write_checkpoint<3>(const std::string&, core::Simulation<3>&);
template bool read_checkpoint<2>(const std::string&, core::Simulation<2>&);
template bool read_checkpoint<3>(const std::string&, core::Simulation<3>&);

} // namespace mrpic::io
