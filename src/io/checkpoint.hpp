#pragma once

// Checkpoint/restart for Simulation: a binary snapshot of the complete
// evolving state — every field MultiFab (including ghosts and PML split
// fields), every particle container on every level, the clock, the
// moving-window anchors and the sub-cell shift accumulator.
//
// Protocol: rebuild the Simulation from the same SimulationConfig (and the
// same add_species/add_laser/enable_mr_patch calls), call init(), then
// read_checkpoint(). A restored run continues bit-identically to the
// original (verified by tests/io/test_checkpoint.cpp), the property that
// makes long campaign runs restartable after machine failures — routine
// practice at the paper's 152k-node scale.
//
// Format: little-endian binary; a magic/version header, then sections. The
// grid structure itself (BoxArray, ncomp, ghosts) is not serialized — it is
// reconstructed from the config, and the reader verifies sizes match.
//
// v2 ("MRPIC_K2", the current writer) appends an FNV-1a 64 checksum of the
// payload after the sections: [magic][payload][checksum]. The reader
// verifies the checksum before touching any simulation state, so truncated
// or bit-flipped files are rejected instead of silently restoring garbage.
// v1 ("MRPIC_K1") files — same payload, no checksum — are still readable.

#include <cstdint>
#include <string>

#include "src/core/simulation.hpp"

namespace mrpic::io {

inline constexpr std::uint64_t checkpoint_magic = 0x4d525049435f4b31ULL;    // "MRPIC_K1"
inline constexpr std::uint64_t checkpoint_magic_v2 = 0x4d525049435f4b32ULL; // "MRPIC_K2"

// FNV-1a 64-bit over a byte range (the checksum guarding v2 checkpoints).
std::uint64_t fnv1a64(const void* data, std::size_t n);

// Write the full state of `sim` to `path`. Returns false on I/O failure.
template <int DIM>
bool write_checkpoint(const std::string& path, core::Simulation<DIM>& sim);

// Restore state written by write_checkpoint into a Simulation built from
// the identical configuration (init() already called). Returns false on
// I/O failure or on a structure mismatch (wrong DIM, fab count or sizes).
template <int DIM>
bool read_checkpoint(const std::string& path, core::Simulation<DIM>& sim);

extern template bool write_checkpoint<2>(const std::string&, core::Simulation<2>&);
extern template bool write_checkpoint<3>(const std::string&, core::Simulation<3>&);
extern template bool read_checkpoint<2>(const std::string&, core::Simulation<2>&);
extern template bool read_checkpoint<3>(const std::string&, core::Simulation<3>&);

} // namespace mrpic::io
