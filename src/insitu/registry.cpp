#include "src/insitu/registry.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <sstream>

#include "src/obs/json.hpp"

namespace mrpic::insitu {

double Record::value(std::string_view key) const {
  for (const auto& [k, v] : values) {
    if (k == key) { return v; }
  }
  return std::numeric_limits<double>::quiet_NaN();
}

Registry::~Registry() { delete static_cast<std::ofstream*>(m_series); }

void Registry::add(std::string name, int interval, Compute fn) {
  m_names.push_back(name);
  m_diags.push_back(Diag{std::move(name), interval, std::move(fn)});
}

bool Registry::any_due(std::int64_t step) const {
  for (const auto& d : m_diags) {
    if (due(step, d.interval)) { return true; }
  }
  return false;
}

bool Registry::open_series(const std::string& path, bool append) {
  delete static_cast<std::ofstream*>(m_series);
  m_series = nullptr;
  m_series_path.clear();
  if (path.empty()) { return true; }
  auto mode = std::ios::out | (append ? std::ios::app : std::ios::trunc);
  auto* os = new std::ofstream(path, mode);
  if (!*os) {
    delete os;
    return false;
  }
  m_series = os;
  m_series_path = path;
  return true;
}

int Registry::collect(std::int64_t step, double time, bool force) {
  int ran = 0;
  for (const auto& d : m_diags) {
    if (!force && !due(step, d.interval)) { continue; }
    Record r;
    r.diag = d.name;
    r.step = step;
    r.time = time;
    d.fn(r);
    ++ran;

    if (m_metrics != nullptr) {
      for (const auto& [key, v] : r.values) {
        m_metrics->gauge("insitu_" + d.name + "_" + key).set(v);
      }
    }
    if (m_series != nullptr) {
      auto* os = static_cast<std::ofstream*>(m_series);
      write_record(r, *os);
      *os << '\n';
      os->flush();
    }
    m_history.push_back(std::move(r));
    ++m_total_records;
    while (m_history_limit > 0 && m_history.size() > m_history_limit) {
      m_history.pop_front();
    }
  }
  return ran;
}

const Record* Registry::last(std::string_view diag) const {
  for (auto it = m_history.rbegin(); it != m_history.rend(); ++it) {
    if (it->diag == diag) { return &*it; }
  }
  return nullptr;
}

// --- series files -----------------------------------------------------------

void Registry::write_record(const Record& r, std::ostream& os) {
  obs::json::Writer w(os);
  w.begin_object()
      .field("diag", r.diag)
      .field("step", r.step)
      .field("time", r.time);
  w.begin_object("values");
  for (const auto& [key, v] : r.values) { w.field(key, v); }
  w.end_object().end_object();
}

Record Registry::parse_record(std::string_view line) {
  const auto doc = obs::json::parse(line);
  Record r;
  if (!doc.is_object()) { throw std::runtime_error("insitu: record is not an object"); }
  if (!doc["diag"].is_string() || !doc["step"].is_number() ||
      !doc["time"].is_number() || !doc["values"].is_object()) {
    throw std::runtime_error("insitu: record missing diag/step/time/values");
  }
  r.diag = doc["diag"].as_string();
  r.step = doc["step"].as_int();
  r.time = doc["time"].as_number();
  for (const auto& [key, v] : doc["values"].as_object()) {
    // json has no NaN; we emit null for non-finite values.
    r.set(key, v.is_number() ? v.as_number()
                             : std::numeric_limits<double>::quiet_NaN());
  }
  return r;
}

std::vector<Record> Registry::read_series_jsonl(const std::string& path) {
  std::ifstream is(path);
  if (!is) { throw std::runtime_error("insitu: cannot open series " + path); }
  std::vector<Record> out;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) { continue; }
    out.push_back(parse_record(line));
  }
  return out;
}

std::vector<Record> Registry::canonicalize(std::vector<Record> records) {
  // Last occurrence per (diag, step) wins — a rollback replays the steps
  // after the restored checkpoint, and the replayed values are the run's
  // actual trajectory.
  std::map<std::pair<std::string, std::int64_t>, std::size_t> keep;
  for (std::size_t i = 0; i < records.size(); ++i) {
    keep[{records[i].diag, records[i].step}] = i;
  }
  std::vector<Record> out;
  out.reserve(keep.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (keep[{records[i].diag, records[i].step}] == i) {
      out.push_back(std::move(records[i]));
    }
  }
  std::stable_sort(out.begin(), out.end(), [](const Record& a, const Record& b) {
    return a.step != b.step ? a.step < b.step : a.diag < b.diag;
  });
  return out;
}

std::vector<std::string> Registry::validate_series(const std::string& path) {
  std::vector<std::string> errors;
  std::ifstream is(path);
  if (!is) {
    errors.push_back("series: cannot open " + path);
    return errors;
  }
  std::vector<Record> records;
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) { continue; }
    try {
      records.push_back(parse_record(line));
    } catch (const std::exception& e) {
      errors.push_back("series line " + std::to_string(lineno) + ": " + e.what());
    }
  }
  for (const auto& r : records) {
    if (r.step < 0) {
      errors.push_back("series: diag '" + r.diag + "' has negative step");
    }
  }
  // After canonicalization each diag's steps must be strictly increasing
  // (duplicates were collapsed; a remaining backwards jump means the file
  // was appended out of order, not replayed).
  std::map<std::string, std::int64_t> last_step;
  for (const auto& r : canonicalize(std::move(records))) {
    auto it = last_step.find(r.diag);
    if (it != last_step.end() && r.step <= it->second) {
      errors.push_back("series: diag '" + r.diag + "' steps not increasing at " +
                       std::to_string(r.step));
    }
    last_step[r.diag] = r.step;
  }
  return errors;
}

} // namespace mrpic::insitu
