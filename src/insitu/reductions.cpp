#include "src/insitu/reductions.hpp"

#include <cmath>

#include "src/fields/yee.hpp"

namespace mrpic::insitu {

using mrpic::constants::c;

namespace {

template <int DIM>
double kinetic_energy_of(const particles::ParticleTile<DIM>& t, std::size_t i,
                         double mass, double* gamma_out) {
  const double u2 = double(t.u[0][i]) * t.u[0][i] + double(t.u[1][i]) * t.u[1][i] +
                    double(t.u[2][i]) * t.u[2][i];
  const double gamma = std::sqrt(1 + u2 / (double(c) * c));
  if (gamma_out != nullptr) { *gamma_out = gamma; }
  return (gamma - 1) * mass * double(c) * c;
}

} // namespace

// --- beam moments ----------------------------------------------------------

template <int DIM>
void BeamMomentsAccumulator<DIM>::add(const particles::ParticleContainer<DIM>& pc) {
  m_mass = pc.species().mass;
  m_charge = pc.species().charge;
  for (int ti = 0; ti < pc.num_tiles(); ++ti) {
    const auto& t = pc.tile(ti);
    for (std::size_t i = 0; i < t.size(); ++i) {
      double gamma = 1;
      const double e = kinetic_energy_of<DIM>(t, i, m_mass, &gamma);
      if (e < m_e_min) { continue; }
      const double w = t.w[i];
      ++m_count;
      m_w += w;
      for (int d = 0; d < DIM; ++d) {
        const double x = t.x[d][i];
        m_sx[d] += w * x;
        m_sxx[d] += w * x * x;
      }
      for (int cu = 0; cu < 3; ++cu) {
        const double u = t.u[cu][i];
        m_su[cu] += w * u;
        m_suu[cu] += w * u * u;
      }
      for (int d = 0; d < DIM; ++d) { m_sxu[d] += w * double(t.x[d][i]) * t.u[d][i]; }
      m_sgamma += w * gamma;
      m_senergy += w * e;
      if (gamma > m_max_gamma) { m_max_gamma = gamma; }
    }
  }
}

template <int DIM>
BeamMoments BeamMomentsAccumulator<DIM>::finalize() const {
  BeamMoments m;
  m.count = m_count;
  m.weight = m_w;
  m.charge_C = m_w * m_charge;
  m.max_gamma = m_max_gamma;
  if (m_w <= 0) { return m; }

  const double inv_w = 1.0 / m_w;
  std::array<double, DIM> var_x{};
  std::array<double, 3> var_u{};
  for (int d = 0; d < DIM; ++d) {
    m.mean_x[d] = m_sx[d] * inv_w;
    // Clamp tiny negative round-off before the sqrt.
    var_x[d] = std::max(0.0, m_sxx[d] * inv_w - m.mean_x[d] * m.mean_x[d]);
    m.rms_x[d] = std::sqrt(var_x[d]);
  }
  for (int cu = 0; cu < 3; ++cu) {
    m.mean_u[cu] = m_su[cu] * inv_w;
    var_u[cu] = std::max(0.0, m_suu[cu] * inv_w - m.mean_u[cu] * m.mean_u[cu]);
    m.rms_u[cu] = std::sqrt(var_u[cu]);
  }

  // Normalized RMS emittance of transverse plane d (propagation along 0):
  // eps_n = sqrt(<dx^2><du^2> - <dx du>^2) / c.
  const auto emitt = [&](int d) {
    const double cov = m_sxu[d] * inv_w - m.mean_x[d] * m.mean_u[d];
    const double det = var_x[d] * var_u[d] - cov * cov;
    return std::sqrt(std::max(0.0, det)) / c;
  };
  m.emit_ny = emitt(1);
  if constexpr (DIM >= 3) { m.emit_nz = emitt(2); }

  m.mean_gamma = m_sgamma * inv_w;
  m.mean_energy_J = m_senergy * inv_w;
  return m;
}

// --- spectrum --------------------------------------------------------------

template <int DIM>
SpectrumSummary summarize_spectrum(
    const std::vector<const particles::ParticleContainer<DIM>*>& pcs, Real e_min,
    Real e_max, int nbins, Real charge_per_count) {
  SpectrumSummary s;
  s.spectrum.e_min = e_min;
  s.spectrum.e_max = e_max;
  s.spectrum.counts.assign(static_cast<std::size_t>(nbins), Real(0));
  for (const auto* pc : pcs) {
    if (pc == nullptr) { continue; }
    const auto part = diag::energy_spectrum<DIM>(*pc, e_min, e_max, nbins);
    for (std::size_t b = 0; b < part.counts.size(); ++b) {
      s.spectrum.counts[b] += part.counts[b];
    }
  }
  for (Real v : s.spectrum.counts) { s.weight_total += v; }
  s.beam = diag::analyze_beam(s.spectrum, charge_per_count);
  return s;
}

// --- laser probe -----------------------------------------------------------

template <int DIM>
LaserSample laser_probe(const fields::FieldSet<DIM>& f, Real wavelength,
                        int polarization_comp) {
  LaserSample out;
  const auto& E = f.E();
  const auto& geom = f.geom();
  double max_abs = 0;
  double sum_i = 0;     // sum E^2 (intensity proxy)
  double sum_ix = 0;    // sum E^2 * x
  for (int fi = 0; fi < E.num_fabs(); ++fi) {
    const auto& fab = E.fab(fi);
    fab.for_each_cell(E.valid_box(fi), [&](const IntVect<DIM>& p) {
      const double v = fab(p, polarization_comp);
      const double a = std::abs(v);
      if (a > max_abs) { max_abs = a; }
      const double x = geom.cell_center(p[0], 0);
      sum_i += v * v;
      sum_ix += v * v * x;
    });
  }
  out.peak_E_V_m = max_abs;
  if (wavelength > 0) {
    using namespace mrpic::constants;
    const double omega = 2 * pi * c / wavelength;
    out.a0 = q_e * max_abs / (m_e * omega * c);
  }
  if (sum_i > 0) { out.centroid_x_m = sum_ix / sum_i; }
  return out;
}

// --- wakefield probe -------------------------------------------------------

template <int DIM>
Real wakefield_amplitude(const fields::FieldSet<DIM>& f, Real x_behind) {
  const auto& E = f.E();
  const auto& geom = f.geom();
  Real best = 0;
  for (int fi = 0; fi < E.num_fabs(); ++fi) {
    const auto& fab = E.fab(fi);
    fab.for_each_cell(E.valid_box(fi), [&](const IntVect<DIM>& p) {
      if (geom.cell_center(p[0], 0) >= x_behind) { return; }
      const Real a = std::abs(fab(p, fields::X));
      if (a > best) { best = a; }
    });
  }
  return best;
}

// --- field energy ----------------------------------------------------------

template <int DIM>
FieldEnergyBreakdown field_energy_breakdown(const fields::FieldSet<DIM>& f) {
  using namespace mrpic::constants;
  FieldEnergyBreakdown b;
  Real dv = 1;
  for (int d = 0; d < DIM; ++d) { dv *= f.geom().cell_size(d); }
  for (int comp = 0; comp < 3; ++comp) {
    b.E_J[comp] = Real(0.5) * eps0 * f.E().sum_sq(comp) * dv;
    b.B_J[comp] = Real(0.5) / mu0 * f.B().sum_sq(comp) * dv;
  }
  return b;
}

// --- instantiations --------------------------------------------------------

template class BeamMomentsAccumulator<2>;
template class BeamMomentsAccumulator<3>;
template SpectrumSummary summarize_spectrum<2>(
    const std::vector<const particles::ParticleContainer<2>*>&, Real, Real, int, Real);
template SpectrumSummary summarize_spectrum<3>(
    const std::vector<const particles::ParticleContainer<3>*>&, Real, Real, int, Real);
template LaserSample laser_probe<2>(const fields::FieldSet<2>&, Real, int);
template LaserSample laser_probe<3>(const fields::FieldSet<3>&, Real, int);
template Real wakefield_amplitude<2>(const fields::FieldSet<2>&, Real);
template Real wakefield_amplitude<3>(const fields::FieldSet<3>&, Real);
template FieldEnergyBreakdown field_energy_breakdown<2>(const fields::FieldSet<2>&);
template FieldEnergyBreakdown field_energy_breakdown<3>(const fields::FieldSet<3>&);

} // namespace mrpic::insitu
