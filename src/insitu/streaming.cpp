#include "src/insitu/streaming.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace mrpic::insitu {

namespace {

// Same FNV-1a 64 as the checkpoint checksum (io/checkpoint.cpp); duplicated
// here so insitu does not pull in core/simulation.hpp through io.
std::uint64_t fnv1a64(const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

template <typename T>
void put(std::string& buf, const T& v) {
  const char* p = reinterpret_cast<const char*>(&v);
  buf.append(p, sizeof(T));
}

// Bounds-checked reads off an in-memory file image; false = ran off the end.
struct Cursor {
  const char* p;
  std::size_t n;
  std::size_t pos = 0;

  template <typename T>
  bool get(T& v) {
    if (pos + sizeof(T) > n) { return false; }
    std::memcpy(&v, p + pos, sizeof(T));
    pos += sizeof(T);
    return true;
  }
  bool get_bytes(void* dst, std::size_t k) {
    if (pos + k > n) { return false; }
    std::memcpy(dst, p + pos, k);
    pos += k;
    return true;
  }
};

std::string encode_frame(const Frame& f) {
  std::string buf;
  buf.reserve(96 + f.name.size() + f.payload_bytes());
  put(buf, stream_magic);
  put(buf, stream_version);
  put(buf, static_cast<std::uint32_t>(f.kind));
  put(buf, static_cast<std::uint32_t>(f.name.size()));
  buf.append(f.name);
  put(buf, f.step);
  put(buf, f.time);
  put(buf, f.nx);
  put(buf, f.ny);
  put(buf, f.x0);
  put(buf, f.x1);
  put(buf, f.y0);
  put(buf, f.y1);
  put(buf, static_cast<std::uint64_t>(f.payload_bytes()));
  if (!f.data.empty()) {
    buf.append(reinterpret_cast<const char*>(f.data.data()), f.payload_bytes());
  }
  put(buf, fnv1a64(buf.data(), buf.size()));
  return buf;
}

const char* kind_name(FrameKind k) {
  return k == FrameKind::PhaseSpace ? "phase_space" : "field_slice";
}

} // namespace

// --- frame producers -------------------------------------------------------

template <int DIM>
Frame downsample_slice(const mrpic::MultiFab<DIM>& mf, const mrpic::Geometry<DIM>& geom,
                       int comp, int factor, std::string name) {
  Frame fr;
  fr.kind = FrameKind::FieldSlice;
  fr.name = std::move(name);
  if (factor < 1) { factor = 1; }

  Box<DIM> bbox;
  for (int i = 0; i < mf.num_fabs(); ++i) { bbox = bounding(bbox, mf.valid_box(i)); }
  if (bbox.empty()) { return fr; }

  const int nxd = bbox.length(0);
  const int nyd = bbox.length(1);
  int kmid = 0;
  if constexpr (DIM >= 3) { kmid = (bbox.lo(2) + bbox.hi(2)) / 2; }

  // Gather the (mid-plane) slice onto one dense grid; the valid boxes tile
  // the level, so every cell is written exactly once.
  std::vector<double> full(static_cast<std::size_t>(nxd) * nyd, 0.0);
  for (int i = 0; i < mf.num_fabs(); ++i) {
    const auto& fab = mf.fab(i);
    fab.for_each_cell(mf.valid_box(i), [&](const IntVect<DIM>& p) {
      if constexpr (DIM >= 3) {
        if (p[2] != kmid) { return; }
      }
      const std::size_t ix = static_cast<std::size_t>(p[0] - bbox.lo(0));
      const std::size_t iy = static_cast<std::size_t>(p[1] - bbox.lo(1));
      full[iy * nxd + ix] = fab(p, comp);
    });
  }

  fr.nx = static_cast<std::uint32_t>((nxd + factor - 1) / factor);
  fr.ny = static_cast<std::uint32_t>((nyd + factor - 1) / factor);
  fr.data.assign(static_cast<std::size_t>(fr.nx) * fr.ny, 0.f);
  for (std::uint32_t by = 0; by < fr.ny; ++by) {
    for (std::uint32_t bx = 0; bx < fr.nx; ++bx) {
      const int ix0 = static_cast<int>(bx) * factor;
      const int iy0 = static_cast<int>(by) * factor;
      const int ix1 = std::min(ix0 + factor, nxd);
      const int iy1 = std::min(iy0 + factor, nyd);
      double s = 0;
      for (int iy = iy0; iy < iy1; ++iy) {
        for (int ix = ix0; ix < ix1; ++ix) { s += full[std::size_t(iy) * nxd + ix]; }
      }
      fr.data[std::size_t(by) * fr.nx + bx] =
          static_cast<float>(s / ((ix1 - ix0) * (iy1 - iy0)));
    }
  }

  fr.x0 = geom.cell_center(bbox.lo(0), 0) - 0.5 * geom.cell_size(0);
  fr.x1 = geom.cell_center(bbox.hi(0), 0) + 0.5 * geom.cell_size(0);
  fr.y0 = geom.cell_center(bbox.lo(1), 1) - 0.5 * geom.cell_size(1);
  fr.y1 = geom.cell_center(bbox.hi(1), 1) + 0.5 * geom.cell_size(1);
  return fr;
}

Frame phase_space_frame(const diag::PhaseSpace& ps, std::string name) {
  const auto& cfg = ps.config();
  Frame fr;
  fr.kind = FrameKind::PhaseSpace;
  fr.name = std::move(name);
  fr.nx = static_cast<std::uint32_t>(cfg.na);
  fr.ny = static_cast<std::uint32_t>(cfg.nb);
  fr.x0 = cfg.a_min;
  fr.x1 = cfg.a_max;
  fr.y0 = cfg.b_min;
  fr.y1 = cfg.b_max;
  fr.data.resize(static_cast<std::size_t>(fr.nx) * fr.ny);
  for (int ib = 0; ib < cfg.nb; ++ib) {
    for (int ia = 0; ia < cfg.na; ++ia) {
      fr.data[std::size_t(ib) * fr.nx + ia] = static_cast<float>(ps.at(ia, ib));
    }
  }
  return fr;
}

// --- writer ----------------------------------------------------------------

StreamWriter::StreamWriter(StreamConfig cfg) : m_cfg(std::move(cfg)) {}

StreamWriter::~StreamWriter() { delete static_cast<std::ofstream*>(m_os); }

std::string StreamWriter::manifest_path() const {
  return m_cfg.basename + ".manifest.json";
}

std::string StreamWriter::file_name(int index) const {
  char num[8];
  std::snprintf(num, sizeof(num), "%03d", index);
  const auto slash = m_cfg.basename.find_last_of('/');
  const std::string stem =
      slash == std::string::npos ? m_cfg.basename : m_cfg.basename.substr(slash + 1);
  return stem + "." + num + ".bin";
}

std::string StreamWriter::file_path(int index) const {
  const auto slash = m_cfg.basename.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? std::string() : m_cfg.basename.substr(0, slash + 1);
  return dir + file_name(index);
}

bool StreamWriter::rotate() {
  delete static_cast<std::ofstream*>(m_os);
  m_os = nullptr;
  m_current = m_next_index++;
  auto* os = new std::ofstream(file_path(m_current), std::ios::binary | std::ios::trunc);
  if (!*os) {
    delete os;
    m_current = -1;
    return false;
  }
  m_os = os;
  m_current_bytes = 0;
  m_files.push_back(FileEntry{file_name(m_current), 0, 0, -1, -1});
  // Prune the oldest files out of the ring (and their manifest entries).
  while (m_cfg.max_files > 0 && static_cast<int>(m_files.size()) > m_cfg.max_files) {
    const std::string doomed = m_files.front().file;
    const auto slash = m_cfg.basename.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? std::string() : m_cfg.basename.substr(0, slash + 1);
    std::remove((dir + doomed).c_str());
    m_files.erase(m_files.begin());
    m_frames.erase(std::remove_if(m_frames.begin(), m_frames.end(),
                                  [&](const FrameEntry& e) { return e.file == doomed; }),
                   m_frames.end());
  }
  return true;
}

bool StreamWriter::write(const Frame& f) {
  const std::string buf = encode_frame(f);
  // Steady "insitu.stream" account: the encode buffer of the frame in
  // flight plus the manifest index held in memory. The high-water mark is
  // the largest frame ever staged plus the index at its biggest.
  m_mem.update(static_cast<std::int64_t>(
      buf.size() + m_frames.capacity() * sizeof(FrameEntry) +
      m_files.capacity() * sizeof(FileEntry)));
  const bool fits = m_current >= 0 && m_current_bytes > 0 &&
                    m_current_bytes + buf.size() <= m_cfg.max_file_bytes;
  if (m_current < 0 || (!fits && m_current_bytes > 0)) {
    if (!rotate()) { return false; }
  }
  auto* os = static_cast<std::ofstream*>(m_os);
  const std::uint64_t offset = m_current_bytes;
  os->write(buf.data(), static_cast<std::streamsize>(buf.size()));
  os->flush();
  if (!*os) { return false; }

  m_current_bytes += buf.size();
  m_bytes_written += static_cast<std::int64_t>(buf.size());
  ++m_frames_written;
  auto& fe = m_files.back();
  ++fe.frames;
  fe.bytes = m_current_bytes;
  if (fe.first_step < 0) { fe.first_step = f.step; }
  fe.last_step = f.step;
  m_frames.push_back(
      FrameEntry{fe.file, offset, f.kind, f.name, f.step, f.time, f.nx, f.ny});
  return write_manifest();
}

bool StreamWriter::write_manifest() const {
  const std::string tmp = manifest_path() + ".tmp";
  {
    std::ofstream os(tmp, std::ios::trunc);
    if (!os) { return false; }
    obs::json::Writer w(os);
    w.begin_object()
        .field("schema", "mrpic.insitu.stream.v1")
        .field("version", static_cast<std::int64_t>(stream_version))
        .field("basename", m_cfg.basename)
        .field("max_file_bytes", static_cast<std::int64_t>(m_cfg.max_file_bytes))
        .field("max_files", m_cfg.max_files)
        .field("total_frames", static_cast<std::int64_t>(m_frames.size()));
    w.begin_array("files");
    for (const auto& fe : m_files) {
      w.begin_object()
          .field("file", fe.file)
          .field("frames", fe.frames)
          .field("bytes", static_cast<std::int64_t>(fe.bytes))
          .field("first_step", fe.first_step)
          .field("last_step", fe.last_step)
          .end_object();
    }
    w.end_array();
    w.begin_array("frames");
    for (const auto& e : m_frames) {
      w.begin_object()
          .field("file", e.file)
          .field("offset", static_cast<std::int64_t>(e.offset))
          .field("kind", kind_name(e.kind))
          .field("name", e.name)
          .field("step", e.step)
          .field("time", e.time)
          .field("nx", static_cast<std::int64_t>(e.nx))
          .field("ny", static_cast<std::int64_t>(e.ny))
          .end_object();
    }
    w.end_array();
    w.end_object();
    os << '\n';
    if (!os) { return false; }
  }
  return std::rename(tmp.c_str(), manifest_path().c_str()) == 0;
}

// --- reader ----------------------------------------------------------------

std::vector<Frame> read_frames(const std::string& path, bool* truncated_tail) {
  if (truncated_tail != nullptr) { *truncated_tail = false; }
  std::ifstream is(path, std::ios::binary);
  if (!is) { throw std::runtime_error("insitu: cannot open stream file " + path); }
  std::string image((std::istreambuf_iterator<char>(is)),
                    std::istreambuf_iterator<char>());

  std::vector<Frame> out;
  Cursor c{image.data(), image.size()};
  while (c.pos < c.n) {
    const std::size_t start = c.pos;
    const auto bad_tail = [&]() {
      if (truncated_tail != nullptr) { *truncated_tail = true; }
    };
    std::uint32_t magic = 0, version = 0, kind = 0, name_len = 0;
    if (!c.get(magic) || !c.get(version) || !c.get(kind) || !c.get(name_len) ||
        magic != stream_magic || version != stream_version || kind > 1 ||
        name_len > 4096) {
      bad_tail();
      break;
    }
    Frame f;
    f.kind = static_cast<FrameKind>(kind);
    f.name.resize(name_len);
    std::uint64_t payload = 0;
    if (!c.get_bytes(f.name.data(), name_len) || !c.get(f.step) || !c.get(f.time) ||
        !c.get(f.nx) || !c.get(f.ny) || !c.get(f.x0) || !c.get(f.x1) || !c.get(f.y0) ||
        !c.get(f.y1) || !c.get(payload) ||
        payload != std::uint64_t(f.nx) * f.ny * sizeof(float)) {
      bad_tail();
      break;
    }
    f.data.resize(payload / sizeof(float));
    std::uint64_t sum = 0;
    if (!c.get_bytes(f.data.data(), payload) || !c.get(sum) ||
        sum != fnv1a64(image.data() + start, c.pos - sizeof(sum) - start)) {
      bad_tail();
      break;
    }
    out.push_back(std::move(f));
  }
  return out;
}

std::vector<std::string> validate_manifest(const obs::json::Value& doc) {
  std::vector<std::string> errors;
  const auto err = [&](std::string m) { errors.push_back(std::move(m)); };
  if (!doc.is_object()) {
    err("manifest: root is not an object");
    return errors;
  }
  if (!doc.has("schema") || !doc["schema"].is_string() ||
      doc["schema"].as_string() != "mrpic.insitu.stream.v1") {
    err("manifest: missing/unknown schema tag");
  }
  for (const char* key : {"version", "max_file_bytes", "max_files", "total_frames"}) {
    if (!doc.has(key) || !doc[key].is_number()) {
      err(std::string("manifest: missing numeric field '") + key + "'");
    }
  }
  if (!doc.has("basename") || !doc["basename"].is_string()) {
    err("manifest: missing string field 'basename'");
  }
  std::int64_t files_frames = 0;
  if (!doc.has("files") || !doc["files"].is_array()) {
    err("manifest: missing array 'files'");
  } else {
    int i = 0;
    for (const auto& fv : doc["files"].as_array()) {
      const std::string at = "manifest: files[" + std::to_string(i++) + "]";
      if (!fv.is_object()) {
        err(at + " is not an object");
        continue;
      }
      if (!fv.has("file") || !fv["file"].is_string()) { err(at + ": missing 'file'"); }
      for (const char* key : {"frames", "bytes", "first_step", "last_step"}) {
        if (!fv.has(key) || !fv[key].is_number()) {
          err(at + ": missing numeric '" + key + "'");
        }
      }
      if (fv.has("frames") && fv["frames"].is_number()) {
        files_frames += fv["frames"].as_int();
      }
    }
  }
  if (!doc.has("frames") || !doc["frames"].is_array()) {
    err("manifest: missing array 'frames'");
  } else {
    int i = 0;
    for (const auto& ev : doc["frames"].as_array()) {
      const std::string at = "manifest: frames[" + std::to_string(i++) + "]";
      if (!ev.is_object()) {
        err(at + " is not an object");
        continue;
      }
      for (const char* key : {"file", "kind", "name"}) {
        if (!ev.has(key) || !ev[key].is_string()) {
          err(at + ": missing string '" + key + "'");
        }
      }
      for (const char* key : {"offset", "step", "time", "nx", "ny"}) {
        if (!ev.has(key) || !ev[key].is_number()) {
          err(at + ": missing numeric '" + key + "'");
        }
      }
      if (ev.has("kind") && ev["kind"].is_string() &&
          ev["kind"].as_string() != "field_slice" &&
          ev["kind"].as_string() != "phase_space") {
        err(at + ": unknown kind '" + ev["kind"].as_string() + "'");
      }
    }
    const auto n = static_cast<std::int64_t>(doc["frames"].as_array().size());
    if (doc.has("total_frames") && doc["total_frames"].is_number() &&
        doc["total_frames"].as_int() != n) {
      err("manifest: total_frames does not match frames[] length");
    }
    if (doc.has("files") && doc["files"].is_array() && files_frames != n) {
      err("manifest: per-file frame counts do not sum to frames[] length");
    }
  }
  return errors;
}

Manifest read_manifest(const std::string& path, std::vector<std::string>* errors) {
  std::ifstream is(path);
  if (!is) { throw std::runtime_error("insitu: cannot open manifest " + path); }
  std::string text((std::istreambuf_iterator<char>(is)),
                   std::istreambuf_iterator<char>());
  const auto doc = obs::json::parse(text);
  auto errs = validate_manifest(doc);
  if (errors != nullptr) { *errors = errs; }

  Manifest m;
  if (!doc.is_object()) { return m; }
  if (doc["version"].is_number()) { m.version = static_cast<int>(doc["version"].as_int()); }
  if (doc["basename"].is_string()) { m.basename = doc["basename"].as_string(); }
  if (doc["total_frames"].is_number()) { m.total_frames = doc["total_frames"].as_int(); }
  if (doc["files"].is_array()) {
    for (const auto& fv : doc["files"].as_array()) {
      if (!fv.is_object()) { continue; }
      ManifestFile mf;
      if (fv["file"].is_string()) { mf.file = fv["file"].as_string(); }
      if (fv["frames"].is_number()) { mf.frames = fv["frames"].as_int(); }
      if (fv["first_step"].is_number()) { mf.first_step = fv["first_step"].as_int(); }
      if (fv["last_step"].is_number()) { mf.last_step = fv["last_step"].as_int(); }
      m.files.push_back(std::move(mf));
    }
  }
  return m;
}

template Frame downsample_slice<2>(const mrpic::MultiFab<2>&, const mrpic::Geometry<2>&,
                                   int, int, std::string);
template Frame downsample_slice<3>(const mrpic::MultiFab<3>&, const mrpic::Geometry<3>&,
                                   int, int, std::string);

} // namespace mrpic::insitu
