#pragma once

// insitu::streaming — the live-telemetry seam for campaign dashboards: a
// run's downsampled 2D field slices and phase-space histograms are appended
// as self-describing binary frames to rotating, size-bounded files, next to
// a JSON manifest that indexes every frame (file, offset, step, axes). A
// consumer tails the manifest + frame files without ever touching the
// checkpoints or the full field state — the in-situ/streaming IO model of
// the exascale design-workflow papers (Huebl et al.; Myers et al.).
//
// Frame format (little-endian):
//   u32 magic 'MRSF'  u32 version  u32 kind  u32 name_len  name bytes
//   i64 step  f64 time  u32 nx  u32 ny  f64 x0 x1 y0 y1
//   u64 payload_bytes  payload (nx*ny float32, row-major, y slowest)
//   u64 FNV-1a checksum over everything above
// Each frame is appended and flushed as it is produced (like health
// alerts), so a crashed run leaves at most one truncated tail frame —
// which the reader tolerates and drops.

#include <cstdint>
#include <string>
#include <vector>

#include "src/amr/multifab.hpp"
#include "src/diag/phase_space.hpp"
#include "src/obs/json.hpp"
#include "src/obs/memory.hpp"

namespace mrpic::insitu {

inline constexpr std::uint32_t stream_magic = 0x4653524dU; // "MRSF" little-endian
inline constexpr std::uint32_t stream_version = 1;

enum class FrameKind : std::uint32_t { FieldSlice = 0, PhaseSpace = 1 };

struct Frame {
  FrameKind kind = FrameKind::FieldSlice;
  std::string name;          // e.g. "Ex", "x_ux"
  std::int64_t step = -1;
  double time = 0;
  std::uint32_t nx = 0, ny = 0;
  double x0 = 0, x1 = 0;     // physical extent of axis 0 (or hist axis a)
  double y0 = 0, y1 = 0;     // physical extent of axis 1 (or hist axis b)
  std::vector<float> data;   // nx*ny, row-major (y slowest)

  std::size_t payload_bytes() const { return data.size() * sizeof(float); }
  float at(std::uint32_t ix, std::uint32_t iy) const {
    return data[std::size_t(iy) * nx + ix];
  }
};

// --- frame producers -------------------------------------------------------

// Block-average downsample of component `comp` over the level's valid
// domain. For DIM == 3 the mid-plane (k = domain center) is sliced first.
// Partial edge blocks (domain not divisible by `factor`) average over the
// cells they cover.
template <int DIM>
Frame downsample_slice(const mrpic::MultiFab<DIM>& mf, const mrpic::Geometry<DIM>& geom,
                       int comp, int factor, std::string name);

// A phase-space histogram as a frame (counts to float32).
Frame phase_space_frame(const diag::PhaseSpace& ps, std::string name);

// --- writer ----------------------------------------------------------------

struct StreamConfig {
  // Frame files are `<basename>.NNN.bin`, manifest `<basename>.manifest.json`.
  std::string basename;
  // Rotate to the next file once the current one reaches this size.
  std::uint64_t max_file_bytes = 4u << 20;
  // Keep at most this many frame files; the oldest is deleted (and dropped
  // from the manifest) when the ring is full. 0 = unbounded.
  int max_files = 8;
};

class StreamWriter {
public:
  explicit StreamWriter(StreamConfig cfg);
  ~StreamWriter();
  StreamWriter(const StreamWriter&) = delete;
  StreamWriter& operator=(const StreamWriter&) = delete;

  const StreamConfig& config() const { return m_cfg; }

  // Append one frame (+ flush) to the current file, rotating/pruning first
  // if it would exceed the size bound, then rewrite the manifest. Returns
  // false on I/O failure.
  bool write(const Frame& f);

  std::int64_t frames_written() const { return m_frames_written; }
  std::int64_t bytes_written() const { return m_bytes_written; }
  std::int64_t files_rotated() const { return m_next_index; }
  std::string manifest_path() const;

private:
  struct FileEntry {
    std::string file;       // basename-relative file name
    std::int64_t frames = 0;
    std::uint64_t bytes = 0;
    std::int64_t first_step = -1, last_step = -1;
  };
  struct FrameEntry {
    std::string file;
    std::uint64_t offset = 0;
    FrameKind kind = FrameKind::FieldSlice;
    std::string name;
    std::int64_t step = -1;
    double time = 0;
    std::uint32_t nx = 0, ny = 0;
  };

  std::string file_path(int index) const;
  std::string file_name(int index) const;
  bool rotate();
  bool write_manifest() const;

  StreamConfig m_cfg;
  int m_next_index = 0;          // index the *next* rotation opens
  int m_current = -1;            // index of the open file (-1 = none yet)
  std::uint64_t m_current_bytes = 0;
  std::int64_t m_frames_written = 0;
  std::int64_t m_bytes_written = 0;
  std::vector<FileEntry> m_files;    // live (non-pruned) files, oldest first
  std::vector<FrameEntry> m_frames;  // frames in live files
  void* m_os = nullptr;              // std::ofstream*, kept opaque here
  obs::MemCharge m_mem{"insitu.stream"}; // encode buffer + manifest index
};

// --- reader ----------------------------------------------------------------

// Read every complete frame of one frame file. A truncated or corrupted
// tail (short header, short payload, checksum mismatch) ends the scan
// without error; *truncated_tail reports whether anything was dropped.
std::vector<Frame> read_frames(const std::string& path, bool* truncated_tail = nullptr);

struct ManifestFile {
  std::string file;
  std::int64_t frames = 0;
  std::int64_t first_step = -1, last_step = -1;
};

struct Manifest {
  int version = 0;
  std::string basename;
  std::vector<ManifestFile> files;
  std::int64_t total_frames = 0;
};

// Parse + validate `<basename>.manifest.json`. Throws std::runtime_error on
// unreadable/unparseable files; schema problems land in `errors`.
Manifest read_manifest(const std::string& path, std::vector<std::string>* errors = nullptr);

// Schema check of a parsed manifest document (shared by reader and tests).
std::vector<std::string> validate_manifest(const obs::json::Value& doc);

extern template Frame downsample_slice<2>(const mrpic::MultiFab<2>&,
                                          const mrpic::Geometry<2>&, int, int,
                                          std::string);
extern template Frame downsample_slice<3>(const mrpic::MultiFab<3>&,
                                          const mrpic::Geometry<3>&, int, int,
                                          std::string);

} // namespace mrpic::insitu
