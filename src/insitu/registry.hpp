#pragma once

// insitu::Registry — named in-situ reduced diagnostics at independent
// cadences, the physics-side sibling of health::HealthMonitor: each
// registered diagnostic is a closure that fills a flat Record of named
// scalars; collect(step) runs every diagnostic that is due, publishes each
// value as an `insitu_<diag>_<key>` gauge in the obs::MetricsRegistry, and
// appends one JSON object per record to a durable JSONL series (append +
// flush, like health alerts), so a crashed run's series survives and a
// replayed incarnation (resil::ResilientRunner rebuilds the Simulation)
// reopens it in append mode. Reader-side canonicalize() collapses the
// overlap a rollback replays: per (diag, step) the last occurrence wins.
//
// The registry itself is physics-agnostic (closures + cadences);
// core::Simulation::enable_insitu registers the standard diagnostics of
// ISSUE/paper Figs. 6-7 — beam moments/emittance, spectrum peak/FWHM,
// laser a0/centroid, wakefield amplitude, field energy — as lambdas over
// its own state (src/core/simulation.cpp).

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/diag/phase_space.hpp"
#include "src/insitu/streaming.hpp"
#include "src/obs/metrics.hpp"

namespace mrpic::insitu {

// One diagnostic's values at one step: a flat list of named scalars
// (insertion-ordered, so series columns are stable run to run).
struct Record {
  std::string diag;
  std::int64_t step = -1;
  double time = 0;
  std::vector<std::pair<std::string, double>> values;

  void set(std::string key, double v) { values.emplace_back(std::move(key), v); }
  // NaN for keys the diagnostic did not fill.
  double value(std::string_view key) const;
};

class Registry {
public:
  using Compute = std::function<void(Record&)>;

  Registry() = default;
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Same cadence rule as the health monitor.
  static bool due(std::int64_t step, int interval) {
    return interval > 0 && step % interval == 0;
  }

  // Register diagnostic `name` to run every `interval` steps (0 = never).
  void add(std::string name, int interval, Compute fn);
  int size() const { return static_cast<int>(m_diags.size()); }
  const std::vector<std::string>& names() const { return m_names; }
  bool any_due(std::int64_t step) const;

  // Gauge sink for insitu_* series (nullptr = none).
  void set_metrics(obs::MetricsRegistry* m) { m_metrics = m; }
  // Records kept in memory (0 = unbounded).
  void set_history_limit(std::size_t n) { m_history_limit = n; }

  // Open the durable JSONL series. append=false truncates (fresh run);
  // append=true continues an existing file (replay incarnations). Every
  // collected record is appended and flushed immediately.
  bool open_series(const std::string& path, bool append);
  const std::string& series_path() const { return m_series_path; }

  // Run every diagnostic due at `step`: compute, publish gauges, append to
  // the series. Returns the number of diagnostics that ran. With force,
  // cadences are ignored and everything runs (end-of-run final records).
  int collect(std::int64_t step, double time, bool force = false);

  // --- inspection -----------------------------------------------------------
  const std::deque<Record>& history() const { return m_history; }
  // Most recent record of one diagnostic (nullptr if it never ran).
  const Record* last(std::string_view diag) const;
  std::int64_t num_records() const { return m_total_records; }

  // --- series files ---------------------------------------------------------
  // One {"diag":...,"step":...,"time":...,"values":{...}} object per line.
  static void write_record(const Record& r, std::ostream& os);
  static Record parse_record(std::string_view line);
  static std::vector<Record> read_series_jsonl(const std::string& path);
  // Collapse replayed overlap: per (diag, step) keep the LAST occurrence,
  // then sort by (step, diag). The result is the canonical run series.
  static std::vector<Record> canonicalize(std::vector<Record> records);
  // Schema check of a series file; returns human-readable problems, plus
  // per-diag step-monotonicity after canonicalization (a gap is fine — a
  // backwards jump that survives canonicalize is not).
  static std::vector<std::string> validate_series(const std::string& path);

private:
  struct Diag {
    std::string name;
    int interval = 0;
    Compute fn;
  };

  std::vector<Diag> m_diags;
  std::vector<std::string> m_names;
  obs::MetricsRegistry* m_metrics = nullptr;
  std::size_t m_history_limit = 4096;
  std::deque<Record> m_history;
  std::int64_t m_total_records = 0;
  std::string m_series_path;
  void* m_series = nullptr;  // std::ofstream*, opaque (freed in the dtor)
};

// --- simulation-facing configuration ---------------------------------------

// Cadences and parameters for the standard diagnostics registered by
// core::Simulation::enable_insitu. All intervals are in steps; 0 disables
// that diagnostic.
struct InsituConfig {
  // Reduced diagnostics.
  int moments_interval = 10;       // beam moments + normalized emittance
  int spectrum_interval = 50;      // energy histogram + peak/FWHM
  int laser_interval = 10;         // a0 + pulse centroid
  int wakefield_interval = 10;     // max |Ex| behind the pulse
  int field_energy_interval = 10;  // per-component, per-MR-level

  // Beam selection: which species is "the beam", and the kinetic-energy
  // cut [J] that separates accelerated particles from the thermal bulk.
  int beam_species = 0;
  double beam_e_min_J = 0;

  // Spectrum histogram range [J] and bin count.
  double spectrum_e_min_J = 0;
  double spectrum_e_max_J = 0;
  int spectrum_bins = 100;

  // Laser probe: wavelength [m] for the a0 conversion (0 = no laser probe)
  // and polarization component (fields::Y or fields::Z).
  double laser_wavelength = 0;
  int laser_polarization = 2;

  // Series / history.
  std::string series_path;      // "" = in-memory only
  bool series_append = false;   // true for replay incarnations
  std::size_t history_limit = 4096;

  // Streaming exporter (stream_interval 0 or empty basename = off).
  int stream_interval = 0;
  int stream_downsample = 4;            // block-average factor for slices
  std::vector<int> stream_components{0, 1};  // E components to stream
  diag::PhaseSpaceConfig phase_space;   // x-ux histogram of the beam
  StreamConfig stream;
};

} // namespace mrpic::insitu
