#pragma once

// insitu::reductions — the physics-side reduced diagnostics of the paper's
// deliverables (Figs. 6-7): beam moments and normalized RMS emittance of the
// accelerated electrons, energy-spectrum peak/FWHM (reusing diag::Spectrum /
// diag::BeamQuality), laser a0 and pulse-centroid tracking, a wakefield
// amplitude probe (max |Ex| behind the pulse) and per-component field
// energy. All of them are cheap single-pass reductions over the particle
// tiles / field fabs, designed to run in-situ at a cadence (src/insitu
// registry) instead of writing full particle or field dumps.

#include <array>
#include <cstdint>
#include <limits>

#include "src/amr/config.hpp"
#include "src/diag/spectrum.hpp"
#include "src/fields/field_set.hpp"
#include "src/particles/particle_container.hpp"

namespace mrpic::insitu {

// --- beam moments / emittance ----------------------------------------------

// Weighted first/second moments of a particle population plus the
// transverse normalized RMS emittances. Transverse planes are indexed
// against the propagation axis (dim 0): plane y pairs position x[1] with
// proper velocity u[1]; plane z pairs x[2] with u[2] and is NaN in 2D
// (there is no x[2] coordinate to correlate against).
struct BeamMoments {
  std::int64_t count = 0;  // macroparticles included
  double weight = 0;       // sum of macro-weights (physical particles)
  double charge_C = 0;     // weight * species charge

  std::array<double, 3> mean_x{};  // <x_d> [m] (entries >= DIM are 0)
  std::array<double, 3> mean_u{};  // <u_c> [m/s], all 3 components
  std::array<double, 3> rms_x{};   // centered RMS sizes [m]
  std::array<double, 3> rms_u{};   // centered RMS proper velocities [m/s]

  // Normalized RMS emittance eps_n = sqrt(<dx^2><du^2> - <dx du>^2) / c
  // [m rad] for the transverse y plane and (3D only) the z plane.
  double emit_ny = std::numeric_limits<double>::quiet_NaN();
  double emit_nz = std::numeric_limits<double>::quiet_NaN();

  double mean_gamma = std::numeric_limits<double>::quiet_NaN();
  double mean_energy_J = std::numeric_limits<double>::quiet_NaN();
  double max_gamma = 1;
};

// Streaming accumulator so multi-level species (level-0 container + MR patch
// container) reduce into one set of moments without concatenating tiles.
template <int DIM>
class BeamMomentsAccumulator {
public:
  // Only particles with kinetic energy >= e_min_J contribute (0 = all);
  // the cut selects the accelerated beam out of the thermal bulk.
  explicit BeamMomentsAccumulator(double e_min_J = 0) : m_e_min(e_min_J) {}

  void add(const particles::ParticleContainer<DIM>& pc);
  BeamMoments finalize() const;

private:
  double m_e_min = 0;
  double m_mass = 0;    // of the last species added (moments are per-species)
  double m_charge = 0;
  std::int64_t m_count = 0;
  double m_w = 0;
  std::array<double, DIM> m_sx{}, m_sxx{};
  std::array<double, 3> m_su{}, m_suu{};
  std::array<double, DIM> m_sxu{};  // cross term x_d * u_d (same d)
  double m_sgamma = 0, m_senergy = 0, m_max_gamma = 1;
};

// --- spectrum --------------------------------------------------------------

// One reduced energy-spectrum result: the histogram plus the analyzed
// peak/FWHM/charge (diag::analyze_beam). Kept whole so examples can still
// write the binned spectrum CSV from the same numbers the registry publishes.
struct SpectrumSummary {
  diag::Spectrum spectrum;
  diag::BeamQuality beam;
  double weight_total = 0;  // sum of histogram counts (macro-weights)
};

// Histogram + analysis over one or more containers of the same species
// (level 0 + MR patch). charge_per_count is |q| of the species.
template <int DIM>
SpectrumSummary summarize_spectrum(
    const std::vector<const particles::ParticleContainer<DIM>*>& pcs, Real e_min,
    Real e_max, int nbins, Real charge_per_count);

// --- laser tracking --------------------------------------------------------

struct LaserSample {
  double peak_E_V_m = 0;   // max |E_pol| over the level-0 valid cells
  double a0 = 0;           // e E / (m_e omega c) at the probed wavelength
  double centroid_x_m = std::numeric_limits<double>::quiet_NaN();
  // Intensity-weighted <x> of E_pol^2 along the propagation axis (dim 0).
};

// Probe the laser pulse on the level-0 fields: peak field of the
// polarization component, its a0 at `wavelength`, and the pulse centroid.
template <int DIM>
LaserSample laser_probe(const fields::FieldSet<DIM>& f, Real wavelength,
                        int polarization_comp);

// --- wakefield -------------------------------------------------------------

// Max |Ex| over valid cells with x-center < x_behind: the accelerating
// wakefield amplitude behind the pulse (pass the laser centroid, or
// +infinity for the whole-domain max). Returns 0 when nothing qualifies.
template <int DIM>
Real wakefield_amplitude(const fields::FieldSet<DIM>& f, Real x_behind);

// --- field energy ----------------------------------------------------------

// Per-component electromagnetic energy of one level [J]:
// eps0/2 sum E_c^2 dV and 1/(2 mu0) sum B_c^2 dV.
struct FieldEnergyBreakdown {
  std::array<double, 3> E_J{};
  std::array<double, 3> B_J{};
  double total_J() const {
    return E_J[0] + E_J[1] + E_J[2] + B_J[0] + B_J[1] + B_J[2];
  }
};

template <int DIM>
FieldEnergyBreakdown field_energy_breakdown(const fields::FieldSet<DIM>& f);

// --- explicit instantiations ----------------------------------------------

extern template class BeamMomentsAccumulator<2>;
extern template class BeamMomentsAccumulator<3>;
extern template SpectrumSummary summarize_spectrum<2>(
    const std::vector<const particles::ParticleContainer<2>*>&, Real, Real, int, Real);
extern template SpectrumSummary summarize_spectrum<3>(
    const std::vector<const particles::ParticleContainer<3>*>&, Real, Real, int, Real);
extern template LaserSample laser_probe<2>(const fields::FieldSet<2>&, Real, int);
extern template LaserSample laser_probe<3>(const fields::FieldSet<3>&, Real, int);
extern template Real wakefield_amplitude<2>(const fields::FieldSet<2>&, Real);
extern template Real wakefield_amplitude<3>(const fields::FieldSet<3>&, Real);
extern template FieldEnergyBreakdown field_energy_breakdown<2>(const fields::FieldSet<2>&);
extern template FieldEnergyBreakdown field_energy_breakdown<3>(const fields::FieldSet<3>&);

} // namespace mrpic::insitu
