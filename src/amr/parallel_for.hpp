#pragma once

// ParallelFor: the on-node performance-portability primitive. In WarpX/AMReX
// this dispatches to CUDA/HIP/SYCL/OpenMP at compile time; here the
// production backend is OpenMP threading over the outermost index, with a
// serial fallback. Kernels are written once against (i,j,k) signatures,
// mirroring the single-source model the paper describes.

#ifdef MRPIC_USE_OPENMP
#include <omp.h>
#endif

#include <cstdint>

#include "src/amr/box.hpp"

namespace mrpic {

// Iterate f(i) over [0, n).
template <typename F>
inline void parallel_for(std::int64_t n, F&& f) {
#ifdef MRPIC_USE_OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (std::int64_t i = 0; i < n; ++i) { f(i); }
}

// Iterate f(i, j) over a 2D box.
template <typename F>
inline void parallel_for(const Box<2>& bx, F&& f) {
  if (bx.empty()) { return; }
#ifdef MRPIC_USE_OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (int j = bx.lo(1); j <= bx.hi(1); ++j) {
    for (int i = bx.lo(0); i <= bx.hi(0); ++i) { f(i, j); }
  }
}

// Iterate f(i, j, k) over a 3D box.
template <typename F>
inline void parallel_for(const Box<3>& bx, F&& f) {
  if (bx.empty()) { return; }
#ifdef MRPIC_USE_OPENMP
#pragma omp parallel for schedule(static) collapse(2)
#endif
  for (int k = bx.lo(2); k <= bx.hi(2); ++k) {
    for (int j = bx.lo(1); j <= bx.hi(1); ++j) {
      for (int i = bx.lo(0); i <= bx.hi(0); ++i) { f(i, j, k); }
    }
  }
}

// Serial variants (for use inside already-parallel regions).
template <typename F>
inline void serial_for(const Box<2>& bx, F&& f) {
  for (int j = bx.lo(1); j <= bx.hi(1); ++j) {
    for (int i = bx.lo(0); i <= bx.hi(0); ++i) { f(i, j); }
  }
}

template <typename F>
inline void serial_for(const Box<3>& bx, F&& f) {
  for (int k = bx.lo(2); k <= bx.hi(2); ++k) {
    for (int j = bx.lo(1); j <= bx.hi(1); ++j) {
      for (int i = bx.lo(0); i <= bx.hi(0); ++i) { f(i, j, k); }
    }
  }
}

inline int num_threads() {
#ifdef MRPIC_USE_OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

} // namespace mrpic
