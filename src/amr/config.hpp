#pragma once

// Global configuration for the mrpic framework.
//
// The core simulation uses double precision throughout ("DP mode" in the
// paper). The kernel micro-benchmarks in src/kernels are additionally
// templated on float to reproduce the paper's SP/MP rows.

#include <cstdint>

namespace mrpic {

using Real = double;

// Default number of ghost (guard) cells carried by field MultiFabs.
// Order-3 Esirkepov deposition of a particle that has just crossed the
// high-side box boundary (deposition happens before redistribution) touches
// up to 4 cells beyond the valid region, so 4 guards cover every
// interpolation/deposition used in this code base.
inline constexpr int default_num_ghost = 4;

namespace constants {
// SI physical constants (CODATA-2018 rounded).
inline constexpr Real c       = 2.99792458e8;       // speed of light [m/s]
inline constexpr Real eps0    = 8.8541878128e-12;   // vacuum permittivity [F/m]
inline constexpr Real mu0     = 1.25663706212e-6;   // vacuum permeability [H/m]
inline constexpr Real q_e     = 1.602176634e-19;    // elementary charge [C]
inline constexpr Real m_e     = 9.1093837015e-31;   // electron mass [kg]
inline constexpr Real m_p     = 1.67262192369e-27;  // proton mass [kg]
inline constexpr Real pi      = 3.14159265358979323846;
} // namespace constants

} // namespace mrpic
