#pragma once

// Geometry<DIM>: the physical problem domain — the mapping between the cell
// index lattice and physical coordinates — plus periodicity flags.
//
// Index convention: the *node* with index i along direction d sits at
//   x = prob_lo[d] + i * dx[d]
// so cell i occupies [prob_lo + i dx, prob_lo + (i+1) dx). A component with
// Yee staggering s (0 = nodal, 1 = half-cell offset) at index i sits at
//   x = prob_lo[d] + (i + 0.5 s) * dx[d].

#include <array>

#include "src/amr/box.hpp"
#include "src/amr/config.hpp"
#include "src/amr/real_vect.hpp"

namespace mrpic {

template <int DIM>
class Geometry {
public:
  using IV = IntVect<DIM>;
  using RV = RealVect<DIM>;

  Geometry() = default;

  Geometry(const Box<DIM>& domain, const RV& prob_lo, const RV& prob_hi,
           const std::array<bool, DIM>& periodic = {})
      : m_domain(domain), m_prob_lo(prob_lo), m_prob_hi(prob_hi), m_periodic(periodic) {
    for (int d = 0; d < DIM; ++d) {
      m_dx[d] = (prob_hi[d] - prob_lo[d]) / static_cast<Real>(domain.length(d));
      m_inv_dx[d] = Real(1) / m_dx[d];
    }
  }

  const Box<DIM>& domain() const { return m_domain; }
  const RV& prob_lo() const { return m_prob_lo; }
  const RV& prob_hi() const { return m_prob_hi; }
  const RV& dx() const { return m_dx; }
  const RV& inv_dx() const { return m_inv_dx; }
  Real cell_size(int d) const { return m_dx[d]; }
  bool is_periodic(int d) const { return m_periodic[d]; }
  const std::array<bool, DIM>& periodicity() const { return m_periodic; }
  bool any_periodic() const {
    for (int d = 0; d < DIM; ++d) {
      if (m_periodic[d]) { return true; }
    }
    return false;
  }

  // Position of node index i along direction d.
  Real node_pos(int i, int d) const { return m_prob_lo[d] + static_cast<Real>(i) * m_dx[d]; }
  // Position of cell center.
  Real cell_center(int i, int d) const {
    return m_prob_lo[d] + (static_cast<Real>(i) + Real(0.5)) * m_dx[d];
  }

  // Cell index containing physical position x along direction d.
  int cell_index(Real x, int d) const {
    return static_cast<int>(std::floor((x - m_prob_lo[d]) * m_inv_dx[d]));
  }

  // Refined/coarsened geometry over the same physical domain.
  Geometry refined(const IV& ratio) const {
    return Geometry(m_domain.refined(ratio), m_prob_lo, m_prob_hi, m_periodic);
  }
  Geometry refined(int r) const { return refined(IV(r)); }
  Geometry coarsened(const IV& ratio) const {
    return Geometry(m_domain.coarsened(ratio), m_prob_lo, m_prob_hi, m_periodic);
  }

  // Shift the whole domain by n cells along direction d (moving window):
  // index space is preserved, the physical anchor moves.
  void shift_physical(int d, int ncells) {
    const Real s = static_cast<Real>(ncells) * m_dx[d];
    m_prob_lo[d] += s;
    m_prob_hi[d] += s;
  }

  // Place the anchor at an absolute position, preserving the extent
  // (checkpoint/restart support; cell sizes are unchanged).
  void set_anchor(const RV& prob_lo) {
    for (int d = 0; d < DIM; ++d) {
      const Real extent = m_prob_hi[d] - m_prob_lo[d];
      m_prob_lo[d] = prob_lo[d];
      m_prob_hi[d] = prob_lo[d] + extent;
    }
  }

private:
  Box<DIM> m_domain;
  RV m_prob_lo{}, m_prob_hi{};
  RV m_dx{}, m_inv_dx{};
  std::array<bool, DIM> m_periodic{};
};

extern template class Geometry<2>;
extern template class Geometry<3>;

} // namespace mrpic
