#include "src/amr/box_array.hpp"

namespace mrpic {

template <int DIM>
bool BoxArray<DIM>::is_disjoint() const {
  for (int i = 0; i < size(); ++i) {
    for (int j = i + 1; j < size(); ++j) {
      if (m_boxes[i].intersects(m_boxes[j])) { return false; }
    }
  }
  return true;
}

template class BoxArray<2>;
template class BoxArray<3>;

} // namespace mrpic
