#include "src/amr/geometry.hpp"

namespace mrpic {

template class Geometry<2>;
template class Geometry<3>;

} // namespace mrpic
