#pragma once

// BaseFab<T, DIM>: owning storage for multi-component data over the index
// range of a (typically grown) cell box. All components share one contiguous
// allocation (Fortran order, component slowest).

#include <cstring>
#include <vector>

#include "src/amr/array4.hpp"
#include "src/amr/box.hpp"
#include "src/amr/config.hpp"
#include "src/obs/memory.hpp"

namespace mrpic {

template <typename T, int DIM>
class BaseFab {
public:
  using IV = IntVect<DIM>;

  BaseFab() = default;

  BaseFab(const Box<DIM>& bx, int ncomp) { resize(bx, ncomp); }

  void resize(const Box<DIM>& bx, int ncomp) {
    m_box = bx;
    m_ncomp = ncomp;
    m_data.assign(static_cast<std::size_t>(bx.num_cells()) * ncomp, T(0));
    // Charge the owning allocation into the memory ledger under the active
    // ScopedMemTag (the account binds on the first resize and then sticks;
    // the compiler-generated copy/move of m_mem keeps the books balanced).
    m_mem.update(static_cast<std::int64_t>(m_data.capacity() * sizeof(T)));
  }

  const Box<DIM>& box() const { return m_box; }
  int num_comp() const { return m_ncomp; }
  std::size_t size() const { return m_data.size(); }
  T* data() { return m_data.data(); }
  const T* data() const { return m_data.data(); }

  Array4<T> array() { return make_array4<T>(m_data.data()); }
  Array4<const T> const_array() const { return make_array4<const T>(m_data.data()); }

  void set_val(T v) { std::fill(m_data.begin(), m_data.end(), v); }

  // Copy `comp`-component data on region `rg` from src (src must cover rg).
  void copy_from(const BaseFab& src, const Box<DIM>& rg, int scomp, int dcomp, int ncomp) {
    transfer<false>(src, rg, rg, scomp, dcomp, ncomp);
  }
  // Copy with index shift: dst region rg_dst takes values from src region
  // rg_src (same shape), used for periodic wraps.
  void copy_from_shifted(const BaseFab& src, const Box<DIM>& rg_src, const Box<DIM>& rg_dst,
                         int scomp, int dcomp, int ncomp) {
    transfer<false>(src, rg_src, rg_dst, scomp, dcomp, ncomp);
  }
  // Accumulate (+=) variants, used by SumBoundary.
  void add_from(const BaseFab& src, const Box<DIM>& rg, int scomp, int dcomp, int ncomp) {
    transfer<true>(src, rg, rg, scomp, dcomp, ncomp);
  }
  void add_from_shifted(const BaseFab& src, const Box<DIM>& rg_src, const Box<DIM>& rg_dst,
                        int scomp, int dcomp, int ncomp) {
    transfer<true>(src, rg_src, rg_dst, scomp, dcomp, ncomp);
  }

  T sum(const Box<DIM>& rg, int comp) const {
    T s = 0;
    for_each_cell(rg, [&](const IV& p) { s += (*this)(p, comp); });
    return s;
  }

  T& operator()(const IV& p, int comp = 0) {
    return m_data[cell_offset(p, comp)];
  }
  const T& operator()(const IV& p, int comp = 0) const {
    return m_data[cell_offset(p, comp)];
  }

  template <typename F>
  void for_each_cell(const Box<DIM>& rg, F&& f) const {
    if (rg.empty()) { return; }
    if constexpr (DIM == 2) {
      for (int j = rg.lo(1); j <= rg.hi(1); ++j) {
        for (int i = rg.lo(0); i <= rg.hi(0); ++i) { f(IV(i, j)); }
      }
    } else {
      for (int k = rg.lo(2); k <= rg.hi(2); ++k) {
        for (int j = rg.lo(1); j <= rg.hi(1); ++j) {
          for (int i = rg.lo(0); i <= rg.hi(0); ++i) { f(IV(i, j, k)); }
        }
      }
    }
  }

private:
  std::size_t cell_offset(const IV& p, int comp) const {
    return static_cast<std::size_t>(m_box.index(p)) +
           static_cast<std::size_t>(comp) * static_cast<std::size_t>(m_box.num_cells());
  }

  template <typename U>
  Array4<U> make_array4(U* ptr) const {
    const IV sz = m_box.size();
    if constexpr (DIM == 2) {
      return Array4<U>(ptr, m_box.lo(0), m_box.lo(1), 0, sz[0], sz[1], 1, m_ncomp);
    } else {
      return Array4<U>(ptr, m_box.lo(0), m_box.lo(1), m_box.lo(2), sz[0], sz[1], sz[2],
                       m_ncomp);
    }
  }

  template <bool Add>
  void transfer(const BaseFab& src, const Box<DIM>& rg_src, const Box<DIM>& rg_dst,
                int scomp, int dcomp, int ncomp) {
    if (rg_src.empty()) { return; }
    const IV shift = rg_dst.lo() - rg_src.lo();
    for (int n = 0; n < ncomp; ++n) {
      src.for_each_cell(rg_src, [&](const IV& p) {
        if constexpr (Add) {
          (*this)(p + shift, dcomp + n) += src(p, scomp + n);
        } else {
          (*this)(p + shift, dcomp + n) = src(p, scomp + n);
        }
      });
    }
  }

  Box<DIM> m_box;
  int m_ncomp = 0;
  std::vector<T> m_data;
  obs::MemCharge m_mem;
};

template <int DIM>
using FArrayBox = BaseFab<Real, DIM>;

} // namespace mrpic
