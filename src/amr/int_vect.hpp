#pragma once

// IntVect<DIM>: a DIM-dimensional integer index vector, the basic coordinate
// type of the structured-mesh index space (mirrors AMReX's IntVect).

#include <algorithm>
#include <array>
#include <cstdint>
#include <functional>
#include <ostream>

namespace mrpic {

template <int DIM>
class IntVect {
  static_assert(DIM == 2 || DIM == 3, "mrpic supports 2D and 3D index spaces");

public:
  constexpr IntVect() : m_v{} {}

  // Broadcast constructor: all components set to `s`.
  constexpr explicit IntVect(int s) {
    for (int d = 0; d < DIM; ++d) { m_v[d] = s; }
  }

  constexpr IntVect(int i, int j) requires(DIM == 2) : m_v{i, j} {}
  constexpr IntVect(int i, int j, int k) requires(DIM == 3) : m_v{i, j, k} {}

  static constexpr IntVect zero() { return IntVect(0); }
  static constexpr IntVect unit() { return IntVect(1); }
  static constexpr IntVect dim_vec(int d, int val = 1) {
    IntVect v;
    v[d] = val;
    return v;
  }

  constexpr int  operator[](int d) const { return m_v[d]; }
  constexpr int& operator[](int d) { return m_v[d]; }

  constexpr bool operator==(const IntVect&) const = default;

  constexpr IntVect& operator+=(const IntVect& o) {
    for (int d = 0; d < DIM; ++d) { m_v[d] += o.m_v[d]; }
    return *this;
  }
  constexpr IntVect& operator-=(const IntVect& o) {
    for (int d = 0; d < DIM; ++d) { m_v[d] -= o.m_v[d]; }
    return *this;
  }
  constexpr IntVect& operator*=(int s) {
    for (int d = 0; d < DIM; ++d) { m_v[d] *= s; }
    return *this;
  }

  friend constexpr IntVect operator+(IntVect a, const IntVect& b) { return a += b; }
  friend constexpr IntVect operator-(IntVect a, const IntVect& b) { return a -= b; }
  friend constexpr IntVect operator*(IntVect a, int s) { return a *= s; }
  friend constexpr IntVect operator*(int s, IntVect a) { return a *= s; }
  friend constexpr IntVect operator-(IntVect a) {
    for (int d = 0; d < DIM; ++d) { a[d] = -a[d]; }
    return a;
  }

  // All-components comparisons (partial order on the index lattice).
  constexpr bool all_le(const IntVect& o) const {
    for (int d = 0; d < DIM; ++d) {
      if (m_v[d] > o.m_v[d]) { return false; }
    }
    return true;
  }
  constexpr bool all_lt(const IntVect& o) const {
    for (int d = 0; d < DIM; ++d) {
      if (m_v[d] >= o.m_v[d]) { return false; }
    }
    return true;
  }
  constexpr bool all_ge(const IntVect& o) const { return o.all_le(*this); }
  constexpr bool all_gt(const IntVect& o) const { return o.all_lt(*this); }

  constexpr int min_component() const { return *std::min_element(m_v.begin(), m_v.end()); }
  constexpr int max_component() const { return *std::max_element(m_v.begin(), m_v.end()); }

  constexpr std::int64_t product() const {
    std::int64_t p = 1;
    for (int d = 0; d < DIM; ++d) { p *= m_v[d]; }
    return p;
  }

  static constexpr IntVect component_min(const IntVect& a, const IntVect& b) {
    IntVect r;
    for (int d = 0; d < DIM; ++d) { r[d] = std::min(a[d], b[d]); }
    return r;
  }
  static constexpr IntVect component_max(const IntVect& a, const IntVect& b) {
    IntVect r;
    for (int d = 0; d < DIM; ++d) { r[d] = std::max(a[d], b[d]); }
    return r;
  }

  // Element-wise integer ops used by coarsen/refine.
  constexpr IntVect scaled(const IntVect& factor) const {
    IntVect r;
    for (int d = 0; d < DIM; ++d) { r[d] = m_v[d] * factor[d]; }
    return r;
  }
  // Floor division (rounds toward -infinity), the correct coarsening map for
  // negative indices.
  constexpr IntVect coarsened(const IntVect& ratio) const {
    IntVect r;
    for (int d = 0; d < DIM; ++d) {
      const int q = m_v[d] >= 0 ? m_v[d] / ratio[d] : -((-m_v[d] + ratio[d] - 1) / ratio[d]);
      r[d] = q;
    }
    return r;
  }

  friend std::ostream& operator<<(std::ostream& os, const IntVect& v) {
    os << '(';
    for (int d = 0; d < DIM; ++d) { os << v[d] << (d + 1 < DIM ? "," : ")"); }
    return os;
  }

private:
  std::array<int, DIM> m_v;
};

using IntVect2 = IntVect<2>;
using IntVect3 = IntVect<3>;

} // namespace mrpic
