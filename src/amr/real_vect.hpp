#pragma once

// RealVect<DIM>: DIM-dimensional vector of physical coordinates.

#include <array>
#include <cmath>
#include <ostream>

#include "src/amr/config.hpp"
#include "src/amr/int_vect.hpp"

namespace mrpic {

template <int DIM>
class RealVect {
public:
  constexpr RealVect() : m_v{} {}
  constexpr explicit RealVect(Real s) {
    for (int d = 0; d < DIM; ++d) { m_v[d] = s; }
  }
  constexpr RealVect(Real x, Real y) requires(DIM == 2) : m_v{x, y} {}
  constexpr RealVect(Real x, Real y, Real z) requires(DIM == 3) : m_v{x, y, z} {}

  constexpr explicit RealVect(const IntVect<DIM>& iv) {
    for (int d = 0; d < DIM; ++d) { m_v[d] = static_cast<Real>(iv[d]); }
  }

  constexpr Real  operator[](int d) const { return m_v[d]; }
  constexpr Real& operator[](int d) { return m_v[d]; }

  constexpr bool operator==(const RealVect&) const = default;

  constexpr RealVect& operator+=(const RealVect& o) {
    for (int d = 0; d < DIM; ++d) { m_v[d] += o.m_v[d]; }
    return *this;
  }
  constexpr RealVect& operator-=(const RealVect& o) {
    for (int d = 0; d < DIM; ++d) { m_v[d] -= o.m_v[d]; }
    return *this;
  }
  constexpr RealVect& operator*=(Real s) {
    for (int d = 0; d < DIM; ++d) { m_v[d] *= s; }
    return *this;
  }

  friend constexpr RealVect operator+(RealVect a, const RealVect& b) { return a += b; }
  friend constexpr RealVect operator-(RealVect a, const RealVect& b) { return a -= b; }
  friend constexpr RealVect operator*(RealVect a, Real s) { return a *= s; }
  friend constexpr RealVect operator*(Real s, RealVect a) { return a *= s; }

  constexpr Real dot(const RealVect& o) const {
    Real s = 0;
    for (int d = 0; d < DIM; ++d) { s += m_v[d] * o.m_v[d]; }
    return s;
  }
  Real norm() const { return std::sqrt(dot(*this)); }

  friend std::ostream& operator<<(std::ostream& os, const RealVect& v) {
    os << '(';
    for (int d = 0; d < DIM; ++d) { os << v[d] << (d + 1 < DIM ? "," : ")"); }
    return os;
  }

private:
  std::array<Real, DIM> m_v;
};

using RealVect2 = RealVect<2>;
using RealVect3 = RealVect<3>;

} // namespace mrpic
