#pragma once

// BoxArray<DIM>: an ordered collection of disjoint cell boxes that covers a
// level's valid region. Created by chopping a domain box into blocks of at
// most max_grid_size cells per side (the AMReX "blocking" that defines the
// granularity of domain decomposition and load balancing).

#include <vector>

#include "src/amr/box.hpp"

namespace mrpic {

template <int DIM>
class BoxArray {
public:
  using IV = IntVect<DIM>;

  BoxArray() = default;
  explicit BoxArray(const Box<DIM>& single) : m_boxes{single} {}
  explicit BoxArray(std::vector<Box<DIM>> boxes) : m_boxes(std::move(boxes)) {}

  // Decompose `domain` into blocks of at most `max_grid_size` per side.
  static BoxArray decompose(const Box<DIM>& domain, const IV& max_grid_size) {
    return BoxArray(domain.chop(max_grid_size));
  }
  static BoxArray decompose(const Box<DIM>& domain, int max_grid_size) {
    return decompose(domain, IV(max_grid_size));
  }

  int size() const { return static_cast<int>(m_boxes.size()); }
  bool empty() const { return m_boxes.empty(); }
  const Box<DIM>& operator[](int i) const { return m_boxes[i]; }
  const std::vector<Box<DIM>>& boxes() const { return m_boxes; }

  bool operator==(const BoxArray&) const = default;

  // Bounding box of all boxes.
  Box<DIM> minimal_box() const {
    Box<DIM> b;
    for (const auto& bx : m_boxes) { b = bounding(b, bx); }
    return b;
  }

  std::int64_t total_cells() const {
    std::int64_t n = 0;
    for (const auto& bx : m_boxes) { n += bx.num_cells(); }
    return n;
  }

  // True if p is in some box; optionally returns the box index.
  bool contains(const IV& p, int* which = nullptr) const {
    for (int i = 0; i < size(); ++i) {
      if (m_boxes[i].contains(p)) {
        if (which != nullptr) { *which = i; }
        return true;
      }
    }
    return false;
  }

  // Indices of boxes intersecting `region`.
  std::vector<int> intersecting(const Box<DIM>& region) const {
    std::vector<int> out;
    for (int i = 0; i < size(); ++i) {
      if (m_boxes[i].intersects(region)) { out.push_back(i); }
    }
    return out;
  }

  // Checks pairwise disjointness of the valid (cell) regions.
  bool is_disjoint() const;

  // Every box shifted by s (moving window re-anchoring keeps index boxes
  // fixed; this helper exists for patch motion in index space).
  BoxArray shifted(const IV& s) const {
    std::vector<Box<DIM>> out;
    out.reserve(m_boxes.size());
    for (const auto& b : m_boxes) { out.push_back(b.shifted(s)); }
    return BoxArray(std::move(out));
  }

  BoxArray coarsened(const IV& ratio) const {
    std::vector<Box<DIM>> out;
    out.reserve(m_boxes.size());
    for (const auto& b : m_boxes) { out.push_back(b.coarsened(ratio)); }
    return BoxArray(std::move(out));
  }
  BoxArray refined(const IV& ratio) const {
    std::vector<Box<DIM>> out;
    out.reserve(m_boxes.size());
    for (const auto& b : m_boxes) { out.push_back(b.refined(ratio)); }
    return BoxArray(std::move(out));
  }

private:
  std::vector<Box<DIM>> m_boxes;
};

extern template class BoxArray<2>;
extern template class BoxArray<3>;

} // namespace mrpic
