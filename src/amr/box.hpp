#pragma once

// Box<DIM>: a rectangular region of the cell-centered index lattice,
// represented by inclusive lower and upper corners (mirrors AMReX's Box).
//
// Field data in mrpic is always allocated on the index range of a grown cell
// box; staggered (Yee) component locations are an *interpretation* of the
// index (see fields/field_set.hpp), not a separate allocation type, which
// keeps every component of a fab the same size.

#include <cassert>
#include <cstdint>
#include <ostream>
#include <vector>

#include "src/amr/int_vect.hpp"

namespace mrpic {

template <int DIM>
class Box {
public:
  using IV = IntVect<DIM>;

  constexpr Box() : m_lo(0), m_hi(-1) {} // default: empty box
  constexpr Box(const IV& lo, const IV& hi) : m_lo(lo), m_hi(hi) {}

  // Box covering [0, n) cells in each direction.
  static constexpr Box from_extent(const IV& n) { return Box(IV::zero(), n - IV::unit()); }

  constexpr const IV& lo() const { return m_lo; }
  constexpr const IV& hi() const { return m_hi; }
  constexpr int lo(int d) const { return m_lo[d]; }
  constexpr int hi(int d) const { return m_hi[d]; }

  constexpr bool operator==(const Box&) const = default;

  constexpr bool empty() const {
    for (int d = 0; d < DIM; ++d) {
      if (m_hi[d] < m_lo[d]) { return true; }
    }
    return false;
  }

  constexpr IV size() const {
    IV s;
    for (int d = 0; d < DIM; ++d) { s[d] = m_hi[d] - m_lo[d] + 1; }
    return s;
  }
  constexpr int length(int d) const { return m_hi[d] - m_lo[d] + 1; }
  constexpr std::int64_t num_cells() const { return empty() ? 0 : size().product(); }

  constexpr bool contains(const IV& p) const { return m_lo.all_le(p) && p.all_le(m_hi); }
  constexpr bool contains(const Box& b) const {
    return b.empty() || (m_lo.all_le(b.m_lo) && b.m_hi.all_le(m_hi));
  }
  constexpr bool intersects(const Box& b) const { return !(*this & b).empty(); }

  // Intersection.
  friend constexpr Box operator&(const Box& a, const Box& b) {
    return Box(IV::component_max(a.m_lo, b.m_lo), IV::component_min(a.m_hi, b.m_hi));
  }

  // Minimal box containing both.
  friend constexpr Box bounding(const Box& a, const Box& b) {
    if (a.empty()) { return b; }
    if (b.empty()) { return a; }
    return Box(IV::component_min(a.m_lo, b.m_lo), IV::component_max(a.m_hi, b.m_hi));
  }

  constexpr Box& grow(int n) {
    m_lo -= IV(n);
    m_hi += IV(n);
    return *this;
  }
  constexpr Box& grow(const IV& n) {
    m_lo -= n;
    m_hi += n;
    return *this;
  }
  constexpr Box& grow(int d, int n) {
    m_lo[d] -= n;
    m_hi[d] += n;
    return *this;
  }
  constexpr Box grown(int n) const { return Box(*this).grow(n); }
  constexpr Box grown(const IV& n) const { return Box(*this).grow(n); }

  constexpr Box& shift(const IV& s) {
    m_lo += s;
    m_hi += s;
    return *this;
  }
  constexpr Box& shift(int d, int n) {
    m_lo[d] += n;
    m_hi[d] += n;
    return *this;
  }
  constexpr Box shifted(const IV& s) const { return Box(*this).shift(s); }
  constexpr Box shifted(int d, int n) const { return Box(*this).shift(d, n); }

  // Coarsen by integer ratio: the smallest coarse box whose refinement covers
  // this box (AMReX convention: lo floor-divided, hi floor-divided).
  constexpr Box coarsened(const IV& ratio) const {
    return Box(m_lo.coarsened(ratio), m_hi.coarsened(ratio));
  }
  constexpr Box coarsened(int r) const { return coarsened(IV(r)); }

  // Refine by integer ratio: the union of the fine cells of all coarse cells.
  constexpr Box refined(const IV& ratio) const {
    IV hi;
    for (int d = 0; d < DIM; ++d) { hi[d] = (m_hi[d] + 1) * ratio[d] - 1; }
    return Box(m_lo.scaled(ratio), hi);
  }
  constexpr Box refined(int r) const { return refined(IV(r)); }

  // Linear offset of p within this box (Fortran order: first index fastest).
  constexpr std::int64_t index(const IV& p) const {
    std::int64_t off = 0;
    std::int64_t stride = 1;
    for (int d = 0; d < DIM; ++d) {
      off += (p[d] - m_lo[d]) * stride;
      stride *= length(d);
    }
    return off;
  }

  // Chop this box into pieces no larger than max_size in any direction,
  // splitting as evenly as possible. Used by BoxArray::max_size.
  std::vector<Box> chop(const IV& max_size) const;

  friend std::ostream& operator<<(std::ostream& os, const Box& b) {
    return os << '[' << b.m_lo << ".." << b.m_hi << ']';
  }

private:
  IV m_lo, m_hi;
};

using Box2 = Box<2>;
using Box3 = Box<3>;

extern template class Box<2>;
extern template class Box<3>;

} // namespace mrpic
