#include "src/amr/box.hpp"

namespace mrpic {

template <int DIM>
std::vector<Box<DIM>> Box<DIM>::chop(const IV& max_size) const {
  std::vector<Box> pieces{*this};
  for (int d = 0; d < DIM; ++d) {
    std::vector<Box> next;
    next.reserve(pieces.size());
    for (const Box& b : pieces) {
      const int len = b.length(d);
      const int nchunk = (len + max_size[d] - 1) / max_size[d];
      // Distribute cells as evenly as possible: the first `rem` chunks get
      // one extra cell.
      const int base = len / nchunk;
      const int rem = len % nchunk;
      int start = b.lo(d);
      for (int c = 0; c < nchunk; ++c) {
        const int n = base + (c < rem ? 1 : 0);
        Box piece = b;
        piece.m_lo[d] = start;
        piece.m_hi[d] = start + n - 1;
        next.push_back(piece);
        start += n;
      }
    }
    pieces.swap(next);
  }
  return pieces;
}

template class Box<2>;
template class Box<3>;

} // namespace mrpic
