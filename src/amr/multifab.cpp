#include "src/amr/multifab.hpp"

#include <cassert>
#include <cmath>

namespace mrpic {

template <int DIM>
std::vector<typename MultiFab<DIM>::IV> MultiFab<DIM>::periodic_shifts(
    const Geometry<DIM>& geom) const {
  std::vector<IV> shifts{IV::zero()};
  for (int d = 0; d < DIM; ++d) {
    if (!geom.is_periodic(d)) { continue; }
    const int L = geom.domain().length(d);
    std::vector<IV> next;
    next.reserve(shifts.size() * 3);
    for (const IV& s : shifts) {
      next.push_back(s);
      IV sp = s;
      sp[d] += L;
      next.push_back(sp);
      IV sm = s;
      sm[d] -= L;
      next.push_back(sm);
    }
    shifts.swap(next);
  }
  return shifts;
}

template <int DIM>
void MultiFab<DIM>::lin_comb(Real a, Real b, const MultiFab& src, int scomp, int dcomp,
                             int ncomp) {
  assert(m_ba == src.m_ba && m_ngrow == src.m_ngrow);
  for (int i = 0; i < num_fabs(); ++i) {
    auto& dst = m_fabs[i];
    const auto& sf = src.m_fabs[i];
    dst.for_each_cell(grown_box(i), [&](const IV& p) {
      for (int n = 0; n < ncomp; ++n) {
        dst(p, dcomp + n) = a * dst(p, dcomp + n) + b * sf(p, scomp + n);
      }
    });
  }
}

template <int DIM>
void MultiFab<DIM>::fill_boundary(const Geometry<DIM>& geom) {
  if (m_ngrow == 0) { return; }
  const auto shifts = periodic_shifts(geom);
  for (int i = 0; i < num_fabs(); ++i) {
    const Box<DIM> gi = grown_box(i);
    for (int j = 0; j < num_fabs(); ++j) {
      for (const IV& s : shifts) {
        if (i == j && s == IV::zero()) { continue; }
        // Region of i's allocation covered by j's valid data shifted by s.
        const Box<DIM> src_valid = m_ba[j].shifted(s);
        const Box<DIM> region = gi & src_valid;
        if (region.empty()) { continue; }
        // Copy src data (at region - s) into dst (at region).
        m_fabs[i].copy_from_shifted(m_fabs[j], region.shifted(-s), region, 0, 0, m_ncomp);
      }
    }
  }
}

template <int DIM>
void MultiFab<DIM>::sum_boundary(const Geometry<DIM>& geom) {
  if (m_ngrow == 0) { return; }
  const auto shifts = periodic_shifts(geom);
  // Accumulate ghost-region contributions of every fab j into the valid
  // region of the owning fab i.
  for (int i = 0; i < num_fabs(); ++i) {
    const Box<DIM> vi = m_ba[i];
    for (int j = 0; j < num_fabs(); ++j) {
      for (const IV& s : shifts) {
        if (i == j && s == IV::zero()) { continue; }
        // j's ghost region shifted by s, intersected with i's valid region.
        // (j's *valid* region never overlaps i's valid region: boxes are
        // disjoint and periodic images of valid regions fall outside the
        // domain.)
        const Box<DIM> src_alloc = m_ba[j].grown(m_ngrow).shifted(s);
        const Box<DIM> region = vi & src_alloc;
        if (region.empty()) { continue; }
        m_fabs[i].add_from_shifted(m_fabs[j], region.shifted(-s), region, 0, 0, m_ncomp);
      }
    }
  }
  // Zero all ghost regions: their content has been folded into owners.
  for (int i = 0; i < num_fabs(); ++i) {
    auto& f = m_fabs[i];
    const Box<DIM> vi = m_ba[i];
    f.for_each_cell(grown_box(i), [&](const IV& p) {
      if (!vi.contains(p)) {
        for (int n = 0; n < m_ncomp; ++n) { f(p, n) = 0; }
      }
    });
  }
}

template <int DIM>
void MultiFab<DIM>::parallel_copy(const MultiFab& src, int scomp, int dcomp, int ncomp,
                                  int src_ghost, int dst_ghost, bool add) {
  assert(src_ghost <= src.m_ngrow && dst_ghost <= m_ngrow);
  for (int i = 0; i < num_fabs(); ++i) {
    const Box<DIM> di = m_ba[i].grown(dst_ghost);
    for (int j = 0; j < src.num_fabs(); ++j) {
      const Box<DIM> sj = src.m_ba[j].grown(src_ghost);
      const Box<DIM> region = di & sj;
      if (region.empty()) { continue; }
      if (add) {
        m_fabs[i].add_from(src.m_fabs[j], region, scomp, dcomp, ncomp);
      } else {
        m_fabs[i].copy_from(src.m_fabs[j], region, scomp, dcomp, ncomp);
      }
    }
  }
}

template <int DIM>
Real MultiFab<DIM>::sum(int comp) const {
  Real s = 0;
  for (int i = 0; i < num_fabs(); ++i) { s += m_fabs[i].sum(m_ba[i], comp); }
  return s;
}

template <int DIM>
Real MultiFab<DIM>::max_abs(int comp) const {
  Real m = 0;
  for (int i = 0; i < num_fabs(); ++i) {
    m_fabs[i].for_each_cell(m_ba[i], [&](const IV& p) {
      m = std::max(m, std::abs(m_fabs[i](p, comp)));
    });
  }
  return m;
}

template <int DIM>
Real MultiFab<DIM>::sum_sq(int comp) const {
  Real s = 0;
  for (int i = 0; i < num_fabs(); ++i) {
    m_fabs[i].for_each_cell(m_ba[i], [&](const IV& p) {
      const Real v = m_fabs[i](p, comp);
      s += v * v;
    });
  }
  return s;
}

template <int DIM>
void MultiFab<DIM>::shift_data(int d, int ncells, Real fill_value) {
  if (ncells == 0) { return; }
  assert(ncells > 0);
  for (int i = 0; i < num_fabs(); ++i) {
    auto& f = m_fabs[i];
    const Box<DIM> gb = grown_box(i);
    // value(p) <- value(p + n e_d); iterate in increasing d-index order so
    // sources are read before being overwritten.
    for (int n = 0; n < m_ncomp; ++n) {
      f.for_each_cell(gb, [&](const IV& p) {
        IV q = p;
        q[d] += ncells;
        f(p, n) = gb.contains(q) ? f(q, n) : fill_value;
      });
    }
  }
}

template class MultiFab<2>;
template class MultiFab<3>;

} // namespace mrpic
