#pragma once

// Array4<T>: a non-owning strided view of fab data indexed as (i,j,k,comp),
// mirroring AMReX's Array4. 2D data is viewed with k == the single index
// kz_lo (stride 0 in k is not used; 2D fabs simply have k extent 1).

#include <cassert>
#include <cstdint>

#include "src/amr/box.hpp"

namespace mrpic {

template <typename T>
struct Array4 {
  T* __restrict__ p = nullptr;
  std::int64_t jstride = 0;
  std::int64_t kstride = 0;
  std::int64_t nstride = 0;
  int ilo = 0, jlo = 0, klo = 0;
  int ihi = -1, jhi = -1, khi = -1; // inclusive; used for debug bounds checks
  int ncomp = 0;

  constexpr Array4() = default;

  constexpr Array4(T* ptr, int ilo_, int jlo_, int klo_, int nx, int ny, int nz, int nc)
      : p(ptr),
        jstride(nx),
        kstride(static_cast<std::int64_t>(nx) * ny),
        nstride(static_cast<std::int64_t>(nx) * ny * nz),
        ilo(ilo_), jlo(jlo_), klo(klo_),
        ihi(ilo_ + nx - 1), jhi(jlo_ + ny - 1), khi(klo_ + nz - 1),
        ncomp(nc) {}

  constexpr bool contains(int i, int j, int k) const {
    return i >= ilo && i <= ihi && j >= jlo && j <= jhi && k >= klo && k <= khi;
  }

  constexpr std::int64_t offset(int i, int j, int k, int n) const {
#ifdef MRPIC_BOUNDS_CHECK
    assert(contains(i, j, k) && n >= 0 && n < ncomp);
#endif
    return (i - ilo) + (j - jlo) * jstride + (k - klo) * kstride + n * nstride;
  }

  constexpr T& operator()(int i, int j, int k, int n = 0) const {
    return p[offset(i, j, k, n)];
  }
  // 2D convenience overload (k = klo).
  constexpr T& operator()(int i, int j) const { return p[offset(i, j, klo, 0)]; }

  constexpr explicit operator bool() const { return p != nullptr; }
};

} // namespace mrpic
