#pragma once

// MultiFab<DIM>: multi-component field data distributed over the boxes of a
// BoxArray, with ghost (guard) cells, halo exchange (FillBoundary), ghost
// accumulation (SumBoundary, used after current deposition) and copies
// between different BoxArrays (ParallelCopy, used by mesh refinement).
//
// Transport note: this build hosts every fab in-process (single address
// space); the DistributionMapping is carried for cost accounting and drives
// the simulated-cluster communication model (src/cluster), which is how the
// paper's multi-node behaviour is reproduced on one host (see DESIGN.md §1).

#include <memory>
#include <vector>

#include "src/amr/basefab.hpp"
#include "src/amr/box_array.hpp"
#include "src/amr/geometry.hpp"
#include "src/dist/distribution_mapping.hpp"

namespace mrpic {

template <int DIM>
class MultiFab {
public:
  using IV = IntVect<DIM>;

  MultiFab() = default;

  MultiFab(const BoxArray<DIM>& ba, const dist::DistributionMapping& dm, int ncomp,
           int ngrow)
      : m_ba(ba), m_dm(dm), m_ncomp(ncomp), m_ngrow(ngrow) {
    m_fabs.reserve(ba.size());
    for (int i = 0; i < ba.size(); ++i) {
      m_fabs.emplace_back(ba[i].grown(ngrow), ncomp);
    }
  }

  // Convenience: trivial distribution (all boxes on rank 0).
  MultiFab(const BoxArray<DIM>& ba, int ncomp, int ngrow)
      : MultiFab(ba, dist::DistributionMapping(std::vector<int>(ba.size(), 0), 1), ncomp,
                 ngrow) {}

  const BoxArray<DIM>& box_array() const { return m_ba; }
  const dist::DistributionMapping& dist_map() const { return m_dm; }
  int num_comp() const { return m_ncomp; }
  int num_ghost() const { return m_ngrow; }
  int num_fabs() const { return static_cast<int>(m_fabs.size()); }
  bool empty() const { return m_fabs.empty(); }

  FArrayBox<DIM>& fab(int i) { return m_fabs[i]; }
  const FArrayBox<DIM>& fab(int i) const { return m_fabs[i]; }
  Array4<Real> array(int i) { return m_fabs[i].array(); }
  Array4<const Real> const_array(int i) const { return m_fabs[i].const_array(); }

  // Valid (owned) cell box of fab i.
  const Box<DIM>& valid_box(int i) const { return m_ba[i]; }
  // Allocated region of fab i (valid grown by ngrow).
  Box<DIM> grown_box(int i) const { return m_ba[i].grown(m_ngrow); }

  void set_val(Real v) {
    for (auto& f : m_fabs) { f.set_val(v); }
  }
  void set_val(Real v, int comp) {
    for (int i = 0; i < num_fabs(); ++i) {
      m_fabs[i].for_each_cell(grown_box(i),
                              [&](const IV& p) { m_fabs[i](p, comp) = v; });
    }
  }

  // dst = dst * a + src * b (on valid+ghost region; box arrays must match).
  void lin_comb(Real a, Real b, const MultiFab& src, int scomp, int dcomp, int ncomp);

  // Fill ghost cells of every fab from the valid data of overlapping fabs,
  // honoring the periodicity of `geom`.
  void fill_boundary(const Geometry<DIM>& geom);

  // Add ghost-cell data of every fab into the valid cells of the owning fabs
  // (charge/current deposition reduction), honoring periodicity. Ghost
  // regions are zeroed afterwards; call fill_boundary to re-sync if needed.
  void sum_boundary(const Geometry<DIM>& geom);

  // Copy data from `src` (same index space, possibly different BoxArray)
  // where regions overlap. Regions are valid boxes grown by src_ghost /
  // dst_ghost respectively. If `add`, accumulate instead of assign.
  void parallel_copy(const MultiFab& src, int scomp, int dcomp, int ncomp,
                     int src_ghost = 0, int dst_ghost = 0, bool add = false);

  // Reductions over valid regions.
  Real sum(int comp = 0) const;
  Real max_abs(int comp = 0) const;
  // Sum of v^2 over valid cells (for energy diagnostics).
  Real sum_sq(int comp = 0) const;

  // Shift the stored data of every fab by `ncells` along direction `d`
  // toward negative indices (moving-window scroll): value(i) <- value(i+n).
  // Freshly exposed cells at the high end are set to fill_value.
  void shift_data(int d, int ncells, Real fill_value = 0);

private:
  // Periodic shift vectors (in index space), including the zero shift.
  std::vector<IV> periodic_shifts(const Geometry<DIM>& geom) const;

  BoxArray<DIM> m_ba;
  dist::DistributionMapping m_dm;
  int m_ncomp = 0;
  int m_ngrow = 0;
  std::vector<FArrayBox<DIM>> m_fabs;
};

extern template class MultiFab<2>;
extern template class MultiFab<3>;

} // namespace mrpic
