#pragma once

// ScenarioSpec: one declarative description of a complete physics workload —
// grid and geometry, species with target density profiles, laser pulse(s),
// an optional Lorentz-boosted frame, an optional MR patch, the moving
// window, ModuleRange cadences for the housekeeping modules, and the
// health/insitu policy blocks the observability flags turn on. A spec is a
// plain value: factories in the ScenarioRegistry return one, the examples
// mutate one before building, and build_simulation() assembles the live
// core::Simulation<2> from it. This replaces the bespoke main()-per-workload
// setup the first five examples grew (the input-driven shape of the WarpX
// ecosystem and of Pigeon's pic_impl_*.hpp config headers).
//
// Scenarios are 2D: every reduced-scale workload in this repository runs the
// paper's science cases as laptop-size 2D reductions (Simulation<3> remains
// available to direct users; no registered scenario needs it).

#include <optional>
#include <string>
#include <vector>

#include "src/core/simulation.hpp"
#include "src/health/monitor.hpp"
#include "src/insitu/registry.hpp"
#include "src/laser/laser_antenna.hpp"
#include "src/mr/mr_patch.hpp"
#include "src/plasma/plasma_injector.hpp"
#include "src/scenario/module_range.hpp"

namespace mrpic::scenario {

// One macroparticle population: physical identity + loading recipe +
// optional initial longitudinal drift (proper velocity u_x, applied to the
// loaded particles after init — how a boosted-frame plasma streams).
struct SpeciesSpec {
  particles::Species species;
  plasma::InjectorConfig<2> injector;
  Real drift_ux = 0; // [m/s proper velocity]; 0 = at rest
};

// Moving window (fields::MovingWindow via Simulation::set_moving_window).
struct WindowSpec {
  bool enabled = false;
  int dir = 0;
  Real speed = mrpic::constants::c;
  Real start_time = 0; // [s]
};

// Lorentz-boosted frame bookkeeping (src/boost). When enabled, the spec's
// plasma/laser parameters are ALREADY the boosted-frame values (the factory
// transformed them with boost::BoostedFrame); gamma is carried so the driver
// can report the lab<->boost correspondence and the Vay-2007 speedup.
struct BoostSpec {
  bool enabled = false;
  Real gamma = 1.0;
};

// Housekeeping cadences (Pigeon's ModuleRange idiom). sort/rebalance are
// folded into SimulationConfig by build_simulation (sort_interval,
// dynamic_lb + lb_interval); checkpoint/diagnostics are honored by the
// mrpic_run driver loop (periodic resil::CheckpointPolicy; progress +
// history rows).
struct Cadences {
  ModuleRange sort{true, 0, 20};
  ModuleRange rebalance{false, 0, 10};
  ModuleRange checkpoint{false, 0, 0};
  ModuleRange diagnostics{true, 0, 100};
};

struct ScenarioSpec {
  // Identity (filled by the registry / factory).
  std::string name;          // registry key, e.g. "lwfa_mr"
  std::string title;         // one-line description for --list
  std::string output_prefix; // artifact basename, e.g. "lwfa" -> lwfa_history.csv

  // Physics.
  core::SimulationConfig<2> sim;        // grid/geometry/numerics/PML/ranks
  std::vector<SpeciesSpec> species;
  std::vector<laser::LaserConfig> lasers;
  std::optional<mr::MRPatch<2>::Config> mr_patch;
  WindowSpec window;
  BoostSpec boost;

  // Cadences + policy blocks. The insitu/health configs carry the
  // scenario-tuned windows (beam species, energy cuts, watchdog bounds);
  // the driver zeroes the insitu intervals unless --insitu is given and
  // fills in the output paths, so a spec stays path-free and reusable.
  Cadences cadences;
  insitu::InsituConfig insitu;
  health::MonitorConfig health;

  // Default run length [s] (the driver's positional t_end_fs / --steps
  // override it).
  Real t_end = 0;
};

} // namespace mrpic::scenario
