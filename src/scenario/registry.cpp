#include "src/scenario/registry.hpp"

#include <stdexcept>

namespace mrpic::scenario {

ScenarioRegistry& ScenarioRegistry::instance() {
  static ScenarioRegistry reg = [] {
    ScenarioRegistry r;
    register_builtin_scenarios(r);
    return r;
  }();
  return reg;
}

bool ScenarioRegistry::add(std::string name, std::string title, Factory factory) {
  if (contains(name)) { return false; }
  m_entries.push_back({std::move(name), std::move(title), std::move(factory)});
  return true;
}

const ScenarioRegistry::Entry* ScenarioRegistry::find(std::string_view name) const {
  for (const auto& e : m_entries) {
    if (e.name == name) { return &e; }
  }
  return nullptr;
}

ScenarioSpec ScenarioRegistry::make(std::string_view name) const {
  const Entry* e = find(name);
  if (e == nullptr) {
    throw std::out_of_range("unknown scenario '" + std::string(name) +
                            "' (mrpic_run --list shows the registered names)");
  }
  ScenarioSpec spec = e->make();
  spec.name = e->name;
  spec.title = e->title;
  if (spec.output_prefix.empty()) { spec.output_prefix = e->name; }
  return spec;
}

} // namespace mrpic::scenario
