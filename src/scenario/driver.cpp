#include "src/scenario/driver.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "src/boost/lorentz.hpp"
#include "src/diag/csv_writer.hpp"
#include "src/health/watchdog.hpp"
#include "src/io/checkpoint.hpp"
#include "src/obs/analysis.hpp"
#include "src/obs/event_log.hpp"
#include "src/obs/heartbeat.hpp"
#include "src/obs/perf_report.hpp"
#include "src/obs/rank_recorder_io.hpp"
#include "src/obs/run_manifest.hpp"
#include "src/obs/trace.hpp"
#include "src/particles/deposition.hpp"
#include "src/particles/gather.hpp"
#include "src/particles/pusher.hpp"
#include "src/perf/flop_counter.hpp"
#include "src/perf/machine.hpp"
#include "src/scenario/builder.hpp"
#include "src/scenario/registry.hpp"

namespace mrpic::scenario {
namespace {

using mrpic::constants::c;
using mrpic::constants::q_e;

struct ParseResult {
  RunOptions opt;
  bool ok = true;
};

ParseResult parse_options(int argc, char** argv, const char* forced_scenario) {
  ParseResult r;
  if (forced_scenario != nullptr) { r.opt.scenario = forced_scenario; }
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--scenario") == 0 && i + 1 < argc) {
      r.opt.scenario = argv[++i];
    } else if (std::strcmp(a, "--list") == 0) {
      r.opt.list = true;
    } else if (std::strcmp(a, "--steps") == 0 && i + 1 < argc) {
      r.opt.steps = std::atoll(argv[++i]);
    } else if (std::strcmp(a, "--health") == 0) {
      r.opt.health = true;
    } else if (std::strcmp(a, "--insitu") == 0) {
      r.opt.insitu = true;
    } else if (std::strcmp(a, "--memory") == 0) {
      r.opt.memory = true;
    } else if (std::strcmp(a, "--node-budget-gb") == 0 && i + 1 < argc) {
      r.opt.node_budget_gb = std::atof(argv[++i]);
      r.opt.memory = true;
    } else if (std::strcmp(a, "--kernel-obs") == 0) {
      r.opt.kernel_obs = true;
    } else if (std::strcmp(a, "--no-mr") == 0) {
      r.opt.no_mr = true;
    } else if (std::strcmp(a, "--run-id") == 0 && i + 1 < argc) {
      r.opt.run_id = argv[++i];
    } else if (std::strcmp(a, "--heartbeat") == 0 && i + 1 < argc) {
      r.opt.heartbeat = std::atoi(argv[++i]);
    } else if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
      print_usage(argv[0]);
      std::exit(0);
    } else if (a[0] != '-') {
      r.opt.t_end_fs = std::atof(a);
    } else {
      std::fprintf(stderr, "%s: unknown flag '%s'\n", argv[0], a);
      r.ok = false;
      return r;
    }
  }
  return r;
}

// Normalized driver options for the run manifest (stable across argv
// orderings; defaults are omitted).
std::vector<std::string> normalized_flags(const RunOptions& opt) {
  std::vector<std::string> f;
  if (opt.steps > 0) { f.push_back("--steps " + std::to_string(opt.steps)); }
  if (opt.t_end_fs > 0) { f.push_back("t_end_fs=" + std::to_string(opt.t_end_fs)); }
  if (opt.health) { f.push_back("--health"); }
  if (opt.insitu) { f.push_back("--insitu"); }
  if (opt.memory) { f.push_back("--memory"); }
  if (opt.node_budget_gb > 0) {
    f.push_back("--node-budget-gb " + std::to_string(opt.node_budget_gb));
  }
  if (opt.kernel_obs) { f.push_back("--kernel-obs"); }
  if (opt.no_mr) { f.push_back("--no-mr"); }
  if (opt.heartbeat != 5) { f.push_back("--heartbeat " + std::to_string(opt.heartbeat)); }
  return f;
}

// Lab <-> boosted-frame correspondence table for boosted specs: the spec
// carries boosted-frame values, so invert them for the lab column.
void print_boost_table(const ScenarioSpec& spec) {
  const boost::BoostedFrame frame(spec.boost.gamma);
  const Real g = frame.gamma(), b = frame.beta();
  const laser::LaserConfig& lc = spec.lasers.front();
  const Real lam_lab = lc.wavelength / (g * (1 + b));
  std::printf("boosted frame gamma = %.1f (beta = %.4f)\n", g, b);
  std::printf("  %-26s %12s %12s\n", "", "lab", "boosted");
  std::printf("  %-26s %12.3f %12.3f\n", "laser wavelength [um]", lam_lab * 1e6,
              lc.wavelength * 1e6);
  std::printf("  %-26s %12.1f %12.1f\n", "laser duration [fs]",
              lc.duration / (g * (1 + b)) * 1e15, lc.duration * 1e15);
  if (!spec.species.empty()) {
    const Real n_boost = 1; // per-profile; report the scale factor instead
    (void)n_boost;
    std::printf("  %-26s %12s %12s\n", "plasma density", "n", "gamma*n");
    std::printf("  %-26s %12.3e %12s\n", "plasma drift u_x [m/s]", frame.plasma_drift_ux(),
                "");
  }
  std::printf("  expected speedup vs lab frame: %.1fx  [(1+beta)^2 gamma^2, Vay 2007]\n",
              boost::BoostedFrame::speedup_estimate(g));
}

} // namespace

void print_usage(const char* prog) {
  std::fprintf(
      stderr,
      "usage: %s --scenario <name> [options] [t_end_fs]\n"
      "       %s --list\n"
      "\n"
      "options:\n"
      "  --scenario <name>     registered scenario to run (see --list)\n"
      "  --list                print the scenario registry and exit\n"
      "  --steps N             run exactly N steps (overrides t_end)\n"
      "  --outdir DIR          artifact directory (default out/)\n"
      "  --health              invariant ledger + NaN/stability watchdog\n"
      "  --insitu              in-situ physics series + streaming exporter\n"
      "  --memory              byte ledger, per-rank memory model, MR savings\n"
      "  --node-budget-gb G    OOM headroom vs a G-GiB per-rank budget (implies --memory)\n"
      "  --kernel-obs          tile-grain kernel probes + \"Kernel headroom\" section\n"
      "  --no-mr               strip the scenario's MR patch\n"
      "  --run-id ID           run id recorded in the run.json manifest (default:\n"
      "                        generated <scenario>-<time>-<pid>-<n>)\n"
      "  --heartbeat N         rewrite progress.json every N steps (default 5; 0 = off)\n"
      "  t_end_fs              end time in femtoseconds (positional)\n",
      prog, prog);
}

int run_scenario(const ScenarioSpec& spec_in, const RunOptions& opt,
                 const diag::OutputDir& out) {
  ScenarioSpec spec = spec_in;
  if (opt.no_mr) { spec.mr_patch.reset(); }
  if (spec.output_prefix.empty()) {
    spec.output_prefix = spec.name.empty() ? "scenario" : spec.name;
  }
  const std::string& pfx = spec.output_prefix;
  const Real t_end = opt.t_end_fs > 0 ? opt.t_end_fs * 1e-15 : spec.t_end;
  if (opt.steps <= 0 && t_end <= 0) {
    std::fprintf(stderr, "scenario '%s' has no default t_end; pass --steps or t_end_fs\n",
                 spec.name.c_str());
    return 2;
  }

  // Campaign telemetry: every run gets a manifest, an event timeline and a
  // progress heartbeat regardless of the observability flags.
  const std::string run_id =
      opt.run_id.empty() ? obs::generate_run_id(spec.name) : opt.run_id;
  obs::RunContext rc(run_id, spec.name, out.path("run.json"));
  rc.manifest().title = spec.title;
  rc.manifest().spec_digest = spec_digest(spec);
  rc.manifest().flags = normalized_flags(opt);

  obs::EventLogConfig ecfg;
  ecfg.path = out.path(pfx + "_events.jsonl");
  obs::EventLog elog(ecfg);

  obs::HeartbeatConfig hbcfg;
  hbcfg.interval_steps = opt.heartbeat;
  if (opt.heartbeat > 0) { hbcfg.path = out.path("progress.json"); }
  obs::ProgressHeartbeat heartbeat(hbcfg, run_id);
  heartbeat.set_totals(opt.steps, opt.steps > 0 ? 0.0 : double(t_end));

  // Inventory the artifacts this run will produce (bytes stat'ed at
  // finalize; never-written ones record -1).
  rc.add_artifact("events", ecfg.path);
  if (opt.heartbeat > 0) { rc.add_artifact("progress", hbcfg.path); }
  rc.add_artifact("history", out.path(pfx + "_history.csv"));
  rc.add_artifact("field", out.path(pfx + "_field.csv"));
  rc.add_artifact("trace", out.path(pfx + "_trace.json"));
  rc.add_artifact("metrics", out.path(pfx + "_metrics.jsonl"));
  rc.add_artifact("rank_heatmap", out.path("rank_heatmap.csv"));
  rc.add_artifact("ranks", out.path(pfx + "_ranks.json"));
  rc.add_artifact("perf_report_md", out.path(pfx + "_perf_report.md"));
  rc.add_artifact("perf_report_json", out.path(pfx + "_perf_report.json"));
  if (opt.health) { rc.add_artifact("alerts", out.path(pfx + "_alerts.jsonl")); }
  if (opt.insitu) { rc.add_artifact("insitu", out.path(pfx + "_insitu.jsonl")); }
  if (opt.memory) { rc.add_artifact("memory_heatmap", out.path("memory_heatmap.csv")); }
  rc.start();
  elog.publish("lifecycle", "run_start", obs::EventSeverity::Info, -1, spec.name);

  // Assemble without init so pre-init observability hooks see the setup
  // phase, then enable per-flag observability and init.
  BuildOptions bopt;
  bopt.init = false;
  auto sim_ptr = build_simulation(spec, bopt);
  core::Simulation<2>& sim = *sim_ptr;
  sim.enable_cluster_obs();
  sim.enable_event_log(&elog);
  sim.profiler().set_tracing(true);

  if (opt.memory) {
    core::MemoryObsConfig mcfg;
    mcfg.interval = 1;
    mcfg.node_budget_gb = opt.node_budget_gb;
    sim.enable_memory_obs(mcfg);
  }
  if (opt.kernel_obs) { sim.enable_kernel_obs(); }
  std::string last_alert_severity;
  if (opt.health) {
    health::MonitorConfig hcfg = spec.health;
    hcfg.alerts_path = out.path(pfx + "_alerts.jsonl");
    sim.enable_health(hcfg);
    sim.health()->set_alert_callback([&last_alert_severity](const health::Alert& a) {
      last_alert_severity = health::to_string(a.severity);
    });
  }
  {
    insitu::InsituConfig icfg = spec.insitu;
    if (opt.insitu) {
      icfg.series_path = out.path(pfx + "_insitu.jsonl");
      if (icfg.stream_interval > 0) { icfg.stream.basename = out.path(pfx + "_stream"); }
    } else {
      // Keep the registry armed (the final force-collect prints the beam
      // deliverables through it) but disable every cadence series.
      icfg.moments_interval = icfg.spectrum_interval = icfg.laser_interval =
          icfg.wakefield_interval = icfg.field_energy_interval = 0;
      icfg.stream_interval = 0;
      icfg.series_path.clear();
      icfg.stream.basename.clear();
    }
    sim.enable_insitu(icfg);
  }

  sim.init();
  apply_species_drifts(sim, spec);

  if (opt.health) {
    sim.health()->add_flush_sink(
        [&] { sim.metrics().write_jsonl(out.path(pfx + "_metrics.jsonl")); });
    sim.health()->add_flush_sink([&] {
      obs::write_chrome_trace(sim.profiler(), sim.rank_recorder(),
                              out.path(pfx + "_trace.json"), spec.name);
    });
    sim.health()->add_flush_sink(
        [&] { sim.health()->write_ledger_jsonl(out.path(pfx + "_health.jsonl")); });
  }
  if (spec.cadences.checkpoint.enabled && spec.cadences.checkpoint.every > 0) {
    resil::CheckpointPolicyConfig ccfg;
    ccfg.mode = resil::CheckpointMode::Periodic;
    ccfg.interval_steps = static_cast<int>(spec.cadences.checkpoint.every);
    const std::string ckpt_path = out.path(pfx + "_ckpt.bin");
    sim.set_checkpoint_policy(resil::CheckpointPolicy(ccfg),
                              [ckpt_path](core::Simulation<2>& s) {
                                return io::write_checkpoint<2>(ckpt_path, s);
                              });
  }

  std::printf("scenario %s: %s\n", spec.name.c_str(), spec.title.c_str());
  std::printf("  %lld particles, %lld cells, dt = %.3e s, %s\n",
              static_cast<long long>(sim.total_particles()),
              static_cast<long long>(spec.sim.domain.num_cells()), sim.dt(),
              opt.steps > 0 ? ("steps = " + std::to_string(opt.steps)).c_str()
                            : ("t_end = " + std::to_string(t_end * 1e15) + " fs").c_str());
  if (spec.boost.enabled && !spec.lasers.empty()) { print_boost_table(spec); }

  diag::CsvSeries history({"t_fs", "window_x_um", "field_energy_J", "total_particles",
                           "max_Ex_GV_per_m"});
  const auto record_row = [&] {
    history.add_row({sim.time() * 1e15, sim.geom().prob_lo()[0] * 1e6,
                     sim.fields().field_energy(),
                     static_cast<double>(sim.total_particles()),
                     sim.fields().E().max_abs(fields::X) / 1e9});
  };
  int exit_code = 0;
  std::string status = obs::kRunStatusCompleted;
  std::string reason;
  try {
    for (;;) {
      if (opt.steps > 0 ? sim.step_count() >= opt.steps : sim.time() >= t_end) { break; }
      sim.step();
      heartbeat.update(sim.step_count(), sim.time(), "step", last_alert_severity);
      if (spec.cadences.diagnostics.due(sim.step_count())) {
        record_row();
        std::printf("t = %7.1f fs  step %6lld  E_x = %8.2f GV/m  particles %lld\n",
                    sim.time() * 1e15, static_cast<long long>(sim.step_count()),
                    sim.fields().E().max_abs(fields::X) / 1e9,
                    static_cast<long long>(sim.total_particles()));
      }
    }
  } catch (const health::AbortError& e) {
    std::fprintf(stderr, "scenario %s aborted by health watchdog: %s\n",
                 spec.name.c_str(), e.what());
    exit_code = 1;
    status = obs::kRunStatusAborted;
    reason = e.what();
    elog.publish("lifecycle", "abort", obs::EventSeverity::Critical, sim.step_count(),
                 reason);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "scenario %s failed: %s\n", spec.name.c_str(), e.what());
    exit_code = 3;
    status = obs::kRunStatusFailed;
    reason = e.what();
    elog.publish("lifecycle", "failure", obs::EventSeverity::Critical, sim.step_count(),
                 reason);
  }
  record_row();

  // Final reduced diagnostics through the insitu registry (one code path
  // with the cadence series and the perf-report beam section).
  sim.insitu()->collect(sim.step_count(), sim.time(), /*force=*/true);
  const Real mev = 1e6 * q_e;
  if (sim.last_spectrum() != nullptr && sim.last_beam_moments() != nullptr) {
    const auto& beam = sim.last_spectrum()->beam;
    const auto& mom = *sim.last_beam_moments();
    std::printf("beam: spectral peak %.2f MeV (spread %.1f%%), %.3f pC/m, "
                "norm. emittance %.3f mm mrad, <gamma> %.1f\n",
                beam.peak_energy / mev, 100 * beam.energy_spread,
                std::abs(mom.charge_C) * 1e12, mom.emit_ny * 1e6, mom.mean_gamma);
  }

  history.write(out.path(pfx + "_history.csv"));
  diag::write_field_2d(out.path(pfx + "_field.csv"), sim.fields().E(), fields::X);
  obs::write_chrome_trace(sim.profiler(), sim.rank_recorder(),
                          out.path(pfx + "_trace.json"), spec.name);
  sim.metrics().write_jsonl(out.path(pfx + "_metrics.jsonl"));
  sim.rank_recorder().write_rank_heatmap_csv(out.path("rank_heatmap.csv"));
  obs::write_recorder_json(sim.rank_recorder(), out.path(pfx + "_ranks.json"));

  obs::PerfReportOptions ropt;
  ropt.title = spec.title.empty() ? spec.name : spec.name + " — " + spec.title;
  ropt.latency_s = cluster::CommModel{}.latency_s;
  auto report = obs::build_perf_report(sim.rank_recorder(), ropt);
  std::string sections = "attribution";
  if (opt.health) {
    report.health = obs::summarize_health(*sim.health(), sim.profiler());
    sim.health()->write_ledger_jsonl(out.path(pfx + "_health.jsonl"));
    sections += ", health";
  }
  if (opt.insitu) {
    report.beam = obs::summarize_insitu(*sim.insitu(), sim.profiler(), sim.insitu_stream());
    sections += ", beam physics";
  }
  if (opt.memory) {
    const auto measured = sim.measured_mr_savings();
    const auto analytic = obs::analytic_mr_savings(sim.mr_savings_inputs());
    core::MemoryObsConfig mcfg;
    mcfg.interval = 1;
    mcfg.node_budget_gb = opt.node_budget_gb;
    report.memory = obs::summarize_memory(obs::memory_ledger(), sim.profiler(), &measured,
                                          &analytic, &sim.rank_recorder(),
                                          mcfg.budget_bytes());
    sim.rank_recorder().write_memory_heatmap_csv(out.path("memory_heatmap.csv"));
    sections += ", memory";
  }
  if (opt.kernel_obs && sim.kernel_probe() != nullptr) {
    report.kernel = obs::summarize_kernels(*sim.kernel_probe(), sim.profiler(),
                                           &sim.rank_recorder());
    sections += ", kernel headroom";
  }
  {
    const auto& rep = sim.last_step_report();
    perf::FlopCounter fc;
    fc.record("gather", particles::gather_flops_per_particle(spec.sim.shape_order, 2) *
                            rep.particles_pushed);
    fc.record("push", particles::push_flops_per_particle() * rep.particles_pushed);
    fc.record("deposition",
              particles::deposit_flops_per_particle(spec.sim.shape_order, 2) *
                  rep.particles_pushed);
    fc.record("field_solve",
              fields::FDTDSolver<2>::flops_per_cell() * rep.cells_advanced);
    report.machine = "Summit";
    report.roofline = obs::analysis::roofline(
        fc,
        obs::analysis::pic_kernel_bytes(static_cast<double>(rep.particles_pushed),
                                        static_cast<double>(rep.cells_advanced)),
        perf::machine_by_name(report.machine));
  }
  obs::write_markdown(report, out.path(pfx + "_perf_report.md"));
  obs::write_json(report, out.path(pfx + "_perf_report.json"));

  // Terminal lifecycle event + final heartbeat + manifest finalize, so a
  // campaign scheduler sees the outcome atomically.
  elog.publish("lifecycle", "run_end", obs::EventSeverity::Info, sim.step_count(),
               status);
  heartbeat.finalize(status, sim.step_count(), sim.time());
  rc.manifest().num_events = elog.num_events();
  if (opt.health) { rc.manifest().num_alerts = sim.health()->num_alerts(); }
  rc.finalize(status, exit_code, sim.step_count(), sim.time(), reason);

  std::printf("wrote %s_{history,field}.csv, %s_trace.json, %s_metrics.jsonl, "
              "%s_ranks.json, %s_perf_report.{md,json} in %s/\n",
              pfx.c_str(), pfx.c_str(), pfx.c_str(), pfx.c_str(), pfx.c_str(),
              out.dir().c_str());
  std::printf("perf report sections: %s\n", sections.c_str());
  std::printf("run %s: status %s (%lld timeline events), manifest %s\n", run_id.c_str(),
              status.c_str(), static_cast<long long>(elog.num_events()),
              rc.path().c_str());
  const auto& rep = sim.last_step_report();
  std::printf("last step %lld: %.3f ms wall, %lld particles, %lld cells\n",
              static_cast<long long>(rep.step), rep.wall_s * 1e3,
              static_cast<long long>(rep.particles_pushed),
              static_cast<long long>(rep.cells_advanced));
  return exit_code;
}

int run_scenario_main(int argc, char** argv, const char* forced_scenario) {
  const auto out = diag::OutputDir::from_args(argc, argv);
  const ParseResult parsed = parse_options(argc, argv, forced_scenario);
  if (!parsed.ok) {
    print_usage(argv[0]);
    return 2;
  }
  const RunOptions& opt = parsed.opt;
  auto& reg = ScenarioRegistry::instance();
  if (opt.list) {
    std::printf("registered scenarios (%zu):\n", reg.entries().size());
    for (const auto& e : reg.entries()) {
      std::printf("  %-18s %s\n", e.name.c_str(), e.title.c_str());
    }
    return 0;
  }
  if (opt.scenario.empty()) {
    print_usage(argv[0]);
    return 2;
  }
  ScenarioSpec spec;
  try {
    spec = reg.make(opt.scenario);
  } catch (const std::out_of_range& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  return run_scenario(spec, opt, out);
}

} // namespace mrpic::scenario
