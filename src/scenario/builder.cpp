#include "src/scenario/builder.hpp"

namespace mrpic::scenario {

core::SimulationConfig<2> effective_sim_config(const ScenarioSpec& spec) {
  core::SimulationConfig<2> cfg = spec.sim;
  cfg.sort_interval =
      spec.cadences.sort.enabled ? static_cast<int>(spec.cadences.sort.every) : 0;
  cfg.dynamic_lb = spec.cadences.rebalance.enabled;
  if (spec.cadences.rebalance.every > 0) {
    cfg.lb_interval = static_cast<int>(spec.cadences.rebalance.every);
  }
  return cfg;
}

std::unique_ptr<core::Simulation<2>> build_simulation(const ScenarioSpec& spec,
                                                      const BuildOptions& opts) {
  auto sim = std::make_unique<core::Simulation<2>>(effective_sim_config(spec));
  for (const auto& sp : spec.species) { sim->add_species(sp.species, sp.injector); }
  for (const auto& lc : spec.lasers) { sim->add_laser(lc); }
  if (spec.mr_patch && !opts.no_mr) { sim->enable_mr_patch(*spec.mr_patch); }
  if (spec.window.enabled) {
    sim->set_moving_window(spec.window.dir, spec.window.speed, spec.window.start_time);
  }
  if (opts.init) {
    sim->init();
    apply_species_drifts(*sim, spec);
  }
  return sim;
}

void apply_species_drifts(core::Simulation<2>& sim, const ScenarioSpec& spec) {
  const int ns = static_cast<int>(spec.species.size());
  for (int s = 0; s < ns; ++s) {
    const Real ux = spec.species[std::size_t(s)].drift_ux;
    if (ux == Real(0)) { continue; }
    auto& pc = sim.species_level0(s);
    for (int ti = 0; ti < pc.num_tiles(); ++ti) {
      auto& tile = pc.tile(ti);
      for (std::size_t p = 0; p < tile.size(); ++p) { tile.u[0][p] = ux; }
    }
  }
}

} // namespace mrpic::scenario
