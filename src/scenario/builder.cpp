#include "src/scenario/builder.hpp"

#include <cstdint>
#include <cstdio>
#include <sstream>

namespace mrpic::scenario {

core::SimulationConfig<2> effective_sim_config(const ScenarioSpec& spec) {
  core::SimulationConfig<2> cfg = spec.sim;
  cfg.sort_interval =
      spec.cadences.sort.enabled ? static_cast<int>(spec.cadences.sort.every) : 0;
  cfg.dynamic_lb = spec.cadences.rebalance.enabled;
  if (spec.cadences.rebalance.every > 0) {
    cfg.lb_interval = static_cast<int>(spec.cadences.rebalance.every);
  }
  return cfg;
}

std::unique_ptr<core::Simulation<2>> build_simulation(const ScenarioSpec& spec,
                                                      const BuildOptions& opts) {
  auto sim = std::make_unique<core::Simulation<2>>(effective_sim_config(spec));
  for (const auto& sp : spec.species) { sim->add_species(sp.species, sp.injector); }
  for (const auto& lc : spec.lasers) { sim->add_laser(lc); }
  if (spec.mr_patch && !opts.no_mr) { sim->enable_mr_patch(*spec.mr_patch); }
  if (spec.window.enabled) {
    sim->set_moving_window(spec.window.dir, spec.window.speed, spec.window.start_time);
  }
  if (opts.init) {
    sim->init();
    apply_species_drifts(*sim, spec);
  }
  return sim;
}

std::string spec_digest(const ScenarioSpec& spec) {
  // Canonical key=value serialization of the physics-defining fields, then
  // FNV-1a over the bytes. Field order is fixed; adding a field changes
  // every digest, which is the desired behavior (new physics knob = new
  // workload identity).
  std::ostringstream ss;
  ss.precision(17);
  const auto& sim = spec.sim;
  ss << "name=" << spec.name << ";domain=" << sim.domain.lo()[0] << ','
     << sim.domain.lo()[1] << ',' << sim.domain.hi()[0] << ',' << sim.domain.hi()[1]
     << ";prob=" << sim.prob_lo[0] << ',' << sim.prob_lo[1] << ',' << sim.prob_hi[0]
     << ',' << sim.prob_hi[1] << ";periodic=" << sim.periodic[0] << sim.periodic[1]
     << ";maxwell=" << static_cast<int>(sim.maxwell) << ";shape=" << sim.shape_order
     << ";depo=" << static_cast<int>(sim.deposition)
     << ";pusher=" << static_cast<int>(sim.pusher) << ";cfl=" << sim.cfl
     << ";dt=" << sim.forced_dt << ";pml=" << sim.use_pml << ";nranks=" << sim.nranks
     << ";t_end=" << spec.t_end << ";";
  for (const auto& sp : spec.species) {
    ss << "sp(q=" << sp.species.charge << ",m=" << sp.species.mass
       << ",ux=" << sp.drift_ux << ");";
  }
  for (const auto& lc : spec.lasers) {
    ss << "laser(a0=" << lc.a0 << ",lam=" << lc.wavelength << ",dur=" << lc.duration
       << ");";
  }
  if (spec.mr_patch) {
    ss << "mr(ratio=" << spec.mr_patch->ratio << ");";
  }
  ss << "window=" << spec.window.enabled << ',' << spec.window.dir << ','
     << spec.window.speed << ";boost=" << spec.boost.enabled << ','
     << spec.boost.gamma << ";cad=" << spec.cadences.sort.every << ','
     << spec.cadences.rebalance.every << ',' << spec.cadences.checkpoint.every;

  const std::string bytes = ss.str();
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a 64-bit offset basis
  for (const unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(h));
  return buf;
}

void apply_species_drifts(core::Simulation<2>& sim, const ScenarioSpec& spec) {
  const int ns = static_cast<int>(spec.species.size());
  for (int s = 0; s < ns; ++s) {
    const Real ux = spec.species[std::size_t(s)].drift_ux;
    if (ux == Real(0)) { continue; }
    auto& pc = sim.species_level0(s);
    for (int ti = 0; ti < pc.num_tiles(); ++ti) {
      auto& tile = pc.tile(ti);
      for (std::size_t p = 0; p < tile.size(); ++p) { tile.u[0][p] = ux; }
    }
  }
}

} // namespace mrpic::scenario
