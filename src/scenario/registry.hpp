#pragma once

// ScenarioRegistry: the named workload library behind `mrpic_run --scenario`.
// Each entry is a factory returning a fully-formed ScenarioSpec; the
// built-in library (src/scenario/library.cpp) registers itself on first use
// of instance(), so a static-library build cannot drop the registrations
// and there is no static-initialization-order coupling between translation
// units. User code may add further entries at runtime (campaign services
// register parameter-scan variants this way).

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "src/scenario/scenario_spec.hpp"

namespace mrpic::scenario {

class ScenarioRegistry {
public:
  using Factory = std::function<ScenarioSpec()>;

  struct Entry {
    std::string name;
    std::string title;
    Factory make;
  };

  // The process-wide registry, with the built-in library registered.
  static ScenarioRegistry& instance();

  // Register a factory under `name`. Returns false (and leaves the existing
  // entry untouched) when the name is already taken.
  bool add(std::string name, std::string title, Factory factory);

  bool contains(std::string_view name) const { return find(name) != nullptr; }
  const Entry* find(std::string_view name) const;

  // Build the named spec (spec.name/title are stamped from the entry).
  // Throws std::out_of_range naming the unknown scenario.
  ScenarioSpec make(std::string_view name) const;

  // Entries in registration order (the built-in library registers
  // alphabetically-meaningful groups: baselines, LWFA family, boosted,
  // solid targets).
  const std::vector<Entry>& entries() const { return m_entries; }
  std::size_t size() const { return m_entries.size(); }

private:
  std::vector<Entry> m_entries;
};

// Populate `reg` with the built-in scenario library (idempotent per name:
// existing entries win). Called by instance(); exposed for tests that build
// a private registry.
void register_builtin_scenarios(ScenarioRegistry& reg);

} // namespace mrpic::scenario
