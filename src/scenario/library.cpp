// The built-in scenario library. Every spec here is a laptop-scale 2D
// reduction of a real accelerator-design workload, tuned the same way the
// original bespoke examples were (the five examples are re-expressed as the
// quickstart / lwfa / lwfa_mr / plasma_mirror / hybrid_target_mr /
// boosted_lwfa entries; the remaining entries open new workloads: injection
// physics variants, a multi-stage chain, a thin-foil ion accelerator and a
// spectral-solver baseline).

#include "src/scenario/library.hpp"

#include "src/boost/lorentz.hpp"
#include "src/scenario/registry.hpp"

namespace mrpic::scenario {

using namespace mrpic::constants;

namespace {

const Real mev = 1e6 * q_e;

// The shared 30 x 10 um LWFA window: 0.05 um (lambda/16) longitudinal so
// the numerical group velocity stays close to c, 0.2 um transverse.
core::SimulationConfig<2> lwfa_grid() {
  core::SimulationConfig<2> cfg;
  cfg.domain = Box2(IntVect2(0, 0), IntVect2(599, 49));
  cfg.prob_lo = RealVect2(0, 0);
  cfg.prob_hi = RealVect2(30e-6, 10e-6);
  cfg.periodic = {false, false};
  cfg.use_pml = true;
  cfg.pml.npml = 10;
  cfg.max_grid_size = IntVect2(150, 50);
  cfg.shape_order = 3;
  cfg.nranks = 4;
  return cfg;
}

// The lwfa family's 800 nm drive pulse.
laser::LaserConfig lwfa_laser(Real a0) {
  laser::LaserConfig lc;
  lc.a0 = a0;
  lc.wavelength = 0.8e-6;
  lc.waist = 3.5e-6;
  lc.duration = 9e-15;
  lc.t_peak = 20e-15;
  lc.x_antenna = 2e-6;
  lc.center = {5e-6, 0};
  lc.focal_distance = 10e-6;
  return lc;
}

// Accelerated-beam windows for the LWFA family diagnostics.
insitu::InsituConfig lwfa_insitu(int beam_species, Real e_min_mev, Real e_max_mev,
                                 int bins) {
  insitu::InsituConfig icfg;
  icfg.beam_species = beam_species;
  icfg.beam_e_min_J = e_min_mev * mev;
  icfg.spectrum_e_min_J = e_min_mev * mev;
  icfg.spectrum_e_max_J = e_max_mev * mev;
  icfg.spectrum_bins = bins;
  icfg.moments_interval = 10;
  icfg.spectrum_interval = 50;
  icfg.laser_interval = 10;
  icfg.wakefield_interval = 10;
  icfg.field_energy_interval = 10;
  icfg.stream_interval = 100;
  icfg.stream_downsample = 4;
  icfg.stream.max_file_bytes = 1u << 20;
  icfg.stream.max_files = 4;
  icfg.phase_space.ax = diag::Axis::Energy;
  icfg.phase_space.ay = diag::Axis::Ux;
  icfg.phase_space.a_min = 0;
  icfg.phase_space.a_max = e_max_mev * mev;
  icfg.phase_space.b_min = -2e9;
  icfg.phase_space.b_max = 4e10;
  return icfg;
}

// Ledger + NaN scan every step, the expensive charge-conservation residuals
// sparsely, and a relativistic-gamma sanity bound (laptop-scale wakes top
// out far below gamma ~ 1e4).
health::MonitorConfig default_health(int residual_interval = 20) {
  health::MonitorConfig hcfg;
  hcfg.ledger_interval = 1;
  hcfg.nan_interval = 1;
  hcfg.residual_interval = residual_interval;
  hcfg.watchdog.bounds.push_back({"max_gamma", 0.0, 1e4, health::Severity::Warn, {}});
  return hcfg;
}

// The wake region of the lwfa grid: highest resolution where the bunch
// forms (the physics-motivated MR placement from the --memory LWFA runs).
mr::MRPatch<2>::Config lwfa_wake_patch() {
  mr::MRPatch<2>::Config pcfg;
  pcfg.region = Box2(IntVect2(200, 10), IntVect2(399, 39));
  pcfg.ratio = 2;
  pcfg.transition_cells = 2;
  pcfg.pml.npml = 8;
  return pcfg;
}

ScenarioSpec uniform_box_base() {
  ScenarioSpec spec;
  spec.sim.domain = Box2(IntVect2(0, 0), IntVect2(63, 63));
  spec.sim.prob_lo = RealVect2(0, 0);
  spec.sim.prob_hi = RealVect2(6.4e-6, 6.4e-6);
  spec.sim.periodic = {true, true};
  spec.sim.max_grid_size = IntVect2(32);
  spec.sim.shape_order = 3;

  SpeciesSpec sp;
  sp.species = particles::Species::electron();
  sp.injector.density = plasma::uniform<2>(1e24);
  sp.injector.ppc = IntVect2(2, 2);
  sp.injector.temperature_ev = 100.0;
  spec.species.push_back(sp);

  // Thermal spectrum of the 100 eV bulk (0..1 keV window).
  spec.insitu.beam_species = 0;
  spec.insitu.beam_e_min_J = 0;
  spec.insitu.spectrum_e_min_J = 0;
  spec.insitu.spectrum_e_max_J = 1000.0 * q_e;
  spec.insitu.spectrum_bins = 64;
  spec.insitu.moments_interval = 10;
  spec.insitu.spectrum_interval = 25;
  spec.insitu.field_energy_interval = 10;
  spec.insitu.laser_interval = 0;
  spec.insitu.wakefield_interval = 0;

  spec.health = default_health(/*residual_interval=*/10);
  spec.cadences.diagnostics = {true, 0, 10};
  spec.t_end = 12e-15; // ~50 steps at the periodic-box CFL dt
  return spec;
}

} // namespace

ScenarioSpec make_quickstart() {
  ScenarioSpec spec = uniform_box_base();
  return spec;
}

ScenarioSpec make_uniform_psatd() {
  ScenarioSpec spec = uniform_box_base();
  // Spectral solve: fully periodic, one global box, no PML/MR.
  spec.sim.maxwell = core::MaxwellSolver::PSATD;
  spec.sim.max_grid_size = IntVect2(64);
  return spec;
}

ScenarioSpec make_lwfa() {
  ScenarioSpec spec;
  spec.sim = lwfa_grid();
  spec.cadences.rebalance = {true, 0, 50};

  // Gas jet: n = 5e25 m^-3 ~ 0.029 n_c at 800 nm (plasma wavelength
  // ~4.7 um, resolved; short enough for self-injection within the run).
  SpeciesSpec sp;
  sp.species = particles::Species::electron();
  sp.injector.density = plasma::gas_jet<2>(5e25, 8e-6, 500e-6, 4e-6);
  sp.injector.ppc = IntVect2(1, 2);
  spec.species.push_back(sp);

  spec.lasers.push_back(lwfa_laser(3.5));
  spec.window = {true, 0, c, 40e-15}; // follow once the pulse is emitted
  spec.insitu = lwfa_insitu(0, 2.0, 60.0, 116);
  spec.health = default_health();
  {
    // Flag only pathological per-step slowdowns.
    health::DriftRule drift;
    drift.quantity = "step_wall_s";
    drift.z_threshold = 50.0;
    drift.warmup = 32;
    spec.health.watchdog.drifts.push_back(drift);
  }
  spec.t_end = 150e-15;
  spec.output_prefix = "lwfa";
  return spec;
}

ScenarioSpec make_lwfa_mr() {
  ScenarioSpec spec = make_lwfa();
  spec.mr_patch = lwfa_wake_patch();
  spec.output_prefix = "lwfa_mr";
  return spec;
}

ScenarioSpec make_lwfa_downramp() {
  ScenarioSpec spec = make_lwfa();
  spec.species.clear();
  // Dense injector plateau (8e25) dropping over 2 um onto the accelerator
  // plateau (4e25): the plasma wavelength stretches across the ramp, the
  // wake phase velocity drops and background electrons are trapped without
  // needing wave-breaking a0.
  SpeciesSpec sp;
  sp.species = particles::Species::electron();
  sp.injector.density =
      plasma::downramp<2>(8e25, 4e25, 8e-6, 3e-6, 14e-6, 2e-6, 500e-6);
  sp.injector.ppc = IntVect2(1, 2);
  spec.species.push_back(sp);
  spec.lasers.clear();
  spec.lasers.push_back(lwfa_laser(3.0)); // sub-wave-breaking drive
  spec.insitu = lwfa_insitu(0, 1.0, 60.0, 118);
  spec.output_prefix = "lwfa_downramp";
  return spec;
}

ScenarioSpec make_lwfa_ionization() {
  ScenarioSpec spec = make_lwfa();
  // Reduced ionization-injection model: the pre-ionized bulk drives the
  // wake; the dopant's inner-shell electrons — only released where the
  // laser intensity peaks — are represented by a narrow on-axis column of
  // cold electrons confined to the first jet section.
  SpeciesSpec dopant;
  dopant.species = particles::Species::electron("dopant_electrons");
  dopant.injector.density = plasma::gaussian_column<2>(1e25, 10e-6, 20e-6, 5e-6, 1e-6);
  dopant.injector.ppc = IntVect2(2, 2);
  spec.species.push_back(dopant);
  spec.lasers.clear();
  spec.lasers.push_back(lwfa_laser(4.0)); // ionization needs the higher peak
  spec.insitu = lwfa_insitu(/*dopant beam*/ 1, 1.0, 60.0, 118);
  spec.output_prefix = "lwfa_ionization";
  return spec;
}

ScenarioSpec make_lwfa_two_stage() {
  ScenarioSpec spec;
  spec.sim = lwfa_grid();
  // Twice the window: stage 1 (injector jet) and stage 2 (accelerator jet)
  // separated by a vacuum gap, the staging geometry of multi-stage LWFA
  // designs (and of the campaign-scan traffic the roadmap targets).
  spec.sim.domain = Box2(IntVect2(0, 0), IntVect2(1199, 49));
  spec.sim.prob_hi = RealVect2(60e-6, 10e-6);
  spec.cadences.rebalance = {true, 0, 50};

  SpeciesSpec stage1;
  stage1.species = particles::Species::electron("stage1_electrons");
  stage1.injector.density = plasma::gas_jet<2>(8e25, 8e-6, 20e-6, 2e-6);
  stage1.injector.ppc = IntVect2(1, 2);
  spec.species.push_back(stage1);

  SpeciesSpec stage2;
  stage2.species = particles::Species::electron("stage2_electrons");
  stage2.injector.density = plasma::gas_jet<2>(4e25, 26e-6, 800e-6, 3e-6);
  stage2.injector.ppc = IntVect2(1, 2);
  spec.species.push_back(stage2);

  spec.lasers.push_back(lwfa_laser(3.5));
  spec.window = {true, 0, c, 40e-15};
  spec.insitu = lwfa_insitu(/*stage-1 beam*/ 0, 1.0, 80.0, 120);
  spec.health = default_health();
  spec.t_end = 220e-15; // the pulse crosses both jets
  spec.output_prefix = "lwfa_two_stage";
  return spec;
}

ScenarioSpec make_boosted_lwfa(Real gamma_boost) {
  ::mrpic::boost::BoostedFrame frame(gamma_boost);

  // Lab-frame stage: 200 um of 1e25 m^-3 gas driven by an 0.8 um pulse.
  // In the boosted frame the laser is redshifted/stretched (lambda' =
  // lambda gamma (1+beta), same for the duration; a0 invariant) and the
  // plasma is contracted and counter-streaming (n' = gamma n,
  // u'_x = -gamma beta c).
  const Real lam_boost = frame.copropagating_wavelength(0.8e-6);
  const Real n_boost = frame.plasma_density_boosted(1e25);
  const Real dx_boost = lam_boost / 16; // same cells-per-wavelength as the lab

  ScenarioSpec spec;
  spec.sim.domain = Box2(IntVect2(0, 0), IntVect2(319, 31));
  spec.sim.prob_lo = RealVect2(0, 0);
  spec.sim.prob_hi = RealVect2(320 * dx_boost, 8e-6);
  spec.sim.periodic = {false, true};
  spec.sim.use_pml = true;
  spec.sim.pml.npml = 8;
  spec.sim.max_grid_size = IntVect2(320, 32);
  spec.sim.nranks = 4;

  SpeciesSpec sp;
  sp.species = particles::Species::electron();
  sp.injector.density = plasma::gas_jet<2>(n_boost, 6 * dx_boost * 16, 1.0, 2e-6);
  sp.injector.ppc = IntVect2(1, 2);
  sp.drift_ux = frame.plasma_drift_ux();
  spec.species.push_back(sp);

  laser::LaserConfig lc;
  lc.a0 = 2.0; // Lorentz invariant for co-propagating boosts
  lc.wavelength = lam_boost;
  lc.waist = 3e-6;
  lc.duration = frame.copropagating_duration(8e-15);
  lc.t_peak = 2.2 * lc.duration;
  lc.x_antenna = 2 * dx_boost * 16;
  lc.center = {4e-6, 0};
  spec.lasers.push_back(lc);

  spec.boost = {true, gamma_boost};
  // The counter-streaming bulk carries (gamma-1) m c^2 per electron; the
  // beam cut sits above it so the spectrum shows accelerated particles.
  const Real bulk_mev = (gamma_boost - 1) * m_e * c * c / mev;
  spec.insitu = lwfa_insitu(0, bulk_mev + 1.0, bulk_mev + 30.0, 100);
  spec.insitu.stream_interval = 50;
  spec.health = default_health();
  spec.t_end = 120e-15; // boosted-frame fs
  spec.output_prefix = "boosted_lwfa";
  return spec;
}

ScenarioSpec make_plasma_mirror() {
  ScenarioSpec spec;
  // 10 x 10 um; 0.05 um (lambda/16) cells along x, 0.1 um along y (the
  // tilted wavefront needs transverse resolution too).
  spec.sim.domain = Box2(IntVect2(0, 0), IntVect2(199, 99));
  spec.sim.prob_lo = RealVect2(0, 0);
  spec.sim.prob_hi = RealVect2(10e-6, 10e-6);
  spec.sim.periodic = {false, false};
  spec.sim.use_pml = true;
  spec.sim.pml.npml = 10;
  spec.sim.max_grid_size = IntVect2(100, 100);
  spec.sim.shape_order = 3;
  spec.sim.nranks = 4;

  const Real nc = plasma::critical_density(0.8e-6);
  // Solid foil at x = 6..7.5 um, 20 n_c (mildly overdense to stay laptop-
  // scale; the paper's science case used 50-55 n_c). Mobile ions keep the
  // foil from exploding unphysically fast.
  SpeciesSpec electrons;
  electrons.species = particles::Species::electron();
  electrons.injector.density = plasma::slab<2>(20 * nc, 6e-6, 7.5e-6);
  electrons.injector.ppc = IntVect2(3, 2);
  spec.species.push_back(electrons);
  SpeciesSpec ions = electrons;
  ions.species = particles::Species::proton();
  spec.species.push_back(ions);

  laser::LaserConfig lc;
  lc.a0 = 8.0;
  lc.wavelength = 0.8e-6;
  lc.waist = 2.5e-6;
  lc.duration = 8e-15;
  lc.t_peak = 20e-15;
  lc.x_antenna = 1.0e-6;
  lc.center = {2.8e-6, 0};
  lc.tilt = 30.0 * pi / 180.0; // oblique incidence
  lc.focal_distance = 5e-6;
  lc.polarization = 1; // p-pol (in-plane) drives Brunel extraction
  spec.lasers.push_back(lc);

  // Hot-electron spectrum of the extracted bunches.
  spec.insitu.beam_species = 0;
  spec.insitu.beam_e_min_J = 0.2 * mev;
  spec.insitu.spectrum_e_min_J = 0.1 * mev;
  spec.insitu.spectrum_e_max_J = 10 * mev;
  spec.insitu.spectrum_bins = 50;
  spec.insitu.moments_interval = 10;
  spec.insitu.spectrum_interval = 25;
  spec.insitu.laser_interval = 10;
  spec.insitu.wakefield_interval = 0; // no wake behind a mirror
  spec.insitu.field_energy_interval = 10;
  spec.health = default_health(/*residual_interval=*/25);
  spec.cadences.diagnostics = {true, 0, 50};
  spec.t_end = 90e-15;
  spec.output_prefix = "mirror";
  return spec;
}

ScenarioSpec make_hybrid_target_mr() {
  ScenarioSpec spec;
  // 30 x 10 um window, same resolution as lwfa. The MR patch covers the
  // solid foil; once the moving window has advanced past it the patch is
  // removed (the paper's 1.5-4x time-to-solution mechanism, Fig. 6).
  spec.sim = lwfa_grid();
  spec.sim.nranks = 1; // the legacy example runs un-clustered
  spec.sim.mr_remove_when_lo_above = 4.6e-6;

  const Real nc = plasma::critical_density(0.8e-6);
  // Hybrid target: foil at 3..4.5 um (15 n_c; the fine patch resolves its
  // ~35 nm skin depth), gas from 5.5 um onward (0.01 n_c). Paper values:
  // solid 50-55 n_c, gas 2.34e18 cm^-3.
  SpeciesSpec gas;
  gas.species = particles::Species::electron("gas_electrons");
  gas.injector.density = plasma::gas_jet<2>(0.025 * nc, 5.5e-6, 800e-6, 2e-6);
  gas.injector.ppc = IntVect2(1, 2);
  spec.species.push_back(gas);

  SpeciesSpec solid;
  solid.species = particles::Species::electron("solid_electrons");
  solid.injector.density = plasma::slab<2>(15 * nc, 3e-6, 4.5e-6);
  solid.injector.ppc = IntVect2(3, 2); // paper: 3x2(x3) for solid electrons
  spec.species.push_back(solid);
  SpeciesSpec solid_ions = solid;
  solid_ions.species = particles::Species::proton("solid_ions");
  spec.species.push_back(solid_ions);

  // Laser emitted leftward from x = 20 um (the antenna radiates both ways;
  // the right-going half exits through the PML), focused on the foil.
  laser::LaserConfig lc;
  lc.a0 = 6.0;
  lc.wavelength = 0.8e-6;
  lc.waist = 3e-6;
  lc.duration = 9e-15;
  lc.t_peak = 16e-15;
  lc.x_antenna = 20e-6;
  lc.center = {5e-6, 0};
  lc.polarization = 1; // in-plane (p-like) polarization drives extraction
  spec.lasers.push_back(lc);

  // Patch over the foil and the vacuum gap in front of it.
  mr::MRPatch<2>::Config pcfg;
  pcfg.region = Box2(IntVect2(40, 4), IntVect2(139, 45)); // 2..7 um
  pcfg.ratio = 2;
  pcfg.transition_cells = 2;
  pcfg.pml.npml = 8;
  spec.mr_patch = pcfg;

  // The reflected pulse forms at ~70 fs; follow it from 75 fs on.
  spec.window = {true, 0, c, 75e-15};

  // Injected (solid-electron) beam diagnostics.
  spec.insitu.beam_species = 1;
  spec.insitu.beam_e_min_J = 0.5 * mev;
  spec.insitu.spectrum_e_min_J = 0.5 * mev;
  spec.insitu.spectrum_e_max_J = 40 * mev;
  spec.insitu.spectrum_bins = 80;
  spec.insitu.moments_interval = 10;
  spec.insitu.spectrum_interval = 50;
  spec.insitu.laser_interval = 10;
  spec.insitu.wakefield_interval = 10;
  spec.insitu.field_energy_interval = 10; // per-level: fine_* keys while MR on
  spec.insitu.stream_interval = 100;
  spec.insitu.stream_downsample = 4;
  spec.insitu.stream.max_file_bytes = 1u << 20;
  spec.insitu.stream.max_files = 4;
  spec.insitu.phase_space.ax = diag::Axis::Energy;
  spec.insitu.phase_space.ay = diag::Axis::Ux;
  spec.insitu.phase_space.a_max = 40 * mev;
  spec.insitu.phase_space.b_min = -5 * c;
  spec.insitu.phase_space.b_max = 40 * c;
  spec.insitu.phase_space.na = 160;
  spec.insitu.phase_space.nb = 90;
  spec.health = default_health(/*residual_interval=*/25);
  spec.cadences.checkpoint = {true, 200, 200}; // long-campaign restartability
  spec.t_end = 150e-15;
  spec.output_prefix = "hybrid";
  return spec;
}

ScenarioSpec make_thin_foil_ion() {
  ScenarioSpec spec = make_plasma_mirror();
  spec.species.clear();
  spec.lasers.clear();

  const Real nc = plasma::critical_density(0.8e-6);
  // Thin C6+ foil (0.5 um, 30 n_c electrons) with a hydrogen contaminant
  // layer on the rear surface: the laser heats foil electrons through the
  // target, the hot-electron sheath field on the rear side accelerates the
  // protons (TNSA, the ion-acceleration variant of the hybrid target).
  SpeciesSpec electrons;
  electrons.species = particles::Species::electron("foil_electrons");
  electrons.injector.density = plasma::slab<2>(30 * nc, 6e-6, 6.5e-6);
  electrons.injector.ppc = IntVect2(4, 2);
  spec.species.push_back(electrons);

  SpeciesSpec carbons;
  carbons.species = particles::Species::ion("foil_carbon", 6, 12.0);
  carbons.injector.density = plasma::slab<2>(5 * nc, 6e-6, 6.5e-6); // quasi-neutral
  carbons.injector.ppc = IntVect2(2, 2);
  spec.species.push_back(carbons);

  SpeciesSpec protons;
  protons.species = particles::Species::proton("contaminant_protons");
  protons.injector.density = plasma::slab<2>(2 * nc, 6.5e-6, 6.6e-6);
  protons.injector.ppc = IntVect2(4, 4);
  spec.species.push_back(protons);

  laser::LaserConfig lc;
  lc.a0 = 10.0;
  lc.wavelength = 0.8e-6;
  lc.waist = 2.5e-6;
  lc.duration = 8e-15;
  lc.t_peak = 20e-15;
  lc.x_antenna = 1.0e-6;
  lc.center = {5e-6, 0};
  lc.focal_distance = 5e-6;
  lc.polarization = 1; // in-plane: drives electrons through the foil
  spec.lasers.push_back(lc);

  // The deliverable is the proton spectrum off the rear surface.
  spec.insitu.beam_species = 2;
  spec.insitu.beam_e_min_J = 0.1 * mev;
  spec.insitu.spectrum_e_min_J = 0.1 * mev;
  spec.insitu.spectrum_e_max_J = 20 * mev;
  spec.insitu.spectrum_bins = 80;
  spec.t_end = 100e-15;
  spec.output_prefix = "foil_ion";
  return spec;
}

void register_builtin_scenarios(ScenarioRegistry& reg) {
  reg.add("quickstart", "uniform thermal plasma in a periodic box (PIC hello world)",
          make_quickstart);
  reg.add("uniform_psatd", "uniform thermal plasma on the spectral (PSATD) solver",
          make_uniform_psatd);
  reg.add("lwfa", "gas-jet laser-wakefield accelerator with moving window", make_lwfa);
  reg.add("lwfa_mr", "LWFA with a ratio-2 MR patch over the wake region", make_lwfa_mr);
  reg.add("lwfa_downramp", "LWFA with density-downramp injection", make_lwfa_downramp);
  reg.add("lwfa_ionization", "LWFA with dopant-column ionization injection",
          make_lwfa_ionization);
  reg.add("lwfa_two_stage", "two-stage LWFA chain: injector jet + accelerator jet",
          make_lwfa_two_stage);
  reg.add("boosted_lwfa", "LWFA stage in a gamma=2 Lorentz-boosted frame",
          [] { return make_boosted_lwfa(2.0); });
  reg.add("boosted_lwfa_g4", "LWFA stage in a gamma=4 Lorentz-boosted frame",
          [] { return make_boosted_lwfa(4.0); });
  reg.add("plasma_mirror", "oblique-incidence overdense plasma mirror (injection stage)",
          make_plasma_mirror);
  reg.add("hybrid_target_mr", "hybrid solid-gas target with MR patch (paper science case)",
          make_hybrid_target_mr);
  reg.add("thin_foil_ion", "thin-foil TNSA-like ion acceleration with contaminant layer",
          make_thin_foil_ion);
}

} // namespace mrpic::scenario
