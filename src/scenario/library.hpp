#pragma once

// The built-in scenario library: factory functions for every registered
// workload. register_builtin_scenarios (registry.hpp) wires these under
// their canonical names; the parameterized factories are additionally
// exposed here so examples can build off-registry variants (e.g.
// boosted_frame --gamma G).

#include "src/scenario/scenario_spec.hpp"

namespace mrpic::scenario {

// Baselines (the workload of the paper's scaling benchmarks).
ScenarioSpec make_quickstart();           // uniform thermal periodic box, FDTD
ScenarioSpec make_uniform_psatd();        // same box on the spectral solver

// LWFA family (paper Fig. 1a acceleration stage + injection variants).
ScenarioSpec make_lwfa();                 // gas-jet LWFA, self-injection
ScenarioSpec make_lwfa_mr();              // + ratio-2 MR patch over the wake
ScenarioSpec make_lwfa_downramp();        // density-downramp injection
ScenarioSpec make_lwfa_ionization();      // dopant-column ionization injection
ScenarioSpec make_lwfa_two_stage();       // injector jet + accelerator jet chain

// Lorentz-boosted frame (paper Table I "Boosted frame", Sec. VIII.B).
ScenarioSpec make_boosted_lwfa(Real gamma_boost);

// Solid targets (paper Fig. 1b injection stage + science case).
ScenarioSpec make_plasma_mirror();        // oblique-incidence overdense mirror
ScenarioSpec make_hybrid_target_mr();     // hybrid solid-gas target + MR patch
ScenarioSpec make_thin_foil_ion();        // thin-foil TNSA-like ion acceleration

} // namespace mrpic::scenario
