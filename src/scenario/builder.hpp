#pragma once

// build_simulation: assemble a live core::Simulation<2> from a ScenarioSpec.
// One code path replaces the duplicated construct/add_species/add_laser/
// enable_mr_patch/set_moving_window/init blocks of the example drivers; a
// spec-built simulation is bit-identical to the equivalent hand-rolled setup
// (guarded by the ScenarioEquivalence ctest).

#include <memory>

#include "src/scenario/scenario_spec.hpp"

namespace mrpic::scenario {

struct BuildOptions {
  bool no_mr = false; // strip the MR patch (the --no-mr flag)
  bool init = true;   // call init() and apply species drifts; false lets the
                      // caller enable pre-init observability first
};

// Fold the cadences into the SimulationConfig (sort -> sort_interval,
// rebalance -> dynamic_lb/lb_interval) and return the effective config.
core::SimulationConfig<2> effective_sim_config(const ScenarioSpec& spec);

// Construct + register species/lasers/patch/window (+ init and drifts unless
// opts.init is false).
std::unique_ptr<core::Simulation<2>> build_simulation(const ScenarioSpec& spec,
                                                      const BuildOptions& opts = {});

// Apply the spec's per-species initial drifts to the loaded particles (a
// no-op for specs without drifting species). Called by build_simulation
// after init; exposed for callers that build with opts.init = false.
void apply_species_drifts(core::Simulation<2>& sim, const ScenarioSpec& spec);

// Stable hex digest (FNV-1a) over the spec's physics-defining fields —
// domain, numerics, species/laser/patch/window/boost parameters, cadences.
// Two runs with the same digest ran the same workload; the run manifest
// records it so a campaign can group runs by spec, not just by name.
std::string spec_digest(const ScenarioSpec& spec);

} // namespace mrpic::scenario
