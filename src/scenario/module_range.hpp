#pragma once

// ModuleRange: the cadence primitive of the scenario model (the shape Pigeon
// uses for its sort/export/checkpoint/rebalance module scheduling). A module
// is "due" on step n when it is enabled, the step has reached `start`, and
// (n - start) is a multiple of `every`. A disabled range (or every <= 0)
// is never due, which is how a scenario switches a module off while keeping
// its configuration around for a later override.

#include <cstdint>

namespace mrpic::scenario {

struct ModuleRange {
  bool enabled = true;
  std::int64_t start = 0; // first step on which the module may fire
  std::int64_t every = 1; // period in steps (<= 0 disables)

  bool due(std::int64_t step) const {
    return enabled && every > 0 && step >= start && (step - start) % every == 0;
  }
};

} // namespace mrpic::scenario
