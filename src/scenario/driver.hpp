#pragma once

// The generic scenario driver behind the `mrpic_run` binary: one run
// lifecycle (build spec -> enable observability per flags -> step loop with
// ModuleRange cadences -> reduced diagnostics + perf report artifacts) for
// every registered workload. Examples that used to hand-roll this loop call
// run_scenario()/run_scenario_main() instead.
//
//   mrpic_run --list
//   mrpic_run --scenario <name> [--steps N] [--outdir DIR] [--health]
//             [--insitu] [--memory] [--node-budget-gb G] [--kernel-obs]
//             [--no-mr] [--run-id ID] [--heartbeat N] [t_end_fs]
//
// Every run additionally emits campaign telemetry into the outdir: a
// run.json manifest (obs::RunContext, finalized atomically at exit with
// status completed/aborted/failed), an atomically-rewritten progress.json
// heartbeat with EWMA step rate + ETA, and a unified <pfx>_events.jsonl
// event timeline (health alerts, resil/checkpoint events, rebalances, run
// lifecycle). obs::campaign / the campaign_report CLI aggregate these
// across a directory of runs.

#include <string>

#include "src/diag/output_dir.hpp"
#include "src/scenario/scenario_spec.hpp"

namespace mrpic::scenario {

struct RunOptions {
  std::string scenario;      // registry name (empty + !list = usage error)
  bool list = false;         // print the registry and exit
  std::int64_t steps = 0;    // step-count limit (0 = run to t_end)
  double t_end_fs = 0;       // end time override [fs] (0 = spec default)
  bool health = false;       // invariant ledger + watchdog (src/health)
  bool insitu = false;       // physics registry + streaming (src/insitu)
  bool memory = false;       // byte ledger + per-rank model (src/obs/memory)
  bool kernel_obs = false;   // kernel-grain probes + "Kernel headroom" section
  bool no_mr = false;        // strip the spec's MR patch
  double node_budget_gb = 0; // OOM headroom budget; implies memory
  // Campaign telemetry (run manifest + event timeline are always on).
  std::string run_id;        // manifest run id ("" = generate one)
  int heartbeat = 5;         // progress.json rewrite cadence in steps (0 = off)
};

// Print the mrpic_run usage text to stderr.
void print_usage(const char* prog);

// Execute one scenario run end to end. Artifacts land in `out` under
// spec.output_prefix. Returns the process exit code (0 = completed,
// 1 = aborted by a health watchdog alert, 3 = failed on an unexpected
// exception); run.json records the matching status either way.
int run_scenario(const ScenarioSpec& spec, const RunOptions& opt,
                 const diag::OutputDir& out);

// Full driver main: parse argv (including --outdir via diag::OutputDir),
// handle --list, look up the scenario and run it. When `forced_scenario`
// is non-null it preselects the scenario (the quickstart shim);
// --scenario still overrides it.
int run_scenario_main(int argc, char** argv, const char* forced_scenario = nullptr);

} // namespace mrpic::scenario
