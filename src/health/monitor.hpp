#pragma once

// health::HealthMonitor — the runtime seam between the invariant ledger and
// the rest of the observability/resilience machinery. core::Simulation owns
// one (enable_health), assembles a LedgerSample at the configured cadence
// and hands it to record(), which
//
//  - appends the sample to the (bounded) ledger history,
//  - publishes every ledger quantity as a health_* gauge so the series
//    lands in the obs::MetricsRegistry JSONL alongside the perf metrics,
//  - runs the Watchdog and logs each alert — to stderr, to the alert
//    callback, and (when alerts_path is set) appended + flushed to an
//    alerts JSONL file immediately, so the terminal alert of a dying run is
//    already on disk before any abort unwinds,
//  - latches the requested actions: checkpoint_requested() is consumed by
//    the Simulation to arm resil::CheckpointPolicy::request_now();
//    abort_requested() makes the Simulation flush() every registered
//    telemetry sink and throw health::AbortError.
//
// record() and the snapshot accessors are mutex-guarded so probes can be
// hammered from concurrent drivers (the TSan suite does); the by-reference
// accessors are for single-threaded post-run inspection.

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/health/watchdog.hpp"
#include "src/obs/metrics.hpp"

namespace mrpic::obs {
class EventLog;
}

namespace mrpic::health {

struct MonitorConfig {
  // Ledger sampling cadence in steps (fires when step % interval == 0).
  int ledger_interval = 1;
  // NaN/Inf field-scan cadence (0 = never). Scans also record a sample.
  int nan_interval = 1;
  // Gauss/continuity residual cadence (0 = never): the expensive probe —
  // it deposits charge on every level and copies the currents.
  int residual_interval = 0;
  // Ledger rows kept in memory (0 = unbounded).
  std::size_t history_limit = 4096;
  // When set, every alert is appended to this JSONL file and flushed as it
  // is raised (durable across aborts/crashes).
  std::string alerts_path;
  // Echo alerts to stderr (on by default: a dying run should say why).
  bool log_to_stderr = true;
  WatchdogConfig watchdog;
};

// Thrown by Simulation::step() when an alert with the abort action fired;
// telemetry has been flushed by then.
class AbortError : public std::runtime_error {
public:
  explicit AbortError(Alert alert);
  const Alert& alert() const { return m_alert; }

private:
  Alert m_alert;
};

class HealthMonitor {
public:
  explicit HealthMonitor(MonitorConfig cfg = {});

  const MonitorConfig& config() const { return m_cfg; }

  // --- cadence ------------------------------------------------------------
  static bool due(std::int64_t step, int interval) {
    return interval > 0 && step % interval == 0;
  }
  bool ledger_due(std::int64_t step) const { return due(step, m_cfg.ledger_interval); }
  bool nan_due(std::int64_t step) const { return due(step, m_cfg.nan_interval); }
  bool residual_due(std::int64_t step) const { return due(step, m_cfg.residual_interval); }
  bool sample_due(std::int64_t step) const {
    return ledger_due(step) || nan_due(step) || residual_due(step);
  }

  // --- recording ----------------------------------------------------------
  // Ingest one sample: fills s.energy_drift_rate from the previous sample,
  // publishes gauges/counters, evaluates the watchdog, logs alerts, latches
  // actions. Returns the alerts raised by this sample.
  std::vector<Alert> record(LedgerSample s);

  // Metrics sink for the health_* gauges and counters (nullptr = none).
  void set_metrics(obs::MetricsRegistry* m);
  // Invoked for every alert, after it is logged.
  void set_alert_callback(std::function<void(const Alert&)> cb);
  // Unified event timeline: every alert also publishes a "health" event
  // with the matching severity (non-owning; nullptr = off).
  void set_event_log(obs::EventLog* log);

  // --- actions ------------------------------------------------------------
  // True once any recorded alert requested a checkpoint; reading consumes
  // the latch (the caller arms the checkpoint policy exactly once).
  bool consume_checkpoint_request();
  bool abort_requested() const;
  // The alert that requested the abort (meaningful when abort_requested()).
  Alert abort_alert() const;

  // --- flush-on-abort -----------------------------------------------------
  // Sinks run (registration order) by flush(): e.g. metrics JSONL + Chrome
  // trace writers. Simulation::step() calls flush() before throwing
  // AbortError, so the telemetry of the dying step is on disk.
  void add_flush_sink(std::function<void()> sink);
  void flush();

  // --- inspection ---------------------------------------------------------
  // Single-threaded accessors (post-run).
  const std::deque<LedgerSample>& history() const { return m_history; }
  const std::vector<Alert>& alerts() const { return m_alerts; }
  // Thread-safe copies (concurrent drivers / TSan suite).
  std::deque<LedgerSample> snapshot_history() const;
  std::vector<Alert> snapshot_alerts() const;
  // Total samples ever recorded (not capped by history_limit).
  std::int64_t num_samples() const;
  std::int64_t num_alerts() const;
  std::int64_t num_alerts(Severity s) const;

  // Full ledger history / alert log as JSONL (one object per line).
  bool write_ledger_jsonl(const std::string& path) const;
  bool write_alerts_jsonl(const std::string& path) const;

private:
  void publish(const LedgerSample& s);
  void log_alert(const Alert& a);

  MonitorConfig m_cfg;
  Watchdog m_watchdog;
  obs::MetricsRegistry* m_metrics = nullptr;
  obs::EventLog* m_event_log = nullptr;
  std::function<void(const Alert&)> m_alert_cb;
  std::vector<std::function<void()>> m_flush_sinks;

  mutable std::mutex m_mu;
  std::deque<LedgerSample> m_history;
  std::int64_t m_total_samples = 0;
  std::vector<Alert> m_alerts;
  bool m_checkpoint_latch = false;
  bool m_abort = false;
  Alert m_abort_alert;
  bool m_alerts_file_started = false;  // truncate on first append
};

} // namespace mrpic::health
