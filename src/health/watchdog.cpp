#include "src/health/watchdog.hpp"

#include <cmath>
#include <sstream>

#include "src/obs/json.hpp"

namespace mrpic::health {

const char* to_string(Severity s) {
  switch (s) {
    case Severity::Info: return "info";
    case Severity::Warn: return "warn";
    case Severity::Critical: return "critical";
  }
  return "?";
}

void write_alert(const Alert& a, std::ostream& os) {
  obs::json::Writer w(os);
  w.begin_object();
  w.field("step", a.step);
  w.field("severity", to_string(a.severity));
  w.field("quantity", a.quantity);
  w.field("value", a.value);
  w.field("bound", a.bound);
  w.field("checkpoint", a.checkpoint);
  w.field("abort", a.abort);
  w.field("message", a.message);
  w.end_object();
}

double EwmaDetector::update(double v) {
  if (!std::isfinite(v)) { return std::numeric_limits<double>::quiet_NaN(); }
  double z = std::numeric_limits<double>::quiet_NaN();
  if (m_n >= m_warmup) {
    // Variance floor: a perfectly constant warm-up must not turn round-off
    // jitter into infinite z-scores.
    const double floor = 1e-24 * (m_mean * m_mean) + 1e-300;
    z = (v - m_mean) / std::sqrt(std::max(m_var, floor));
  }
  // Standard EWMA mean/variance update.
  const double delta = v - m_mean;
  m_mean += m_alpha * delta;
  m_var = (1 - m_alpha) * (m_var + m_alpha * delta * delta);
  ++m_n;
  return z;
}

Watchdog::Watchdog(WatchdogConfig cfg) : m_cfg(std::move(cfg)) {
  m_detectors.reserve(m_cfg.drifts.size());
  for (const auto& d : m_cfg.drifts) { m_detectors.emplace_back(d.alpha, d.warmup); }
}

void Watchdog::reset() {
  m_detectors.clear();
  for (const auto& d : m_cfg.drifts) { m_detectors.emplace_back(d.alpha, d.warmup); }
  m_active.clear();
}

std::vector<Alert> Watchdog::evaluate(const LedgerSample& s) {
  std::vector<Alert> out;
  std::set<std::string> firing;

  const auto emit = [&](std::string key, Alert a) {
    firing.insert(key);
    if (m_cfg.dedup && m_active.count(key) > 0) { return; }  // still firing
    out.push_back(std::move(a));
  };

  // 1. NaN/Inf scan result (only when the sample ran the scan).
  if (s.nan_cells > 0) {
    Alert a;
    a.step = s.step;
    a.severity = m_cfg.nan_severity;
    a.quantity = s.nan_field.empty() ? "nan" : "nan:" + s.nan_field;
    a.value = static_cast<double>(s.nan_cells);
    a.bound = 0;
    a.checkpoint = m_cfg.nan_action.checkpoint;
    a.abort = m_cfg.nan_action.abort;
    std::ostringstream msg;
    msg << s.nan_cells << " non-finite cell(s) in " << (s.nan_field.empty() ? "fields" : s.nan_field);
    a.message = msg.str();
    emit("nan", std::move(a));
  }

  // 2. Absolute bounds.
  for (const auto& r : m_cfg.bounds) {
    const double v = s.value(r.quantity);
    if (!std::isfinite(v)) { continue; }
    if (v >= r.lo && v <= r.hi) { continue; }
    Alert a;
    a.step = s.step;
    a.severity = r.severity;
    a.quantity = r.quantity;
    a.value = v;
    a.bound = v < r.lo ? r.lo : r.hi;
    a.checkpoint = r.action.checkpoint;
    a.abort = r.action.abort;
    std::ostringstream msg;
    msg << r.quantity << " = " << v << " outside [" << r.lo << ", " << r.hi << "]";
    a.message = msg.str();
    emit("bound:" + r.quantity, std::move(a));
  }

  // 3. EWMA drift anomalies.
  for (std::size_t i = 0; i < m_cfg.drifts.size(); ++i) {
    const auto& r = m_cfg.drifts[i];
    const double v = s.value(r.quantity);
    const double z = m_detectors[i].update(v);
    if (!std::isfinite(z) || std::abs(z) <= r.z_threshold) { continue; }
    Alert a;
    a.step = s.step;
    a.severity = r.severity;
    a.quantity = r.quantity;
    a.value = v;
    a.bound = r.z_threshold;
    a.checkpoint = r.action.checkpoint;
    a.abort = r.action.abort;
    std::ostringstream msg;
    msg << r.quantity << " = " << v << " drifted |z| = " << std::abs(z) << " > "
        << r.z_threshold << " (EWMA mean " << m_detectors[i].mean() << ")";
    a.message = msg.str();
    emit("drift:" + r.quantity, std::move(a));
  }

  m_active.swap(firing);
  return out;
}

} // namespace mrpic::health
