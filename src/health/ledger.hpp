#pragma once

// health::LedgerSample — one row of the invariant ledger: the conserved (or
// slowly-varying) physics quantities of a PIC step, sampled in-situ at a
// configurable cadence (the paper's benchmark protocol runs with "light
// self-diagnostics" enabled; WarpX ships the same idea as reduced
// diagnostics). The sample is pure data with a by-name lookup so watchdog
// rules can reference any ledger quantity; core::Simulation assembles it,
// health::HealthMonitor records it and publishes each field as a gauge in
// the obs metrics JSONL.
//
// Also hosts the NaN/Inf field scan: count_nonfinite() walks the *valid*
// regions of a MultiFab (ghosts legitimately hold stale data mid-step), the
// primitive behind the watchdog's stability check.

#include <cmath>
#include <cstdint>
#include <limits>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "src/amr/multifab.hpp"

namespace mrpic::health {

// Per-species slice of one ledger sample.
struct SpeciesSample {
  std::string name;
  std::int64_t level0 = 0;     // macroparticles on the coarse level
  std::int64_t patch = 0;      // macroparticles in the MR patch container
  double kinetic_J = 0;        // relativistic kinetic energy [J]
  double charge_C = 0;         // total macro-charge q*w [C]
  double max_gamma = 1;        // largest Lorentz factor (1 when empty)
};

// One invariant-ledger row. Residuals are normalized to the natural scale
// of their equation (continuity: max|rho|/dt; see pic_step.ipp); fields not
// probed this sample stay NaN and are skipped by rules and gauges.
struct LedgerSample {
  std::int64_t step = -1;
  double time = 0;

  // Energy accounting [J].
  double field_energy_J = 0;    // level-0 E/B energy
  double kinetic_energy_J = 0;  // all species, all levels
  double total_energy_J() const { return field_energy_J + kinetic_energy_J; }
  // Relative total-energy drift rate [1/s] vs the previous sample (filled by
  // the monitor; NaN for the first sample).
  double energy_drift_rate = std::numeric_limits<double>::quiet_NaN();

  // Charge / particle bookkeeping.
  double total_charge_C = 0;
  std::int64_t num_particles = 0;
  std::int64_t escaped = 0;  // cumulative: left the domain through boundaries
  std::int64_t swept = 0;    // cumulative: dropped at the moving-window tail
  std::vector<SpeciesSample> species;

  // Stability / numerics.
  double max_gamma = 1;
  double cfl_margin = 0;  // 1 - dt / dt_CFL(finest level)
  double step_wall_s = std::numeric_limits<double>::quiet_NaN();  // previous step

  // Field-equation residuals (NaN = not probed this sample).
  double gauss_residual = std::numeric_limits<double>::quiet_NaN();
  double continuity_residual = std::numeric_limits<double>::quiet_NaN();
  double gauss_residual_fine = std::numeric_limits<double>::quiet_NaN();
  double continuity_residual_fine = std::numeric_limits<double>::quiet_NaN();

  // NaN/Inf scan over field valid regions (-1 = not scanned this sample).
  std::int64_t nan_cells = -1;
  std::string nan_field;  // first offending field ("E", "B", "J", "fine_E", ...)

  // Process-wide resident bytes from the obs::MemoryLedger (NaN when memory
  // observability is off) — the hook for OOM guard-rail BoundRules: a
  // Critical rule with checkpoint+abort actions on this quantity saves state
  // and stops the run before a node-budget overrun becomes a real OOM kill.
  double mem_total_bytes = std::numeric_limits<double>::quiet_NaN();

  // By-name lookup for watchdog rules; NaN for unknown names or unprobed
  // quantities (rules skip NaN values).
  double value(std::string_view quantity) const;
};

// Quantity names value() understands, for docs/validation.
const std::vector<std::string>& ledger_quantities();

// One {"step":...,...} JSON object per sample (no trailing newline).
void write_sample(const LedgerSample& s, std::ostream& os);

// Count non-finite values over the valid region of every fab, all
// components. Ghost cells are intentionally excluded.
template <int DIM>
std::int64_t count_nonfinite(const mrpic::MultiFab<DIM>& mf);

extern template std::int64_t count_nonfinite<2>(const mrpic::MultiFab<2>&);
extern template std::int64_t count_nonfinite<3>(const mrpic::MultiFab<3>&);

} // namespace mrpic::health
