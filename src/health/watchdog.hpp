#pragma once

// health::Watchdog — rule evaluation over the invariant ledger. Three rule
// families, each producing structured Alert records:
//
//  - NaN/Inf: any non-finite cell found by the field scan is an alert at
//    nan_severity with nan_action (default: checkpoint-now, then abort —
//    at exascale a silent NaN wastes a full allocation; save state and die
//    loudly instead).
//  - BoundRule: absolute bounds on a ledger quantity; fires when the value
//    leaves [lo, hi].
//  - DriftRule: EWMA z-score anomaly detection on a quantity (energy-drift
//    rate, step wall time, ...). The detector keeps exponentially-weighted
//    mean/variance and alerts once |value - mean| exceeds z_threshold
//    standard deviations, after a warm-up of `warmup` samples.
//
// Alerts carry the requested actions (warn is implicit: every alert is
// logged and counted); the monitor/Simulation layer executes them. An alert
// that keeps firing on consecutive evaluations is deduplicated: emitted
// once when it starts, re-armed only after the condition clears.

#include <cstdint>
#include <limits>
#include <map>
#include <ostream>
#include <set>
#include <string>
#include <vector>

#include "src/health/ledger.hpp"

namespace mrpic::health {

enum class Severity { Info, Warn, Critical };

const char* to_string(Severity s);

// What the run should do about an alert (logging/metrics always happen).
struct ActionSpec {
  bool checkpoint = false;  // write a checkpoint immediately (resil policy)
  bool abort = false;       // flush telemetry and stop the run cleanly
};

struct Alert {
  std::int64_t step = -1;
  Severity severity = Severity::Warn;
  std::string quantity;  // ledger quantity (or "nan:<field>")
  double value = 0;      // observed value
  double bound = 0;      // violated bound / z-threshold
  bool checkpoint = false;
  bool abort = false;
  std::string message;
};

// One {"step":...,"severity":...,...} JSON object (no trailing newline).
void write_alert(const Alert& a, std::ostream& os);

struct BoundRule {
  std::string quantity;
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();
  Severity severity = Severity::Warn;
  ActionSpec action{};
};

struct DriftRule {
  std::string quantity;
  double z_threshold = 6.0;
  double alpha = 0.1;  // EWMA smoothing factor (1 = newest sample only)
  int warmup = 16;     // samples absorbed before z-scores are evaluated
  Severity severity = Severity::Warn;
  ActionSpec action{};
};

struct WatchdogConfig {
  std::vector<BoundRule> bounds;
  std::vector<DriftRule> drifts;
  Severity nan_severity = Severity::Critical;
  ActionSpec nan_action{/*checkpoint=*/true, /*abort=*/true};
  bool dedup = true;  // suppress repeats of a still-firing alert
};

// EWMA mean/variance z-score detector (one quantity). Exposed for direct
// testing; the watchdog owns one per DriftRule.
class EwmaDetector {
public:
  EwmaDetector(double alpha, int warmup) : m_alpha(alpha), m_warmup(warmup) {}

  // Feed one value; returns the z-score against the *pre-update* statistics
  // (NaN during warm-up or for non-finite input, which is not absorbed).
  double update(double v);

  int samples() const { return m_n; }
  double mean() const { return m_mean; }
  double variance() const { return m_var; }
  bool warmed_up() const { return m_n >= m_warmup; }

private:
  double m_alpha;
  int m_warmup;
  int m_n = 0;
  double m_mean = 0;
  double m_var = 0;
};

class Watchdog {
public:
  explicit Watchdog(WatchdogConfig cfg = {});

  const WatchdogConfig& config() const { return m_cfg; }

  // Evaluate every rule against one ledger sample, updating EWMA and
  // deduplication state. Quantities the sample did not probe (NaN) are
  // skipped by bound/drift rules.
  std::vector<Alert> evaluate(const LedgerSample& s);

  // Forget EWMA and dedup state (e.g. after a rollback/restart).
  void reset();

private:
  WatchdogConfig m_cfg;
  std::vector<EwmaDetector> m_detectors;  // parallel to m_cfg.drifts
  std::set<std::string> m_active;         // dedup keys firing last evaluation
};

} // namespace mrpic::health
