#include "src/health/monitor.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "src/obs/event_log.hpp"

namespace mrpic::health {
namespace {

obs::EventSeverity event_severity(Severity s) {
  switch (s) {
    case Severity::Info: return obs::EventSeverity::Info;
    case Severity::Warn: return obs::EventSeverity::Warn;
    case Severity::Critical: return obs::EventSeverity::Critical;
  }
  return obs::EventSeverity::Warn;
}

} // namespace

AbortError::AbortError(Alert alert)
    : std::runtime_error("health watchdog abort at step " + std::to_string(alert.step) +
                         ": " + alert.message),
      m_alert(std::move(alert)) {}

HealthMonitor::HealthMonitor(MonitorConfig cfg)
    : m_cfg(std::move(cfg)), m_watchdog(m_cfg.watchdog) {}

void HealthMonitor::set_metrics(obs::MetricsRegistry* m) { m_metrics = m; }

void HealthMonitor::set_alert_callback(std::function<void(const Alert&)> cb) {
  m_alert_cb = std::move(cb);
}

void HealthMonitor::set_event_log(obs::EventLog* log) { m_event_log = log; }

void HealthMonitor::add_flush_sink(std::function<void()> sink) {
  m_flush_sinks.push_back(std::move(sink));
}

std::vector<Alert> HealthMonitor::record(LedgerSample s) {
  std::vector<Alert> alerts;
  {
    std::lock_guard<std::mutex> lock(m_mu);

    // Relative total-energy drift rate vs the previous sample [1/s].
    if (!m_history.empty()) {
      const auto& prev = m_history.back();
      const double dt = s.time - prev.time;
      const double scale = std::max(std::abs(prev.total_energy_J()), 1e-300);
      if (dt > 0) {
        s.energy_drift_rate = (s.total_energy_J() - prev.total_energy_J()) / (scale * dt);
      }
    }

    publish(s);
    alerts = m_watchdog.evaluate(s);
    m_history.push_back(std::move(s));
    ++m_total_samples;
    if (m_cfg.history_limit > 0) {
      while (m_history.size() > m_cfg.history_limit) { m_history.pop_front(); }
    }

    for (const auto& a : alerts) {
      m_alerts.push_back(a);
      if (a.checkpoint) { m_checkpoint_latch = true; }
      if (a.abort && !m_abort) {
        m_abort = true;
        m_abort_alert = a;
      }
      log_alert(a);
    }
    if (m_metrics != nullptr && !alerts.empty()) {
      m_metrics->counter("health_alerts").add(static_cast<std::int64_t>(alerts.size()));
      for (const auto& a : alerts) {
        if (a.severity == Severity::Critical) {
          m_metrics->counter("health_alerts_critical").inc();
        }
      }
    }
  }
  for (const auto& a : alerts) {
    if (m_alert_cb) { m_alert_cb(a); }
  }
  return alerts;
}

void HealthMonitor::publish(const LedgerSample& s) {
  if (m_metrics == nullptr) { return; }
  m_metrics->counter("health_probes").inc();
  for (const auto& q : ledger_quantities()) {
    const double v = s.value(q);
    // Unprobed quantities stay at their previous gauge value; NaN field
    // energies (a blown-up run) must still be visible, so only the probe
    // sentinels are skipped, not computed non-finite values.
    if (q == "nan_cells" && s.nan_cells < 0) { continue; }
    if ((q == "gauss_residual" || q == "continuity_residual" ||
         q == "gauss_residual_fine" || q == "continuity_residual_fine" ||
         q == "energy_drift_rate" || q == "step_wall_s") &&
        !std::isfinite(v)) {
      continue;
    }
    m_metrics->gauge("health_" + q).set(v);
  }
}

void HealthMonitor::log_alert(const Alert& a) {
  if (m_cfg.log_to_stderr) {
    std::fprintf(stderr, "[health] %s step %lld: %s%s%s\n", to_string(a.severity),
                 static_cast<long long>(a.step), a.message.c_str(),
                 a.checkpoint ? " [checkpoint-now]" : "", a.abort ? " [abort]" : "");
  }
  if (!m_cfg.alerts_path.empty()) {
    // Append + close per alert: durable even if the process dies next step.
    const auto mode = m_alerts_file_started ? std::ios::app : std::ios::trunc;
    std::ofstream os(m_cfg.alerts_path, mode);
    if (os) {
      write_alert(a, os);
      os << '\n';
      os.flush();
      m_alerts_file_started = true;
    }
  }
  if (m_event_log != nullptr) {
    m_event_log->publish("health", "alert", event_severity(a.severity), a.step,
                         a.message,
                         {{"value", a.value},
                          {"bound", a.bound},
                          {"checkpoint", a.checkpoint ? 1.0 : 0.0},
                          {"abort", a.abort ? 1.0 : 0.0}});
  }
}

bool HealthMonitor::consume_checkpoint_request() {
  std::lock_guard<std::mutex> lock(m_mu);
  const bool r = m_checkpoint_latch;
  m_checkpoint_latch = false;
  return r;
}

bool HealthMonitor::abort_requested() const {
  std::lock_guard<std::mutex> lock(m_mu);
  return m_abort;
}

Alert HealthMonitor::abort_alert() const {
  std::lock_guard<std::mutex> lock(m_mu);
  return m_abort_alert;
}

void HealthMonitor::flush() {
  for (const auto& sink : m_flush_sinks) { sink(); }
}

std::deque<LedgerSample> HealthMonitor::snapshot_history() const {
  std::lock_guard<std::mutex> lock(m_mu);
  return m_history;
}

std::vector<Alert> HealthMonitor::snapshot_alerts() const {
  std::lock_guard<std::mutex> lock(m_mu);
  return m_alerts;
}

std::int64_t HealthMonitor::num_samples() const {
  std::lock_guard<std::mutex> lock(m_mu);
  return m_total_samples;
}

std::int64_t HealthMonitor::num_alerts() const {
  std::lock_guard<std::mutex> lock(m_mu);
  return static_cast<std::int64_t>(m_alerts.size());
}

std::int64_t HealthMonitor::num_alerts(Severity sev) const {
  std::lock_guard<std::mutex> lock(m_mu);
  std::int64_t n = 0;
  for (const auto& a : m_alerts) {
    if (a.severity == sev) { ++n; }
  }
  return n;
}

bool HealthMonitor::write_ledger_jsonl(const std::string& path) const {
  std::lock_guard<std::mutex> lock(m_mu);
  std::ofstream os(path);
  if (!os) { return false; }
  for (const auto& s : m_history) {
    write_sample(s, os);
    os << '\n';
  }
  return static_cast<bool>(os);
}

bool HealthMonitor::write_alerts_jsonl(const std::string& path) const {
  std::lock_guard<std::mutex> lock(m_mu);
  std::ofstream os(path);
  if (!os) { return false; }
  for (const auto& a : m_alerts) {
    write_alert(a, os);
    os << '\n';
  }
  return static_cast<bool>(os);
}

} // namespace mrpic::health
