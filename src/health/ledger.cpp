#include "src/health/ledger.hpp"

#include "src/obs/json.hpp"

namespace mrpic::health {

double LedgerSample::value(std::string_view quantity) const {
  if (quantity == "field_energy_J") { return field_energy_J; }
  if (quantity == "kinetic_energy_J") { return kinetic_energy_J; }
  if (quantity == "total_energy_J") { return total_energy_J(); }
  if (quantity == "energy_drift_rate") { return energy_drift_rate; }
  if (quantity == "total_charge_C") { return total_charge_C; }
  if (quantity == "num_particles") { return static_cast<double>(num_particles); }
  if (quantity == "escaped") { return static_cast<double>(escaped); }
  if (quantity == "swept") { return static_cast<double>(swept); }
  if (quantity == "max_gamma") { return max_gamma; }
  if (quantity == "cfl_margin") { return cfl_margin; }
  if (quantity == "step_wall_s") { return step_wall_s; }
  if (quantity == "gauss_residual") { return gauss_residual; }
  if (quantity == "continuity_residual") { return continuity_residual; }
  if (quantity == "gauss_residual_fine") { return gauss_residual_fine; }
  if (quantity == "continuity_residual_fine") { return continuity_residual_fine; }
  if (quantity == "nan_cells") {
    return nan_cells < 0 ? std::numeric_limits<double>::quiet_NaN()
                         : static_cast<double>(nan_cells);
  }
  if (quantity == "mem_total_bytes") { return mem_total_bytes; }
  return std::numeric_limits<double>::quiet_NaN();
}

const std::vector<std::string>& ledger_quantities() {
  static const std::vector<std::string> names = {
      "field_energy_J",    "kinetic_energy_J",     "total_energy_J",
      "energy_drift_rate", "total_charge_C",       "num_particles",
      "escaped",           "swept",                "max_gamma",
      "cfl_margin",        "step_wall_s",          "gauss_residual",
      "continuity_residual", "gauss_residual_fine", "continuity_residual_fine",
      "nan_cells",         "mem_total_bytes"};
  return names;
}

void write_sample(const LedgerSample& s, std::ostream& os) {
  obs::json::Writer w(os);
  w.begin_object();
  w.field("step", s.step);
  w.field("time", s.time);
  for (const auto& q : ledger_quantities()) {
    if (q == "step" || q == "time") { continue; }
    w.field(q, s.value(q));  // non-finite values render as null
  }
  if (!s.nan_field.empty()) { w.field("nan_field", s.nan_field); }
  if (!s.species.empty()) {
    w.begin_array("species");
    for (const auto& sp : s.species) {
      w.begin_object();
      w.field("name", sp.name);
      w.field("level0", sp.level0);
      w.field("patch", sp.patch);
      w.field("kinetic_J", sp.kinetic_J);
      w.field("charge_C", sp.charge_C);
      w.field("max_gamma", sp.max_gamma);
      w.end_object();
    }
    w.end_array();
  }
  w.end_object();
}

template <int DIM>
std::int64_t count_nonfinite(const mrpic::MultiFab<DIM>& mf) {
  std::int64_t bad = 0;
  for (int m = 0; m < mf.num_fabs(); ++m) {
    const auto a = mf.const_array(m);
    const auto& box = mf.valid_box(m);
    for (int c = 0; c < mf.num_comp(); ++c) {
      mf.fab(m).for_each_cell(box, [&](const mrpic::IntVect<DIM>& p) {
        Real v;
        if constexpr (DIM == 2) {
          v = a(p[0], p[1], 0, c);
        } else {
          v = a(p[0], p[1], p[2], c);
        }
        if (!std::isfinite(v)) { ++bad; }
      });
    }
  }
  return bad;
}

template std::int64_t count_nonfinite<2>(const mrpic::MultiFab<2>&);
template std::int64_t count_nonfinite<3>(const mrpic::MultiFab<3>&);

} // namespace mrpic::health
