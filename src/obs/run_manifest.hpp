#pragma once

// obs::RunManifest — the identity card of one run (ISSUE 10 tentpole).
// Every mrpic_run / example / bench-driver run gets a run id and writes a
// schema-tagged run.json: scenario name + spec digest, build/machine info,
// the flags it ran with, start/end wall time, final step / simulated time,
// exit status (completed | aborted | failed) and an inventory of the
// trace/metrics/report artifacts it produced. The manifest is written once
// with status "running" at startup and REWRITTEN ATOMICALLY (tmp + rename)
// at exit — including when a health::AbortError unwinds — so an external
// scheduler polling a campaign directory never reads a half-written file
// and can distinguish a clean completion from an abort from a crash (a
// crashed run's manifest stays "running" with a stale heartbeat).
//
// obs::RunContext is the RAII-ish driver around the struct: construct,
// start(), add artifacts as they are written, finalize(status). The
// campaign aggregator (obs::campaign) validates and joins these files.

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/json.hpp"

namespace mrpic::obs {

inline constexpr const char* kRunManifestSchema = "mrpic.run.v1";

// Run exit statuses ("running" is the transient startup state).
inline constexpr const char* kRunStatusRunning = "running";
inline constexpr const char* kRunStatusCompleted = "completed";
inline constexpr const char* kRunStatusAborted = "aborted";
inline constexpr const char* kRunStatusFailed = "failed";

// One produced artifact. `path` is relative to the manifest's directory so
// a campaign directory can be moved/archived wholesale.
struct ArtifactInfo {
  std::string name;  // logical name ("metrics", "events", "trace", ...)
  std::string path;  // relative path (usually just the filename)
  std::int64_t bytes = -1;  // stat'ed size at finalize (-1 = missing)
};

struct RunManifest {
  std::string run_id;
  std::string scenario;     // registry name (or binary name for benches)
  std::string title;
  std::string spec_digest;  // hex digest of the canonical spec serialization
  std::string status = kRunStatusRunning;
  int exit_code = 0;
  std::string reason;       // abort/failure context ("" for completed)

  std::int64_t start_unix = 0;  // wall-clock bounds [s since epoch]
  std::int64_t end_unix = 0;
  double wall_s = 0;            // measured run duration (steady clock)

  std::int64_t steps_done = 0;
  double sim_time_s = 0;
  std::int64_t num_events = 0;  // event-timeline entries
  std::int64_t num_alerts = 0;  // health alerts raised

  std::string build_type;  // "Release"/"Debug" (NDEBUG heuristic)
  std::string compiler;    // compiler id + version

  std::vector<std::string> flags;  // normalized driver options
  std::vector<ArtifactInfo> artifacts;
};

// Process-unique run id: "<scenario>-<unixtime>-<pid>-<counter>".
std::string generate_run_id(const std::string& scenario);

// Fill build_type/compiler from compile-time facts.
void fill_build_info(RunManifest& m);

// File size in bytes, -1 when the file does not exist.
std::int64_t file_size_bytes(const std::string& path);

// Full-document serialization (pretty-free single object).
std::string manifest_json(const RunManifest& m);

// Write tmp + rename so readers never see a torn manifest. Returns false
// when the file cannot be written.
bool write_manifest_atomic(const RunManifest& m, const std::string& path);

// Parse a manifest document; throws std::runtime_error on a missing or
// foreign schema tag (other fields degrade to defaults — reader tolerance).
RunManifest parse_manifest(const json::Value& doc);
RunManifest read_manifest(const std::string& path);  // throws on open/parse

// Structural validation for the campaign aggregator: returns one message
// per problem (empty = valid). Checks schema tag, run id, scenario, a known
// status, coherent step/time counters and the artifact inventory shape.
std::vector<std::string> validate_manifest(const json::Value& doc);

// Driver-side helper owning the manifest lifecycle.
class RunContext {
public:
  // `manifest_path` is where run.json lives; artifact paths added later are
  // stored relative to its directory.
  RunContext(std::string run_id, std::string scenario, std::string manifest_path);

  RunManifest& manifest() { return m_manifest; }
  const RunManifest& manifest() const { return m_manifest; }
  const std::string& path() const { return m_path; }

  // Record an artifact by absolute-or-relative path; the stored inventory
  // path is relative to the manifest directory, bytes stat'ed at finalize.
  void add_artifact(std::string name, const std::string& path);

  // Write the initial "running" manifest.
  bool start();
  // Stamp end time / duration / counters, stat the artifact inventory and
  // atomically rewrite with the final status.
  bool finalize(const std::string& status, int exit_code, std::int64_t steps_done,
                double sim_time_s, const std::string& reason = "");

private:
  RunManifest m_manifest;
  std::string m_path;
  std::string m_dir;  // manifest directory ("" = cwd)
  std::vector<std::string> m_artifact_abs;  // parallel to manifest.artifacts
  std::chrono::steady_clock::time_point m_t0;
};

} // namespace mrpic::obs
