#include "src/obs/perf_report.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <numeric>
#include <ostream>

#include <cmath>

#include "src/health/monitor.hpp"
#include "src/insitu/registry.hpp"
#include "src/obs/json.hpp"
#include "src/obs/profiler.hpp"

namespace mrpic::obs {

namespace {

std::string fmt_us(double seconds) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds * 1e6);
  return std::string(buf) + " us";
}

std::string fmt_pct(double fraction) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f%%", fraction * 100.0);
  return buf;
}

std::string fmt3(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3g", v);
  return buf;
}

// Chain rendering for the Markdown table: long chains (dense halo graphs
// route the path through many ranks) show head ... tail plus the hop count;
// the JSON keeps the full chain.
std::string chain_string(const std::vector<int>& ranks) {
  constexpr std::size_t kHead = 6, kTail = 3;
  std::string s;
  auto append = [&s](int r) {
    if (!s.empty()) { s += " -> "; }
    s += std::to_string(r);
  };
  if (ranks.size() <= kHead + kTail + 1) {
    for (int r : ranks) { append(r); }
  } else {
    for (std::size_t i = 0; i < kHead; ++i) { append(ranks[i]); }
    s += " -> ...";
    for (std::size_t i = ranks.size() - kTail; i < ranks.size(); ++i) { append(ranks[i]); }
    s += " (" + std::to_string(ranks.size()) + " hops)";
  }
  return s.empty() ? "-" : s;
}

int path_final_rank(const analysis::CriticalPath& p) {
  return p.rank_chain.empty() ? -1 : p.rank_chain.back();
}

void write_loss_json(json::Writer& w, const analysis::LossTerms& t) {
  w.begin_object()
      .field("nodes", t.nodes)
      .field("total_s", t.total_s)
      .field("ideal_s", t.ideal_s)
      .field("efficiency", t.efficiency)
      .field("loss", t.loss)
      .field("imbalance", t.imbalance)
      .field("comm", t.comm)
      .field("latency", t.latency)
      .field("resil", t.resil)
      .field("residual", t.residual)
      .field("lambda", t.lambda)
      .field("invariant_gap", t.invariant_gap())
      .field("compute_critical_rank", t.compute_critical_rank)
      .field("comm_critical_rank", t.comm_critical_rank)
      .end_object();
}

} // namespace

std::vector<int> PerfReport::worst_steps() const {
  std::vector<int> order(paths.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [this](int a, int b) {
    return paths[std::size_t(a)].makespan_s > paths[std::size_t(b)].makespan_s;
  });
  return order;
}

HealthSection summarize_health(const health::HealthMonitor& mon, const Profiler& prof) {
  HealthSection h;
  h.enabled = true;
  const auto history = mon.snapshot_history();
  const auto alerts = mon.snapshot_alerts();
  h.samples = static_cast<std::int64_t>(history.size());
  h.alerts = static_cast<std::int64_t>(alerts.size());
  for (const auto& a : alerts) {
    if (a.severity == health::Severity::Critical) { ++h.critical_alerts; }
  }
  if (!alerts.empty()) { h.last_alert = alerts.back().message; }

  const auto totals = prof.flat_totals();
  if (const auto it = totals.find("health"); it != totals.end()) {
    h.probe_s = it->second.inclusive_s;
  }
  if (const auto it = totals.find("step"); it != totals.end()) {
    h.step_s = it->second.inclusive_s;
  }
  h.probe_overhead = h.step_s > 0 ? h.probe_s / h.step_s : 0;

  if (history.size() >= 2) {
    const double e0 = history.front().total_energy_J();
    const double e1 = history.back().total_energy_J();
    h.energy_drift = (e1 - e0) / std::max(std::abs(e0), 1e-300);
  }
  for (const auto& s : history) {
    const auto acc_max = [](double& dst, double v) {
      if (std::isfinite(v) && (!std::isfinite(dst) || v > dst)) { dst = v; }
    };
    acc_max(h.max_gauss_residual, s.gauss_residual);
    acc_max(h.max_gauss_residual, s.gauss_residual_fine);
    acc_max(h.max_continuity_residual, s.continuity_residual);
    acc_max(h.max_continuity_residual, s.continuity_residual_fine);
    if (s.nan_cells > h.nan_cells) { h.nan_cells = s.nan_cells; }
  }
  return h;
}

BeamPhysicsSection summarize_insitu(const insitu::Registry& reg, const Profiler& prof,
                                    const insitu::StreamWriter* stream) {
  BeamPhysicsSection b;
  b.enabled = true;
  b.records = reg.num_records();

  const auto totals = prof.flat_totals();
  if (const auto it = totals.find("insitu"); it != totals.end()) {
    b.probe_s = it->second.inclusive_s;
  }
  if (const auto it = totals.find("step"); it != totals.end()) {
    b.step_s = it->second.inclusive_s;
  }
  b.probe_overhead = b.step_s > 0 ? b.probe_s / b.step_s : 0;

  if (const auto* r = reg.last("beam")) {
    b.emit_ny = r->value("emit_ny_m_rad");
    b.beam_charge_C = r->value("charge_C");
    b.mean_gamma = r->value("mean_gamma");
  }
  if (const auto* r = reg.last("spectrum")) {
    b.peak_energy_J = r->value("peak_energy_J");
    b.energy_spread = r->value("energy_spread");
  }
  if (const auto* r = reg.last("laser")) { b.laser_a0 = r->value("a0"); }
  if (const auto* r = reg.last("wakefield")) { b.wakefield_V_m = r->value("max_Ex_V_m"); }
  if (const auto* r = reg.last("field_energy")) {
    b.field_energy_J = r->value("level0_total_J");
  }
  if (stream != nullptr) {
    b.stream_frames = stream->frames_written();
    b.stream_bytes = stream->bytes_written();
  }
  return b;
}

MemorySection summarize_memory(const MemoryLedger& ledger, const Profiler& prof,
                               const MrSavings* measured, const MrSavings* analytic,
                               const RankRecorder* rec, double budget_bytes) {
  MemorySection m;
  m.enabled = true;
  m.total_bytes = ledger.total_current();
  m.high_water_bytes = ledger.total_high_water();
  m.fields_bytes = ledger.current_prefix("fields");
  m.particles_bytes = ledger.current_prefix("particles");
  m.mr_bytes = ledger.current_prefix("mr");
  m.pml_bytes = ledger.current_prefix("pml");
  m.checkpoint_hw_bytes = ledger.high_water("checkpoint");
  m.insitu_stream_bytes = ledger.current("insitu.stream");
  m.alloc_count = ledger.total_alloc_count();

  const auto totals = prof.flat_totals();
  if (const auto it = totals.find("memory"); it != totals.end()) {
    m.probe_s = it->second.inclusive_s;
  }
  if (const auto it = totals.find("step"); it != totals.end()) {
    m.step_s = it->second.inclusive_s;
  }
  m.probe_overhead = m.step_s > 0 ? m.probe_s / m.step_s : 0;

  if (measured != nullptr && analytic != nullptr) {
    m.measured = *measured;
    m.analytic = *analytic;
    m.has_savings = true;
    if (analytic->factor > 0) {
      m.savings_disagreement =
          std::abs(measured->factor - analytic->factor) / analytic->factor;
    }
  }
  if (rec != nullptr) {
    m.budget_bytes = budget_bytes > 0 ? budget_bytes : 0;
    m.oom = predict_first_oom(*rec, budget_bytes);
  }
  return m;
}

KernelSection summarize_kernels(const KernelProbe& probe, const Profiler& prof,
                                const RankRecorder* rec) {
  KernelSection k;
  k.enabled = true;
  k.machine = probe.machine().name;
  k.dropped_invocations = probe.dropped_invocations();

  const auto aggs = probe.aggregates();
  for (int i = 0; i < kNumKernelKinds; ++i) {
    const auto& agg = aggs[std::size_t(i)];
    k.sampled_invocations += agg.invocations;
    if (agg.invocations == 0) { continue; }
    const auto rp = analysis::roofline_point(
        kernel_kind_name(static_cast<KernelKind>(i)), agg.flops, agg.bytes,
        probe.machine(), agg.time_s);
    KernelSection::KernelRow row;
    row.kernel = rp.kernel;
    row.invocations = agg.invocations;
    row.particles = agg.particles;
    row.time_s = agg.time_s;
    row.flops = agg.flops;
    row.bytes = agg.bytes;
    row.intensity = rp.intensity;
    row.gbyte_s = agg.gbyte_s();
    row.roof_tflops = rp.roof_tflops;
    row.attained_tflops = rp.attained_tflops;
    row.attainment = rp.attainment;
    row.memory_bound = rp.memory_bound;
    k.kernels.push_back(std::move(row));
  }

  k.locality = probe.locality();
  k.locality_tiles = probe.locality_tiles();

  // Overlap headroom: mean per-step phase split of the step-critical rank
  // over the recorder steps that carry phase data.
  if (rec != nullptr) {
    for (const auto& step : rec->steps()) {
      if (step.ranks.empty()) { continue; }
      const RankStepStats* critical = &step.ranks.front();
      for (const auto& rs : step.ranks) {
        if (rs.total_s() > critical->total_s()) { critical = &rs; }
      }
      if (critical->post_s + critical->wait_s <= 0) { continue; }
      k.mean_post_s += critical->post_s;
      k.mean_wait_s += critical->wait_s;
      k.mean_interior_compute_s += critical->interior_compute_s;
      k.mean_overlap_headroom_s += critical->overlap_headroom_s;
      ++k.overlap_steps;
    }
    if (k.overlap_steps > 0) {
      const auto n = static_cast<double>(k.overlap_steps);
      k.mean_post_s /= n;
      k.mean_wait_s /= n;
      k.mean_interior_compute_s /= n;
      k.mean_overlap_headroom_s /= n;
    }
  }

  k.probe_s = probe.self_time_s();
  const auto totals = prof.flat_totals();
  if (const auto it = totals.find("kernel_obs"); it != totals.end()) {
    k.probe_s += it->second.inclusive_s;
  }
  if (const auto it = totals.find("step"); it != totals.end()) {
    k.step_s = it->second.inclusive_s;
  }
  k.probe_overhead = k.step_s > 0 ? k.probe_s / k.step_s : 0;
  return k;
}

PerfReport build_perf_report(const RankRecorder& rec, const PerfReportOptions& opt) {
  PerfReport report;
  report.title = opt.title;
  report.nranks = rec.nranks();
  report.latency_s = opt.latency_s;
  report.top_steps = opt.top_steps;
  report.paths = analysis::critical_paths(rec);
  report.summary = analysis::summarize(report.paths, rec.nranks());
  report.step_overhead.reserve(rec.steps().size());
  for (const auto& step : rec.steps()) {
    report.step_overhead.push_back(
        analysis::decompose_step_overhead(step, opt.latency_s));
  }
  return report;
}

void write_markdown(const PerfReport& report, std::ostream& os) {
  os << "# " << report.title << "\n\n";
  os << report.nranks << " ranks, " << report.summary.steps
     << " recorded steps, wire latency " << fmt_us(report.latency_s) << ".\n\n";

  // --- aggregate critical-path composition --------------------------------
  const auto& s = report.summary;
  os << "## Critical-path composition (all steps)\n\n";
  if (s.steps == 0 || s.makespan_s <= 0) {
    os << "No recorded steps.\n\n";
  } else {
    os << "| component | seconds | share |\n|---|---:|---:|\n";
    const double T = s.makespan_s;
    os << "| compute | " << fmt3(s.compute_s) << " | " << fmt_pct(s.compute_s / T) << " |\n";
    os << "| halo transfer | " << fmt3(s.transfer_s) << " | " << fmt_pct(s.transfer_s / T) << " |\n";
    os << "| message latency | " << fmt3(s.latency_s) << " | " << fmt_pct(s.latency_s / T) << " |\n";
    os << "| resil (retries) | " << fmt3(s.retry_s) << " | " << fmt_pct(s.retry_s / T) << " |\n";
    os << "| **total makespan** | **" << fmt3(T) << "** | 100% |\n\n";
  }

  // --- stragglers ---------------------------------------------------------
  os << "## Straggler ranks\n\n";
  const auto stragglers = s.stragglers();
  if (stragglers.empty()) {
    os << "No per-rank critical-path evidence.\n\n";
  } else {
    os << "Ranks by time spent on the critical path:\n\n";
    os << "| rank | critical seconds | path finishes here |\n|---:|---:|---:|\n";
    const int listed = std::min<int>(8, int(stragglers.size()));
    for (int i = 0; i < listed; ++i) {
      const int r = stragglers[std::size_t(i)];
      os << "| " << r << " | " << fmt3(s.critical_s_per_rank[std::size_t(r)]) << " | "
         << s.finishes_per_rank[std::size_t(r)] << " |\n";
    }
    os << "\n";
  }

  // --- worst steps --------------------------------------------------------
  const auto order = report.worst_steps();
  const int shown = std::min<int>(report.top_steps, int(order.size()));
  if (shown > 0) {
    os << "## Top " << shown << " steps by critical-path makespan\n\n";
    os << "| step | makespan | compute | transfer | latency | resil | rank chain |\n"
       << "|---:|---:|---:|---:|---:|---:|---|\n";
    for (int i = 0; i < shown; ++i) {
      const auto& p = report.paths[std::size_t(order[std::size_t(i)])];
      os << "| " << p.step << " | " << fmt3(p.makespan_s) << " | " << fmt3(p.compute_s)
         << " | " << fmt3(p.transfer_s) << " | " << fmt3(p.latency_s) << " | "
         << fmt3(p.retry_s) << " | " << chain_string(p.rank_chain) << " |\n";
    }
    os << "\n";
  }

  // --- scaling losses -----------------------------------------------------
  const bool sweep = !report.scaling_losses.empty();
  const auto& losses = sweep ? report.scaling_losses : report.step_overhead;
  if (!losses.empty()) {
    os << (sweep ? "## Scaling-loss decomposition\n\n"
                 : "## Per-step parallel overhead\n\n");
    os << "Each row splits 1 - efficiency into terms that sum to the loss "
          "exactly (invariant gap shown).\n\n";
    os << "| " << (sweep ? "nodes" : "step") << " | efficiency | loss | imbalance | comm "
       << "| latency | resil | residual | gap |\n"
       << "|---:|---:|---:|---:|---:|---:|---:|---:|---:|\n";
    for (std::size_t i = 0; i < losses.size(); ++i) {
      const auto& t = losses[i];
      os << "| " << (sweep ? std::to_string(std::int64_t(t.nodes))
                           : std::to_string(report.paths.size() > i
                                                ? std::int64_t(report.paths[i].step)
                                                : std::int64_t(i)))
         << " | " << fmt_pct(t.efficiency) << " | " << fmt_pct(t.loss) << " | "
         << fmt_pct(t.imbalance) << " | " << fmt_pct(t.comm) << " | "
         << fmt_pct(t.latency) << " | " << fmt_pct(t.resil) << " | "
         << fmt_pct(t.residual) << " | " << fmt3(t.invariant_gap()) << " |\n";
    }
    os << "\n";
  }

  // --- simulation health --------------------------------------------------
  if (report.health.enabled) {
    const auto& h = report.health;
    os << "## Simulation health\n\n";
    os << h.samples << " ledger samples, " << h.alerts << " alerts (" << h.critical_alerts
       << " critical). Probe cost " << fmt3(h.probe_s) << " s of " << fmt3(h.step_s)
       << " s stepped (" << fmt_pct(h.probe_overhead) << " overhead).\n\n";
    os << "| invariant | value |\n|---|---:|\n";
    os << "| relative energy drift | "
       << (std::isfinite(h.energy_drift) ? fmt3(h.energy_drift) : std::string("-")) << " |\n";
    os << "| max Gauss residual | "
       << (std::isfinite(h.max_gauss_residual) ? fmt3(h.max_gauss_residual)
                                               : std::string("-"))
       << " |\n";
    os << "| max continuity residual (normalized) | "
       << (std::isfinite(h.max_continuity_residual) ? fmt3(h.max_continuity_residual)
                                                    : std::string("-"))
       << " |\n";
    os << "| worst NaN scan (cells) | " << h.nan_cells << " |\n\n";
    if (!h.last_alert.empty()) { os << "Last alert: " << h.last_alert << "\n\n"; }
  }

  // --- beam physics -------------------------------------------------------
  if (report.beam.enabled) {
    const auto& b = report.beam;
    os << "## Beam physics\n\n";
    os << b.records << " in-situ records. Probe cost " << fmt3(b.probe_s) << " s of "
       << fmt3(b.step_s) << " s stepped (" << fmt_pct(b.probe_overhead)
       << " overhead).";
    if (b.stream_frames > 0) {
      os << " Streamed " << b.stream_frames << " frames (" << b.stream_bytes
         << " bytes).";
    }
    os << "\n\n";
    const auto row = [&os](const char* name, double v, const char* unit) {
      os << "| " << name << " | " << (std::isfinite(v) ? fmt3(v) : std::string("-"))
         << " " << unit << " |\n";
    };
    os << "| beam metric | value |\n|---|---:|\n";
    row("normalized emittance (y)", b.emit_ny, "m rad");
    row("beam charge", b.beam_charge_C, "C");
    row("mean gamma", b.mean_gamma, "");
    row("spectral peak energy", b.peak_energy_J, "J");
    row("relative FWHM spread", b.energy_spread, "");
    row("laser a0", b.laser_a0, "");
    row("wakefield amplitude", b.wakefield_V_m, "V/m");
    row("level-0 field energy", b.field_energy_J, "J");
    os << "\n";
  }

  // --- memory -------------------------------------------------------------
  if (report.memory.enabled) {
    const auto& m = report.memory;
    os << "## Memory\n\n";
    os << "Live footprint " << format_bytes(double(m.total_bytes)) << " (high water "
       << format_bytes(double(m.high_water_bytes)) << ", " << m.alloc_count
       << " allocations). Probe cost " << fmt3(m.probe_s) << " s of " << fmt3(m.step_s)
       << " s stepped (" << fmt_pct(m.probe_overhead) << " overhead).\n\n";
    os << "| subsystem | bytes |\n|---|---:|\n";
    os << "| level-0 + MR fields | " << format_bytes(double(m.fields_bytes + m.mr_bytes))
       << " |\n";
    os << "| particles | " << format_bytes(double(m.particles_bytes)) << " |\n";
    os << "| MR patch surcharge | " << format_bytes(double(m.mr_bytes)) << " |\n";
    os << "| level-0 PML | " << format_bytes(double(m.pml_bytes)) << " |\n";
    os << "| checkpoint staging (high water) | "
       << format_bytes(double(m.checkpoint_hw_bytes)) << " |\n";
    os << "| in-situ stream buffers | " << format_bytes(double(m.insitu_stream_bytes))
       << " |\n\n";
    if (m.has_savings) {
      os << "MR memory savings vs an equivalent uniform fine grid: measured **"
         << fmt3(m.measured.factor) << "x** ("
         << format_bytes(m.measured.uniform_fine_bytes) << " -> "
         << format_bytes(m.measured.actual_bytes) << "), analytic model "
         << fmt3(m.analytic.factor) << "x";
      if (std::isfinite(m.savings_disagreement)) {
        os << " (disagreement " << fmt_pct(m.savings_disagreement) << ")";
      }
      os << ".\n\n";
    }
    if (m.oom.peak_bytes > 0) {
      os << "Per-rank resident peak " << format_bytes(double(m.oom.peak_bytes))
         << " (rank " << m.oom.peak_rank << ", step " << m.oom.peak_step << ")";
      if (m.budget_bytes > 0) {
        os << " against a " << format_bytes(m.budget_bytes) << " budget: ";
        if (m.oom.predicted) {
          os << "**predicted OOM** first at rank " << m.oom.rank << ", step "
             << m.oom.step;
        } else {
          os << "fits with " << fmt3(m.oom.headroom) << "x headroom";
        }
      }
      os << ".\n\n";
    }
  }

  // --- kernel headroom ----------------------------------------------------
  if (report.kernel.enabled) {
    const auto& k = report.kernel;
    os << "## Kernel headroom";
    if (!k.machine.empty()) { os << " (" << k.machine << ")"; }
    os << "\n\n";
    os << k.sampled_invocations << " sampled kernel invocations";
    if (k.dropped_invocations > 0) {
      os << " (" << k.dropped_invocations << " dropped at capacity)";
    }
    os << ". Probe cost " << fmt3(k.probe_s) << " s of " << fmt3(k.step_s)
       << " s stepped (" << fmt_pct(k.probe_overhead) << " overhead).\n\n";
    if (!k.kernels.empty()) {
      os << "| kernel | invocations | particles | time | GB/s | intensity | "
            "roof TFlop/s | bound | attainment |\n"
         << "|---|---:|---:|---:|---:|---:|---:|---|---:|\n";
      for (const auto& r : k.kernels) {
        os << "| " << r.kernel << " | " << r.invocations << " | " << r.particles
           << " | " << fmt_us(r.time_s) << " | " << fmt3(r.gbyte_s) << " | "
           << fmt3(r.intensity) << " | " << fmt3(r.roof_tflops) << " | "
           << (r.memory_bound ? "memory" : "compute") << " | "
           << (r.time_s > 0 ? fmt_pct(r.attainment) : std::string("-")) << " |\n";
      }
      os << "\n";
    }
    if (k.locality.pairs > 0) {
      const auto& l = k.locality;
      os << "Particle access locality (" << k.locality_tiles << " tile samples, "
         << l.particles << " particles): inversion fraction " << fmt3(l.inversion_fraction)
         << ", mean gather stride " << fmt3(l.mean_stride_cells) << " cells (p99 "
         << fmt3(l.p99_stride_cells) << "), cache-line reuse " << fmt_pct(l.line_reuse)
         << " vs " << fmt_pct(l.sorted_line_reuse)
         << " if cell-sorted -> predicted sort speedup **"
         << fmt3(l.predicted_sort_speedup) << "x**.\n\n";
    }
    if (k.overlap_steps > 0) {
      os << "Halo phase timeline (critical rank, mean over " << k.overlap_steps
         << " steps): post " << fmt_us(k.mean_post_s) << ", wait "
         << fmt_us(k.mean_wait_s) << ", interior compute "
         << fmt_us(k.mean_interior_compute_s) << " -> overlap headroom **"
         << fmt_us(k.mean_overlap_headroom_s) << "** per step (recoverable by "
         << "overlapping interior work with halo waits).\n\n";
    }
  }

  // --- roofline -----------------------------------------------------------
  if (!report.roofline.empty()) {
    os << "## Roofline attribution";
    if (!report.machine.empty()) { os << " (" << report.machine << ")"; }
    os << "\n\n| kernel | flops | bytes | intensity | roof TFlop/s | bound | attainment |\n"
       << "|---|---:|---:|---:|---:|---|---:|\n";
    for (const auto& k : report.roofline) {
      os << "| " << k.kernel << " | " << fmt3(k.flops) << " | " << fmt3(k.bytes) << " | "
         << fmt3(k.intensity) << " | " << fmt3(k.roof_tflops) << " | "
         << (k.memory_bound ? "memory" : "compute") << " | "
         << (k.time_s > 0 ? fmt_pct(k.attainment) : std::string("-")) << " |\n";
    }
    os << "\n";
  }
}

bool write_markdown(const PerfReport& report, const std::string& path) {
  std::ofstream os(path);
  if (!os) { return false; }
  write_markdown(report, os);
  return static_cast<bool>(os);
}

void write_json(const PerfReport& report, std::ostream& os) {
  json::Writer w(os);
  w.begin_object();
  w.field("bench", "attribution");
  w.field("title", report.title);
  w.field("nranks", report.nranks);
  w.field("latency_s", report.latency_s);

  const auto& s = report.summary;
  w.begin_object("summary")
      .field("steps", s.steps)
      .field("makespan_s", s.makespan_s)
      .field("compute_s", s.compute_s)
      .field("transfer_s", s.transfer_s)
      .field("latency_s", s.latency_s)
      .field("retry_s", s.retry_s)
      .end_object();

  w.begin_array("critical_path");
  for (const auto& p : report.paths) {
    w.begin_object()
        .field("step", p.step)
        .field("makespan_s", p.makespan_s)
        .field("modeled_total_s", p.modeled_total_s)
        .field("compute_s", p.compute_s)
        .field("transfer_s", p.transfer_s)
        .field("latency_s", p.latency_s)
        .field("retry_s", p.retry_s)
        .field("critical_rank", path_final_rank(p));
    w.begin_array("rank_chain");
    for (int r : p.rank_chain) { w.value(std::int64_t(r)); }
    w.end_array();
    w.end_object();
  }
  w.end_array();

  const auto& losses =
      report.scaling_losses.empty() ? report.step_overhead : report.scaling_losses;
  w.begin_array("loss");
  for (const auto& t : losses) { write_loss_json(w, t); }
  w.end_array();

  w.begin_array("stragglers");
  for (int r : s.stragglers()) { w.value(std::int64_t(r)); }
  w.end_array();

  if (report.health.enabled) {
    const auto& h = report.health;
    w.begin_object("health")
        .field("samples", h.samples)
        .field("alerts", h.alerts)
        .field("critical_alerts", h.critical_alerts)
        .field("probe_s", h.probe_s)
        .field("step_s", h.step_s)
        .field("probe_overhead", h.probe_overhead)
        .field("energy_drift", h.energy_drift)
        .field("max_gauss_residual", h.max_gauss_residual)
        .field("max_continuity_residual", h.max_continuity_residual)
        .field("nan_cells", h.nan_cells)
        .field("last_alert", h.last_alert)
        .end_object();
  }

  if (report.beam.enabled) {
    const auto& b = report.beam;
    w.begin_object("beam_physics")
        .field("records", b.records)
        .field("probe_s", b.probe_s)
        .field("step_s", b.step_s)
        .field("probe_overhead", b.probe_overhead)
        .field("emit_ny", b.emit_ny)
        .field("beam_charge_C", b.beam_charge_C)
        .field("mean_gamma", b.mean_gamma)
        .field("peak_energy_J", b.peak_energy_J)
        .field("energy_spread", b.energy_spread)
        .field("laser_a0", b.laser_a0)
        .field("wakefield_V_m", b.wakefield_V_m)
        .field("field_energy_J", b.field_energy_J)
        .field("stream_frames", b.stream_frames)
        .field("stream_bytes", b.stream_bytes)
        .end_object();
  }

  if (report.memory.enabled) {
    const auto& m = report.memory;
    w.begin_object("memory")
        .field("total_bytes", m.total_bytes)
        .field("high_water_bytes", m.high_water_bytes)
        .field("fields_bytes", m.fields_bytes)
        .field("particles_bytes", m.particles_bytes)
        .field("mr_bytes", m.mr_bytes)
        .field("pml_bytes", m.pml_bytes)
        .field("checkpoint_hw_bytes", m.checkpoint_hw_bytes)
        .field("insitu_stream_bytes", m.insitu_stream_bytes)
        .field("alloc_count", m.alloc_count)
        .field("probe_s", m.probe_s)
        .field("step_s", m.step_s)
        .field("probe_overhead", m.probe_overhead);
    if (m.has_savings) {
      w.field("mr_savings_measured", m.measured.factor)
          .field("mr_savings_analytic", m.analytic.factor)
          .field("mr_savings_disagreement", m.savings_disagreement)
          .field("mr_actual_bytes", m.measured.actual_bytes)
          .field("mr_uniform_fine_bytes", m.measured.uniform_fine_bytes);
    }
    if (m.oom.peak_bytes > 0) {
      w.field("rank_peak_bytes", m.oom.peak_bytes)
          .field("rank_peak_rank", m.oom.peak_rank)
          .field("rank_peak_step", m.oom.peak_step)
          .field("budget_bytes", m.budget_bytes)
          .field("oom_predicted", m.oom.predicted)
          .field("oom_headroom", m.oom.headroom);
    }
    w.end_object();
  }

  if (report.kernel.enabled) {
    const auto& k = report.kernel;
    w.begin_object("kernel_headroom")
        .field("machine", k.machine)
        .field("sampled_invocations", k.sampled_invocations)
        .field("dropped_invocations", k.dropped_invocations)
        .field("probe_s", k.probe_s)
        .field("step_s", k.step_s)
        .field("probe_overhead", k.probe_overhead);
    w.begin_array("kernels");
    for (const auto& r : k.kernels) {
      w.begin_object()
          .field("kernel", r.kernel)
          .field("invocations", r.invocations)
          .field("particles", r.particles)
          .field("time_s", r.time_s)
          .field("flops", r.flops)
          .field("bytes", r.bytes)
          .field("intensity", r.intensity)
          .field("gbyte_s", r.gbyte_s)
          .field("roof_tflops", r.roof_tflops)
          .field("attained_tflops", r.attained_tflops)
          .field("attainment", r.attainment)
          .field("memory_bound", r.memory_bound)
          .end_object();
    }
    w.end_array();
    const auto& l = k.locality;
    w.begin_object("locality")
        .field("tiles", k.locality_tiles)
        .field("particles", l.particles)
        .field("pairs", l.pairs)
        .field("inversion_fraction", l.inversion_fraction)
        .field("mean_stride_cells", l.mean_stride_cells)
        .field("p99_stride_cells", l.p99_stride_cells)
        .field("line_reuse", l.line_reuse)
        .field("sorted_line_reuse", l.sorted_line_reuse)
        .field("predicted_sort_speedup", l.predicted_sort_speedup)
        .end_object();
    w.begin_object("overlap")
        .field("steps", k.overlap_steps)
        .field("mean_post_s", k.mean_post_s)
        .field("mean_wait_s", k.mean_wait_s)
        .field("mean_interior_compute_s", k.mean_interior_compute_s)
        .field("mean_overlap_headroom_s", k.mean_overlap_headroom_s)
        .end_object();
    w.end_object();
  }

  if (!report.roofline.empty()) {
    w.field("machine", report.machine);
    w.begin_array("roofline");
    for (const auto& k : report.roofline) {
      w.begin_object()
          .field("kernel", k.kernel)
          .field("flops", k.flops)
          .field("bytes", k.bytes)
          .field("intensity", k.intensity)
          .field("peak_tflops", k.peak_tflops)
          .field("peak_tbyte_s", k.peak_tbyte_s)
          .field("roof_tflops", k.roof_tflops)
          .field("memory_bound", k.memory_bound)
          .field("time_s", k.time_s)
          .field("attained_tflops", k.attained_tflops)
          .field("attainment", k.attainment)
          .end_object();
    }
    w.end_array();
  }
  w.end_object();
  os << '\n';
}

bool write_json(const PerfReport& report, const std::string& path) {
  std::ofstream os(path);
  if (!os) { return false; }
  write_json(report, os);
  return static_cast<bool>(os);
}

} // namespace mrpic::obs
