#include "src/obs/rank_recorder_io.hpp"

#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

namespace mrpic::obs {

namespace {

constexpr int kVersion = 1;

void write_rank_stats(json::Writer& w, const RankStepStats& r) {
  w.begin_object()
      .field("rank", r.rank)
      .field("compute_s", r.compute_s)
      .field("comm_s", r.comm_s)
      .field("retry_s", r.retry_s)
      .field("bytes_sent", r.bytes_sent)
      .field("bytes_recv", r.bytes_recv)
      .field("messages", r.messages)
      .field("retries", r.retries)
      .field("boxes", r.boxes)
      .end_object();
}

} // namespace

void write_recorder_json(const RankRecorder& rec, std::ostream& os) {
  json::Writer w(os);
  w.begin_object();
  w.field("format", "mrpic-ranks");
  w.field("version", std::int64_t(kVersion));
  w.field("nranks", rec.nranks());
  w.begin_array("steps");
  for (const auto& step : rec.steps()) {
    w.begin_object().field("step", step.step);
    w.begin_array("ranks");
    for (const auto& r : step.ranks) { write_rank_stats(w, r); }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.begin_array("messages");
  for (const auto& m : rec.messages()) {
    w.begin_object()
        .field("step", m.step)
        .field("src_rank", m.src_rank)
        .field("dst_rank", m.dst_rank)
        .field("src_box", m.src_box)
        .field("dst_box", m.dst_box)
        .field("bytes", m.bytes)
        .field("latency_s", m.latency_s)
        .field("transfer_s", m.transfer_s)
        .field("attempts", m.attempts)
        .field("retry_s", m.retry_s)
        .end_object();
  }
  w.end_array();
  w.begin_array("rebalances");
  for (const auto& rb : rec.rebalances()) {
    w.begin_object().field("step", rb.step);
    w.begin_array("rank_cost_before");
    for (double c : rb.rank_cost_before) { w.value(c); }
    w.end_array();
    w.begin_array("rank_cost_after");
    for (double c : rb.rank_cost_after) { w.value(c); }
    w.end_array();
    w.field("imbalance_before", rb.imbalance_before)
        .field("imbalance_after", rb.imbalance_after)
        .end_object();
  }
  w.end_array();
  w.begin_array("fault_events");
  for (const auto& ev : rec.fault_events()) {
    w.begin_object()
        .field("step", ev.step)
        .field("kind", ev.kind)
        .field("rank", ev.rank)
        .field("time_s", ev.time_s)
        .field("detail", ev.detail)
        .end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
}

bool write_recorder_json(const RankRecorder& rec, const std::string& path) {
  std::ofstream os(path);
  if (!os) { return false; }
  write_recorder_json(rec, os);
  return static_cast<bool>(os);
}

RankRecorder read_recorder_json(const json::Value& doc) {
  if (!doc.is_object() || !doc["format"].is_string() ||
      doc["format"].as_string() != "mrpic-ranks") {
    throw std::runtime_error("rank_recorder_io: not a mrpic-ranks document");
  }
  if (!doc["version"].is_number() || doc["version"].as_int() != kVersion) {
    throw std::runtime_error("rank_recorder_io: unsupported version");
  }
  if (!doc["steps"].is_array() || !doc["messages"].is_array()) {
    throw std::runtime_error("rank_recorder_io: missing steps/messages arrays");
  }

  RankRecorder rec(doc["nranks"].is_number() ? static_cast<int>(doc["nranks"].as_int())
                                             : 0);
  // add_step() re-tags messages with the breakdown's step, so group the
  // message log by step tag first.
  std::map<std::int64_t, std::vector<HaloMessage>> msgs_by_step;
  for (const auto& mv : doc["messages"].as_array()) {
    HaloMessage m;
    m.step = mv["step"].as_int();
    m.src_rank = static_cast<int>(mv["src_rank"].as_int());
    m.dst_rank = static_cast<int>(mv["dst_rank"].as_int());
    m.src_box = static_cast<int>(mv["src_box"].as_int());
    m.dst_box = static_cast<int>(mv["dst_box"].as_int());
    m.bytes = mv["bytes"].as_int();
    m.latency_s = mv["latency_s"].as_number();
    m.transfer_s = mv["transfer_s"].as_number();
    m.attempts = mv["attempts"].is_number() ? static_cast<int>(mv["attempts"].as_int()) : 1;
    m.retry_s = mv["retry_s"].is_number() ? mv["retry_s"].as_number() : 0;
    msgs_by_step[m.step].push_back(m);
  }
  for (const auto& sv : doc["steps"].as_array()) {
    if (!sv.is_object() || !sv["ranks"].is_array()) {
      throw std::runtime_error("rank_recorder_io: malformed step record");
    }
    RankStepBreakdown b;
    b.step = sv["step"].as_int();
    for (const auto& rv : sv["ranks"].as_array()) {
      RankStepStats r;
      r.rank = static_cast<int>(rv["rank"].as_int());
      r.compute_s = rv["compute_s"].as_number();
      r.comm_s = rv["comm_s"].as_number();
      r.retry_s = rv["retry_s"].is_number() ? rv["retry_s"].as_number() : 0;
      r.bytes_sent = rv["bytes_sent"].as_int();
      r.bytes_recv = rv["bytes_recv"].as_int();
      r.messages = rv["messages"].as_int();
      r.retries = rv["retries"].is_number() ? rv["retries"].as_int() : 0;
      r.boxes = static_cast<int>(rv["boxes"].as_int());
      b.ranks.push_back(r);
    }
    const auto it = msgs_by_step.find(b.step);
    rec.add_step(std::move(b),
                 it == msgs_by_step.end() ? std::vector<HaloMessage>{} : it->second);
  }
  if (doc["rebalances"].is_array()) {
    for (const auto& rv : doc["rebalances"].as_array()) {
      RebalanceRecord rb;
      rb.step = rv["step"].as_int();
      for (const auto& c : rv["rank_cost_before"].as_array()) {
        rb.rank_cost_before.push_back(c.as_number());
      }
      for (const auto& c : rv["rank_cost_after"].as_array()) {
        rb.rank_cost_after.push_back(c.as_number());
      }
      rb.imbalance_before = rv["imbalance_before"].as_number();
      rb.imbalance_after = rv["imbalance_after"].as_number();
      rec.add_rebalance(std::move(rb));
    }
  }
  if (doc["fault_events"].is_array()) {
    for (const auto& ev : doc["fault_events"].as_array()) {
      FaultEvent e;
      e.step = ev["step"].as_int();
      e.kind = ev["kind"].as_string();
      e.rank = static_cast<int>(ev["rank"].as_int());
      e.time_s = ev["time_s"].as_number();
      e.detail = ev["detail"].as_string();
      rec.add_fault_event(std::move(e));
    }
  }
  return rec;
}

RankRecorder read_recorder_json(const std::string& text) {
  return read_recorder_json(json::parse(text));
}

RankRecorder read_recorder_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) { throw std::runtime_error("rank_recorder_io: cannot open " + path); }
  std::stringstream ss;
  ss << is.rdbuf();
  return read_recorder_json(ss.str());
}

} // namespace mrpic::obs
