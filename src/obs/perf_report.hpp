#pragma once

// perf_report — the automated performance report over obs::analysis: per
// step the critical path (rank chain + composition), the parallel-overhead
// decomposition, straggler ranks, optionally a scaling sweep's loss terms
// and a roofline placement. Two serializations of the same report:
//
//  - Markdown (write_markdown): the human artifact — summary table, the
//    worst steps' critical-path chains, loss breakdown per node count.
//  - JSON (write_json): bench kind "attribution", schema-validated by
//    obs::benchdiff and baseline-gated in bench_smoke like every other
//    BENCH_*.json.
//
// Producers: the perf_report CLI (bench/perf_report.cpp) over a recorder
// dump, the scaling benches under --attribution, and examples
// (laser_wakefield) directly through this API.

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <string>
#include <vector>

#include "src/obs/analysis.hpp"
#include "src/obs/kernel_probe.hpp"
#include "src/obs/memory.hpp"

namespace mrpic::health {
class HealthMonitor;
}

namespace mrpic::insitu {
class Registry;
class StreamWriter;
}

namespace mrpic::obs {

class Profiler;

// Summary of a run's simulation-health telemetry (src/health) for the perf
// report: ledger/alert counts, probe cost against the step cost (so the
// overhead of the in-situ self-diagnostics is an explicit line item, same
// idea as the paper's "light self-diagnostics" accounting), and the headline
// invariants over the sampled window.
struct HealthSection {
  bool enabled = false;
  std::int64_t samples = 0;
  std::int64_t alerts = 0;
  std::int64_t critical_alerts = 0;
  double probe_s = 0;          // total seconds inside the "health" region
  double step_s = 0;           // total seconds inside the "step" region
  double probe_overhead = 0;   // probe_s / step_s (0 when step_s == 0)
  // Relative total-energy drift between the first and last ledger sample.
  double energy_drift = std::numeric_limits<double>::quiet_NaN();
  double max_gauss_residual = std::numeric_limits<double>::quiet_NaN();
  double max_continuity_residual = std::numeric_limits<double>::quiet_NaN();
  std::int64_t nan_cells = 0;  // worst single NaN-scan result
  std::string last_alert;      // message of the most recent alert ("" = none)
};

// Collapse a monitor's history/alerts (plus the profiler's "health"/"step"
// region totals for the overhead split) into a HealthSection.
HealthSection summarize_health(const health::HealthMonitor& mon, const Profiler& prof);

// Summary of a run's in-situ physics telemetry (src/insitu) for the perf
// report: the paper's Fig. 6/7 beam deliverables as headline numbers, plus
// the diagnostics' cost against the step cost (the "insitu" profiler region)
// and the streaming exporter's volume.
struct BeamPhysicsSection {
  bool enabled = false;
  std::int64_t records = 0;     // reduced-diagnostic records collected
  double probe_s = 0;           // total seconds inside the "insitu" region
  double step_s = 0;            // total seconds inside the "step" region
  double probe_overhead = 0;    // probe_s / step_s (0 when step_s == 0)

  // Headline beam metrics: latest record of each diagnostic (NaN = that
  // diagnostic never ran).
  double emit_ny = std::numeric_limits<double>::quiet_NaN();    // [m rad]
  double beam_charge_C = std::numeric_limits<double>::quiet_NaN();
  double mean_gamma = std::numeric_limits<double>::quiet_NaN();
  double peak_energy_J = std::numeric_limits<double>::quiet_NaN();
  double energy_spread = std::numeric_limits<double>::quiet_NaN();
  double laser_a0 = std::numeric_limits<double>::quiet_NaN();
  double wakefield_V_m = std::numeric_limits<double>::quiet_NaN();
  double field_energy_J = std::numeric_limits<double>::quiet_NaN();

  // Streaming exporter (0s when streaming is off).
  std::int64_t stream_frames = 0;
  std::int64_t stream_bytes = 0;
};

// Collapse a registry's history (plus the profiler's "insitu"/"step" totals
// and, when streaming, the writer's counters) into a BeamPhysicsSection.
BeamPhysicsSection summarize_insitu(const insitu::Registry& reg, const Profiler& prof,
                                    const insitu::StreamWriter* stream = nullptr);

// Summary of a run's memory telemetry (obs::MemoryLedger) for the perf
// report: live/high-water bytes per subsystem, the measured-vs-analytic MR
// memory-savings factors (the paper's Fig. 6 affordability argument), the
// probe's own cost, and — when a recorder with resident-bytes lanes and a
// budget are supplied — the per-rank peak and first-rank-to-OOM prediction.
struct MemorySection {
  bool enabled = false;
  std::int64_t total_bytes = 0;       // ledger total at summary time
  std::int64_t high_water_bytes = 0;  // high-water of the total
  std::int64_t fields_bytes = 0;      // prefix "fields"
  std::int64_t particles_bytes = 0;   // prefix "particles"
  std::int64_t mr_bytes = 0;          // prefix "mr"
  std::int64_t pml_bytes = 0;         // prefix "pml"
  std::int64_t checkpoint_hw_bytes = 0; // high-water of "checkpoint" staging
  std::int64_t insitu_stream_bytes = 0; // "insitu.stream"
  std::int64_t alloc_count = 0;
  double probe_s = 0;                 // total seconds inside "memory" region
  double step_s = 0;                  // total seconds inside "step" region
  double probe_overhead = 0;          // probe_s / step_s (0 when step_s == 0)

  // MR savings (factor <= 0: not computed, e.g. no patch).
  MrSavings measured;
  MrSavings analytic;
  bool has_savings = false;
  // |measured.factor - analytic.factor| / analytic.factor (NaN w/o savings).
  double savings_disagreement = std::numeric_limits<double>::quiet_NaN();

  // Per-rank resident model (zeroed when no recorder lanes were fed).
  double budget_bytes = 0;            // 0 = no budget configured
  OomPrediction oom;                  // peak_bytes > 0 iff lanes existed
};

// Collapse the ledger (plus the profiler's "memory"/"step" totals) into a
// MemorySection. Optional extras: measured/analytic savings pair, and a
// recorder whose resident-bytes lanes drive the OOM prediction against
// `budget_bytes` (ignored when <= 0 except for the peak lookup).
MemorySection summarize_memory(const MemoryLedger& ledger, const Profiler& prof,
                               const MrSavings* measured = nullptr,
                               const MrSavings* analytic = nullptr,
                               const RankRecorder* rec = nullptr,
                               double budget_bytes = 0);

// Summary of a run's kernel-grain telemetry (obs::KernelProbe + the
// cluster's halo phase timeline) for the perf report: per-kernel roofline
// placement over the sampled invocations, the locality model's predicted
// cell-binned-sort payoff, the mean per-step overlap headroom, and the
// probe's own cost — the "## Kernel headroom" measuring stick for the
// sort/SIMD/overlap work of ROADMAP item 2.
struct KernelSection {
  bool enabled = false;
  std::string machine;                 // roofline machine name
  std::int64_t sampled_invocations = 0;
  std::int64_t dropped_invocations = 0;

  // Per-kind aggregate placed on the machine roofline (order: gather,
  // push, deposit; zero-invocation kinds are skipped).
  struct KernelRow {
    std::string kernel;
    std::int64_t invocations = 0;
    std::int64_t particles = 0;
    double time_s = 0;
    double flops = 0;
    double bytes = 0;
    double intensity = 0;       // flops/byte (analytic model)
    double gbyte_s = 0;         // achieved bandwidth
    double roof_tflops = 0;
    double attained_tflops = 0;
    double attainment = 0;
    bool memory_bound = false;
  };
  std::vector<KernelRow> kernels;

  // Merged locality sample + sort-payoff prediction.
  TileLocality locality;
  std::int64_t locality_tiles = 0;

  // Mean per-step halo phase split of the critical rank (zeros when no
  // recorder steps carried phase data).
  double mean_post_s = 0;
  double mean_wait_s = 0;
  double mean_interior_compute_s = 0;
  double mean_overlap_headroom_s = 0;
  std::int64_t overlap_steps = 0;      // recorder steps with phase data

  double probe_s = 0;          // probe self time + "kernel_obs" region
  double step_s = 0;           // total seconds inside the "step" region
  double probe_overhead = 0;   // probe_s / step_s (0 when step_s == 0)
};

// Collapse a kernel probe (plus the profiler's "kernel_obs"/"step" totals
// and, when given, a recorder's halo phase lanes) into a KernelSection.
KernelSection summarize_kernels(const KernelProbe& probe, const Profiler& prof,
                                const RankRecorder* rec = nullptr);

struct PerfReportOptions {
  std::string title = "perf report";
  // Wire model used for the latency split (cluster::CommModel::latency_s of
  // the model the recorder was driven with).
  double latency_s = 2e-6;
  // Steps listed individually in the Markdown (worst by makespan).
  int top_steps = 5;
};

struct PerfReport {
  std::string title;
  int nranks = 0;
  double latency_s = 0;
  std::vector<analysis::CriticalPath> paths;        // one per recorded step
  analysis::CriticalPathSummary summary;
  std::vector<analysis::LossTerms> step_overhead;   // per-step decomposition
  std::vector<analysis::LossTerms> scaling_losses;  // optional sweep terms
  std::vector<analysis::KernelRoofline> roofline;   // optional placement
  std::string machine;                              // roofline machine name
  HealthSection health;                             // optional (health.enabled)
  BeamPhysicsSection beam;                          // optional (beam.enabled)
  MemorySection memory;                             // optional (memory.enabled)
  KernelSection kernel;                             // optional (kernel.enabled)
  int top_steps = 5;

  // Steps ordered by descending critical-path makespan.
  std::vector<int> worst_steps() const;
};

// Build the per-step part (critical paths + overhead decomposition) from a
// recorder. Sweep losses / roofline are attached by the caller when
// available (they need context the recorder does not carry).
PerfReport build_perf_report(const RankRecorder& rec, const PerfReportOptions& opt = {});

void write_markdown(const PerfReport& report, std::ostream& os);
bool write_markdown(const PerfReport& report, const std::string& path);
// bench kind "attribution": {"bench":"attribution","critical_path":[...],
// "loss":[...]} (loss = scaling_losses when present, else step_overhead).
void write_json(const PerfReport& report, std::ostream& os);
bool write_json(const PerfReport& report, const std::string& path);

} // namespace mrpic::obs
