#pragma once

// obs::ProgressHeartbeat — live progress/ETA for external observers
// (ISSUE 10 tentpole). A small schema-tagged progress.json is REWRITTEN
// ATOMICALLY (tmp + rename) at a step cadence from inside the step loop:
// current step, simulated time, an EWMA step rate, the ETA toward the
// --steps / --t-end target, the current phase and the last health-alert
// severity. A campaign scheduler or dashboard polls this one tiny file for
// liveness and progress without parsing any JSONL stream; a run whose
// heartbeat goes stale while its manifest still says "running" is dead.

#include <chrono>
#include <cstdint>
#include <limits>
#include <string>

namespace mrpic::obs {

inline constexpr const char* kProgressSchema = "mrpic.progress.v1";

struct HeartbeatConfig {
  std::string path;       // progress.json location ("" disables writes)
  int interval_steps = 5; // rewrite cadence (every Nth update() call fires)
  double alpha = 0.25;    // EWMA smoothing for the step rate
};

class ProgressHeartbeat {
public:
  ProgressHeartbeat(HeartbeatConfig cfg, std::string run_id);

  const HeartbeatConfig& config() const { return m_cfg; }

  // Progress targets (either may be absent: steps_total/t_end <= 0). The
  // ETA uses whichever target binds first.
  void set_totals(std::int64_t steps_total, double t_end_s);

  // Call once per completed step. Updates the EWMA rate every call and
  // rewrites the file on the first call and every interval_steps-th step
  // after it. `last_alert_severity` is "" when no alert has fired yet.
  // Returns true when a write happened.
  bool update(std::int64_t step, double sim_time_s, const std::string& phase,
              const std::string& last_alert_severity = "");

  // Terminal rewrite with a final status (completed/aborted/failed), so a
  // poller sees the outcome even before it re-reads the manifest.
  bool finalize(const std::string& status, std::int64_t step, double sim_time_s);

  // --- inspection (tests / driver printout) -------------------------------
  double ewma_steps_per_s() const { return m_rate; }
  double eta_s() const { return m_eta_s; }      // NaN until computable
  double fraction_done() const { return m_frac; }  // 0..1 (0 when unknown)
  std::int64_t writes() const { return m_writes; }

private:
  bool write(std::int64_t step, double sim_time_s, const std::string& phase,
             const std::string& status, const std::string& last_alert_severity);

  HeartbeatConfig m_cfg;
  std::string m_run_id;
  std::int64_t m_steps_total = 0;
  double m_t_end_s = 0;

  std::chrono::steady_clock::time_point m_start;
  std::chrono::steady_clock::time_point m_last;
  std::int64_t m_last_step = -1;
  std::int64_t m_updates = 0;
  std::int64_t m_writes = 0;
  double m_rate = 0;   // EWMA steps/s
  double m_eta_s = std::numeric_limits<double>::quiet_NaN();
  double m_frac = 0;
};

} // namespace mrpic::obs
