#include "src/obs/bench_diff.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/obs/campaign.hpp"

namespace mrpic::obs::benchdiff {

void flatten(const json::Value& v, const std::string& prefix,
             std::map<std::string, json::Value>& out) {
  switch (v.type()) {
    case json::Value::Type::Object:
      for (const auto& [key, val] : v.as_object()) {
        flatten(val, prefix.empty() ? key : prefix + "." + key, out);
      }
      break;
    case json::Value::Type::Array: {
      const auto& arr = v.as_array();
      for (std::size_t i = 0; i < arr.size(); ++i) {
        flatten(arr[i], prefix + "[" + std::to_string(i) + "]", out);
      }
      break;
    }
    default:
      out.emplace(prefix, v);
  }
}

namespace {

bool ignored(const std::string& path, const Options& opt) {
  for (const auto& sub : opt.ignore) {
    if (path.find(sub) != std::string::npos) { return true; }
  }
  return false;
}

std::string scalar_to_string(const json::Value& v) {
  if (v.is_string()) { return v.as_string(); }
  if (v.is_bool()) { return v.as_bool() ? "true" : "false"; }
  if (v.is_number()) { return json::number(v.as_number()); }
  return "null";
}

void count(Report& report, const MetricResult& r) {
  switch (r.status) {
    case Status::Pass: ++report.num_pass; break;
    case Status::Fail: ++report.num_fail; break;
    case Status::Missing: ++report.num_missing; break;
    case Status::Extra: ++report.num_extra; break;
    case Status::Ignored: ++report.num_ignored; break;
  }
}

} // namespace

Report compare(const json::Value& baseline, const json::Value& current,
               const Options& opt) {
  std::map<std::string, json::Value> base_flat, cur_flat;
  flatten(baseline, "", base_flat);
  flatten(current, "", cur_flat);

  Report report;
  for (const auto& [path, base_v] : base_flat) {
    MetricResult r;
    r.path = path;
    if (ignored(path, opt)) {
      r.status = Status::Ignored;
    } else if (cur_flat.find(path) == cur_flat.end()) {
      r.status = Status::Missing;
      r.note = "metric absent from current";
    } else {
      const json::Value& cur_v = cur_flat.at(path);
      if (base_v.is_number() && cur_v.is_number()) {
        r.baseline = base_v.as_number();
        r.current = cur_v.as_number();
        const double diff = std::abs(r.current - r.baseline);
        r.rel_diff = diff / std::max(std::abs(r.baseline), opt.abs_tol);
        const bool pass = diff <= opt.abs_tol + opt.rel_tol * std::abs(r.baseline);
        r.status = pass ? Status::Pass : Status::Fail;
      } else if (scalar_to_string(base_v) == scalar_to_string(cur_v)) {
        r.status = Status::Pass;
      } else {
        r.status = Status::Fail;
        r.note = "'" + scalar_to_string(base_v) + "' vs '" + scalar_to_string(cur_v) + "'";
      }
    }
    count(report, r);
    report.results.push_back(std::move(r));
  }
  for (const auto& [path, cur_v] : cur_flat) {
    if (base_flat.find(path) != base_flat.end() || ignored(path, opt)) { continue; }
    MetricResult r;
    r.path = path;
    r.status = Status::Extra;
    r.note = "not in baseline (informational)";
    count(report, r);
    report.results.push_back(std::move(r));
  }
  return report;
}

void print_report(const Report& report, std::ostream& os, bool verbose) {
  const auto label = [](Status s) {
    switch (s) {
      case Status::Pass: return "PASS";
      case Status::Fail: return "FAIL";
      case Status::Missing: return "MISSING";
      case Status::Extra: return "extra";
      case Status::Ignored: return "ignored";
    }
    return "?";
  };
  char line[256];
  for (const auto& r : report.results) {
    if (!verbose && r.status == Status::Pass) { continue; }
    if (r.note.empty()) {
      std::snprintf(line, sizeof(line), "  %-8s %-48s %14.6g %14.6g %+9.2f%%\n",
                    label(r.status), r.path.c_str(), r.baseline, r.current,
                    100 * (r.current - r.baseline) /
                        (r.baseline != 0 ? std::abs(r.baseline) : 1.0));
    } else {
      std::snprintf(line, sizeof(line), "  %-8s %-48s %s\n", label(r.status),
                    r.path.c_str(), r.note.c_str());
    }
    os << line;
  }
  std::snprintf(line, sizeof(line),
                "%d metrics: %d pass, %d fail, %d missing, %d extra, %d ignored -> %s\n",
                static_cast<int>(report.results.size()), report.num_pass, report.num_fail,
                report.num_missing, report.num_extra, report.num_ignored,
                report.ok() ? "OK" : "REGRESSION");
  os << line;
}

namespace {

// Required keys of one record in a named array; kind: n = number, s = string.
struct FieldSpec {
  const char* key;
  char kind;
};

void check_records(const json::Value& doc, const char* array_name,
                   const std::vector<FieldSpec>& fields, std::vector<std::string>& errors) {
  const json::Value& arr = doc[array_name];
  if (!arr.is_array()) {
    errors.push_back(std::string("missing array '") + array_name + "'");
    return;
  }
  if (arr.as_array().empty()) {
    errors.push_back(std::string("array '") + array_name + "' is empty");
    return;
  }
  for (std::size_t i = 0; i < arr.as_array().size(); ++i) {
    const json::Value& rec = arr.as_array()[i];
    if (!rec.is_object()) {
      errors.push_back(std::string(array_name) + "[" + std::to_string(i) +
                       "] is not an object");
      continue;
    }
    for (const auto& f : fields) {
      const json::Value& v = rec[f.key];
      const bool ok = f.kind == 'n' ? v.is_number() : v.is_string();
      if (!ok) {
        errors.push_back(std::string(array_name) + "[" + std::to_string(i) +
                         "] lacks required " + (f.kind == 'n' ? "number" : "string") +
                         " '" + f.key + "'");
      }
    }
  }
}

} // namespace

std::vector<std::string> validate_schema(const json::Value& doc) {
  std::vector<std::string> errors;
  if (!doc.is_object()) {
    errors.push_back("document is not a JSON object");
    return errors;
  }
  // Besides BENCH_*.json, the gate also validates the campaign aggregator's
  // report (schema-tagged instead of bench-tagged): per-scenario stats plus
  // one joined record per run. Booleans and nullable physics columns are
  // left to campaign_report --strict; this checks the structural contract.
  if (doc["schema"].is_string() && doc["schema"].as_string() == kCampaignSchema) {
    for (const char* key : {"runs_total", "runs_valid", "completed", "aborted",
                            "failed"}) {
      if (!doc[key].is_number()) {
        errors.push_back(std::string("missing number field '") + key + "'");
      }
    }
    check_records(doc, "scenarios",
                  {{"scenario", 's'},
                   {"runs", 'n'},
                   {"completed", 'n'},
                   {"aborted", 'n'},
                   {"failed", 'n'},
                   {"step_samples", 'n'}},
                  errors);
    check_records(doc, "runs",
                  {{"dir", 's'},
                   {"run_id", 's'},
                   {"scenario", 's'},
                   {"status", 's'},
                   {"exit_code", 'n'},
                   {"steps_done", 'n'},
                   {"num_events", 'n'},
                   {"num_critical", 'n'}},
                  errors);
    return errors;
  }
  if (!doc["bench"].is_string()) {
    errors.push_back("missing string field 'bench'");
    return errors;
  }
  const std::string& bench = doc["bench"].as_string();
  const std::vector<FieldSpec> cluster_fields = {
      {"nodes", 'n'},    {"compute_s", 'n'}, {"comm_s", 'n'},
      {"total_s", 'n'},  {"imbalance", 'n'}, {"bytes", 'n'},
      {"messages", 'n'}, {"efficiency", 'n'}};
  if (bench == "kernels") {
    check_records(doc, "routines",
                  {{"routine", 's'},
                   {"reference_s", 'n'},
                   {"optimized_s", 'n'},
                   {"speedup", 'n'}},
                  errors);
  } else if (bench == "weak_scaling") {
    check_records(doc, "model", {{"machine", 's'}, {"nodes", 'n'}, {"efficiency", 'n'}},
                  errors);
    check_records(doc, "simulated_cluster", cluster_fields, errors);
  } else if (bench == "strong_scaling") {
    check_records(doc, "model",
                  {{"machine", 's'},
                   {"nodes", 'n'},
                   {"base_nodes", 'n'},
                   {"speedup", 'n'},
                   {"efficiency", 'n'}},
                  errors);
    auto fields = cluster_fields;
    fields.push_back({"speedup", 'n'});
    check_records(doc, "simulated_cluster", fields, errors);
  } else if (bench == "resilience") {
    check_records(doc, "overhead",
                  {{"scenario", 's'},
                   {"checkpoint_cost_s", 'n'},
                   {"mtbf_s", 'n'},
                   {"interval_s", 'n'},
                   {"overhead_fraction", 'n'}},
                  errors);
    check_records(doc, "recovery",
                  {{"interval_steps", 'n'},
                   {"crash_step", 'n'},
                   {"rollback_steps", 'n'},
                   {"detection_s", 'n'},
                   {"restore_s", 'n'},
                   {"replay_s", 'n'},
                   {"recovery_s", 'n'},
                   {"imbalance_after", 'n'}},
                  errors);
  } else if (bench == "attribution") {
    check_records(doc, "loss",
                  {{"nodes", 'n'},
                   {"total_s", 'n'},
                   {"ideal_s", 'n'},
                   {"efficiency", 'n'},
                   {"loss", 'n'},
                   {"imbalance", 'n'},
                   {"comm", 'n'},
                   {"latency", 'n'},
                   {"resil", 'n'},
                   {"residual", 'n'},
                   {"invariant_gap", 'n'}},
                  errors);
    check_records(doc, "critical_path",
                  {{"step", 'n'},
                   {"makespan_s", 'n'},
                   {"compute_s", 'n'},
                   {"transfer_s", 'n'},
                   {"latency_s", 'n'},
                   {"retry_s", 'n'},
                   {"critical_rank", 'n'}},
                  errors);
  } else if (bench == "health") {
    // bench_health: one record per probed cadence; ok flags are 0/1 numbers
    // so they diff like any other metric.
    check_records(doc, "cadence",
                  {{"ledger_interval", 'n'},
                   {"steps", 'n'},
                   {"probes", 'n'},
                   {"alerts", 'n'},
                   {"nan_cells", 'n'},
                   {"probe_s", 'n'},
                   {"step_s", 'n'},
                   {"overhead_frac", 'n'},
                   {"energy_drift_ok", 'n'},
                   {"continuity_ok", 'n'}},
                  errors);
  } else if (bench == "insitu") {
    // bench_insitu: one record per probed cadence; the ok flags are 0/1
    // numbers so they diff like any other metric.
    check_records(doc, "cadence",
                  {{"reduced_interval", 'n'},
                   {"spectrum_interval", 'n'},
                   {"stream_interval", 'n'},
                   {"steps", 'n'},
                   {"records", 'n'},
                   {"stream_frames", 'n'},
                   {"stream_bytes", 'n'},
                   {"insitu_s", 'n'},
                   {"step_s", 'n'},
                   {"overhead_frac", 'n'},
                   {"series_ok", 'n'},
                   {"beam_ok", 'n'}},
                  errors);
  } else if (bench == "memory") {
    // bench_memory: one record per (grid, species, MR on/off, cadence) case;
    // byte columns are deterministic and diff exactly, timings are ignored
    // by bench_smoke. ok/overhead flags are 0/1 numbers.
    check_records(doc, "cases",
                  {{"case", 's'},
                   {"cells", 'n'},
                   {"species", 'n'},
                   {"mr", 'n'},
                   {"interval", 'n'},
                   {"steps", 'n'},
                   {"total_bytes", 'n'},
                   {"high_water_bytes", 'n'},
                   {"fields_bytes", 'n'},
                   {"particles_bytes", 'n'},
                   {"mr_bytes", 'n'},
                   {"conservation_ok", 'n'},
                   {"probe_s", 'n'},
                   {"step_s", 'n'},
                   {"overhead_frac", 'n'},
                   {"overhead_ok", 'n'}},
                  errors);
  } else if (bench == "kernel_grain") {
    // bench_kernel_grain: probe aggregates (analytic flops/bytes columns are
    // deterministic, timings ignored by bench_smoke), the locality model on
    // synthetic key streams, the halo phase timeline over a rank sweep, and
    // the <= 1% probe-overhead verdict (0/1 flag, gated).
    check_records(doc, "kernels",
                  {{"kernel", 's'},
                   {"invocations", 'n'},
                   {"particles", 'n'},
                   {"flops", 'n'},
                   {"bytes", 'n'},
                   {"intensity", 'n'},
                   {"time_s", 'n'},
                   {"gbyte_s", 'n'}},
                  errors);
    check_records(doc, "locality",
                  {{"case", 's'},
                   {"particles", 'n'},
                   {"pairs", 'n'},
                   {"inversion_fraction", 'n'},
                   {"mean_stride_cells", 'n'},
                   {"p99_stride_cells", 'n'},
                   {"line_reuse", 'n'},
                   {"sorted_line_reuse", 'n'},
                   {"predicted_sort_speedup", 'n'}},
                  errors);
    check_records(doc, "overlap",
                  {{"nranks", 'n'},
                   {"compute_s", 'n'},
                   {"comm_s", 'n'},
                   {"post_s", 'n'},
                   {"wait_s", 'n'},
                   {"interior_compute_s", 'n'},
                   {"overlap_headroom_s", 'n'},
                   {"split_ok", 'n'}},
                  errors);
    check_records(doc, "probe",
                  {{"steps", 'n'},
                   {"sample_interval", 'n'},
                   {"sampled_invocations", 'n'},
                   {"probe_s", 'n'},
                   {"step_s", 'n'},
                   {"overhead_frac", 'n'},
                   {"overhead_ok", 'n'}},
                  errors);
  } else if (bench == "campaign") {
    // bench_campaign: the per-run telemetry trio's cost against the step
    // loop (overhead_ok gated, raw seconds ignored by bench_smoke) and the
    // deterministic aggregation of a synthetic three-run campaign.
    check_records(doc, "overhead",
                  {{"steps", 'n'},
                   {"events", 'n'},
                   {"heartbeat_writes", 'n'},
                   {"telemetry_s", 'n'},
                   {"step_s", 'n'},
                   {"overhead_frac", 'n'},
                   {"overhead_ok", 'n'}},
                  errors);
    check_records(doc, "aggregate",
                  {{"runs", 'n'},
                   {"valid", 'n'},
                   {"completed", 'n'},
                   {"aborted", 'n'},
                   {"failed", 'n'},
                   {"scenarios", 'n'},
                   {"samples", 'n'},
                   {"step_p50_s", 'n'},
                   {"step_p99_s", 'n'},
                   {"critical_events", 'n'},
                   {"monotone_ok", 'n'}},
                  errors);
  } else if (bench == "mr_savings") {
    // bench_mr_savings --json: one record per (dim, ratio, patch-fraction)
    // point of the analytic affordability model.
    check_records(doc, "points",
                  {{"dim", 'n'},
                   {"ratio", 'n'},
                   {"patch_fraction", 'n'},
                   {"actual_bytes", 'n'},
                   {"uniform_fine_bytes", 'n'},
                   {"savings", 'n'}},
                  errors);
  }
  // Unknown bench kinds: the 'bench' name above is the whole contract.
  return errors;
}

} // namespace mrpic::obs::benchdiff
