#include "src/obs/campaign.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "src/insitu/registry.hpp"
#include "src/obs/metrics.hpp"

namespace mrpic::obs {
namespace {

constexpr double kQe = 1.602176634e-19;  // [C]; MeV rendering only
constexpr std::size_t kTriageLimit = 8;  // critical events kept per run

// Locate an artifact by logical name; fall back to a filename suffix match
// so manifests written by older producers still join.
std::string artifact_path(const RunSummary& rs, const std::string& name,
                          const std::string& suffix) {
  for (const auto& a : rs.manifest.artifacts) {
    if (a.name == name) { return rs.dir + "/" + a.path; }
  }
  for (const auto& a : rs.manifest.artifacts) {
    if (a.path.size() >= suffix.size() &&
        a.path.compare(a.path.size() - suffix.size(), suffix.size(), suffix) == 0) {
      return rs.dir + "/" + a.path;
    }
  }
  return "";
}

bool file_exists(const std::string& path) {
  std::error_code ec;
  return !path.empty() && std::filesystem::exists(path, ec);
}

void join_metrics(RunSummary& rs) {
  const std::string path = artifact_path(rs, "metrics", "_metrics.jsonl");
  if (!file_exists(path)) { return; }
  std::size_t malformed = 0;
  std::vector<StepRecord> records;
  try {
    records = MetricsRegistry::read_jsonl(path, &malformed);
  } catch (const std::exception& e) {
    rs.errors.push_back(std::string("metrics: ") + e.what());
    return;
  }
  rs.metrics_records = static_cast<std::int64_t>(records.size());
  for (const auto& rec : records) {
    const auto it = rec.gauges.find("step_wall_s");
    if (it != rec.gauges.end() && std::isfinite(it->second) && it->second > 0) {
      rs.step_wall_samples.push_back(it->second);
    }
  }
  rs.step_p50_s = percentile(rs.step_wall_samples, 50);
  rs.step_p99_s = percentile(rs.step_wall_samples, 99);
  // Last-seen values win: walk backwards for the final health/memory gauges.
  for (auto it = records.rbegin(); it != records.rend(); ++it) {
    const auto g = it->gauges.find("health_energy_drift_rate");
    if (g != it->gauges.end() && std::isfinite(g->second)) {
      rs.energy_drift_rate = g->second;
      break;
    }
  }
  for (auto it = records.rbegin(); it != records.rend(); ++it) {
    const auto g = it->gauges.find("mem_total_high_water_bytes");
    if (g != it->gauges.end() && std::isfinite(g->second)) {
      rs.mem_high_water_bytes = g->second;
      break;
    }
  }
}

void join_insitu(RunSummary& rs) {
  const std::string path = artifact_path(rs, "insitu", "_insitu.jsonl");
  if (!file_exists(path)) { return; }
  std::vector<insitu::Record> records;
  try {
    records = insitu::Registry::canonicalize(insitu::Registry::read_series_jsonl(path));
  } catch (const std::exception& e) {
    rs.errors.push_back(std::string("insitu: ") + e.what());
    return;
  }
  for (auto it = records.rbegin(); it != records.rend(); ++it) {
    if (it->diag == "beam" && std::isnan(rs.emit_ny_m_rad)) {
      rs.emit_ny_m_rad = it->value("emit_ny_m_rad");
    } else if (it->diag == "spectrum" && std::isnan(rs.peak_energy_J)) {
      rs.peak_energy_J = it->value("peak_energy_J");
    }
    if (!std::isnan(rs.emit_ny_m_rad) && !std::isnan(rs.peak_energy_J)) { break; }
  }
}

void join_events(RunSummary& rs) {
  const std::string path = artifact_path(rs, "events", "_events.jsonl");
  if (!file_exists(path)) { return; }
  std::size_t skipped = 0;
  std::vector<Event> events;
  try {
    events = EventLog::read_events_jsonl(path, &skipped);
  } catch (const std::exception& e) {
    rs.errors.push_back(std::string("events: ") + e.what());
    return;
  }
  rs.num_events = static_cast<std::int64_t>(events.size());
  std::int64_t prev_seq = -1;
  double prev_wall = -1;
  for (const auto& ev : events) {
    if (ev.seq <= prev_seq || ev.wall_s < prev_wall) { rs.events_monotone = false; }
    prev_seq = ev.seq;
    prev_wall = std::max(prev_wall, ev.wall_s);
    if (ev.severity == EventSeverity::Critical) {
      ++rs.num_critical;
      rs.triage.push_back(ev);
      if (rs.triage.size() > kTriageLimit) { rs.triage.erase(rs.triage.begin()); }
    }
  }
}

std::string fmt(double v, const char* spec = "%.3g") {
  if (std::isnan(v)) { return "-"; }
  char buf[48];
  std::snprintf(buf, sizeof(buf), spec, v);
  return buf;
}

} // namespace

int CampaignReport::runs_valid() const {
  int n = 0;
  for (const auto& r : runs) { n += r.manifest_ok ? 1 : 0; }
  return n;
}

int CampaignReport::runs_with_status(const char* status) const {
  int n = 0;
  for (const auto& r : runs) { n += r.manifest.status == status ? 1 : 0; }
  return n;
}

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) { return std::numeric_limits<double>::quiet_NaN(); }
  std::sort(samples.begin(), samples.end());
  const double rank = p / 100.0 * static_cast<double>(samples.size());
  auto idx = static_cast<std::size_t>(std::ceil(rank));
  idx = std::min(std::max<std::size_t>(idx, 1), samples.size());
  return samples[idx - 1];
}

RunSummary summarize_run_dir(const std::string& dir) {
  RunSummary rs;
  rs.dir = dir;
  const std::string manifest_path = dir + "/run.json";
  if (!file_exists(manifest_path)) {
    rs.errors.push_back("no run.json");
    return rs;
  }
  rs.manifest_found = true;
  std::ifstream is(manifest_path);
  std::stringstream ss;
  ss << is.rdbuf();
  json::Value doc;
  try {
    doc = json::parse(ss.str());
  } catch (const std::exception& e) {
    rs.errors.push_back(std::string("run.json: ") + e.what());
    return rs;
  }
  auto problems = validate_manifest(doc);
  rs.errors.insert(rs.errors.end(), problems.begin(), problems.end());
  if (!problems.empty()) { return rs; }
  rs.manifest = parse_manifest(doc);
  rs.manifest_ok = true;

  join_metrics(rs);
  join_insitu(rs);
  join_events(rs);
  return rs;
}

CampaignReport scan_campaign(const std::string& campaign_dir) {
  std::error_code ec;
  if (!std::filesystem::is_directory(campaign_dir, ec)) {
    throw std::runtime_error("campaign directory not readable: " + campaign_dir);
  }
  CampaignReport rep;
  rep.dir = campaign_dir;

  std::vector<std::string> run_dirs;
  if (std::filesystem::exists(campaign_dir + "/run.json", ec)) {
    run_dirs.push_back(campaign_dir);  // a bare single-run directory
  }
  for (const auto& entry : std::filesystem::directory_iterator(campaign_dir, ec)) {
    if (entry.is_directory() &&
        std::filesystem::exists(entry.path() / "run.json", ec)) {
      run_dirs.push_back(entry.path().string());
    }
  }
  std::sort(run_dirs.begin(), run_dirs.end());
  for (const auto& d : run_dirs) { rep.runs.push_back(summarize_run_dir(d)); }

  // Per-scenario pooled aggregates.
  std::map<std::string, ScenarioStats> by_scenario;
  std::map<std::string, std::vector<double>> pooled;
  for (const auto& r : rep.runs) {
    if (!r.manifest_ok) { continue; }
    auto& st = by_scenario[r.manifest.scenario];
    st.scenario = r.manifest.scenario;
    ++st.runs;
    if (r.manifest.status == kRunStatusCompleted) { ++st.completed; }
    if (r.manifest.status == kRunStatusAborted) { ++st.aborted; }
    if (r.manifest.status == kRunStatusFailed) { ++st.failed; }
    auto& pool = pooled[r.manifest.scenario];
    pool.insert(pool.end(), r.step_wall_samples.begin(), r.step_wall_samples.end());
    const auto fold_min = [](double& acc, double v) {
      if (!std::isnan(v)) { acc = std::isnan(acc) ? v : std::min(acc, v); }
    };
    const auto fold_max = [](double& acc, double v) {
      if (!std::isnan(v)) { acc = std::isnan(acc) ? v : std::max(acc, v); }
    };
    fold_max(st.max_abs_energy_drift, std::abs(r.energy_drift_rate));
    fold_min(st.emit_ny_min, r.emit_ny_m_rad);
    fold_max(st.emit_ny_max, r.emit_ny_m_rad);
    fold_min(st.peak_energy_min_J, r.peak_energy_J);
    fold_max(st.peak_energy_max_J, r.peak_energy_J);
    fold_max(st.mem_high_water_max_bytes, r.mem_high_water_bytes);
  }
  for (auto& [name, st] : by_scenario) {
    auto& pool = pooled[name];
    st.step_samples = static_cast<std::int64_t>(pool.size());
    st.step_p50_s = percentile(pool, 50);
    st.step_p99_s = percentile(std::move(pool), 99);
    rep.scenarios.push_back(std::move(st));
  }
  return rep;
}

void write_campaign_markdown(const CampaignReport& rep, std::ostream& os) {
  os << "# Campaign report — " << rep.dir << "\n\n";
  os << "## Campaign\n\n";
  os << "- runs: " << rep.runs_total() << " (completed "
     << rep.runs_with_status(kRunStatusCompleted) << ", aborted "
     << rep.runs_with_status(kRunStatusAborted) << ", failed "
     << rep.runs_with_status(kRunStatusFailed) << ", still running "
     << rep.runs_with_status(kRunStatusRunning) << ")\n";
  os << "- manifests valid: " << rep.runs_valid() << "/" << rep.runs_total() << "\n";
  std::int64_t events = 0;
  bool monotone = true;
  for (const auto& r : rep.runs) {
    events += r.num_events;
    monotone = monotone && r.events_monotone;
  }
  os << "- event-timeline entries: " << events
     << " (ordering: " << (monotone ? "monotone" : "VIOLATED") << ")\n\n";

  os << "| scenario | runs | ok | p50 step [ms] | p99 step [ms] | max |dE|/E/s | "
        "emit_ny [mm mrad] | peak E [MeV] | mem HW [MiB] |\n";
  os << "|---|---:|---:|---:|---:|---:|---:|---:|---:|\n";
  for (const auto& st : rep.scenarios) {
    const auto span = [](double lo, double hi, double scale) {
      if (std::isnan(lo)) { return std::string("-"); }
      if (lo == hi) { return fmt(lo * scale); }
      return fmt(lo * scale) + "–" + fmt(hi * scale);
    };
    os << "| " << st.scenario << " | " << st.runs << " | " << st.completed << " | "
       << fmt(st.step_p50_s * 1e3) << " | " << fmt(st.step_p99_s * 1e3) << " | "
       << fmt(st.max_abs_energy_drift) << " | "
       << span(st.emit_ny_min, st.emit_ny_max, 1e6) << " | "
       << span(st.peak_energy_min_J, st.peak_energy_max_J, 1.0 / (1e6 * kQe)) << " | "
       << fmt(st.mem_high_water_max_bytes / (1024.0 * 1024.0)) << " |\n";
  }

  os << "\n## Runs\n\n";
  os << "| run id | scenario | status | steps | sim t [fs] | wall [s] | events | "
        "alerts | manifest |\n";
  os << "|---|---|---|---:|---:|---:|---:|---:|---|\n";
  for (const auto& r : rep.runs) {
    const auto& m = r.manifest;
    os << "| " << (m.run_id.empty() ? "?" : m.run_id) << " | "
       << (m.scenario.empty() ? "?" : m.scenario) << " | "
       << (m.status.empty() ? "?" : m.status) << " | " << m.steps_done << " | "
       << fmt(m.sim_time_s * 1e15) << " | " << fmt(m.wall_s) << " | " << r.num_events
       << " | " << m.num_alerts << " | " << (r.manifest_ok ? "ok" : "INVALID")
       << " |\n";
  }

  os << "\n## Failed-run triage\n\n";
  bool any = false;
  for (const auto& r : rep.runs) {
    const bool bad = !r.manifest_ok || r.manifest.status == kRunStatusAborted ||
                     r.manifest.status == kRunStatusFailed;
    if (!bad) { continue; }
    any = true;
    os << "- `" << (r.manifest.run_id.empty() ? r.dir : r.manifest.run_id) << "` ("
       << (r.manifest.scenario.empty() ? "unknown scenario" : r.manifest.scenario)
       << "): status " << (r.manifest.status.empty() ? "unknown" : r.manifest.status)
       << ", exit " << r.manifest.exit_code;
    if (!r.manifest.reason.empty()) { os << " — " << r.manifest.reason; }
    os << "\n";
    for (const auto& e : r.errors) { os << "  - manifest: " << e << "\n"; }
    if (!r.triage.empty()) {
      const auto& ev = r.triage.back();
      os << "  - last critical event: [" << ev.category << "/" << ev.kind << "] step "
         << ev.step << (ev.detail.empty() ? "" : " — " + ev.detail) << "\n";
    }
  }
  if (!any) { os << "none — every run completed with a valid manifest.\n"; }
}

bool write_campaign_markdown(const CampaignReport& rep, const std::string& path) {
  std::ofstream os(path, std::ios::trunc);
  if (!os) { return false; }
  write_campaign_markdown(rep, os);
  return static_cast<bool>(os);
}

void write_campaign_json(const CampaignReport& rep, std::ostream& os) {
  json::Writer w(os);
  w.begin_object().field("schema", kCampaignSchema).field("dir", rep.dir);
  w.field("runs_total", std::int64_t(rep.runs_total()))
      .field("runs_valid", std::int64_t(rep.runs_valid()))
      .field("completed", std::int64_t(rep.runs_with_status(kRunStatusCompleted)))
      .field("aborted", std::int64_t(rep.runs_with_status(kRunStatusAborted)))
      .field("failed", std::int64_t(rep.runs_with_status(kRunStatusFailed)));
  w.begin_array("scenarios");
  for (const auto& st : rep.scenarios) {
    w.begin_object()
        .field("scenario", st.scenario)
        .field("runs", std::int64_t(st.runs))
        .field("completed", std::int64_t(st.completed))
        .field("aborted", std::int64_t(st.aborted))
        .field("failed", std::int64_t(st.failed))
        .field("step_samples", st.step_samples)
        .field("step_p50_s", st.step_p50_s)
        .field("step_p99_s", st.step_p99_s)
        .field("max_abs_energy_drift", st.max_abs_energy_drift)
        .field("emit_ny_min_m_rad", st.emit_ny_min)
        .field("emit_ny_max_m_rad", st.emit_ny_max)
        .field("peak_energy_min_J", st.peak_energy_min_J)
        .field("peak_energy_max_J", st.peak_energy_max_J)
        .field("mem_high_water_max_bytes", st.mem_high_water_max_bytes)
        .end_object();
  }
  w.end_array();
  w.begin_array("runs");
  for (const auto& r : rep.runs) {
    w.begin_object()
        .field("dir", r.dir)
        .field("run_id", r.manifest.run_id)
        .field("scenario", r.manifest.scenario)
        .field("status", r.manifest.status)
        .field("exit_code", std::int64_t(r.manifest.exit_code))
        .field("manifest_ok", r.manifest_ok)
        .field("steps_done", r.manifest.steps_done)
        .field("sim_time_s", r.manifest.sim_time_s)
        .field("wall_s", r.manifest.wall_s)
        .field("step_p50_s", r.step_p50_s)
        .field("step_p99_s", r.step_p99_s)
        .field("energy_drift_rate", r.energy_drift_rate)
        .field("emit_ny_m_rad", r.emit_ny_m_rad)
        .field("peak_energy_J", r.peak_energy_J)
        .field("mem_high_water_bytes", r.mem_high_water_bytes)
        .field("num_events", r.num_events)
        .field("num_critical", r.num_critical)
        .field("events_monotone", r.events_monotone);
    w.begin_array("errors");
    for (const auto& e : r.errors) { w.value(e); }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
}

bool write_campaign_json(const CampaignReport& rep, const std::string& path) {
  std::ofstream os(path, std::ios::trunc);
  if (!os) { return false; }
  write_campaign_json(rep, os);
  return static_cast<bool>(os);
}

} // namespace mrpic::obs
