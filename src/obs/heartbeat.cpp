#include "src/obs/heartbeat.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/obs/json.hpp"

namespace mrpic::obs {

ProgressHeartbeat::ProgressHeartbeat(HeartbeatConfig cfg, std::string run_id)
    : m_cfg(std::move(cfg)),
      m_run_id(std::move(run_id)),
      m_start(std::chrono::steady_clock::now()),
      m_last(m_start) {}

void ProgressHeartbeat::set_totals(std::int64_t steps_total, double t_end_s) {
  m_steps_total = steps_total;
  m_t_end_s = t_end_s;
}

bool ProgressHeartbeat::update(std::int64_t step, double sim_time_s,
                               const std::string& phase,
                               const std::string& last_alert_severity) {
  const auto now = std::chrono::steady_clock::now();
  const double dt = std::chrono::duration<double>(now - m_last).count();
  if (m_last_step >= 0 && step > m_last_step && dt > 0) {
    const double inst = static_cast<double>(step - m_last_step) / dt;
    m_rate = m_updates <= 1 ? inst : m_cfg.alpha * inst + (1 - m_cfg.alpha) * m_rate;
  }
  m_last = now;
  m_last_step = step;
  ++m_updates;

  // Fraction done + ETA from whichever target binds first.
  double frac_steps = 0, frac_time = 0;
  if (m_steps_total > 0) {
    frac_steps = std::clamp(static_cast<double>(step) / static_cast<double>(m_steps_total),
                            0.0, 1.0);
  }
  if (m_t_end_s > 0) { frac_time = std::clamp(sim_time_s / m_t_end_s, 0.0, 1.0); }
  m_frac = std::max(frac_steps, frac_time);
  m_eta_s = std::numeric_limits<double>::quiet_NaN();
  if (m_rate > 0 && m_frac > 0 && m_frac < 1) {
    // Steps-equivalent remaining: scale the steps done by the unfinished
    // fraction (exact when the step target binds; a rate-consistent estimate
    // when only t_end is known).
    const double steps_done = static_cast<double>(step);
    m_eta_s = steps_done * (1 - m_frac) / (m_frac * m_rate);
  } else if (m_frac >= 1) {
    m_eta_s = 0;
  }

  const bool due = m_updates == 1 ||
                   (m_cfg.interval_steps > 0 && step % m_cfg.interval_steps == 0);
  if (!due) { return false; }
  return write(step, sim_time_s, phase, "running", last_alert_severity);
}

bool ProgressHeartbeat::finalize(const std::string& status, std::int64_t step,
                                 double sim_time_s) {
  return write(step, sim_time_s, "done", status, "");
}

bool ProgressHeartbeat::write(std::int64_t step, double sim_time_s,
                              const std::string& phase, const std::string& status,
                              const std::string& last_alert_severity) {
  if (m_cfg.path.empty()) { return false; }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - m_start).count();
  std::ostringstream ss;
  json::Writer w(ss);
  w.begin_object()
      .field("schema", kProgressSchema)
      .field("run_id", m_run_id)
      .field("status", status)
      .field("phase", phase)
      .field("step", step)
      .field("steps_total", m_steps_total)
      .field("sim_time_s", sim_time_s)
      .field("t_end_s", m_t_end_s)
      .field("fraction_done", m_frac)
      .field("steps_per_s", m_rate)
      .field("eta_s", m_eta_s)  // null when unknown (json maps NaN to null)
      .field("wall_s", wall_s)
      .field("last_alert_severity", last_alert_severity)
      .field("updated_unix", static_cast<std::int64_t>(std::time(nullptr)))
      .end_object();

  const std::string tmp = m_cfg.path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::trunc);
    if (!os) { return false; }
    os << ss.str() << '\n';
    os.flush();
    if (!os) { return false; }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, m_cfg.path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    return false;
  }
  ++m_writes;
  return true;
}

} // namespace mrpic::obs
