#include "src/obs/locality.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace mrpic::obs {

namespace {

// Cell key of particle p — must match src/particles/sorting.cpp so the
// metrics predict exactly what sort_tile_by_cell would do.
template <int DIM>
std::int64_t cell_key(const particles::ParticleTile<DIM>& tile, std::size_t p,
                      const Geometry<DIM>& geom, const Box<DIM>& valid) {
  IntVect<DIM> cell;
  for (int d = 0; d < DIM; ++d) {
    int i = geom.cell_index(tile.x[d][p], d);
    i = std::clamp(i, valid.lo(d), valid.hi(d));
    cell[d] = i;
  }
  return valid.index(cell);
}

double reuse_fraction(const std::vector<std::int64_t>& keys) {
  if (keys.size() < 2) { return 0; }
  std::int64_t hits = 0;
  for (std::size_t p = 1; p < keys.size(); ++p) {
    if (std::llabs(keys[p] - keys[p - 1]) < kCellsPerCacheLine) { ++hits; }
  }
  return static_cast<double>(hits) / static_cast<double>(keys.size() - 1);
}

} // namespace

TileLocality locality_from_keys(const std::vector<std::int64_t>& keys) {
  TileLocality loc;
  loc.particles = static_cast<std::int64_t>(keys.size());
  if (keys.size() < 2) { return loc; }
  const std::size_t npairs = keys.size() - 1;
  loc.pairs = static_cast<std::int64_t>(npairs);

  std::vector<std::int64_t> strides(npairs);
  std::int64_t inversions = 0;
  double stride_sum = 0;
  for (std::size_t p = 1; p < keys.size(); ++p) {
    const std::int64_t d = keys[p] - keys[p - 1];
    if (d < 0) { ++inversions; }
    strides[p - 1] = std::llabs(d);
    stride_sum += static_cast<double>(strides[p - 1]);
  }
  loc.inversion_fraction =
      static_cast<double>(inversions) / static_cast<double>(npairs);
  loc.mean_stride_cells = stride_sum / static_cast<double>(npairs);
  std::sort(strides.begin(), strides.end());
  const std::size_t p99_idx =
      static_cast<std::size_t>(std::floor(0.99 * static_cast<double>(npairs - 1)));
  loc.p99_stride_cells = static_cast<double>(strides[p99_idx]);
  loc.line_reuse = reuse_fraction(keys);

  std::vector<std::int64_t> sorted = keys;
  std::sort(sorted.begin(), sorted.end());
  loc.sorted_line_reuse = reuse_fraction(sorted);

  const double miss_now = 1.0 - kLineReuseSaving * loc.line_reuse;
  const double miss_sorted = 1.0 - kLineReuseSaving * loc.sorted_line_reuse;
  loc.predicted_sort_speedup = miss_sorted > 0 ? miss_now / miss_sorted : 1.0;
  return loc;
}

void merge_locality(TileLocality& into, const TileLocality& add) {
  if (add.pairs <= 0) {
    into.particles += add.particles;
    return;
  }
  if (into.pairs <= 0) {
    const std::int64_t particles = into.particles + add.particles;
    into = add;
    into.particles = particles;
    return;
  }
  const double wa = static_cast<double>(into.pairs);
  const double wb = static_cast<double>(add.pairs);
  const double w = wa + wb;
  auto blend = [&](double a, double b) { return (wa * a + wb * b) / w; };
  into.inversion_fraction = blend(into.inversion_fraction, add.inversion_fraction);
  into.mean_stride_cells = blend(into.mean_stride_cells, add.mean_stride_cells);
  into.p99_stride_cells = std::max(into.p99_stride_cells, add.p99_stride_cells);
  into.line_reuse = blend(into.line_reuse, add.line_reuse);
  into.sorted_line_reuse = blend(into.sorted_line_reuse, add.sorted_line_reuse);
  const double miss_now = 1.0 - kLineReuseSaving * into.line_reuse;
  const double miss_sorted = 1.0 - kLineReuseSaving * into.sorted_line_reuse;
  into.predicted_sort_speedup = miss_sorted > 0 ? miss_now / miss_sorted : 1.0;
  into.particles += add.particles;
  into.pairs += add.pairs;
}

template <int DIM>
TileLocality tile_locality(const particles::ParticleTile<DIM>& tile,
                           const Geometry<DIM>& geom, const Box<DIM>& valid,
                           std::size_t max_sample) {
  const std::size_t n = std::min(tile.size(), max_sample);
  std::vector<std::int64_t> keys(n);
  for (std::size_t p = 0; p < n; ++p) { keys[p] = cell_key(tile, p, geom, valid); }
  return locality_from_keys(keys);
}

template TileLocality tile_locality<2>(const particles::ParticleTile<2>&,
                                       const Geometry<2>&, const Box<2>&, std::size_t);
template TileLocality tile_locality<3>(const particles::ParticleTile<3>&,
                                       const Geometry<3>&, const Box<3>&, std::size_t);

} // namespace mrpic::obs
