#pragma once

// obs::MetricsRegistry — named counters and gauges unified across the
// subsystems that previously kept private tallies: particles pushed and
// cells advanced (core), halo bytes/messages and compute/comm seconds
// (cluster::StepCost), load imbalance and rebalances (dist::LoadBalancer),
// FLOPs (perf::FlopCounter). Counters are monotone int64 accumulators
// (atomic adds, safe from OpenMP threads); gauges are last-write-wins
// doubles. begin_step()/end_step() bracket one PIC step and snapshot the
// per-step counter deltas plus current gauge values into a StepRecord; the
// history serializes as JSONL (one JSON object per step) for machine
// consumption by the scaling benches and future perf PRs.

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace mrpic::obs {

class Counter {
public:
  void add(std::int64_t n) { m_value.fetch_add(n, std::memory_order_relaxed); }
  void inc() { add(1); }
  std::int64_t value() const { return m_value.load(std::memory_order_relaxed); }

private:
  friend class MetricsRegistry;
  std::atomic<std::int64_t> m_value{0};
};

class Gauge {
public:
  void set(double v) { m_value.store(v, std::memory_order_relaxed); }
  double value() const { return m_value.load(std::memory_order_relaxed); }

private:
  std::atomic<double> m_value{0};
};

// One step's worth of metrics: counter deltas over the step plus gauge
// values at step end, plus an optional per-rank section (one map per
// simulated rank, e.g. compute_s/comm_s/bytes from cluster::SimCluster).
struct StepRecord {
  using RankSection = std::map<std::string, double>;

  std::int64_t step = -1;
  std::map<std::string, std::int64_t> counters;
  std::map<std::string, double> gauges;
  std::vector<RankSection> ranks;  // empty = no per-rank section

  bool operator==(const StepRecord& o) const {
    return step == o.step && counters == o.counters && gauges == o.gauges &&
           ranks == o.ranks;
  }
};

class MetricsRegistry {
public:
  // Look up or create. Returned references stay valid for the registry's
  // lifetime (deque storage); lookups are mutex-guarded, updates atomic.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);

  std::int64_t counter_value(std::string_view name) const;
  double gauge_value(std::string_view name) const;

  // --- per-step pipeline -------------------------------------------------
  // Mark the start of a step: remembers current counter values so end_step
  // can report deltas.
  void begin_step(std::int64_t step);
  // Snapshot deltas + gauges into the history and return the record.
  StepRecord end_step();
  // Attach a per-rank section to the in-flight step (consumed by the next
  // end_step; repeated calls within a step overwrite). Typically fed by
  // cluster::SimCluster when a metrics registry is attached to it.
  void set_step_ranks(std::vector<StepRecord::RankSection> ranks);

  const std::deque<StepRecord>& history() const { return m_history; }
  // Keep at most n records (0 = unbounded, the default).
  void set_history_limit(std::size_t n);
  void clear_history() { m_history.clear(); }

  // --- JSONL -------------------------------------------------------------
  // One {"step":...,"counters":{...},"gauges":{...}[,"ranks":[...]]} object
  // per line.
  void write_jsonl(std::ostream& os) const;
  bool write_jsonl(const std::string& path) const;
  static void write_record(const StepRecord& rec, std::ostream& os);
  // Parse records back. Malformed lines AND valid-JSON lines missing the
  // "step" schema tag are skipped (and counted into *num_malformed when
  // given) so a truncated or contaminated run's metrics file is still
  // loadable; throws std::runtime_error only when the file cannot be opened.
  static std::vector<StepRecord> read_jsonl(const std::string& path,
                                            std::size_t* num_malformed = nullptr);
  // Parse one line (throws std::runtime_error on malformed input).
  static StepRecord parse_record(const std::string& line);

private:
  mutable std::mutex m_mu;
  // deques: stable addresses under growth.
  std::deque<Counter> m_counter_storage;
  std::deque<Gauge> m_gauge_storage;
  std::map<std::string, Counter*, std::less<>> m_counters;
  std::map<std::string, Gauge*, std::less<>> m_gauges;

  std::int64_t m_step = -1;
  bool m_in_step = false;
  std::map<std::string, std::int64_t> m_step_base; // counter values at begin_step
  std::vector<StepRecord::RankSection> m_step_ranks; // pending per-rank section
  std::deque<StepRecord> m_history;
  std::size_t m_history_limit = 0;
};

} // namespace mrpic::obs
