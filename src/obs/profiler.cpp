#include "src/obs/profiler.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdio>
#include <unordered_map>

namespace mrpic::obs {

namespace {
// Distinguishes profiler instances (and reset() epochs) so that the
// thread-local stack cache can never be confused by address reuse.
std::atomic<std::uint64_t> g_generation{1};
} // namespace

// Per-thread open-region stack. Cached thread-locally per (profiler,
// generation) so scope open/close never contends on anything but the one
// profiler mutex, and stale entries from destroyed/reset profilers are
// ignored by the generation check.
struct Profiler::ThreadCtx {
  std::uint64_t generation = 0;
  int tid = -1;
  std::vector<int> stack; // open node indices, innermost last
};

Profiler::Profiler()
    : m_epoch(clock::now()), m_generation(g_generation.fetch_add(1) + 1) {}

Profiler::~Profiler() = default;

Profiler::ThreadCtx& Profiler::thread_ctx() {
  thread_local std::unordered_map<const Profiler*, ThreadCtx> cache;
  ThreadCtx& ctx = cache[this];
  if (ctx.generation != m_generation) {
    ctx.generation = m_generation;
    ctx.stack.clear();
    std::lock_guard<std::mutex> lock(m_mu);
    ctx.tid = m_next_tid++;
  }
  return ctx;
}

int Profiler::open_scope(std::string_view name) {
  ThreadCtx& ctx = thread_ctx();
  std::lock_guard<std::mutex> lock(m_mu);
  const int parent = ctx.stack.empty() ? -1 : ctx.stack.back();
  // Find the (parent, name) node; region fan-out is small, linear is fine.
  const std::vector<int>& siblings = parent < 0 ? m_roots : m_nodes[parent].children;
  int node = -1;
  for (int c : siblings) {
    if (m_nodes[c].name == name) {
      node = c;
      break;
    }
  }
  if (node < 0) {
    node = static_cast<int>(m_nodes.size());
    Node n;
    n.name = std::string(name);
    n.parent = parent;
    m_nodes.push_back(std::move(n));
    (parent < 0 ? m_roots : m_nodes[parent].children).push_back(node);
  }
  ctx.stack.push_back(node);
  return node;
}

void Profiler::close_scope(int node, clock::time_point start) {
  const auto end = clock::now();
  const double dt = std::chrono::duration<double>(end - start).count();
  ThreadCtx& ctx = thread_ctx();
  std::lock_guard<std::mutex> lock(m_mu);
  if (node < 0 || node >= static_cast<int>(m_nodes.size())) { return; } // reset() raced
  RegionStats& s = m_nodes[node].stats;
  s.inclusive_s += dt;
  ++s.count;
  s.min_s = std::min(s.min_s, dt);
  s.max_s = std::max(s.max_s, dt);
  // Pop this thread's stack (scopes close LIFO; a moved-from scope closing
  // out of order just unwinds to its entry).
  while (!ctx.stack.empty()) {
    const int top = ctx.stack.back();
    ctx.stack.pop_back();
    if (top == node) { break; }
  }
  if (m_tracing) {
    if (m_events.size() < m_max_events) {
      TraceEvent ev;
      ev.name = m_nodes[node].name;
      ev.ts_us = std::chrono::duration<double, std::micro>(start - m_epoch).count();
      ev.dur_us = dt * 1e6;
      ev.tid = ctx.tid;
      ev.step = m_step;
      m_events.push_back(std::move(ev));
    } else {
      ++m_dropped_events;
    }
  }
}

void Profiler::set_step(std::int64_t step) {
  std::lock_guard<std::mutex> lock(m_mu);
  m_step = step;
}

std::int64_t Profiler::current_step() const {
  std::lock_guard<std::mutex> lock(m_mu);
  return m_step;
}

void Profiler::set_tracing(bool on) {
  std::lock_guard<std::mutex> lock(m_mu);
  m_tracing = on;
}

bool Profiler::tracing() const {
  std::lock_guard<std::mutex> lock(m_mu);
  return m_tracing;
}

void Profiler::set_max_trace_events(std::size_t n) {
  std::lock_guard<std::mutex> lock(m_mu);
  m_max_events = n;
}

std::size_t Profiler::dropped_trace_events() const {
  std::lock_guard<std::mutex> lock(m_mu);
  return m_dropped_events;
}

std::vector<TraceEvent> Profiler::trace_events() const {
  std::lock_guard<std::mutex> lock(m_mu);
  return m_events;
}

std::vector<Profiler::Node> Profiler::snapshot() const {
  std::vector<Node> nodes;
  {
    std::lock_guard<std::mutex> lock(m_mu);
    nodes = m_nodes;
  }
  for (Node& n : nodes) {
    double child_incl = 0;
    for (int c : n.children) { child_incl += nodes[c].stats.inclusive_s; }
    n.stats.exclusive_s = std::max(0.0, n.stats.inclusive_s - child_incl);
  }
  return nodes;
}

RegionStats Profiler::stats(std::string_view path) const {
  const auto nodes = snapshot();
  std::vector<int> roots;
  {
    std::lock_guard<std::mutex> lock(m_mu);
    roots = m_roots;
  }
  const std::vector<int>* level = &roots;
  int node = -1;
  std::size_t pos = 0;
  while (pos <= path.size()) {
    const std::size_t slash = path.find('/', pos);
    const std::string_view part =
        path.substr(pos, slash == std::string_view::npos ? std::string_view::npos
                                                         : slash - pos);
    node = -1;
    for (int c : *level) {
      if (nodes[c].name == part) {
        node = c;
        break;
      }
    }
    if (node < 0) { return RegionStats{0, 0, 0, 0, 0}; }
    level = &nodes[node].children;
    if (slash == std::string_view::npos) { break; }
    pos = slash + 1;
  }
  return nodes[node].stats;
}

std::map<std::string, RegionStats> Profiler::flat_totals() const {
  std::map<std::string, RegionStats> out;
  for (const Node& n : snapshot()) {
    RegionStats& s = out[n.name];
    s.inclusive_s += n.stats.inclusive_s;
    s.exclusive_s += n.stats.exclusive_s;
    s.count += n.stats.count;
    s.min_s = std::min(s.min_s, n.stats.min_s);
    s.max_s = std::max(s.max_s, n.stats.max_s);
  }
  return out;
}

namespace {

void report_node(std::ostream& os, const std::vector<Profiler::Node>& nodes, int idx,
                 int depth) {
  const auto& n = nodes[idx];
  const auto& s = n.stats;
  char line[256];
  std::string name(static_cast<std::size_t>(2 * depth), ' ');
  name += n.name;
  std::snprintf(line, sizeof(line), "  %-34s %10.4f %10.4f %8lld %10.5f %10.5f %10.5f\n",
                name.c_str(), s.inclusive_s, s.exclusive_s,
                static_cast<long long>(s.count), s.mean_s(),
                s.count > 0 ? s.min_s : 0.0, s.max_s);
  os << line;
  std::vector<int> kids = n.children;
  std::sort(kids.begin(), kids.end(), [&](int a, int b) {
    return nodes[a].stats.inclusive_s > nodes[b].stats.inclusive_s;
  });
  for (int c : kids) { report_node(os, nodes, c, depth + 1); }
}

} // namespace

void Profiler::report(std::ostream& os) const {
  const auto nodes = snapshot();
  std::vector<int> roots;
  {
    std::lock_guard<std::mutex> lock(m_mu);
    roots = m_roots;
  }
  char header[256];
  std::snprintf(header, sizeof(header), "  %-34s %10s %10s %8s %10s %10s %10s\n", "region",
                "incl(s)", "excl(s)", "count", "mean(s)", "min(s)", "max(s)");
  os << header;
  std::sort(roots.begin(), roots.end(), [&](int a, int b) {
    return nodes[a].stats.inclusive_s > nodes[b].stats.inclusive_s;
  });
  for (int r : roots) { report_node(os, nodes, r, 0); }
}

void Profiler::reset() {
  std::lock_guard<std::mutex> lock(m_mu);
  m_nodes.clear();
  m_roots.clear();
  m_events.clear();
  m_dropped_events = 0;
  m_step = -1;
  m_next_tid = 0;
  m_epoch = clock::now();
  m_generation = g_generation.fetch_add(1) + 1;
}

} // namespace mrpic::obs
