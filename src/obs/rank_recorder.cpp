#include "src/obs/rank_recorder.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "src/dist/imbalance.hpp"
#include "src/obs/event_log.hpp"

namespace mrpic::obs {
namespace {

EventSeverity fault_event_severity(const std::string& kind) {
  if (kind == "crash") { return EventSeverity::Critical; }
  if (kind == "slowdown" || kind == "detect" || kind == "rollback" ||
      kind == "remap" || kind == "replay") {
    return EventSeverity::Warn;
  }
  return EventSeverity::Info;  // checkpoint / health_checkpoint / unknown
}

} // namespace

double RankStepBreakdown::max_compute_s() const {
  double m = 0;
  for (const auto& r : ranks) { m = std::max(m, r.compute_s); }
  return m;
}

double RankStepBreakdown::mean_compute_s() const {
  if (ranks.empty()) { return 0; }
  double sum = 0;
  for (const auto& r : ranks) { sum += r.compute_s; }
  return sum / static_cast<double>(ranks.size());
}

double RankStepBreakdown::imbalance() const {
  std::vector<double> loads(ranks.size());
  for (std::size_t r = 0; r < ranks.size(); ++r) { loads[r] = ranks[r].compute_s; }
  return dist::max_over_mean(loads);
}

double RankStepBreakdown::max_total_s() const {
  double m = 0;
  for (const auto& r : ranks) { m = std::max(m, r.total_s()); }
  return m;
}

void RankRecorder::add_step(RankStepBreakdown breakdown, std::vector<HaloMessage> messages) {
  if (m_nranks == 0) { m_nranks = static_cast<int>(breakdown.ranks.size()); }
  for (auto& msg : messages) {
    msg.step = breakdown.step;
    if (m_messages.size() >= m_max_messages) {
      ++m_dropped_messages;
      continue;
    }
    m_messages.push_back(msg);
  }
  m_steps.push_back(std::move(breakdown));
}

void RankRecorder::set_last_step_resident_bytes(const std::vector<std::int64_t>& bytes) {
  if (m_steps.empty() || m_steps.back().ranks.size() != bytes.size()) { return; }
  auto& ranks = m_steps.back().ranks;
  for (std::size_t r = 0; r < ranks.size(); ++r) {
    ranks[r].resident_bytes = bytes[r];
  }
}

void RankRecorder::add_rebalance(RebalanceRecord rec) {
  if (rec.step < 0) { rec.step = m_step; }
  if (m_event_log != nullptr) {
    m_event_log->publish("rebalance", "remap", EventSeverity::Info, rec.step, "",
                         {{"nranks", double(rec.rank_cost_after.size())},
                          {"imbalance_before", rec.imbalance_before},
                          {"imbalance_after", rec.imbalance_after}});
  }
  m_rebalances.push_back(std::move(rec));
}

void RankRecorder::add_fault_event(FaultEvent ev) {
  if (ev.step < 0) { ev.step = m_step; }
  if (m_event_log != nullptr) {
    m_event_log->publish("resil", ev.kind, fault_event_severity(ev.kind), ev.step,
                         ev.detail,
                         {{"rank", double(ev.rank)}, {"cost_s", ev.time_s}});
  }
  m_fault_events.push_back(std::move(ev));
}

void RankRecorder::clear() {
  m_steps.clear();
  m_messages.clear();
  m_rebalances.clear();
  m_fault_events.clear();
  m_dropped_messages = 0;
}

void RankRecorder::write_rank_heatmap_csv(std::ostream& os) const {
  os << "step,rank,boxes,compute_s,comm_s,total_s,bytes_sent,bytes_recv,messages,"
        "step_imbalance\n";
  char buf[64];
  const auto num = [&buf](double v) {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return std::string(buf);
  };
  for (const auto& step : m_steps) {
    const double imb = step.imbalance();
    for (const auto& r : step.ranks) {
      os << step.step << ',' << r.rank << ',' << r.boxes << ',' << num(r.compute_s)
         << ',' << num(r.comm_s) << ',' << num(r.total_s()) << ',' << r.bytes_sent
         << ',' << r.bytes_recv << ',' << r.messages << ',' << num(imb) << '\n';
    }
  }
}

bool RankRecorder::write_rank_heatmap_csv(const std::string& path) const {
  std::ofstream os(path);
  if (!os) { return false; }
  write_rank_heatmap_csv(os);
  return static_cast<bool>(os);
}

void RankRecorder::write_memory_heatmap_csv(std::ostream& os) const {
  os << "step,rank,boxes,resident_bytes,step_total_bytes,step_max_bytes,"
        "mem_imbalance\n";
  char buf[64];
  const auto num = [&buf](double v) {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return std::string(buf);
  };
  std::vector<double> loads;
  for (const auto& step : m_steps) {
    std::int64_t total = 0, peak = 0;
    loads.assign(step.ranks.size(), 0);
    for (std::size_t r = 0; r < step.ranks.size(); ++r) {
      total += step.ranks[r].resident_bytes;
      peak = std::max(peak, step.ranks[r].resident_bytes);
      loads[r] = static_cast<double>(step.ranks[r].resident_bytes);
    }
    const double imb = dist::max_over_mean(loads);
    for (const auto& r : step.ranks) {
      os << step.step << ',' << r.rank << ',' << r.boxes << ',' << r.resident_bytes
         << ',' << total << ',' << peak << ',' << num(imb) << '\n';
    }
  }
}

bool RankRecorder::write_memory_heatmap_csv(const std::string& path) const {
  std::ofstream os(path);
  if (!os) { return false; }
  write_memory_heatmap_csv(os);
  return static_cast<bool>(os);
}

} // namespace mrpic::obs
