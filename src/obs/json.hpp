#pragma once

// Minimal JSON support for the observability layer: a writer with correct
// string escaping / number formatting (Chrome traces, metrics JSONL, bench
// --json output) and a small recursive-descent parser used by tests and
// tooling to re-load what we emit — plus foreign telemetry documents: the
// parser decodes the full \uXXXX range (including UTF-16 surrogate pairs,
// rejecting lone surrogates) to UTF-8 and bounds container nesting at 200
// levels (a hostile "[[[[..." fails cleanly instead of overflowing the
// stack). Still not a general-purpose JSON library: numbers parse as
// double, and objects are sorted maps (duplicate keys keep the first).

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace mrpic::obs::json {

// --- writing --------------------------------------------------------------

// Escape and double-quote a string for embedding in a JSON document.
std::string quote(std::string_view s);

// Format a double with enough digits to round-trip; maps non-finite values
// to null (JSON has no NaN/Inf).
std::string number(double v);
inline std::string number(std::int64_t v) { return std::to_string(v); }

// Incremental writer for flat-ish documents (objects/arrays of scalars),
// handling the comma bookkeeping. Nesting is supported via begin/end pairs.
class Writer {
public:
  explicit Writer(std::ostream& os) : m_os(os) {}

  Writer& begin_object() { return open('{'); }
  Writer& end_object() { return close('}'); }
  Writer& begin_array() { return open('['); }
  Writer& end_array() { return close(']'); }

  // Keyed variants (inside an object).
  Writer& begin_object(std::string_view key) { return member(key).open_raw('{'); }
  Writer& begin_array(std::string_view key) { return member(key).open_raw('['); }

  Writer& field(std::string_view key, std::string_view v) {
    member(key).m_os << quote(v);
    return *this;
  }
  Writer& field(std::string_view key, const char* v) {
    return field(key, std::string_view(v));
  }
  Writer& field(std::string_view key, double v) {
    member(key).m_os << number(v);
    return *this;
  }
  Writer& field(std::string_view key, std::int64_t v) {
    member(key).m_os << number(v);
    return *this;
  }
  Writer& field(std::string_view key, int v) { return field(key, std::int64_t(v)); }
  Writer& field(std::string_view key, bool v) {
    member(key).m_os << (v ? "true" : "false");
    return *this;
  }

  // Array elements.
  Writer& value(double v) {
    comma().m_os << number(v);
    return *this;
  }
  Writer& value(std::int64_t v) {
    comma().m_os << number(v);
    return *this;
  }
  Writer& value(std::string_view v) {
    comma().m_os << quote(v);
    return *this;
  }

private:
  Writer& comma() {
    if (m_need_comma) { m_os << ','; }
    m_need_comma = true;
    return *this;
  }
  Writer& member(std::string_view key) {
    comma().m_os << quote(key) << ':';
    return *this;
  }
  Writer& open(char c) {
    comma();
    return open_raw(c);
  }
  Writer& open_raw(char c) {
    m_os << c;
    m_need_comma = false;
    return *this;
  }
  Writer& close(char c) {
    m_os << c;
    m_need_comma = true;
    return *this;
  }

  std::ostream& m_os;
  bool m_need_comma = false;
};

// --- parsing --------------------------------------------------------------

class Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

class Value {
public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  Value() = default;
  explicit Value(bool b) : m_type(Type::Bool), m_bool(b) {}
  explicit Value(double d) : m_type(Type::Number), m_num(d) {}
  explicit Value(std::string s) : m_type(Type::String), m_str(std::move(s)) {}
  explicit Value(Array a) : m_type(Type::Array), m_arr(std::make_shared<Array>(std::move(a))) {}
  explicit Value(Object o)
      : m_type(Type::Object), m_obj(std::make_shared<Object>(std::move(o))) {}

  Type type() const { return m_type; }
  bool is_null() const { return m_type == Type::Null; }
  bool is_bool() const { return m_type == Type::Bool; }
  bool is_number() const { return m_type == Type::Number; }
  bool is_string() const { return m_type == Type::String; }
  bool is_array() const { return m_type == Type::Array; }
  bool is_object() const { return m_type == Type::Object; }

  bool as_bool() const { return m_bool; }
  double as_number() const { return m_num; }
  std::int64_t as_int() const { return static_cast<std::int64_t>(m_num); }
  const std::string& as_string() const { return m_str; }
  const Array& as_array() const { return *m_arr; }
  const Object& as_object() const { return *m_obj; }

  // Object member access; returns a shared Null for missing keys.
  const Value& operator[](const std::string& key) const;
  bool has(const std::string& key) const {
    return is_object() && m_obj->count(key) > 0;
  }

private:
  Type m_type = Type::Null;
  bool m_bool = false;
  double m_num = 0;
  std::string m_str;
  std::shared_ptr<Array> m_arr;
  std::shared_ptr<Object> m_obj;
};

// Parse a complete JSON document. Throws std::runtime_error (with byte
// offset) on malformed input or trailing garbage.
Value parse(std::string_view text);

} // namespace mrpic::obs::json
