#pragma once

// obs::RankRecorder — cluster-level observability sink. Where the profiler
// and MetricsRegistry observe the real process, the RankRecorder observes
// the *simulated* cluster (cluster::SimCluster): per-rank compute/comm
// breakdowns for every recorded step, a message-level log of the modeled
// halo exchanges (src/dst rank, bytes, latency + transfer time), and
// before/after per-rank cost snapshots around every load-balancer remap.
// This is the per-rank evidence behind the paper's scaling analysis
// (Figs. 9-11): which ranks are compute-bound vs halo-bound and how
// imbalance evolves as the laser propagates.
//
// Exporters: write_rank_heatmap_csv() (step x rank matrix, the Fig. 9-style
// artifact) here; per-rank Chrome-trace lanes with flow events between
// ranks in trace.hpp. Recording is driver-side and single-threaded (the
// simulated cluster is evaluated from the stepping thread).

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace mrpic::obs {

class EventLog;

// One rank's share of one recorded step (modeled seconds).
struct RankStepStats {
  int rank = 0;
  double compute_s = 0;            // summed cost of the rank's boxes
  double comm_s = 0;               // halo-exchange time charged to the rank
  double retry_s = 0;              // part of comm_s from fault retries/timeouts
  // Halo phase split (post_s + wait_s == comm_s; zero when the producer
  // predates the phase timeline): time posting nonblocking sends/recvs vs
  // time blocked on the wire, plus the compute available for overlap.
  double post_s = 0;               // nonblocking post sub-span of comm_s
  double wait_s = 0;               // blocked-on-wire sub-span of comm_s
  double interior_compute_s = 0;   // part of compute_s on ghost-free interior
                                   // cells (overlappable with the exchange)
  double overlap_headroom_s = 0;   // min(wait_s, interior_compute_s): step
                                   // time a nonblocking overlap could hide
  std::int64_t bytes_sent = 0;     // inter-rank bytes leaving this rank
  std::int64_t bytes_recv = 0;     // inter-rank bytes arriving at this rank
  std::int64_t messages = 0;       // inter-rank messages touching this rank
  std::int64_t retries = 0;        // retransmission attempts touching this rank
  int boxes = 0;                   // boxes mapped to this rank
  std::int64_t resident_bytes = 0; // modeled resident memory of the rank
                                   // (fields + particles of its boxes + MR/
                                   // shared terms; 0 when memory obs is off)
  double total_s() const { return compute_s + comm_s; }
};

// One modeled inter-rank halo message (same-rank copies are not messages).
struct HaloMessage {
  std::int64_t step = -1;
  int src_rank = 0;   // owner of the box supplying the ghost data
  int dst_rank = 0;   // owner of the box whose ghosts are filled
  int src_box = 0;
  int dst_box = 0;
  std::int64_t bytes = 0;
  double latency_s = 0;   // per-message wire latency component
  double transfer_s = 0;  // bytes / bandwidth component
  int attempts = 1;       // wire sends (> 1 when fault retries fired)
  double retry_s = 0;     // extra protocol time beyond the clean send
  double time_s() const { return latency_s + transfer_s; }
};

// One sparse fault/recovery event on the simulated cluster's timeline:
// injected faults ("slowdown", "crash"), the detection and recovery
// protocol ("detect", "rollback", "remap", "replay") and checkpoint writes
// ("checkpoint"). Rendered as instant events on the Chrome-trace rank lanes
// and counted into the metrics JSONL by the emitters (resil::ResilientRunner,
// core::Simulation).
struct FaultEvent {
  std::int64_t step = -1;
  std::string kind;
  int rank = -1;      // affected rank (-1 = cluster-wide)
  double time_s = 0;  // modeled cost/duration of the event (0 = instant)
  std::string detail; // free-form context ("rank 2 of 4", "rolled back 7 steps")
};

// Full per-rank breakdown of one step.
struct RankStepBreakdown {
  std::int64_t step = -1;
  std::vector<RankStepStats> ranks;  // one entry per rank, idle ranks included

  double max_compute_s() const;
  double mean_compute_s() const;
  // max/mean compute over ranks; 1 when there is no compute. Matches
  // cluster::StepCost::imbalance bit-for-bit (same arithmetic, same rank set).
  double imbalance() const;
  double max_total_s() const;  // max over ranks of compute + comm
};

// Per-rank summed box costs immediately before and after one rebalance.
struct RebalanceRecord {
  std::int64_t step = -1;
  std::vector<double> rank_cost_before;
  std::vector<double> rank_cost_after;
  double imbalance_before = 1;
  double imbalance_after = 1;
};

class RankRecorder {
public:
  explicit RankRecorder(int nranks = 0) : m_nranks(nranks) {}

  int nranks() const { return m_nranks; }

  // Tag subsequent records with a step number (set by the driver once per
  // step; sweeps may use any monotone index).
  void set_step(std::int64_t step) { m_step = step; }
  std::int64_t current_step() const { return m_step; }

  // Bound on the message log (default 1<<20); excess messages are counted
  // but dropped.
  void set_max_messages(std::size_t n) { m_max_messages = n; }
  std::size_t dropped_messages() const { return m_dropped_messages; }

  // Forward fault events and rebalance snapshots into the unified per-run
  // event timeline (non-owning; nullptr = off). Fault-event kinds map to
  // severities there: crash -> Critical; slowdown/detect/rollback/remap/
  // replay -> Warn; checkpoints and everything else -> Info.
  void set_event_log(EventLog* log) { m_event_log = log; }

  // --- sinks (SimCluster::step_cost / LoadBalancer) ----------------------
  // Append one step's breakdown plus its message log. The breakdown's step
  // tag wins; messages are re-tagged to match.
  void add_step(RankStepBreakdown breakdown, std::vector<HaloMessage> messages);
  // Attach the per-rank resident-bytes lane to the most recent step (the
  // memory model is evaluated by the driver right after the cost replay;
  // no-op when no step has been recorded or sizes mismatch).
  void set_last_step_resident_bytes(const std::vector<std::int64_t>& bytes);
  void add_rebalance(RebalanceRecord rec);
  // Append a fault/recovery event (resil layer). A negative step is tagged
  // with the current step.
  void add_fault_event(FaultEvent ev);

  // --- captured data ------------------------------------------------------
  const std::vector<RankStepBreakdown>& steps() const { return m_steps; }
  const std::vector<HaloMessage>& messages() const { return m_messages; }
  const std::vector<RebalanceRecord>& rebalances() const { return m_rebalances; }
  const std::vector<FaultEvent>& fault_events() const { return m_fault_events; }
  void clear();

  // --- exporters ----------------------------------------------------------
  // step x rank matrix as CSV, one row per (step, rank):
  //   step,rank,boxes,compute_s,comm_s,total_s,bytes_sent,bytes_recv,
  //   messages,step_imbalance
  // with the per-step max/mean compute ratio repeated on each of the step's
  // rows (the paper's Fig. 9-style imbalance heatmap).
  void write_rank_heatmap_csv(std::ostream& os) const;
  bool write_rank_heatmap_csv(const std::string& path) const;
  // step x rank resident-bytes matrix as CSV, one row per (step, rank):
  //   step,rank,boxes,resident_bytes,step_total_bytes,step_max_bytes,
  //   mem_imbalance
  // with the per-step total/max/imbalance (max over mean resident bytes)
  // repeated on each of the step's rows — the memory analogue of the
  // compute-imbalance heatmap, feeding the first-rank-to-OOM analysis
  // (obs::predict_first_oom).
  void write_memory_heatmap_csv(std::ostream& os) const;
  bool write_memory_heatmap_csv(const std::string& path) const;

private:
  int m_nranks = 0;
  std::int64_t m_step = -1;
  EventLog* m_event_log = nullptr;
  std::size_t m_max_messages = std::size_t(1) << 20;
  std::size_t m_dropped_messages = 0;
  std::vector<RankStepBreakdown> m_steps;
  std::vector<HaloMessage> m_messages;
  std::vector<RebalanceRecord> m_rebalances;
  std::vector<FaultEvent> m_fault_events;
};

} // namespace mrpic::obs
