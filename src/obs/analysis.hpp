#pragma once

// obs::analysis — the layer that turns recorded telemetry into answers
// (paper Sec. VII: *why* does efficiency drop at scale, not just *that* it
// drops). Three engines over RankRecorder data plus a roofline placement:
//
//  1. Step DAG + critical path. Each recorded step becomes a dependency
//     graph: one compute node per rank, one node per logged halo message
//     (serialized in recorded order on both endpoint NICs, eligible only
//     once both endpoints' predecessors are done), and a residual halo node
//     absorbing unlogged comm so every rank's chain length equals its
//     recorded compute_s + comm_s exactly. The longest chain through that
//     graph is the step's critical path: the rank/message sequence that
//     gates the step, with its composition split into compute, halo
//     transfer, wire latency and resil (retry) time. The DAG makespan can
//     exceed the scalar model total (max over ranks of compute+comm): a
//     cross-rank latency chain the per-rank sums cannot see.
//
//  2. Scaling-loss decomposition. For one point of a weak/strong-scaling
//     sweep, 1 - efficiency is split into imbalance, serialized comm
//     transfer, message latency, resil (retry + detection + checkpoint) and
//     a residual term. The terms are constructed from the identity
//       T = (C_max - C_mean) + (W_lat + W_xfer + W_retry) + detect + ckpt
//           + (C_mean - T_ideal) + T_ideal
//     so  loss = 1 - T_ideal/T  ==  sum of the term fractions, exactly (the
//     invariant asserted by tests/obs/test_analysis.cpp). For clean sweeps
//     (uniform per-rank work equal to the ideal) the residual is zero.
//
//  3. Roofline attribution. Kernels (flops from perf::FlopCounter, bytes
//     from the PIC traffic metadata) are placed against a machine's Table
//     II peaks: arithmetic intensity, the machine's roof at that intensity,
//     and — when a measured time is available — the attainment fraction.
//
// perf_report.hpp packages these into Markdown/JSON reports; the scaling
// benches expose them under --attribution.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/obs/rank_recorder.hpp"
#include "src/perf/flop_counter.hpp"
#include "src/perf/machine.hpp"

namespace mrpic::obs::analysis {

// ---------------------------------------------------------------------------
// 1. Step DAG + critical path
// ---------------------------------------------------------------------------

enum class SegmentKind {
  Compute,       // a rank's summed box work
  Message,       // one logged inter-rank halo message (on both NICs)
  HaloResidual,  // per-rank comm time not covered by logged messages
};

const char* to_string(SegmentKind k);

struct DagNode {
  SegmentKind kind = SegmentKind::Compute;
  int rank = -1;          // executing rank (Message: the later-ready endpoint)
  int src_rank = -1;      // Message only
  int dst_rank = -1;      // Message only
  int msg_index = -1;     // index into the step's message list (Message only)
  double duration_s = 0;
  double latency_s = 0;   // Message split: duration = latency+transfer+retry
  double transfer_s = 0;
  double retry_s = 0;
  double start_s = 0;     // earliest start given dependencies
  double finish_s = 0;    // start + duration
  int pred = -1;          // critical predecessor node index (-1 = chain start)
};

struct StepDag {
  std::int64_t step = -1;
  int nranks = 0;
  std::vector<DagNode> nodes;
  double makespan_s = 0;        // finish time of the whole step
  int sink = -1;                // node attaining the makespan
  double modeled_total_s = 0;   // max over ranks of compute_s + comm_s
};

// Build the dependency DAG of one step from its per-rank breakdown and the
// step's logged messages (obtain them with step_messages()). Messages whose
// endpoints are outside the breakdown's rank set are ignored.
StepDag build_step_dag(const RankStepBreakdown& step,
                       const std::vector<HaloMessage>& messages);

struct CriticalPath {
  std::int64_t step = -1;
  double makespan_s = 0;
  double modeled_total_s = 0;
  std::vector<DagNode> segments;  // chain start -> step finish
  // Composition of the path (sums over segments; adds up to makespan_s).
  double compute_s = 0;
  double transfer_s = 0;   // halo transfer incl. residual halo time
  double latency_s = 0;
  double retry_s = 0;      // resil overhead on the path
  std::vector<int> rank_chain;  // ranks traversed, consecutive dups removed
};

CriticalPath critical_path(const StepDag& dag);
CriticalPath critical_path(const RankStepBreakdown& step,
                           const std::vector<HaloMessage>& messages);

// Messages of one recorded step (recorder order preserved).
std::vector<HaloMessage> step_messages(const RankRecorder& rec, std::int64_t step);

// One critical path per recorded step.
std::vector<CriticalPath> critical_paths(const RankRecorder& rec);

// Aggregate composition over many steps plus per-rank evidence.
struct CriticalPathSummary {
  int steps = 0;
  double makespan_s = 0;
  double compute_s = 0;
  double transfer_s = 0;
  double latency_s = 0;
  double retry_s = 0;
  // Seconds each rank spends on a critical path / number of steps whose
  // path finishes on the rank (straggler evidence; indexed by rank).
  std::vector<double> critical_s_per_rank;
  std::vector<int> finishes_per_rank;
  // Ranks ordered by descending critical-path seconds.
  std::vector<int> stragglers() const;
};

CriticalPathSummary summarize(const std::vector<CriticalPath>& paths, int nranks);

// ---------------------------------------------------------------------------
// 2. Scaling-loss decomposition
// ---------------------------------------------------------------------------

// One node count's share of the efficiency loss. All terms are fractions of
// the modeled step time T; by construction
//   loss = 1 - efficiency = imbalance + comm + latency + resil + residual
// exactly (see decompose_loss).
struct LossTerms {
  double nodes = 0;
  double total_s = 0;       // T: C_max + W_max + detect + checkpoint
  double ideal_s = 0;       // perfectly-scaled time at this point
  double efficiency = 0;    // ideal_s / total_s
  double loss = 0;          // 1 - efficiency
  double imbalance = 0;     // (C_max - C_mean) / T
  double comm = 0;          // serialized transfer on the comm-critical rank
  double latency = 0;       // per-message wire latency on that rank
  double resil = 0;         // retries + failure detection + checkpoints
  double residual = 0;      // (C_mean - ideal_s) / T; 0 for clean sweeps
  double lambda = 1;        // max/mean compute (dist::max_over_mean)
  int compute_critical_rank = -1;
  int comm_critical_rank = -1;

  double sum() const { return imbalance + comm + latency + resil + residual; }
  double invariant_gap() const { return sum() - loss; }
};

// Decompose one sweep point. `latency_s` is the wire model's per-message
// latency (cluster::CommModel::latency_s); `ideal_s` the perfectly-scaled
// step time (weak scaling: the base point's total; strong scaling: base
// total * base_nodes/nodes); `detect_s`/`checkpoint_s` the resil charges on
// the step (cluster::StepCost::detect_s, measured checkpoint seconds).
LossTerms decompose_loss(const RankStepBreakdown& step, double latency_s,
                         double ideal_s, double detect_s = 0, double checkpoint_s = 0);

// Run-level variant: ideal = mean compute over ranks, so the loss is the
// step's parallel-overhead fraction (imbalance + comm + latency + resil)
// with residual identically zero.
LossTerms decompose_step_overhead(const RankStepBreakdown& step, double latency_s,
                                  double detect_s = 0, double checkpoint_s = 0);

// ---------------------------------------------------------------------------
// 3. Roofline attribution
// ---------------------------------------------------------------------------

struct KernelRoofline {
  std::string kernel;
  double flops = 0;           // total floating-point operations
  double bytes = 0;           // total DRAM traffic
  double intensity = 0;       // flops/byte
  double peak_tflops = 0;     // device DP vendor peak
  double peak_tbyte_s = 0;    // device vendor memory bandwidth
  double roof_tflops = 0;     // min(peak, intensity * bandwidth)
  bool memory_bound = false;  // intensity below the machine's ridge point
  double time_s = 0;          // measured seconds (0 = placement only)
  double attained_tflops = 0; // flops / time (when time_s > 0)
  double attainment = 0;      // attained_tflops / roof_tflops
};

KernelRoofline roofline_point(const std::string& kernel, double flops, double bytes,
                              const perf::Machine& m, double time_s = 0);

// Place every kernel of a FlopCounter against `m`. `kernel_bytes` supplies
// the traffic metadata (kernels absent from the map are placed with the
// machine's ridge-point intensity so they still appear, flagged by
// bytes == 0); `kernel_seconds` optionally supplies measured times.
std::vector<KernelRoofline> roofline(const perf::FlopCounter& fc,
                                     const std::map<std::string, double>& kernel_bytes,
                                     const perf::Machine& m,
                                     const std::map<std::string, double>& kernel_seconds = {});

// Canonical DRAM traffic metadata of the production PIC stages (bytes per
// step), consistent with perf::StepTimeModel's aggregate 400 B/cell +
// 5000 B/particle split across the stages that touch each data structure.
std::map<std::string, double> pic_kernel_bytes(double particles, double cells,
                                               bool mixed_precision = false);

} // namespace mrpic::obs::analysis
