#pragma once

// obs::locality — sampled particle memory-access locality metrics (ISSUE 9
// tentpole b): how far the gather/deposit stencils of consecutive particles
// are from each other in cell-major memory, and how much a cell-binned sort
// (ROADMAP item 2, paper Sec. V.A.1 "grid tiling and particle sorting")
// would buy. The metrics are computed over the same cell keys the counting
// sort in src/particles/sorting.cpp uses (clamped cell index in Fortran
// order of the tile's valid box), so "0 inversions" here is exactly
// `is_sorted_by_cell() == true` there.
//
// Cache-line model: a field cache line covers kCellsPerCacheLine contiguous
// cells of the innermost dimension; a consecutive-particle stride below that
// is assumed to hit the line the previous particle loaded. The predicted
// sort speedup compares the modeled miss fraction of the observed order
// against the same tile's keys in sorted order:
//     speedup = (1 - h * line_reuse) / (1 - h * sorted_line_reuse),
// with h = 1 - 1/kCellsPerCacheLine the fraction of gather traffic that a
// reused line saves. It is a bandwidth-bound upper-bound model (no cache
// capacity term), deliberately simple enough to verify in closed form.

#include <cstdint>
#include <vector>

#include "src/amr/box.hpp"
#include "src/amr/geometry.hpp"
#include "src/particles/particle_container.hpp"

namespace mrpic::obs {

// Cells of the innermost dimension covered by one field cache line
// (64 B line / 8 B double = 8 cells).
inline constexpr int kCellsPerCacheLine = 8;

// Fraction of stencil traffic saved when a particle reuses the previous
// particle's cache line instead of streaming a fresh one.
inline constexpr double kLineReuseSaving =
    1.0 - 1.0 / static_cast<double>(kCellsPerCacheLine);

struct TileLocality {
  std::int64_t particles = 0;  // particles sampled
  std::int64_t pairs = 0;      // consecutive pairs examined (particles - 1)
  // Fraction of consecutive pairs in descending cell order (~0 for a
  // cell-sorted tile, ~0.5 for a random shuffle).
  double inversion_fraction = 0;
  // Mean / 99th-percentile |cell-key stride| between consecutive particles.
  double mean_stride_cells = 0;
  double p99_stride_cells = 0;
  // Fraction of pairs with |stride| < kCellsPerCacheLine (modeled line hit),
  // as observed and for the same keys in sorted order.
  double line_reuse = 0;
  double sorted_line_reuse = 0;
  // Modeled gather-bandwidth speedup of sorting this tile (>= ~1).
  double predicted_sort_speedup = 1.0;
};

// Locality metrics of one cell-key sequence in particle order. Fewer than
// two keys yield an all-zero result (speedup 1).
TileLocality locality_from_keys(const std::vector<std::int64_t>& keys);

// Pair-weighted merge of `add` into `into` (p99 merges as the max — an
// upper bound, since the exact percentile needs the pooled strides).
void merge_locality(TileLocality& into, const TileLocality& add);

// Sample one particle tile: cell keys of the first min(size, max_sample)
// particles (a contiguous prefix, preserving consecutive-pair adjacency)
// against the tile's valid box, then locality_from_keys. Keys replicate
// src/particles/sorting.cpp exactly (clamped cell index, Fortran order).
template <int DIM>
TileLocality tile_locality(const particles::ParticleTile<DIM>& tile,
                           const Geometry<DIM>& geom, const Box<DIM>& valid,
                           std::size_t max_sample = 4096);

extern template TileLocality tile_locality<2>(const particles::ParticleTile<2>&,
                                              const Geometry<2>&, const Box<2>&,
                                              std::size_t);
extern template TileLocality tile_locality<3>(const particles::ParticleTile<3>&,
                                              const Geometry<3>&, const Box<3>&,
                                              std::size_t);

} // namespace mrpic::obs
