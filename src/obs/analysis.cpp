#include "src/obs/analysis.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "src/dist/imbalance.hpp"

namespace mrpic::obs::analysis {

const char* to_string(SegmentKind k) {
  switch (k) {
    case SegmentKind::Compute: return "compute";
    case SegmentKind::Message: return "message";
    case SegmentKind::HaloResidual: return "halo";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// Step DAG
// ---------------------------------------------------------------------------

StepDag build_step_dag(const RankStepBreakdown& step,
                       const std::vector<HaloMessage>& messages) {
  StepDag dag;
  dag.step = step.step;
  dag.nranks = static_cast<int>(step.ranks.size());
  dag.modeled_total_s = step.max_total_s();

  // One compute node per rank; each rank's chain starts there.
  std::vector<int> last_at_rank(step.ranks.size());
  std::vector<double> logged_comm(step.ranks.size(), 0.0);
  for (std::size_t r = 0; r < step.ranks.size(); ++r) {
    DagNode n;
    n.kind = SegmentKind::Compute;
    n.rank = static_cast<int>(r);
    n.duration_s = step.ranks[r].compute_s;
    n.start_s = 0;
    n.finish_s = n.duration_s;
    n.pred = -1;
    last_at_rank[r] = static_cast<int>(dag.nodes.size());
    dag.nodes.push_back(n);
  }

  // Messages serialize on both endpoint NICs in recorded order; a message is
  // eligible once both endpoints' previous chain nodes are done. The global
  // recorded order is a valid topological order, so one forward pass fixes
  // every start time.
  for (std::size_t i = 0; i < messages.size(); ++i) {
    const HaloMessage& m = messages[i];
    if (m.src_rank < 0 || m.src_rank >= dag.nranks || m.dst_rank < 0 ||
        m.dst_rank >= dag.nranks || m.src_rank == m.dst_rank) {
      continue;
    }
    DagNode n;
    n.kind = SegmentKind::Message;
    n.src_rank = m.src_rank;
    n.dst_rank = m.dst_rank;
    n.msg_index = static_cast<int>(i);
    n.latency_s = m.latency_s;
    n.transfer_s = m.transfer_s;
    n.retry_s = m.retry_s;
    n.duration_s = m.latency_s + m.transfer_s + m.retry_s;
    const int src_prev = last_at_rank[m.src_rank];
    const int dst_prev = last_at_rank[m.dst_rank];
    // The later-ready endpoint gates the message and becomes its critical
    // predecessor (ties resolve to the source: the data producer).
    const bool dst_gates = dag.nodes[dst_prev].finish_s > dag.nodes[src_prev].finish_s;
    n.pred = dst_gates ? dst_prev : src_prev;
    n.rank = dst_gates ? m.dst_rank : m.src_rank;
    n.start_s = dag.nodes[n.pred].finish_s;
    n.finish_s = n.start_s + n.duration_s;
    const int node = static_cast<int>(dag.nodes.size());
    dag.nodes.push_back(n);
    last_at_rank[m.src_rank] = node;
    last_at_rank[m.dst_rank] = node;
    logged_comm[m.src_rank] += n.duration_s;
    logged_comm[m.dst_rank] += n.duration_s;
  }

  // Residual halo node per rank: comm time the message log does not cover
  // (same-rank copies, or messages dropped past the recorder's cap). Keeps
  // every rank's chain length equal to its recorded compute_s + comm_s.
  for (std::size_t r = 0; r < step.ranks.size(); ++r) {
    const double residual = step.ranks[r].comm_s - logged_comm[r];
    if (residual <= 1e-15) { continue; }
    DagNode n;
    n.kind = SegmentKind::HaloResidual;
    n.rank = static_cast<int>(r);
    n.duration_s = residual;
    n.transfer_s = residual;
    n.pred = last_at_rank[r];
    n.start_s = dag.nodes[n.pred].finish_s;
    n.finish_s = n.start_s + residual;
    last_at_rank[r] = static_cast<int>(dag.nodes.size());
    dag.nodes.push_back(n);
  }

  for (std::size_t r = 0; r < step.ranks.size(); ++r) {
    const double finish = dag.nodes[last_at_rank[r]].finish_s;
    if (finish > dag.makespan_s) {
      dag.makespan_s = finish;
      dag.sink = last_at_rank[r];
    }
  }
  return dag;
}

CriticalPath critical_path(const StepDag& dag) {
  CriticalPath path;
  path.step = dag.step;
  path.makespan_s = dag.makespan_s;
  path.modeled_total_s = dag.modeled_total_s;
  if (dag.sink < 0) { return path; }

  for (int n = dag.sink; n >= 0; n = dag.nodes[n].pred) {
    path.segments.push_back(dag.nodes[n]);
  }
  std::reverse(path.segments.begin(), path.segments.end());

  for (const DagNode& n : path.segments) {
    switch (n.kind) {
      case SegmentKind::Compute:
        path.compute_s += n.duration_s;
        if (path.rank_chain.empty() || path.rank_chain.back() != n.rank) {
          path.rank_chain.push_back(n.rank);
        }
        break;
      case SegmentKind::Message:
        path.latency_s += n.latency_s;
        path.transfer_s += n.transfer_s;
        path.retry_s += n.retry_s;
        if (path.rank_chain.empty() || path.rank_chain.back() != n.src_rank) {
          path.rank_chain.push_back(n.src_rank);
        }
        if (path.rank_chain.back() != n.dst_rank) {
          path.rank_chain.push_back(n.dst_rank);
        }
        break;
      case SegmentKind::HaloResidual:
        path.transfer_s += n.duration_s;
        if (path.rank_chain.empty() || path.rank_chain.back() != n.rank) {
          path.rank_chain.push_back(n.rank);
        }
        break;
    }
  }
  return path;
}

CriticalPath critical_path(const RankStepBreakdown& step,
                           const std::vector<HaloMessage>& messages) {
  return critical_path(build_step_dag(step, messages));
}

std::vector<HaloMessage> step_messages(const RankRecorder& rec, std::int64_t step) {
  std::vector<HaloMessage> out;
  for (const auto& m : rec.messages()) {
    if (m.step == step) { out.push_back(m); }
  }
  return out;
}

std::vector<CriticalPath> critical_paths(const RankRecorder& rec) {
  // Group messages by step tag in one pass (recorder order is per-step
  // contiguous, but a map keeps this robust against interleaved tags).
  std::map<std::int64_t, std::vector<HaloMessage>> by_step;
  for (const auto& m : rec.messages()) { by_step[m.step].push_back(m); }
  static const std::vector<HaloMessage> none;
  std::vector<CriticalPath> paths;
  paths.reserve(rec.steps().size());
  for (const auto& step : rec.steps()) {
    const auto it = by_step.find(step.step);
    paths.push_back(critical_path(step, it == by_step.end() ? none : it->second));
  }
  return paths;
}

std::vector<int> CriticalPathSummary::stragglers() const {
  std::vector<int> order(critical_s_per_rank.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [this](int a, int b) {
    return critical_s_per_rank[a] > critical_s_per_rank[b];
  });
  while (!order.empty() && critical_s_per_rank[order.back()] <= 0) { order.pop_back(); }
  return order;
}

CriticalPathSummary summarize(const std::vector<CriticalPath>& paths, int nranks) {
  CriticalPathSummary s;
  s.critical_s_per_rank.assign(static_cast<std::size_t>(std::max(nranks, 0)), 0.0);
  s.finishes_per_rank.assign(static_cast<std::size_t>(std::max(nranks, 0)), 0);
  for (const auto& p : paths) {
    ++s.steps;
    s.makespan_s += p.makespan_s;
    s.compute_s += p.compute_s;
    s.transfer_s += p.transfer_s;
    s.latency_s += p.latency_s;
    s.retry_s += p.retry_s;
    for (const auto& seg : p.segments) {
      if (seg.rank >= 0 && seg.rank < nranks) {
        s.critical_s_per_rank[seg.rank] += seg.duration_s;
      }
    }
    if (!p.segments.empty()) {
      // A step ending on a message finishes where the data arrives.
      const auto& last = p.segments.back();
      const int finisher = last.kind == SegmentKind::Message ? last.dst_rank : last.rank;
      if (finisher >= 0 && finisher < nranks) { ++s.finishes_per_rank[finisher]; }
    }
  }
  return s;
}

// ---------------------------------------------------------------------------
// Scaling-loss decomposition
// ---------------------------------------------------------------------------

LossTerms decompose_loss(const RankStepBreakdown& step, double latency_s,
                         double ideal_s, double detect_s, double checkpoint_s) {
  LossTerms t;
  t.nodes = static_cast<double>(step.ranks.size());
  t.ideal_s = ideal_s;

  std::vector<double> compute_loads(step.ranks.size(), 0.0);
  double c_max = 0, c_sum = 0, w_max = 0;
  for (std::size_t r = 0; r < step.ranks.size(); ++r) {
    const auto& rs = step.ranks[r];
    compute_loads[r] = rs.compute_s;
    c_sum += rs.compute_s;
    if (t.compute_critical_rank < 0 || rs.compute_s > c_max) {
      c_max = rs.compute_s;
      t.compute_critical_rank = static_cast<int>(r);
    }
    if (t.comm_critical_rank < 0 || rs.comm_s > w_max) {
      w_max = rs.comm_s;
      t.comm_critical_rank = static_cast<int>(r);
    }
  }
  const double c_mean =
      step.ranks.empty() ? 0.0 : c_sum / static_cast<double>(step.ranks.size());
  t.lambda = dist::max_over_mean(compute_loads);

  const double total = c_max + w_max + detect_s + checkpoint_s;
  t.total_s = total;
  if (total <= 0 || step.ranks.empty()) {
    t.efficiency = 1;
    return t;
  }
  t.efficiency = ideal_s / total;
  t.loss = 1 - t.efficiency;

  // Split the comm-critical rank's serialized comm time exactly:
  //   W_max = messages * latency + transfer + retry
  // (comm_s accumulates latency+bytes/bw+retry per message by construction,
  // plus latency-free same-rank copies, which land in the transfer term).
  const auto& cc = step.ranks[static_cast<std::size_t>(t.comm_critical_rank)];
  const double lat = static_cast<double>(cc.messages) * latency_s;
  const double retry = cc.retry_s;
  const double xfer = cc.comm_s - lat - retry;

  t.imbalance = (c_max - c_mean) / total;
  t.latency = lat / total;
  t.comm = xfer / total;
  t.resil = (retry + detect_s + checkpoint_s) / total;
  t.residual = (c_mean - ideal_s) / total;
  return t;
}

LossTerms decompose_step_overhead(const RankStepBreakdown& step, double latency_s,
                                  double detect_s, double checkpoint_s) {
  double c_sum = 0;
  for (const auto& rs : step.ranks) { c_sum += rs.compute_s; }
  const double c_mean =
      step.ranks.empty() ? 0.0 : c_sum / static_cast<double>(step.ranks.size());
  return decompose_loss(step, latency_s, c_mean, detect_s, checkpoint_s);
}

// ---------------------------------------------------------------------------
// Roofline attribution
// ---------------------------------------------------------------------------

KernelRoofline roofline_point(const std::string& kernel, double flops, double bytes,
                              const perf::Machine& m, double time_s) {
  KernelRoofline p;
  p.kernel = kernel;
  p.flops = flops;
  p.bytes = bytes;
  p.peak_tflops = m.dp_tflops_device;
  p.peak_tbyte_s = m.tbyte_s_device;
  // Ridge point: the intensity where the memory roof meets the compute roof.
  const double ridge = m.tbyte_s_device > 0 ? m.dp_tflops_device / m.tbyte_s_device : 0;
  p.intensity = bytes > 0 ? flops / bytes : ridge;
  // TFlop/s roof at this intensity: (flops/byte) * (TByte/s) = TFlop/s.
  p.roof_tflops = std::min(m.dp_tflops_device, p.intensity * m.tbyte_s_device);
  p.memory_bound = p.intensity * m.tbyte_s_device < m.dp_tflops_device;
  p.time_s = time_s;
  if (time_s > 0) {
    p.attained_tflops = flops / time_s / 1e12;
    p.attainment = p.roof_tflops > 0 ? p.attained_tflops / p.roof_tflops : 0;
  }
  return p;
}

std::vector<KernelRoofline> roofline(const perf::FlopCounter& fc,
                                     const std::map<std::string, double>& kernel_bytes,
                                     const perf::Machine& m,
                                     const std::map<std::string, double>& kernel_seconds) {
  std::vector<KernelRoofline> points;
  points.reserve(fc.per_kernel().size());
  for (const auto& [kernel, ops] : fc.per_kernel()) {
    const auto bit = kernel_bytes.find(kernel);
    const auto sit = kernel_seconds.find(kernel);
    points.push_back(roofline_point(kernel, static_cast<double>(ops.flops()),
                                    bit == kernel_bytes.end() ? 0.0 : bit->second, m,
                                    sit == kernel_seconds.end() ? 0.0 : sit->second));
  }
  return points;
}

std::map<std::string, double> pic_kernel_bytes(double particles, double cells,
                                               bool mixed_precision) {
  // Stage split of perf::StepTimeModel's effective traffic (5000 B/particle
  // + 400 B/cell per step, DP order-3): gather dominates via the stencil
  // taps, deposition via the read-modify-write current accumulation.
  const double f = mixed_precision ? 0.6 : 1.0;
  return {
      {"gather", 2400.0 * particles * f},
      {"push", 600.0 * particles * f},
      {"deposition", 2000.0 * particles * f},
      {"field_solve", 400.0 * cells * f},
  };
}

} // namespace mrpic::obs::analysis
