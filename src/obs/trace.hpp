#pragma once

// Chrome trace-event export (the JSON Array/Object format understood by
// chrome://tracing and Perfetto's legacy loader): every region instance the
// profiler recorded becomes a complete ("ph":"X") event with microsecond
// timestamps, the profiler-assigned thread id and the step number in args.
// Load the file directly in the Perfetto UI to see where any one step went.

#include <ostream>
#include <string>
#include <vector>

#include "src/obs/profiler.hpp"

namespace mrpic::obs {

// Serialize events to `os` as {"traceEvents":[...],"displayTimeUnit":"ms"}.
void write_chrome_trace(const std::vector<TraceEvent>& events, std::ostream& os,
                        const std::string& process_name = "mrpic");

// Convenience: dump a profiler's collected events to `path`. Returns false
// on I/O failure.
bool write_chrome_trace(const Profiler& profiler, const std::string& path,
                        const std::string& process_name = "mrpic");

} // namespace mrpic::obs
