#pragma once

// Chrome trace-event export (the JSON Array/Object format understood by
// chrome://tracing and Perfetto's legacy loader): every region instance the
// profiler recorded becomes a complete ("ph":"X") event with microsecond
// timestamps, the profiler-assigned thread id and the step number in args.
// "M" metadata events name the process and every thread ("main", "worker K")
// so Perfetto lanes carry readable labels instead of bare ids.
//
// When a RankRecorder is supplied, each simulated rank additionally becomes
// its own trace *process* (pid = rank + 1; the real process keeps pid 0):
// per step, a "compute" and a "halo" slice on the rank's lane, and every
// modeled inter-rank halo message a "s"/"f" flow-event pair connecting the
// source rank's halo slice to the destination rank's — load the file in the
// Perfetto UI and the halo exchanges render as arrows between rank lanes.
// Rank lanes use the simulated-cluster's modeled seconds as their timebase
// (steps laid out back-to-back), not the wall clock of pid 0.

#include <ostream>
#include <string>
#include <vector>

#include "src/obs/profiler.hpp"

namespace mrpic::obs {

class RankRecorder;

// Serialize events to `os` as {"traceEvents":[...],"displayTimeUnit":"ms"}.
void write_chrome_trace(const std::vector<TraceEvent>& events, std::ostream& os,
                        const std::string& process_name = "mrpic");

// Combined export: profiler events on pid 0 plus one lane per simulated rank
// with halo-exchange flow events between lanes.
void write_chrome_trace(const std::vector<TraceEvent>& events, const RankRecorder& ranks,
                        std::ostream& os, const std::string& process_name = "mrpic");

// Convenience: dump a profiler's collected events to `path`. Returns false
// on I/O failure.
bool write_chrome_trace(const Profiler& profiler, const std::string& path,
                        const std::string& process_name = "mrpic");
bool write_chrome_trace(const Profiler& profiler, const RankRecorder& ranks,
                        const std::string& path, const std::string& process_name = "mrpic");

} // namespace mrpic::obs
