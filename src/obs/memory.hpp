#pragma once

// obs::MemoryLedger — per-subsystem byte accounting, the memory counterpart
// of the time-side Profiler/MetricsRegistry. Every owning allocation in the
// code charges its byte footprint into a tagged account ("fields.level0.E",
// "particles.electrons.level0", "mr.patch.fine.J", "checkpoint",
// "insitu.stream", ...) and releases it on destruction, so at any instant
// the ledger answers the questions the paper's memory discussion raises:
// how many bytes does each species/level/patch hold, what was the high-water
// mark, and what is the measured MR memory-savings factor relative to an
// equivalent uniform fine grid (the affordability claim behind Fig. 6).
//
// Design:
//  * The ledger is process-global (memory_ledger()): allocations outlive any
//    one Simulation (and resil's replay deliberately rebuilds Simulations in
//    the same process), so high-water marks carry across incarnations unless
//    explicitly reset — see reset_high_water().
//  * Tags are interned once (mutex-guarded) into dense ids; the hot path
//    (charge/release) is pure relaxed atomics on the account, cheap enough
//    to stay always-on.
//  * ScopedMemTag is a thread-local hierarchical tag: nested scopes join
//    with '.', and any MemCharge first charged inside the scope binds to the
//    joined path. Untagged charges land in account "untagged".
//  * MemCharge is the RAII handle embedded in owners (one per BaseFab):
//    update(bytes) re-charges the delta, the destructor releases, copies
//    duplicate the charge and moves transfer it, so the conservation
//    invariant  total_charged - total_released == total_current  holds
//    exactly at every instant (gated in tests/obs/test_memory.cpp).
//
// On top of the raw accounts this header also hosts the two derived models:
// the MR memory-savings factor (measured from ledger bytes and analytic from
// structural cell counts, required to agree within 10%) and the first-rank-
// to-OOM prediction over the per-rank resident-bytes lanes recorded by
// obs::RankRecorder.

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace mrpic::obs {

class RankRecorder;

// Read-only copy of one account's state at snapshot time.
struct MemAccountSnapshot {
  std::string tag;
  std::int64_t current = 0;     // live bytes charged right now
  std::int64_t high_water = 0;  // largest `current` ever seen
  std::int64_t alloc_count = 0; // number of positive charges
  std::int64_t charged = 0;     // cumulative bytes charged
  std::int64_t released = 0;    // cumulative bytes released
};

class MemoryLedger {
public:
  MemoryLedger();

  // Look up or create the account for `tag`; returned ids are dense, stable
  // and valid for the ledger's lifetime. Id 0 is the "untagged" account,
  // which also absorbs everything past the kMaxAccounts cap.
  int intern(std::string_view tag);

  // Hot path: relaxed atomics only (plus a CAS loop for high-water marks).
  void charge(int id, std::int64_t bytes);
  void release(int id, std::int64_t bytes);

  // --- queries -----------------------------------------------------------
  std::int64_t current(std::string_view tag) const;     // exact tag
  std::int64_t high_water(std::string_view tag) const;  // exact tag
  // Sum of `current` over `tag == prefix` and every `tag` starting with
  // `prefix + "."` (so "fields" covers "fields.level0.E" but not "fieldsX").
  std::int64_t current_prefix(std::string_view prefix) const;
  std::int64_t high_water_prefix(std::string_view prefix) const; // sum of marks

  std::int64_t total_current() const;
  std::int64_t total_high_water() const;  // high-water of the *total*
  std::int64_t total_charged() const;
  std::int64_t total_released() const;
  std::int64_t total_alloc_count() const;

  std::vector<MemAccountSnapshot> snapshot() const;

  // Restart the high-water tracking from the current occupancy (per-account
  // marks and the total mark). The default across resil replay incarnations
  // is carry-over — the process-global ledger keeps the pre-crash peak so
  // "worst footprint of the whole campaign" survives the rebuild; call this
  // for per-incarnation peaks instead. Never touches current/charged/
  // released, so conservation is unaffected.
  void reset_high_water();

private:
  struct Account {
    std::string tag;
    std::atomic<std::int64_t> current{0};
    std::atomic<std::int64_t> high_water{0};
    std::atomic<std::int64_t> alloc_count{0};
    std::atomic<std::int64_t> charged{0};
    std::atomic<std::int64_t> released{0};
  };

  const Account* find(std::string_view tag) const;

  // More distinct tags than any real run uses (per-component field fabs x
  // levels + per-species levels + a handful of subsystem accounts is a few
  // hundred); intern() degrades to the "untagged" account past the cap.
  static constexpr int kMaxAccounts = 4096;

  mutable std::mutex m_mu;                       // guards interning only
  std::deque<Account> m_accounts;                // stable addresses
  // Lock-free id -> account map for the charge/release hot path: interning
  // publishes the account pointer with a release store, so readers never
  // touch the deque's internals while it grows under the mutex.
  std::array<std::atomic<Account*>, kMaxAccounts> m_table{};
  std::map<std::string, int, std::less<>> m_ids;
  std::atomic<std::int64_t> m_total_current{0};
  std::atomic<std::int64_t> m_total_high_water{0};
};

// The process-global ledger every MemCharge reports into.
MemoryLedger& memory_ledger();

// RAII hierarchical allocation tag (thread-local). While alive, MemCharges
// first charged on this thread bind to the joined path of every active
// scope, e.g. { ScopedMemTag a("fields.level0"); ScopedMemTag b("E"); ... }
// tags allocations "fields.level0.E".
class ScopedMemTag {
public:
  explicit ScopedMemTag(std::string_view component);
  ~ScopedMemTag();
  ScopedMemTag(const ScopedMemTag&) = delete;
  ScopedMemTag& operator=(const ScopedMemTag&) = delete;

  // Joined path of the active scopes on this thread ("" when none).
  static std::string current_path();
  // Interned id of the active path ("untagged" id 0 when none active).
  static int current_id();
  static bool active();

private:
  std::size_t m_prev_size;
};

// RAII charge handle: owns `bytes()` bytes in account `id` and releases them
// on destruction. The tag binds on the first update (from the active
// ScopedMemTag, or explicitly via the tag constructor) and then sticks:
// resizing or copy-assigning *into* an already-bound handle re-charges the
// byte delta against the original account, so a fab built under
// "fields.level0" stays a level-0 fab even when later refilled from inside
// another scope. Copy-*construction* binds fresh (active scope first, source
// tag as fallback): a scratch copy made under ScopedMemTag("health") charges
// "health", an untagged copy inherits the source's account.
class MemCharge {
public:
  MemCharge() = default;
  // Bind to an explicit tag immediately (no bytes charged yet).
  explicit MemCharge(std::string_view tag);

  MemCharge(const MemCharge& o);
  MemCharge& operator=(const MemCharge& o);
  MemCharge(MemCharge&& o) noexcept;
  MemCharge& operator=(MemCharge&& o) noexcept;
  ~MemCharge();

  // Set the tracked footprint to `bytes` (charges/releases the delta).
  void update(std::int64_t bytes);

  std::int64_t bytes() const { return m_bytes; }
  bool bound() const { return m_id >= 0; }
  int account_id() const { return m_id; }

private:
  void bind_for_copy(const MemCharge& o);

  int m_id = -1;          // < 0: not bound to an account yet
  std::int64_t m_bytes = 0;
};

// ---------------------------------------------------------------------------
// MR memory-savings factor (paper Fig. 6 affordability argument).
//
// savings = bytes(equivalent uniform fine grid) / bytes(MR run)
//
// where the uniform-fine equivalent keeps the level-0 box layout and the
// particles-per-cell density but refines everything by the patch ratio, so
// field and particle bytes both scale by ratio^DIM, while the MR run pays
// level-0 plus the patch surcharge (fine + coarse companion + aux gather
// fields + both patch PMLs). The *measured* variant reads every term from
// ledger accounts (prefixes "fields.level0", "mr", "particles"); the
// *analytic* variant recomputes the same formula from structural cell/
// particle counts with the known component and ghost conventions. Both run
// through mr_savings_from_bytes so any disagreement is purely instrumentation
// coverage, gated at <= 10% in the tests.

struct MrSavings {
  double actual_bytes = 0;        // measured/modeled MR-run footprint
  double uniform_fine_bytes = 0;  // equivalent uniform-fine footprint
  double factor = 1;              // uniform_fine_bytes / actual_bytes (>= 1
                                  // whenever the patch is cheaper than
                                  // refining everything)
};

// Structural description of one MR run, fillable from a Simulation (see
// core::Simulation::mr_savings_inputs) or by hand in the analytic benches.
struct MrSavingsInputs {
  int dim = 2;
  int ratio = 2;
  std::int64_t level0_grown_cells = 0;  // sum over level-0 boxes, ghosts incl.
  std::int64_t fine_grown_cells = 0;    // fine patch region, ghosts included
  std::int64_t coarse_grown_cells = 0;  // coarse companion, ghosts included
  std::int64_t aux_grown_cells = 0;     // aux gather fields (own ghost width;
                                        // 0 = same as fine_grown_cells)
  std::int64_t fine_pml_cells = 0;      // split-fab ring cells, fine patch
  std::int64_t coarse_pml_cells = 0;    // split-fab ring cells, companion
  std::int64_t num_particles = 0;       // all species, all levels
  int field_comps = 9;                  // E,B,J x 3 components
  int aux_comps = 6;                    // aux E,B x 3 components
  int pml_comps = 12;                   // split-field components
  int bytes_per_real = 8;
  int reals_per_particle = 0;           // 0 = dim + 4 (x[dim], u[3], w)
};

// Shared arithmetic: given the MR-run byte terms, form the savings factor.
MrSavings mr_savings_from_bytes(double level0_field_bytes, double mr_bytes,
                                double particle_bytes, int ratio, int dim);

// Analytic model from structural counts (no ledger involved).
MrSavings analytic_mr_savings(const MrSavingsInputs& in);

// Measured model from the given ledger's live accounts.
MrSavings measure_mr_savings(const MemoryLedger& ledger, int ratio, int dim);

// ---------------------------------------------------------------------------
// First-rank-to-OOM prediction over the resident-bytes lanes recorded into a
// RankRecorder (cluster replay). `budget_bytes` is the per-rank (per-device)
// memory budget, e.g. the machine table's HBM capacity.

struct OomPrediction {
  bool predicted = false;      // some (step, rank) exceeded the budget
  std::int64_t step = -1;      // first offending step (-1 when none)
  int rank = -1;               // first offending rank
  std::int64_t peak_bytes = 0; // largest resident bytes over all (step, rank)
  std::int64_t peak_step = -1;
  int peak_rank = -1;
  double headroom = 0;         // budget / peak (>1: fits; <=1: OOM)
};

OomPrediction predict_first_oom(const RankRecorder& rec, double budget_bytes);

// Human-readable byte count ("1.50 GiB") for reports.
std::string format_bytes(double bytes);

} // namespace mrpic::obs
