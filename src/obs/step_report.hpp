#pragma once

// StepReport — the per-step summary Simulation<DIM>::step() publishes after
// every PIC cycle: wall time, work volumes, and the per-region second
// breakdown for exactly this step (the difference of the profiler's flat
// totals across the step). The load balancers and scaling benches consume
// these instead of re-deriving cost from particle counts, mirroring the
// measured-cost instrumentation the paper's Sec. V.C load balancing relies
// on.

#include <cstdint>
#include <map>
#include <string>

#include "src/amr/config.hpp"

namespace mrpic::obs {

struct StepReport {
  std::int64_t step = -1;         // step index just completed
  Real time = 0;                  // simulation time after the step [s]
  double wall_s = 0;              // wall-clock seconds of the whole step
  std::int64_t particles_pushed = 0;
  std::int64_t cells_advanced = 0;
  // Region -> seconds spent in this step (flat, leaf names, inclusive).
  std::map<std::string, double> region_s;

  double region(const std::string& name) const {
    const auto it = region_s.find(name);
    return it == region_s.end() ? 0.0 : it->second;
  }
};

} // namespace mrpic::obs
