#include "src/obs/bench_history.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "src/obs/bench_diff.hpp"

namespace mrpic::obs {

namespace {

// Headline-metric suffixes: a flattened path qualifies when it ends in one
// of these. Deliberately excludes raw second/byte columns that vary per
// host; the point of the ledger is trend-stable model numbers and verdicts.
const char* const kMetricSuffixes[] = {
    "efficiency",      "speedup",    "overhead_frac", "savings_factor",
    "overlap_headroom_s", "intensity", "attainment",   "makespan_s",
    "loss",            "inversion_fraction", "line_reuse", "total_bytes",
};

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool is_headline_metric(const std::string& path) {
  for (const char* suffix : kMetricSuffixes) {
    if (ends_with(path, suffix)) { return true; }
  }
  return false;
}

} // namespace

BenchHistoryEntry extract_bench_history(const json::Value& doc,
                                        const std::string& source,
                                        std::size_t max_metrics) {
  BenchHistoryEntry entry;
  entry.source = source;
  if (doc.has("bench") && doc["bench"].is_string()) {
    entry.bench = doc["bench"].as_string();
  }
  std::map<std::string, json::Value> flat;
  benchdiff::flatten(doc, "", flat);
  for (const auto& [path, value] : flat) {
    if (entry.metrics.size() >= max_metrics) { break; }
    if (value.is_number() && is_headline_metric(path)) {
      entry.metrics.emplace(path, value.as_number());
    }
  }
  return entry;
}

std::string bench_history_line(const BenchHistoryEntry& entry) {
  std::ostringstream os;
  json::Writer w(os);
  w.begin_object()
      .field("schema", entry.schema)
      .field("bench", entry.bench)
      .field("source", entry.source)
      .field("unix_time", entry.unix_time);
  w.begin_object("metrics");
  for (const auto& [path, value] : entry.metrics) { w.field(path, value); }
  w.end_object();
  w.end_object();
  return os.str();
}

BenchHistoryEntry parse_bench_history_line(const std::string& line) {
  const json::Value v = json::parse(line);
  if (!v.is_object()) {
    throw std::runtime_error("bench history record is not an object");
  }
  if (!v.has("schema") || !v["schema"].is_string() ||
      v["schema"].as_string() != kBenchHistorySchema) {
    throw std::runtime_error("bench history record lacks the schema tag");
  }
  BenchHistoryEntry entry;
  entry.schema = v["schema"].as_string();
  if (v["bench"].is_string()) { entry.bench = v["bench"].as_string(); }
  if (v["source"].is_string()) { entry.source = v["source"].as_string(); }
  if (v["unix_time"].is_number()) { entry.unix_time = v["unix_time"].as_int(); }
  if (v["metrics"].is_object()) {
    for (const auto& [path, value] : v["metrics"].as_object()) {
      if (value.is_number()) { entry.metrics.emplace(path, value.as_number()); }
    }
  }
  return entry;
}

bool append_bench_history(const std::string& path, const BenchHistoryEntry& entry) {
  std::ofstream os(path, std::ios::app);
  if (!os) { return false; }
  os << bench_history_line(entry) << '\n';
  os.flush();
  return os.good();
}

std::vector<BenchHistoryEntry> read_bench_history(const std::string& path,
                                                  std::size_t* num_skipped) {
  std::ifstream is(path);
  if (!is) {
    throw std::runtime_error("cannot open bench history ledger: " + path);
  }
  std::vector<BenchHistoryEntry> entries;
  std::size_t skipped = 0;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) { continue; }
    try {
      entries.push_back(parse_bench_history_line(line));
    } catch (const std::exception&) {
      ++skipped;  // malformed or schema-foreign line: skip, keep reading
    }
  }
  if (num_skipped != nullptr) { *num_skipped = skipped; }
  return entries;
}

} // namespace mrpic::obs
