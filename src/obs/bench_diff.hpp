#pragma once

// benchdiff — the perf-regression gate over BENCH_*.json files. Flattens
// two bench documents into metric paths ("simulated_cluster[3].comm_s"),
// compares every numeric leaf under a relative+absolute tolerance and every
// string/bool leaf for equality, and renders a per-metric verdict table.
// Also validates the BENCH_*.json schema (required keys per record for the
// known bench kinds), so a bench that silently stops emitting a metric
// fails CI rather than shrinking the baseline. The bench_compare tool in
// bench/ is a thin CLI over this; tests/obs/test_bench_diff.cpp covers the
// logic in isolation.

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "src/obs/json.hpp"

namespace mrpic::obs::benchdiff {

struct Options {
  double rel_tol = 0.05;   // |cur - base| <= abs_tol + rel_tol * |base|
  double abs_tol = 1e-12;  // absolute floor for near-zero baselines
  std::vector<std::string> ignore;  // skip metric paths containing any of these
};

enum class Status { Pass, Fail, Missing, Extra, Ignored };

struct MetricResult {
  std::string path;
  Status status = Status::Pass;
  double baseline = 0;
  double current = 0;
  double rel_diff = 0;  // |cur - base| / max(|base|, abs_tol)
  std::string note;     // non-numeric mismatch detail
};

struct Report {
  std::vector<MetricResult> results;
  int num_pass = 0, num_fail = 0, num_missing = 0, num_extra = 0, num_ignored = 0;
  // Regression-free: every baseline metric present and within tolerance.
  bool ok() const { return num_fail == 0 && num_missing == 0; }
};

// Flatten scalars (numbers, strings, bools) into path -> value; arrays use
// positional keys (bench output order is deterministic).
void flatten(const json::Value& v, const std::string& prefix,
             std::map<std::string, json::Value>& out);

// Diff `current` against `baseline` metric-by-metric.
Report compare(const json::Value& baseline, const json::Value& current,
               const Options& opt = {});

// Verdict table (every metric when verbose, otherwise only non-Pass rows)
// followed by a summary line.
void print_report(const Report& report, std::ostream& os, bool verbose = false);

// Schema check for a BENCH_*.json document: returns human-readable errors
// (empty = valid). Knows the required keys of the kernels / weak_scaling /
// strong_scaling / resilience / attribution records; unknown bench kinds
// only need a "bench" name.
std::vector<std::string> validate_schema(const json::Value& doc);

} // namespace mrpic::obs::benchdiff
