#pragma once

// obs::EventLog — the unified per-run event timeline (ISSUE 10 tentpole).
// Health alerts, resil fault/checkpoint/recovery events, load-balancer
// rebalance snapshots and run lifecycle transitions all publish into one
// severity-leveled log instead of four disjoint files, so a scheduler or a
// post-mortem tool reads a single causally-ordered timeline per run.
//
// Ordering contract: publish() assigns a monotone sequence number and a
// monotone wall-clock offset (steady_clock since construction) under one
// mutex, so the on-disk order, the seq order and the wall order all agree —
// the campaign_smoke ctest gates this. Durability follows the health-alert
// idiom: when a path is configured every event is appended and flushed at
// emission, so the terminal event of a dying run is on disk before any
// abort unwinds. The reader follows the metrics/insitu tolerance rules:
// malformed lines AND valid-JSON lines whose schema tag is missing or
// foreign are skipped and counted, never fatal.

#include <chrono>
#include <cstdint>
#include <deque>
#include <fstream>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace mrpic::obs {

inline constexpr const char* kEventSchema = "mrpic.event.v1";

enum class EventSeverity { Info, Warn, Critical };

const char* to_string(EventSeverity s);
// Parse a severity name; defaults to Info for unknown strings (reader
// tolerance: a future severity level must not make old tools throw).
EventSeverity event_severity_from_string(const std::string& s);

// One timeline entry. Categories in use: "lifecycle" (run_start/init/
// run_end/abort), "health" (watchdog alerts), "resil" (faults, detection,
// recovery protocol, checkpoints), "rebalance" (load-balancer remaps).
struct Event {
  std::int64_t seq = -1;   // assigned by publish(); strictly increasing
  std::int64_t step = -1;  // simulation step (-1 = outside the step loop)
  double wall_s = 0;       // seconds since EventLog construction (monotone)
  std::string category;
  std::string kind;        // "alert", "crash", "checkpoint", "run_start", ...
  EventSeverity severity = EventSeverity::Info;
  std::string detail;      // free-form context
  // Small ordered numeric payload ("rank", "value", "imbalance_before", ...).
  std::vector<std::pair<std::string, double>> data;

  double value(const std::string& key) const;  // NaN when absent
};

struct EventLogConfig {
  // Append+flush every event to this JSONL file ("" = in-memory only).
  std::string path;
  // Reopen in append mode instead of truncating (replay incarnations).
  bool append = false;
  // Events kept in memory (0 = unbounded). The file always gets everything.
  std::size_t history_limit = 65536;
};

class EventLog {
public:
  explicit EventLog(EventLogConfig cfg = {});

  const EventLogConfig& config() const { return m_cfg; }

  // Finalize (seq + wall_s) and record one event; thread-safe. Returns the
  // finalized event (e.g. for tests asserting the assigned seq).
  Event publish(Event ev);
  Event publish(std::string category, std::string kind, EventSeverity severity,
                std::int64_t step, std::string detail = "",
                std::vector<std::pair<std::string, double>> data = {});

  // --- inspection ---------------------------------------------------------
  std::int64_t num_events() const;
  std::int64_t num_events(EventSeverity s) const;
  // Thread-safe copy of the retained history (bounded by history_limit).
  std::vector<Event> snapshot() const;
  // Events dropped from memory by history_limit (still on disk).
  std::int64_t num_dropped() const;

  // --- serialization ------------------------------------------------------
  // One {"schema":...,"seq":...,...} object (no trailing newline).
  static void write_event(const Event& ev, std::ostream& os);
  static std::string event_line(const Event& ev);
  // Parse one line; throws std::runtime_error on malformed input or a
  // missing/foreign schema tag.
  static Event parse_event(const std::string& line);
  // Tolerant reader: skips malformed and schema-foreign lines (counted into
  // *num_skipped when given); throws only when the file cannot be opened.
  static std::vector<Event> read_events_jsonl(const std::string& path,
                                              std::size_t* num_skipped = nullptr);

private:
  EventLogConfig m_cfg;
  std::chrono::steady_clock::time_point m_start;

  mutable std::mutex m_mu;
  std::ofstream m_os;  // open once; flushed per event
  bool m_os_opened = false;
  std::int64_t m_next_seq = 0;
  std::int64_t m_counts[3] = {0, 0, 0};  // per-severity totals
  std::int64_t m_dropped = 0;
  std::deque<Event> m_history;
};

} // namespace mrpic::obs
