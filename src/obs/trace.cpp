#include "src/obs/trace.hpp"

#include <fstream>
#include <set>

#include "src/obs/json.hpp"
#include "src/obs/rank_recorder.hpp"

namespace mrpic::obs {

namespace {

void write_name_meta(json::Writer& w, const char* kind, int pid, int tid,
                     const std::string& name) {
  w.begin_object().field("name", kind).field("ph", "M").field("pid", pid).field("tid", tid);
  w.begin_object("args").field("name", name).end_object();
  w.end_object();
}

// Profiler events on pid 0, with process/thread naming metadata.
void write_profiler_events(json::Writer& w, const std::vector<TraceEvent>& events,
                           const std::string& process_name) {
  write_name_meta(w, "process_name", 0, 0, process_name);
  std::set<int> tids;
  for (const auto& ev : events) { tids.insert(ev.tid); }
  for (int tid : tids) {
    write_name_meta(w, "thread_name", 0, tid,
                    tid == 0 ? "main" : "worker " + std::to_string(tid));
  }
  for (const auto& ev : events) {
    w.begin_object()
        .field("name", ev.name)
        .field("cat", "mrpic")
        .field("ph", "X")
        .field("ts", ev.ts_us)
        .field("dur", ev.dur_us)
        .field("pid", 0)
        .field("tid", ev.tid);
    w.begin_object("args").field("step", ev.step).end_object();
    w.end_object();
  }
}

// Rank lanes: pid = rank + 1, one synthetic timeline where recorded steps
// are laid out back-to-back (step k spans the max over ranks of its
// compute + comm). Flow events connect the halo slices of message partners.
void write_rank_lanes(json::Writer& w, const RankRecorder& ranks) {
  for (int r = 0; r < ranks.nranks(); ++r) {
    write_name_meta(w, "process_name", r + 1, 0, "rank " + std::to_string(r));
    write_name_meta(w, "thread_name", r + 1, 0, "timeline");
  }

  // Step start offsets on the synthetic timeline, keyed by position in the
  // recorded sequence (steps() and messages() share step tags).
  std::vector<double> step_start_us(ranks.steps().size(), 0.0);
  double t_us = 0;
  for (std::size_t k = 0; k < ranks.steps().size(); ++k) {
    step_start_us[k] = t_us;
    t_us += ranks.steps()[k].max_total_s() * 1e6;
  }

  for (std::size_t k = 0; k < ranks.steps().size(); ++k) {
    const auto& step = ranks.steps()[k];
    const double t0 = step_start_us[k];
    for (const auto& rs : step.ranks) {
      if (rs.compute_s > 0) {
        w.begin_object()
            .field("name", "compute")
            .field("cat", "rank")
            .field("ph", "X")
            .field("ts", t0)
            .field("dur", rs.compute_s * 1e6)
            .field("pid", rs.rank + 1)
            .field("tid", 0);
        w.begin_object("args")
            .field("step", step.step)
            .field("boxes", rs.boxes)
            .end_object();
        w.end_object();
      }
      if (rs.comm_s > 0) {
        // Producers that split comm into phases get back-to-back halo_post /
        // halo_wait sub-spans (post_s + wait_s == comm_s, so the lane covers
        // the same interval); legacy recorders keep the single halo slice.
        const bool phased = rs.post_s + rs.wait_s > 0;
        if (phased && rs.post_s > 0) {
          w.begin_object()
              .field("name", "halo_post")
              .field("cat", "rank")
              .field("ph", "X")
              .field("ts", t0 + rs.compute_s * 1e6)
              .field("dur", rs.post_s * 1e6)
              .field("pid", rs.rank + 1)
              .field("tid", 0);
          w.begin_object("args")
              .field("step", step.step)
              .field("messages", rs.messages)
              .end_object();
          w.end_object();
        }
        if (phased && rs.wait_s > 0) {
          w.begin_object()
              .field("name", "halo_wait")
              .field("cat", "rank")
              .field("ph", "X")
              .field("ts", t0 + (rs.compute_s + rs.post_s) * 1e6)
              .field("dur", rs.wait_s * 1e6)
              .field("pid", rs.rank + 1)
              .field("tid", 0);
          w.begin_object("args")
              .field("step", step.step)
              .field("bytes_sent", rs.bytes_sent)
              .field("bytes_recv", rs.bytes_recv)
              .field("messages", rs.messages)
              .field("interior_compute_s", rs.interior_compute_s)
              .field("overlap_headroom_s", rs.overlap_headroom_s)
              .end_object();
          w.end_object();
        }
        if (!phased) {
          w.begin_object()
              .field("name", "halo")
              .field("cat", "rank")
              .field("ph", "X")
              .field("ts", t0 + rs.compute_s * 1e6)
              .field("dur", rs.comm_s * 1e6)
              .field("pid", rs.rank + 1)
              .field("tid", 0);
          w.begin_object("args")
              .field("step", step.step)
              .field("bytes_sent", rs.bytes_sent)
              .field("bytes_recv", rs.bytes_recv)
              .field("messages", rs.messages)
              .end_object();
          w.end_object();
        }
      }
    }
  }

  // Flow events: "s" anchored inside the source rank's halo slice, "f"
  // (binding point "e": the enclosing slice) inside the destination's.
  // Matching cat+id pairs them; Perfetto draws the arrow between lanes.
  std::int64_t flow_id = 0;
  std::size_t k = 0;
  for (const auto& msg : ranks.messages()) {
    while (k + 1 < ranks.steps().size() && ranks.steps()[k].step != msg.step) { ++k; }
    if (k >= ranks.steps().size() || ranks.steps()[k].step != msg.step) { continue; }
    const auto& step = ranks.steps()[k];
    const auto halo_mid_us = [&](int rank) {
      const auto& rs = step.ranks[static_cast<std::size_t>(rank)];
      return step_start_us[k] + (rs.compute_s + rs.comm_s / 2) * 1e6;
    };
    w.begin_object()
        .field("name", "halo_msg")
        .field("cat", "halo")
        .field("ph", "s")
        .field("id", flow_id)
        .field("ts", halo_mid_us(msg.src_rank))
        .field("pid", msg.src_rank + 1)
        .field("tid", 0);
    w.begin_object("args").field("bytes", msg.bytes).end_object();
    w.end_object();
    w.begin_object()
        .field("name", "halo_msg")
        .field("cat", "halo")
        .field("ph", "f")
        .field("bp", "e")
        .field("id", flow_id)
        .field("ts", halo_mid_us(msg.dst_rank))
        .field("pid", msg.dst_rank + 1)
        .field("tid", 0);
    w.begin_object("args").field("bytes", msg.bytes).end_object();
    w.end_object();
    ++flow_id;
  }

  // Fault/recovery events (crash, detect, rollback, remap, replay,
  // checkpoint, slowdown) as instant events on the affected rank's lane,
  // anchored at the start of their step (events past the recorded steps
  // land at the end of the timeline).
  for (const auto& ev : ranks.fault_events()) {
    double ts = t_us;
    for (std::size_t j = 0; j < ranks.steps().size(); ++j) {
      if (ranks.steps()[j].step == ev.step) {
        ts = step_start_us[j];
        break;
      }
    }
    w.begin_object()
        .field("name", ev.kind)
        .field("cat", "fault")
        .field("ph", "i")
        .field("s", "p")
        .field("ts", ts)
        .field("pid", (ev.rank < 0 ? 0 : ev.rank) + 1)
        .field("tid", 0);
    w.begin_object("args")
        .field("step", ev.step)
        .field("rank", ev.rank)
        .field("time_s", ev.time_s)
        .field("detail", ev.detail)
        .end_object();
    w.end_object();
  }
}

void write_trace_doc(std::ostream& os, const std::vector<TraceEvent>& events,
                     const RankRecorder* ranks, const std::string& process_name) {
  json::Writer w(os);
  w.begin_object();
  w.begin_array("traceEvents");
  write_profiler_events(w, events, process_name);
  if (ranks != nullptr) { write_rank_lanes(w, *ranks); }
  w.end_array();
  w.field("displayTimeUnit", "ms");
  w.end_object();
  os << '\n';
}

} // namespace

void write_chrome_trace(const std::vector<TraceEvent>& events, std::ostream& os,
                        const std::string& process_name) {
  write_trace_doc(os, events, nullptr, process_name);
}

void write_chrome_trace(const std::vector<TraceEvent>& events, const RankRecorder& ranks,
                        std::ostream& os, const std::string& process_name) {
  write_trace_doc(os, events, &ranks, process_name);
}

bool write_chrome_trace(const Profiler& profiler, const std::string& path,
                        const std::string& process_name) {
  std::ofstream os(path);
  if (!os) { return false; }
  write_chrome_trace(profiler.trace_events(), os, process_name);
  return static_cast<bool>(os);
}

bool write_chrome_trace(const Profiler& profiler, const RankRecorder& ranks,
                        const std::string& path, const std::string& process_name) {
  std::ofstream os(path);
  if (!os) { return false; }
  write_chrome_trace(profiler.trace_events(), ranks, os, process_name);
  return static_cast<bool>(os);
}

} // namespace mrpic::obs
