#include "src/obs/trace.hpp"

#include <fstream>

#include "src/obs/json.hpp"

namespace mrpic::obs {

void write_chrome_trace(const std::vector<TraceEvent>& events, std::ostream& os,
                        const std::string& process_name) {
  json::Writer w(os);
  w.begin_object();
  w.begin_array("traceEvents");
  // Process-name metadata event (shown as the track group title).
  w.begin_object()
      .field("name", "process_name")
      .field("ph", "M")
      .field("pid", 0)
      .field("tid", 0);
  w.begin_object("args").field("name", process_name).end_object();
  w.end_object();
  for (const auto& ev : events) {
    w.begin_object()
        .field("name", ev.name)
        .field("cat", "mrpic")
        .field("ph", "X")
        .field("ts", ev.ts_us)
        .field("dur", ev.dur_us)
        .field("pid", 0)
        .field("tid", ev.tid);
    w.begin_object("args").field("step", ev.step).end_object();
    w.end_object();
  }
  w.end_array();
  w.field("displayTimeUnit", "ms");
  w.end_object();
  os << '\n';
}

bool write_chrome_trace(const Profiler& profiler, const std::string& path,
                        const std::string& process_name) {
  std::ofstream os(path);
  if (!os) { return false; }
  write_chrome_trace(profiler.trace_events(), os, process_name);
  return static_cast<bool>(os);
}

} // namespace mrpic::obs
