#pragma once

// JSON persistence for obs::RankRecorder: a run (or a sweep) dumps its
// per-rank telemetry — step breakdowns, the message-level halo log,
// rebalance snapshots and fault events — as one self-describing document
// ({"format":"mrpic-ranks","version":1,...}), and the perf_report CLI (or
// any later analysis) re-loads it without re-running the simulation. The
// round trip is lossless for everything obs::analysis consumes.

#include <iosfwd>
#include <string>

#include "src/obs/json.hpp"
#include "src/obs/rank_recorder.hpp"

namespace mrpic::obs {

void write_recorder_json(const RankRecorder& rec, std::ostream& os);
bool write_recorder_json(const RankRecorder& rec, const std::string& path);

// Rebuild a recorder from a parsed document. Throws std::runtime_error on a
// wrong format tag / version or structurally invalid content.
RankRecorder read_recorder_json(const json::Value& doc);
// Parse + rebuild from raw text.
RankRecorder read_recorder_json(const std::string& text);
// Load from a file. Throws std::runtime_error when unreadable or malformed.
RankRecorder read_recorder_file(const std::string& path);

} // namespace mrpic::obs
