#include "src/obs/metrics.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "src/obs/json.hpp"

namespace mrpic::obs {

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(m_mu);
  const auto it = m_counters.find(name);
  if (it != m_counters.end()) { return *it->second; }
  m_counter_storage.emplace_back();
  Counter* c = &m_counter_storage.back();
  m_counters.emplace(std::string(name), c);
  return *c;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(m_mu);
  const auto it = m_gauges.find(name);
  if (it != m_gauges.end()) { return *it->second; }
  m_gauge_storage.emplace_back();
  Gauge* g = &m_gauge_storage.back();
  m_gauges.emplace(std::string(name), g);
  return *g;
}

std::int64_t MetricsRegistry::counter_value(std::string_view name) const {
  std::lock_guard<std::mutex> lock(m_mu);
  const auto it = m_counters.find(name);
  return it == m_counters.end() ? 0 : it->second->value();
}

double MetricsRegistry::gauge_value(std::string_view name) const {
  std::lock_guard<std::mutex> lock(m_mu);
  const auto it = m_gauges.find(name);
  return it == m_gauges.end() ? 0.0 : it->second->value();
}

void MetricsRegistry::begin_step(std::int64_t step) {
  std::lock_guard<std::mutex> lock(m_mu);
  m_step = step;
  m_in_step = true;
  m_step_base.clear();
  for (const auto& [name, c] : m_counters) { m_step_base[name] = c->value(); }
}

StepRecord MetricsRegistry::end_step() {
  std::lock_guard<std::mutex> lock(m_mu);
  StepRecord rec;
  rec.step = m_step;
  for (const auto& [name, c] : m_counters) {
    const auto base = m_step_base.find(name);
    rec.counters[name] = c->value() - (base == m_step_base.end() ? 0 : base->second);
  }
  for (const auto& [name, g] : m_gauges) { rec.gauges[name] = g->value(); }
  rec.ranks = std::move(m_step_ranks);
  m_step_ranks.clear();
  m_in_step = false;
  m_history.push_back(rec);
  if (m_history_limit > 0) {
    while (m_history.size() > m_history_limit) { m_history.pop_front(); }
  }
  return rec;
}

void MetricsRegistry::set_step_ranks(std::vector<StepRecord::RankSection> ranks) {
  std::lock_guard<std::mutex> lock(m_mu);
  m_step_ranks = std::move(ranks);
}

void MetricsRegistry::set_history_limit(std::size_t n) {
  std::lock_guard<std::mutex> lock(m_mu);
  m_history_limit = n;
  if (n > 0) {
    while (m_history.size() > n) { m_history.pop_front(); }
  }
}

void MetricsRegistry::write_record(const StepRecord& rec, std::ostream& os) {
  json::Writer w(os);
  w.begin_object();
  w.field("step", rec.step);
  w.begin_object("counters");
  for (const auto& [name, v] : rec.counters) { w.field(name, v); }
  w.end_object();
  w.begin_object("gauges");
  for (const auto& [name, v] : rec.gauges) { w.field(name, v); }
  w.end_object();
  if (!rec.ranks.empty()) {
    w.begin_array("ranks");
    for (const auto& section : rec.ranks) {
      w.begin_object();
      for (const auto& [name, v] : section) { w.field(name, v); }
      w.end_object();
    }
    w.end_array();
  }
  w.end_object();
}

void MetricsRegistry::write_jsonl(std::ostream& os) const {
  std::deque<StepRecord> hist;
  {
    std::lock_guard<std::mutex> lock(m_mu);
    hist = m_history;
  }
  for (const auto& rec : hist) {
    write_record(rec, os);
    os << '\n';
  }
}

bool MetricsRegistry::write_jsonl(const std::string& path) const {
  std::ofstream os(path);
  if (!os) { return false; }
  write_jsonl(os);
  return static_cast<bool>(os);
}

StepRecord MetricsRegistry::parse_record(const std::string& line) {
  const json::Value v = json::parse(line);
  if (!v.is_object()) { throw std::runtime_error("metrics record is not a JSON object"); }
  // The "step" member is the schema tag: valid JSON without it (a stray
  // line from some other JSONL producer) must not silently parse as step 0.
  if (!v.has("step") || !v["step"].is_number()) {
    throw std::runtime_error("metrics record lacks the \"step\" schema tag");
  }
  StepRecord rec;
  rec.step = v["step"].as_int();
  if (v["counters"].is_object()) {
    for (const auto& [name, val] : v["counters"].as_object()) {
      rec.counters[name] = val.as_int();
    }
  }
  if (v["gauges"].is_object()) {
    for (const auto& [name, val] : v["gauges"].as_object()) {
      rec.gauges[name] = val.as_number();
    }
  }
  if (v["ranks"].is_array()) {
    for (const auto& section : v["ranks"].as_array()) {
      StepRecord::RankSection s;
      if (section.is_object()) {
        for (const auto& [name, val] : section.as_object()) { s[name] = val.as_number(); }
      }
      rec.ranks.push_back(std::move(s));
    }
  }
  return rec;
}

std::vector<StepRecord> MetricsRegistry::read_jsonl(const std::string& path,
                                                    std::size_t* num_malformed) {
  std::ifstream is(path);
  if (!is) { throw std::runtime_error("cannot open metrics file: " + path); }
  std::vector<StepRecord> out;
  std::size_t malformed = 0;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) { continue; }
    try {
      out.push_back(parse_record(line));
    } catch (const std::runtime_error&) {
      // Truncated tail, corrupt line, or valid JSON without the "step"
      // schema tag: skip and count, keep what loads.
      ++malformed;
    }
  }
  if (num_malformed != nullptr) { *num_malformed = malformed; }
  return out;
}

} // namespace mrpic::obs
