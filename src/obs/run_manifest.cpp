#include "src/obs/run_manifest.hpp"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#ifdef _WIN32
#else
#include <unistd.h>
#endif

namespace mrpic::obs {

std::string generate_run_id(const std::string& scenario) {
  static std::atomic<std::int64_t> counter{0};
  const std::int64_t n = counter.fetch_add(1, std::memory_order_relaxed);
  const auto now = static_cast<std::int64_t>(std::time(nullptr));
#ifdef _WIN32
  const std::int64_t pid = 0;
#else
  const auto pid = static_cast<std::int64_t>(::getpid());
#endif
  std::string base = scenario.empty() ? std::string("run") : scenario;
  for (auto& c : base) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-')) {
      c = '_';
    }
  }
  return base + "-" + std::to_string(now) + "-" + std::to_string(pid) + "-" +
         std::to_string(n);
}

void fill_build_info(RunManifest& m) {
#ifdef NDEBUG
  m.build_type = "Release";
#else
  m.build_type = "Debug";
#endif
#if defined(__clang__)
  m.compiler = "clang " + std::to_string(__clang_major__) + "." +
               std::to_string(__clang_minor__);
#elif defined(__GNUC__)
  m.compiler =
      "gcc " + std::to_string(__GNUC__) + "." + std::to_string(__GNUC_MINOR__);
#else
  m.compiler = "unknown";
#endif
}

std::int64_t file_size_bytes(const std::string& path) {
  std::error_code ec;
  const auto n = std::filesystem::file_size(path, ec);
  return ec ? -1 : static_cast<std::int64_t>(n);
}

std::string manifest_json(const RunManifest& m) {
  std::ostringstream ss;
  json::Writer w(ss);
  w.begin_object()
      .field("schema", kRunManifestSchema)
      .field("run_id", m.run_id)
      .field("scenario", m.scenario)
      .field("title", m.title)
      .field("spec_digest", m.spec_digest)
      .field("status", m.status)
      .field("exit_code", m.exit_code)
      .field("reason", m.reason)
      .field("start_unix", m.start_unix)
      .field("end_unix", m.end_unix)
      .field("wall_s", m.wall_s)
      .field("steps_done", m.steps_done)
      .field("sim_time_s", m.sim_time_s)
      .field("num_events", m.num_events)
      .field("num_alerts", m.num_alerts)
      .field("build_type", m.build_type)
      .field("compiler", m.compiler);
  w.begin_array("flags");
  for (const auto& f : m.flags) { w.value(f); }
  w.end_array();
  w.begin_array("artifacts");
  for (const auto& a : m.artifacts) {
    w.begin_object()
        .field("name", a.name)
        .field("path", a.path)
        .field("bytes", a.bytes)
        .end_object();
  }
  w.end_array();
  w.end_object();
  return ss.str();
}

bool write_manifest_atomic(const RunManifest& m, const std::string& path) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::trunc);
    if (!os) { return false; }
    os << manifest_json(m) << '\n';
    os.flush();
    if (!os) { return false; }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

RunManifest parse_manifest(const json::Value& doc) {
  if (!doc.is_object() || !doc["schema"].is_string() ||
      doc["schema"].as_string() != kRunManifestSchema) {
    throw std::runtime_error("run manifest lacks the \"" +
                             std::string(kRunManifestSchema) + "\" schema tag");
  }
  RunManifest m;
  const auto str = [&](const char* key) {
    return doc[key].is_string() ? doc[key].as_string() : std::string();
  };
  const auto num = [&](const char* key) {
    return doc[key].is_number() ? doc[key].as_number() : 0.0;
  };
  m.run_id = str("run_id");
  m.scenario = str("scenario");
  m.title = str("title");
  m.spec_digest = str("spec_digest");
  m.status = doc["status"].is_string() ? doc["status"].as_string() : std::string();
  m.exit_code = static_cast<int>(num("exit_code"));
  m.reason = str("reason");
  m.start_unix = static_cast<std::int64_t>(num("start_unix"));
  m.end_unix = static_cast<std::int64_t>(num("end_unix"));
  m.wall_s = num("wall_s");
  m.steps_done = static_cast<std::int64_t>(num("steps_done"));
  m.sim_time_s = num("sim_time_s");
  m.num_events = static_cast<std::int64_t>(num("num_events"));
  m.num_alerts = static_cast<std::int64_t>(num("num_alerts"));
  m.build_type = str("build_type");
  m.compiler = str("compiler");
  if (doc["flags"].is_array()) {
    for (const auto& f : doc["flags"].as_array()) {
      if (f.is_string()) { m.flags.push_back(f.as_string()); }
    }
  }
  if (doc["artifacts"].is_array()) {
    for (const auto& a : doc["artifacts"].as_array()) {
      if (!a.is_object()) { continue; }
      ArtifactInfo info;
      info.name = a["name"].is_string() ? a["name"].as_string() : std::string();
      info.path = a["path"].is_string() ? a["path"].as_string() : std::string();
      info.bytes = a["bytes"].is_number() ? a["bytes"].as_int() : -1;
      m.artifacts.push_back(std::move(info));
    }
  }
  return m;
}

RunManifest read_manifest(const std::string& path) {
  std::ifstream is(path);
  if (!is) { throw std::runtime_error("cannot open run manifest: " + path); }
  std::stringstream ss;
  ss << is.rdbuf();
  return parse_manifest(json::parse(ss.str()));
}

std::vector<std::string> validate_manifest(const json::Value& doc) {
  std::vector<std::string> errors;
  if (!doc.is_object()) {
    errors.push_back("manifest is not a JSON object");
    return errors;
  }
  if (!doc["schema"].is_string() || doc["schema"].as_string() != kRunManifestSchema) {
    errors.push_back("missing or foreign schema tag (want " +
                     std::string(kRunManifestSchema) + ")");
  }
  if (!doc["run_id"].is_string() || doc["run_id"].as_string().empty()) {
    errors.push_back("missing run_id");
  }
  if (!doc["scenario"].is_string() || doc["scenario"].as_string().empty()) {
    errors.push_back("missing scenario");
  }
  if (!doc["status"].is_string()) {
    errors.push_back("missing status");
  } else {
    const std::string& s = doc["status"].as_string();
    if (s != kRunStatusRunning && s != kRunStatusCompleted && s != kRunStatusAborted &&
        s != kRunStatusFailed) {
      errors.push_back("unknown status \"" + s + "\"");
    }
  }
  if (!doc["start_unix"].is_number()) { errors.push_back("missing start_unix"); }
  if (!doc["steps_done"].is_number()) {
    errors.push_back("missing steps_done");
  } else if (doc["steps_done"].as_number() < 0) {
    errors.push_back("negative steps_done");
  }
  if (!doc["artifacts"].is_array()) {
    errors.push_back("missing artifacts inventory");
  } else {
    std::size_t i = 0;
    for (const auto& a : doc["artifacts"].as_array()) {
      if (!a.is_object() || !a["name"].is_string() || !a["path"].is_string()) {
        errors.push_back("artifact[" + std::to_string(i) + "] lacks name/path");
      }
      ++i;
    }
  }
  return errors;
}

RunContext::RunContext(std::string run_id, std::string scenario,
                       std::string manifest_path)
    : m_path(std::move(manifest_path)), m_t0(std::chrono::steady_clock::now()) {
  m_manifest.run_id = std::move(run_id);
  m_manifest.scenario = std::move(scenario);
  m_manifest.start_unix = static_cast<std::int64_t>(std::time(nullptr));
  fill_build_info(m_manifest);
  const auto pos = m_path.find_last_of('/');
  m_dir = pos == std::string::npos ? std::string() : m_path.substr(0, pos + 1);
}

void RunContext::add_artifact(std::string name, const std::string& path) {
  ArtifactInfo info;
  info.name = std::move(name);
  // Store relative to the manifest directory when the artifact sits inside
  // it (the usual case: everything lands in one outdir).
  info.path = (!m_dir.empty() && path.rfind(m_dir, 0) == 0) ? path.substr(m_dir.size())
                                                            : path;
  m_manifest.artifacts.push_back(std::move(info));
  m_artifact_abs.push_back(path);
}

bool RunContext::start() { return write_manifest_atomic(m_manifest, m_path); }

bool RunContext::finalize(const std::string& status, int exit_code,
                          std::int64_t steps_done, double sim_time_s,
                          const std::string& reason) {
  m_manifest.status = status;
  m_manifest.exit_code = exit_code;
  m_manifest.steps_done = steps_done;
  m_manifest.sim_time_s = sim_time_s;
  m_manifest.reason = reason;
  m_manifest.end_unix = static_cast<std::int64_t>(std::time(nullptr));
  m_manifest.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - m_t0).count();
  for (std::size_t i = 0; i < m_manifest.artifacts.size(); ++i) {
    m_manifest.artifacts[i].bytes = file_size_bytes(m_artifact_abs[i]);
  }
  return write_manifest_atomic(m_manifest, m_path);
}

} // namespace mrpic::obs
