#pragma once

// obs::Profiler — hierarchical region profiler, the repo's TinyProfiler
// (paper Sec. VI): RAII scopes nest into a call tree whose nodes accumulate
// inclusive time, call counts and per-call min/max; exclusive time is
// derived as inclusive minus the children's inclusive. Scopes may be opened
// concurrently from OpenMP worker threads (each thread nests independently;
// a worker's outermost scope becomes a root of its own). When tracing is
// enabled, every region instance is additionally recorded as a trace event
// (start, duration, thread, step) for Chrome/Perfetto export (trace.hpp).

#include <chrono>
#include <cstdint>
#include <limits>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace mrpic::obs {

struct RegionStats {
  double inclusive_s = 0;  // total wall time inside the region
  double exclusive_s = 0;  // inclusive minus time inside child regions
  std::int64_t count = 0;  // completed instances
  double min_s = std::numeric_limits<double>::infinity();
  double max_s = 0;
  double mean_s() const { return count > 0 ? inclusive_s / count : 0.0; }
};

// One completed region instance (recorded only while tracing is enabled).
struct TraceEvent {
  std::string name;
  double ts_us = 0;   // start, microseconds since profiler epoch
  double dur_us = 0;  // duration, microseconds
  int tid = 0;        // profiler-assigned dense thread id
  std::int64_t step = -1;
};

class Profiler {
public:
  using clock = std::chrono::steady_clock;

  Profiler();
  ~Profiler();
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  // RAII region scope. Move-only; closing records into the tree.
  class Scope {
  public:
    Scope(Scope&& o) noexcept : m_p(o.m_p), m_node(o.m_node), m_start(o.m_start) {
      o.m_p = nullptr;
    }
    Scope& operator=(Scope&&) = delete;
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    ~Scope() {
      if (m_p != nullptr) { m_p->close_scope(m_node, m_start); }
    }
    double elapsed() const {
      return std::chrono::duration<double>(clock::now() - m_start).count();
    }

  private:
    friend class Profiler;
    Scope(Profiler* p, int node, clock::time_point start)
        : m_p(p), m_node(node), m_start(start) {}
    Profiler* m_p;
    int m_node;
    clock::time_point m_start;
  };

  // Open a region nested under the calling thread's current region (or as a
  // root if the thread has none open).
  Scope scope(std::string_view name) {
    const auto start = clock::now();
    return Scope(this, open_scope(name), start);
  }

  // Tag subsequent trace events with a step number (set by the driver once
  // per step; harmless to leave at -1 outside stepping contexts).
  void set_step(std::int64_t step);
  std::int64_t current_step() const;

  // Trace-event collection (off by default; bounded by set_max_trace_events).
  void set_tracing(bool on);
  bool tracing() const;
  void set_max_trace_events(std::size_t n);
  std::size_t dropped_trace_events() const;
  std::vector<TraceEvent> trace_events() const;

  // --- aggregated results ------------------------------------------------
  struct Node {
    std::string name;
    int parent = -1;                // -1 for roots
    std::vector<int> children;
    RegionStats stats;              // exclusive_s filled by snapshot()
  };

  // Consistent copy of the call tree with exclusive times computed.
  std::vector<Node> snapshot() const;

  // Stats for a '/'-separated root-relative path, e.g. "step/particles".
  // Returns zeroed stats (count == 0) for unknown paths.
  RegionStats stats(std::string_view path) const;

  // Flat per-name totals: leaf name -> (inclusive seconds, count), summed
  // over every path sharing the name.
  std::map<std::string, RegionStats> flat_totals() const;

  // Indented tree, children sorted by descending inclusive time, with
  // count / mean / min / max columns.
  void report(std::ostream& os) const;

  // Drop all nodes, stats and trace events. Must not be called while any
  // scope is open.
  void reset();

  // Microseconds since the profiler epoch (trace timestamps use this).
  double now_us() const {
    return std::chrono::duration<double, std::micro>(clock::now() - m_epoch).count();
  }

private:
  friend class Scope;
  int open_scope(std::string_view name);
  void close_scope(int node, clock::time_point start);

  struct ThreadCtx; // per-thread open-region stack, see profiler.cpp
  ThreadCtx& thread_ctx();

  mutable std::mutex m_mu;
  std::vector<Node> m_nodes;   // node 0.. ; roots listed in m_roots
  std::vector<int> m_roots;
  std::vector<TraceEvent> m_events;
  std::size_t m_max_events = 1u << 20;
  std::size_t m_dropped_events = 0;
  bool m_tracing = false;
  std::int64_t m_step = -1;
  int m_next_tid = 0;
  clock::time_point m_epoch;
  std::uint64_t m_generation;  // invalidates thread-local caches on reset()
};

} // namespace mrpic::obs
