#include "src/obs/event_log.hpp"

#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "src/obs/json.hpp"

namespace mrpic::obs {

const char* to_string(EventSeverity s) {
  switch (s) {
    case EventSeverity::Info: return "info";
    case EventSeverity::Warn: return "warn";
    case EventSeverity::Critical: return "critical";
  }
  return "info";
}

EventSeverity event_severity_from_string(const std::string& s) {
  if (s == "warn") { return EventSeverity::Warn; }
  if (s == "critical") { return EventSeverity::Critical; }
  return EventSeverity::Info;
}

double Event::value(const std::string& key) const {
  for (const auto& [k, v] : data) {
    if (k == key) { return v; }
  }
  return std::numeric_limits<double>::quiet_NaN();
}

EventLog::EventLog(EventLogConfig cfg)
    : m_cfg(std::move(cfg)), m_start(std::chrono::steady_clock::now()) {}

Event EventLog::publish(Event ev) {
  std::lock_guard<std::mutex> lock(m_mu);
  ev.seq = m_next_seq++;
  ev.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - m_start)
                  .count();
  ++m_counts[static_cast<int>(ev.severity)];

  if (!m_cfg.path.empty()) {
    if (!m_os_opened) {
      m_os.open(m_cfg.path, m_cfg.append ? std::ios::app : std::ios::trunc);
      m_os_opened = true;
    }
    if (m_os) {
      write_event(ev, m_os);
      m_os << '\n';
      m_os.flush();  // durable before any abort unwinds
    }
  }

  m_history.push_back(ev);
  if (m_cfg.history_limit > 0 && m_history.size() > m_cfg.history_limit) {
    m_history.pop_front();
    ++m_dropped;
  }
  return ev;
}

Event EventLog::publish(std::string category, std::string kind, EventSeverity severity,
                        std::int64_t step, std::string detail,
                        std::vector<std::pair<std::string, double>> data) {
  Event ev;
  ev.category = std::move(category);
  ev.kind = std::move(kind);
  ev.severity = severity;
  ev.step = step;
  ev.detail = std::move(detail);
  ev.data = std::move(data);
  return publish(std::move(ev));
}

std::int64_t EventLog::num_events() const {
  std::lock_guard<std::mutex> lock(m_mu);
  return m_next_seq;
}

std::int64_t EventLog::num_events(EventSeverity s) const {
  std::lock_guard<std::mutex> lock(m_mu);
  return m_counts[static_cast<int>(s)];
}

std::vector<Event> EventLog::snapshot() const {
  std::lock_guard<std::mutex> lock(m_mu);
  return std::vector<Event>(m_history.begin(), m_history.end());
}

std::int64_t EventLog::num_dropped() const {
  std::lock_guard<std::mutex> lock(m_mu);
  return m_dropped;
}

void EventLog::write_event(const Event& ev, std::ostream& os) {
  json::Writer w(os);
  w.begin_object()
      .field("schema", kEventSchema)
      .field("seq", ev.seq)
      .field("step", ev.step)
      .field("wall_s", ev.wall_s)
      .field("category", ev.category)
      .field("kind", ev.kind)
      .field("severity", to_string(ev.severity));
  if (!ev.detail.empty()) { w.field("detail", ev.detail); }
  if (!ev.data.empty()) {
    w.begin_object("data");
    for (const auto& [k, v] : ev.data) { w.field(k, v); }
    w.end_object();
  }
  w.end_object();
}

std::string EventLog::event_line(const Event& ev) {
  std::ostringstream ss;
  write_event(ev, ss);
  return ss.str();
}

Event EventLog::parse_event(const std::string& line) {
  const json::Value doc = json::parse(line);
  if (!doc.is_object() || !doc["schema"].is_string() ||
      doc["schema"].as_string() != kEventSchema) {
    throw std::runtime_error("event record lacks the \"" + std::string(kEventSchema) +
                             "\" schema tag");
  }
  Event ev;
  ev.seq = doc["seq"].is_number() ? doc["seq"].as_int() : -1;
  ev.step = doc["step"].is_number() ? doc["step"].as_int() : -1;
  ev.wall_s = doc["wall_s"].is_number() ? doc["wall_s"].as_number() : 0;
  if (doc["category"].is_string()) { ev.category = doc["category"].as_string(); }
  if (doc["kind"].is_string()) { ev.kind = doc["kind"].as_string(); }
  if (doc["severity"].is_string()) {
    ev.severity = event_severity_from_string(doc["severity"].as_string());
  }
  if (doc["detail"].is_string()) { ev.detail = doc["detail"].as_string(); }
  if (doc["data"].is_object()) {
    for (const auto& [k, v] : doc["data"].as_object()) {
      if (v.is_number()) { ev.data.emplace_back(k, v.as_number()); }
    }
  }
  return ev;
}

std::vector<Event> EventLog::read_events_jsonl(const std::string& path,
                                               std::size_t* num_skipped) {
  std::ifstream is(path);
  if (!is) { throw std::runtime_error("cannot open event log: " + path); }
  std::vector<Event> events;
  std::size_t skipped = 0;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) { continue; }
    try {
      events.push_back(parse_event(line));
    } catch (const std::exception&) {
      ++skipped;  // malformed or schema-foreign: tolerate, count, move on
    }
  }
  if (num_skipped != nullptr) { *num_skipped = skipped; }
  return events;
}

} // namespace mrpic::obs
