#include "src/obs/kernel_probe.hpp"

#include <chrono>
#include <cmath>

#include "src/obs/analysis.hpp"
#include "src/obs/metrics.hpp"
#include "src/particles/deposition.hpp"
#include "src/particles/gather.hpp"
#include "src/particles/pusher.hpp"

namespace mrpic::obs {

namespace {

using probe_clock = std::chrono::steady_clock;

double stencil_points(int shape_order, int dim) {
  return std::pow(static_cast<double>(shape_order + 1), dim);
}

double esirkepov_points(int shape_order, int dim) {
  return std::pow(static_cast<double>(shape_order + 2), dim);
}

} // namespace

const char* kernel_kind_name(KernelKind k) {
  switch (k) {
    case KernelKind::Gather: return "gather";
    case KernelKind::Push: return "push";
    case KernelKind::Deposit: return "deposit";
  }
  return "unknown";
}

double kernel_flops_per_particle(KernelKind k, int shape_order, int dim) {
  switch (k) {
    case KernelKind::Gather:
      return static_cast<double>(particles::gather_flops_per_particle(shape_order, dim));
    case KernelKind::Push:
      return static_cast<double>(particles::push_flops_per_particle());
    case KernelKind::Deposit:
      return static_cast<double>(particles::deposit_flops_per_particle(shape_order, dim));
  }
  return 0;
}

double kernel_bytes_per_particle(KernelKind k, int shape_order, int dim) {
  const double real_b = static_cast<double>(sizeof(Real));
  switch (k) {
    case KernelKind::Gather:
      // read x, stream 6 field components over the stencil, write 6 gathered.
      return real_b * dim + 6 * real_b * stencil_points(shape_order, dim) + 6 * real_b;
    case KernelKind::Push:
      // read 6 gathered, read+write u (3), read+write x (dim).
      return 6 * real_b + 2 * 3 * real_b + 2 * real_b * dim;
    case KernelKind::Deposit:
      // read x_old + x_new, read w, RMW 3 current components over the
      // Esirkepov support.
      return 2 * real_b * dim + real_b + 6 * real_b * esirkepov_points(shape_order, dim);
  }
  return 0;
}

KernelProbe::KernelProbe(KernelObsConfig cfg)
    : m_cfg(std::move(cfg)), m_machine(&perf::machine_by_name(m_cfg.machine)) {}

void KernelProbe::record(KernelKind kind, std::int64_t step,
                         const std::string& species, int tile,
                         std::int64_t particles, double time_s, int shape_order,
                         int dim) {
  const auto t0 = probe_clock::now();

  KernelInvocation inv;
  inv.kind = kind;
  inv.step = step;
  inv.species = species;
  inv.tile = tile;
  inv.particles = particles;
  inv.time_s = time_s;
  inv.flops = static_cast<double>(particles) *
              kernel_flops_per_particle(kind, shape_order, dim);
  inv.bytes = static_cast<double>(particles) *
              kernel_bytes_per_particle(kind, shape_order, dim);
  const auto rp = analysis::roofline_point(kernel_kind_name(kind), inv.flops,
                                           inv.bytes, *m_machine, time_s);
  inv.intensity = rp.intensity;
  inv.roof_tflops = rp.roof_tflops;
  inv.attained_tflops = rp.attained_tflops;
  inv.attainment = rp.attainment;
  inv.memory_bound = rp.memory_bound;
  inv.gbyte_s = time_s > 0 ? inv.bytes / time_s / 1e9 : 0;

  std::lock_guard<std::mutex> lk(m_mu);
  auto& agg = m_agg[static_cast<int>(kind)];
  ++agg.invocations;
  agg.particles += particles;
  agg.time_s += time_s;
  agg.flops += inv.flops;
  agg.bytes += inv.bytes;
  if (m_invocations.size() < m_cfg.max_invocations) {
    m_invocations.push_back(std::move(inv));
  } else {
    ++m_dropped;
  }
  m_self_s += std::chrono::duration<double>(probe_clock::now() - t0).count();
}

template <int DIM>
void KernelProbe::sample_locality(const particles::ParticleTile<DIM>& tile,
                                  const Geometry<DIM>& geom, const Box<DIM>& valid) {
  const auto t0 = probe_clock::now();
  const TileLocality loc = tile_locality<DIM>(tile, geom, valid, m_cfg.locality_sample);
  std::lock_guard<std::mutex> lk(m_mu);
  merge_locality(m_locality, loc);
  ++m_locality_tiles;
  m_self_s += std::chrono::duration<double>(probe_clock::now() - t0).count();
}

std::vector<KernelInvocation> KernelProbe::invocations() const {
  std::lock_guard<std::mutex> lk(m_mu);
  return m_invocations;
}

std::vector<KernelAggregate> KernelProbe::aggregates() const {
  std::lock_guard<std::mutex> lk(m_mu);
  return std::vector<KernelAggregate>(m_agg, m_agg + kNumKernelKinds);
}

KernelAggregate KernelProbe::aggregate(KernelKind k) const {
  std::lock_guard<std::mutex> lk(m_mu);
  return m_agg[static_cast<int>(k)];
}

TileLocality KernelProbe::locality() const {
  std::lock_guard<std::mutex> lk(m_mu);
  return m_locality;
}

std::int64_t KernelProbe::locality_tiles() const {
  std::lock_guard<std::mutex> lk(m_mu);
  return m_locality_tiles;
}

std::int64_t KernelProbe::dropped_invocations() const {
  std::lock_guard<std::mutex> lk(m_mu);
  return m_dropped;
}

double KernelProbe::self_time_s() const {
  std::lock_guard<std::mutex> lk(m_mu);
  return m_self_s;
}

void KernelProbe::publish(MetricsRegistry& metrics) const {
  std::lock_guard<std::mutex> lk(m_mu);
  for (int k = 0; k < kNumKernelKinds; ++k) {
    const auto& agg = m_agg[k];
    const std::string base = std::string("kernel_") +
                             kernel_kind_name(static_cast<KernelKind>(k));
    metrics.gauge(base + "_time_s").set(agg.time_s);
    metrics.gauge(base + "_gbyte_s").set(agg.gbyte_s());
    metrics.gauge(base + "_intensity").set(agg.intensity());
    metrics.gauge(base + "_tflops").set(agg.attained_tflops());
  }
  metrics.gauge("kernel_locality_inversion_fraction").set(m_locality.inversion_fraction);
  metrics.gauge("kernel_locality_line_reuse").set(m_locality.line_reuse);
  metrics.gauge("kernel_predicted_sort_speedup").set(m_locality.predicted_sort_speedup);
  metrics.gauge("kernel_probe_self_s").set(m_self_s);
}

void KernelProbe::clear() {
  std::lock_guard<std::mutex> lk(m_mu);
  m_invocations.clear();
  for (auto& a : m_agg) { a = KernelAggregate{}; }
  m_locality = TileLocality{};
  m_locality_tiles = 0;
  m_dropped = 0;
  m_self_s = 0;
}

template void KernelProbe::sample_locality<2>(const particles::ParticleTile<2>&,
                                              const Geometry<2>&, const Box<2>&);
template void KernelProbe::sample_locality<3>(const particles::ParticleTile<3>&,
                                              const Geometry<3>&, const Box<3>&);

} // namespace mrpic::obs
