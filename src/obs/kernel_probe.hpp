#pragma once

// obs::KernelProbe — kernel-grain observability for the PIC cycle's three
// hot kernels (paper Fig. 3: gather -> push -> deposit), one level below
// the rank-grain attribution of PR 4. Each sampled invocation (one kernel,
// one species, one tile) records wall time, particles processed, modeled
// bytes moved, and its placement on a perf::Machine roofline (arithmetic
// intensity, achieved bandwidth, attainment) — per *invocation*, so a
// single slow tile is visible, not just the stage aggregate. Alongside the
// timings, sampled cell-key locality metrics (obs/locality.hpp) predict the
// payoff of the planned cell-binned sort.
//
// Cost model (analytic, cold-cache, Real = 8 B; P = (order+1)^dim stencil
// points, Q = (order+2)^dim Esirkepov support):
//   gather:  read x (8*dim), stream 6 field components over P stencil cells
//            (48*P), write 6 gathered values (48)        -> 8*dim + 48*P + 48
//   push:    read 6 gathered (48), read+write u (2*24), read+write x
//            (2*8*dim)                                    -> 96 + 16*dim
//   deposit: read x_old + x_new (16*dim), read w (8), read-modify-write 3
//            current components over Q cells (48*Q)       -> 16*dim + 8 + 48*Q
// This is deliberately a per-particle cold-cache model — distinct from the
// calibrated per-step aggregate in analysis::pic_kernel_bytes — so the
// intensity of a closed-form kernel is exact (tested to 1e-9) and the gap
// between modeled and achieved bandwidth *is* the locality headroom.
//
// Thread safety: record()/sample_locality()/snapshots are mutex-guarded
// (kernel launches may come from concurrent drivers); the probe times its
// own critical sections into self_time_s() so bench_kernel_grain can gate
// the <= 1% overhead acceptance criterion.

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/locality.hpp"
#include "src/perf/machine.hpp"

namespace mrpic::obs {

class MetricsRegistry;

enum class KernelKind { Gather = 0, Push = 1, Deposit = 2 };
inline constexpr int kNumKernelKinds = 3;

const char* kernel_kind_name(KernelKind k);

// Analytic flops per particle (wraps the particles:: kernel counts).
double kernel_flops_per_particle(KernelKind k, int shape_order, int dim);
// Analytic cold-cache bytes per particle (model in the header comment).
double kernel_bytes_per_particle(KernelKind k, int shape_order, int dim);

struct KernelObsConfig {
  // Sample every Nth step (0 disables sampling entirely). Sampling whole
  // steps rather than thinning within a step keeps per-step kernel
  // aggregates internally consistent.
  int sample_interval = 5;
  // Particles of the cell-key locality sample per tile (contiguous prefix).
  // 1024 keeps the stride-sort cost inside the <= 1% probe-overhead budget
  // even for cheap steps (gated in bench_kernel_grain); the statistics are
  // already stable at this sample size.
  std::size_t locality_sample = 1024;
  // Stored per-invocation records are bounded; excess is counted as
  // dropped (aggregates keep accumulating regardless).
  std::size_t max_invocations = 8192;
  // Roofline machine (perf::machine_by_name).
  std::string machine = "Summit";
};

// One sampled kernel launch with its roofline placement.
struct KernelInvocation {
  KernelKind kind = KernelKind::Gather;
  std::int64_t step = -1;
  std::string species;
  int tile = -1;              // tile/box index (-1 = MR patch tile)
  std::int64_t particles = 0;
  double time_s = 0;
  double flops = 0;           // particles * flops/particle
  double bytes = 0;           // particles * bytes/particle (cold-cache model)
  double intensity = 0;       // flops / bytes
  double gbyte_s = 0;         // achieved bandwidth, bytes / time
  double roof_tflops = 0;     // machine roof at this intensity
  double attained_tflops = 0;
  double attainment = 0;      // attained / roof
  bool memory_bound = false;
};

// Running totals per kernel kind.
struct KernelAggregate {
  std::int64_t invocations = 0;
  std::int64_t particles = 0;
  double time_s = 0;
  double flops = 0;
  double bytes = 0;
  double intensity() const { return bytes > 0 ? flops / bytes : 0; }
  double gbyte_s() const { return time_s > 0 ? bytes / time_s / 1e9 : 0; }
  double attained_tflops() const { return time_s > 0 ? flops / time_s / 1e12 : 0; }
};

class KernelProbe {
public:
  explicit KernelProbe(KernelObsConfig cfg = {});

  const KernelObsConfig& config() const { return m_cfg; }
  const perf::Machine& machine() const { return *m_machine; }

  // True when `step` is a sampled step (callers skip all probe work
  // otherwise, so the off-cadence overhead is one modulo per step).
  bool due(std::int64_t step) const {
    return m_cfg.sample_interval > 0 && step % m_cfg.sample_interval == 0;
  }

  // Record one kernel launch (time measured by the caller around the bare
  // kernel call; the probe's own bookkeeping accrues to self_time_s).
  void record(KernelKind kind, std::int64_t step, const std::string& species,
              int tile, std::int64_t particles, double time_s, int shape_order,
              int dim);

  // Sample one tile's cell-key locality (at most config().locality_sample
  // particles) and merge it into the running aggregate.
  template <int DIM>
  void sample_locality(const particles::ParticleTile<DIM>& tile,
                       const Geometry<DIM>& geom, const Box<DIM>& valid);

  // --- snapshots ---------------------------------------------------------
  std::vector<KernelInvocation> invocations() const;
  std::vector<KernelAggregate> aggregates() const;  // indexed by KernelKind
  KernelAggregate aggregate(KernelKind k) const;
  TileLocality locality() const;
  std::int64_t locality_tiles() const;
  std::int64_t dropped_invocations() const;
  // Seconds spent inside the probe itself (bookkeeping + locality hashing),
  // the numerator of the <= 1% overhead gate.
  double self_time_s() const;

  // Publish kernel_* gauges (per-kind time/bandwidth/intensity/attainment
  // plus locality and probe-cost gauges) into a metrics registry.
  void publish(MetricsRegistry& metrics) const;

  void clear();

private:
  KernelObsConfig m_cfg;
  const perf::Machine* m_machine;
  mutable std::mutex m_mu;
  std::vector<KernelInvocation> m_invocations;
  KernelAggregate m_agg[kNumKernelKinds];
  TileLocality m_locality;
  std::int64_t m_locality_tiles = 0;
  std::int64_t m_dropped = 0;
  double m_self_s = 0;
};

extern template void KernelProbe::sample_locality<2>(const particles::ParticleTile<2>&,
                                                     const Geometry<2>&, const Box<2>&);
extern template void KernelProbe::sample_locality<3>(const particles::ParticleTile<3>&,
                                                     const Geometry<3>&, const Box<3>&);

} // namespace mrpic::obs
