#pragma once

// obs::campaign — the multi-run campaign aggregator (ISSUE 10 tentpole).
// A campaign directory is one directory per run, each containing the
// run.json manifest (obs::run_manifest) plus the artifacts it inventories.
// scan_campaign() walks the directory, validates every manifest, joins each
// run's final metrics / beam-physics / event-timeline summaries, and the
// writers render a cross-run Markdown + JSON campaign report: per-scenario
// p50/p99 step time, energy drift, beam emittance / spectral peak across
// the scan, and failed-run triage straight from the event timelines. This
// is the read side the ROADMAP item 3 campaign scheduler schedules against;
// the campaign_report CLI (bench/) is the command-line wrapper.

#include <cstdint>
#include <limits>
#include <ostream>
#include <string>
#include <vector>

#include "src/obs/event_log.hpp"
#include "src/obs/run_manifest.hpp"

namespace mrpic::obs {

inline constexpr const char* kCampaignSchema = "mrpic.campaign.v1";

// One run directory joined across its telemetry artifacts. Quantities that
// could not be joined (artifact missing, empty series) stay NaN.
struct RunSummary {
  std::string dir;       // run directory (campaign-relative)
  RunManifest manifest;  // default-constructed when manifest_ok is false
  bool manifest_found = false;
  bool manifest_ok = false;             // schema-valid per validate_manifest
  std::vector<std::string> errors;      // validation / join problems

  // Step-time distribution from the metrics JSONL (step_wall_s gauge).
  std::int64_t metrics_records = 0;
  double step_p50_s = std::numeric_limits<double>::quiet_NaN();
  double step_p99_s = std::numeric_limits<double>::quiet_NaN();
  std::vector<double> step_wall_samples;  // pooled by per-scenario stats

  // Final physics / memory summaries.
  double energy_drift_rate = std::numeric_limits<double>::quiet_NaN();
  double emit_ny_m_rad = std::numeric_limits<double>::quiet_NaN();
  double peak_energy_J = std::numeric_limits<double>::quiet_NaN();
  double mem_high_water_bytes = std::numeric_limits<double>::quiet_NaN();

  // Event-timeline digest.
  std::int64_t num_events = 0;
  std::int64_t num_critical = 0;
  bool events_monotone = true;  // seq strictly increasing AND wall_s nondecreasing
  std::vector<Event> triage;    // critical events (bounded), newest last
};

// Per-scenario aggregate over the campaign (pooled step samples).
struct ScenarioStats {
  std::string scenario;
  int runs = 0;
  int completed = 0;
  int aborted = 0;
  int failed = 0;
  std::int64_t step_samples = 0;
  double step_p50_s = std::numeric_limits<double>::quiet_NaN();
  double step_p99_s = std::numeric_limits<double>::quiet_NaN();
  double max_abs_energy_drift = std::numeric_limits<double>::quiet_NaN();
  double emit_ny_min = std::numeric_limits<double>::quiet_NaN();
  double emit_ny_max = std::numeric_limits<double>::quiet_NaN();
  double peak_energy_min_J = std::numeric_limits<double>::quiet_NaN();
  double peak_energy_max_J = std::numeric_limits<double>::quiet_NaN();
  double mem_high_water_max_bytes = std::numeric_limits<double>::quiet_NaN();
};

struct CampaignReport {
  std::string dir;
  std::vector<RunSummary> runs;      // sorted by run directory name
  std::vector<ScenarioStats> scenarios;  // sorted by scenario name

  int runs_total() const { return static_cast<int>(runs.size()); }
  int runs_valid() const;
  int runs_with_status(const char* status) const;
};

// Percentile over a copy of `samples` (nearest-rank; NaN when empty).
double percentile(std::vector<double> samples, double p);

// Join one run directory (expects dir + "/run.json"). Never throws for
// malformed content: problems land in errors/flags.
RunSummary summarize_run_dir(const std::string& dir);

// Scan every direct subdirectory of `campaign_dir` that contains a
// run.json (plus the campaign dir itself if IT holds one), join each, and
// compute the per-scenario aggregates. Throws std::runtime_error when the
// campaign directory cannot be read.
CampaignReport scan_campaign(const std::string& campaign_dir);

// Renderers. Markdown leads with the "## Campaign" section (CI greps it).
void write_campaign_markdown(const CampaignReport& rep, std::ostream& os);
bool write_campaign_markdown(const CampaignReport& rep, const std::string& path);
void write_campaign_json(const CampaignReport& rep, std::ostream& os);
bool write_campaign_json(const CampaignReport& rep, const std::string& path);

} // namespace mrpic::obs
