#include "src/obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace mrpic::obs::json {

std::string quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string number(double v) {
  if (!std::isfinite(v)) { return "null"; }
  // Integers print without a fractional part; everything else with
  // round-trip precision.
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    return std::to_string(static_cast<std::int64_t>(v));
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

const Value& Value::operator[](const std::string& key) const {
  static const Value null_value;
  if (!is_object()) { return null_value; }
  const auto it = m_obj->find(key);
  return it == m_obj->end() ? null_value : it->second;
}

namespace {

class Parser {
public:
  explicit Parser(std::string_view text) : m_text(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (m_pos != m_text.size()) { fail("trailing characters after document"); }
    return v;
  }

private:
  // Container-nesting bound: parse_value recurses per level, so a hostile
  // "[[[[..." document would otherwise overflow the stack. 200 levels is
  // far beyond any telemetry document and costs a few KB of stack.
  static constexpr int kMaxDepth = 200;

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json parse error at byte " + std::to_string(m_pos) + ": " +
                             what);
  }

  void skip_ws() {
    while (m_pos < m_text.size() &&
           (m_text[m_pos] == ' ' || m_text[m_pos] == '\t' || m_text[m_pos] == '\n' ||
            m_text[m_pos] == '\r')) {
      ++m_pos;
    }
  }

  char peek() {
    if (m_pos >= m_text.size()) { fail("unexpected end of input"); }
    return m_text[m_pos];
  }

  void expect(char c) {
    if (peek() != c) { fail(std::string("expected '") + c + "'"); }
    ++m_pos;
  }

  bool consume(char c) {
    if (m_pos < m_text.size() && m_text[m_pos] == c) {
      ++m_pos;
      return true;
    }
    return false;
  }

  bool consume_word(std::string_view w) {
    if (m_text.substr(m_pos, w.size()) == w) {
      m_pos += w.size();
      return true;
    }
    return false;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') { return parse_object(); }
    if (c == '[') { return parse_array(); }
    if (c == '"') { return Value(parse_string()); }
    if (consume_word("true")) { return Value(true); }
    if (consume_word("false")) { return Value(false); }
    if (consume_word("null")) { return Value(); }
    return parse_number();
  }

  Value parse_object() {
    if (++m_depth > kMaxDepth) { fail("nesting deeper than 200 levels"); }
    expect('{');
    Object obj;
    skip_ws();
    if (consume('}')) { return Value(std::move(obj)); }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.emplace(std::move(key), parse_value());
      skip_ws();
      if (consume(',')) { continue; }
      expect('}');
      --m_depth;
      return Value(std::move(obj));
    }
  }

  Value parse_array() {
    if (++m_depth > kMaxDepth) { fail("nesting deeper than 200 levels"); }
    expect('[');
    Array arr;
    skip_ws();
    if (consume(']')) {
      --m_depth;
      return Value(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      if (consume(',')) { continue; }
      expect(']');
      --m_depth;
      return Value(std::move(arr));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (m_pos >= m_text.size()) { fail("unterminated string"); }
      char c = m_text[m_pos++];
      if (c == '"') { return out; }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (m_pos >= m_text.size()) { fail("unterminated escape"); }
      c = m_text[m_pos++];
      switch (c) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          // Our own writer only emits control-character escapes, but foreign
          // producers may use the full \uXXXX range including UTF-16
          // surrogate pairs for astral codepoints; decode everything to
          // UTF-8. A lone/mispaired surrogate is a hard error (RFC 8259
          // leaves it undefined; silently passing it through would put
          // invalid UTF-8 in downstream files).
          unsigned code = parse_hex4();
          if (code >= 0xD800 && code <= 0xDBFF) {  // high surrogate
            if (m_pos + 2 > m_text.size() || m_text[m_pos] != '\\' ||
                m_text[m_pos + 1] != 'u') {
              fail("high surrogate not followed by \\u low surrogate");
            }
            m_pos += 2;
            const unsigned lo = parse_hex4();
            if (lo < 0xDC00 || lo > 0xDFFF) {
              fail("high surrogate followed by a non-low-surrogate");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (lo - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            fail("lone low surrogate");
          }
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else if (code < 0x10000) {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xF0 | (code >> 18)));
            out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  unsigned parse_hex4() {
    if (m_pos + 4 > m_text.size()) { fail("truncated \\u escape"); }
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = m_text[m_pos++];
      code <<= 4;
      if (h >= '0' && h <= '9') {
        code += h - '0';
      } else if (h >= 'a' && h <= 'f') {
        code += 10 + h - 'a';
      } else if (h >= 'A' && h <= 'F') {
        code += 10 + h - 'A';
      } else {
        fail("bad hex digit in \\u escape");
      }
    }
    return code;
  }

  Value parse_number() {
    const std::size_t start = m_pos;
    if (consume('-')) {}
    while (m_pos < m_text.size() &&
           (std::isdigit(static_cast<unsigned char>(m_text[m_pos])) || m_text[m_pos] == '.' ||
            m_text[m_pos] == 'e' || m_text[m_pos] == 'E' || m_text[m_pos] == '+' ||
            m_text[m_pos] == '-')) {
      ++m_pos;
    }
    if (m_pos == start) { fail("expected a value"); }
    double v = 0;
    const auto res = std::from_chars(m_text.data() + start, m_text.data() + m_pos, v);
    if (res.ec != std::errc() || res.ptr != m_text.data() + m_pos) {
      fail("malformed number");
    }
    return Value(v);
  }

  std::string_view m_text;
  std::size_t m_pos = 0;
  int m_depth = 0;
};

} // namespace

Value parse(std::string_view text) { return Parser(text).parse_document(); }

} // namespace mrpic::obs::json
