#include "src/obs/memory.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/obs/rank_recorder.hpp"

namespace mrpic::obs {

// --- MemoryLedger ----------------------------------------------------------

MemoryLedger::MemoryLedger() {
  intern("untagged"); // id 0
}

int MemoryLedger::intern(std::string_view tag) {
  std::lock_guard<std::mutex> lk(m_mu);
  const auto it = m_ids.find(tag);
  if (it != m_ids.end()) { return it->second; }
  const int id = static_cast<int>(m_accounts.size());
  if (id >= kMaxAccounts) { return 0; } // overflow lands in "untagged"
  m_accounts.emplace_back();
  m_accounts.back().tag = std::string(tag);
  m_ids.emplace(std::string(tag), id);
  // Publish for the lock-free hot path; pairs with the acquire load in
  // charge()/release() so the Account is fully constructed when seen.
  m_table[static_cast<std::size_t>(id)].store(&m_accounts.back(),
                                              std::memory_order_release);
  return id;
}

namespace {
void raise_mark(std::atomic<std::int64_t>& mark, std::int64_t value) {
  std::int64_t seen = mark.load(std::memory_order_relaxed);
  while (value > seen &&
         !mark.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {}
}
} // namespace

void MemoryLedger::charge(int id, std::int64_t bytes) {
  if (bytes <= 0) {
    if (bytes < 0) { release(id, -bytes); }
    return;
  }
  Account& a = *m_table[static_cast<std::size_t>(id)].load(std::memory_order_acquire);
  const std::int64_t cur = a.current.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  raise_mark(a.high_water, cur);
  a.alloc_count.fetch_add(1, std::memory_order_relaxed);
  a.charged.fetch_add(bytes, std::memory_order_relaxed);
  const std::int64_t tot =
      m_total_current.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  raise_mark(m_total_high_water, tot);
}

void MemoryLedger::release(int id, std::int64_t bytes) {
  if (bytes <= 0) {
    if (bytes < 0) { charge(id, -bytes); }
    return;
  }
  Account& a = *m_table[static_cast<std::size_t>(id)].load(std::memory_order_acquire);
  a.current.fetch_sub(bytes, std::memory_order_relaxed);
  a.released.fetch_add(bytes, std::memory_order_relaxed);
  m_total_current.fetch_sub(bytes, std::memory_order_relaxed);
}

const MemoryLedger::Account* MemoryLedger::find(std::string_view tag) const {
  std::lock_guard<std::mutex> lk(m_mu);
  const auto it = m_ids.find(tag);
  return it == m_ids.end() ? nullptr : &m_accounts[static_cast<std::size_t>(it->second)];
}

std::int64_t MemoryLedger::current(std::string_view tag) const {
  const Account* a = find(tag);
  return a ? a->current.load(std::memory_order_relaxed) : 0;
}

std::int64_t MemoryLedger::high_water(std::string_view tag) const {
  const Account* a = find(tag);
  return a ? a->high_water.load(std::memory_order_relaxed) : 0;
}

namespace {
bool tag_under_prefix(std::string_view tag, std::string_view prefix) {
  if (tag.size() < prefix.size() || tag.compare(0, prefix.size(), prefix) != 0) {
    return false;
  }
  return tag.size() == prefix.size() || tag[prefix.size()] == '.';
}
} // namespace

std::int64_t MemoryLedger::current_prefix(std::string_view prefix) const {
  std::lock_guard<std::mutex> lk(m_mu);
  std::int64_t sum = 0;
  for (const auto& a : m_accounts) {
    if (tag_under_prefix(a.tag, prefix)) {
      sum += a.current.load(std::memory_order_relaxed);
    }
  }
  return sum;
}

std::int64_t MemoryLedger::high_water_prefix(std::string_view prefix) const {
  std::lock_guard<std::mutex> lk(m_mu);
  std::int64_t sum = 0;
  for (const auto& a : m_accounts) {
    if (tag_under_prefix(a.tag, prefix)) {
      sum += a.high_water.load(std::memory_order_relaxed);
    }
  }
  return sum;
}

std::int64_t MemoryLedger::total_current() const {
  return m_total_current.load(std::memory_order_relaxed);
}
std::int64_t MemoryLedger::total_high_water() const {
  return m_total_high_water.load(std::memory_order_relaxed);
}

std::int64_t MemoryLedger::total_charged() const {
  std::lock_guard<std::mutex> lk(m_mu);
  std::int64_t sum = 0;
  for (const auto& a : m_accounts) { sum += a.charged.load(std::memory_order_relaxed); }
  return sum;
}

std::int64_t MemoryLedger::total_released() const {
  std::lock_guard<std::mutex> lk(m_mu);
  std::int64_t sum = 0;
  for (const auto& a : m_accounts) { sum += a.released.load(std::memory_order_relaxed); }
  return sum;
}

std::int64_t MemoryLedger::total_alloc_count() const {
  std::lock_guard<std::mutex> lk(m_mu);
  std::int64_t sum = 0;
  for (const auto& a : m_accounts) {
    sum += a.alloc_count.load(std::memory_order_relaxed);
  }
  return sum;
}

std::vector<MemAccountSnapshot> MemoryLedger::snapshot() const {
  std::lock_guard<std::mutex> lk(m_mu);
  std::vector<MemAccountSnapshot> out;
  out.reserve(m_accounts.size());
  for (const auto& a : m_accounts) {
    MemAccountSnapshot s;
    s.tag = a.tag;
    s.current = a.current.load(std::memory_order_relaxed);
    s.high_water = a.high_water.load(std::memory_order_relaxed);
    s.alloc_count = a.alloc_count.load(std::memory_order_relaxed);
    s.charged = a.charged.load(std::memory_order_relaxed);
    s.released = a.released.load(std::memory_order_relaxed);
    out.push_back(std::move(s));
  }
  return out;
}

void MemoryLedger::reset_high_water() {
  std::lock_guard<std::mutex> lk(m_mu);
  for (auto& a : m_accounts) {
    a.high_water.store(a.current.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
  }
  m_total_high_water.store(m_total_current.load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
}

MemoryLedger& memory_ledger() {
  static MemoryLedger ledger;
  return ledger;
}

// --- ScopedMemTag ----------------------------------------------------------

namespace {
std::string& tls_tag_path() {
  static thread_local std::string path;
  return path;
}
} // namespace

ScopedMemTag::ScopedMemTag(std::string_view component) {
  std::string& path = tls_tag_path();
  m_prev_size = path.size();
  if (!path.empty()) { path += '.'; }
  path += component;
}

ScopedMemTag::~ScopedMemTag() { tls_tag_path().resize(m_prev_size); }

std::string ScopedMemTag::current_path() { return tls_tag_path(); }

int ScopedMemTag::current_id() {
  const std::string& path = tls_tag_path();
  return path.empty() ? 0 : memory_ledger().intern(path);
}

bool ScopedMemTag::active() { return !tls_tag_path().empty(); }

// --- MemCharge -------------------------------------------------------------

MemCharge::MemCharge(std::string_view tag) : m_id(memory_ledger().intern(tag)) {}

void MemCharge::bind_for_copy(const MemCharge& o) {
  // Fresh binding for a copy: the active scope wins (a scratch copy made
  // under ScopedMemTag("health") is health memory), else stay in the
  // source's account.
  m_id = ScopedMemTag::active() ? ScopedMemTag::current_id() : o.m_id;
}

MemCharge::MemCharge(const MemCharge& o) {
  if (o.m_bytes == 0 && o.m_id < 0) { return; }
  bind_for_copy(o);
  update(o.m_bytes);
}

MemCharge& MemCharge::operator=(const MemCharge& o) {
  if (this == &o) { return *this; }
  // Keep our own account when already bound (re-filling an existing owner
  // does not re-home its bytes); otherwise bind like a fresh copy.
  if (m_id < 0) { bind_for_copy(o); }
  update(o.m_bytes);
  return *this;
}

MemCharge::MemCharge(MemCharge&& o) noexcept : m_id(o.m_id), m_bytes(o.m_bytes) {
  o.m_id = -1;
  o.m_bytes = 0;
}

MemCharge& MemCharge::operator=(MemCharge&& o) noexcept {
  if (this == &o) { return *this; }
  if (m_bytes != 0 && m_id >= 0) { memory_ledger().release(m_id, m_bytes); }
  m_id = o.m_id;
  m_bytes = o.m_bytes;
  o.m_id = -1;
  o.m_bytes = 0;
  return *this;
}

MemCharge::~MemCharge() {
  if (m_bytes != 0 && m_id >= 0) { memory_ledger().release(m_id, m_bytes); }
}

void MemCharge::update(std::int64_t bytes) {
  if (bytes < 0) { bytes = 0; }
  if (m_id < 0) {
    if (bytes == 0) { return; } // stay unbound until there is something to own
    m_id = ScopedMemTag::current_id();
  }
  const std::int64_t delta = bytes - m_bytes;
  if (delta > 0) {
    memory_ledger().charge(m_id, delta);
  } else if (delta < 0) {
    memory_ledger().release(m_id, -delta);
  }
  m_bytes = bytes;
}

// --- MR memory-savings model -----------------------------------------------

MrSavings mr_savings_from_bytes(double level0_field_bytes, double mr_bytes,
                                double particle_bytes, int ratio, int dim) {
  MrSavings s;
  double scale = 1;
  for (int d = 0; d < dim; ++d) { scale *= static_cast<double>(ratio); }
  s.actual_bytes = level0_field_bytes + mr_bytes + particle_bytes;
  // Uniform fine grid: same box layout and particles-per-cell density at
  // ratio x the resolution everywhere — fields and particle count both scale
  // with the cell count, i.e. by ratio^dim.
  s.uniform_fine_bytes = (level0_field_bytes + particle_bytes) * scale;
  s.factor = s.actual_bytes > 0 ? s.uniform_fine_bytes / s.actual_bytes : 1.0;
  return s;
}

MrSavings analytic_mr_savings(const MrSavingsInputs& in) {
  const double b = static_cast<double>(in.bytes_per_real);
  const int rpp =
      in.reals_per_particle > 0 ? in.reals_per_particle : in.dim + 4;
  const double field0 =
      static_cast<double>(in.field_comps) * static_cast<double>(in.level0_grown_cells) * b;
  const std::int64_t aux_cells =
      in.aux_grown_cells > 0 ? in.aux_grown_cells : in.fine_grown_cells;
  const double mr =
      static_cast<double>(in.field_comps) *
          static_cast<double>(in.fine_grown_cells + in.coarse_grown_cells) * b +
      static_cast<double>(in.aux_comps) * static_cast<double>(aux_cells) * b +
      static_cast<double>(in.pml_comps) *
          static_cast<double>(in.fine_pml_cells + in.coarse_pml_cells) * b;
  const double particles =
      static_cast<double>(in.num_particles) * static_cast<double>(rpp) * b;
  return mr_savings_from_bytes(field0, mr, particles, in.ratio, in.dim);
}

MrSavings measure_mr_savings(const MemoryLedger& ledger, int ratio, int dim) {
  const double field0 = static_cast<double>(ledger.current_prefix("fields.level0"));
  const double mr = static_cast<double>(ledger.current_prefix("mr"));
  const double particles = static_cast<double>(ledger.current_prefix("particles"));
  return mr_savings_from_bytes(field0, mr, particles, ratio, dim);
}

// --- OOM prediction --------------------------------------------------------

OomPrediction predict_first_oom(const RankRecorder& rec, double budget_bytes) {
  OomPrediction p;
  for (const auto& step : rec.steps()) {
    for (const auto& r : step.ranks) {
      if (r.resident_bytes > p.peak_bytes) {
        p.peak_bytes = r.resident_bytes;
        p.peak_step = step.step;
        p.peak_rank = r.rank;
      }
      if (!p.predicted && budget_bytes > 0 &&
          static_cast<double>(r.resident_bytes) > budget_bytes) {
        p.predicted = true;
        p.step = step.step;
        p.rank = r.rank;
      }
    }
  }
  p.headroom = p.peak_bytes > 0 && budget_bytes > 0
                   ? budget_bytes / static_cast<double>(p.peak_bytes)
                   : 0;
  return p;
}

std::string format_bytes(double bytes) {
  static const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = bytes;
  int u = 0;
  while (std::abs(v) >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  char buf[64];
  if (u == 0) {
    std::snprintf(buf, sizeof(buf), "%.0f %s", v, units[u]);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", v, units[u]);
  }
  return std::string(buf);
}

} // namespace mrpic::obs
