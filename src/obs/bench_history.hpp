#pragma once

// obs::bench_history — the cross-run perf trajectory ledger (ISSUE 9
// satellite): every bench_smoke run appends one schema-tagged JSONL record
// per BENCH_*.json it produced, so "did attainment drift over the last ten
// commits" is answerable from the repo itself instead of from CI archaeology.
// Records carry a curated subset of each bench's numeric leaves (the
// headline metrics: efficiencies, speedups, overhead fractions, savings
// factors, headrooms), extracted deterministically from the benchdiff
// flattening. Appends are durable (open-append-flush per record, the health
// alert idiom); the reader is tolerant like obs::read_metrics_jsonl — it
// skips malformed lines AND valid-JSON lines whose schema tag is missing or
// foreign, and reports the skipped count. bench_trend (bench/) is the CLI
// over this.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/obs/json.hpp"

namespace mrpic::obs {

inline constexpr const char* kBenchHistorySchema = "bench_history/v1";

struct BenchHistoryEntry {
  std::string schema = kBenchHistorySchema;
  std::string bench;      // bench kind ("memory", "kernel_grain", ...)
  std::string source;     // producing file or context (informational)
  std::int64_t unix_time = 0;  // seconds since epoch (0 = unknown)
  std::map<std::string, double> metrics;  // flattened path -> value
};

// Pull the headline numeric metrics out of one parsed BENCH_*.json document
// (benchdiff::flatten paths filtered by a suffix allowlist of key metric
// names), capped at `max_metrics` entries in sorted path order. Returns an
// entry with empty `bench` if the document has no "bench" tag.
BenchHistoryEntry extract_bench_history(const json::Value& doc,
                                        const std::string& source,
                                        std::size_t max_metrics = 32);

// Serialize one entry as a single JSON line (no trailing newline).
std::string bench_history_line(const BenchHistoryEntry& entry);

// Parse one ledger line; throws std::runtime_error on malformed input or a
// missing/foreign schema tag.
BenchHistoryEntry parse_bench_history_line(const std::string& line);

// Durably append one entry (open in append mode, write, flush). Returns
// false if the file cannot be opened.
bool append_bench_history(const std::string& path, const BenchHistoryEntry& entry);

// Load a ledger. Malformed lines and lines without the bench_history schema
// tag are skipped (and counted into *num_skipped when given); throws
// std::runtime_error only when the file cannot be opened.
std::vector<BenchHistoryEntry> read_bench_history(const std::string& path,
                                                  std::size_t* num_skipped = nullptr);

} // namespace mrpic::obs
