#pragma once

// Lorentz-boosted-frame utilities (paper Table I "Boosted frame" and
// Sec. VIII.B: "modeling in Lorentz boosted frame, which gives several
// orders of magnitude speedups over standard laboratory-frame modeling",
// citing Vay PRL 2007).
//
// The boost is along +x with velocity beta*c. Provided here:
//  - four-vector transforms for particle position/momentum,
//  - the electromagnetic field transform,
//  - plasma initialization helpers (density contraction + drift),
//  - laser parameter transforms for a pulse counter-propagating to the
//    boost (the standard LWFA configuration),
//  - the Vay (2007) estimate of the computational speedup.

#include <array>

#include "src/amr/config.hpp"

namespace mrpic::boost {

class BoostedFrame {
public:
  // gamma >= 1; boost along +x.
  explicit BoostedFrame(Real gamma);

  Real gamma() const { return m_gamma; }
  Real beta() const { return m_beta; }

  // --- kinematics -------------------------------------------------------
  // Transform an event (t, x) lab -> boosted. Positions in meters, t in s.
  // Only the x coordinate mixes with time.
  std::array<Real, 2> event_to_boosted(Real t, Real x) const; // {t', x'}
  std::array<Real, 2> event_to_lab(Real tp, Real xp) const;

  // Proper velocity u = gamma_p * v (m/s, as stored by ParticleTile):
  // u'_x = gamma (u_x - beta c gamma_p), transverse unchanged.
  std::array<Real, 3> momentum_to_boosted(const std::array<Real, 3>& u) const;
  std::array<Real, 3> momentum_to_lab(const std::array<Real, 3>& u) const;

  // --- fields -----------------------------------------------------------
  // E'_x = E_x, E'_perp = gamma (E + v x B)_perp; B'_x = B_x,
  // B'_perp = gamma (B - v x E / c^2)_perp.
  void fields_to_boosted(std::array<Real, 3>& E, std::array<Real, 3>& B) const;
  void fields_to_lab(std::array<Real, 3>& E, std::array<Real, 3>& B) const;

  // --- plasma & laser setup --------------------------------------------
  // A lab-frame plasma at rest with density n appears contracted and
  // drifting: n' = gamma n, u'_x = -gamma beta c.
  Real plasma_density_boosted(Real n_lab) const { return m_gamma * n_lab; }
  Real plasma_drift_ux() const;

  // A laser propagating in +x (with the boost) is redshifted:
  // lambda' = lambda gamma (1 + beta); duration dilates by the same factor;
  // a0 is invariant.
  Real copropagating_wavelength(Real lambda_lab) const {
    return lambda_lab * m_gamma * (1 + m_beta);
  }
  Real copropagating_duration(Real tau_lab) const {
    return tau_lab * m_gamma * (1 + m_beta);
  }

  // Vay (2007): the range of space/time scales of a lab-frame LWFA stage
  // collapses by ~(1+beta)^2 gamma^2 in the optimal boosted frame — the
  // expected reduction in the number of time steps for a stage of length
  // L_acc driven by a laser of wavelength lambda.
  static Real speedup_estimate(Real gamma_boost);

private:
  Real m_gamma;
  Real m_beta;
};

// Electromagnetic invariants (test/diagnostic helpers): both are preserved
// by any Lorentz transformation.
Real invariant_e2_c2b2(const std::array<Real, 3>& E, const std::array<Real, 3>& B);
Real invariant_e_dot_b(const std::array<Real, 3>& E, const std::array<Real, 3>& B);

} // namespace mrpic::boost
