#include "src/boost/lorentz.hpp"

#include <cassert>
#include <cmath>

namespace mrpic::boost {

using mrpic::constants::c;

BoostedFrame::BoostedFrame(Real gamma) : m_gamma(gamma) {
  assert(gamma >= 1);
  m_beta = std::sqrt(1 - 1 / (gamma * gamma));
}

std::array<Real, 2> BoostedFrame::event_to_boosted(Real t, Real x) const {
  return {m_gamma * (t - m_beta * x / c), m_gamma * (x - m_beta * c * t)};
}

std::array<Real, 2> BoostedFrame::event_to_lab(Real tp, Real xp) const {
  return {m_gamma * (tp + m_beta * xp / c), m_gamma * (xp + m_beta * c * tp)};
}

std::array<Real, 3> BoostedFrame::momentum_to_boosted(const std::array<Real, 3>& u) const {
  const Real u2 = u[0] * u[0] + u[1] * u[1] + u[2] * u[2];
  const Real gp = std::sqrt(1 + u2 / (c * c)); // particle gamma (u0/c)
  return {m_gamma * (u[0] - m_beta * c * gp), u[1], u[2]};
}

std::array<Real, 3> BoostedFrame::momentum_to_lab(const std::array<Real, 3>& u) const {
  const Real u2 = u[0] * u[0] + u[1] * u[1] + u[2] * u[2];
  const Real gp = std::sqrt(1 + u2 / (c * c));
  return {m_gamma * (u[0] + m_beta * c * gp), u[1], u[2]};
}

void BoostedFrame::fields_to_boosted(std::array<Real, 3>& E, std::array<Real, 3>& B) const {
  const Real v = m_beta * c;
  const std::array<Real, 3> e = E, b = B;
  // Boost along x: parallel components unchanged.
  E[1] = m_gamma * (e[1] - v * b[2]);
  E[2] = m_gamma * (e[2] + v * b[1]);
  B[1] = m_gamma * (b[1] + v * e[2] / (c * c));
  B[2] = m_gamma * (b[2] - v * e[1] / (c * c));
}

void BoostedFrame::fields_to_lab(std::array<Real, 3>& E, std::array<Real, 3>& B) const {
  const Real v = m_beta * c;
  const std::array<Real, 3> e = E, b = B;
  E[1] = m_gamma * (e[1] + v * b[2]);
  E[2] = m_gamma * (e[2] - v * b[1]);
  B[1] = m_gamma * (b[1] - v * e[2] / (c * c));
  B[2] = m_gamma * (b[2] + v * e[1] / (c * c));
}

Real BoostedFrame::plasma_drift_ux() const { return -m_gamma * m_beta * c; }

Real BoostedFrame::speedup_estimate(Real gamma_boost) {
  const Real beta = std::sqrt(1 - 1 / (gamma_boost * gamma_boost));
  return (1 + beta) * (1 + beta) * gamma_boost * gamma_boost;
}

Real invariant_e2_c2b2(const std::array<Real, 3>& E, const std::array<Real, 3>& B) {
  const Real e2 = E[0] * E[0] + E[1] * E[1] + E[2] * E[2];
  const Real b2 = B[0] * B[0] + B[1] * B[1] + B[2] * B[2];
  return e2 - c * c * b2;
}

Real invariant_e_dot_b(const std::array<Real, 3>& E, const std::array<Real, 3>& B) {
  return E[0] * B[0] + E[1] * B[1] + E[2] * B[2];
}

} // namespace mrpic::boost
