#include "src/plasma/plasma_injector.hpp"

#include <cmath>

namespace mrpic::plasma {

namespace {

// SplitMix64: small deterministic generator seeded per cell.
struct SplitMix64 {
  std::uint64_t s;
  std::uint64_t next() {
    std::uint64_t z = (s += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  Real uniform() { return (next() >> 11) * (1.0 / 9007199254740992.0); }
  // Box-Muller normal deviate.
  Real normal() {
    Real u1 = uniform();
    while (u1 <= 1e-300) { u1 = uniform(); }
    const Real u2 = uniform();
    return std::sqrt(-2 * std::log(u1)) *
           std::cos(2 * mrpic::constants::pi * u2);
  }
};

template <int DIM>
std::uint64_t cell_seed(const mrpic::IntVect<DIM>& cell, std::uint64_t base) {
  std::uint64_t h = base;
  for (int d = 0; d < DIM; ++d) {
    h ^= static_cast<std::uint64_t>(static_cast<std::int64_t>(cell[d])) +
         0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

} // namespace

template <int DIM>
std::int64_t PlasmaInjector<DIM>::inject(mrpic::particles::ParticleContainer<DIM>& pc,
                                         const mrpic::Geometry<DIM>& geom,
                                         const mrpic::Box<DIM>& region) const {
  using namespace mrpic::constants;
  const mrpic::Box<DIM> reg = region & geom.domain();
  if (reg.empty()) { return 0; }

  Real dv = 1;
  for (int d = 0; d < DIM; ++d) { dv *= geom.cell_size(d); }
  const Real ppc_total = static_cast<Real>(m_cfg.ppc.product());

  // Thermal proper-velocity spread: u_th = sqrt(kT/m) (non-relativistic
  // temperatures; kT in J = T_ev * q_e).
  const Real mass = pc.species().mass;
  const Real u_th =
      m_cfg.temperature_ev > 0 ? std::sqrt(m_cfg.temperature_ev * q_e / mass) : Real(0);

  std::int64_t added = 0;
  // Loop cells via a dummy fab iteration helper (reuses Box traversal).
  const auto visit_cell = [&](const mrpic::IntVect<DIM>& cell) {
    SplitMix64 rng{cell_seed(cell, m_cfg.seed)};
    // Regular sub-lattice positions within the cell.
    mrpic::IntVect<DIM> sub;
    const auto emit = [&](const mrpic::IntVect<DIM>& sv) {
      std::array<Real, DIM> pos;
      mrpic::RealVect<DIM> rv;
      for (int d = 0; d < DIM; ++d) {
        const Real frac = (sv[d] + Real(0.5)) / m_cfg.ppc[d];
        pos[d] = geom.node_pos(cell[d], d) + frac * geom.cell_size(d);
        rv[d] = pos[d];
      }
      const Real n = m_cfg.density(rv);
      if (n < m_cfg.density_floor) { return; }
      std::array<Real, 3> mom{};
      if (u_th > 0) {
        for (int cc = 0; cc < 3; ++cc) { mom[cc] = u_th * rng.normal(); }
      }
      if (pc.add_particle(geom, pos, mom, n * dv / ppc_total)) { ++added; }
    };
    if constexpr (DIM == 2) {
      for (sub[1] = 0; sub[1] < m_cfg.ppc[1]; ++sub[1]) {
        for (sub[0] = 0; sub[0] < m_cfg.ppc[0]; ++sub[0]) { emit(sub); }
      }
    } else {
      for (sub[2] = 0; sub[2] < m_cfg.ppc[2]; ++sub[2]) {
        for (sub[1] = 0; sub[1] < m_cfg.ppc[1]; ++sub[1]) {
          for (sub[0] = 0; sub[0] < m_cfg.ppc[0]; ++sub[0]) { emit(sub); }
        }
      }
    }
  };

  if constexpr (DIM == 2) {
    for (int j = reg.lo(1); j <= reg.hi(1); ++j) {
      for (int i = reg.lo(0); i <= reg.hi(0); ++i) {
        visit_cell(mrpic::IntVect<DIM>(i, j));
      }
    }
  } else {
    for (int k = reg.lo(2); k <= reg.hi(2); ++k) {
      for (int j = reg.lo(1); j <= reg.hi(1); ++j) {
        for (int i = reg.lo(0); i <= reg.hi(0); ++i) {
          visit_cell(mrpic::IntVect<DIM>(i, j, k));
        }
      }
    }
  }
  return added;
}

template class PlasmaInjector<2>;
template class PlasmaInjector<3>;

} // namespace mrpic::plasma
