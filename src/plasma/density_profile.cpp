#include "src/plasma/density_profile.hpp"

namespace mrpic::plasma {

Real critical_density(Real wavelength) {
  using namespace mrpic::constants;
  const Real omega = 2 * pi * c / wavelength;
  return eps0 * m_e * omega * omega / (q_e * q_e);
}

} // namespace mrpic::plasma
