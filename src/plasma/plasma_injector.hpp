#pragma once

// Plasma particle loading: fills cells with a regular sub-cell lattice of
// macroparticles (ppc per direction, like the paper's "3x2x3 macroparticles
// per cell"), each weighted by the local density, with optional Maxwellian
// temperature jitter seeded deterministically per cell (bit-reproducible
// regardless of box decomposition or injection order).

#include "src/amr/geometry.hpp"
#include "src/particles/particle_container.hpp"
#include "src/plasma/density_profile.hpp"

namespace mrpic::plasma {

template <int DIM>
struct InjectorConfig {
  DensityProfile<DIM> density;
  mrpic::IntVect<DIM> ppc = mrpic::IntVect<DIM>(1); // particles/cell per direction
  Real temperature_ev = 0;  // Maxwellian temperature [eV], 0 = cold
  Real density_floor = 1e6; // skip cells below this density [1/m^3]
  std::uint64_t seed = 12345;
};

template <int DIM>
class PlasmaInjector {
public:
  explicit PlasmaInjector(InjectorConfig<DIM> cfg) : m_cfg(std::move(cfg)) {}

  const InjectorConfig<DIM>& config() const { return m_cfg; }

  // Populate every cell of `region` (index box intersected with the domain)
  // into `pc`. Returns the number of macroparticles added.
  std::int64_t inject(mrpic::particles::ParticleContainer<DIM>& pc,
                      const mrpic::Geometry<DIM>& geom,
                      const mrpic::Box<DIM>& region) const;

  // Populate the whole domain.
  std::int64_t inject_all(mrpic::particles::ParticleContainer<DIM>& pc,
                          const mrpic::Geometry<DIM>& geom) const {
    return inject(pc, geom, geom.domain());
  }

private:
  InjectorConfig<DIM> m_cfg;
};

extern template class PlasmaInjector<2>;
extern template class PlasmaInjector<3>;

} // namespace mrpic::plasma
