#pragma once

// Plasma density profiles [particles / m^3] as composable functions of
// physical position, covering the paper's targets: uniform plasmas (the
// scaling benchmarks), gas jets (LWFA), solid foils (plasma mirrors) and
// the hybrid solid-gas target of the science case (Fig. 1b).

#include <cmath>
#include <functional>
#include <utility>

#include "src/amr/config.hpp"
#include "src/amr/real_vect.hpp"

namespace mrpic::plasma {

// Critical density for wavelength lambda: n_c = eps0 m_e omega^2 / e^2.
Real critical_density(Real wavelength);

template <int DIM>
using DensityProfile = std::function<Real(const mrpic::RealVect<DIM>&)>;

template <int DIM>
DensityProfile<DIM> uniform(Real n0) {
  return [n0](const mrpic::RealVect<DIM>&) { return n0; };
}

// Slab of density n0 for x in [x0, x1) (solid foil / plasma mirror).
template <int DIM>
DensityProfile<DIM> slab(Real n0, Real x0, Real x1) {
  return [=](const mrpic::RealVect<DIM>& r) {
    return (r[0] >= x0 && r[0] < x1) ? n0 : Real(0);
  };
}

// Gas jet: flat-top n0 for x in [x0+ramp, x1-ramp] with linear up/down ramps.
template <int DIM>
DensityProfile<DIM> gas_jet(Real n0, Real x0, Real x1, Real ramp) {
  return [=](const mrpic::RealVect<DIM>& r) {
    const Real x = r[0];
    if (x < x0 || x >= x1) { return Real(0); }
    if (x < x0 + ramp) { return n0 * (x - x0) / ramp; }
    if (x >= x1 - ramp) { return n0 * (x1 - x) / ramp; }
    return n0;
  };
}

// Density-downramp injection target: plateau n_hi (entered through a linear
// `ramp`-long upramp at x0), a linear downramp of length `down_len` starting
// at x_down onto a second plateau n_lo that extends to x1. The sudden
// plasma-wavelength stretch at the downramp drops the wake phase velocity
// and traps background electrons (downramp injection).
template <int DIM>
DensityProfile<DIM> downramp(Real n_hi, Real n_lo, Real x0, Real ramp, Real x_down,
                             Real down_len, Real x1) {
  return [=](const mrpic::RealVect<DIM>& r) {
    const Real x = r[0];
    if (x < x0 || x >= x1) { return Real(0); }
    if (x < x0 + ramp) { return n_hi * (x - x0) / ramp; }
    if (x < x_down) { return n_hi; }
    if (x < x_down + down_len) {
      return n_hi + (n_lo - n_hi) * (x - x_down) / down_len;
    }
    return n_lo;
  };
}

// Transversally Gaussian column: density n0 for x in [x0, x1), modulated by
// exp(-(y - y_center)^2 / (2 sigma^2)) in the first transverse direction.
// The reduced model of an ionization-injection dopant: the high-Z species'
// inner-shell electrons are only released near the axis where the laser
// intensity peaks, so the injectable population is confined to a narrow
// on-axis column.
template <int DIM>
DensityProfile<DIM> gaussian_column(Real n0, Real x0, Real x1, Real y_center,
                                    Real y_sigma) {
  return [=](const mrpic::RealVect<DIM>& r) {
    if (r[0] < x0 || r[0] >= x1) { return Real(0); }
    const Real dy = r[1] - y_center;
    return n0 * std::exp(-dy * dy / (2 * y_sigma * y_sigma));
  };
}

// Sum of two profiles (e.g. hybrid solid-gas target: gas jet in front of a
// solid foil, Fig. 1b of the paper).
template <int DIM>
DensityProfile<DIM> sum(DensityProfile<DIM> a, DensityProfile<DIM> b) {
  return [a = std::move(a), b = std::move(b)](const mrpic::RealVect<DIM>& r) {
    return a(r) + b(r);
  };
}

// Hybrid solid-gas target: gas [gas_x0, solid_x0) with entrance ramp +
// solid slab [solid_x0, solid_x1).
template <int DIM>
DensityProfile<DIM> hybrid_target(Real n_gas, Real gas_x0, Real gas_ramp, Real n_solid,
                                  Real solid_x0, Real solid_x1) {
  return sum<DIM>(gas_jet<DIM>(n_gas, gas_x0, solid_x0, gas_ramp),
                  slab<DIM>(n_solid, solid_x0, solid_x1));
}

} // namespace mrpic::plasma
