#pragma once

// Plasma density profiles [particles / m^3] as composable functions of
// physical position, covering the paper's targets: uniform plasmas (the
// scaling benchmarks), gas jets (LWFA), solid foils (plasma mirrors) and
// the hybrid solid-gas target of the science case (Fig. 1b).

#include <functional>
#include <utility>

#include "src/amr/config.hpp"
#include "src/amr/real_vect.hpp"

namespace mrpic::plasma {

// Critical density for wavelength lambda: n_c = eps0 m_e omega^2 / e^2.
Real critical_density(Real wavelength);

template <int DIM>
using DensityProfile = std::function<Real(const mrpic::RealVect<DIM>&)>;

template <int DIM>
DensityProfile<DIM> uniform(Real n0) {
  return [n0](const mrpic::RealVect<DIM>&) { return n0; };
}

// Slab of density n0 for x in [x0, x1) (solid foil / plasma mirror).
template <int DIM>
DensityProfile<DIM> slab(Real n0, Real x0, Real x1) {
  return [=](const mrpic::RealVect<DIM>& r) {
    return (r[0] >= x0 && r[0] < x1) ? n0 : Real(0);
  };
}

// Gas jet: flat-top n0 for x in [x0+ramp, x1-ramp] with linear up/down ramps.
template <int DIM>
DensityProfile<DIM> gas_jet(Real n0, Real x0, Real x1, Real ramp) {
  return [=](const mrpic::RealVect<DIM>& r) {
    const Real x = r[0];
    if (x < x0 || x >= x1) { return Real(0); }
    if (x < x0 + ramp) { return n0 * (x - x0) / ramp; }
    if (x >= x1 - ramp) { return n0 * (x1 - x) / ramp; }
    return n0;
  };
}

// Sum of two profiles (e.g. hybrid solid-gas target: gas jet in front of a
// solid foil, Fig. 1b of the paper).
template <int DIM>
DensityProfile<DIM> sum(DensityProfile<DIM> a, DensityProfile<DIM> b) {
  return [a = std::move(a), b = std::move(b)](const mrpic::RealVect<DIM>& r) {
    return a(r) + b(r);
  };
}

// Hybrid solid-gas target: gas [gas_x0, solid_x0) with entrance ramp +
// solid slab [solid_x0, solid_x1).
template <int DIM>
DensityProfile<DIM> hybrid_target(Real n_gas, Real gas_x0, Real gas_ramp, Real n_solid,
                                  Real solid_x0, Real solid_x1) {
  return sum<DIM>(gas_jet<DIM>(n_gas, gas_x0, solid_x0, gas_ramp),
                  slab<DIM>(n_solid, solid_x0, solid_x1));
}

} // namespace mrpic::plasma
