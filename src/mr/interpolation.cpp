#include "src/mr/interpolation.hpp"

#include <cmath>

namespace mrpic::mr {

namespace {

// A 1D up-to-three-point sample: value = sum_t w[t] * f(i0 + t).
struct Sample1D {
  int i0;
  Real w[3];
};

// Fine sample locations for a coarse staggered index I (restriction).
// Nodal directions (s = 0) at ratio 2 use full weighting (1/4, 1/2, 1/4):
// a pure point sample at even fine indices would silently drop any current
// living on odd fine indices (sub-coarse structure must be folded in, not
// aliased away). Half-staggered directions average the two straddling fine
// samples. Other ratios fall back to the point/average sample at the
// coarse location: fine index i = r I + s(r-1)/2.
inline Sample1D restrict_sample(int I, int stag, int ratio) {
  if (ratio == 2 && stag == 0) {
    return {2 * I - 1, {Real(0.25), Real(0.5), Real(0.25)}};
  }
  const int t2 = 2 * ratio * I + stag * (ratio - 1); // 2 * fine index target
  if (t2 % 2 == 0) { return {t2 / 2, {Real(1), Real(0), Real(0)}}; }
  return {(t2 - 1) / 2, {Real(0.5), Real(0.5), Real(0)}};
}

// Coarse sample for a fine staggered index i (interpolation): coarse
// coordinate xi = (2 i + s - r s) / (2 r) in coarse-index units.
inline Sample1D interp_sample(int i, int stag, int ratio) {
  const Real xi = (2 * i + stag - ratio * stag) / Real(2 * ratio);
  const Real fl = std::floor(xi);
  const int I0 = static_cast<int>(fl);
  const Real w = xi - fl;
  return {I0, {1 - w, w, Real(0)}};
}

template <int DIM, typename SampleFn>
void apply(const mrpic::FArrayBox<DIM>& src, mrpic::FArrayBox<DIM>& dst,
           const mrpic::Box<DIM>& region, int comp_src, int comp_dst,
           const mrpic::IntVect<DIM>& stag, int ratio, bool add, SampleFn&& sample_fn) {
  using IV = mrpic::IntVect<DIM>;
  dst.for_each_cell(region, [&](const IV& p) {
    Sample1D s[DIM];
    for (int d = 0; d < DIM; ++d) { s[d] = sample_fn(p[d], stag[d], ratio); }
    Real acc = 0;
    if constexpr (DIM == 2) {
      for (int b = 0; b < 3; ++b) {
        const Real wb = s[1].w[b];
        if (wb == 0) { continue; }
        for (int a = 0; a < 3; ++a) {
          const Real wa = s[0].w[a];
          if (wa == 0) { continue; }
          acc += wa * wb * src(IV(s[0].i0 + a, s[1].i0 + b), comp_src);
        }
      }
    } else {
      for (int cc = 0; cc < 3; ++cc) {
        const Real wc = s[2].w[cc];
        if (wc == 0) { continue; }
        for (int b = 0; b < 3; ++b) {
          const Real wb = s[1].w[b];
          if (wb == 0) { continue; }
          for (int a = 0; a < 3; ++a) {
            const Real wa = s[0].w[a];
            if (wa == 0) { continue; }
            acc += wa * wb * wc * src(IV(s[0].i0 + a, s[1].i0 + b, s[2].i0 + cc), comp_src);
          }
        }
      }
    }
    if (add) {
      dst(p, comp_dst) += acc;
    } else {
      dst(p, comp_dst) = acc;
    }
  });
}

} // namespace

template <int DIM>
void restrict_to_coarse(const mrpic::FArrayBox<DIM>& fine, mrpic::FArrayBox<DIM>& coarse,
                        const mrpic::Box<DIM>& region, int comp_src, int comp_dst,
                        const mrpic::IntVect<DIM>& stag, int ratio, bool add) {
  apply<DIM>(fine, coarse, region, comp_src, comp_dst, stag, ratio, add,
             [](int i, int s, int r) { return restrict_sample(i, s, r); });
}

template <int DIM>
void interp_to_fine(const mrpic::FArrayBox<DIM>& coarse, mrpic::FArrayBox<DIM>& fine,
                    const mrpic::Box<DIM>& region, int comp_src, int comp_dst,
                    const mrpic::IntVect<DIM>& stag, int ratio, bool add) {
  apply<DIM>(coarse, fine, region, comp_src, comp_dst, stag, ratio, add,
             [](int i, int s, int r) { return interp_sample(i, s, r); });
}

template void restrict_to_coarse<2>(const mrpic::FArrayBox<2>&, mrpic::FArrayBox<2>&,
                                    const mrpic::Box<2>&, int, int, const mrpic::IntVect<2>&,
                                    int, bool);
template void restrict_to_coarse<3>(const mrpic::FArrayBox<3>&, mrpic::FArrayBox<3>&,
                                    const mrpic::Box<3>&, int, int, const mrpic::IntVect<3>&,
                                    int, bool);
template void interp_to_fine<2>(const mrpic::FArrayBox<2>&, mrpic::FArrayBox<2>&,
                                const mrpic::Box<2>&, int, int, const mrpic::IntVect<2>&, int,
                                bool);
template void interp_to_fine<3>(const mrpic::FArrayBox<3>&, mrpic::FArrayBox<3>&,
                                const mrpic::Box<3>&, int, int, const mrpic::IntVect<3>&, int,
                                bool);

} // namespace mrpic::mr
