#include "src/mr/mr_patch.hpp"

#include "src/fields/yee.hpp"
#include "src/mr/interpolation.hpp"

namespace mrpic::mr {

template <int DIM>
MRPatch<DIM>::MRPatch(const mrpic::Geometry<DIM>& parent_geom, const Config& cfg)
    : m_cfg(cfg), m_parent_geom_init(parent_geom) {
  const mrpic::Geometry<DIM> fine_geom = parent_geom.refined(cfg.ratio);
  const mrpic::BoxArray<DIM> fine_ba(fine_region());
  const mrpic::BoxArray<DIM> coarse_ba(cfg.region);

  // Every allocation of the patch surcharge lands under "mr.patch.*" in the
  // memory ledger — the byte side of the paper's MR affordability argument
  // (the savings factor compares these accounts against the uniform-fine
  // equivalent, obs::measure_mr_savings).
  mrpic::obs::ScopedMemTag t_mr("mr.patch");
  {
    mrpic::obs::ScopedMemTag t("fine");
    m_fine = fields::FieldSet<DIM>(fine_geom, fine_ba);
  }
  {
    mrpic::obs::ScopedMemTag t("coarse");
    m_coarse = fields::FieldSet<DIM>(parent_geom, coarse_ba);
  }

  std::array<bool, DIM> absorb;
  absorb.fill(true);
  {
    mrpic::obs::ScopedMemTag t("pml");
    m_fine_pml = fields::Pml<DIM>(fine_geom, fine_region(), absorb, cfg.pml);
    m_coarse_pml = fields::Pml<DIM>(parent_geom, cfg.region, absorb, cfg.pml);
  }
  {
    mrpic::obs::ScopedMemTag t("aux");
    m_auxE = mrpic::MultiFab<DIM>(fine_ba, 3, 2);
    m_auxB = mrpic::MultiFab<DIM>(fine_ba, 3, 2);
  }
}

template <int DIM>
bool MRPatch<DIM>::in_region(const mrpic::Geometry<DIM>& pg,
                             const std::array<Real, DIM>& x) const {
  if (!m_active) { return false; }
  IV cell;
  for (int d = 0; d < DIM; ++d) { cell[d] = pg.cell_index(x[d], d); }
  return m_cfg.region.contains(cell);
}

template <int DIM>
bool MRPatch<DIM>::in_interior(const mrpic::Geometry<DIM>& pg,
                               const std::array<Real, DIM>& x) const {
  if (!m_active) { return false; }
  IV cell;
  for (int d = 0; d < DIM; ++d) { cell[d] = pg.cell_index(x[d], d); }
  return m_cfg.region.grown(-m_cfg.transition_cells).contains(cell);
}

template <int DIM>
void MRPatch<DIM>::sync_currents(mrpic::MultiFab<DIM>& parent_J) {
  if (!m_active) { return; }
  // Fine current -> coarse companion (restriction at Yee-staggered
  // locations), then companion -> parent (accumulation on the overlap).
  for (int comp = 0; comp < 3; ++comp) {
    restrict_to_coarse<DIM>(m_fine.J().fab(0), m_coarse.J().fab(0), m_cfg.region, comp,
                            comp, fields::j_stag<DIM>(comp), m_cfg.ratio, false);
  }
  parent_J.parallel_copy(m_coarse.J(), 0, 0, 3, 0, 0, /*add=*/true);
}

template <int DIM>
void MRPatch<DIM>::exchange(fields::FieldSet<DIM>& f, fields::Pml<DIM>& pml) {
  f.fill_boundary();
  pml.exchange_from_interior(f);
  pml.fill_boundary();
  pml.copy_to_interior(f);
}

template <int DIM>
void MRPatch<DIM>::evolve_b(Real dt) {
  if (!m_active) { return; }
  exchange(m_fine, m_fine_pml);
  m_solver.evolve_b(m_fine, dt);
  m_fine_pml.evolve_b(dt);
  exchange(m_coarse, m_coarse_pml);
  m_solver.evolve_b(m_coarse, dt);
  m_coarse_pml.evolve_b(dt);
}

template <int DIM>
void MRPatch<DIM>::evolve_e(Real dt) {
  if (!m_active) { return; }
  exchange(m_fine, m_fine_pml);
  m_solver.evolve_e(m_fine, dt);
  m_fine_pml.evolve_e(dt);
  exchange(m_coarse, m_coarse_pml);
  m_solver.evolve_e(m_coarse, dt);
  m_coarse_pml.evolve_e(dt);
}

template <int DIM>
void MRPatch<DIM>::build_aux(const fields::FieldSet<DIM>& parent) {
  if (!m_active) { return; }
  // Scratch on the companion's box array: parent solution minus companion
  // solution, i.e. the external-source field at parent resolution.
  const int ng = m_coarse.E().num_ghost();
  mrpic::MultiFab<DIM> diffE(m_coarse.E().box_array(), 3, ng);
  mrpic::MultiFab<DIM> diffB(m_coarse.E().box_array(), 3, ng);
  diffE.parallel_copy(parent.E(), 0, 0, 3, 0, 2, false);
  diffB.parallel_copy(parent.B(), 0, 0, 3, 0, 2, false);
  diffE.lin_comb(1, -1, m_coarse.E(), 0, 0, 3);
  diffB.lin_comb(1, -1, m_coarse.B(), 0, 0, 3);

  // aux = I[diff] + fine, over the fine region grown by the aux ghosts.
  const mrpic::Box<DIM> aux_region = fine_region().grown(2);
  for (int comp = 0; comp < 3; ++comp) {
    interp_to_fine<DIM>(diffE.fab(0), m_auxE.fab(0), aux_region, comp, comp,
                        fields::e_stag<DIM>(comp), m_cfg.ratio, false);
    interp_to_fine<DIM>(diffB.fab(0), m_auxB.fab(0), aux_region, comp, comp,
                        fields::b_stag<DIM>(comp), m_cfg.ratio, false);
    m_auxE.fab(0).add_from(m_fine.E().fab(0), aux_region, comp, comp, 1);
    m_auxB.fab(0).add_from(m_fine.B().fab(0), aux_region, comp, comp, 1);
  }
}

template <int DIM>
void MRPatch<DIM>::shift_window(int dir, int parent_cells) {
  if (!m_active || parent_cells == 0) { return; }
  const int fine_cells = parent_cells * m_cfg.ratio;
  m_fine.E().shift_data(dir, fine_cells);
  m_fine.B().shift_data(dir, fine_cells);
  m_fine.J().shift_data(dir, fine_cells);
  m_fine.geom().shift_physical(dir, fine_cells);
  m_fine_pml.shift_data(dir, fine_cells);
  m_auxE.shift_data(dir, fine_cells);
  m_auxB.shift_data(dir, fine_cells);

  m_coarse.E().shift_data(dir, parent_cells);
  m_coarse.B().shift_data(dir, parent_cells);
  m_coarse.J().shift_data(dir, parent_cells);
  m_coarse.geom().shift_physical(dir, parent_cells);
  m_coarse_pml.shift_data(dir, parent_cells);
}

template class MRPatch<2>;
template class MRPatch<3>;

} // namespace mrpic::mr
