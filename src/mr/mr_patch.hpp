#pragma once

// MRPatch<DIM>: one electromagnetic mesh-refinement level, implementing the
// algorithm of Vay et al. (2004, 2012) as described in paper Sec. V.B:
//
//  * a fine grid f collocated with the refinement region (refined by an
//    integer ratio), terminated by a PML;
//  * an auxiliary coarse grid c over the same region at the parent
//    resolution, also PML-terminated;
//  * both grids see ONLY the currents of particles inside the region (the
//    fine current is restricted onto c and added to the parent grid);
//  * particles inside the region (outside a transition zone at its edge)
//    gather from the auxiliary solution
//        F(a) = F(f) + I[ F(s) - F(c) ]
//    where F(s) is the parent solution on the region and I is linear
//    interpolation, so external waves enter at parent resolution while
//    internal sources are resolved at fine resolution;
//  * particles in the transition zone gather from the parent only, which
//    mitigates spurious forces at the patch boundary;
//  * the patch can follow a moving window and be removed dynamically, the
//    key mechanism behind the paper's 1.5-4x time-to-solution savings
//    (Fig. 6).
//
// The patch region is held as a single fab per grid (physics-scale builds);
// distributed chopping of MR patches is modeled by src/perf.

#include <array>
#include <memory>
#include <optional>

#include "src/fields/fdtd.hpp"
#include "src/fields/field_set.hpp"
#include "src/fields/pml.hpp"

namespace mrpic::mr {

template <int DIM>
class MRPatch {
public:
  using IV = mrpic::IntVect<DIM>;

  struct Config {
    mrpic::Box<DIM> region;     // refinement region in parent index space
    int ratio = 2;              // integer refinement ratio
    int transition_cells = 2;   // parent cells at the region edge where
                                // particles gather from the parent only
    fields::PmlConfig pml{};
  };

  MRPatch(const mrpic::Geometry<DIM>& parent_geom, const Config& cfg);

  bool active() const { return m_active; }
  // Drop the refined level (fields under the region are already represented
  // on the parent through the restricted currents).
  void remove() { m_active = false; }

  const Config& config() const { return m_cfg; }
  const mrpic::Box<DIM>& region() const { return m_cfg.region; }
  mrpic::Box<DIM> fine_region() const { return m_cfg.region.refined(m_cfg.ratio); }

  fields::FieldSet<DIM>& fine() { return m_fine; }
  fields::FieldSet<DIM>& coarse() { return m_coarse; }
  const fields::FieldSet<DIM>& fine() const { return m_fine; }
  const fields::FieldSet<DIM>& coarse() const { return m_coarse; }
  fields::Pml<DIM>& fine_pml() { return m_fine_pml; }
  fields::Pml<DIM>& coarse_pml() { return m_coarse_pml; }

  // Gathering source for particles in the patch interior: the auxiliary
  // fields on the fine index space (valid after build_aux).
  const mrpic::MultiFab<DIM>& aux_E() const { return m_auxE; }
  const mrpic::MultiFab<DIM>& aux_B() const { return m_auxB; }

  // True if the physical position lies inside the patch region / inside the
  // interior (region minus transition zone), given the parent geometry.
  bool in_region(const mrpic::Geometry<DIM>& pg, const std::array<Real, DIM>& x) const;
  bool in_interior(const mrpic::Geometry<DIM>& pg, const std::array<Real, DIM>& x) const;

  // Restrict the fine current onto the coarse companion and add it to the
  // parent current (call after fine-J sum_boundary, before the E update).
  void sync_currents(mrpic::MultiFab<DIM>& parent_J);

  // Maxwell sub-steps on both patch grids, with PML coupling.
  void evolve_b(Real dt);
  void evolve_e(Real dt);

  // Rebuild the auxiliary gather fields from the current parent solution.
  void build_aux(const fields::FieldSet<DIM>& parent);

  // Scroll the patch with a moving window that shifted the parent by
  // `parent_cells` cells along `dir` (fine data shifts by ratio x as much).
  void shift_window(int dir, int parent_cells);

  // Number of cells the patch adds to the simulation (fine + companion),
  // for cost accounting.
  std::int64_t extra_cells() const {
    if (!m_active) { return 0; }
    return fine_region().num_cells() + m_cfg.region.num_cells();
  }

private:
  void exchange(fields::FieldSet<DIM>& f, fields::Pml<DIM>& pml);

  Config m_cfg;
  bool m_active = true;
  mrpic::Geometry<DIM> m_parent_geom_init;
  fields::FieldSet<DIM> m_fine;    // fine grid f (fine index space)
  fields::FieldSet<DIM> m_coarse;  // auxiliary coarse grid c (parent space)
  fields::Pml<DIM> m_fine_pml;
  fields::Pml<DIM> m_coarse_pml;
  mrpic::MultiFab<DIM> m_auxE, m_auxB; // gather fields on the fine space
  fields::FDTDSolver<DIM> m_solver;
};

extern template class MRPatch<2>;
extern template class MRPatch<3>;

} // namespace mrpic::mr
