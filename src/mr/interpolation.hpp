#pragma once

// Inter-level transfer operators for electromagnetic mesh refinement
// (Vay et al. 2004/2012, paper Sec. V.B):
//
//  - restrict_to_coarse: sample/average a fine staggered field onto the
//    collocated coarse grid (used to move the fine-patch current onto the
//    auxiliary coarse patch and the parent grid).
//  - interp_to_fine: linear interpolation of a coarse staggered field onto
//    fine staggered locations (the operator I in the substitution
//    F(a) = F(f) + I[F(s) - F(c)]).
//
// Both operate per component with the Yee staggering s in {0,1}^DIM and an
// integer refinement ratio r: a coarse sample with staggering s at index I
// sits at fine coordinate r*(I + s/2); for r=2, s=0 maps to a direct fine
// sample and s=1 to the average of the two straddling fine samples.

#include "src/amr/multifab.hpp"

namespace mrpic::mr {

// Restrict component comp of `fine` onto `coarse` over the coarse cell
// region `region` (in coarse index space). `stag` is the Yee staggering of
// the component; `ratio` the refinement ratio. Set `add` to accumulate.
template <int DIM>
void restrict_to_coarse(const mrpic::FArrayBox<DIM>& fine, mrpic::FArrayBox<DIM>& coarse,
                        const mrpic::Box<DIM>& region, int comp_src, int comp_dst,
                        const mrpic::IntVect<DIM>& stag, int ratio, bool add);

// Interpolate component comp of `coarse` onto fine staggered locations over
// the fine-index region `region`. Set `add` to accumulate into `fine`.
template <int DIM>
void interp_to_fine(const mrpic::FArrayBox<DIM>& coarse, mrpic::FArrayBox<DIM>& fine,
                    const mrpic::Box<DIM>& region, int comp_src, int comp_dst,
                    const mrpic::IntVect<DIM>& stag, int ratio, bool add);

extern template void restrict_to_coarse<2>(const mrpic::FArrayBox<2>&, mrpic::FArrayBox<2>&,
                                           const mrpic::Box<2>&, int, int,
                                           const mrpic::IntVect<2>&, int, bool);
extern template void restrict_to_coarse<3>(const mrpic::FArrayBox<3>&, mrpic::FArrayBox<3>&,
                                           const mrpic::Box<3>&, int, int,
                                           const mrpic::IntVect<3>&, int, bool);
extern template void interp_to_fine<2>(const mrpic::FArrayBox<2>&, mrpic::FArrayBox<2>&,
                                       const mrpic::Box<2>&, int, int,
                                       const mrpic::IntVect<2>&, int, bool);
extern template void interp_to_fine<3>(const mrpic::FArrayBox<3>&, mrpic::FArrayBox<3>&,
                                       const mrpic::Box<3>&, int, int,
                                       const mrpic::IntVect<3>&, int, bool);

} // namespace mrpic::mr
