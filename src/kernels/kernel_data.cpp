#include <algorithm>
#include "src/kernels/kernel_data.hpp"

#include <cmath>

namespace mrpic::kernels {

template <typename T>
void KernelParticles<T>::init_uniform(int n, int ppc, std::uint64_t seed, T u_scale) {
  const std::size_t np = static_cast<std::size_t>(n) * n * n * ppc;
  resize(np);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> jitter(0.05, 0.95);
  std::normal_distribution<double> mom(0.0, 1.0);
  std::size_t idx = 0;
  // Cell-major emission order == cell-sorted layout.
  for (int k = 0; k < n; ++k) {
    for (int j = 0; j < n; ++j) {
      for (int i = 0; i < n; ++i) {
        for (int pp = 0; pp < ppc; ++pp) {
          x[idx] = static_cast<T>(i + jitter(rng));
          y[idx] = static_cast<T>(j + jitter(rng));
          z[idx] = static_cast<T>(k + jitter(rng));
          ux[idx] = u_scale * static_cast<T>(mom(rng));
          uy[idx] = u_scale * static_cast<T>(mom(rng));
          uz[idx] = u_scale * static_cast<T>(mom(rng));
          w[idx] = T(1);
          ++idx;
        }
      }
    }
  }
}

template <typename T>
void KernelParticles<T>::shuffle(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<std::size_t> perm(size());
  for (std::size_t i = 0; i < perm.size(); ++i) { perm[i] = i; }
  std::shuffle(perm.begin(), perm.end(), rng);
  auto apply = [&](std::vector<T>& v) {
    std::vector<T> tmp(v.size());
    for (std::size_t i = 0; i < v.size(); ++i) { tmp[i] = v[perm[i]]; }
    v.swap(tmp);
  };
  apply(x);
  apply(y);
  apply(z);
  apply(ux);
  apply(uy);
  apply(uz);
  apply(w);
}

template struct KernelParticles<float>;
template struct KernelParticles<double>;

} // namespace mrpic::kernels
