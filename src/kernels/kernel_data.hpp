#pragma once

// Standalone data structures for the kernel-optimization experiment of
// paper Sec. V.A.1 (single-node A64FX tuning): a single-box 3D field and a
// SoA particle set, templated on precision so the SP ("MP mode") and DP
// rows of the paper's speedup table and of Table III can both be produced.
//
// Positions are kept in grid-index units (the staggering/normalization is
// hoisted out of the timed kernels, as in the production gather).

#include <cstdint>
#include <random>
#include <vector>

#include "src/amr/config.hpp"

namespace mrpic::kernels {

// One scalar field component on an (nx+2g)^3 allocation; index (i,j,k) in
// [-g, n+g).
template <typename T>
struct Field3 {
  int nx = 0, ny = 0, nz = 0, ng = 0;
  std::vector<T> data;

  void resize(int nx_, int ny_, int nz_, int ng_) {
    nx = nx_;
    ny = ny_;
    nz = nz_;
    ng = ng_;
    data.assign(static_cast<std::size_t>(sx()) * sy() * sz(), T(0));
  }
  int sx() const { return nx + 2 * ng; }
  int sy() const { return ny + 2 * ng; }
  int sz() const { return nz + 2 * ng; }
  std::int64_t index(int i, int j, int k) const {
    return (i + ng) + static_cast<std::int64_t>(sx()) * ((j + ng) +
           static_cast<std::int64_t>(sy()) * (k + ng));
  }
  T& operator()(int i, int j, int k) { return data[index(i, j, k)]; }
  T operator()(int i, int j, int k) const { return data[index(i, j, k)]; }
  T* ptr() { return data.data(); }
  const T* ptr() const { return data.data(); }

  void fill_random(std::uint64_t seed, T amplitude) {
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    for (auto& v : data) { v = amplitude * static_cast<T>(dist(rng)); }
  }
};

// The six electromagnetic components plus the three current components.
template <typename T>
struct KernelFields {
  Field3<T> ex, ey, ez, bx, by, bz;
  Field3<T> jx, jy, jz;

  void resize(int n, int ng) {
    for (Field3<T>* f : {&ex, &ey, &ez, &bx, &by, &bz, &jx, &jy, &jz}) {
      f->resize(n, n, n, ng);
    }
  }
  void randomize_eb(std::uint64_t seed, T amplitude) {
    std::uint64_t s = seed;
    for (Field3<T>* f : {&ex, &ey, &ez, &bx, &by, &bz}) { f->fill_random(++s, amplitude); }
  }
  void zero_j() {
    for (Field3<T>* f : {&jx, &jy, &jz}) {
      std::fill(f->data.begin(), f->data.end(), T(0));
    }
  }
};

// SoA particles; positions in grid units within [0, n)^3.
template <typename T>
struct KernelParticles {
  std::vector<T> x, y, z;    // position [cells]
  std::vector<T> ux, uy, uz; // proper velocity [m/s]
  std::vector<T> w;          // weight
  // Gathered per-particle fields (outputs of the gather kernels).
  std::vector<T> exp_, eyp, ezp, bxp, byp, bzp;

  std::size_t size() const { return x.size(); }

  void resize(std::size_t n) {
    for (auto* v : {&x, &y, &z, &ux, &uy, &uz, &w, &exp_, &eyp, &ezp, &bxp, &byp, &bzp}) {
      v->assign(n, T(0));
    }
  }

  // ppc particles per cell on a jittered sub-lattice, sorted cell-major
  // (the production code keeps tiles sorted; the grouped kernels rely on it).
  void init_uniform(int n, int ppc, std::uint64_t seed, T u_scale);

  // Randomly permute the particle order (the arrival-order state an
  // unsorted baseline operates on; paper Sec. V.A.1 lists sorting among the
  // locality optimizations).
  void shuffle(std::uint64_t seed);
};

extern template struct KernelParticles<float>;
extern template struct KernelParticles<double>;

} // namespace mrpic::kernels
