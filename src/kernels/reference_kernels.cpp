#include "src/kernels/reference_kernels.hpp"

#include <cmath>

namespace mrpic::kernels {

namespace {

// Order-3 B-spline weights; returns first index.
template <typename T>
inline int shape3(T* w, T x) {
  const int i = static_cast<int>(std::floor(x));
  const T d = x - static_cast<T>(i);
  const T d2 = d * d;
  const T d3 = d2 * d;
  w[0] = (T(1) - 3 * d + 3 * d2 - d3) / T(6);
  w[1] = (T(4) - 6 * d2 + 3 * d3) / T(6);
  w[2] = (T(1) + 3 * d + 3 * d2 - 3 * d3) / T(6);
  w[3] = d3 / T(6);
  return i - 1;
}

// Interpolate one component with staggering (sx,sy,sz); weights recomputed
// per call — the baseline's redundant work.
template <typename T>
inline T interp_one(const Field3<T>& f, T x, T y, T z, int sx, int sy, int sz) {
  T wx[4], wy[4], wz[4];
  const int i0 = shape3(wx, x - T(0.5) * sx);
  const int j0 = shape3(wy, y - T(0.5) * sy);
  const int k0 = shape3(wz, z - T(0.5) * sz);
  T acc = 0;
  for (int c = 0; c < 4; ++c) {
    for (int b = 0; b < 4; ++b) {
      const T wyz = wy[b] * wz[c];
      for (int a = 0; a < 4; ++a) {
        acc += wx[a] * wyz * f(i0 + a, j0 + b, k0 + c);
      }
    }
  }
  return acc;
}

} // namespace

template <typename T>
void gather_reference(KernelParticles<T>& p, const KernelFields<T>& f) {
  const std::size_t np = p.size();
  for (std::size_t i = 0; i < np; ++i) {
    const T x = p.x[i], y = p.y[i], z = p.z[i];
    p.exp_[i] = interp_one(f.ex, x, y, z, 1, 0, 0);
    p.eyp[i] = interp_one(f.ey, x, y, z, 0, 1, 0);
    p.ezp[i] = interp_one(f.ez, x, y, z, 0, 0, 1);
    p.bxp[i] = interp_one(f.bx, x, y, z, 0, 1, 1);
    p.byp[i] = interp_one(f.by, x, y, z, 1, 0, 1);
    p.bzp[i] = interp_one(f.bz, x, y, z, 1, 1, 0);
  }
}

template <typename T>
void deposit_reference(const KernelParticles<T>& p, KernelFields<T>& f, T q_dt_factor) {
  const std::size_t np = p.size();
  const T c2 = static_cast<T>(mrpic::constants::c) * static_cast<T>(mrpic::constants::c);
  for (std::size_t i = 0; i < np; ++i) {
    const T x = p.x[i], y = p.y[i], z = p.z[i];
    const T u2 = p.ux[i] * p.ux[i] + p.uy[i] * p.uy[i] + p.uz[i] * p.uz[i];
    const T invg = T(1) / std::sqrt(T(1) + u2 / c2);
    const T qw = q_dt_factor * p.w[i];
    const T amp[3] = {qw * p.ux[i] * invg, qw * p.uy[i] * invg, qw * p.uz[i] * invg};
    Field3<T>* J[3] = {&f.jx, &f.jy, &f.jz};
    const int stag[3][3] = {{1, 0, 0}, {0, 1, 0}, {0, 0, 1}};
    for (int comp = 0; comp < 3; ++comp) {
      T wx[4], wy[4], wz[4];
      const int i0 = shape3(wx, x - T(0.5) * stag[comp][0]);
      const int j0 = shape3(wy, y - T(0.5) * stag[comp][1]);
      const int k0 = shape3(wz, z - T(0.5) * stag[comp][2]);
      for (int c = 0; c < 4; ++c) {
        for (int b = 0; b < 4; ++b) {
          const T wyz = wy[b] * wz[c] * amp[comp];
          for (int a = 0; a < 4; ++a) {
            (*J[comp])(i0 + a, j0 + b, k0 + c) += wx[a] * wyz;
          }
        }
      }
    }
  }
}

std::int64_t gather_reference_flops_per_particle() {
  // 6 components x (3 shape evals x 16 + 64 taps x 3 flops + 16 wyz muls).
  return 6 * (3 * 16 + 64 * 3 + 16);
}

std::int64_t deposit_reference_flops_per_particle() {
  // gamma (~12) + 3 amps (6) + 3 comps x (3 x 16 shapes + 16 wyz x 2 + 64 x 2).
  return 12 + 6 + 3 * (3 * 16 + 16 * 2 + 64 * 2);
}

template void gather_reference<float>(KernelParticles<float>&, const KernelFields<float>&);
template void gather_reference<double>(KernelParticles<double>&, const KernelFields<double>&);
template void deposit_reference<float>(const KernelParticles<float>&, KernelFields<float>&,
                                       float);
template void deposit_reference<double>(const KernelParticles<double>&,
                                        KernelFields<double>&, double);

} // namespace mrpic::kernels
