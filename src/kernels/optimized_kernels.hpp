#pragma once

// Optimized gather/deposition kernels implementing the paper's A64FX
// strategy (Sec. V.A.1): "vectorizing the computation of the coefficient ijk
// for multiple particles (vectorizing over p with ijk fixed) requires some
// data reorganization but allows extending loops to arbitrary sizes which is
// ideal for vectorization ... implemented on small groups of cells of size
// N_grp".
//
// Particles must be cell-sorted. For each run of particles sharing a cell
// (chunked to N_grp), the shape weights of all particles are computed once
// into transposed [tap][particle] arrays (stage 1, contiguous and
// auto-vectorizable), the six components reuse them, and every stencil tap's
// field value is loaded exactly once per run instead of once per particle
// (stage 2: long vectorizable inner loops over p with ijk fixed). The
// deposition accumulates into a per-run register-local stencil buffer and
// scatters it once per run.
//
// Half-staggered weights are arranged on a 5-tap window anchored at the cell
// (the half-shift moves the 4-point support by 0 or 1), so all particles of
// a run share their tap indices — the "data reorganization cost" the paper
// mentions, repaid by the vector inner loops.

#include "src/kernels/kernel_data.hpp"

namespace mrpic::kernels {

inline constexpr int default_ngrp = 64; // paper: powers of two, 32-128

template <typename T>
void gather_optimized(KernelParticles<T>& p, const KernelFields<T>& f,
                      int ngrp = default_ngrp);

template <typename T>
void deposit_optimized(const KernelParticles<T>& p, KernelFields<T>& f, T q_dt_factor,
                       int ngrp = default_ngrp);

std::int64_t gather_optimized_flops_per_particle();
std::int64_t deposit_optimized_flops_per_particle();

extern template void gather_optimized<float>(KernelParticles<float>&,
                                             const KernelFields<float>&, int);
extern template void gather_optimized<double>(KernelParticles<double>&,
                                              const KernelFields<double>&, int);
extern template void deposit_optimized<float>(const KernelParticles<float>&,
                                              KernelFields<float>&, float, int);
extern template void deposit_optimized<double>(const KernelParticles<double>&,
                                               KernelFields<double>&, double, int);

} // namespace mrpic::kernels
