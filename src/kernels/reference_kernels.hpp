#pragma once

// Reference (baseline) gather and current-deposition kernels: one particle
// at a time, shape weights recomputed per component, short fixed-trip-count
// inner loops over the stencil taps (the structure the paper describes as
// vectorizing poorly: "trying to vectorize the interpolation coefficient
// computation for a single particle (vectorizing over ijk with p fixed)
// leads to inefficient code, in particular due to very small loops").
// Order-3 shapes, Yee staggering, direct v*S deposition.

#include "src/kernels/kernel_data.hpp"

namespace mrpic::kernels {

template <typename T>
void gather_reference(KernelParticles<T>& p, const KernelFields<T>& f);

template <typename T>
void deposit_reference(const KernelParticles<T>& p, KernelFields<T>& f, T q_dt_factor);

// Algorithmic FLOPs of the order-3 kernels (per particle), for Table III.
std::int64_t gather_reference_flops_per_particle();
std::int64_t deposit_reference_flops_per_particle();

extern template void gather_reference<float>(KernelParticles<float>&,
                                             const KernelFields<float>&);
extern template void gather_reference<double>(KernelParticles<double>&,
                                              const KernelFields<double>&);
extern template void deposit_reference<float>(const KernelParticles<float>&,
                                              KernelFields<float>&, float);
extern template void deposit_reference<double>(const KernelParticles<double>&,
                                               KernelFields<double>&, double);

} // namespace mrpic::kernels
