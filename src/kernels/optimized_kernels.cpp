#include "src/kernels/optimized_kernels.hpp"

#include <cmath>

namespace mrpic::kernels {

namespace {

constexpr int max_ngrp = 256;

// Transposed per-run weight workspace: nodal weights on 4 taps anchored at
// cell-1, half-staggered weights on 5 taps anchored at cell-2.
template <typename T>
struct RunWeights {
  alignas(64) T wn[3][4][max_ngrp]; // [dim][tap][particle]
  alignas(64) T wh[3][5][max_ngrp];

  // Stage 1: compute all weights for particles [p0, p0+n) with positions
  // (x,y,z) inside cell (ci,cj,ck). Inner loops run over p — long,
  // contiguous and free of lane divergence.
  void compute(const T* __restrict__ x, const T* __restrict__ y, const T* __restrict__ z,
               std::size_t p0, int n, int ci, int cj, int ck) {
    const T* pos[3] = {x + p0, y + p0, z + p0};
    const int cell[3] = {ci, cj, ck};
    for (int d = 0; d < 3; ++d) {
      const T* __restrict__ q = pos[d];
      const T base = static_cast<T>(cell[d]);
      T* __restrict__ n0 = wn[d][0];
      T* __restrict__ n1 = wn[d][1];
      T* __restrict__ n2 = wn[d][2];
      T* __restrict__ n3 = wn[d][3];
      for (int p = 0; p < n; ++p) {
        const T dlt = q[p] - base; // in [0,1)
        const T d2 = dlt * dlt;
        const T d3 = d2 * dlt;
        n0[p] = (T(1) - 3 * dlt + 3 * d2 - d3) / T(6);
        n1[p] = (T(4) - 6 * d2 + 3 * d3) / T(6);
        n2[p] = (T(1) + 3 * dlt + 3 * d2 - 3 * d3) / T(6);
        n3[p] = d3 / T(6);
      }
      T* __restrict__ h0 = wh[d][0];
      T* __restrict__ h1 = wh[d][1];
      T* __restrict__ h2 = wh[d][2];
      T* __restrict__ h3 = wh[d][3];
      T* __restrict__ h4 = wh[d][4];
      for (int p = 0; p < n; ++p) {
        // Shifted coordinate xs = x - 0.5; support starts at floor(xs)-1,
        // which is cell-2 (xs fractional part dlt+0.5) or cell-1 (dlt-0.5).
        const T xs = q[p] - base - T(0.5);
        const bool low = xs < T(0); // fractional cell half
        const T dlt = low ? xs + T(1) : xs;
        const T d2 = dlt * dlt;
        const T d3 = d2 * dlt;
        const T w0 = (T(1) - 3 * dlt + 3 * d2 - d3) / T(6);
        const T w1 = (T(4) - 6 * d2 + 3 * d3) / T(6);
        const T w2 = (T(1) + 3 * dlt + 3 * d2 - 3 * d3) / T(6);
        const T w3 = d3 / T(6);
        // Place the 4-point support in the shared 5-tap window.
        const T m = low ? T(1) : T(0); // 1 -> taps 0..3, 0 -> taps 1..4
        h0[p] = m * w0;
        h1[p] = m * w1 + (T(1) - m) * w0;
        h2[p] = m * w2 + (T(1) - m) * w1;
        h3[p] = m * w3 + (T(1) - m) * w2;
        h4[p] = (T(1) - m) * w3;
      }
    }
  }

  // Per-dim tap count, weight table and index anchor for staggering s.
  int taps(int s) const { return s ? 5 : 4; }
  auto table(int d, int s) const -> const T (*)[max_ngrp] { return s ? wh[d] : wn[d]; }
  int anchor(int cell, int s) const { return cell - (s ? 2 : 1); }
};

// Iterate runs of consecutive particles sharing a cell, chunked to ngrp.
template <typename T, typename F>
void for_each_run(const KernelParticles<T>& p, int ngrp, F&& f) {
  const std::size_t np = p.size();
  std::size_t p0 = 0;
  while (p0 < np) {
    const int ci = static_cast<int>(std::floor(p.x[p0]));
    const int cj = static_cast<int>(std::floor(p.y[p0]));
    const int ck = static_cast<int>(std::floor(p.z[p0]));
    std::size_t p1 = p0 + 1;
    while (p1 < np && p1 - p0 < static_cast<std::size_t>(ngrp) &&
           static_cast<int>(std::floor(p.x[p1])) == ci &&
           static_cast<int>(std::floor(p.y[p1])) == cj &&
           static_cast<int>(std::floor(p.z[p1])) == ck) {
      ++p1;
    }
    f(p0, static_cast<int>(p1 - p0), ci, cj, ck);
    p0 = p1;
  }
}

} // namespace

template <typename T>
void gather_optimized(KernelParticles<T>& p, const KernelFields<T>& f, int ngrp) {
  ngrp = std::min(ngrp, max_ngrp);
  RunWeights<T> rw;
  alignas(64) T acc[max_ngrp];

  struct CompSpec {
    const Field3<T>* fld;
    std::vector<T>* out;
    int sx, sy, sz;
  };
  CompSpec comps[6] = {
      {&f.ex, &p.exp_, 1, 0, 0}, {&f.ey, &p.eyp, 0, 1, 0}, {&f.ez, &p.ezp, 0, 0, 1},
      {&f.bx, &p.bxp, 0, 1, 1},  {&f.by, &p.byp, 1, 0, 1}, {&f.bz, &p.bzp, 1, 1, 0},
  };

  for_each_run(p, ngrp, [&](std::size_t p0, int n, int ci, int cj, int ck) {
    rw.compute(p.x.data(), p.y.data(), p.z.data(), p0, n, ci, cj, ck);
    for (const auto& cs : comps) {
      const auto wxt = rw.table(0, cs.sx);
      const auto wyt = rw.table(1, cs.sy);
      const auto wzt = rw.table(2, cs.sz);
      const int i0 = rw.anchor(ci, cs.sx);
      const int j0 = rw.anchor(cj, cs.sy);
      const int k0 = rw.anchor(ck, cs.sz);
      for (int q = 0; q < n; ++q) { acc[q] = 0; }
      alignas(64) T wyz[max_ngrp];
      for (int c = 0; c < rw.taps(cs.sz); ++c) {
        for (int b = 0; b < rw.taps(cs.sy); ++b) {
          // Hoist the transverse weight product out of the x-tap loop: the
          // inner loop is then a single FMA per particle per tap.
          const T* __restrict__ wy = wyt[b];
          const T* __restrict__ wz = wzt[c];
          for (int q = 0; q < n; ++q) { wyz[q] = wy[q] * wz[q]; }
          for (int a = 0; a < rw.taps(cs.sx); ++a) {
            const T fval = (*cs.fld)(i0 + a, j0 + b, k0 + c); // one load per run
            const T* __restrict__ wx = wxt[a];
            for (int q = 0; q < n; ++q) { acc[q] += wx[q] * wyz[q] * fval; }
          }
        }
      }
      T* __restrict__ out = cs.out->data() + p0;
      for (int q = 0; q < n; ++q) { out[q] = acc[q]; }
    }
  });
}

template <typename T>
void deposit_optimized(const KernelParticles<T>& p, KernelFields<T>& f, T q_dt_factor,
                       int ngrp) {
  ngrp = std::min(ngrp, max_ngrp);
  RunWeights<T> rw;
  alignas(64) T amp[3][max_ngrp];
  const T c2 = static_cast<T>(mrpic::constants::c) * static_cast<T>(mrpic::constants::c);

  struct CompSpec {
    Field3<T>* fld;
    int sx, sy, sz;
  };
  CompSpec comps[3] = {{&f.jx, 1, 0, 0}, {&f.jy, 0, 1, 0}, {&f.jz, 0, 0, 1}};

  for_each_run(p, ngrp, [&](std::size_t p0, int n, int ci, int cj, int ck) {
    rw.compute(p.x.data(), p.y.data(), p.z.data(), p0, n, ci, cj, ck);
    // Per-particle current amplitudes (vectorizable over p).
    for (int q = 0; q < n; ++q) {
      const std::size_t i = p0 + q;
      const T u2 = p.ux[i] * p.ux[i] + p.uy[i] * p.uy[i] + p.uz[i] * p.uz[i];
      const T qw = q_dt_factor * p.w[i] / std::sqrt(T(1) + u2 / c2);
      amp[0][q] = qw * p.ux[i];
      amp[1][q] = qw * p.uy[i];
      amp[2][q] = qw * p.uz[i];
    }
    for (int comp = 0; comp < 3; ++comp) {
      const auto& cs = comps[comp];
      const auto wxt = rw.table(0, cs.sx);
      const auto wyt = rw.table(1, cs.sy);
      const auto wzt = rw.table(2, cs.sz);
      const int i0 = rw.anchor(ci, cs.sx);
      const int j0 = rw.anchor(cj, cs.sy);
      const int k0 = rw.anchor(ck, cs.sz);
      const T* __restrict__ am = amp[comp];
      // Reduce all particles of the run into each tap, then one scatter per
      // tap per run (instead of one per particle). The amplitude-weighted
      // transverse product is hoisted: the inner loop is one FMA.
      alignas(64) T wyza[max_ngrp];
      for (int c = 0; c < rw.taps(cs.sz); ++c) {
        for (int b = 0; b < rw.taps(cs.sy); ++b) {
          const T* __restrict__ wy = wyt[b];
          const T* __restrict__ wz = wzt[c];
          for (int q = 0; q < n; ++q) { wyza[q] = wy[q] * wz[q] * am[q]; }
          for (int a = 0; a < rw.taps(cs.sx); ++a) {
            const T* __restrict__ wx = wxt[a];
            T s = 0;
            for (int q = 0; q < n; ++q) { s += wx[q] * wyza[q]; }
            (*cs.fld)(i0 + a, j0 + b, k0 + c) += s;
          }
        }
      }
    }
  });
}

std::int64_t gather_optimized_flops_per_particle() {
  // Stage 1: 3 dims x (nodal 16 + half ~26). Stage 2: 6 comps x ~(4.5^3)
  // taps x 3 flops (weights shared across comps, field loads amortized).
  return 3 * 42 + 6 * 91 * 3;
}

std::int64_t deposit_optimized_flops_per_particle() {
  return 3 * 42 + 12 + 3 * 91 * 3;
}

template void gather_optimized<float>(KernelParticles<float>&, const KernelFields<float>&,
                                      int);
template void gather_optimized<double>(KernelParticles<double>&, const KernelFields<double>&,
                                       int);
template void deposit_optimized<float>(const KernelParticles<float>&, KernelFields<float>&,
                                       float, int);
template void deposit_optimized<double>(const KernelParticles<double>&,
                                        KernelFields<double>&, double, int);

} // namespace mrpic::kernels
