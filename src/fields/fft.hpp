#pragma once

// Self-contained complex FFT (iterative radix-2 Cooley-Tukey) and
// multi-dimensional helpers, supporting the PSATD spectral Maxwell solver.
// Sizes must be powers of two. No external FFT dependency is used so the
// spectral solver stays as self-contained as the rest of the framework.

#include <complex>
#include <vector>

#include "src/amr/config.hpp"

namespace mrpic::fields {

using Complex = std::complex<Real>;

// In-place FFT of length n = 2^k; throws std::invalid_argument for any
// other length (in every build type). inverse=true applies the unscaled
// inverse transform; call normalize() (or divide by n) afterwards.
void fft_1d(Complex* data, int n, bool inverse);

// Row-column FFT over a dense 2D array (Fortran order: i fastest).
void fft_2d(Complex* data, int nx, int ny, bool inverse);

// 3D transform (Fortran order).
void fft_3d(Complex* data, int nx, int ny, int nz, bool inverse);

// Scale by 1/(product of dims) after an inverse transform.
void fft_normalize(Complex* data, std::int64_t n_total, std::int64_t n_modes);

// Angular wavenumber of mode index m of an n-point DFT with spacing dx:
// k = 2 pi f, with f folded to the negative half above n/2.
Real fft_wavenumber(int m, int n, Real dx);

bool is_power_of_two(int n);

} // namespace mrpic::fields
