#include "src/fields/pml.hpp"

#include <cassert>
#include <cmath>
#include <vector>

#include "src/amr/parallel_for.hpp"

namespace mrpic::fields {

using mrpic::constants::c;

namespace {

// First/second split component receiving the interior value in exchanges.
// (Only the totals matter for the stencils; the chosen first component is
// the one that evolves in 2D so that 2D valid-region dynamics are complete.)
constexpr std::array<int, 3> e_first = {EXY, EYX, EZX};
constexpr std::array<int, 3> e_second = {EXZ, EYZ, EZY};
constexpr std::array<int, 3> b_first = {BXY, BYX, BZX};
constexpr std::array<int, 3> b_second = {BXZ, BYZ, BZY};

// Exponential-time-stepping damping coefficients for dF/dt = -sigma F + T:
//   F <- d1 F + d2 T,  d1 = exp(-sigma dt), d2 = (1 - d1)/sigma (dt if s==0).
struct Damp {
  Real d1, d2;
};
inline Damp damping(Real sigma, Real dt) {
  if (sigma <= 0) { return {Real(1), dt}; }
  const Real d1 = std::exp(-sigma * dt);
  return {d1, (Real(1) - d1) / sigma};
}

} // namespace

template <int DIM>
Pml<DIM>::Pml(const mrpic::Geometry<DIM>& geom, const mrpic::Box<DIM>& inner,
              const std::array<bool, DIM>& absorb, PmlConfig cfg, int ngrow)
    : m_geom(geom), m_inner(inner), m_absorb(absorb), m_cfg(cfg) {
  for (int d = 0; d < DIM; ++d) {
    m_sigma_max[d] = -(cfg.grade_order + 1) * std::log(cfg.reflection) * c /
                     (2 * cfg.npml * geom.cell_size(d));
  }

  // Build the ring: cartesian product of {lo-skirt, span, hi-skirt} segments
  // per direction, excluding the all-span (= interior) combination.
  struct Seg {
    int lo, hi;
    bool is_span;
  };
  std::array<std::vector<Seg>, DIM> segs;
  for (int d = 0; d < DIM; ++d) {
    if (absorb[d]) {
      segs[d].push_back({inner.lo(d) - cfg.npml, inner.lo(d) - 1, false});
    }
    segs[d].push_back({inner.lo(d), inner.hi(d), true});
    if (absorb[d]) {
      segs[d].push_back({inner.hi(d) + 1, inner.hi(d) + cfg.npml, false});
    }
  }
  std::vector<mrpic::Box<DIM>> boxes;
  if constexpr (DIM == 2) {
    for (const auto& sx : segs[0]) {
      for (const auto& sy : segs[1]) {
        if (sx.is_span && sy.is_span) { continue; }
        boxes.emplace_back(IV(sx.lo, sy.lo), IV(sx.hi, sy.hi));
      }
    }
  } else {
    for (const auto& sx : segs[0]) {
      for (const auto& sy : segs[1]) {
        for (const auto& sz : segs[2]) {
          if (sx.is_span && sy.is_span && sz.is_span) { continue; }
          boxes.emplace_back(IV(sx.lo, sy.lo, sz.lo), IV(sx.hi, sy.hi, sz.hi));
        }
      }
    }
  }
  if (!boxes.empty()) {
    m_fab = mrpic::MultiFab<DIM>(mrpic::BoxArray<DIM>(std::move(boxes)), NUM_PML_COMP,
                                 ngrow);
  }
}

template <int DIM>
Real Pml<DIM>::sigma(int d, Real pos) const {
  if (!m_absorb[d]) { return 0; }
  const Real lo = static_cast<Real>(m_inner.lo(d));
  const Real hi = static_cast<Real>(m_inner.hi(d) + 1);
  Real xi = 0;
  if (pos < lo) {
    xi = (lo - pos) / m_cfg.npml;
  } else if (pos > hi) {
    xi = (pos - hi) / m_cfg.npml;
  } else {
    return 0;
  }
  xi = std::min(xi, Real(1));
  return m_sigma_max[d] * std::pow(xi, m_cfg.grade_order);
}

template <int DIM>
void Pml<DIM>::exchange_from_interior(const FieldSet<DIM>& f) {
  if (empty()) { return; }
  const auto& iba = f.box_array();
  for (int i = 0; i < m_fab.num_fabs(); ++i) {
    const auto gi = m_fab.grown_box(i);
    auto& dst = m_fab.fab(i);
    for (int j = 0; j < iba.size(); ++j) {
      const auto region = gi & iba[j];
      if (region.empty()) { continue; }
      for (int comp = 0; comp < 3; ++comp) {
        dst.copy_from(f.E().fab(j), region, comp, e_first[comp], 1);
        dst.copy_from(f.B().fab(j), region, comp, b_first[comp], 1);
        dst.for_each_cell(region, [&](const IV& p) {
          dst(p, e_second[comp]) = 0;
          dst(p, b_second[comp]) = 0;
        });
      }
    }
  }
}

template <int DIM>
void Pml<DIM>::fill_boundary() {
  if (empty()) { return; }
  // The ring's own geometry is non-periodic for ghost purposes; pass the
  // interior geometry with periodicity stripped.
  mrpic::Geometry<DIM> g(m_geom.domain(), m_geom.prob_lo(), m_geom.prob_hi(), {});
  m_fab.fill_boundary(g);
}

template <int DIM>
void Pml<DIM>::copy_to_interior(FieldSet<DIM>& f) const {
  if (empty()) { return; }
  const auto& iba = f.box_array();
  const int ng = f.num_ghost();
  const auto& pba = m_fab.box_array();
  for (int j = 0; j < iba.size(); ++j) {
    const auto gj = iba[j].grown(ng);
    auto& edst = f.E().fab(j);
    auto& bdst = f.B().fab(j);
    for (int i = 0; i < pba.size(); ++i) {
      const auto region = gj & pba[i];
      if (region.empty()) { continue; }
      const auto& src = m_fab.fab(i);
      src.for_each_cell(region, [&](const IV& p) {
        for (int comp = 0; comp < 3; ++comp) {
          edst(p, comp) = src(p, e_first[comp]) + src(p, e_second[comp]);
          bdst(p, comp) = src(p, b_first[comp]) + src(p, b_second[comp]);
        }
      });
    }
  }
}

template <int DIM>
void Pml<DIM>::evolve_b(Real dt) {
  if (empty()) { return; }
  const Real idx = Real(1) / m_geom.cell_size(0);
  const Real idy = Real(1) / m_geom.cell_size(1);
  [[maybe_unused]] const Real idz = DIM == 3 ? Real(1) / m_geom.cell_size(2) : Real(0);

  for (int m = 0; m < m_fab.num_fabs(); ++m) {
    auto a = m_fab.array(m);
    const auto& bx = m_fab.valid_box(m);
    // E totals from split components.
    auto Ex = [a](int i, int j, int k) { return a(i, j, k, EXY) + a(i, j, k, EXZ); };
    auto Ey = [a](int i, int j, int k) { return a(i, j, k, EYZ) + a(i, j, k, EYX); };
    auto Ez = [a](int i, int j, int k) { return a(i, j, k, EZX) + a(i, j, k, EZY); };

    auto update = [&](int i, int j, int k) {
      // Bx splits (Bx staggering: (0,1,1)):
      {
        const Damp wy = damping(sigma(1, j + Real(0.5)), dt);
        a(i, j, k, BXY) = wy.d1 * a(i, j, k, BXY) +
                          wy.d2 * (-(Ez(i, j + 1, k) - Ez(i, j, k)) * idy);
        if constexpr (DIM == 3) {
          const Damp wz = damping(sigma(2, k + Real(0.5)), dt);
          a(i, j, k, BXZ) = wz.d1 * a(i, j, k, BXZ) +
                            wz.d2 * ((Ey(i, j, k + 1) - Ey(i, j, k)) * idz);
        }
      }
      // By splits (stag (1,0,1)):
      {
        const Damp wx = damping(sigma(0, i + Real(0.5)), dt);
        a(i, j, k, BYX) = wx.d1 * a(i, j, k, BYX) +
                          wx.d2 * ((Ez(i + 1, j, k) - Ez(i, j, k)) * idx);
        if constexpr (DIM == 3) {
          const Damp wz = damping(sigma(2, k + Real(0.5)), dt);
          a(i, j, k, BYZ) = wz.d1 * a(i, j, k, BYZ) +
                            wz.d2 * (-(Ex(i, j, k + 1) - Ex(i, j, k)) * idz);
        }
      }
      // Bz splits (stag (1,1,0)):
      {
        const Damp wx = damping(sigma(0, i + Real(0.5)), dt);
        const Damp wy = damping(sigma(1, j + Real(0.5)), dt);
        a(i, j, k, BZX) = wx.d1 * a(i, j, k, BZX) +
                          wx.d2 * (-(Ey(i + 1, j, k) - Ey(i, j, k)) * idx);
        a(i, j, k, BZY) = wy.d1 * a(i, j, k, BZY) +
                          wy.d2 * ((Ex(i, j + 1, k) - Ex(i, j, k)) * idy);
      }
    };

    if constexpr (DIM == 2) {
      mrpic::parallel_for(bx, [&](int i, int j) { update(i, j, 0); });
    } else {
      mrpic::parallel_for(bx, [&](int i, int j, int k) { update(i, j, k); });
    }
  }
}

template <int DIM>
void Pml<DIM>::evolve_e(Real dt) {
  if (empty()) { return; }
  const Real c2 = c * c;
  const Real idx = Real(1) / m_geom.cell_size(0);
  const Real idy = Real(1) / m_geom.cell_size(1);
  [[maybe_unused]] const Real idz = DIM == 3 ? Real(1) / m_geom.cell_size(2) : Real(0);

  for (int m = 0; m < m_fab.num_fabs(); ++m) {
    auto a = m_fab.array(m);
    const auto& bx = m_fab.valid_box(m);
    auto Bx = [a](int i, int j, int k) { return a(i, j, k, BXY) + a(i, j, k, BXZ); };
    auto By = [a](int i, int j, int k) { return a(i, j, k, BYZ) + a(i, j, k, BYX); };
    auto Bz = [a](int i, int j, int k) { return a(i, j, k, BZX) + a(i, j, k, BZY); };

    auto update = [&](int i, int j, int k) {
      // Ex splits (stag (1,0,0)):
      {
        const Damp wy = damping(sigma(1, Real(j)), dt);
        a(i, j, k, EXY) = wy.d1 * a(i, j, k, EXY) +
                          wy.d2 * (c2 * (Bz(i, j, k) - Bz(i, j - 1, k)) * idy);
        if constexpr (DIM == 3) {
          const Damp wz = damping(sigma(2, Real(k)), dt);
          a(i, j, k, EXZ) = wz.d1 * a(i, j, k, EXZ) +
                            wz.d2 * (-c2 * (By(i, j, k) - By(i, j, k - 1)) * idz);
        }
      }
      // Ey splits (stag (0,1,0)):
      {
        const Damp wx = damping(sigma(0, Real(i)), dt);
        a(i, j, k, EYX) = wx.d1 * a(i, j, k, EYX) +
                          wx.d2 * (-c2 * (Bz(i, j, k) - Bz(i - 1, j, k)) * idx);
        if constexpr (DIM == 3) {
          const Damp wz = damping(sigma(2, Real(k)), dt);
          a(i, j, k, EYZ) = wz.d1 * a(i, j, k, EYZ) +
                            wz.d2 * (c2 * (Bx(i, j, k) - Bx(i, j, k - 1)) * idz);
        }
      }
      // Ez splits (stag (0,0,1)):
      {
        const Damp wx = damping(sigma(0, Real(i)), dt);
        const Damp wy = damping(sigma(1, Real(j)), dt);
        a(i, j, k, EZX) = wx.d1 * a(i, j, k, EZX) +
                          wx.d2 * (c2 * (By(i, j, k) - By(i - 1, j, k)) * idx);
        a(i, j, k, EZY) = wy.d1 * a(i, j, k, EZY) +
                          wy.d2 * (-c2 * (Bx(i, j, k) - Bx(i, j - 1, k)) * idy);
      }
    };

    if constexpr (DIM == 2) {
      mrpic::parallel_for(bx, [&](int i, int j) { update(i, j, 0); });
    } else {
      mrpic::parallel_for(bx, [&](int i, int j, int k) { update(i, j, k); });
    }
  }
}

template <int DIM>
Real Pml<DIM>::max_abs() const {
  Real m = 0;
  for (int c2 = 0; c2 < NUM_PML_COMP; ++c2) { m = std::max(m, m_fab.max_abs(c2)); }
  return m;
}

template class Pml<2>;
template class Pml<3>;

} // namespace mrpic::fields
