#pragma once

// Yee-lattice staggering conventions.
//
// Index convention (see Geometry): a component with staggering s in direction
// d at index i sits at physical position prob_lo[d] + (i + 0.5 s) dx[d].
//
// Standard Yee staggering:
//   Ex (1,0,0)  Ey (0,1,0)  Ez (0,0,1)
//   Bx (0,1,1)  By (1,0,1)  Bz (1,1,0)
// In 2D (x,y simulation plane, d/dz == 0) the third entry is dropped:
//   Ex (1,0)  Ey (0,1)  Ez (0,0)   Bx (0,1)  By (1,0)  Bz (1,1)

#include <array>

#include "src/amr/int_vect.hpp"

namespace mrpic::fields {

// Field component ids, used to index the 3-component E/B/J MultiFabs.
enum Comp : int { X = 0, Y = 1, Z = 2 };

// Staggering of E components: e_stag[comp][dir] in {0,1}.
inline constexpr std::array<std::array<int, 3>, 3> e_stag3 = {{
    {{1, 0, 0}}, // Ex
    {{0, 1, 0}}, // Ey
    {{0, 0, 1}}, // Ez
}};

inline constexpr std::array<std::array<int, 3>, 3> b_stag3 = {{
    {{0, 1, 1}}, // Bx
    {{1, 0, 1}}, // By
    {{1, 1, 0}}, // Bz
}};

// Current density J is staggered like E.
inline constexpr std::array<std::array<int, 3>, 3> j_stag3 = e_stag3;

// Dimension-aware accessors (2D drops the z direction entry).
template <int DIM>
constexpr mrpic::IntVect<DIM> e_stag(int comp) {
  mrpic::IntVect<DIM> s;
  for (int d = 0; d < DIM; ++d) { s[d] = e_stag3[comp][d]; }
  return s;
}

template <int DIM>
constexpr mrpic::IntVect<DIM> b_stag(int comp) {
  mrpic::IntVect<DIM> s;
  for (int d = 0; d < DIM; ++d) { s[d] = b_stag3[comp][d]; }
  return s;
}

template <int DIM>
constexpr mrpic::IntVect<DIM> j_stag(int comp) {
  return e_stag<DIM>(comp);
}

} // namespace mrpic::fields
