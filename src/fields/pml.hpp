#pragma once

// Berenger split-field Perfectly Matched Layer (Berenger 1994).
//
// A PML is a ring of boxes of width `npml` cells surrounding an interior
// region (the simulation domain, or a mesh-refinement patch — the paper's MR
// algorithm terminates both the fine and the auxiliary coarse patch with
// PMLs, Sec. V.B). Each of the six field components is split into two
// sub-components, one per transverse curl term; each sub-component is damped
// by a polynomial-graded conductivity profile in the direction of its
// spatial derivative. Exponential time stepping keeps the damped update
// unconditionally stable in sigma.
//
// Coupling with the interior grid each step:
//   exchange_from_interior()  interior valid E,B -> PML ghost cells
//   evolve_b/evolve_e()       damped split-field FDTD inside the ring
//   copy_to_interior()        PML totals -> interior ghost cells outside the
//                             interior valid region

#include <array>

#include "src/amr/multifab.hpp"
#include "src/fields/field_set.hpp"

namespace mrpic::fields {

// Split-component layout of the PML fab.
enum PmlComp : int {
  EXY = 0, EXZ, EYZ, EYX, EZX, EZY, // E splits
  BXY, BXZ, BYZ, BYX, BZX, BZY,     // B splits
  NUM_PML_COMP
};

struct PmlConfig {
  int npml = 12;            // layer width in cells
  Real grade_order = 3;     // polynomial grading exponent m
  Real reflection = 1e-8;   // theoretical normal-incidence reflection R0
};

template <int DIM>
class Pml {
public:
  using IV = mrpic::IntVect<DIM>;

  Pml() = default;

  // Build a PML ring around `inner` (a cell box in the index space of
  // `geom`). absorb[d] selects which directions get a layer (periodic
  // directions must pass false). `max_box` chops ring boxes for granularity.
  Pml(const mrpic::Geometry<DIM>& geom, const mrpic::Box<DIM>& inner,
      const std::array<bool, DIM>& absorb, PmlConfig cfg = {},
      int ngrow = mrpic::default_num_ghost);

  bool empty() const { return m_fab.empty(); }
  const mrpic::BoxArray<DIM>& box_array() const { return m_fab.box_array(); }
  mrpic::MultiFab<DIM>& split_fab() { return m_fab; }
  const mrpic::MultiFab<DIM>& split_fab() const { return m_fab; }
  const mrpic::Box<DIM>& inner_box() const { return m_inner; }
  const PmlConfig& config() const { return m_cfg; }

  // Fill PML ghost cells from interior valid data. The full interior value
  // goes into the first split component of each pair, zero into the second
  // (the partition is immaterial where sigma == 0).
  void exchange_from_interior(const FieldSet<DIM>& f);

  // Exchange ghost data among the ring boxes themselves.
  void fill_boundary();

  // Damped split-field updates on the ring's valid cells.
  void evolve_b(Real dt);
  void evolve_e(Real dt);

  // Write PML total fields into interior ghost cells that lie in the ring.
  void copy_to_interior(FieldSet<DIM>& f) const;

  // Conductivity profile along direction d at staggered index position
  // `pos` (in units of cells, i.e. index + 0.5*stag), in 1/s.
  Real sigma(int d, Real pos) const;

  // Scroll the stored split-field data with a moving window (see
  // MultiFab::shift_data).
  void shift_data(int d, int ncells) { m_fab.shift_data(d, ncells, Real(0)); }

  // Largest |split value| over the ring (diagnostic: absorption quality).
  Real max_abs() const;

private:
  template <typename F>
  void for_each_fab(F&& f);

  mrpic::Geometry<DIM> m_geom;      // geometry of the interior level
  mrpic::Box<DIM> m_inner;          // interior region the ring surrounds
  std::array<bool, DIM> m_absorb{};
  PmlConfig m_cfg;
  std::array<Real, DIM> m_sigma_max{};
  mrpic::MultiFab<DIM> m_fab;       // NUM_PML_COMP split components
};

extern template class Pml<2>;
extern template class Pml<3>;

} // namespace mrpic::fields
