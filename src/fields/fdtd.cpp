#include "src/fields/fdtd.hpp"

#include <cmath>

#include "src/amr/parallel_for.hpp"

namespace mrpic::fields {

using mrpic::constants::c;
using mrpic::constants::eps0;

template <int DIM>
Real cfl_dt(const mrpic::Geometry<DIM>& geom, Real cfl) {
  Real s = 0;
  for (int d = 0; d < DIM; ++d) {
    const Real dx = geom.cell_size(d);
    s += Real(1) / (dx * dx);
  }
  return cfl / (c * std::sqrt(s));
}

template <int DIM>
void FDTDSolver<DIM>::evolve_b(FieldSet<DIM>& f, Real dt) const {
  auto& B = f.B();
  const auto& E = f.E();
  const auto& geom = f.geom();
  const Real dtdx = dt / geom.cell_size(0);
  const Real dtdy = dt / geom.cell_size(1);

  for (int m = 0; m < B.num_fabs(); ++m) {
    auto b = B.array(m);
    const auto e = E.const_array(m);
    const auto& bx = B.valid_box(m);
    if constexpr (DIM == 2) {
      mrpic::parallel_for(bx, [=](int i, int j) {
        // Bx -= dt dEz/dy ; By += dt dEz/dx ; Bz -= dt (dEy/dx - dEx/dy)
        b(i, j, 0, X) -= dtdy * (e(i, j + 1, 0, Z) - e(i, j, 0, Z));
        b(i, j, 0, Y) += dtdx * (e(i + 1, j, 0, Z) - e(i, j, 0, Z));
        b(i, j, 0, Z) -= dtdx * (e(i + 1, j, 0, Y) - e(i, j, 0, Y)) -
                         dtdy * (e(i, j + 1, 0, X) - e(i, j, 0, X));
      });
    } else {
      const Real dtdz = dt / geom.cell_size(2);
      mrpic::parallel_for(bx, [=](int i, int j, int k) {
        b(i, j, k, X) -= dtdy * (e(i, j + 1, k, Z) - e(i, j, k, Z)) -
                         dtdz * (e(i, j, k + 1, Y) - e(i, j, k, Y));
        b(i, j, k, Y) -= dtdz * (e(i, j, k + 1, X) - e(i, j, k, X)) -
                         dtdx * (e(i + 1, j, k, Z) - e(i, j, k, Z));
        b(i, j, k, Z) -= dtdx * (e(i + 1, j, k, Y) - e(i, j, k, Y)) -
                         dtdy * (e(i, j + 1, k, X) - e(i, j, k, X));
      });
    }
  }
}

template <int DIM>
void FDTDSolver<DIM>::evolve_e(FieldSet<DIM>& f, Real dt) const {
  auto& E = f.E();
  const auto& B = f.B();
  const auto& J = f.J();
  const auto& geom = f.geom();
  const Real c2dtdx = c * c * dt / geom.cell_size(0);
  const Real c2dtdy = c * c * dt / geom.cell_size(1);
  const Real dtseps = dt / eps0;

  for (int m = 0; m < E.num_fabs(); ++m) {
    auto e = E.array(m);
    const auto b = B.const_array(m);
    const auto j4 = J.const_array(m);
    const auto& bx = E.valid_box(m);
    if constexpr (DIM == 2) {
      mrpic::parallel_for(bx, [=](int i, int j) {
        e(i, j, 0, X) += c2dtdy * (b(i, j, 0, Z) - b(i, j - 1, 0, Z)) -
                         dtseps * j4(i, j, 0, X);
        e(i, j, 0, Y) += -c2dtdx * (b(i, j, 0, Z) - b(i - 1, j, 0, Z)) -
                         dtseps * j4(i, j, 0, Y);
        e(i, j, 0, Z) += c2dtdx * (b(i, j, 0, Y) - b(i - 1, j, 0, Y)) -
                         c2dtdy * (b(i, j, 0, X) - b(i, j - 1, 0, X)) -
                         dtseps * j4(i, j, 0, Z);
      });
    } else {
      const Real c2dtdz = c * c * dt / geom.cell_size(2);
      mrpic::parallel_for(bx, [=](int i, int j, int k) {
        e(i, j, k, X) += c2dtdy * (b(i, j, k, Z) - b(i, j - 1, k, Z)) -
                         c2dtdz * (b(i, j, k, Y) - b(i, j, k - 1, Y)) -
                         dtseps * j4(i, j, k, X);
        e(i, j, k, Y) += c2dtdz * (b(i, j, k, X) - b(i, j, k - 1, X)) -
                         c2dtdx * (b(i, j, k, Z) - b(i - 1, j, k, Z)) -
                         dtseps * j4(i, j, k, Y);
        e(i, j, k, Z) += c2dtdx * (b(i, j, k, Y) - b(i - 1, j, k, Y)) -
                         c2dtdy * (b(i, j, k, X) - b(i, j - 1, k, X)) -
                         dtseps * j4(i, j, k, Z);
      });
    }
  }
}

template class FDTDSolver<2>;
template class FDTDSolver<3>;
template Real cfl_dt<2>(const mrpic::Geometry<2>&, Real);
template Real cfl_dt<3>(const mrpic::Geometry<3>&, Real);

} // namespace mrpic::fields
