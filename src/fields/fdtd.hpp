#pragma once

// Second-order finite-difference time-domain (FDTD) Maxwell solver on the
// staggered Yee lattice (Yee 1966), the standard explicit field solver of
// the PIC recipe (paper Sec. IV). The PIC cycle uses the split update
//   evolve_b(dt/2); evolve_e(dt); evolve_b(dt/2);
// which keeps E and B synchronized at integer time steps for the particle
// push while preserving the leapfrog structure.

#include "src/amr/config.hpp"
#include "src/fields/field_set.hpp"

namespace mrpic::fields {

// Largest stable time step for the Yee scheme: dt = cfl / (c sqrt(sum 1/dx^2)).
template <int DIM>
Real cfl_dt(const mrpic::Geometry<DIM>& geom, Real cfl = Real(0.98));

template <int DIM>
class FDTDSolver {
public:
  FDTDSolver() = default;

  // B <- B - dt curl E, on valid cells of every fab. Requires E ghosts
  // filled; call fields.fill_boundary() (and PML exchange) first.
  void evolve_b(FieldSet<DIM>& fields, Real dt) const;

  // E <- E + dt (c^2 curl B - J / eps0), on valid cells. Requires B ghosts.
  void evolve_e(FieldSet<DIM>& fields, Real dt) const;

  // Number of floating point operations per cell of one evolve_b + evolve_e
  // pair (used by the FLOP accounting in src/perf).
  static constexpr std::int64_t flops_per_cell() {
    // 3 B comps * (2 curl diffs: 2 sub + 2 mul + 1 sub + 1 fma) +
    // 3 E comps * (same + J term: +2)
    return DIM == 3 ? 3 * 7 + 3 * 9 : 3 * 5 + 3 * 7;
  }
};

extern template class FDTDSolver<2>;
extern template class FDTDSolver<3>;
extern template Real cfl_dt<2>(const mrpic::Geometry<2>&, Real);
extern template Real cfl_dt<3>(const mrpic::Geometry<3>&, Real);

} // namespace mrpic::fields
