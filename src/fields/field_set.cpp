#include "src/fields/field_set.hpp"

namespace mrpic::fields {

template class FieldSet<2>;
template class FieldSet<3>;

} // namespace mrpic::fields
