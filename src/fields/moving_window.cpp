#include "src/fields/moving_window.hpp"

namespace mrpic::fields {

// MovingWindow is header-only; this translation unit anchors the module and
// forces an instantiation to catch template errors at library build time.
template class MovingWindow<2>;
template class MovingWindow<3>;

} // namespace mrpic::fields
