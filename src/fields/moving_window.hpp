#pragma once

// Moving window (paper Sec. IV b): the grid follows the laser pulse at a
// configurable speed (normally c) along one direction. The index space is
// kept fixed; the physical anchor of the Geometry slides, field data is
// scrolled by whole cells, and the caller injects fresh plasma in the
// newly exposed strip and drops particles that fell off the trailing edge.

#include "src/amr/config.hpp"
#include "src/fields/field_set.hpp"

namespace mrpic::fields {

template <int DIM>
class MovingWindow {
public:
  MovingWindow() = default;
  MovingWindow(int dir, Real speed, Real start_time = 0)
      : m_enabled(true), m_dir(dir), m_speed(speed), m_start_time(start_time) {}

  bool enabled() const { return m_enabled; }
  int dir() const { return m_dir; }
  Real speed() const { return m_speed; }
  Real start_time() const { return m_start_time; }
  bool active(Real time) const { return m_enabled && time >= m_start_time; }

  // Sub-cell shift accumulator (checkpoint/restart support).
  Real accumulated() const { return m_accumulated; }
  void set_accumulated(Real a) { m_accumulated = a; }

  // Advance the window by dt at `time`; scrolls the fields of `f` and moves
  // its geometry. Returns the number of cells shifted (0 most steps).
  // Shift amounts never exceed the ghost width for CFL-limited dt.
  int advance(Real time, Real dt, FieldSet<DIM>& f) {
    if (!active(time)) { return 0; }
    const Real dx = f.geom().cell_size(m_dir);
    m_accumulated += m_speed * dt;
    const int ncells = static_cast<int>(m_accumulated / dx);
    if (ncells == 0) { return 0; }
    m_accumulated -= ncells * dx;
    f.E().shift_data(m_dir, ncells);
    f.B().shift_data(m_dir, ncells);
    f.J().shift_data(m_dir, ncells);
    f.geom().shift_physical(m_dir, ncells);
    return ncells;
  }

private:
  bool m_enabled = false;
  int m_dir = 0;
  Real m_speed = mrpic::constants::c;
  Real m_start_time = 0;
  Real m_accumulated = 0;
};

} // namespace mrpic::fields
