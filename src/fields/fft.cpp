#include "src/fields/fft.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace mrpic::fields {

bool is_power_of_two(int n) { return n > 0 && (n & (n - 1)) == 0; }

void fft_1d(Complex* data, int n, bool inverse) {
  if (!is_power_of_two(n)) {
    // A silently-wrong transform would corrupt every PSATD field solve;
    // fail loudly in every build type, not just with NDEBUG off.
    throw std::invalid_argument("fft_1d: length " + std::to_string(n) +
                                " is not a positive power of two");
  }
  // Bit-reversal permutation.
  for (int i = 1, j = 0; i < n; ++i) {
    int bit = n >> 1;
    for (; j & bit; bit >>= 1) { j ^= bit; }
    j ^= bit;
    if (i < j) { std::swap(data[i], data[j]); }
  }
  // Butterflies.
  for (int len = 2; len <= n; len <<= 1) {
    const Real ang = 2 * constants::pi / len * (inverse ? 1 : -1);
    const Complex wlen(std::cos(ang), std::sin(ang));
    for (int i = 0; i < n; i += len) {
      Complex w(1);
      for (int j = 0; j < len / 2; ++j) {
        const Complex u = data[i + j];
        const Complex v = data[i + j + len / 2] * w;
        data[i + j] = u + v;
        data[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

namespace {

// Transform along a strided axis: nlines lines of length n with stride.
void fft_axis(Complex* data, int n, std::int64_t stride, std::int64_t nlines,
              std::int64_t line_stride, bool inverse) {
  std::vector<Complex> scratch(n);
  for (std::int64_t l = 0; l < nlines; ++l) {
    Complex* base = data + l * line_stride;
    if (stride == 1) {
      fft_1d(base, n, inverse);
    } else {
      for (int i = 0; i < n; ++i) { scratch[i] = base[i * stride]; }
      fft_1d(scratch.data(), n, inverse);
      for (int i = 0; i < n; ++i) { base[i * stride] = scratch[i]; }
    }
  }
}

} // namespace

void fft_2d(Complex* data, int nx, int ny, bool inverse) {
  // x lines: ny lines of length nx, contiguous.
  fft_axis(data, nx, 1, ny, nx, inverse);
  // y lines: nx lines of length ny, stride nx; consecutive lines offset 1.
  std::vector<Complex> scratch(ny);
  for (int i = 0; i < nx; ++i) {
    for (int j = 0; j < ny; ++j) { scratch[j] = data[i + static_cast<std::int64_t>(j) * nx]; }
    fft_1d(scratch.data(), ny, inverse);
    for (int j = 0; j < ny; ++j) { data[i + static_cast<std::int64_t>(j) * nx] = scratch[j]; }
  }
}

void fft_3d(Complex* data, int nx, int ny, int nz, bool inverse) {
  const std::int64_t plane = static_cast<std::int64_t>(nx) * ny;
  // x axis.
  fft_axis(data, nx, 1, static_cast<std::int64_t>(ny) * nz, nx, inverse);
  // y axis: for each (i, k) line.
  std::vector<Complex> scratch(std::max(ny, nz));
  for (int k = 0; k < nz; ++k) {
    for (int i = 0; i < nx; ++i) {
      Complex* base = data + i + k * plane;
      for (int j = 0; j < ny; ++j) { scratch[j] = base[static_cast<std::int64_t>(j) * nx]; }
      fft_1d(scratch.data(), ny, inverse);
      for (int j = 0; j < ny; ++j) { base[static_cast<std::int64_t>(j) * nx] = scratch[j]; }
    }
  }
  // z axis: for each (i, j) line.
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) {
      Complex* base = data + i + static_cast<std::int64_t>(j) * nx;
      for (int k = 0; k < nz; ++k) { scratch[k] = base[k * plane]; }
      fft_1d(scratch.data(), nz, inverse);
      for (int k = 0; k < nz; ++k) { base[k * plane] = scratch[k]; }
    }
  }
}

void fft_normalize(Complex* data, std::int64_t n_total, std::int64_t n_modes) {
  const Real s = Real(1) / static_cast<Real>(n_modes);
  for (std::int64_t i = 0; i < n_total; ++i) { data[i] *= s; }
}

Real fft_wavenumber(int m, int n, Real dx) {
  const int folded = m <= n / 2 ? m : m - n;
  return 2 * constants::pi * folded / (n * dx);
}

} // namespace mrpic::fields
