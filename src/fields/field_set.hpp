#pragma once

// FieldSet<DIM>: the electromagnetic state of one mesh level — E, B (both
// 3-component even in 2D simulations) and the current density J, plus the
// level's Geometry, BoxArray and DistributionMapping.

#include "src/amr/geometry.hpp"
#include "src/amr/multifab.hpp"
#include "src/fields/yee.hpp"

namespace mrpic::fields {

template <int DIM>
class FieldSet {
public:
  FieldSet() = default;

  FieldSet(const mrpic::Geometry<DIM>& geom, const mrpic::BoxArray<DIM>& ba,
           const mrpic::dist::DistributionMapping& dm, int ngrow = mrpic::default_num_ghost)
      : m_geom(geom),
        m_E(tagged("E", ba, dm, 3, ngrow)),
        m_B(tagged("B", ba, dm, 3, ngrow)),
        m_J(tagged("J", ba, dm, 3, ngrow)) {}

  FieldSet(const mrpic::Geometry<DIM>& geom, const mrpic::BoxArray<DIM>& ba,
           int ngrow = mrpic::default_num_ghost)
      : FieldSet(geom, ba,
                 mrpic::dist::DistributionMapping(std::vector<int>(ba.size(), 0), 1),
                 ngrow) {}

  const mrpic::Geometry<DIM>& geom() const { return m_geom; }
  mrpic::Geometry<DIM>& geom() { return m_geom; }
  const mrpic::BoxArray<DIM>& box_array() const { return m_E.box_array(); }
  int num_ghost() const { return m_E.num_ghost(); }

  mrpic::MultiFab<DIM>& E() { return m_E; }
  mrpic::MultiFab<DIM>& B() { return m_B; }
  mrpic::MultiFab<DIM>& J() { return m_J; }
  const mrpic::MultiFab<DIM>& E() const { return m_E; }
  const mrpic::MultiFab<DIM>& B() const { return m_B; }
  const mrpic::MultiFab<DIM>& J() const { return m_J; }

  void zero_current() { m_J.set_val(0); }

  void fill_boundary() {
    m_E.fill_boundary(m_geom);
    m_B.fill_boundary(m_geom);
  }

  // Total field energy U = eps0/2 sum(E^2) dV + 1/(2 mu0) sum(B^2) dV over
  // valid cells (staggered locations treated as independent samples).
  Real field_energy() const {
    Real dv = 1;
    for (int d = 0; d < DIM; ++d) { dv *= m_geom.cell_size(d); }
    Real e2 = 0, b2 = 0;
    for (int c = 0; c < 3; ++c) {
      e2 += m_E.sum_sq(c);
      b2 += m_B.sum_sq(c);
    }
    using namespace mrpic::constants;
    return (Real(0.5) * eps0 * e2 + Real(0.5) / mu0 * b2) * dv;
  }

private:
  // Build one component MultiFab with its memory-ledger tag nested under the
  // ambient allocation scope (e.g. "fields.level0" + "E"); guaranteed copy
  // elision constructs the member in place while the scope is active.
  static mrpic::MultiFab<DIM> tagged(const char* comp, const mrpic::BoxArray<DIM>& ba,
                                     const mrpic::dist::DistributionMapping& dm,
                                     int ncomp, int ngrow) {
    mrpic::obs::ScopedMemTag tag(comp);
    return mrpic::MultiFab<DIM>(ba, dm, ncomp, ngrow);
  }

  mrpic::Geometry<DIM> m_geom;
  mrpic::MultiFab<DIM> m_E, m_B, m_J;
};

extern template class FieldSet<2>;
extern template class FieldSet<3>;

} // namespace mrpic::fields
