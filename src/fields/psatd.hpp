#pragma once

// Pseudo-Spectral Analytical Time-Domain (PSATD) Maxwell solver — the last
// capability row of paper Table I and a pillar of its outlook (Sec. VIII.B:
// "unique algorithms for control of the numerical Cherenkov instability
// using properties of the Pseudo-Spectral Analytical Time-Domain Maxwell
// solver").
//
// In Fourier space the source-free Maxwell equations decouple per mode and
// integrate EXACTLY over any dt:
//   E+_T = C E_T + i c S (khat x B),       C = cos(c k dt)
//   B+   = C B   - (i/c) S (khat x E_T),   S = sin(c k dt)
//   E+_L = E_L                             (longitudinal mode static)
// With a current J held constant across the step (the standard PSATD
// assumption), the particular solution adds
//   E+_T += -S/(eps0 c k) J_T
//   E+_L += -dt/eps0      J_L              (k = 0 likewise)
//   B+   += -(1 - C)/(eps0 c^2 k) i (k x J) / k
// There is no CFL limit and no numerical dispersion: vacuum waves advance
// at exactly c — which the tests verify to machine precision.
//
// Scope: fully periodic, single-box levels with power-of-two extents (the
// spectral transform is global). Yee staggering is handled spectrally: each
// component's samples are shifted to nodal positions by the phase factor
// exp(-i k.s dx/2) after the forward transform and shifted back before the
// inverse, so the solver composes exactly with the staggered
// gather/deposition pipeline (cfg.maxwell = MaxwellSolver::PSATD).

#include "src/fields/fft.hpp"
#include "src/fields/field_set.hpp"

namespace mrpic::fields {

template <int DIM>
class PsatdSolver {
public:
  // geom must be periodic in every direction with power-of-two extents;
  // fields must be a single-box level covering the whole domain.
  explicit PsatdSolver(const mrpic::Geometry<DIM>& geom);

  // Advance E, B by dt with the currents in f.J() (gathered at t^{n+1/2}).
  // Reads/writes the valid region of the single fab; call f.fill_boundary()
  // afterwards if ghost data is needed.
  void advance(FieldSet<DIM>& f, Real dt);

  // No CFL limit; any dt is stable. Exposed for symmetry with FDTDSolver.
  static constexpr bool unconditionally_stable() { return true; }

private:
  mrpic::Geometry<DIM> m_geom;
  std::array<int, DIM> m_n{};
  std::int64_t m_nmodes = 0;
  // Scratch spectra for E, B, J (3 components each).
  std::array<std::vector<Complex>, 3> m_E, m_B, m_J;

  enum class Stag { E_like, B_like };
  void forward(const mrpic::MultiFab<DIM>& src, std::array<std::vector<Complex>, 3>& dst,
               Stag stag);
  void inverse(std::array<std::vector<Complex>, 3>& src, mrpic::MultiFab<DIM>& dst,
               Stag stag);
  void transform(std::vector<Complex>& a, bool inv);
  // Multiply spectrum by exp(sign * i k . s dx / 2) for component comp.
  void stagger_shift(std::vector<Complex>& a, int comp, Stag stag, int sign);
};

extern template class PsatdSolver<2>;
extern template class PsatdSolver<3>;

} // namespace mrpic::fields
