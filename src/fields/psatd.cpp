#include "src/fields/psatd.hpp"

#include <cassert>
#include <cmath>

#include "src/fields/yee.hpp"

namespace mrpic::fields {

using mrpic::constants::c;
using mrpic::constants::eps0;

template <int DIM>
PsatdSolver<DIM>::PsatdSolver(const mrpic::Geometry<DIM>& geom) : m_geom(geom) {
  m_nmodes = 1;
  for (int d = 0; d < DIM; ++d) {
    assert(geom.is_periodic(d) && "PSATD requires a fully periodic domain");
    m_n[d] = geom.domain().length(d);
    assert(is_power_of_two(m_n[d]) && "PSATD extents must be powers of two");
    m_nmodes *= m_n[d];
  }
  for (int comp = 0; comp < 3; ++comp) {
    m_E[comp].resize(m_nmodes);
    m_B[comp].resize(m_nmodes);
    m_J[comp].resize(m_nmodes);
  }
}

template <int DIM>
void PsatdSolver<DIM>::transform(std::vector<Complex>& a, bool inv) {
  if constexpr (DIM == 2) {
    fft_2d(a.data(), m_n[0], m_n[1], inv);
  } else {
    fft_3d(a.data(), m_n[0], m_n[1], m_n[2], inv);
  }
  if (inv) { fft_normalize(a.data(), m_nmodes, m_nmodes); }
}

template <int DIM>
void PsatdSolver<DIM>::stagger_shift(std::vector<Complex>& a, int comp, Stag stag,
                                     int sign) {
  const auto& s3 = stag == Stag::E_like ? e_stag3[comp] : b_stag3[comp];
  bool any = false;
  for (int d = 0; d < DIM; ++d) { any = any || s3[d] != 0; }
  if (!any) { return; }
  const auto dx = m_geom.dx();
  auto phase_axis = [&](int m, int n, int d) {
    if (s3[d] == 0) { return Real(0); }
    return Real(sign) * fft_wavenumber(m, n, dx[d]) * dx[d] / 2;
  };
  if constexpr (DIM == 2) {
    std::int64_t idx = 0;
    for (int mj = 0; mj < m_n[1]; ++mj) {
      const Real py = phase_axis(mj, m_n[1], 1);
      for (int mi = 0; mi < m_n[0]; ++mi) {
        const Real ph = phase_axis(mi, m_n[0], 0) + py;
        a[idx++] *= Complex(std::cos(ph), std::sin(ph));
      }
    }
  } else {
    std::int64_t idx = 0;
    for (int mk = 0; mk < m_n[2]; ++mk) {
      const Real pz = phase_axis(mk, m_n[2], 2);
      for (int mj = 0; mj < m_n[1]; ++mj) {
        const Real py = phase_axis(mj, m_n[1], 1) + pz;
        for (int mi = 0; mi < m_n[0]; ++mi) {
          const Real ph = phase_axis(mi, m_n[0], 0) + py;
          a[idx++] *= Complex(std::cos(ph), std::sin(ph));
        }
      }
    }
  }
}

template <int DIM>
void PsatdSolver<DIM>::forward(const mrpic::MultiFab<DIM>& src,
                               std::array<std::vector<Complex>, 3>& dst, Stag stag) {
  assert(src.num_fabs() == 1 && src.box_array()[0] == m_geom.domain());
  const auto a = src.const_array(0);
  const auto& dom = m_geom.domain();
  for (int comp = 0; comp < 3; ++comp) {
    std::int64_t idx = 0;
    if constexpr (DIM == 2) {
      for (int j = dom.lo(1); j <= dom.hi(1); ++j) {
        for (int i = dom.lo(0); i <= dom.hi(0); ++i) {
          dst[comp][idx++] = Complex(a(i, j, 0, comp), 0);
        }
      }
    } else {
      for (int k = dom.lo(2); k <= dom.hi(2); ++k) {
        for (int j = dom.lo(1); j <= dom.hi(1); ++j) {
          for (int i = dom.lo(0); i <= dom.hi(0); ++i) {
            dst[comp][idx++] = Complex(a(i, j, k, comp), 0);
          }
        }
      }
    }
    transform(dst[comp], false);
    // Shift staggered samples to true nodal spectral coefficients.
    stagger_shift(dst[comp], comp, stag, -1);
  }
}

template <int DIM>
void PsatdSolver<DIM>::inverse(std::array<std::vector<Complex>, 3>& src,
                               mrpic::MultiFab<DIM>& dst, Stag stag) {
  auto a = dst.array(0);
  const auto& dom = m_geom.domain();
  for (int comp = 0; comp < 3; ++comp) {
    // Shift nodal coefficients back to the component's staggered samples.
    stagger_shift(src[comp], comp, stag, +1);
    transform(src[comp], true);
    std::int64_t idx = 0;
    if constexpr (DIM == 2) {
      for (int j = dom.lo(1); j <= dom.hi(1); ++j) {
        for (int i = dom.lo(0); i <= dom.hi(0); ++i) {
          a(i, j, 0, comp) = src[comp][idx++].real();
        }
      }
    } else {
      for (int k = dom.lo(2); k <= dom.hi(2); ++k) {
        for (int j = dom.lo(1); j <= dom.hi(1); ++j) {
          for (int i = dom.lo(0); i <= dom.hi(0); ++i) {
            a(i, j, k, comp) = src[comp][idx++].real();
          }
        }
      }
    }
  }
}

template <int DIM>
void PsatdSolver<DIM>::advance(FieldSet<DIM>& f, Real dt) {
  forward(f.E(), m_E, Stag::E_like);
  forward(f.B(), m_B, Stag::B_like);
  forward(f.J(), m_J, Stag::E_like); // J is staggered like E

  const auto dx = m_geom.dx();
  const auto update_mode = [&](std::int64_t idx, const std::array<Real, 3>& kvec) {
    const Real k2 = kvec[0] * kvec[0] + kvec[1] * kvec[1] + kvec[2] * kvec[2];
    Complex E[3] = {m_E[0][idx], m_E[1][idx], m_E[2][idx]};
    Complex B[3] = {m_B[0][idx], m_B[1][idx], m_B[2][idx]};
    Complex J[3] = {m_J[0][idx], m_J[1][idx], m_J[2][idx]};

    if (k2 == 0) {
      // Mean mode: dE/dt = -J/eps0, B static.
      for (int cc = 0; cc < 3; ++cc) { m_E[cc][idx] = E[cc] - dt / eps0 * J[cc]; }
      return;
    }
    const Real k = std::sqrt(k2);
    const Real kh[3] = {kvec[0] / k, kvec[1] / k, kvec[2] / k};
    const Real C = std::cos(c * k * dt);
    const Real S = std::sin(c * k * dt);

    // Longitudinal / transverse split.
    auto dot = [&](const Complex v[3]) {
      return v[0] * kh[0] + v[1] * kh[1] + v[2] * kh[2];
    };
    const Complex EL = dot(E);
    const Complex JL = dot(J);
    Complex ET[3], JT[3];
    for (int cc = 0; cc < 3; ++cc) {
      ET[cc] = E[cc] - EL * kh[cc];
      JT[cc] = J[cc] - JL * kh[cc];
    }
    // khat x V (real unit vector x complex vector).
    auto cross = [&](const Complex v[3], Complex out[3]) {
      out[0] = kh[1] * v[2] - kh[2] * v[1];
      out[1] = kh[2] * v[0] - kh[0] * v[2];
      out[2] = kh[0] * v[1] - kh[1] * v[0];
    };
    Complex kxB[3], kxE[3], kxJ[3];
    cross(B, kxB);
    cross(ET, kxE);
    cross(JT, kxJ);

    const Complex I(0, 1);
    for (int cc = 0; cc < 3; ++cc) {
      // Homogeneous rotation + particular (constant-J) solution.
      const Complex Enew = C * ET[cc] + I * c * S * kxB[cc]            // transverse
                           - S / (eps0 * c * k) * JT[cc]               // J drive
                           + (EL - dt / eps0 * JL) * kh[cc];           // longitudinal
      const Complex Bnew = C * B[cc] - I * (S / c) * kxE[cc]           // rotation
                           + I * (1 - C) / (eps0 * c * c * k) * kxJ[cc];
      m_E[cc][idx] = Enew;
      m_B[cc][idx] = Bnew;
    }
  };

  if constexpr (DIM == 2) {
    std::int64_t idx = 0;
    for (int mj = 0; mj < m_n[1]; ++mj) {
      const Real ky = fft_wavenumber(mj, m_n[1], dx[1]);
      for (int mi = 0; mi < m_n[0]; ++mi) {
        update_mode(idx++, {fft_wavenumber(mi, m_n[0], dx[0]), ky, Real(0)});
      }
    }
  } else {
    std::int64_t idx = 0;
    for (int mk = 0; mk < m_n[2]; ++mk) {
      const Real kz = fft_wavenumber(mk, m_n[2], dx[2]);
      for (int mj = 0; mj < m_n[1]; ++mj) {
        const Real ky = fft_wavenumber(mj, m_n[1], dx[1]);
        for (int mi = 0; mi < m_n[0]; ++mi) {
          update_mode(idx++, {fft_wavenumber(mi, m_n[0], dx[0]), ky, kz});
        }
      }
    }
  }

  inverse(m_E, f.E(), Stag::E_like);
  inverse(m_B, f.B(), Stag::B_like);
}

template class PsatdSolver<2>;
template class PsatdSolver<3>;

} // namespace mrpic::fields
