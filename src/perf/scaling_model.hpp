#pragma once

// Analytic weak/strong scaling models calibrated against the paper's
// reported measurements (Fig. 5), plus the memory-bandwidth-bound
// time-per-step model used by the FOM and Flop/s benches.
//
// Weak scaling:   T(N)/T(1) = 1 + a g(N) + b log2(N),
//   g(N) = 1 - N^{-1/3}: the growth of next-neighbor exchange partners as a
//   3D decomposition acquires interior ranks (saturating at 27 ranks, the
//   effect the paper identifies for Summit's 2->8 node efficiency drop);
//   the log2 term models reduction trees and network contention. (a, b) are
//   solved from the two anchor efficiencies each machine reports.
//
// Strong scaling: efficiency(k) = 1/(1 + alpha log10(k)) for a node ratio k,
//   reproducing the paper's "about 30% efficiency loss over an order of
//   magnitude" (alpha = 3/7 gives exactly 0.70 at k = 10), down to the
//   granularity limit of one block per device.
//
// Time per step: electromagnetic PIC is memory-bound (paper Sec. VII.B), so
//   t_step = (bytes_cell N_c + bytes_part N_p) / (BW_device eta devices),
//   with eta the sustained fraction of vendor bandwidth.

#include "src/perf/machine.hpp"

namespace mrpic::perf {

struct WeakScalingModel {
  double a = 0;
  double b = 0;

  // Solve a, b from two (nodes, efficiency) anchor points.
  static WeakScalingModel calibrate(double n1, double e1, double n2, double e2);
  static WeakScalingModel for_machine(const Machine& m) {
    return calibrate(m.weak.nodes_early, m.weak.eff_early, m.weak.nodes_full,
                     m.weak.eff_full);
  }

  double efficiency(double nodes) const;
};

struct StrongScalingModel {
  double alpha = 3.0 / 7.0;

  // Parallel efficiency at node count `nodes` relative to base `nodes0`.
  double efficiency(double nodes, double nodes0) const;
  // Speedup over the base configuration.
  double speedup(double nodes, double nodes0) const {
    return (nodes / nodes0) * efficiency(nodes, nodes0);
  }
  // Granularity limit: strong scaling ends when every device holds a single
  // block (cells/side = m.strong_block).
  static double max_nodes(const Machine& m, double total_cells);
};

// Memory-bound time per step of one node (seconds). The byte counts are
// effective traffic per element per step for order-3 DP PIC (stencil loads,
// gather taps, deposition read-modify-write, guard exchange buffers); the
// machine's sustained_bw encodes how much of the vendor bandwidth the code
// attains there. Calibration target: the paper's 2022 FOM rows (Table IV)
// and 0.5-1 s steps on the GPU machines at the Table IV problem sizes.
struct StepTimeModel {
  double bytes_per_cell = 400;      // Yee update + guard traffic, 6 comps DP
  double bytes_per_particle = 5000; // gather taps + push r/w + deposit r/m/w
  // Mixed-precision mode moves ~0.6x the bytes (fields+most attributes SP,
  // sensitive particle ops kept DP, Sec. VI).
  double mp_traffic_factor = 0.6;

  double node_seconds(const Machine& m, double cells_per_node, double particles_per_node,
                      bool mixed_precision = false) const {
    const double bw = m.tbyte_s_device * 1e12 * m.sustained_bw * m.devices_per_node;
    const double bytes =
        bytes_per_cell * cells_per_node + bytes_per_particle * particles_per_node;
    return bytes * (mixed_precision ? mp_traffic_factor : 1.0) / bw;
  }
};

} // namespace mrpic::perf
