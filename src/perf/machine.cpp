#include "src/perf/machine.hpp"

#include <stdexcept>

namespace mrpic::perf {

const std::vector<Machine>& catalogue() {
  // Peak numbers and HPCG results: paper Table II. Node counts, availability
  // and weak-scaling anchors: paper Sec. VII. Strong-scaling block sizes:
  // Sec. VI.A (Frontier=256^3, Fugaku=64^3-96^3, Summit=128^3,
  // Perlmutter=128^3).
  static const std::vector<Machine> machines = {
      {"Frontier", "MI250X", 47.9, 95.7, 3.3, 4, 9472, 9316,
       /*hpcg*/ -1.0, 0,
       /*weak anchors*/ {64, 0.97, 8576, 0.80}, 256, 2e-6, 25e9, 0.45,
       /*hbm GiB (per GCD)*/ 64.0},
      {"Fugaku", "A64FX", 3.38, 6.76, 1.0, 1, 158976, 152064,
       16.0, 158976,
       {64, 0.98, 152064, 0.84}, 80, 1e-6, 6.8e9, 0.10, 32.0},
      {"Summit", "V100 SXM2 (16GB)", 7.5, 15.0, 0.9, 6, 4608, 4608,
       2.93, 4608,
       {8, 0.85, 4263, 0.74}, 128, 2e-6, 12.5e9, 0.80, 16.0},
      {"Perlmutter", "A100 SXM2 (40GB)", 9.7, 19.5, 1.6, 4, 1536, 1100,
       1.91, 1424,
       {30, 0.89, 1088, 0.62}, 128, 2e-6, 12.5e9, 0.55, 40.0},
  };
  return machines;
}

const Machine& machine_by_name(const std::string& name) {
  for (const auto& m : catalogue()) {
    if (m.name == name) { return m; }
  }
  throw std::invalid_argument("unknown machine: " + name);
}

} // namespace mrpic::perf
