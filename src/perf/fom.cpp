#include "src/perf/fom.hpp"

#include <cassert>

namespace mrpic::perf {

double figure_of_merit(double n_cells, double n_particles, double avg_seconds_per_step,
                       double percent_of_system) {
  assert(avg_seconds_per_step > 0 && percent_of_system > 0);
  return (fom_alpha * n_cells + fom_beta * n_particles) /
         (avg_seconds_per_step * percent_of_system);
}

const std::vector<FomRecord>& fom_history() {
  // Paper Table IV verbatim; code_speed_factor encodes the Sec. VII.C
  // narrative (2019 CPU/Fortran era ~0.2 of final speed, steady GPU
  // optimization through 2020-21, ~1.0 by 2022).
  static const std::vector<FomRecord> rows = {
      {"3/19", "Cori", 0.4e7, 6625, 1.0e11, false, 0.20},
      {"6/19", "Summit", 2.8e7, 1000, 7.8e11, false, 0.30},
      {"9/19", "Summit", 2.3e7, 2560, 6.8e11, false, 0.30},
      {"1/20", "Summit", 2.3e7, 2560, 1.0e12, false, 0.40},
      {"2/20", "Summit", 2.5e7, 4263, 1.2e12, false, 0.45},
      {"6/20", "Summit", 2.0e7, 4263, 1.4e12, false, 0.50},
      {"7/20", "Summit", 2.0e8, 4263, 2.5e12, false, 0.75},
      {"3/21", "Summit", 2.0e8, 4263, 2.9e12, false, 0.85},
      {"6/21", "Summit", 2.0e8, 4263, 2.7e12, false, 0.85},
      {"7/21", "Perlmutter", 2.7e8, 960, 1.1e12, false, 0.85},
      {"12/21", "Summit", 2.0e8, 4263, 3.3e12, false, 0.95},
      {"4/22", "Perlmutter", 4.0e8, 928, 1.0e12, false, 1.00},
      {"4/22", "Perlmutter", 4.0e8, 928, 1.4e12, true, 1.00},
      {"4/22", "Summit", 2.0e8, 4263, 3.4e12, false, 1.00},
      // dagger rows on Fugaku are the A64FX-optimized kernels of Sec. V.A.1
      // (~2x whole-app on top of the mixed-precision traffic saving).
      {"4/22", "Fugaku", 3.1e6, 98304, 8.1e12, true, 2.00},
      {"6/22", "Perlmutter", 4.4e8, 1088, 1.0e12, false, 1.00},
      {"7/22", "Fugaku", 3.1e6, 98304, 2.2e12, false, 1.00},
      {"7/22", "Fugaku", 3.1e6, 152064, 9.3e12, true, 2.00},
      {"7/22", "Frontier", 8.1e8, 8576, 1.1e13, false, 1.00},
  };
  return rows;
}

} // namespace mrpic::perf
