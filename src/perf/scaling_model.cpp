#include "src/perf/scaling_model.hpp"

#include <cassert>
#include <cmath>

namespace mrpic::perf {

namespace {
double g_of(double n) { return 1.0 - std::pow(n, -1.0 / 3.0); }
} // namespace

WeakScalingModel WeakScalingModel::calibrate(double n1, double e1, double n2, double e2) {
  // 1/e = 1 + a g(n) + b log2(n) at both anchors: a 2x2 linear solve.
  const double r1 = 1.0 / e1 - 1.0;
  const double r2 = 1.0 / e2 - 1.0;
  const double g1 = g_of(n1), g2 = g_of(n2);
  const double l1 = std::log2(n1), l2 = std::log2(n2);
  const double det = g1 * l2 - g2 * l1;
  assert(det != 0.0);
  WeakScalingModel m;
  m.a = (r1 * l2 - r2 * l1) / det;
  m.b = (g1 * r2 - g2 * r1) / det;
  return m;
}

double WeakScalingModel::efficiency(double nodes) const {
  if (nodes <= 1.0) { return 1.0; }
  const double t = 1.0 + a * g_of(nodes) + b * std::log2(nodes);
  // Calibrations dominated by the log term can dip below t = 1 at small
  // node counts; weak-scaling efficiency is capped at ideal.
  return std::min(1.0, 1.0 / t);
}

double StrongScalingModel::efficiency(double nodes, double nodes0) const {
  if (nodes <= nodes0) { return 1.0; }
  return 1.0 / (1.0 + alpha * std::log10(nodes / nodes0));
}

double StrongScalingModel::max_nodes(const Machine& m, double total_cells) {
  const double cells_per_block = std::pow(static_cast<double>(m.strong_block), 3);
  return total_cells / (cells_per_block * m.devices_per_node);
}

} // namespace mrpic::perf
