#pragma once

// Source-level FLOP accounting: the substitute for Nsight Compute / ROCm
// profiler / fipp counters (paper Sec. VI.B). Kernels report their
// algorithmic operation counts per call site; the counter aggregates per
// kernel name and per operation class (FMA counted as two operations, as in
// the paper's SASS methodology).

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

namespace mrpic::obs {
class MetricsRegistry;
}

namespace mrpic::perf {

struct OpCounts {
  std::int64_t add = 0;
  std::int64_t mul = 0;
  std::int64_t fma = 0; // counted as 2 flops
  std::int64_t div = 0;
  std::int64_t sqrt = 0;
  std::int64_t other = 0; // unclassified raw flops (record-by-total path)

  std::int64_t flops() const { return add + mul + 2 * fma + div + sqrt + other; }
  OpCounts& operator+=(const OpCounts& o) {
    add += o.add;
    mul += o.mul;
    fma += o.fma;
    div += o.div;
    sqrt += o.sqrt;
    other += o.other;
    return *this;
  }
  OpCounts scaled(std::int64_t n) const {
    return {add * n, mul * n, fma * n, div * n, sqrt * n, other * n};
  }
};

class FlopCounter {
public:
  void record(const std::string& kernel, const OpCounts& ops) { m_perkernel[kernel] += ops; }
  // Raw totals land in the `other` bucket so they do not masquerade as adds
  // in the per-op-class breakdown.
  void record(const std::string& kernel, std::int64_t flops) {
    OpCounts ops;
    ops.other = flops;
    m_perkernel[kernel] += ops;
  }

  std::int64_t total_flops() const {
    std::int64_t t = 0;
    for (const auto& [k, v] : m_perkernel) { t += v.flops(); }
    return t;
  }
  std::int64_t kernel_flops(const std::string& kernel) const {
    const auto it = m_perkernel.find(kernel);
    return it == m_perkernel.end() ? 0 : it->second.flops();
  }
  void reset() {
    m_perkernel.clear();
    m_published.clear();
  }

  void report(std::ostream& os) const {
    for (const auto& [k, v] : m_perkernel) {
      os << "  " << k << ": " << v.flops() << " flops (add " << v.add << ", mul " << v.mul
         << ", fma " << v.fma << ", div " << v.div << ", sqrt " << v.sqrt << ", other "
         << v.other << ")\n";
    }
  }

  const std::map<std::string, OpCounts>& per_kernel() const { return m_perkernel; }

  // Mirror flop totals into the unified metrics registry as monotone
  // counters ("flops_total" plus "flops.<kernel>"): only the increment
  // since the previous publish is added, so calling once per step streams
  // per-step deltas into the registry's StepRecords.
  void publish(obs::MetricsRegistry& metrics);

private:
  std::map<std::string, OpCounts> m_perkernel;
  std::map<std::string, std::int64_t> m_published; // flops already streamed out
};

// Canonical per-element operation counts of the production PIC stages
// (order-3 shapes, 3D unless noted). Used by the Table III bench.
OpCounts pic_flops_per_particle_3d(int shape_order);
OpCounts pic_flops_per_cell_3d();

} // namespace mrpic::perf
