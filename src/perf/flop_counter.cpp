#include "src/perf/flop_counter.hpp"

#include "src/fields/fdtd.hpp"
#include "src/obs/metrics.hpp"
#include "src/particles/deposition.hpp"
#include "src/particles/gather.hpp"
#include "src/particles/pusher.hpp"

namespace mrpic::perf {

void FlopCounter::publish(obs::MetricsRegistry& metrics) {
  std::int64_t total_delta = 0;
  for (const auto& [kernel, ops] : m_perkernel) {
    const std::int64_t now = ops.flops();
    std::int64_t& seen = m_published[kernel];
    const std::int64_t delta = now - seen;
    if (delta == 0) { continue; }
    metrics.counter("flops." + kernel).add(delta);
    seen = now;
    total_delta += delta;
  }
  if (total_delta != 0) { metrics.counter("flops_total").add(total_delta); }
}

OpCounts pic_flops_per_particle_3d(int shape_order) {
  // Gather + push + deposition, expressed mostly as fused operations to
  // mirror the FFMA-heavy SASS mix the paper reports.
  const std::int64_t g = particles::gather_flops_per_particle(shape_order, 3);
  const std::int64_t p = particles::push_flops_per_particle();
  const std::int64_t d = particles::deposit_flops_per_particle(shape_order, 3);
  OpCounts ops;
  ops.fma = (g + d) / 2; // interpolation weight products are FMA-dominant
  ops.add = p / 2;
  ops.mul = p - p / 2 + (g + d) - 2 * ops.fma;
  ops.sqrt = 2; // one gamma in the push, one in the deposition amplitude
  ops.div = 2;
  return ops;
}

OpCounts pic_flops_per_cell_3d() {
  const std::int64_t f = fields::FDTDSolver<3>::flops_per_cell();
  OpCounts ops;
  ops.fma = f / 3;
  ops.add = f - 2 * ops.fma;
  return ops;
}

} // namespace mrpic::perf
