#pragma once

// WarpX's Exascale Computing Project figure of merit (paper Eq. 1):
//
//   FOM = (alpha N_c + beta N_p) / (avg time per step * percent of system)
//
// with alpha = 0.1, beta = 0.9, fixed since the start of the project. Also
// carries the FOM history of paper Table IV (machine, problem size, nodes,
// reported FOM) so the bench can compare model vs paper for every row.

#include <string>
#include <vector>

namespace mrpic::perf {

inline constexpr double fom_alpha = 0.1;
inline constexpr double fom_beta = 0.9;

// percent_of_system in (0,1]: nodes used / full machine.
double figure_of_merit(double n_cells, double n_particles, double avg_seconds_per_step,
                       double percent_of_system);

struct FomRecord {
  std::string date;        // e.g. "7/22"
  std::string machine;     // catalogue name (Cori rows keep the name only)
  double cells_per_node;   // N_c / node
  int nodes;               // measurement size
  double reported_fom;     // paper Table IV value
  bool mixed_precision;    // the dagger rows
  // Relative code-generation maturity at that date (1.0 = the July 2022
  // code; earlier eras were slower: Fortran hotspots in 2019, fewer GPU
  // optimizations through 2020-21 — paper Sec. VII.C narrative).
  double code_speed_factor;
};

// The 19 rows of paper Table IV.
const std::vector<FomRecord>& fom_history();

} // namespace mrpic::perf
