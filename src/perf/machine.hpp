#pragma once

// Machine catalogue: the four supercomputers of the paper's evaluation
// (Table II), with vendor peak numbers, published HPCG results, node counts
// and the calibration points for the weak-scaling model taken from the
// paper's own measurements (Sec. VII.A). This is the data side of the
// hardware substitution described in DESIGN.md §1.

#include <string>
#include <vector>

namespace mrpic::perf {

struct WeakCalibration {
  double nodes_early;      // small-scale reference point
  double eff_early;        // measured efficiency there
  double nodes_full;       // largest measured run
  double eff_full;         // measured efficiency there
};

struct Machine {
  std::string name;
  std::string device;       // compute hardware per Table II
  double dp_tflops_device;  // vendor peak, double precision
  double sp_tflops_device;  // vendor peak, single precision
  double tbyte_s_device;    // memory bandwidth per device [TB/s]
  int devices_per_node;
  int total_nodes;          // full machine
  int nodes_available;      // available at measurement time (Sec. VII)
  double hpcg_pflops;       // published 2021/11 HPCG (<=0: not available)
  int hpcg_nodes;           // nodes of the HPCG submission
  WeakCalibration weak;     // paper-reported weak-scaling anchor points
  int strong_block;         // block size per device in strong scaling (cells/side)
  // Network parameters for the simulated cluster (order-of-magnitude of the
  // respective interconnects; the scaling *shape* is set by `weak`).
  double net_latency_s;
  double net_bandwidth_Bps;
  // Sustained fraction of vendor memory bandwidth achieved by the WarpX
  // kernels on this machine, calibrated so the memory-bound step-time model
  // reproduces the paper's final-era FOM rows (Table IV): high on the
  // mature CUDA path (Summit), lower on the young HIP path (Frontier, cf.
  // Sec. VII.B "further optimizations ... might be possible"), and low on
  // A64FX where the unoptimized code barely vectorizes (the paper's
  // optimized MP version is ~4x faster, matching its FOM ratio).
  double sustained_bw;
  // Device-local high-bandwidth memory capacity [GiB] (per GCD on MI250X).
  // This is the per-rank budget behind the first-rank-to-OOM prediction
  // (obs::predict_first_oom) and the examples' --node-budget-gb default.
  double hbm_gb_device;
};

// Frontier, Fugaku, Summit, Perlmutter (in the paper's Table II order).
const std::vector<Machine>& catalogue();

const Machine& machine_by_name(const std::string& name);

} // namespace mrpic::perf
