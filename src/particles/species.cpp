#include "src/particles/species.hpp"

// Species is a plain aggregate; this translation unit exists to anchor the
// module in the build.
