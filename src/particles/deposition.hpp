#pragma once

// Current and charge deposition (paper Fig. 3: "current deposition", usually
// the most expensive stage of the PIC cycle).
//
// The production scheme is the charge-conserving Esirkepov density
// decomposition: the current is built from the difference of the particle
// shapes before and after the position push such that the discrete
// continuity equation  (rho^{n+1}-rho^n)/dt + div J = 0  holds exactly on
// the Yee lattice (verified by property tests). A direct (non-conserving)
// v*S deposition is provided as an ablation baseline.

#include "src/amr/array4.hpp"
#include "src/amr/geometry.hpp"
#include "src/particles/particle_container.hpp"

namespace mrpic::particles {

enum class DepositionKind { Esirkepov, Direct };

// Deposit the current of every particle in `tile` into J (3-component fab
// view). x_old holds the pre-push positions; tile.x the post-push ones.
// Momenta in the tile are the mid-step u^{n+1/2} used for the push.
template <int DIM>
void deposit_current(DepositionKind kind, int order, const ParticleTile<DIM>& tile,
                     const std::array<std::vector<Real>, DIM>& x_old,
                     const mrpic::Geometry<DIM>& geom, const Array4<Real>& J, Real charge,
                     Real dt);

// Deposit macro-charge density rho (nodal, 1 component) at current positions.
template <int DIM>
void deposit_charge(int order, const ParticleTile<DIM>& tile,
                    const mrpic::Geometry<DIM>& geom, const Array4<Real>& rho, Real charge);

std::int64_t deposit_flops_per_particle(int order, int dim);

extern template void deposit_current<2>(DepositionKind, int, const ParticleTile<2>&,
                                        const std::array<std::vector<Real>, 2>&,
                                        const mrpic::Geometry<2>&, const Array4<Real>&,
                                        Real, Real);
extern template void deposit_current<3>(DepositionKind, int, const ParticleTile<3>&,
                                        const std::array<std::vector<Real>, 3>&,
                                        const mrpic::Geometry<3>&, const Array4<Real>&,
                                        Real, Real);
extern template void deposit_charge<2>(int, const ParticleTile<2>&, const mrpic::Geometry<2>&,
                                       const Array4<Real>&, Real);
extern template void deposit_charge<3>(int, const ParticleTile<3>&, const mrpic::Geometry<3>&,
                                       const Array4<Real>&, Real);

} // namespace mrpic::particles
