#include "src/particles/gather.hpp"

#include "src/amr/parallel_for.hpp"
#include "src/fields/yee.hpp"
#include "src/particles/shape.hpp"

namespace mrpic::particles {

namespace {

// Per-dimension interpolation data for both staggerings at a fixed order.
template <int ORDER>
struct DimWeights {
  Real w_nodal[ORDER + 1];
  Real w_half[ORDER + 1];
  int i_nodal;
  int i_half;

  void compute(Real xi) {
    i_nodal = Shape<ORDER>::compute(w_nodal, xi);
    i_half = Shape<ORDER>::compute(w_half, xi - Real(0.5));
  }
};

template <int DIM, int ORDER>
void gather_impl(const ParticleTile<DIM>& tile, const mrpic::Geometry<DIM>& geom,
                 const Array4<const Real>& E, const Array4<const Real>& B,
                 GatheredFields& out) {
  const std::size_t np = tile.size();
  out.resize(np);

  const auto lo = geom.prob_lo();
  const auto idx = geom.inv_dx();

  mrpic::parallel_for(static_cast<std::int64_t>(np), [&](std::int64_t p) {
    DimWeights<ORDER> dw[DIM];
    for (int d = 0; d < DIM; ++d) {
      dw[d].compute((tile.x[d][p] - lo[d]) * idx[d]);
    }

    // Interpolate one staggered component: stag[d] selects nodal/half
    // weights per dimension.
    auto interp = [&](const Array4<const Real>& f, int comp, const auto& stag) {
      Real acc = 0;
      if constexpr (DIM == 2) {
        for (int b = 0; b <= ORDER; ++b) {
          const Real wy = stag[1] ? dw[1].w_half[b] : dw[1].w_nodal[b];
          const int j = (stag[1] ? dw[1].i_half : dw[1].i_nodal) + b;
          for (int a = 0; a <= ORDER; ++a) {
            const Real wx = stag[0] ? dw[0].w_half[a] : dw[0].w_nodal[a];
            const int i = (stag[0] ? dw[0].i_half : dw[0].i_nodal) + a;
            acc += wx * wy * f(i, j, 0, comp);
          }
        }
      } else {
        for (int cc = 0; cc <= ORDER; ++cc) {
          const Real wz = stag[2] ? dw[2].w_half[cc] : dw[2].w_nodal[cc];
          const int k = (stag[2] ? dw[2].i_half : dw[2].i_nodal) + cc;
          for (int b = 0; b <= ORDER; ++b) {
            const Real wy = stag[1] ? dw[1].w_half[b] : dw[1].w_nodal[b];
            const int j = (stag[1] ? dw[1].i_half : dw[1].i_nodal) + b;
            for (int a = 0; a <= ORDER; ++a) {
              const Real wx = stag[0] ? dw[0].w_half[a] : dw[0].w_nodal[a];
              const int i = (stag[0] ? dw[0].i_half : dw[0].i_nodal) + a;
              acc += wx * wy * wz * f(i, j, k, comp);
            }
          }
        }
      }
      return acc;
    };

    for (int comp = 0; comp < 3; ++comp) {
      out.E[comp][p] = interp(E, comp, fields::e_stag3[comp]);
      out.B[comp][p] = interp(B, comp, fields::b_stag3[comp]);
    }
  });
}

} // namespace

template <int DIM>
void gather_fields(int order, const ParticleTile<DIM>& tile, const mrpic::Geometry<DIM>& geom,
                   const Array4<const Real>& E, const Array4<const Real>& B,
                   GatheredFields& out) {
  switch (order) {
    case 1: gather_impl<DIM, 1>(tile, geom, E, B, out); break;
    case 2: gather_impl<DIM, 2>(tile, geom, E, B, out); break;
    case 3: gather_impl<DIM, 3>(tile, geom, E, B, out); break;
    default: gather_impl<DIM, 3>(tile, geom, E, B, out); break;
  }
}

std::int64_t gather_flops_per_particle(int order, int dim) {
  const int sup = order + 1;
  const std::int64_t points = dim == 2 ? sup * sup : sup * sup * sup;
  const std::int64_t shape_cost = 2 * dim * (order == 1 ? 2 : order == 2 ? 9 : 16);
  // Per interpolation point: dim weight multiplies + 1 fma (2 flops).
  return shape_cost + 6 * points * (dim + 2);
}

template void gather_fields<2>(int, const ParticleTile<2>&, const mrpic::Geometry<2>&,
                               const Array4<const Real>&, const Array4<const Real>&,
                               GatheredFields&);
template void gather_fields<3>(int, const ParticleTile<3>&, const mrpic::Geometry<3>&,
                               const Array4<const Real>&, const Array4<const Real>&,
                               GatheredFields&);

} // namespace mrpic::particles
