#include "src/particles/split_merge.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace mrpic::particles {

using mrpic::constants::c;

namespace {

template <int DIM>
Real kinetic_energy_one(const ParticleTile<DIM>& t, std::size_t i, Real mass) {
  const Real u2 = t.u[0][i] * t.u[0][i] + t.u[1][i] * t.u[1][i] + t.u[2][i] * t.u[2][i];
  return t.w[i] * (std::sqrt(1 + u2 / (c * c)) - 1) * mass * c * c;
}

} // namespace

template <int DIM>
SplitMergeStats split_heavy(ParticleTile<DIM>& tile, const mrpic::Geometry<DIM>& geom,
                            Real /*mass*/, const SplitConfig& cfg) {
  SplitMergeStats stats;
  if (cfg.w_max <= 0) { return stats; }
  const std::size_t n0 = tile.size();
  for (std::size_t i = 0; i < n0; ++i) {
    if (tile.w[i] <= cfg.w_max) { continue; }
    // Displacement direction: motion if moving, else x.
    std::array<Real, DIM> dir{};
    Real norm = 0;
    for (int d = 0; d < DIM; ++d) {
      dir[d] = tile.u[d][i];
      norm += dir[d] * dir[d];
    }
    if (norm == 0) {
      dir[0] = 1;
      norm = 1;
    }
    norm = std::sqrt(norm);
    // Offset scaled per-direction by the local cell size.
    std::array<Real, DIM> pos_a, pos_b;
    for (int d = 0; d < DIM; ++d) {
      const Real off = cfg.offset_cells * geom.cell_size(d) * dir[d] / norm;
      pos_a[d] = tile.x[d][i] + off;
      pos_b[d] = tile.x[d][i] - off;
    }
    const std::array<Real, 3> mom = {tile.u[0][i], tile.u[1][i], tile.u[2][i]};
    const Real half = tile.w[i] / 2;
    // Replace the original in place with half A, append half B: charge,
    // momentum and center of charge are all conserved exactly.
    for (int d = 0; d < DIM; ++d) { tile.x[d][i] = pos_a[d]; }
    tile.w[i] = half;
    tile.push_back(pos_b, mom, half);
    ++stats.splits;
  }
  return stats;
}

template <int DIM>
SplitMergeStats merge_crowded(ParticleTile<DIM>& tile, const mrpic::Geometry<DIM>& geom,
                              const mrpic::Box<DIM>& valid, Real mass,
                              const MergeConfig& cfg) {
  SplitMergeStats stats;
  const std::size_t np = tile.size();
  if (np < 2) { return stats; }

  // Bin particle indices per cell.
  std::vector<std::vector<std::size_t>> bins(static_cast<std::size_t>(valid.num_cells()));
  for (std::size_t i = 0; i < np; ++i) {
    mrpic::IntVect<DIM> cell;
    bool inside = true;
    for (int d = 0; d < DIM; ++d) {
      cell[d] = geom.cell_index(tile.x[d][i], d);
      inside = inside && cell[d] >= valid.lo(d) && cell[d] <= valid.hi(d);
    }
    if (inside) { bins[static_cast<std::size_t>(valid.index(cell))].push_back(i); }
  }

  std::vector<std::size_t> dead;
  for (auto& bin : bins) {
    if (bin.size() <= cfg.max_per_cell) { continue; }
    // Sort the cell's particles by |u| so similar-momentum particles are
    // adjacent, then pair greedily while the cell stays overcrowded.
    std::sort(bin.begin(), bin.end(), [&](std::size_t a, std::size_t b) {
      const Real ua = tile.u[0][a] * tile.u[0][a] + tile.u[1][a] * tile.u[1][a] +
                      tile.u[2][a] * tile.u[2][a];
      const Real ub = tile.u[0][b] * tile.u[0][b] + tile.u[1][b] * tile.u[1][b] +
                      tile.u[2][b] * tile.u[2][b];
      return ua < ub;
    });
    std::size_t remaining = bin.size();
    for (std::size_t t = 0; t + 1 < bin.size() && remaining > cfg.max_per_cell; t += 2) {
      const std::size_t a = bin[t], b = bin[t + 1];
      // Momentum similarity gate.
      Real du2 = 0, u2 = 0;
      for (int cc = 0; cc < 3; ++cc) {
        const Real d = tile.u[cc][a] - tile.u[cc][b];
        du2 += d * d;
        const Real m = (tile.u[cc][a] + tile.u[cc][b]) / 2;
        u2 += m * m;
      }
      if (du2 > cfg.momentum_tolerance * cfg.momentum_tolerance * std::max(u2, c * c * 1e-12)) {
        continue;
      }
      const Real e_before = kinetic_energy_one(tile, a, mass) +
                            kinetic_energy_one(tile, b, mass);
      const Real wa = tile.w[a], wb = tile.w[b];
      const Real wsum = wa + wb;
      // Weighted means conserve charge, momentum and center of charge.
      for (int d = 0; d < DIM; ++d) {
        tile.x[d][a] = (wa * tile.x[d][a] + wb * tile.x[d][b]) / wsum;
      }
      for (int cc = 0; cc < 3; ++cc) {
        tile.u[cc][a] = (wa * tile.u[cc][a] + wb * tile.u[cc][b]) / wsum;
      }
      tile.w[a] = wsum;
      stats.energy_change += kinetic_energy_one(tile, a, mass) - e_before;
      dead.push_back(b);
      ++stats.merges;
      --remaining;
    }
  }

  // Remove merged-away particles (descending order keeps indices valid
  // under swap-with-last erase).
  std::sort(dead.begin(), dead.end(), std::greater<>());
  for (std::size_t i : dead) { tile.erase(i); }
  return stats;
}

template SplitMergeStats split_heavy<2>(ParticleTile<2>&, const mrpic::Geometry<2>&, Real,
                                        const SplitConfig&);
template SplitMergeStats split_heavy<3>(ParticleTile<3>&, const mrpic::Geometry<3>&, Real,
                                        const SplitConfig&);
template SplitMergeStats merge_crowded<2>(ParticleTile<2>&, const mrpic::Geometry<2>&,
                                          const mrpic::Box<2>&, Real, const MergeConfig&);
template SplitMergeStats merge_crowded<3>(ParticleTile<3>&, const mrpic::Geometry<3>&,
                                          const mrpic::Box<3>&, Real, const MergeConfig&);

} // namespace mrpic::particles
