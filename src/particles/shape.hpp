#pragma once

// B-spline particle shape factors of order 1-3 (paper Sec. IV: high-order
// shapes are essential for modeling high-density plasmas while keeping the
// finite-grid instability acceptable).
//
// compute_shape<ORDER>(w, x) fills the ORDER+1 weights of the spline centered
// on position x (in grid-index units; the caller has already removed the
// component staggering) and returns the index of the first grid point the
// weights apply to.

#include <cmath>

#include "src/amr/config.hpp"

namespace mrpic::particles {

template <int ORDER, typename T = Real>
struct Shape {
  static constexpr int support = ORDER + 1;

  // Fills w[0..ORDER]; returns first index.
  static int compute(T* w, T x) {
    if constexpr (ORDER == 1) {
      const int i = static_cast<int>(std::floor(x));
      const T d = x - static_cast<T>(i);
      w[0] = 1 - d;
      w[1] = d;
      return i;
    } else if constexpr (ORDER == 2) {
      // Centered on the nearest grid point.
      const int i = static_cast<int>(std::floor(x + T(0.5)));
      const T d = x - static_cast<T>(i);
      w[0] = T(0.5) * (T(0.5) - d) * (T(0.5) - d);
      w[1] = T(0.75) - d * d;
      w[2] = T(0.5) * (T(0.5) + d) * (T(0.5) + d);
      return i - 1;
    } else {
      static_assert(ORDER == 3, "supported shape orders: 1, 2, 3");
      const int i = static_cast<int>(std::floor(x));
      const T d = x - static_cast<T>(i);
      const T d2 = d * d;
      const T d3 = d2 * d;
      w[0] = (1 - 3 * d + 3 * d2 - d3) / 6; // (1-d)^3/6
      w[1] = (4 - 6 * d2 + 3 * d3) / 6;
      w[2] = (1 + 3 * d + 3 * d2 - 3 * d3) / 6;
      w[3] = d3 / 6;
      return i - 1;
    }
  }
};

// Number of FLOPs of one 1D shape evaluation (for the perf accounting).
template <int ORDER>
constexpr int shape_flops() {
  if constexpr (ORDER == 1) { return 2; }
  else if constexpr (ORDER == 2) { return 9; }
  else { return 16; }
}

} // namespace mrpic::particles
