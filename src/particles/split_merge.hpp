#pragma once

// Adaptive particle splitting and merging — the paper's stated next step
// (Sec. VIII.B: "couple to adaptive particle splitting and merging, will
// provide even higher opportunities for increased efficiency for adjusting
// local grid and particle statistic resolution").
//
// Splitting keeps statistics adequate where macroparticles are heavy (e.g.
// after entering a refinement patch): a particle with w > w_max becomes two
// half-weight copies displaced symmetrically (charge, momentum and the
// center of charge are conserved exactly).
//
// Merging bounds cost where particles accumulate: within each cell,
// momentum-similar pairs are coalesced into one particle carrying the
// summed weight and the weighted mean momentum/position (charge and
// momentum conserved exactly; kinetic energy decreases by the pair's
// internal spread — reported so callers can bound it).

#include "src/amr/geometry.hpp"
#include "src/particles/particle_container.hpp"

namespace mrpic::particles {

struct SplitConfig {
  Real w_max = 0;          // split particles heavier than this (0 = never)
  Real offset_cells = 0.2; // displacement of the two halves [cells]
};

struct MergeConfig {
  std::size_t max_per_cell = 64; // merge only in cells above this count
  // Pair only particles whose relative momentum difference is below this.
  Real momentum_tolerance = 0.1;
};

struct SplitMergeStats {
  std::int64_t splits = 0;
  std::int64_t merges = 0;
  Real energy_change = 0; // [J] (<= 0 for merges, 0 for splits)
};

// Split heavy particles of one tile (positions displaced along the
// direction of motion, or x for particles at rest).
template <int DIM>
SplitMergeStats split_heavy(ParticleTile<DIM>& tile, const mrpic::Geometry<DIM>& geom,
                            Real mass, const SplitConfig& cfg);

// Merge momentum-similar pairs in overcrowded cells of one tile. The tile
// is processed per cell of `valid`; particles are not required to be
// sorted.
template <int DIM>
SplitMergeStats merge_crowded(ParticleTile<DIM>& tile, const mrpic::Geometry<DIM>& geom,
                              const mrpic::Box<DIM>& valid, Real mass,
                              const MergeConfig& cfg);

extern template SplitMergeStats split_heavy<2>(ParticleTile<2>&, const mrpic::Geometry<2>&,
                                               Real, const SplitConfig&);
extern template SplitMergeStats split_heavy<3>(ParticleTile<3>&, const mrpic::Geometry<3>&,
                                               Real, const SplitConfig&);
extern template SplitMergeStats merge_crowded<2>(ParticleTile<2>&, const mrpic::Geometry<2>&,
                                                 const mrpic::Box<2>&, Real,
                                                 const MergeConfig&);
extern template SplitMergeStats merge_crowded<3>(ParticleTile<3>&, const mrpic::Geometry<3>&,
                                                 const mrpic::Box<3>&, Real,
                                                 const MergeConfig&);

} // namespace mrpic::particles
