#pragma once

// ParticleContainer<DIM>: the macroparticles of one species, stored
// struct-of-arrays per box of the level's BoxArray (one ParticleTile per
// box). Positions are absolute physical coordinates; momenta are proper
// velocities u = gamma * v [m/s] with all three components even in 2D.

#include <cstdint>
#include <vector>

#include "src/amr/box_array.hpp"
#include "src/amr/config.hpp"
#include "src/amr/geometry.hpp"
#include "src/particles/species.hpp"

namespace mrpic::particles {

template <int DIM>
struct ParticleTile {
  // Positions (SoA, one vector per coordinate).
  std::array<std::vector<Real>, DIM> x;
  // Proper velocity u = gamma v, all 3 components.
  std::array<std::vector<Real>, 3> u;
  // Macroparticle weight (number of physical particles represented).
  std::vector<Real> w;

  std::size_t size() const { return w.size(); }
  // Live SoA bytes of the tile: (DIM + 4) reals per particle (x[DIM], u[3],
  // w). Counts particles, not vector slack, so the measured footprint
  // matches the analytic count * bytes-per-particle model exactly.
  std::int64_t byte_footprint() const {
    return static_cast<std::int64_t>(size()) *
           static_cast<std::int64_t>((DIM + 4) * sizeof(Real));
  }
  void clear() {
    for (auto& v : x) { v.clear(); }
    for (auto& v : u) { v.clear(); }
    w.clear();
  }
  void reserve(std::size_t n) {
    for (auto& v : x) { v.reserve(n); }
    for (auto& v : u) { v.reserve(n); }
    w.reserve(n);
  }
  void push_back(const std::array<Real, DIM>& pos, const std::array<Real, 3>& mom,
                 Real weight) {
    for (int d = 0; d < DIM; ++d) { x[d].push_back(pos[d]); }
    for (int c = 0; c < 3; ++c) { u[c].push_back(mom[c]); }
    w.push_back(weight);
  }
  // Move particle i from this tile to dst (order within this tile changes:
  // swap-with-last removal).
  void transfer_to(std::size_t i, ParticleTile& dst) {
    std::array<Real, DIM> pos;
    std::array<Real, 3> mom;
    for (int d = 0; d < DIM; ++d) { pos[d] = x[d][i]; }
    for (int c = 0; c < 3; ++c) { mom[c] = u[c][i]; }
    dst.push_back(pos, mom, w[i]);
    erase(i);
  }
  void erase(std::size_t i) {
    const std::size_t last = size() - 1;
    for (int d = 0; d < DIM; ++d) {
      x[d][i] = x[d][last];
      x[d].pop_back();
    }
    for (int c = 0; c < 3; ++c) {
      u[c][i] = u[c][last];
      u[c].pop_back();
    }
    w[i] = w[last];
    w.pop_back();
  }
};

template <int DIM>
class ParticleContainer {
public:
  ParticleContainer() = default;

  ParticleContainer(Species species, const mrpic::BoxArray<DIM>& ba)
      : m_species(std::move(species)), m_ba(ba), m_tiles(ba.size()) {}

  const Species& species() const { return m_species; }
  const mrpic::BoxArray<DIM>& box_array() const { return m_ba; }
  int num_tiles() const { return static_cast<int>(m_tiles.size()); }
  ParticleTile<DIM>& tile(int i) { return m_tiles[i]; }
  const ParticleTile<DIM>& tile(int i) const { return m_tiles[i]; }

  std::int64_t total_particles() const {
    std::int64_t n = 0;
    for (const auto& t : m_tiles) { n += static_cast<std::int64_t>(t.size()); }
    return n;
  }

  // Live SoA bytes over all tiles (see ParticleTile::byte_footprint).
  std::int64_t byte_footprint() const {
    std::int64_t n = 0;
    for (const auto& t : m_tiles) { n += t.byte_footprint(); }
    return n;
  }

  // Sum of macroparticle charge q*w [C].
  Real total_charge() const {
    Real s = 0;
    for (const auto& t : m_tiles) {
      for (Real wi : t.w) { s += wi; }
    }
    return s * m_species.charge;
  }

  // Total relativistic kinetic energy sum w (gamma-1) m c^2 [J].
  Real kinetic_energy() const;

  // Largest Lorentz factor of any particle (1 when the container is empty).
  Real max_gamma() const;

  // Add one particle; it is placed in the tile whose box contains its cell.
  // Returns false (dropping the particle) if the position is outside every
  // box of the level.
  bool add_particle(const mrpic::Geometry<DIM>& geom, const std::array<Real, DIM>& pos,
                    const std::array<Real, 3>& mom, Real weight);

  // Reassign particles to tiles by current position. Periodic directions
  // wrap positions; particles outside the domain otherwise are removed.
  // Returns the number of particles removed.
  std::int64_t redistribute(const mrpic::Geometry<DIM>& geom);

  // Remove all particles with position below `xmin` along direction d
  // (moving-window trailing edge). Returns number removed.
  std::int64_t remove_below(int d, Real xmin);

  // Replace the level BoxArray (regrid/load-balance): tiles are rebuilt via
  // redistribute.
  void regrid(const mrpic::Geometry<DIM>& geom, const mrpic::BoxArray<DIM>& ba);

private:
  int find_tile(const mrpic::Geometry<DIM>& geom, const std::array<Real, DIM>& pos) const;

  Species m_species;
  mrpic::BoxArray<DIM> m_ba;
  std::vector<ParticleTile<DIM>> m_tiles;
};

extern template class ParticleContainer<2>;
extern template class ParticleContainer<3>;
extern template struct ParticleTile<2>;
extern template struct ParticleTile<3>;

} // namespace mrpic::particles
