#include "src/particles/pusher.hpp"

#include <cmath>

#include "src/amr/parallel_for.hpp"

namespace mrpic::particles {

using mrpic::constants::c;

void boris_rotate(std::array<Real, 3>& u, const std::array<Real, 3>& E,
                  const std::array<Real, 3>& B, Real charge, Real mass, Real dt) {
  const Real qmdt2 = charge * dt / (2 * mass);
  // Half electric acceleration.
  Real ux = u[0] + qmdt2 * E[0];
  Real uy = u[1] + qmdt2 * E[1];
  Real uz = u[2] + qmdt2 * E[2];
  // Magnetic rotation at the mid-step gamma.
  const Real gm = std::sqrt(1 + (ux * ux + uy * uy + uz * uz) / (c * c));
  const Real tx = qmdt2 * B[0] / gm;
  const Real ty = qmdt2 * B[1] / gm;
  const Real tz = qmdt2 * B[2] / gm;
  const Real t2 = tx * tx + ty * ty + tz * tz;
  const Real sx = 2 * tx / (1 + t2);
  const Real sy = 2 * ty / (1 + t2);
  const Real sz = 2 * tz / (1 + t2);
  const Real upx = ux + uy * tz - uz * ty;
  const Real upy = uy + uz * tx - ux * tz;
  const Real upz = uz + ux * ty - uy * tx;
  ux += upy * sz - upz * sy;
  uy += upz * sx - upx * sz;
  uz += upx * sy - upy * sx;
  // Second half electric acceleration.
  u[0] = ux + qmdt2 * E[0];
  u[1] = uy + qmdt2 * E[1];
  u[2] = uz + qmdt2 * E[2];
}

namespace {

// Vay (2008) pusher: volume-preserving alternative that avoids the spurious
// force of Boris for relativistic E x B drift. Provided as an option
// (WarpX offers several pushers); Boris is the production default.
void vay_rotate(std::array<Real, 3>& u, const std::array<Real, 3>& E,
                const std::array<Real, 3>& B, Real charge, Real mass, Real dt) {
  const Real qmdt2 = charge * dt / (2 * mass);
  const Real invc2 = Real(1) / (c * c);
  // u' = u^n + q dt/m (E + v^n x B / 2)
  const Real g0 = std::sqrt(1 + (u[0] * u[0] + u[1] * u[1] + u[2] * u[2]) * invc2);
  const Real vx = u[0] / g0, vy = u[1] / g0, vz = u[2] / g0;
  const Real upx = u[0] + 2 * qmdt2 * E[0] + qmdt2 * (vy * B[2] - vz * B[1]);
  const Real upy = u[1] + 2 * qmdt2 * E[1] + qmdt2 * (vz * B[0] - vx * B[2]);
  const Real upz = u[2] + 2 * qmdt2 * E[2] + qmdt2 * (vx * B[1] - vy * B[0]);
  const Real taux = qmdt2 * B[0], tauy = qmdt2 * B[1], tauz = qmdt2 * B[2];
  const Real tau2 = taux * taux + tauy * tauy + tauz * tauz;
  const Real ust = (upx * taux + upy * tauy + upz * tauz) * invc2 * c; // u*.tau/c
  const Real gp2 = 1 + (upx * upx + upy * upy + upz * upz) * invc2;
  const Real sig = gp2 - tau2;
  const Real gnew = std::sqrt((sig + std::sqrt(sig * sig + 4 * (tau2 + ust * ust))) / 2);
  const Real tx = taux / gnew, ty = tauy / gnew, tz = tauz / gnew;
  const Real s = Real(1) / (1 + tx * tx + ty * ty + tz * tz);
  const Real ut = upx * tx + upy * ty + upz * tz;
  u[0] = s * (upx + ut * tx + upy * tz - upz * ty);
  u[1] = s * (upy + ut * ty + upz * tx - upx * tz);
  u[2] = s * (upz + ut * tz + upx * ty - upy * tx);
}

} // namespace

template <int DIM>
void push_particles(PusherKind kind, ParticleTile<DIM>& tile, const GatheredFields& f,
                    Real charge, Real mass, Real dt) {
  const std::size_t np = tile.size();
  mrpic::parallel_for(static_cast<std::int64_t>(np), [&](std::int64_t p) {
    std::array<Real, 3> u = {tile.u[0][p], tile.u[1][p], tile.u[2][p]};
    const std::array<Real, 3> E = {f.E[0][p], f.E[1][p], f.E[2][p]};
    const std::array<Real, 3> B = {f.B[0][p], f.B[1][p], f.B[2][p]};
    if (kind == PusherKind::Vay) {
      vay_rotate(u, E, B, charge, mass, dt);
    } else {
      boris_rotate(u, E, B, charge, mass, dt);
    }
    for (int cc = 0; cc < 3; ++cc) { tile.u[cc][p] = u[cc]; }
    const Real gamma = std::sqrt(1 + (u[0] * u[0] + u[1] * u[1] + u[2] * u[2]) / (c * c));
    const Real invg = 1 / gamma;
    for (int d = 0; d < DIM; ++d) { tile.x[d][p] += u[d] * invg * dt; }
  });
}

std::int64_t push_flops_per_particle() {
  // Boris: 2 half-kicks (12), gamma (9 + sqrt~4), t,s (12), two cross
  // products (18), position update (~8).
  return 63;
}

template void push_particles<2>(PusherKind, ParticleTile<2>&, const GatheredFields&, Real,
                                Real, Real);
template void push_particles<3>(PusherKind, ParticleTile<3>&, const GatheredFields&, Real,
                                Real, Real);

} // namespace mrpic::particles
