#include "src/particles/sorting.hpp"

#include <algorithm>
#include <numeric>

namespace mrpic::particles {

namespace {

template <int DIM>
std::int64_t cell_key(const ParticleTile<DIM>& tile, std::size_t p,
                      const mrpic::Geometry<DIM>& geom, const mrpic::Box<DIM>& valid) {
  mrpic::IntVect<DIM> cell;
  for (int d = 0; d < DIM; ++d) {
    int i = geom.cell_index(tile.x[d][p], d);
    i = std::clamp(i, valid.lo(d), valid.hi(d));
    cell[d] = i;
  }
  return valid.index(cell);
}

} // namespace

template <int DIM>
void sort_tile_by_cell(ParticleTile<DIM>& tile, const mrpic::Geometry<DIM>& geom,
                       const mrpic::Box<DIM>& valid) {
  const std::size_t np = tile.size();
  if (np < 2) { return; }

  const std::size_t nbins = static_cast<std::size_t>(valid.num_cells());
  std::vector<std::int64_t> keys(np);
  for (std::size_t p = 0; p < np; ++p) { keys[p] = cell_key(tile, p, geom, valid); }

  // Counting sort: histogram, exclusive scan, scatter to a permutation.
  std::vector<std::size_t> count(nbins + 1, 0);
  for (std::size_t p = 0; p < np; ++p) { ++count[keys[p] + 1]; }
  std::partial_sum(count.begin(), count.end(), count.begin());
  std::vector<std::size_t> perm(np);
  for (std::size_t p = 0; p < np; ++p) { perm[count[keys[p]]++] = p; }

  // Apply the permutation to every SoA attribute.
  auto apply = [&](std::vector<Real>& v) {
    std::vector<Real> tmp(np);
    for (std::size_t p = 0; p < np; ++p) { tmp[p] = v[perm[p]]; }
    v.swap(tmp);
  };
  for (int d = 0; d < DIM; ++d) { apply(tile.x[d]); }
  for (int cc = 0; cc < 3; ++cc) { apply(tile.u[cc]); }
  apply(tile.w);
}

template <int DIM>
bool is_sorted_by_cell(const ParticleTile<DIM>& tile, const mrpic::Geometry<DIM>& geom,
                       const mrpic::Box<DIM>& valid) {
  for (std::size_t p = 1; p < tile.size(); ++p) {
    if (cell_key(tile, p - 1, geom, valid) > cell_key(tile, p, geom, valid)) {
      return false;
    }
  }
  return true;
}

template void sort_tile_by_cell<2>(ParticleTile<2>&, const mrpic::Geometry<2>&,
                                   const mrpic::Box<2>&);
template void sort_tile_by_cell<3>(ParticleTile<3>&, const mrpic::Geometry<3>&,
                                   const mrpic::Box<3>&);
template bool is_sorted_by_cell<2>(const ParticleTile<2>&, const mrpic::Geometry<2>&,
                                   const mrpic::Box<2>&);
template bool is_sorted_by_cell<3>(const ParticleTile<3>&, const mrpic::Geometry<3>&,
                                   const mrpic::Box<3>&);

} // namespace mrpic::particles
