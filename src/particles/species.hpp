#pragma once

// Species: the physical identity of a macroparticle population (charge,
// mass, name). Macroparticles carry a weight w = number of physical
// particles represented, so the charge of one macroparticle is q*w.

#include <string>

#include "src/amr/config.hpp"

namespace mrpic::particles {

struct Species {
  std::string name;
  Real charge = 0; // [C] physical particle charge (signed)
  Real mass = 0;   // [kg]

  static Species electron(std::string name = "electrons") {
    using namespace mrpic::constants;
    return {std::move(name), -q_e, m_e};
  }
  static Species proton(std::string name = "protons") {
    using namespace mrpic::constants;
    return {std::move(name), q_e, m_p};
  }
  // Fully stripped ion with charge state z and mass number a.
  static Species ion(std::string name, int z, Real a) {
    using namespace mrpic::constants;
    return {std::move(name), z * q_e, a * m_p};
  }
};

} // namespace mrpic::particles
