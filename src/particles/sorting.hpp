#pragma once

// Particle sorting: periodic counting-sort of a tile's particles by cell
// (paper Sec. V.A.1: "grid tiling and particle sorting are used to improve
// data locality"). Sorted tiles are also a precondition for the grouped
// vectorized kernels in src/kernels.

#include "src/amr/box.hpp"
#include "src/amr/geometry.hpp"
#include "src/particles/particle_container.hpp"

namespace mrpic::particles {

// Sort particles of `tile` in cell-major (Fortran) order of the cells of
// `valid` (particles in ghost regions sort to the nearest clamped cell).
template <int DIM>
void sort_tile_by_cell(ParticleTile<DIM>& tile, const mrpic::Geometry<DIM>& geom,
                       const mrpic::Box<DIM>& valid);

// True if the tile is sorted by cell index (test/diagnostic helper).
template <int DIM>
bool is_sorted_by_cell(const ParticleTile<DIM>& tile, const mrpic::Geometry<DIM>& geom,
                       const mrpic::Box<DIM>& valid);

extern template void sort_tile_by_cell<2>(ParticleTile<2>&, const mrpic::Geometry<2>&,
                                          const mrpic::Box<2>&);
extern template void sort_tile_by_cell<3>(ParticleTile<3>&, const mrpic::Geometry<3>&,
                                          const mrpic::Box<3>&);
extern template bool is_sorted_by_cell<2>(const ParticleTile<2>&, const mrpic::Geometry<2>&,
                                          const mrpic::Box<2>&);
extern template bool is_sorted_by_cell<3>(const ParticleTile<3>&, const mrpic::Geometry<3>&,
                                          const mrpic::Box<3>&);

} // namespace mrpic::particles
