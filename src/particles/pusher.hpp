#pragma once

// Relativistic particle pushers. The default is the Boris rotation scheme
// (Boris 1970), the standard leapfrog pusher of the PIC recipe: momenta live
// at half-integer times, positions at integer times.

#include "src/amr/config.hpp"
#include "src/particles/gather.hpp"
#include "src/particles/particle_container.hpp"

namespace mrpic::particles {

enum class PusherKind { Boris, Vay };

// Advance momenta u^{n-1/2} -> u^{n+1/2} with the gathered fields at x^n,
// then positions x^n -> x^{n+1} with v = u^{n+1/2}/gamma^{n+1/2}.
template <int DIM>
void push_particles(PusherKind kind, ParticleTile<DIM>& tile, const GatheredFields& f,
                    Real charge, Real mass, Real dt);

// Momentum-only update (used by tests that need the rotation in isolation).
void boris_rotate(std::array<Real, 3>& u, const std::array<Real, 3>& E,
                  const std::array<Real, 3>& B, Real charge, Real mass, Real dt);

std::int64_t push_flops_per_particle();

extern template void push_particles<2>(PusherKind, ParticleTile<2>&, const GatheredFields&,
                                       Real, Real, Real);
extern template void push_particles<3>(PusherKind, ParticleTile<3>&, const GatheredFields&,
                                       Real, Real, Real);

} // namespace mrpic::particles
