#pragma once

// Field gathering: interpolation of the Yee-staggered E and B fields onto
// particle positions with B-spline shapes of order 1-3 (paper Fig. 3, the
// "field gathering" stage; one of the two hotspots of the PIC cycle).

#include <vector>

#include "src/amr/array4.hpp"
#include "src/amr/geometry.hpp"
#include "src/particles/particle_container.hpp"

namespace mrpic::particles {

// Per-particle gathered field buffers (SoA scratch reused across tiles).
struct GatheredFields {
  std::array<std::vector<Real>, 3> E, B;
  void resize(std::size_t n) {
    for (auto& v : E) { v.resize(n); }
    for (auto& v : B) { v.resize(n); }
  }
  std::size_t size() const { return E[0].size(); }
};

// Gather E,B (Array4 views of one fab, 3 components each) at the positions
// of every particle in `tile`. Positions must lie within the fab's valid
// region (ghost layers cover the staggered stencils).
template <int DIM>
void gather_fields(int order, const ParticleTile<DIM>& tile,
                   const mrpic::Geometry<DIM>& geom, const Array4<const Real>& E,
                   const Array4<const Real>& B, GatheredFields& out);

// FLOPs per particle of one gather at the given order/dimension.
std::int64_t gather_flops_per_particle(int order, int dim);

extern template void gather_fields<2>(int, const ParticleTile<2>&,
                                      const mrpic::Geometry<2>&, const Array4<const Real>&,
                                      const Array4<const Real>&, GatheredFields&);
extern template void gather_fields<3>(int, const ParticleTile<3>&,
                                      const mrpic::Geometry<3>&, const Array4<const Real>&,
                                      const Array4<const Real>&, GatheredFields&);

} // namespace mrpic::particles
