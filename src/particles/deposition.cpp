#include "src/particles/deposition.hpp"

#include <cmath>

#include "src/fields/yee.hpp"
#include "src/particles/shape.hpp"

namespace mrpic::particles {

using mrpic::constants::c;

namespace {

// Shape window for Esirkepov: old and new shapes on a common index range.
// A CFL-limited push moves a particle by less than one cell, so the union of
// the two supports spans at most ORDER+2 points.
template <int ORDER>
struct ShapePair {
  static constexpr int NW = ORDER + 2;
  Real S0[NW];
  Real S1[NW];
  int imin;

  void compute(Real xi_old, Real xi_new) {
    Real w0[ORDER + 1], w1[ORDER + 1];
    const int i0 = Shape<ORDER>::compute(w0, xi_old);
    const int i1 = Shape<ORDER>::compute(w1, xi_new);
    imin = std::min(i0, i1);
    for (int a = 0; a < NW; ++a) {
      S0[a] = 0;
      S1[a] = 0;
    }
    for (int a = 0; a <= ORDER; ++a) {
      S0[a + i0 - imin] = w0[a];
      S1[a + i1 - imin] = w1[a];
    }
  }
  Real ds(int a) const { return S1[a] - S0[a]; }
};

template <int ORDER>
void esirkepov_2d(const ParticleTile<2>& tile, const std::array<std::vector<Real>, 2>& x_old,
                  const mrpic::Geometry<2>& geom, const Array4<Real>& J, Real charge,
                  Real dt) {
  constexpr int NW = ORDER + 2;
  const auto lo = geom.prob_lo();
  const auto idx = geom.inv_dx();
  const Real dxv = geom.cell_size(0), dyv = geom.cell_size(1);

  for (std::size_t p = 0; p < tile.size(); ++p) {
    const Real Q = charge * tile.w[p];
    ShapePair<ORDER> sx, sy;
    sx.compute((x_old[0][p] - lo[0]) * idx[0], (tile.x[0][p] - lo[0]) * idx[0]);
    sy.compute((x_old[1][p] - lo[1]) * idx[1], (tile.x[1][p] - lo[1]) * idx[1]);

    // Jx: prefix sum along x of Wx = DSx * (S0y + DSy/2).
    const Real cx = -Q / (dyv * dt); // 2D: unit length in z
    for (int b = 0; b < NW; ++b) {
      const Real yfac = sy.S0[b] + Real(0.5) * sy.ds(b);
      Real acc = 0;
      for (int a = 0; a < NW - 1; ++a) { // last column sums to zero
        acc += sx.ds(a) * yfac;
        J(sx.imin + a, sy.imin + b, 0, fields::X) += cx * acc;
      }
    }
    // Jy: prefix sum along y of Wy = DSy * (S0x + DSx/2).
    const Real cy = -Q / (dxv * dt);
    for (int a = 0; a < NW; ++a) {
      const Real xfac = sx.S0[a] + Real(0.5) * sx.ds(a);
      Real acc = 0;
      for (int b = 0; b < NW - 1; ++b) {
        acc += sy.ds(b) * xfac;
        J(sx.imin + a, sy.imin + b, 0, fields::Y) += cy * acc;
      }
    }
    // Jz (out-of-plane): direct deposition with the time-averaged shape
    // bracket Wz = S0x S0y + (DSx S0y + S0x DSy)/2 + DSx DSy / 3.
    const Real u2 = tile.u[0][p] * tile.u[0][p] + tile.u[1][p] * tile.u[1][p] +
                    tile.u[2][p] * tile.u[2][p];
    const Real vz = tile.u[2][p] / std::sqrt(1 + u2 / (c * c));
    const Real cz = Q * vz / (dxv * dyv);
    for (int b = 0; b < NW; ++b) {
      for (int a = 0; a < NW; ++a) {
        const Real wz = sx.S0[a] * sy.S0[b] +
                        Real(0.5) * (sx.ds(a) * sy.S0[b] + sx.S0[a] * sy.ds(b)) +
                        sx.ds(a) * sy.ds(b) / 3;
        J(sx.imin + a, sy.imin + b, 0, fields::Z) += cz * wz;
      }
    }
  }
}

template <int ORDER>
void esirkepov_3d(const ParticleTile<3>& tile, const std::array<std::vector<Real>, 3>& x_old,
                  const mrpic::Geometry<3>& geom, const Array4<Real>& J, Real charge,
                  Real dt) {
  constexpr int NW = ORDER + 2;
  const auto lo = geom.prob_lo();
  const auto idx = geom.inv_dx();
  const Real dxv = geom.cell_size(0), dyv = geom.cell_size(1), dzv = geom.cell_size(2);

  for (std::size_t p = 0; p < tile.size(); ++p) {
    const Real Q = charge * tile.w[p];
    ShapePair<ORDER> sx, sy, sz;
    sx.compute((x_old[0][p] - lo[0]) * idx[0], (tile.x[0][p] - lo[0]) * idx[0]);
    sy.compute((x_old[1][p] - lo[1]) * idx[1], (tile.x[1][p] - lo[1]) * idx[1]);
    sz.compute((x_old[2][p] - lo[2]) * idx[2], (tile.x[2][p] - lo[2]) * idx[2]);

    // Esirkepov bracket for direction d1 given the two transverse shapes:
    // W = DS1 * (S0a S0b + (DSa S0b + S0a DSb)/2 + DSa DSb / 3).
    auto bracket = [](const auto& sa, const auto& sb, int a, int b) {
      return sa.S0[a] * sb.S0[b] +
             Real(0.5) * (sa.ds(a) * sb.S0[b] + sa.S0[a] * sb.ds(b)) +
             sa.ds(a) * sb.ds(b) / 3;
    };

    const Real cx = -Q / (dyv * dzv * dt);
    for (int cc = 0; cc < NW; ++cc) {
      for (int b = 0; b < NW; ++b) {
        const Real t = bracket(sy, sz, b, cc);
        Real acc = 0;
        for (int a = 0; a < NW - 1; ++a) {
          acc += sx.ds(a) * t;
          J(sx.imin + a, sy.imin + b, sz.imin + cc, fields::X) += cx * acc;
        }
      }
    }
    const Real cy = -Q / (dxv * dzv * dt);
    for (int cc = 0; cc < NW; ++cc) {
      for (int a = 0; a < NW; ++a) {
        const Real t = bracket(sx, sz, a, cc);
        Real acc = 0;
        for (int b = 0; b < NW - 1; ++b) {
          acc += sy.ds(b) * t;
          J(sx.imin + a, sy.imin + b, sz.imin + cc, fields::Y) += cy * acc;
        }
      }
    }
    const Real cz = -Q / (dxv * dyv * dt);
    for (int b = 0; b < NW; ++b) {
      for (int a = 0; a < NW; ++a) {
        const Real t = bracket(sx, sy, a, b);
        Real acc = 0;
        for (int cc = 0; cc < NW - 1; ++cc) {
          acc += sz.ds(cc) * t;
          J(sx.imin + a, sy.imin + b, sz.imin + cc, fields::Z) += cz * acc;
        }
      }
    }
  }
}

// Direct (non-charge-conserving) deposition: J += q w v S(x_mid) at the
// Yee-staggered component locations.
template <int DIM, int ORDER>
void direct_deposit(const ParticleTile<DIM>& tile,
                    const std::array<std::vector<Real>, DIM>& x_old,
                    const mrpic::Geometry<DIM>& geom, const Array4<Real>& J, Real charge) {
  const auto lo = geom.prob_lo();
  const auto idx = geom.inv_dx();
  Real dv = 1;
  for (int d = 0; d < DIM; ++d) { dv *= geom.cell_size(d); }

  for (std::size_t p = 0; p < tile.size(); ++p) {
    const Real u2 = tile.u[0][p] * tile.u[0][p] + tile.u[1][p] * tile.u[1][p] +
                    tile.u[2][p] * tile.u[2][p];
    const Real invg = 1 / std::sqrt(1 + u2 / (c * c));
    const Real Qv = charge * tile.w[p] / dv;

    Real xi_mid[DIM];
    for (int d = 0; d < DIM; ++d) {
      xi_mid[d] = (Real(0.5) * (x_old[d][p] + tile.x[d][p]) - lo[d]) * idx[d];
    }

    for (int comp = 0; comp < 3; ++comp) {
      const auto& stag = fields::j_stag3[comp];
      Real w[DIM][ORDER + 1];
      int start[DIM];
      for (int d = 0; d < DIM; ++d) {
        start[d] = Shape<ORDER>::compute(w[d], xi_mid[d] - Real(0.5) * stag[d]);
      }
      const Real amp = Qv * tile.u[comp][p] * invg;
      if constexpr (DIM == 2) {
        for (int b = 0; b <= ORDER; ++b) {
          for (int a = 0; a <= ORDER; ++a) {
            J(start[0] + a, start[1] + b, 0, comp) += amp * w[0][a] * w[1][b];
          }
        }
      } else {
        for (int cc = 0; cc <= ORDER; ++cc) {
          for (int b = 0; b <= ORDER; ++b) {
            for (int a = 0; a <= ORDER; ++a) {
              J(start[0] + a, start[1] + b, start[2] + cc, comp) +=
                  amp * w[0][a] * w[1][b] * w[2][cc];
            }
          }
        }
      }
    }
  }
}

template <int DIM, int ORDER>
void charge_impl(const ParticleTile<DIM>& tile, const mrpic::Geometry<DIM>& geom,
                 const Array4<Real>& rho, Real charge) {
  const auto lo = geom.prob_lo();
  const auto idx = geom.inv_dx();
  Real dv = 1;
  for (int d = 0; d < DIM; ++d) { dv *= geom.cell_size(d); }

  for (std::size_t p = 0; p < tile.size(); ++p) {
    const Real Q = charge * tile.w[p] / dv;
    Real w[DIM][ORDER + 1];
    int start[DIM];
    for (int d = 0; d < DIM; ++d) {
      start[d] = Shape<ORDER>::compute(w[d], (tile.x[d][p] - lo[d]) * idx[d]);
    }
    if constexpr (DIM == 2) {
      for (int b = 0; b <= ORDER; ++b) {
        for (int a = 0; a <= ORDER; ++a) {
          rho(start[0] + a, start[1] + b, 0, 0) += Q * w[0][a] * w[1][b];
        }
      }
    } else {
      for (int cc = 0; cc <= ORDER; ++cc) {
        for (int b = 0; b <= ORDER; ++b) {
          for (int a = 0; a <= ORDER; ++a) {
            rho(start[0] + a, start[1] + b, start[2] + cc, 0) +=
                Q * w[0][a] * w[1][b] * w[2][cc];
          }
        }
      }
    }
  }
}

} // namespace

template <int DIM>
void deposit_current(DepositionKind kind, int order, const ParticleTile<DIM>& tile,
                     const std::array<std::vector<Real>, DIM>& x_old,
                     const mrpic::Geometry<DIM>& geom, const Array4<Real>& J, Real charge,
                     Real dt) {
  if (kind == DepositionKind::Esirkepov) {
    if constexpr (DIM == 2) {
      switch (order) {
        case 1: esirkepov_2d<1>(tile, x_old, geom, J, charge, dt); break;
        case 2: esirkepov_2d<2>(tile, x_old, geom, J, charge, dt); break;
        default: esirkepov_2d<3>(tile, x_old, geom, J, charge, dt); break;
      }
    } else {
      switch (order) {
        case 1: esirkepov_3d<1>(tile, x_old, geom, J, charge, dt); break;
        case 2: esirkepov_3d<2>(tile, x_old, geom, J, charge, dt); break;
        default: esirkepov_3d<3>(tile, x_old, geom, J, charge, dt); break;
      }
    }
  } else {
    switch (order) {
      case 1: direct_deposit<DIM, 1>(tile, x_old, geom, J, charge); break;
      case 2: direct_deposit<DIM, 2>(tile, x_old, geom, J, charge); break;
      default: direct_deposit<DIM, 3>(tile, x_old, geom, J, charge); break;
    }
  }
}

template <int DIM>
void deposit_charge(int order, const ParticleTile<DIM>& tile, const mrpic::Geometry<DIM>& geom,
                    const Array4<Real>& rho, Real charge) {
  switch (order) {
    case 1: charge_impl<DIM, 1>(tile, geom, rho, charge); break;
    case 2: charge_impl<DIM, 2>(tile, geom, rho, charge); break;
    default: charge_impl<DIM, 3>(tile, geom, rho, charge); break;
  }
}

std::int64_t deposit_flops_per_particle(int order, int dim) {
  const int nw = order + 2;
  // Shape pairs: 2 evaluations per dim; brackets + prefix sums per window
  // point; see esirkepov_*d above.
  const std::int64_t shape_cost = 2 * dim * (order == 1 ? 2 : order == 2 ? 9 : 16);
  if (dim == 2) { return shape_cost + 2 * nw * (2 + 3 * (nw - 1)) + nw * nw * 9; }
  return shape_cost + 3 * nw * nw * (8 + 3 * (nw - 1));
}

template void deposit_current<2>(DepositionKind, int, const ParticleTile<2>&,
                                 const std::array<std::vector<Real>, 2>&,
                                 const mrpic::Geometry<2>&, const Array4<Real>&, Real, Real);
template void deposit_current<3>(DepositionKind, int, const ParticleTile<3>&,
                                 const std::array<std::vector<Real>, 3>&,
                                 const mrpic::Geometry<3>&, const Array4<Real>&, Real, Real);
template void deposit_charge<2>(int, const ParticleTile<2>&, const mrpic::Geometry<2>&,
                                const Array4<Real>&, Real);
template void deposit_charge<3>(int, const ParticleTile<3>&, const mrpic::Geometry<3>&,
                                const Array4<Real>&, Real);

} // namespace mrpic::particles
