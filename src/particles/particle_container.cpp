#include "src/particles/particle_container.hpp"

#include <algorithm>
#include <cmath>

namespace mrpic::particles {

using mrpic::constants::c;

template <int DIM>
Real ParticleContainer<DIM>::kinetic_energy() const {
  Real s = 0;
  const Real mc2 = m_species.mass * c * c;
  for (const auto& t : m_tiles) {
    for (std::size_t i = 0; i < t.size(); ++i) {
      const Real u2 = t.u[0][i] * t.u[0][i] + t.u[1][i] * t.u[1][i] + t.u[2][i] * t.u[2][i];
      const Real gamma = std::sqrt(1 + u2 / (c * c));
      s += t.w[i] * (gamma - 1) * mc2;
    }
  }
  return s;
}

template <int DIM>
Real ParticleContainer<DIM>::max_gamma() const {
  Real u2_max = 0;
  for (const auto& t : m_tiles) {
    for (std::size_t i = 0; i < t.size(); ++i) {
      const Real u2 = t.u[0][i] * t.u[0][i] + t.u[1][i] * t.u[1][i] + t.u[2][i] * t.u[2][i];
      u2_max = std::max(u2_max, u2);
    }
  }
  return std::sqrt(1 + u2_max / (c * c));
}

template <int DIM>
int ParticleContainer<DIM>::find_tile(const mrpic::Geometry<DIM>& geom,
                                      const std::array<Real, DIM>& pos) const {
  mrpic::IntVect<DIM> cell;
  for (int d = 0; d < DIM; ++d) { cell[d] = geom.cell_index(pos[d], d); }
  int which = -1;
  if (m_ba.contains(cell, &which)) { return which; }
  return -1;
}

template <int DIM>
bool ParticleContainer<DIM>::add_particle(const mrpic::Geometry<DIM>& geom,
                                          const std::array<Real, DIM>& pos,
                                          const std::array<Real, 3>& mom, Real weight) {
  const int t = find_tile(geom, pos);
  if (t < 0) { return false; }
  m_tiles[t].push_back(pos, mom, weight);
  return true;
}

template <int DIM>
std::int64_t ParticleContainer<DIM>::redistribute(const mrpic::Geometry<DIM>& geom) {
  std::int64_t removed = 0;
  for (int ti = 0; ti < num_tiles(); ++ti) {
    auto& t = m_tiles[ti];
    const auto& home = m_ba[ti];
    std::size_t i = 0;
    while (i < t.size()) {
      // Wrap periodic directions first.
      for (int d = 0; d < DIM; ++d) {
        if (!geom.is_periodic(d)) { continue; }
        const Real L = geom.prob_hi()[d] - geom.prob_lo()[d];
        Real& x = t.x[d][i];
        while (x < geom.prob_lo()[d]) { x += L; }
        while (x >= geom.prob_hi()[d]) { x -= L; }
      }
      mrpic::IntVect<DIM> cell;
      for (int d = 0; d < DIM; ++d) { cell[d] = geom.cell_index(t.x[d][i], d); }
      if (home.contains(cell)) {
        ++i;
        continue;
      }
      int dest = -1;
      if (m_ba.contains(cell, &dest) && dest != ti) {
        t.transfer_to(i, m_tiles[dest]); // swap-with-last: re-check index i
      } else if (dest == ti) {
        ++i;
      } else {
        t.erase(i);
        ++removed;
      }
    }
  }
  return removed;
}

template <int DIM>
std::int64_t ParticleContainer<DIM>::remove_below(int d, Real xmin) {
  std::int64_t removed = 0;
  for (auto& t : m_tiles) {
    std::size_t i = 0;
    while (i < t.size()) {
      if (t.x[d][i] < xmin) {
        t.erase(i);
        ++removed;
      } else {
        ++i;
      }
    }
  }
  return removed;
}

template <int DIM>
void ParticleContainer<DIM>::regrid(const mrpic::Geometry<DIM>& geom,
                                    const mrpic::BoxArray<DIM>& ba) {
  std::vector<ParticleTile<DIM>> old_tiles = std::move(m_tiles);
  m_ba = ba;
  m_tiles.assign(ba.size(), {});
  for (auto& t : old_tiles) {
    for (std::size_t i = 0; i < t.size(); ++i) {
      std::array<Real, DIM> pos;
      std::array<Real, 3> mom;
      for (int d = 0; d < DIM; ++d) { pos[d] = t.x[d][i]; }
      for (int cc = 0; cc < 3; ++cc) { mom[cc] = t.u[cc][i]; }
      add_particle(geom, pos, mom, t.w[i]);
    }
  }
}

template class ParticleContainer<2>;
template class ParticleContainer<3>;
template struct ParticleTile<2>;
template struct ParticleTile<3>;

} // namespace mrpic::particles
