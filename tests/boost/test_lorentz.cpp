#include <gtest/gtest.h>

#include <cmath>

#include "src/boost/lorentz.hpp"

namespace mrpic::boost {
namespace {

using mrpic::constants::c;

TEST(BoostedFrame, GammaBetaRelation) {
  BoostedFrame f(10.0);
  EXPECT_DOUBLE_EQ(f.gamma(), 10.0);
  EXPECT_NEAR(f.beta(), std::sqrt(1 - 0.01), 1e-15);
  BoostedFrame rest(1.0);
  EXPECT_DOUBLE_EQ(rest.beta(), 0.0);
}

TEST(BoostedFrame, EventRoundTrip) {
  BoostedFrame f(5.0);
  const Real t = 3.3e-13, x = 7.7e-5;
  const auto bp = f.event_to_boosted(t, x);
  const auto back = f.event_to_lab(bp[0], bp[1]);
  EXPECT_NEAR(back[0], t, std::abs(t) * 1e-12);
  EXPECT_NEAR(back[1], x, std::abs(x) * 1e-12);
}

TEST(BoostedFrame, IntervalInvariant) {
  BoostedFrame f(7.0);
  const Real t = 1e-13, x = 2e-5;
  const auto bp = f.event_to_boosted(t, x);
  const Real s_lab = c * c * t * t - x * x;
  const Real s_boost = c * c * bp[0] * bp[0] - bp[1] * bp[1];
  EXPECT_NEAR(s_boost, s_lab, std::abs(s_lab) * 1e-10);
}

TEST(BoostedFrame, MomentumRoundTripAndRestFrame) {
  BoostedFrame f(4.0);
  const std::array<Real, 3> u = {2 * c, -0.5 * c, 0.1 * c};
  const auto ub = f.momentum_to_boosted(u);
  const auto back = f.momentum_to_lab(ub);
  for (int cc = 0; cc < 3; ++cc) { EXPECT_NEAR(back[cc], u[cc], c * 1e-12); }

  // A particle co-moving with the boost is at rest in the boosted frame:
  // u_x = gamma beta c (so that v = beta c).
  const std::array<Real, 3> comoving = {f.gamma() * f.beta() * c, 0, 0};
  const auto rest = f.momentum_to_boosted(comoving);
  EXPECT_NEAR(rest[0], 0.0, c * 1e-10);
}

TEST(BoostedFrame, PlasmaInitialization) {
  BoostedFrame f(10.0);
  EXPECT_DOUBLE_EQ(f.plasma_density_boosted(1e24), 1e25);
  // The drift makes lab-static plasma stream backward at beta c.
  const std::array<Real, 3> drift = {f.plasma_drift_ux(), 0, 0};
  const Real gp = std::sqrt(1 + drift[0] * drift[0] / (c * c));
  EXPECT_NEAR(drift[0] / gp, -f.beta() * c, 1e-3);
  // Transforming the drift back to the lab gives a particle at rest.
  const auto lab = f.momentum_to_lab(drift);
  EXPECT_NEAR(lab[0], 0.0, c * 1e-9);
}

TEST(BoostedFrame, FieldInvariants) {
  BoostedFrame f(6.0);
  std::array<Real, 3> E = {1e9, -3e9, 2e9};
  std::array<Real, 3> B = {0.5, 2.0, -1.0};
  const Real i1 = invariant_e2_c2b2(E, B);
  const Real i2 = invariant_e_dot_b(E, B);
  f.fields_to_boosted(E, B);
  EXPECT_NEAR(invariant_e2_c2b2(E, B) / i1, 1.0, 1e-10);
  EXPECT_NEAR(invariant_e_dot_b(E, B) / i2, 1.0, 1e-10);
  // Round trip.
  f.fields_to_lab(E, B);
  EXPECT_NEAR(E[1], -3e9, 1.0);
  EXPECT_NEAR(B[2], -1.0, 1e-9);
}

TEST(BoostedFrame, PlaneWaveTransformsAsDopplerShift) {
  // For a plane wave along +x (E_y, B_z = E_y/c), the boosted amplitude
  // scales as gamma(1 - beta) = the relativistic Doppler factor.
  BoostedFrame f(3.0);
  std::array<Real, 3> E = {0, 1e10, 0};
  std::array<Real, 3> B = {0, 0, 1e10 / c};
  f.fields_to_boosted(E, B);
  const Real doppler = f.gamma() * (1 - f.beta());
  EXPECT_NEAR(E[1], 1e10 * doppler, 1e10 * doppler * 1e-12);
  EXPECT_NEAR(B[2], 1e10 / c * doppler, 1e10 / c * doppler * 1e-12);
  // It remains a valid vacuum plane wave: E = c B.
  EXPECT_NEAR(E[1], c * B[2], E[1] * 1e-12);
}

TEST(BoostedFrame, LaserRedshift) {
  BoostedFrame f(5.0);
  const Real lam = 0.8e-6;
  const Real factor = f.gamma() * (1 + f.beta());
  EXPECT_NEAR(f.copropagating_wavelength(lam), lam * factor, 1e-18);
  EXPECT_NEAR(f.copropagating_duration(30e-15), 30e-15 * factor, 1e-25);
}

TEST(BoostedFrame, SpeedupEstimateMatchesVay2007Scaling) {
  // ~(1+beta)^2 gamma^2 -> 4 gamma^2 for ultra-relativistic boosts: the
  // "several orders of magnitude" of paper Sec. VIII.B.
  EXPECT_NEAR(BoostedFrame::speedup_estimate(1.0), 1.0, 1e-12);
  const Real s10 = BoostedFrame::speedup_estimate(10.0);
  EXPECT_GT(s10, 390.0);
  EXPECT_LT(s10, 400.0);
  EXPECT_GT(BoostedFrame::speedup_estimate(100.0), 3.9e4);
}

TEST(BoostedFrame, RoundTripIdentityAcrossGammas) {
  // lab -> boosted -> lab must be the identity (to rounding) for events,
  // momenta and field pairs, across the gamma range the scenarios use.
  for (const Real g : {1.0, 1.5, 2.0, 4.0, 10.0, 30.0}) {
    SCOPED_TRACE("gamma = " + std::to_string(g));
    BoostedFrame f(g);

    const Real t = 4.2e-14, x = -1.3e-5;
    const auto ev = f.event_to_boosted(t, x);
    const auto ev_back = f.event_to_lab(ev[0], ev[1]);
    EXPECT_NEAR(ev_back[0], t, std::abs(t) * g * 1e-12);
    EXPECT_NEAR(ev_back[1], x, std::abs(x) * g * 1e-12);

    const std::array<Real, 3> u = {0.7 * c, -1.9 * c, 3.1 * c};
    const auto u_back = f.momentum_to_lab(f.momentum_to_boosted(u));
    for (int cc = 0; cc < 3; ++cc) { EXPECT_NEAR(u_back[cc], u[cc], c * g * 1e-12); }

    std::array<Real, 3> E = {1.1e9, -2.2e9, 3.3e9};
    std::array<Real, 3> B = {-0.4, 1.6, 2.5};
    const auto E0 = E;
    const auto B0 = B;
    f.fields_to_boosted(E, B);
    f.fields_to_lab(E, B);
    for (int cc = 0; cc < 3; ++cc) {
      EXPECT_NEAR(E[cc], E0[cc], std::abs(E0[1]) * g * g * 1e-12);
      EXPECT_NEAR(B[cc], B0[cc], std::abs(B0[2]) * g * g * 1e-12);
    }
  }
}

TEST(BoostedFrame, SpeedupEstimateMatchesClosedForm) {
  // The estimate IS the Vay-2007 closed form (1 + beta)^2 gamma^2.
  for (const Real g : {1.0, 2.0, 4.0, 7.5, 20.0, 100.0}) {
    SCOPED_TRACE("gamma = " + std::to_string(g));
    const Real beta = std::sqrt(1.0 - 1.0 / (g * g));
    const Real closed_form = (1 + beta) * (1 + beta) * g * g;
    EXPECT_NEAR(BoostedFrame::speedup_estimate(g), closed_form,
                closed_form * 1e-14);
  }
  // gamma = 2: beta = sqrt(3)/2, speedup = (1 + sqrt(3)/2)^2 * 4 exactly.
  const Real b2 = std::sqrt(3.0) / 2.0;
  EXPECT_DOUBLE_EQ(BoostedFrame::speedup_estimate(2.0), (1 + b2) * (1 + b2) * 4.0);
}

} // namespace
} // namespace mrpic::boost
