#include <gtest/gtest.h>

#include <cmath>

#include "src/laser/laser_antenna.hpp"

namespace mrpic::laser {
namespace {

using namespace mrpic::constants;

LaserConfig base_config() {
  LaserConfig cfg;
  cfg.wavelength = 0.8e-6;
  cfg.a0 = 2.0;
  cfg.waist = 3e-6;
  cfg.duration = 10e-15;
  cfg.t_peak = 30e-15;
  cfg.x_antenna = 1e-6;
  cfg.center = {8e-6, 0};
  return cfg;
}

TEST(LaserConfig, PeakFieldFromA0) {
  auto cfg = base_config();
  // a0 = e E0 / (m_e omega c) -> invert.
  const Real omega = 2 * pi * c / cfg.wavelength;
  EXPECT_NEAR(cfg.peak_field(), 2.0 * m_e * omega * c / q_e, 1e3);
  // Known scale: a0 = 1 at 0.8 um is ~4.0e12 V/m.
  cfg.a0 = 1.0;
  EXPECT_NEAR(cfg.peak_field() / 4.0e12, 1.0, 0.02);
}

TEST(LaserAntenna, TemporalEnvelope) {
  const auto cfg = base_config();
  LaserAntenna<2> ant(cfg);
  // Amplitude at peak time (max over a quarter period to dodge the phase).
  Real peak = 0;
  const Real period = cfg.wavelength / c;
  for (int s = 0; s < 50; ++s) {
    peak = std::max(peak, std::abs(ant.field_at(0, 0, cfg.t_peak + s * period / 50)));
  }
  EXPECT_NEAR(peak, cfg.peak_field(), cfg.peak_field() * 0.05);
  // Far from the peak the envelope kills the field.
  EXPECT_LT(std::abs(ant.field_at(0, 0, cfg.t_peak + 6 * cfg.duration)),
            cfg.peak_field() * 1e-6);
  EXPECT_FALSE(ant.active(cfg.t_peak + 6 * cfg.duration));
  EXPECT_TRUE(ant.active(cfg.t_peak));
}

TEST(LaserAntenna, TransverseGaussianProfile) {
  const auto cfg = base_config();
  LaserAntenna<2> ant(cfg);
  const Real t = cfg.t_peak + cfg.wavelength / c / 4; // near a field crest
  const Real on_axis = std::abs(ant.field_at(0, 0, t));
  const Real at_waist = std::abs(ant.field_at(cfg.waist, 0, t));
  ASSERT_GT(on_axis, 0.0);
  EXPECT_NEAR(at_waist / on_axis, std::exp(-1.0), 0.05);
}

TEST(LaserAntenna, FocusingWidensAntennaSpot) {
  auto cfg = base_config();
  LaserAntenna<2> collimated(cfg);
  cfg.focal_distance = 30e-6; // focus 30 um ahead
  LaserAntenna<2> focusing(cfg);
  const Real t = cfg.t_peak + cfg.wavelength / c / 4;
  // Emitting a converging beam: the spot at the antenna is wider than w0.
  const Real r = cfg.waist;
  const Real ratio_foc = std::abs(focusing.field_at(r, 0, t)) /
                         std::abs(focusing.field_at(0, 0, t));
  const Real ratio_col = std::abs(collimated.field_at(r, 0, t)) /
                         std::abs(collimated.field_at(0, 0, t));
  EXPECT_GT(ratio_foc, ratio_col);
}

TEST(LaserAntenna, DepositsOnSinglePlane) {
  const auto cfg = base_config();
  LaserAntenna<2> ant(cfg);
  const mrpic::Geometry<2> geom(
      mrpic::Box2(mrpic::IntVect2(0, 0), mrpic::IntVect2(63, 63)), mrpic::RealVect2(0, 0),
      mrpic::RealVect2(16e-6, 16e-6), {false, false});
  fields::FieldSet<2> f(geom, mrpic::BoxArray<2>::decompose(geom.domain(), 32));
  // Near a field crest (the carrier is zero exactly at t_peak).
  ant.deposit_current(f, cfg.t_peak + cfg.wavelength / (4 * c));

  const int i0 = geom.cell_index(cfg.x_antenna, 0);
  Real off_plane = 0, on_plane = 0;
  for (int m = 0; m < f.J().num_fabs(); ++m) {
    const auto a = f.J().const_array(m);
    const auto& vb = f.J().valid_box(m);
    for (int j = vb.lo(1); j <= vb.hi(1); ++j) {
      for (int i = vb.lo(0); i <= vb.hi(0); ++i) {
        const Real v = std::abs(a(i, j, 0, 2));
        if (i == i0) {
          on_plane = std::max(on_plane, v);
        } else {
          off_plane = std::max(off_plane, v);
        }
      }
    }
  }
  EXPECT_GT(on_plane, 0.0);
  EXPECT_EQ(off_plane, 0.0);
}

TEST(LaserAntenna, PolarizationSelectsComponent) {
  auto cfg = base_config();
  cfg.polarization = 1; // Ey
  LaserAntenna<2> ant(cfg);
  const mrpic::Geometry<2> geom(
      mrpic::Box2(mrpic::IntVect2(0, 0), mrpic::IntVect2(31, 31)), mrpic::RealVect2(0, 0),
      mrpic::RealVect2(16e-6, 16e-6), {false, false});
  fields::FieldSet<2> f(geom, mrpic::BoxArray<2>(geom.domain()));
  ant.deposit_current(f, cfg.t_peak + cfg.wavelength / (4 * c));
  EXPECT_GT(f.J().max_abs(1), 0.0);
  EXPECT_EQ(f.J().max_abs(2), 0.0);
}

TEST(LaserAntenna, InactiveOutsideDomain) {
  auto cfg = base_config();
  cfg.x_antenna = -5e-6; // left of the domain
  LaserAntenna<2> ant(cfg);
  const mrpic::Geometry<2> geom(
      mrpic::Box2(mrpic::IntVect2(0, 0), mrpic::IntVect2(31, 31)), mrpic::RealVect2(0, 0),
      mrpic::RealVect2(16e-6, 16e-6), {false, false});
  fields::FieldSet<2> f(geom, mrpic::BoxArray<2>(geom.domain()));
  ant.deposit_current(f, cfg.t_peak);
  EXPECT_EQ(f.J().max_abs(2), 0.0);
}

} // namespace
} // namespace mrpic::laser
