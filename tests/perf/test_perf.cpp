#include <gtest/gtest.h>

#include <cmath>

#include "src/perf/flop_counter.hpp"
#include "src/perf/fom.hpp"
#include "src/perf/machine.hpp"
#include "src/perf/scaling_model.hpp"

namespace mrpic::perf {
namespace {

TEST(Machine, CatalogueMatchesPaperTableII) {
  const auto& cat = catalogue();
  ASSERT_EQ(cat.size(), 4u);
  const auto& frontier = machine_by_name("Frontier");
  EXPECT_EQ(frontier.device, "MI250X");
  EXPECT_DOUBLE_EQ(frontier.dp_tflops_device, 47.9);
  EXPECT_DOUBLE_EQ(frontier.sp_tflops_device, 95.7);
  EXPECT_DOUBLE_EQ(frontier.tbyte_s_device, 3.3);
  EXPECT_LT(frontier.hpcg_pflops, 0); // "not yet available"

  const auto& fugaku = machine_by_name("Fugaku");
  EXPECT_DOUBLE_EQ(fugaku.dp_tflops_device, 3.38);
  EXPECT_DOUBLE_EQ(fugaku.hpcg_pflops, 16.0);
  EXPECT_EQ(fugaku.total_nodes, 158976);

  EXPECT_DOUBLE_EQ(machine_by_name("Summit").hpcg_pflops, 2.93);
  EXPECT_DOUBLE_EQ(machine_by_name("Perlmutter").tbyte_s_device, 1.6);
  EXPECT_THROW(machine_by_name("Aurora"), std::invalid_argument);
}

TEST(WeakScalingModel, HitsCalibrationAnchors) {
  for (const auto& m : catalogue()) {
    const auto model = WeakScalingModel::for_machine(m);
    EXPECT_NEAR(model.efficiency(m.weak.nodes_early), m.weak.eff_early, 1e-9) << m.name;
    EXPECT_NEAR(model.efficiency(m.weak.nodes_full), m.weak.eff_full, 1e-9) << m.name;
  }
}

TEST(WeakScalingModel, MonotoneDecreasingFromOne) {
  const auto model = WeakScalingModel::for_machine(machine_by_name("Summit"));
  EXPECT_DOUBLE_EQ(model.efficiency(1), 1.0);
  double prev = 1.0;
  for (double n : {2.0, 8.0, 64.0, 512.0, 4096.0}) {
    const double e = model.efficiency(n);
    EXPECT_LT(e, prev + 1e-12);
    EXPECT_GT(e, 0.5);
    prev = e;
  }
}

TEST(WeakScalingModel, SummitEarlyDropReproduced) {
  // Paper: "a 15% loss in efficiency from 2-8 nodes" on Summit.
  const auto model = WeakScalingModel::for_machine(machine_by_name("Summit"));
  EXPECT_NEAR(model.efficiency(8), 0.85, 0.01);
  // Frontier/Fugaku stay close to ideal at small scale.
  const auto frontier = WeakScalingModel::for_machine(machine_by_name("Frontier"));
  EXPECT_GT(frontier.efficiency(64), 0.95);
}

TEST(StrongScalingModel, ThirtyPercentLossPerDecade) {
  StrongScalingModel m;
  EXPECT_DOUBLE_EQ(m.efficiency(512, 512), 1.0);
  EXPECT_NEAR(m.efficiency(5120, 512), 0.70, 0.001);
  EXPECT_GT(m.speedup(5120, 512), 1.0);
  // Speedup still grows with nodes despite the efficiency loss.
  EXPECT_GT(m.speedup(8192, 512), m.speedup(1024, 512));
}

TEST(StrongScalingModel, GranularityLimit) {
  const auto& frontier = machine_by_name("Frontier");
  // 256^3 cells per device block, 4 devices per node.
  const double cells = 8.0 * std::pow(256.0, 3) * 4.0 * 100.0;
  EXPECT_NEAR(StrongScalingModel::max_nodes(frontier, cells), 800.0, 1e-6);
}

TEST(StepTimeModel, MemoryBoundScaling) {
  StepTimeModel st;
  const auto& summit = machine_by_name("Summit");
  const double t1 = st.node_seconds(summit, 2e8, 2e8);
  // Doubling the work doubles the time; faster memory shortens it.
  EXPECT_NEAR(st.node_seconds(summit, 4e8, 4e8) / t1, 2.0, 1e-9);
  const auto& frontier = machine_by_name("Frontier");
  EXPECT_LT(st.node_seconds(frontier, 2e8, 2e8), t1);
  // Summit-scale problems take O(0.1-1 s)/step, as the paper reports.
  EXPECT_GT(t1, 0.05);
  EXPECT_LT(t1, 5.0);
}

TEST(Fom, FormulaMatchesEquationOne) {
  // FOM = (0.1 Nc + 0.9 Np) / (t_step * percent).
  EXPECT_DOUBLE_EQ(figure_of_merit(1e9, 1e9, 1.0, 1.0), 1e9);
  EXPECT_DOUBLE_EQ(figure_of_merit(1e9, 0, 2.0, 0.5), 0.1 * 1e9);
  // Running on a smaller fraction of the machine raises the FOM estimate.
  EXPECT_GT(figure_of_merit(1e9, 1e9, 1.0, 0.5), figure_of_merit(1e9, 1e9, 1.0, 1.0));
}

TEST(Fom, HistoryTableShape) {
  const auto& rows = fom_history();
  ASSERT_EQ(rows.size(), 19u); // Table IV has 19 rows
  // Chronologically non-decreasing FOM envelope on Summit DP rows.
  double best_summit = 0;
  for (const auto& r : rows) {
    EXPECT_GT(r.reported_fom, 0);
    EXPECT_GT(r.cells_per_node, 0);
    EXPECT_GT(r.nodes, 0);
    if (r.machine == "Summit" && !r.mixed_precision) {
      EXPECT_GE(r.reported_fom, best_summit * 0.8); // small regressions allowed (6/21)
      best_summit = std::max(best_summit, r.reported_fom);
    }
  }
  // The final Frontier row is the highest DP FOM of the table.
  EXPECT_DOUBLE_EQ(rows.back().reported_fom, 1.1e13);
  EXPECT_EQ(rows.back().machine, "Frontier");
}

TEST(FlopCounter, AggregatesAndFmaCountsDouble) {
  FlopCounter fc;
  fc.record("gather", OpCounts{10, 5, 3, 1, 1});
  fc.record("gather", OpCounts{0, 0, 1, 0, 0});
  EXPECT_EQ(fc.kernel_flops("gather"), 10 + 5 + 2 * 4 + 1 + 1);
  fc.record("push", 100);
  EXPECT_EQ(fc.total_flops(), fc.kernel_flops("gather") + 100);
  fc.reset();
  EXPECT_EQ(fc.total_flops(), 0);
}

TEST(FlopCounter, PicStageEstimates) {
  const auto pp = pic_flops_per_particle_3d(3);
  const auto pc = pic_flops_per_cell_3d();
  EXPECT_GT(pp.flops(), 500);  // order-3 3D gather+deposit is heavy
  EXPECT_LT(pp.flops(), 20000);
  EXPECT_GT(pc.flops(), 10);
  EXPECT_LT(pc.flops(), 200);
  // Particle work dominates cell work per element (beta=0.9 vs alpha=0.1 in
  // the FOM reflects the same ratio of importance).
  EXPECT_GT(pp.flops(), pc.flops());
}

} // namespace
} // namespace mrpic::perf
