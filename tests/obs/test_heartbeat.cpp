#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/obs/heartbeat.hpp"
#include "src/obs/json.hpp"

namespace mrpic::obs {
namespace {

json::Value read_progress(const std::string& path) {
  std::ifstream is(path);
  EXPECT_TRUE(is.good());
  std::stringstream ss;
  ss << is.rdbuf();
  return json::parse(ss.str());
}

TEST(Heartbeat, WritesOnFirstUpdateAndAtCadence) {
  const std::string path = "test_progress.json";
  std::remove(path.c_str());
  HeartbeatConfig cfg;
  cfg.path = path;
  cfg.interval_steps = 5;
  ProgressHeartbeat hb(cfg, "hb-run-1");
  hb.set_totals(20, 0);

  EXPECT_TRUE(hb.update(1, 1e-16, "step"));   // first call always writes
  EXPECT_FALSE(hb.update(2, 2e-16, "step"));  // off-cadence
  EXPECT_FALSE(hb.update(3, 3e-16, "step"));
  EXPECT_FALSE(hb.update(4, 4e-16, "step"));
  EXPECT_TRUE(hb.update(5, 5e-16, "step"));   // step % 5 == 0
  EXPECT_EQ(hb.writes(), 2);

  const auto doc = read_progress(path);
  EXPECT_EQ(doc["schema"].as_string(), kProgressSchema);
  EXPECT_EQ(doc["run_id"].as_string(), "hb-run-1");
  EXPECT_EQ(doc["status"].as_string(), "running");
  EXPECT_EQ(doc["phase"].as_string(), "step");
  EXPECT_DOUBLE_EQ(doc["step"].as_number(), 5.0);
  EXPECT_DOUBLE_EQ(doc["steps_total"].as_number(), 20.0);
  EXPECT_DOUBLE_EQ(doc["fraction_done"].as_number(), 0.25);
  EXPECT_GE(doc["steps_per_s"].as_number(), 0.0);
  EXPECT_GE(doc["wall_s"].as_number(), 0.0);
  // Atomic rewrite leaves no .tmp behind.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST(Heartbeat, RateEtaAndFinalize) {
  const std::string path = "test_progress_eta.json";
  std::remove(path.c_str());
  HeartbeatConfig cfg;
  cfg.path = path;
  cfg.interval_steps = 1;
  ProgressHeartbeat hb(cfg, "hb-run-2");
  hb.set_totals(10, 0);

  for (int s = 1; s <= 5; ++s) { hb.update(s, s * 1e-16, "step"); }
  EXPECT_GT(hb.ewma_steps_per_s(), 0.0);
  EXPECT_DOUBLE_EQ(hb.fraction_done(), 0.5);
  // Halfway at a finite positive rate: the ETA is a finite positive number.
  EXPECT_TRUE(std::isfinite(hb.eta_s()));
  EXPECT_GT(hb.eta_s(), 0.0);

  for (int s = 6; s <= 10; ++s) { hb.update(s, s * 1e-16, "step"); }
  EXPECT_DOUBLE_EQ(hb.fraction_done(), 1.0);
  EXPECT_DOUBLE_EQ(hb.eta_s(), 0.0);

  EXPECT_TRUE(hb.finalize("completed", 10, 1e-15));
  const auto doc = read_progress(path);
  EXPECT_EQ(doc["status"].as_string(), "completed");
  EXPECT_EQ(doc["phase"].as_string(), "done");
  std::remove(path.c_str());
}

TEST(Heartbeat, TimeTargetBindsWhenNoStepTarget) {
  HeartbeatConfig cfg;  // empty path: in-memory only
  ProgressHeartbeat hb(cfg, "hb-run-3");
  hb.set_totals(0, 1e-14);
  EXPECT_FALSE(hb.update(1, 2.5e-15, "step"));  // no path -> never writes
  EXPECT_DOUBLE_EQ(hb.fraction_done(), 0.25);
  EXPECT_EQ(hb.writes(), 0);
}

TEST(Heartbeat, EtaUnknownUntilComputable) {
  HeartbeatConfig cfg;
  ProgressHeartbeat hb(cfg, "hb-run-4");
  hb.set_totals(100, 0);
  hb.update(1, 1e-16, "step");  // single sample: no rate yet
  EXPECT_TRUE(std::isnan(hb.eta_s()));
}

} // namespace
} // namespace mrpic::obs
