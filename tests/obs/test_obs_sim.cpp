// End-to-end wiring of the observability layer through Simulation<DIM>:
// hierarchical regions under "step", per-step metrics records, StepReport
// publication, and the acceptance check that a profiling-enabled run emits
// a trace JSON a Chrome/Perfetto loader can parse.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "src/core/simulation.hpp"
#include "src/obs/json.hpp"
#include "src/obs/trace.hpp"

namespace mrpic::core {
namespace {

SimulationConfig<2> small_config(int n = 32) {
  SimulationConfig<2> cfg;
  cfg.domain = mrpic::Box2(mrpic::IntVect2(0, 0), mrpic::IntVect2(n - 1, n - 1));
  cfg.prob_lo = mrpic::RealVect2(0, 0);
  cfg.prob_hi = mrpic::RealVect2(n * 1e-7, n * 1e-7);
  cfg.periodic = {true, true};
  cfg.max_grid_size = mrpic::IntVect2(16);
  cfg.shape_order = 2;
  return cfg;
}

// Simulation is pinned in place (the profiler/metrics members own mutexes),
// so populate an existing instance instead of returning one by value.
void add_electrons(Simulation<2>& sim) {
  plasma::InjectorConfig<2> inj;
  inj.density = plasma::uniform<2>(1e23);
  inj.ppc = mrpic::IntVect2(1, 1);
  sim.add_species(particles::Species::electron(), inj);
}

TEST(ObsSim, ProfilerNestsStagesUnderStep) {
  Simulation<2> sim(small_config());
  add_electrons(sim);
  sim.init();
  sim.run(3);
  EXPECT_EQ(sim.profiler().stats("step").count, 3);
  EXPECT_EQ(sim.profiler().stats("step/particles").count, 3);
  EXPECT_EQ(sim.profiler().stats("step/field_solve").count, 3);
  // Stages nest strictly inside the step.
  const auto step = sim.profiler().stats("step");
  const auto particles = sim.profiler().stats("step/particles");
  EXPECT_GE(step.inclusive_s, particles.inclusive_s);
  // Flat per-name totals answer the same questions without paths.
  EXPECT_EQ(sim.profiler().flat_totals().at("step").count, 3);
  EXPECT_EQ(sim.profiler().flat_totals().at("particles").count, 3);
}

TEST(ObsSim, StepReportAndMetricsPipeline) {
  Simulation<2> sim(small_config());
  add_electrons(sim);
  sim.init();
  const auto n = sim.total_particles();

  int callbacks = 0;
  std::int64_t last_step = -1;
  sim.set_step_callback([&](const obs::StepReport& r) {
    ++callbacks;
    last_step = r.step;
  });
  sim.run(4);

  EXPECT_EQ(callbacks, 4);
  EXPECT_EQ(last_step, 3);

  const auto& rep = sim.last_step_report();
  EXPECT_EQ(rep.step, 3);
  EXPECT_EQ(rep.particles_pushed, n);
  EXPECT_EQ(rep.cells_advanced, 32 * 32);
  EXPECT_GT(rep.wall_s, 0.0);
  EXPECT_GT(rep.region("particles"), 0.0);
  EXPECT_GE(rep.wall_s, rep.region("particles"));
  EXPECT_NEAR(rep.time, sim.time(), 1e-20);

  // One metrics record per step with the same counters.
  ASSERT_EQ(sim.metrics().history().size(), 4u);
  const auto& rec = sim.metrics().history().back();
  EXPECT_EQ(rec.step, 3);
  EXPECT_EQ(rec.counters.at("particles_pushed"), n);
  EXPECT_EQ(rec.counters.at("cells_advanced"), 32 * 32);
  EXPECT_GT(rec.gauges.at("step_wall_s"), 0.0);

  // And the whole history serializes/parses as JSONL.
  const std::string path = "test_obs_sim_metrics.jsonl";
  ASSERT_TRUE(sim.metrics().write_jsonl(path));
  const auto back = obs::MetricsRegistry::read_jsonl(path);
  std::remove(path.c_str());
  ASSERT_EQ(back.size(), 4u);
  EXPECT_EQ(back.back(), rec);
}

TEST(ObsSim, TracedRunEmitsLoadableChromeTrace) {
  Simulation<2> sim(small_config());
  add_electrons(sim);
  sim.profiler().set_tracing(true);
  sim.init();
  sim.run(2);

  const std::string path = "test_obs_sim_trace.json";
  ASSERT_TRUE(obs::write_chrome_trace(sim.profiler(), path));
  std::ifstream is(path);
  std::string all((std::istreambuf_iterator<char>(is)), std::istreambuf_iterator<char>());
  is.close();
  std::remove(path.c_str());

  // Re-parse: structurally what chrome://tracing / Perfetto loads.
  const auto doc = obs::json::parse(all);
  ASSERT_TRUE(doc.is_object());
  ASSERT_TRUE(doc["traceEvents"].is_array());
  const auto& events = doc["traceEvents"].as_array();
  // Metadata + >= (step + a few stages) x 2 steps.
  EXPECT_GT(events.size(), 8u);
  bool saw_step_region = false;
  for (const auto& ev : events) {
    if (ev["ph"].as_string() != "X") { continue; }
    ASSERT_TRUE(ev["args"].is_object());
    EXPECT_GE(ev["args"]["step"].as_int(), 0);
    EXPECT_LT(ev["args"]["step"].as_int(), 2);
    if (ev["name"].as_string() == "step") { saw_step_region = true; }
  }
  EXPECT_TRUE(saw_step_region);
}

TEST(ObsSim, DynamicLbPublishesImbalanceGauge) {
  auto cfg = small_config();
  cfg.dynamic_lb = true;
  cfg.lb_interval = 2;
  cfg.nranks = 4;
  Simulation<2> sim(cfg);
  plasma::InjectorConfig<2> inj;
  inj.density = plasma::slab<2>(1e24, 0.0, 0.8e-6); // imbalanced on purpose
  inj.ppc = mrpic::IntVect2(2, 2);
  sim.add_species(particles::Species::electron(), inj);
  sim.init();
  sim.run(6);
  // record_costs ran at least once, so the gauge is present and sensible.
  EXPECT_GE(sim.metrics().gauge_value("lb_cost_imbalance"), 1.0);
  if (sim.load_balancer().num_rebalances() > 0) {
    EXPECT_EQ(sim.metrics().counter_value("lb_rebalances"),
              sim.load_balancer().num_rebalances());
  }
}

} // namespace
} // namespace mrpic::core
