#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>

#include "src/obs/bench_diff.hpp"
#include "src/obs/json.hpp"

namespace mrpic::obs::benchdiff {
namespace {

json::Value J(const std::string& text) { return json::parse(text); }

TEST(BenchDiff, FlattenPathsAndArrays) {
  std::map<std::string, json::Value> flat;
  flatten(J(R"({"bench":"x","a":{"b":1.5},"arr":[{"v":2},3,"s"],"flag":true})"), "", flat);
  ASSERT_EQ(flat.size(), 6u);
  EXPECT_DOUBLE_EQ(flat.at("a.b").as_number(), 1.5);
  EXPECT_DOUBLE_EQ(flat.at("arr[0].v").as_number(), 2.0);
  EXPECT_DOUBLE_EQ(flat.at("arr[1]").as_number(), 3.0);
  EXPECT_EQ(flat.at("arr[2]").as_string(), "s");
  EXPECT_TRUE(flat.at("flag").as_bool());
  EXPECT_EQ(flat.at("bench").as_string(), "x");
}

TEST(BenchDiff, IdenticalInputsPass) {
  const auto doc = J(R"({"bench":"b","v":[{"t":1.0},{"t":2.0}]})");
  const auto report = compare(doc, doc);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.num_fail, 0);
  EXPECT_EQ(report.num_missing, 0);
  EXPECT_EQ(report.num_pass, 3);
}

TEST(BenchDiff, ToleranceGatesNumericDrift) {
  const auto base = J(R"({"bench":"b","t":100.0})");
  Options opt;
  opt.rel_tol = 0.05;
  // 4% drift passes, 6% fails.
  EXPECT_TRUE(compare(base, J(R"({"bench":"b","t":104.0})"), opt).ok());
  const auto bad = compare(base, J(R"({"bench":"b","t":106.0})"), opt);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.num_fail, 1);
  // abs_tol floors near-zero baselines.
  Options tight;
  tight.rel_tol = 0;
  tight.abs_tol = 1e-9;
  EXPECT_TRUE(compare(J(R"({"v":0.0})"), J(R"({"v":1e-10})"), tight).ok());
  EXPECT_FALSE(compare(J(R"({"v":0.0})"), J(R"({"v":1e-8})"), tight).ok());
}

TEST(BenchDiff, MissingMetricIsFailureExtraIsNot) {
  const auto base = J(R"({"a":1.0,"b":2.0})");
  const auto cur = J(R"({"a":1.0,"c":3.0})");
  const auto report = compare(base, cur);
  EXPECT_FALSE(report.ok()); // "b" vanished -> gate trips
  EXPECT_EQ(report.num_missing, 1);
  EXPECT_EQ(report.num_extra, 1); // "c" is informational only
  const auto rev = compare(J(R"({"a":1.0})"), J(R"({"a":1.0,"c":3.0})"));
  EXPECT_TRUE(rev.ok());
}

TEST(BenchDiff, IgnoreSubstringsSkipMetrics) {
  Options opt;
  opt.ignore = {"comm_s"};
  const auto report = compare(J(R"({"comm_s":1.0,"total_s":5.0})"),
                              J(R"({"comm_s":99.0,"total_s":5.0})"), opt);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.num_ignored, 1);
}

TEST(BenchDiff, StringMismatchFails) {
  const auto report =
      compare(J(R"({"bench":"weak_scaling"})"), J(R"({"bench":"kernels"})"));
  EXPECT_FALSE(report.ok());
  ASSERT_EQ(report.results.size(), 1u);
  EXPECT_FALSE(report.results[0].note.empty());
}

TEST(BenchDiff, PrintReportSummarizes) {
  const auto report = compare(J(R"({"a":1.0,"b":2.0})"), J(R"({"a":1.0,"b":9.0})"));
  std::ostringstream os;
  print_report(report, os);
  EXPECT_NE(os.str().find("FAIL"), std::string::npos);
  EXPECT_NE(os.str().find("REGRESSION"), std::string::npos);
  // Passing rows only show up in verbose mode.
  EXPECT_EQ(os.str().find("PASS"), std::string::npos);
  std::ostringstream vs;
  print_report(report, vs, /*verbose=*/true);
  EXPECT_NE(vs.str().find("PASS"), std::string::npos);
}

TEST(BenchDiff, SchemaAcceptsWellFormedDocs) {
  const auto weak = J(R"({
    "bench": "weak_scaling",
    "model": [{"machine": "Summit", "nodes": 2, "efficiency": 0.9}],
    "simulated_cluster": [{"nodes": 8, "compute_s": 1.0, "comm_s": 0.1,
      "total_s": 1.1, "imbalance": 1.0, "bytes": 100, "messages": 5,
      "efficiency": 0.95}]})");
  EXPECT_TRUE(validate_schema(weak).empty());
  const auto kernels = J(R"({
    "bench": "kernels",
    "routines": [{"routine": "gather", "reference_s": 1.0,
      "optimized_s": 0.5, "speedup": 2.0}]})");
  EXPECT_TRUE(validate_schema(kernels).empty());
  // Unknown bench kinds only need the name.
  EXPECT_TRUE(validate_schema(J(R"({"bench":"custom"})")).empty());
}

TEST(BenchDiff, SchemaRejectsMalformedDocs) {
  EXPECT_FALSE(validate_schema(J(R"([1,2,3])")).empty());
  EXPECT_FALSE(validate_schema(J(R"({"nobench":1})")).empty());
  // Empty or missing required arrays are errors (a bench that stops
  // emitting records must not shrink the contract silently).
  EXPECT_FALSE(validate_schema(J(R"({"bench":"kernels","routines":[]})")).empty());
  EXPECT_FALSE(validate_schema(J(R"({"bench":"kernels"})")).empty());
  // A record lacking a required numeric field.
  const auto bad = J(R"({
    "bench": "kernels",
    "routines": [{"routine": "gather", "reference_s": "fast"}]})");
  const auto errors = validate_schema(bad);
  EXPECT_GE(errors.size(), 2u); // bad reference_s + missing optimized_s/speedup
}

} // namespace
} // namespace mrpic::obs::benchdiff
