#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "src/obs/bench_history.hpp"
#include "src/obs/json.hpp"

namespace mrpic::obs {
namespace {

TEST(BenchHistory, ExtractFiltersBySuffixAllowlist) {
  const auto doc = json::parse(R"({
    "bench": "weak_scaling",
    "title": "noise",
    "model": [
      {"machine": "Summit", "nodes": 1, "efficiency": 1.0, "wall_s": 3.2},
      {"machine": "Summit", "nodes": 8, "efficiency": 0.84, "wall_s": 3.9}
    ],
    "probe": [{"overhead_frac": 0.004, "probe_s": 0.12}]
  })");
  const auto entry = extract_bench_history(doc, "BENCH_weak_scaling.json");
  EXPECT_EQ(entry.bench, "weak_scaling");
  EXPECT_EQ(entry.source, "BENCH_weak_scaling.json");
  EXPECT_EQ(entry.schema, kBenchHistorySchema);
  // efficiency / overhead_frac are allowlisted; wall_s / probe_s / nodes and
  // the string leaves are not.
  ASSERT_EQ(entry.metrics.size(), 3u);
  EXPECT_DOUBLE_EQ(entry.metrics.at("model[0].efficiency"), 1.0);
  EXPECT_DOUBLE_EQ(entry.metrics.at("model[1].efficiency"), 0.84);
  EXPECT_DOUBLE_EQ(entry.metrics.at("probe[0].overhead_frac"), 0.004);

  // No "bench" tag -> empty bench marks the document unusable.
  EXPECT_TRUE(extract_bench_history(json::parse("{\"x\": 1}"), "f").bench.empty());

  // The cap keeps records bounded (sorted path order is deterministic).
  const auto capped = extract_bench_history(doc, "f", 2);
  EXPECT_EQ(capped.metrics.size(), 2u);
  EXPECT_EQ(capped.metrics.begin()->first, "model[0].efficiency");
}

TEST(BenchHistory, LineRoundTrip) {
  BenchHistoryEntry e;
  e.bench = "kernel_grain";
  e.source = "BENCH_kernel_grain.json";
  e.unix_time = 1754600000;
  e.metrics["kernels[0].intensity"] = 0.5080645161290323;
  e.metrics["probe[0].overhead_frac"] = 0.0072;

  const std::string line = bench_history_line(e);
  EXPECT_EQ(line.find('\n'), std::string::npos);
  const auto back = parse_bench_history_line(line);
  EXPECT_EQ(back.schema, kBenchHistorySchema);
  EXPECT_EQ(back.bench, e.bench);
  EXPECT_EQ(back.source, e.source);
  EXPECT_EQ(back.unix_time, e.unix_time);
  ASSERT_EQ(back.metrics.size(), 2u);
  EXPECT_DOUBLE_EQ(back.metrics.at("kernels[0].intensity"),
                   e.metrics.at("kernels[0].intensity"));

  EXPECT_THROW(parse_bench_history_line("not json"), std::runtime_error);
  EXPECT_THROW(parse_bench_history_line("{\"bench\": \"x\", \"metrics\": {}}"),
               std::runtime_error); // valid JSON, no schema tag
  EXPECT_THROW(parse_bench_history_line(
                   "{\"schema\": \"other/v1\", \"bench\": \"x\", \"metrics\": {}}"),
               std::runtime_error); // foreign schema
}

TEST(BenchHistory, AppendReadBackAndSkipForeignLines) {
  const std::string path = "test_bench_history_tmp.jsonl";
  std::remove(path.c_str());

  BenchHistoryEntry e;
  e.bench = "memory";
  e.source = "a";
  e.metrics["cases[0].total_bytes"] = 1048576;
  ASSERT_TRUE(append_bench_history(path, e));
  e.source = "b";
  e.metrics["cases[0].total_bytes"] = 2097152;
  ASSERT_TRUE(append_bench_history(path, e));

  // Contaminate the ledger: garbage, a foreign-schema JSONL stream (e.g. a
  // metrics file appended to the wrong path) and a blank line.
  {
    std::ofstream os(path, std::ios::app);
    os << "half a reco" << '\n'
       << "{\"step\": 3, \"counters\": {}}" << '\n'
       << '\n';
  }
  e.source = "c";
  ASSERT_TRUE(append_bench_history(path, e)); // appends still work after noise

  std::size_t skipped = 0;
  const auto entries = read_bench_history(path, &skipped);
  std::remove(path.c_str());
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].source, "a");
  EXPECT_EQ(entries[1].source, "b");
  EXPECT_EQ(entries[2].source, "c");
  EXPECT_DOUBLE_EQ(entries[1].metrics.at("cases[0].total_bytes"), 2097152);
  EXPECT_EQ(skipped, 2u); // blank lines are not counted, noise lines are

  EXPECT_THROW(read_bench_history("nonexistent_dir_x/ledger.jsonl"),
               std::runtime_error);
}

} // namespace
} // namespace mrpic::obs
