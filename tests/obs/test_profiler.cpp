#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <sstream>
#include <thread>

#include "src/obs/profiler.hpp"

namespace mrpic::obs {
namespace {

void spin_for(double seconds) {
  const auto end = Profiler::clock::now() +
                   std::chrono::duration_cast<Profiler::clock::duration>(
                       std::chrono::duration<double>(seconds));
  while (Profiler::clock::now() < end) {}
}

TEST(Profiler, NestedInclusiveExclusiveAccounting) {
  Profiler p;
  for (int i = 0; i < 3; ++i) {
    auto outer = p.scope("outer");
    spin_for(2e-3);
    {
      auto inner = p.scope("inner");
      spin_for(1e-3);
    }
    {
      auto inner2 = p.scope("inner2");
      spin_for(1e-3);
    }
  }

  const auto outer = p.stats("outer");
  const auto inner = p.stats("outer/inner");
  const auto inner2 = p.stats("outer/inner2");
  EXPECT_EQ(outer.count, 3);
  EXPECT_EQ(inner.count, 3);
  EXPECT_EQ(inner2.count, 3);

  // Inclusive of the parent covers both children plus its own work.
  EXPECT_GE(outer.inclusive_s, inner.inclusive_s + inner2.inclusive_s);
  // Exclusive = inclusive - children inclusive; outer spins ~2ms per call.
  EXPECT_NEAR(outer.exclusive_s,
              outer.inclusive_s - inner.inclusive_s - inner2.inclusive_s, 1e-12);
  EXPECT_GE(outer.exclusive_s, 3 * 1.5e-3); // ~6ms of own spinning
  // Leaves have no children: exclusive == inclusive.
  EXPECT_DOUBLE_EQ(inner.exclusive_s, inner.inclusive_s);

  // min <= mean <= max and all positive.
  EXPECT_GT(inner.min_s, 0.0);
  EXPECT_LE(inner.min_s, inner.mean_s());
  EXPECT_LE(inner.mean_s(), inner.max_s);
}

TEST(Profiler, SameNameUnderDifferentParentsIsDistinct) {
  Profiler p;
  {
    auto a = p.scope("a");
    auto x = p.scope("sync");
  }
  {
    auto b = p.scope("b");
    auto x = p.scope("sync");
    auto y = p.scope("deeper");
  }
  EXPECT_EQ(p.stats("a/sync").count, 1);
  EXPECT_EQ(p.stats("b/sync").count, 1);
  EXPECT_EQ(p.stats("b/sync/deeper").count, 1);
  EXPECT_EQ(p.stats("sync").count, 0);        // not a root
  EXPECT_EQ(p.stats("a/missing").count, 0);   // unknown path

  // Flat totals merge by leaf name across parents.
  const auto flat = p.flat_totals();
  EXPECT_EQ(flat.at("sync").count, 2);
}

TEST(Profiler, FlatTotalsAggregateNestedScopes) {
  Profiler p;
  for (int i = 0; i < 2; ++i) {
    auto s = p.scope("step");
    auto q = p.scope("particles");
  }
  const auto flat = p.flat_totals();
  EXPECT_EQ(flat.at("step").count, 2);
  EXPECT_EQ(flat.at("particles").count, 2);
  EXPECT_GE(flat.at("step").inclusive_s, flat.at("particles").inclusive_s);
}

TEST(Profiler, ReportPrintsTreeSortedByInclusive) {
  Profiler p;
  {
    auto s = p.scope("root");
    {
      auto big = p.scope("big");
      spin_for(3e-3);
    }
    {
      auto small = p.scope("small");
      spin_for(5e-4);
    }
  }
  std::ostringstream os;
  p.report(os);
  const std::string out = os.str();
  // Children indented under the root, big before small.
  const auto pos_root = out.find("root");
  const auto pos_big = out.find("big");
  const auto pos_small = out.find("small");
  ASSERT_NE(pos_root, std::string::npos);
  ASSERT_NE(pos_big, std::string::npos);
  ASSERT_NE(pos_small, std::string::npos);
  EXPECT_LT(pos_root, pos_big);
  EXPECT_LT(pos_big, pos_small);
  EXPECT_NE(out.find("incl(s)"), std::string::npos);
  EXPECT_NE(out.find("count"), std::string::npos);
}

TEST(Profiler, ResetClearsEverything) {
  Profiler p;
  p.set_tracing(true);
  {
    auto s = p.scope("x");
  }
  EXPECT_EQ(p.stats("x").count, 1);
  EXPECT_EQ(p.trace_events().size(), 1u);
  p.reset();
  EXPECT_EQ(p.stats("x").count, 0);
  EXPECT_TRUE(p.trace_events().empty());
  // Usable again after reset.
  {
    auto s = p.scope("x");
  }
  EXPECT_EQ(p.stats("x").count, 1);
}

TEST(Profiler, RecursiveScopesNestIntoDistinctNodes) {
  Profiler p;
  // Direct recursion: each re-entry nests under the previous instance, so
  // the tree records f, f/f, f/f/f as distinct nodes with one instance each.
  std::function<void(int)> recurse = [&](int depth) {
    auto s = p.scope("f");
    spin_for(5e-4);
    if (depth > 1) { recurse(depth - 1); }
  };
  recurse(3);

  const auto d1 = p.stats("f");
  const auto d2 = p.stats("f/f");
  const auto d3 = p.stats("f/f/f");
  EXPECT_EQ(d1.count, 1);
  EXPECT_EQ(d2.count, 1);
  EXPECT_EQ(d3.count, 1);
  // Inclusive telescopes: outer covers inner.
  EXPECT_GE(d1.inclusive_s, d2.inclusive_s);
  EXPECT_GE(d2.inclusive_s, d3.inclusive_s);
  // Exclusive strips the recursive child, so each level keeps only its own
  // ~0.5 ms of spinning and never goes negative; the levels' exclusive
  // times sum back to the root's inclusive.
  for (const auto& s : {d1, d2, d3}) {
    EXPECT_GE(s.exclusive_s, 0.0);
    EXPECT_GE(s.exclusive_s, 2.5e-4);
  }
  EXPECT_NEAR(d1.exclusive_s + d2.exclusive_s + d3.exclusive_s, d1.inclusive_s, 1e-9);
  // The innermost level is a leaf: exclusive == inclusive.
  EXPECT_DOUBLE_EQ(d3.exclusive_s, d3.inclusive_s);
  // Flat totals merge the recursion chain under the shared leaf name.
  EXPECT_EQ(p.flat_totals().at("f").count, 3);
}

TEST(Profiler, ReenteredScopeMergesIntoOneNode) {
  Profiler p;
  {
    auto outer = p.scope("outer");
    for (int i = 0; i < 4; ++i) {
      auto inner = p.scope("work"); // sequential re-entry, same parent
      spin_for(2e-4);
    }
  }
  const auto inner = p.stats("outer/work");
  EXPECT_EQ(inner.count, 4);
  EXPECT_DOUBLE_EQ(inner.exclusive_s, inner.inclusive_s); // leaf
  EXPECT_LE(inner.min_s, inner.max_s);
  // Parent exclusive strips all four instances at once.
  const auto outer = p.stats("outer");
  EXPECT_NEAR(outer.exclusive_s, outer.inclusive_s - inner.inclusive_s, 1e-12);
  EXPECT_GE(outer.exclusive_s, 0.0);
}

TEST(Profiler, ScopeSpanningStepBoundaryIsTaggedWithClosingStep) {
  Profiler p;
  p.set_tracing(true);
  p.set_step(0);
  {
    auto before = p.scope("inside_step0");
  }
  {
    auto spanning = p.scope("spans_boundary"); // opened in step 0...
    spin_for(1e-4);
    p.set_step(1);                             // ...boundary crossed...
  }                                            // ...closed in step 1
  {
    auto after = p.scope("inside_step1");
  }

  std::int64_t step_of_span = -2, step_of_before = -2, step_of_after = -2;
  for (const auto& ev : p.trace_events()) {
    if (ev.name == "spans_boundary") { step_of_span = ev.step; }
    if (ev.name == "inside_step0") { step_of_before = ev.step; }
    if (ev.name == "inside_step1") { step_of_after = ev.step; }
  }
  EXPECT_EQ(step_of_before, 0);
  // Events record at close, so a spanning scope lands in the step that saw
  // it finish — the invariant the per-step trace grouping relies on.
  EXPECT_EQ(step_of_span, 1);
  EXPECT_EQ(step_of_after, 1);
  // Aggregated stats are step-agnostic and unaffected by the boundary.
  EXPECT_EQ(p.stats("spans_boundary").count, 1);
  EXPECT_GE(p.stats("spans_boundary").inclusive_s, 1e-4);
}

TEST(Profiler, ScopeElapsedAndMoveSemantics) {
  Profiler p;
  {
    auto s = p.scope("moved");
    auto s2 = std::move(s);
    spin_for(1e-4);
    EXPECT_GT(s2.elapsed(), 0.0);
  }
  // A moved-from scope must not double-close: exactly one instance recorded.
  EXPECT_EQ(p.stats("moved").count, 1);
}

} // namespace
} // namespace mrpic::obs
