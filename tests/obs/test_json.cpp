#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <string>

#include "src/obs/json.hpp"

namespace mrpic::obs::json {
namespace {

// --- \uXXXX decoding beyond the writer's own escape subset ------------------

TEST(JsonUnicode, BmpEscapesDecodeToUtf8) {
  // 1-, 2- and 3-byte UTF-8 from BMP codepoints.
  EXPECT_EQ(parse("\"\\u0041\"").as_string(), "A");
  EXPECT_EQ(parse("\"\\u00e9\"").as_string(), "\xC3\xA9");      // é
  EXPECT_EQ(parse("\"\\u20ac\"").as_string(), "\xE2\x82\xAC");  // €
  // Hex digits are case-insensitive.
  EXPECT_EQ(parse("\"\\u20AC\"").as_string(), "\xE2\x82\xAC");
}

TEST(JsonUnicode, SurrogatePairsDecodeToAstralUtf8) {
  // U+1F600 (😀) = D83D DE00 -> F0 9F 98 80.
  EXPECT_EQ(parse("\"\\ud83d\\ude00\"").as_string(), "\xF0\x9F\x98\x80");
  // U+10000, the first astral codepoint (lowest surrogate pair).
  EXPECT_EQ(parse("\"\\ud800\\udc00\"").as_string(), "\xF0\x90\x80\x80");
  // U+10FFFF, the last codepoint (highest surrogate pair).
  EXPECT_EQ(parse("\"\\udbff\\udfff\"").as_string(), "\xF4\x8F\xBF\xBF");
  // Pairs embedded mid-string keep their neighbors.
  EXPECT_EQ(parse("\"a\\ud83d\\ude00b\"").as_string(), "a\xF0\x9F\x98\x80" "b");
}

TEST(JsonUnicode, LoneAndMispairedSurrogatesFail) {
  EXPECT_THROW(parse("\"\\ud800\""), std::runtime_error);       // lone high
  EXPECT_THROW(parse("\"\\udc00\""), std::runtime_error);       // lone low
  EXPECT_THROW(parse("\"\\ud800x\""), std::runtime_error);      // high + text
  EXPECT_THROW(parse("\"\\ud800\\n\""), std::runtime_error);    // high + escape
  EXPECT_THROW(parse("\"\\ud800\\ud800\""), std::runtime_error);  // high + high
  EXPECT_THROW(parse("\"\\ud800\\u0041\""), std::runtime_error);  // high + BMP
  EXPECT_THROW(parse("\"\\ud83d\""), std::runtime_error);       // truncated pair
}

TEST(JsonUnicode, MalformedEscapesFail) {
  EXPECT_THROW(parse("\"\\u12\""), std::runtime_error);    // truncated hex
  EXPECT_THROW(parse("\"\\u12g4\""), std::runtime_error);  // bad hex digit
  EXPECT_THROW(parse("\"\\q\""), std::runtime_error);      // unknown escape
  EXPECT_THROW(parse("\"\\u123"), std::runtime_error);     // EOF inside escape
}

// --- nesting depth limit ----------------------------------------------------

std::string nested_arrays(int depth) {
  std::string s;
  for (int i = 0; i < depth; ++i) { s += '['; }
  s += '1';
  for (int i = 0; i < depth; ++i) { s += ']'; }
  return s;
}

TEST(JsonDepth, DeepButLegalNestingParses) {
  const Value v = parse(nested_arrays(150));
  const Value* p = &v;
  for (int i = 0; i < 150; ++i) {
    ASSERT_TRUE(p->is_array());
    ASSERT_EQ(p->as_array().size(), 1u);
    p = &p->as_array()[0];
  }
  EXPECT_DOUBLE_EQ(p->as_number(), 1.0);
}

TEST(JsonDepth, HostileNestingFailsInsteadOfOverflowing) {
  // Well beyond the 200-level bound: must throw, not crash the process.
  EXPECT_THROW(parse(nested_arrays(100000)), std::runtime_error);
  EXPECT_THROW(parse(nested_arrays(201)), std::runtime_error);
  // Objects count toward the same bound as arrays.
  std::string objs;
  for (int i = 0; i < 300; ++i) { objs += "{\"k\":"; }
  objs += "0";
  for (int i = 0; i < 300; ++i) { objs += '}'; }
  EXPECT_THROW(parse(objs), std::runtime_error);
  // Sibling containers do NOT accumulate: depth is per-branch.
  std::string siblings = "[";
  for (int i = 0; i < 500; ++i) { siblings += "[1],"; }
  siblings += "[1]]";
  EXPECT_NO_THROW(parse(siblings));
}

// --- number round-trip through the writer's formatting ----------------------

TEST(JsonNumber, WriterOutputRoundTrips) {
  const double cases[] = {0.0,
                          -0.0,
                          1.0,
                          -1.0,
                          0.1,
                          1.0 / 3.0,
                          6.02214076e23,
                          1.602176634e-19,
                          std::numeric_limits<double>::denorm_min(),
                          std::numeric_limits<double>::max(),
                          -std::numeric_limits<double>::max(),
                          9.007199254740991e15,  // 2^53 - 1
                          0.0072973525693};
  for (const double v : cases) {
    const std::string text = number(v);
    const Value back = parse(text);
    ASSERT_TRUE(back.is_number()) << text;
    EXPECT_EQ(back.as_number(), v) << text;
  }
  // Non-finite values serialize as null (JSON has no NaN/Inf) and come back
  // as null, not as a number.
  EXPECT_EQ(number(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(number(std::numeric_limits<double>::infinity()), "null");
  EXPECT_TRUE(parse(number(std::nan(""))).is_null());
}

TEST(JsonNumber, IntegersSurviveExactly) {
  const std::int64_t cases[] = {0, 1, -1, 42, -1754600000, 1099511627776};
  for (const std::int64_t v : cases) {
    const Value back = parse(number(v));
    ASSERT_TRUE(back.is_number());
    EXPECT_EQ(static_cast<std::int64_t>(back.as_number()), v);
  }
}

TEST(JsonString, QuoteRoundTripsControlCharacters) {
  const std::string nasty = "a\"b\\c\nd\re\tf\x01g";
  EXPECT_EQ(parse(quote(nasty)).as_string(), nasty);
  // UTF-8 passes through the writer raw and the parser untouched.
  const std::string utf8 = "émittance \xE2\x82\xAC \xF0\x9F\x98\x80";
  EXPECT_EQ(parse(quote(utf8)).as_string(), utf8);
}

TEST(JsonParse, ErrorsCarryByteOffsets) {
  try {
    parse("{\"a\": }");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("byte"), std::string::npos);
  }
  EXPECT_THROW(parse(""), std::runtime_error);
  EXPECT_THROW(parse("[1, 2"), std::runtime_error);
  EXPECT_THROW(parse("[1] trailing"), std::runtime_error);
}

} // namespace
} // namespace mrpic::obs::json
