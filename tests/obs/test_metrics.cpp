#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/obs/metrics.hpp"
#include "src/perf/flop_counter.hpp"

namespace mrpic::obs {
namespace {

TEST(Metrics, CountersAccumulateAndGaugesOverwrite) {
  MetricsRegistry reg;
  reg.counter("particles_pushed").add(100);
  reg.counter("particles_pushed").add(20);
  reg.gauge("imbalance").set(1.5);
  reg.gauge("imbalance").set(1.2);
  EXPECT_EQ(reg.counter_value("particles_pushed"), 120);
  EXPECT_DOUBLE_EQ(reg.gauge_value("imbalance"), 1.2);
  EXPECT_EQ(reg.counter_value("unknown"), 0);
  EXPECT_DOUBLE_EQ(reg.gauge_value("unknown"), 0.0);
  // Same name returns the same object.
  EXPECT_EQ(&reg.counter("particles_pushed"), &reg.counter("particles_pushed"));
}

TEST(Metrics, StepRecordsCaptureDeltasNotTotals) {
  MetricsRegistry reg;
  reg.counter("work").add(5); // pre-step activity

  reg.begin_step(0);
  reg.counter("work").add(10);
  reg.gauge("wall_s").set(0.25);
  const StepRecord r0 = reg.end_step();
  EXPECT_EQ(r0.step, 0);
  EXPECT_EQ(r0.counters.at("work"), 10); // delta, not the total 15
  EXPECT_DOUBLE_EQ(r0.gauges.at("wall_s"), 0.25);

  reg.begin_step(1);
  reg.counter("work").add(7);
  // A counter born mid-step reports its full value as the delta.
  reg.counter("fresh").add(3);
  const StepRecord r1 = reg.end_step();
  EXPECT_EQ(r1.counters.at("work"), 7);
  EXPECT_EQ(r1.counters.at("fresh"), 3);

  ASSERT_EQ(reg.history().size(), 2u);
  EXPECT_EQ(reg.history()[0], r0);
  EXPECT_EQ(reg.history()[1], r1);
}

TEST(Metrics, HistoryLimitKeepsNewest) {
  MetricsRegistry reg;
  reg.set_history_limit(2);
  for (int s = 0; s < 5; ++s) {
    reg.begin_step(s);
    reg.end_step();
  }
  ASSERT_EQ(reg.history().size(), 2u);
  EXPECT_EQ(reg.history()[0].step, 3);
  EXPECT_EQ(reg.history()[1].step, 4);
}

TEST(Metrics, JsonlRoundTrip) {
  MetricsRegistry reg;
  for (int s = 0; s < 3; ++s) {
    reg.begin_step(s);
    reg.counter("particles_pushed").add(1000 + s);
    reg.counter("halo_bytes").add(1 << (10 + s));
    reg.gauge("lb_cost_imbalance").set(1.0 + 0.01 * s);
    reg.end_step();
  }
  const std::string path = "test_metrics_tmp.jsonl";
  ASSERT_TRUE(reg.write_jsonl(path));

  const auto back = MetricsRegistry::read_jsonl(path);
  std::remove(path.c_str());
  ASSERT_EQ(back.size(), 3u);
  for (std::size_t i = 0; i < back.size(); ++i) {
    EXPECT_EQ(back[i], reg.history()[i]) << "record " << i;
  }
}

TEST(Metrics, ParseRecordRejectsGarbage) {
  EXPECT_THROW(MetricsRegistry::parse_record("not json"), std::runtime_error);
  EXPECT_THROW(MetricsRegistry::parse_record("[1,2,3]"), std::runtime_error);
}

TEST(Metrics, ReadJsonlSkipsAndCountsMalformedLines) {
  const std::string path = "test_metrics_malformed_tmp.jsonl";
  {
    MetricsRegistry reg;
    reg.begin_step(0);
    reg.counter("work").add(1);
    reg.end_step();
    reg.begin_step(1);
    reg.counter("work").add(2);
    reg.end_step();
    ASSERT_TRUE(reg.write_jsonl(path));
  }
  // Corrupt the file: a truncated line in the middle and trailing garbage
  // (an interrupted writer, a partial download, ...).
  {
    std::ifstream is(path);
    std::string first, second;
    std::getline(is, first);
    std::getline(is, second);
    is.close();
    std::ofstream os(path);
    os << first << '\n'
       << "{\"step\": 99, \"counters\": {\"work\"" << '\n' // truncated mid-object
       << second << '\n'
       // Valid JSON but not a metrics record: no "step" schema tag (e.g. a
       // foreign JSONL stream concatenated into the same file). These must
       // be skipped and counted, not parsed as step-0 records.
       << "{\"counters\": {\"work\": 5}, \"gauges\": {}}" << '\n'
       << "{\"step\": \"not a number\", \"counters\": {}}" << '\n'
       << "not json at all" << '\n';
  }
  std::size_t malformed = 0;
  const auto back = MetricsRegistry::read_jsonl(path, &malformed);
  std::remove(path.c_str());
  ASSERT_EQ(back.size(), 2u); // the two good records survive
  EXPECT_EQ(back[0].step, 0);
  EXPECT_EQ(back[1].step, 1);
  EXPECT_EQ(malformed, 4u);
  // An unopenable file is still a hard error, not "zero records".
  EXPECT_THROW(MetricsRegistry::read_jsonl("nonexistent_dir_x/f.jsonl"),
               std::runtime_error);
}

TEST(Metrics, MemGaugesRoundTripAndSurviveTruncatedLines) {
  // The memory probe publishes large-magnitude byte gauges (up to tens of
  // GiB) next to small ratios; both must survive the JSONL round trip, and
  // a half-written mem_* record (e.g. a run dying mid-OOM, exactly when the
  // memory series matters most) must be skipped and counted, not fatal.
  MetricsRegistry reg;
  for (int s = 0; s < 3; ++s) {
    reg.begin_step(s);
    reg.gauge("mem_total_bytes").set(48.0 * (1 << 30) + s); // ~48 GiB
    reg.gauge("mem_fields_bytes").set(1.5e9);
    reg.gauge("mem_mr_savings_factor").set(1.73);
    reg.gauge("mem_rank_imbalance").set(1.0 + 0.25 * s);
    reg.end_step();
  }
  const std::string path = "test_metrics_mem_tmp.jsonl";
  ASSERT_TRUE(reg.write_jsonl(path));
  {
    // Append a record truncated in the middle of a mem_* gauge value.
    std::ofstream os(path, std::ios::app);
    os << "{\"step\": 3, \"gauges\": {\"mem_total_bytes\": 515396" << '\n';
  }
  std::size_t malformed = 0;
  const auto back = MetricsRegistry::read_jsonl(path, &malformed);
  std::remove(path.c_str());
  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(malformed, 1u);
  EXPECT_DOUBLE_EQ(back[2].gauges.at("mem_total_bytes"), 48.0 * (1 << 30) + 2);
  EXPECT_DOUBLE_EQ(back[2].gauges.at("mem_mr_savings_factor"), 1.73);
  EXPECT_DOUBLE_EQ(back[2].gauges.at("mem_rank_imbalance"), 1.5);
  for (std::size_t i = 0; i < back.size(); ++i) {
    EXPECT_EQ(back[i], reg.history()[i]) << "record " << i;
  }
}

TEST(Metrics, RankSectionsRoundTripThroughJsonl) {
  MetricsRegistry reg;
  reg.begin_step(0);
  reg.counter("work").add(1);
  reg.set_step_ranks({{{"compute_s", 1.5}, {"comm_s", 0.25}, {"boxes", 3.0}},
                      {{"compute_s", 0.5}, {"comm_s", 0.25}, {"boxes", 1.0}}});
  const StepRecord rec = reg.end_step();
  ASSERT_EQ(rec.ranks.size(), 2u);
  EXPECT_DOUBLE_EQ(rec.ranks[0].at("compute_s"), 1.5);

  // A step without rank sections stays rank-free.
  reg.begin_step(1);
  const StepRecord rec1 = reg.end_step();
  EXPECT_TRUE(rec1.ranks.empty());

  const std::string path = "test_metrics_ranks_tmp.jsonl";
  ASSERT_TRUE(reg.write_jsonl(path));
  const auto back = MetricsRegistry::read_jsonl(path);
  std::remove(path.c_str());
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0], rec);
  ASSERT_EQ(back[0].ranks.size(), 2u);
  EXPECT_DOUBLE_EQ(back[0].ranks[1].at("comm_s"), 0.25);
  EXPECT_TRUE(back[1].ranks.empty());
}

TEST(Metrics, FlopCounterPublishesDeltas) {
  perf::FlopCounter fc;
  MetricsRegistry reg;
  fc.record("gather", perf::OpCounts{10, 5, 0, 0, 0, 0});
  fc.publish(reg);
  EXPECT_EQ(reg.counter_value("flops.gather"), 15);
  EXPECT_EQ(reg.counter_value("flops_total"), 15);
  // Publishing again without new work adds nothing.
  fc.publish(reg);
  EXPECT_EQ(reg.counter_value("flops_total"), 15);
  fc.record("gather", std::int64_t(100)); // raw flops -> `other` bucket
  fc.publish(reg);
  EXPECT_EQ(reg.counter_value("flops.gather"), 115);
  EXPECT_EQ(reg.counter_value("flops_total"), 115);
}

TEST(FlopCounterObs, RawFlopsLandInOtherBucket) {
  perf::FlopCounter fc;
  fc.record("mystery", std::int64_t(250));
  const auto& ops = fc.per_kernel().at("mystery");
  EXPECT_EQ(ops.other, 250);
  EXPECT_EQ(ops.add, 0); // previously misfiled under add
  EXPECT_EQ(ops.flops(), 250);
  std::ostringstream os;
  fc.report(os);
  EXPECT_NE(os.str().find("other 250"), std::string::npos);
}

} // namespace
} // namespace mrpic::obs
