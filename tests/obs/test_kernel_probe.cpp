#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <random>
#include <sstream>

#include "src/cluster/sim_cluster.hpp"
#include "src/dist/distribution_mapping.hpp"
#include "src/obs/kernel_probe.hpp"
#include "src/obs/locality.hpp"
#include "src/obs/json.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/perf_report.hpp"
#include "src/obs/profiler.hpp"
#include "src/particles/deposition.hpp"
#include "src/particles/gather.hpp"
#include "src/particles/pusher.hpp"
#include "src/plasma/plasma_injector.hpp"

namespace mrpic::obs {
namespace {

// --- closed-form kernel cost model ---------------------------------------

TEST(KernelProbe, AnalyticIntensity) {
  // The per-invocation intensity must equal the closed-form per-particle
  // flops / bytes ratio to 1e-9, for every kind, order and dimension.
  for (int dim : {2, 3}) {
    for (int order : {1, 2, 3}) {
      const double p = std::pow(order + 1, dim);
      const double q = std::pow(order + 2, dim);
      const double gather_b = 8.0 * dim + 48.0 * p + 48.0;
      const double push_b = 96.0 + 16.0 * dim;
      const double deposit_b = 16.0 * dim + 8.0 + 48.0 * q;
      EXPECT_DOUBLE_EQ(kernel_bytes_per_particle(KernelKind::Gather, order, dim),
                       gather_b);
      EXPECT_DOUBLE_EQ(kernel_bytes_per_particle(KernelKind::Push, order, dim), push_b);
      EXPECT_DOUBLE_EQ(kernel_bytes_per_particle(KernelKind::Deposit, order, dim),
                       deposit_b);
      // Flops wrap the particles:: kernel counts exactly.
      EXPECT_DOUBLE_EQ(
          kernel_flops_per_particle(KernelKind::Gather, order, dim),
          double(particles::gather_flops_per_particle(order, dim)));
      EXPECT_DOUBLE_EQ(kernel_flops_per_particle(KernelKind::Push, order, dim),
                       double(particles::push_flops_per_particle()));
      EXPECT_DOUBLE_EQ(
          kernel_flops_per_particle(KernelKind::Deposit, order, dim),
          double(particles::deposit_flops_per_particle(order, dim)));

      KernelProbe probe;
      const std::int64_t np = 1000;
      probe.record(KernelKind::Gather, 0, "e", 0, np, 1e-4, order, dim);
      probe.record(KernelKind::Push, 0, "e", 0, np, 1e-4, order, dim);
      probe.record(KernelKind::Deposit, 0, "e", 0, np, 1e-4, order, dim);
      const auto inv = probe.invocations();
      ASSERT_EQ(inv.size(), 3u);
      const double analytic[3] = {
          double(particles::gather_flops_per_particle(order, dim)) / gather_b,
          double(particles::push_flops_per_particle()) / push_b,
          double(particles::deposit_flops_per_particle(order, dim)) / deposit_b};
      for (int i = 0; i < 3; ++i) {
        EXPECT_NEAR(inv[i].intensity, analytic[i], 1e-9)
            << "kind " << i << " order " << order << " dim " << dim;
        EXPECT_DOUBLE_EQ(inv[i].flops, double(np) * inv[i].intensity * inv[i].bytes / np)
            << "flops/bytes/intensity must be self-consistent";
      }
    }
  }
}

TEST(KernelProbe, RecordAggregatesAndBounds) {
  KernelObsConfig cfg;
  cfg.max_invocations = 4;
  KernelProbe probe(cfg);
  EXPECT_TRUE(probe.due(0));
  EXPECT_FALSE(probe.due(1));
  EXPECT_TRUE(probe.due(5));

  for (int i = 0; i < 6; ++i) {
    probe.record(KernelKind::Push, 0, "e", i, 100, 1e-5, 2, 2);
  }
  EXPECT_EQ(probe.invocations().size(), 4u); // bounded store
  EXPECT_EQ(probe.dropped_invocations(), 2);
  const auto agg = probe.aggregate(KernelKind::Push);
  EXPECT_EQ(agg.invocations, 6); // aggregates keep accumulating
  EXPECT_EQ(agg.particles, 600);
  EXPECT_NEAR(agg.time_s, 6e-5, 1e-12);
  EXPECT_GT(probe.self_time_s(), 0);

  MetricsRegistry metrics;
  probe.publish(metrics);
  EXPECT_GT(metrics.gauge("kernel_push_gbyte_s").value(), 0);
  EXPECT_GT(metrics.gauge("kernel_probe_self_s").value(), 0);

  probe.clear();
  EXPECT_EQ(probe.invocations().size(), 0u);
  EXPECT_EQ(probe.aggregate(KernelKind::Push).invocations, 0);
}

// --- locality model -------------------------------------------------------

TEST(KernelLocality, FreshInjectorIsCellOrdered) {
  // A freshly injected container fills cell by cell, so the sampled cell
  // keys are already sorted: ~0 inversions and no predicted sort payoff.
  const mrpic::Geometry<2> geom(mrpic::Box2(mrpic::IntVect2(0, 0), mrpic::IntVect2(31, 31)),
                                mrpic::RealVect2(0, 0), mrpic::RealVect2(32e-7, 32e-7),
                                {true, true});
  particles::ParticleContainer<2> pc(particles::Species::electron(),
                                     mrpic::BoxArray<2>(geom.domain()));
  plasma::InjectorConfig<2> icfg;
  icfg.density = plasma::uniform<2>(5e23);
  icfg.ppc = mrpic::IntVect2(2, 2);
  plasma::PlasmaInjector<2> inj(icfg);
  inj.inject_all(pc, geom);
  ASSERT_GT(pc.tile(0).size(), 1000u);

  const auto l = tile_locality<2>(pc.tile(0), geom, geom.domain(), 4096);
  EXPECT_GT(l.pairs, 0);
  EXPECT_LE(l.inversion_fraction, 0.01);
  EXPECT_NEAR(l.line_reuse, l.sorted_line_reuse, 0.01);
  EXPECT_NEAR(l.predicted_sort_speedup, 1.0, 0.05);
}

TEST(KernelLocality, ShuffledKeysInvertHalf) {
  // A uniform shuffle of distinct keys descends on ~half the consecutive
  // pairs, and sorting it is predicted to pay off.
  std::vector<std::int64_t> keys(4096);
  std::iota(keys.begin(), keys.end(), std::int64_t(0));
  std::mt19937_64 rng(7);
  std::shuffle(keys.begin(), keys.end(), rng);

  const auto l = locality_from_keys(keys);
  EXPECT_NEAR(l.inversion_fraction, 0.5, 0.05);
  EXPECT_LT(l.line_reuse, 0.05);
  EXPECT_DOUBLE_EQ(l.sorted_line_reuse, 1.0); // consecutive distinct keys
  EXPECT_GT(l.predicted_sort_speedup, 1.5);

  // Sorted input: zero inversions, stride 1, no payoff.
  std::sort(keys.begin(), keys.end());
  const auto s = locality_from_keys(keys);
  EXPECT_DOUBLE_EQ(s.inversion_fraction, 0.0);
  EXPECT_DOUBLE_EQ(s.mean_stride_cells, 1.0);
  EXPECT_DOUBLE_EQ(s.predicted_sort_speedup, 1.0);

  // Degenerate inputs.
  EXPECT_DOUBLE_EQ(locality_from_keys({}).predicted_sort_speedup, 1.0);
  EXPECT_DOUBLE_EQ(locality_from_keys({42}).predicted_sort_speedup, 1.0);
}

TEST(KernelLocality, MergeIsPairWeighted) {
  TileLocality a = locality_from_keys({0, 1, 2, 3, 4});      // sorted, 4 pairs
  const TileLocality b = locality_from_keys({4, 3, 2, 1, 0}); // reversed, 4 pairs
  const double mean_a = a.mean_stride_cells;
  merge_locality(a, b);
  EXPECT_EQ(a.pairs, 8);
  EXPECT_EQ(a.particles, 10);
  EXPECT_NEAR(a.inversion_fraction, 0.5, 1e-12);
  EXPECT_NEAR(a.mean_stride_cells, mean_a, 1e-12); // both streams stride 1
}

// --- halo phase timeline --------------------------------------------------

TEST(KernelOverlap, PhaseSplitInvariants) {
  // Every rank's phase split must reconstruct its comm time exactly, and
  // the derived headroom is min(wait, interior compute).
  const mrpic::Box2 domain(mrpic::IntVect2(0, 0), mrpic::IntVect2(63, 63));
  const auto ba = mrpic::BoxArray<2>::decompose(domain, 16);
  const int nranks = 4;
  const auto dm =
      dist::DistributionMapping::make(ba, nranks, dist::Strategy::SpaceFillingCurve);
  cluster::SimCluster cl(nranks);
  RankRecorder rec(nranks);
  rec.set_step(0);
  const auto cost =
      cl.step_cost(ba, dm, std::vector<Real>(ba.size(), Real(1e-4)), 9, 2, 8, &rec);

  ASSERT_EQ(rec.steps().size(), 1u);
  const auto& ranks = rec.steps().front().ranks;
  ASSERT_EQ(ranks.size(), std::size_t(nranks));
  double max_total = 0;
  std::size_t critical = 0;
  for (std::size_t r = 0; r < ranks.size(); ++r) {
    const auto& rs = ranks[r];
    EXPECT_NEAR(rs.post_s + rs.wait_s, rs.comm_s, 1e-12) << "rank " << r;
    EXPECT_GE(rs.post_s, 0.0);
    EXPECT_GE(rs.wait_s, 0.0);
    EXPECT_LE(rs.interior_compute_s, rs.compute_s + 1e-12);
    EXPECT_NEAR(rs.overlap_headroom_s, std::min(rs.wait_s, rs.interior_compute_s), 1e-12);
    if (rs.total_s() > max_total) {
      max_total = rs.total_s();
      critical = r;
    }
  }
  // StepCost carries the critical rank's timeline.
  EXPECT_NEAR(cost.post_s, ranks[critical].post_s, 1e-15);
  EXPECT_NEAR(cost.wait_s, ranks[critical].wait_s, 1e-15);
  EXPECT_NEAR(cost.overlap_headroom_s, ranks[critical].overlap_headroom_s, 1e-15);
  EXPECT_GT(cost.wait_s, 0.0); // this layout has inter-rank halos
}

// --- perf-report section --------------------------------------------------

TEST(KernelHeadroom, SectionRendersMarkdownAndJson) {
  KernelProbe probe;
  probe.record(KernelKind::Gather, 0, "e", 0, 1000, 1e-4, 2, 2);
  probe.record(KernelKind::Push, 0, "e", 0, 1000, 1e-4, 2, 2);
  probe.record(KernelKind::Deposit, 0, "e", 0, 1000, 1e-4, 2, 2);

  Profiler prof;
  RankRecorder rec(2);
  rec.set_step(0);
  {
    const mrpic::Box2 domain(mrpic::IntVect2(0, 0), mrpic::IntVect2(31, 31));
    const auto ba = mrpic::BoxArray<2>::decompose(domain, 16);
    const auto dm =
        dist::DistributionMapping::make(ba, 2, dist::Strategy::SpaceFillingCurve);
    cluster::SimCluster cl(2);
    cl.step_cost(ba, dm, std::vector<Real>(ba.size(), Real(1e-4)), 9, 2, 8, &rec);
  }

  PerfReport report = build_perf_report(rec);
  report.kernel = summarize_kernels(probe, prof, &rec);
  ASSERT_TRUE(report.kernel.enabled);
  EXPECT_EQ(report.kernel.machine, "Summit");
  EXPECT_EQ(report.kernel.sampled_invocations, 3);
  EXPECT_EQ(report.kernel.kernels.size(), 3u);
  EXPECT_EQ(report.kernel.overlap_steps, 1);
  EXPECT_GT(report.kernel.mean_wait_s, 0.0);

  std::ostringstream md, js;
  write_markdown(report, md);
  EXPECT_NE(md.str().find("## Kernel headroom (Summit)"), std::string::npos);
  EXPECT_NE(md.str().find("overlap headroom"), std::string::npos);
  write_json(report, js);
  EXPECT_NE(js.str().find("\"kernel_headroom\""), std::string::npos);
  const auto doc = json::parse(js.str());
  ASSERT_TRUE(doc["kernel_headroom"].is_object());
  EXPECT_EQ(doc["kernel_headroom"]["kernels"].as_array().size(), 3u);
  EXPECT_NEAR(doc["kernel_headroom"]["overlap"]["mean_wait_s"].as_number(),
              report.kernel.mean_wait_s, 1e-15);
}

} // namespace
} // namespace mrpic::obs
