// EventLog is the one telemetry sink shared by every subsystem: health
// alerts arrive from the watchdog under its own mutex, resil events from the
// resilient runner, rebalance snapshots from the load balancer, lifecycle
// transitions from the driver — potentially from different threads in an
// external harness. Hammer publish() + the read surface concurrently; under
// -DMRPIC_SANITIZE=thread this is the event_log_concurrency_sanitized ctest.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <set>
#include <thread>
#include <vector>

#include "src/obs/event_log.hpp"

namespace mrpic::obs {
namespace {

TEST(EventLogConcurrency, ConcurrentPublishersKeepSeqDenseAndFileOrdered) {
  const std::string path = "test_event_log_conc.jsonl";
  std::remove(path.c_str());
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;

  EventLogConfig cfg;
  cfg.path = path;
  EventLog log(cfg);

  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  std::vector<std::vector<std::int64_t>> seen(kThreads);
  const char* cats[] = {"health", "resil", "rebalance", "lifecycle"};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) {}
      for (int i = 0; i < kPerThread; ++i) {
        const Event ev =
            log.publish(cats[t % 4], "tick",
                        static_cast<EventSeverity>(i % 3), t * kPerThread + i,
                        "", {{"thread", double(t)}});
        seen[std::size_t(t)].push_back(ev.seq);
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& th : threads) { th.join(); }

  constexpr std::int64_t kTotal = std::int64_t(kThreads) * kPerThread;
  EXPECT_EQ(log.num_events(), kTotal);
  EXPECT_EQ(log.num_events(EventSeverity::Info) + log.num_events(EventSeverity::Warn) +
                log.num_events(EventSeverity::Critical),
            kTotal);

  // Every thread saw strictly increasing seqs, and the union is dense
  // 0..N-1: no duplicates, no gaps.
  std::set<std::int64_t> all;
  for (const auto& s : seen) {
    EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
    all.insert(s.begin(), s.end());
  }
  ASSERT_EQ(std::int64_t(all.size()), kTotal);
  EXPECT_EQ(*all.begin(), 0);
  EXPECT_EQ(*all.rbegin(), kTotal - 1);

  // The in-memory snapshot and the durable file agree on the ordering
  // contract: seq strictly increasing, wall_s nondecreasing, in disk order.
  const auto check_ordered = [&](const std::vector<Event>& events) {
    ASSERT_EQ(std::int64_t(events.size()), kTotal);
    for (std::size_t i = 1; i < events.size(); ++i) {
      EXPECT_EQ(events[i].seq, events[i - 1].seq + 1);
      EXPECT_GE(events[i].wall_s, events[i - 1].wall_s);
    }
  };
  check_ordered(log.snapshot());
  std::size_t skipped = 0;
  check_ordered(EventLog::read_events_jsonl(path, &skipped));
  EXPECT_EQ(skipped, 0u);
  std::remove(path.c_str());
}

TEST(EventLogConcurrency, SnapshotsRaceWithPublishers) {
  EventLogConfig cfg;
  cfg.history_limit = 64;  // force drops while snapshots run
  EventLog log(cfg);

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const auto snap = log.snapshot();
      for (std::size_t i = 1; i < snap.size(); ++i) {
        ASSERT_LT(snap[i - 1].seq, snap[i].seq);
      }
      (void)log.num_events();
      (void)log.num_dropped();
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < 500; ++i) {
        log.publish("resil", "tick", EventSeverity::Info, i, "",
                    {{"thread", double(t)}});
      }
    });
  }
  for (auto& th : writers) { th.join(); }
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(log.num_events(), 2000);
  EXPECT_EQ(log.num_dropped(), 2000 - 64);
}

} // namespace
} // namespace mrpic::obs
