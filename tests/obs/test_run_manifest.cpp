#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>

#include "src/obs/json.hpp"
#include "src/obs/run_manifest.hpp"

namespace mrpic::obs {
namespace {

TEST(RunManifest, GeneratedRunIdsAreUniqueAndFilesystemSafe) {
  std::set<std::string> ids;
  for (int i = 0; i < 64; ++i) { ids.insert(generate_run_id("lwfa")); }
  EXPECT_EQ(ids.size(), 64u);
  // Scenario names are sanitized so the id is safe as a directory name.
  const std::string id = generate_run_id("a b/c:d");
  EXPECT_EQ(id.find('/'), std::string::npos);
  EXPECT_EQ(id.find(' '), std::string::npos);
  EXPECT_EQ(id.rfind("a_b_c_d-", 0), 0u);
  EXPECT_EQ(generate_run_id("").rfind("run-", 0), 0u);
}

TEST(RunManifest, JsonRoundTrip) {
  RunManifest m;
  m.run_id = "lwfa-1754600000-123-0";
  m.scenario = "lwfa";
  m.title = "Laser-wakefield \"quickstart\"";
  m.spec_digest = "82ece7b409c271eb";
  m.status = kRunStatusAborted;
  m.exit_code = 1;
  m.reason = "energy drift out of bounds";
  m.start_unix = 1754600000;
  m.end_unix = 1754600042;
  m.wall_s = 41.7;
  m.steps_done = 120;
  m.sim_time_s = 3.1e-14;
  m.num_events = 9;
  m.num_alerts = 2;
  fill_build_info(m);
  m.flags = {"--steps 120", "--health"};
  m.artifacts.push_back({"events", "lwfa_events.jsonl", 512});
  m.artifacts.push_back({"metrics", "lwfa_metrics.jsonl", -1});

  const auto doc = json::parse(manifest_json(m));
  EXPECT_TRUE(validate_manifest(doc).empty());
  const RunManifest back = parse_manifest(doc);
  EXPECT_EQ(back.run_id, m.run_id);
  EXPECT_EQ(back.scenario, m.scenario);
  EXPECT_EQ(back.title, m.title);
  EXPECT_EQ(back.spec_digest, m.spec_digest);
  EXPECT_EQ(back.status, m.status);
  EXPECT_EQ(back.exit_code, m.exit_code);
  EXPECT_EQ(back.reason, m.reason);
  EXPECT_EQ(back.start_unix, m.start_unix);
  EXPECT_EQ(back.end_unix, m.end_unix);
  EXPECT_DOUBLE_EQ(back.wall_s, m.wall_s);
  EXPECT_EQ(back.steps_done, m.steps_done);
  EXPECT_DOUBLE_EQ(back.sim_time_s, m.sim_time_s);
  EXPECT_EQ(back.num_events, m.num_events);
  EXPECT_EQ(back.num_alerts, m.num_alerts);
  EXPECT_EQ(back.flags, m.flags);
  ASSERT_EQ(back.artifacts.size(), 2u);
  EXPECT_EQ(back.artifacts[0].name, "events");
  EXPECT_EQ(back.artifacts[0].bytes, 512);
  EXPECT_EQ(back.artifacts[1].bytes, -1);
}

TEST(RunManifest, ForeignSchemaThrowsOnParseNotOnValidate) {
  const auto foreign = json::parse("{\"schema\": \"mrpic.metrics.v1\"}");
  EXPECT_THROW(parse_manifest(foreign), std::runtime_error);
  EXPECT_FALSE(validate_manifest(foreign).empty());  // reports, never throws
}

TEST(RunManifest, ValidateCatchesStructuralProblems) {
  const auto base = json::parse(manifest_json([] {
    RunManifest m;
    m.run_id = "r-1";
    m.scenario = "s";
    m.status = kRunStatusCompleted;
    m.start_unix = 1754600000;
    return m;
  }()));
  ASSERT_TRUE(validate_manifest(base).empty());

  const auto expect_invalid = [](const char* text) {
    const auto errors = validate_manifest(json::parse(text));
    EXPECT_FALSE(errors.empty()) << text;
  };
  expect_invalid("[1, 2]");                                       // not an object
  expect_invalid(R"({"schema": "mrpic.run.v1", "scenario": "s",
                     "status": "completed", "start_unix": 1, "steps_done": 0,
                     "artifacts": []})");                         // no run_id
  expect_invalid(R"({"schema": "mrpic.run.v1", "run_id": "r", "scenario": "s",
                     "status": "exploded", "start_unix": 1, "steps_done": 0,
                     "artifacts": []})");                         // unknown status
  expect_invalid(R"({"schema": "mrpic.run.v1", "run_id": "r", "scenario": "s",
                     "status": "completed", "start_unix": 1, "steps_done": -5,
                     "artifacts": []})");                         // negative steps
  expect_invalid(R"({"schema": "mrpic.run.v1", "run_id": "r", "scenario": "s",
                     "status": "completed", "start_unix": 1, "steps_done": 0,
                     "artifacts": [17]})");                       // bad inventory
}

TEST(RunManifest, RunContextLifecycle) {
  const std::string dir = "test_run_ctx";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string manifest_path = dir + "/run.json";

  RunContext rc("demo-1", "demo", manifest_path);
  rc.manifest().title = "demo title";
  rc.add_artifact("events", dir + "/demo_events.jsonl");
  rc.add_artifact("never_written", dir + "/ghost.csv");
  ASSERT_TRUE(rc.start());

  // The startup manifest is durable and says "running".
  {
    const RunManifest running = read_manifest(manifest_path);
    EXPECT_EQ(running.status, kRunStatusRunning);
    EXPECT_EQ(running.run_id, "demo-1");
    EXPECT_GT(running.start_unix, 0);
  }

  // Produce one artifact, then finalize: bytes are stat'ed, status flips.
  { std::ofstream(dir + "/demo_events.jsonl") << "{\"x\":1}\n"; }
  ASSERT_TRUE(rc.finalize(kRunStatusCompleted, 0, 42, 1.5e-14));

  const RunManifest done = read_manifest(manifest_path);
  EXPECT_EQ(done.status, kRunStatusCompleted);
  EXPECT_EQ(done.exit_code, 0);
  EXPECT_EQ(done.steps_done, 42);
  EXPECT_DOUBLE_EQ(done.sim_time_s, 1.5e-14);
  EXPECT_GE(done.end_unix, done.start_unix);
  ASSERT_EQ(done.artifacts.size(), 2u);
  // Inventory paths are relative to the manifest directory.
  EXPECT_EQ(done.artifacts[0].path, "demo_events.jsonl");
  EXPECT_GT(done.artifacts[0].bytes, 0);
  EXPECT_EQ(done.artifacts[1].bytes, -1);  // ghost.csv was never written

  // Atomic rewrite leaves no .tmp behind.
  EXPECT_FALSE(std::filesystem::exists(manifest_path + ".tmp"));
  EXPECT_TRUE(validate_manifest(json::parse([&] {
                std::ifstream is(manifest_path);
                return std::string(std::istreambuf_iterator<char>(is), {});
              }()))
                  .empty());
  std::filesystem::remove_all(dir);
}

TEST(RunManifest, FileSizeBytes) {
  EXPECT_EQ(file_size_bytes("definitely_missing_file.bin"), -1);
  const std::string path = "test_size_probe.bin";
  { std::ofstream(path) << "12345"; }
  EXPECT_EQ(file_size_bytes(path), 5);
  std::remove(path.c_str());
}

} // namespace
} // namespace mrpic::obs
