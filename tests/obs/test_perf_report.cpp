#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "src/obs/bench_diff.hpp"
#include "src/obs/json.hpp"
#include "src/obs/perf_report.hpp"
#include "src/obs/rank_recorder_io.hpp"

namespace mrpic::obs {
namespace {

// Two ranks, two steps, one inter-rank message per step, plus a rebalance
// and a fault event so every array of the document is exercised.
RankRecorder make_recorder() {
  RankRecorder rec(2);
  for (std::int64_t s = 0; s < 2; ++s) {
    RankStepBreakdown bd;
    bd.step = s;
    bd.ranks.resize(2);
    for (int r = 0; r < 2; ++r) {
      bd.ranks[r].rank = r;
      bd.ranks[r].compute_s = r == 0 ? 3e-3 : 1e-3;
      bd.ranks[r].comm_s = 0.5e-3;
      bd.ranks[r].bytes_sent = r == 0 ? 1024 : 0;
      bd.ranks[r].bytes_recv = r == 0 ? 0 : 1024;
      bd.ranks[r].messages = 1;
      bd.ranks[r].boxes = 2;
    }
    // Retry time is part of comm_s by construction (SimCluster charges the
    // protocol overhead into the rank's halo time), so rank 1 is the
    // comm-critical rank and the resil term is attributed to it.
    bd.ranks[1].retry_s = 1e-5;
    bd.ranks[1].comm_s += 1e-5;
    bd.ranks[1].retries = 1;
    HaloMessage msg;
    msg.src_rank = 0;
    msg.dst_rank = 1;
    msg.src_box = 0;
    msg.dst_box = 2;
    msg.bytes = 1024;
    msg.latency_s = 2e-6;
    msg.transfer_s = 1e-7;
    msg.attempts = 2;
    msg.retry_s = 1e-5;
    rec.set_step(s);
    rec.add_step(bd, {msg});
  }
  RebalanceRecord rb;
  rb.step = 1;
  rb.rank_cost_before = {4.0, 1.0};
  rb.rank_cost_after = {2.5, 2.5};
  rb.imbalance_before = 1.6;
  rb.imbalance_after = 1.0;
  rec.add_rebalance(rb);
  FaultEvent ev;
  ev.step = 1;
  ev.kind = "slowdown";
  ev.rank = 1;
  ev.time_s = 1e-4;
  ev.detail = "rank 1 of 2";
  rec.add_fault_event(ev);
  return rec;
}

TEST(RankRecorderIo, RoundTripIsLossless) {
  const auto rec = make_recorder();
  std::ostringstream os;
  write_recorder_json(rec, os);
  const auto back = read_recorder_json(os.str());

  EXPECT_EQ(back.nranks(), rec.nranks());
  ASSERT_EQ(back.steps().size(), rec.steps().size());
  for (std::size_t s = 0; s < rec.steps().size(); ++s) {
    const auto& a = rec.steps()[s];
    const auto& b = back.steps()[s];
    EXPECT_EQ(a.step, b.step);
    ASSERT_EQ(a.ranks.size(), b.ranks.size());
    for (std::size_t r = 0; r < a.ranks.size(); ++r) {
      EXPECT_EQ(a.ranks[r].rank, b.ranks[r].rank);
      EXPECT_DOUBLE_EQ(a.ranks[r].compute_s, b.ranks[r].compute_s);
      EXPECT_DOUBLE_EQ(a.ranks[r].comm_s, b.ranks[r].comm_s);
      EXPECT_DOUBLE_EQ(a.ranks[r].retry_s, b.ranks[r].retry_s);
      EXPECT_EQ(a.ranks[r].bytes_sent, b.ranks[r].bytes_sent);
      EXPECT_EQ(a.ranks[r].bytes_recv, b.ranks[r].bytes_recv);
      EXPECT_EQ(a.ranks[r].messages, b.ranks[r].messages);
      EXPECT_EQ(a.ranks[r].retries, b.ranks[r].retries);
      EXPECT_EQ(a.ranks[r].boxes, b.ranks[r].boxes);
    }
  }
  ASSERT_EQ(back.messages().size(), rec.messages().size());
  for (std::size_t i = 0; i < rec.messages().size(); ++i) {
    const auto& a = rec.messages()[i];
    const auto& b = back.messages()[i];
    EXPECT_EQ(a.step, b.step);
    EXPECT_EQ(a.src_rank, b.src_rank);
    EXPECT_EQ(a.dst_rank, b.dst_rank);
    EXPECT_EQ(a.src_box, b.src_box);
    EXPECT_EQ(a.dst_box, b.dst_box);
    EXPECT_EQ(a.bytes, b.bytes);
    EXPECT_DOUBLE_EQ(a.latency_s, b.latency_s);
    EXPECT_DOUBLE_EQ(a.transfer_s, b.transfer_s);
    EXPECT_EQ(a.attempts, b.attempts);
    EXPECT_DOUBLE_EQ(a.retry_s, b.retry_s);
  }
  ASSERT_EQ(back.rebalances().size(), 1u);
  EXPECT_EQ(back.rebalances()[0].step, 1);
  EXPECT_DOUBLE_EQ(back.rebalances()[0].imbalance_before, 1.6);
  ASSERT_EQ(back.rebalances()[0].rank_cost_before.size(), 2u);
  ASSERT_EQ(back.fault_events().size(), 1u);
  EXPECT_EQ(back.fault_events()[0].kind, "slowdown");
  EXPECT_EQ(back.fault_events()[0].detail, "rank 1 of 2");
}

TEST(RankRecorderIo, RejectsForeignDocuments) {
  EXPECT_THROW(read_recorder_json(std::string("{\"bench\":\"kernels\"}")),
               std::runtime_error);
  EXPECT_THROW(read_recorder_json(
                   std::string("{\"format\":\"mrpic-ranks\",\"version\":99}")),
               std::runtime_error);
  EXPECT_THROW(read_recorder_json(std::string("not json")), std::runtime_error);
}

TEST(PerfReport, BuildExtractsPathsAndOverheads) {
  PerfReportOptions opt;
  opt.title = "unit";
  opt.latency_s = 2e-6;
  const auto report = build_perf_report(make_recorder(), opt);
  EXPECT_EQ(report.nranks, 2);
  ASSERT_EQ(report.paths.size(), 2u);
  ASSERT_EQ(report.step_overhead.size(), 2u);
  EXPECT_EQ(report.summary.steps, 2);
  for (const auto& t : report.step_overhead) {
    EXPECT_NEAR(t.invariant_gap(), 0.0, 1e-12);
    EXPECT_DOUBLE_EQ(t.residual, 0.0);
    EXPECT_GT(t.resil, 0.0); // the injected retry shows up
  }
  // Worst-step order is by descending makespan.
  const auto order = report.worst_steps();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_GE(report.paths[std::size_t(order[0])].makespan_s,
            report.paths[std::size_t(order[1])].makespan_s);
}

TEST(PerfReport, JsonValidatesAgainstAttributionSchema) {
  const auto report = build_perf_report(make_recorder());
  std::ostringstream os;
  write_json(report, os);
  const auto doc = json::parse(os.str());
  EXPECT_EQ(doc["bench"].as_string(), "attribution");
  const auto errors = benchdiff::validate_schema(doc);
  for (const auto& e : errors) { ADD_FAILURE() << e; }
  // Loss records carry the invariant gap for the regression gate.
  ASSERT_TRUE(doc["loss"].is_array());
  for (const auto& rec : doc["loss"].as_array()) {
    EXPECT_LT(std::abs(rec["invariant_gap"].as_number()), 1e-9);
  }
  ASSERT_TRUE(doc["critical_path"].is_array());
  EXPECT_TRUE(doc["critical_path"].as_array()[0]["rank_chain"].is_array());
  EXPECT_TRUE(doc["stragglers"].is_array());
}

TEST(PerfReport, MarkdownNamesChainAndComposition) {
  PerfReportOptions opt;
  opt.title = "md unit";
  const auto report = build_perf_report(make_recorder(), opt);
  std::ostringstream os;
  write_markdown(report, os);
  const std::string md = os.str();
  EXPECT_NE(md.find("# md unit"), std::string::npos);
  EXPECT_NE(md.find("Critical-path composition"), std::string::npos);
  EXPECT_NE(md.find("Straggler ranks"), std::string::npos);
  EXPECT_NE(md.find("0 -> 1"), std::string::npos); // the rank chain
  EXPECT_NE(md.find("Per-step parallel overhead"), std::string::npos);
}

TEST(PerfReport, ScalingLossesReplaceStepOverheadInJson) {
  auto report = build_perf_report(make_recorder());
  analysis::LossTerms t;
  t.nodes = 64;
  t.total_s = 2.0;
  t.ideal_s = 1.0;
  t.efficiency = 0.5;
  t.loss = 0.5;
  t.imbalance = 0.5;
  report.scaling_losses.push_back(t);
  std::ostringstream os;
  write_json(report, os);
  const auto doc = json::parse(os.str());
  ASSERT_EQ(doc["loss"].as_array().size(), 1u);
  EXPECT_DOUBLE_EQ(doc["loss"].as_array()[0]["nodes"].as_number(), 64.0);
  EXPECT_TRUE(benchdiff::validate_schema(doc).empty());
}

} // namespace
} // namespace mrpic::obs
