// Concurrency tests for the obs layer: scopes opened simultaneously from
// the OpenMP parallel_for backend and from raw std::threads, plus atomic
// counter updates. These are the tests the MRPIC_SANITIZE=thread ctest
// re-runs under TSan (see tests/CMakeLists.txt).

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/amr/parallel_for.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/profiler.hpp"

namespace mrpic::obs {
namespace {

TEST(ObsConcurrency, ScopesFromParallelForWorkers) {
  Profiler p;
  p.set_tracing(true);
  const std::int64_t n = 500;
  {
    auto outer = p.scope("parallel_region");
    mrpic::parallel_for(n, [&](std::int64_t i) {
      auto s = p.scope("work");
      if (i % 2 == 0) {
        auto nested = p.scope("even");
      }
    });
  }
  // Every iteration recorded exactly once, across all threads and parents.
  const auto flat = p.flat_totals();
  EXPECT_EQ(flat.at("work").count, n);
  EXPECT_EQ(flat.at("even").count, n / 2);
  EXPECT_EQ(flat.at("parallel_region").count, 1);
  // Trace captured one event per closed scope (cap is far above this).
  EXPECT_EQ(p.trace_events().size(), static_cast<std::size_t>(1 + n + n / 2));
}

TEST(ObsConcurrency, ScopesFromRawThreadsNestIndependently) {
  Profiler p;
  const int nthreads = 8;
  const int reps = 200;
  std::vector<std::thread> threads;
  threads.reserve(nthreads);
  for (int t = 0; t < nthreads; ++t) {
    threads.emplace_back([&p] {
      for (int r = 0; r < reps; ++r) {
        auto a = p.scope("a");
        auto b = p.scope("b");
        auto c = p.scope("c");
      }
    });
  }
  for (auto& t : threads) { t.join(); }
  EXPECT_EQ(p.stats("a").count, nthreads * reps);
  EXPECT_EQ(p.stats("a/b").count, nthreads * reps);
  EXPECT_EQ(p.stats("a/b/c").count, nthreads * reps);
  // Inclusive times nest even when accumulated from many threads.
  EXPECT_GE(p.stats("a").inclusive_s, p.stats("a/b").inclusive_s);
  EXPECT_GE(p.stats("a/b").inclusive_s, p.stats("a/b/c").inclusive_s);
}

TEST(ObsConcurrency, CountersAreAtomicUnderParallelFor) {
  MetricsRegistry reg;
  const std::int64_t n = 20000;
  // Pre-create so worker threads race only on the atomic adds, and also
  // exercise concurrent lookup of an existing name.
  reg.counter("hits");
  mrpic::parallel_for(n, [&](std::int64_t i) {
    reg.counter("hits").inc();
    if (i % 4 == 0) { reg.counter("quarter").inc(); }
    reg.gauge("last").set(static_cast<double>(i));
  });
  EXPECT_EQ(reg.counter_value("hits"), n);
  EXPECT_EQ(reg.counter_value("quarter"), n / 4);
  EXPECT_GE(reg.gauge_value("last"), 0.0);
  EXPECT_LT(reg.gauge_value("last"), static_cast<double>(n));
}

TEST(ObsConcurrency, RegistryCreationRace) {
  MetricsRegistry reg;
  // Many threads creating the same and different names concurrently.
  mrpic::parallel_for(64, [&](std::int64_t i) {
    reg.counter("shared").add(1);
    reg.counter("lane_" + std::to_string(i % 8)).add(1);
  });
  EXPECT_EQ(reg.counter_value("shared"), 64);
  std::int64_t lanes = 0;
  for (int l = 0; l < 8; ++l) { lanes += reg.counter_value("lane_" + std::to_string(l)); }
  EXPECT_EQ(lanes, 64);
}

} // namespace
} // namespace mrpic::obs
