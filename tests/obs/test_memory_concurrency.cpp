// Concurrency suite for obs::MemoryLedger / MemCharge. The ledger's hot
// path is relaxed atomics by design (charges fire from whatever thread owns
// the allocation), so these tests hammer interning, charge/release and the
// RAII handle from many threads and assert the conservation invariant at
// the join. Re-run under TSan by the memory_concurrency_sanitized ctest
// when the build is configured with -DMRPIC_SANITIZE=thread.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/memory.hpp"

namespace mrpic::obs {
namespace {

TEST(MemoryConcurrency, ConcurrentChargeReleaseConserves) {
  MemoryLedger ledger;
  constexpr int kThreads = 8;
  constexpr int kIters = 4000;
  // Interning races with charging: every thread interns the shared tags
  // itself, so the mutex-guarded slow path is exercised alongside the
  // atomic fast path.
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&ledger, t] {
      const int shared = ledger.intern("shared.account");
      const int own = ledger.intern("worker." + std::to_string(t));
      for (int i = 0; i < kIters; ++i) {
        ledger.charge(shared, 64);
        ledger.charge(own, 128);
        ledger.release(shared, 64);
        ledger.release(own, i % 2 ? 128 : 64);
        if (i % 2 == 0) { ledger.release(own, 64); }
      }
    });
  }
  for (auto& w : workers) { w.join(); }

  // Every byte charged was released: the ledger drained to zero and the
  // conservation invariant holds exactly.
  EXPECT_EQ(ledger.total_current(), 0);
  EXPECT_EQ(ledger.current("shared.account"), 0);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(ledger.current("worker." + std::to_string(t)), 0);
  }
  EXPECT_EQ(ledger.total_charged() - ledger.total_released(),
            ledger.total_current());
  EXPECT_EQ(ledger.total_charged(),
            std::int64_t(kThreads) * kIters * (64 + 128));
  // The high-water mark saw at least one thread's live footprint and never
  // less than the final occupancy.
  EXPECT_GE(ledger.total_high_water(), 128);
}

TEST(MemoryConcurrency, MemChargeHammerOnGlobalLedger) {
  auto& ledger = memory_ledger();
  const std::int64_t base_current = ledger.total_current();
  constexpr int kThreads = 8;
  constexpr int kIters = 500;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t] {
      // ScopedMemTag is thread-local: each worker's scope stack is its own.
      ScopedMemTag scope("memtest.hammer");
      ScopedMemTag mine(std::to_string(t));
      for (int i = 0; i < kIters; ++i) {
        MemCharge c;
        c.update(256);
        c.update(512);
        MemCharge moved(std::move(c));
        MemCharge copied(moved);
        copied.update(100);
        // Handles release on scope exit, from this thread.
      }
    });
  }
  for (auto& w : workers) { w.join(); }

  for (int t = 0; t < kThreads; ++t) {
    const std::string tag = "memtest.hammer." + std::to_string(t);
    EXPECT_EQ(ledger.current(tag), 0) << tag;
    EXPECT_GE(ledger.high_water(tag), 512 + 100) << tag;
  }
  EXPECT_EQ(ledger.current_prefix("memtest.hammer"), 0);
  // The global ledger is quiescent again: everything this test charged was
  // returned, and the process-wide invariant still balances to the byte.
  EXPECT_EQ(ledger.total_current(), base_current);
  EXPECT_EQ(ledger.total_charged() - ledger.total_released(),
            ledger.total_current());
}

TEST(MemoryConcurrency, SnapshotWhileMutating) {
  MemoryLedger ledger;
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    const int id = ledger.intern("mutating");
    std::int64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      ledger.charge(id, 32);
      ledger.release(id, 32);
      // Keep growing the account table under the reader too.
      if (++i % 64 == 0) { ledger.intern("grow." + std::to_string(i)); }
    }
  });
  // Concurrent readers must never crash or tear: totals and snapshots are
  // taken while the writer mutates.
  for (int i = 0; i < 2000; ++i) {
    const auto snap = ledger.snapshot();
    EXPECT_GE(snap.size(), 1u);
    (void)ledger.total_current();
    (void)ledger.current_prefix("grow");
    (void)ledger.high_water("mutating");
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  EXPECT_EQ(ledger.total_current(), 0);
  EXPECT_EQ(ledger.total_charged(), ledger.total_released());
}

} // namespace
} // namespace mrpic::obs
