#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/obs/json.hpp"
#include "src/obs/profiler.hpp"
#include "src/obs/trace.hpp"

namespace mrpic::obs {
namespace {

TEST(Json, WriterEscapesAndParserRoundTrips) {
  std::ostringstream os;
  json::Writer w(os);
  w.begin_object();
  w.field("name", "a \"quoted\"\nline\t\\");
  w.field("num", 1.5);
  w.field("int", std::int64_t(-42));
  w.field("flag", true);
  w.begin_array("arr").value(1.0).value("two").end_array();
  w.end_object();

  const json::Value v = json::parse(os.str());
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v["name"].as_string(), "a \"quoted\"\nline\t\\");
  EXPECT_DOUBLE_EQ(v["num"].as_number(), 1.5);
  EXPECT_EQ(v["int"].as_int(), -42);
  EXPECT_TRUE(v["flag"].as_bool());
  ASSERT_TRUE(v["arr"].is_array());
  ASSERT_EQ(v["arr"].as_array().size(), 2u);
  EXPECT_EQ(v["arr"].as_array()[1].as_string(), "two");
  EXPECT_TRUE(v["missing"].is_null());
}

TEST(Json, ParserRejectsMalformedInput) {
  EXPECT_THROW(json::parse("{"), std::runtime_error);
  EXPECT_THROW(json::parse("{\"a\":1} trailing"), std::runtime_error);
  EXPECT_THROW(json::parse("[1,]"), std::runtime_error);
  EXPECT_THROW(json::parse("nope"), std::runtime_error);
  EXPECT_THROW(json::parse("\"unterminated"), std::runtime_error);
}

TEST(Trace, ChromeTraceIsWellFormedAndCarriesStepAndThread) {
  Profiler p;
  p.set_tracing(true);
  for (std::int64_t step = 0; step < 3; ++step) {
    p.set_step(step);
    auto outer = p.scope("step");
    auto inner = p.scope("particles");
  }

  std::ostringstream os;
  write_chrome_trace(p.trace_events(), os, "test_proc");

  // Parse back the document we just wrote (the acceptance check: a
  // chrome://tracing / Perfetto loader needs exactly this structure).
  const json::Value doc = json::parse(os.str());
  ASSERT_TRUE(doc.is_object());
  ASSERT_TRUE(doc["traceEvents"].is_array());
  const auto& events = doc["traceEvents"].as_array();
  // 2 metadata events (process_name + thread_name for the one tid) +
  // 2 regions x 3 steps.
  ASSERT_EQ(events.size(), 2u + 6u);

  const auto& meta = events[0];
  EXPECT_EQ(meta["ph"].as_string(), "M");
  EXPECT_EQ(meta["name"].as_string(), "process_name");
  EXPECT_EQ(meta["args"]["name"].as_string(), "test_proc");

  const auto& tmeta = events[1];
  EXPECT_EQ(tmeta["ph"].as_string(), "M");
  EXPECT_EQ(tmeta["name"].as_string(), "thread_name");
  EXPECT_EQ(tmeta["args"]["name"].as_string(), "main");

  std::int64_t seen_steps = 0;
  for (std::size_t i = 2; i < events.size(); ++i) {
    const auto& ev = events[i];
    EXPECT_EQ(ev["ph"].as_string(), "X");
    EXPECT_TRUE(ev["name"].is_string());
    EXPECT_TRUE(ev["ts"].is_number());
    EXPECT_TRUE(ev["dur"].is_number());
    EXPECT_GE(ev["dur"].as_number(), 0.0);
    EXPECT_TRUE(ev["tid"].is_number());
    ASSERT_TRUE(ev["args"].is_object());
    const std::int64_t step = ev["args"]["step"].as_int();
    EXPECT_GE(step, 0);
    EXPECT_LT(step, 3);
    seen_steps |= std::int64_t(1) << step;
  }
  EXPECT_EQ(seen_steps, 0b111);
}

TEST(Trace, NestedEventsAreContainedInParentSpan) {
  Profiler p;
  p.set_tracing(true);
  {
    auto outer = p.scope("outer");
    auto inner = p.scope("inner");
  }
  const auto events = p.trace_events();
  ASSERT_EQ(events.size(), 2u);
  // Events record at close, so inner closes first.
  const auto& inner = events[0];
  const auto& outer = events[1];
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(outer.name, "outer");
  EXPECT_GE(inner.ts_us, outer.ts_us);
  EXPECT_LE(inner.ts_us + inner.dur_us, outer.ts_us + outer.dur_us + 1e-3);
}

TEST(Trace, FileExportParsesBack) {
  Profiler p;
  p.set_tracing(true);
  {
    auto s = p.scope("io");
  }
  const std::string path = "test_trace_tmp.json";
  ASSERT_TRUE(write_chrome_trace(p, path));
  std::ifstream is(path);
  std::string all((std::istreambuf_iterator<char>(is)), std::istreambuf_iterator<char>());
  is.close();
  std::remove(path.c_str());
  const json::Value doc = json::parse(all);
  EXPECT_TRUE(doc["traceEvents"].is_array());
  EXPECT_EQ(doc["displayTimeUnit"].as_string(), "ms");
}

TEST(Trace, EventCapDropsInsteadOfGrowing) {
  Profiler p;
  p.set_tracing(true);
  p.set_max_trace_events(5);
  for (int i = 0; i < 10; ++i) {
    auto s = p.scope("r");
  }
  EXPECT_EQ(p.trace_events().size(), 5u);
  EXPECT_EQ(p.dropped_trace_events(), 5u);
  EXPECT_EQ(p.stats("r").count, 10); // stats unaffected by the trace cap
}

} // namespace
} // namespace mrpic::obs
