// KernelProbe is driven from whatever thread owns a kernel launch while
// report builders snapshot it; hammer the mutex-guarded surface from many
// threads. Runs in the normal suite and again under -DMRPIC_SANITIZE=thread
// via the kernel_concurrency_sanitized ctest.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/obs/kernel_probe.hpp"
#include "src/obs/locality.hpp"
#include "src/obs/metrics.hpp"

namespace mrpic::obs {
namespace {

TEST(KernelConcurrency, RecordAndSnapshotHammer) {
  KernelObsConfig cfg;
  cfg.max_invocations = 256; // force the drop path under contention
  KernelProbe probe(cfg);

  const mrpic::Geometry<2> geom(mrpic::Box2(mrpic::IntVect2(0, 0), mrpic::IntVect2(15, 15)),
                                mrpic::RealVect2(0, 0), mrpic::RealVect2(16.0, 16.0),
                                {false, false});
  particles::ParticleTile<2> tile;
  for (int i = 0; i < 512; ++i) {
    const Real x = Real((i * 7) % 16) + Real(0.5);
    const Real y = Real((i * 3) % 16) + Real(0.5);
    tile.push_back({x, y}, {0, 0, 0}, 1.0);
  }

  constexpr int kThreads = 8;
  constexpr int kIters = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const auto kind = static_cast<KernelKind>((t + i) % kNumKernelKinds);
        probe.record(kind, i, "e", t, 100, 1e-6, 2, 2);
        if (i % 16 == 0) { probe.sample_locality<2>(tile, geom, geom.domain()); }
        if (i % 8 == 0) {
          (void)probe.aggregates();
          (void)probe.invocations();
          (void)probe.locality();
          (void)probe.self_time_s();
        }
      }
    });
  }
  for (auto& th : threads) { th.join(); }

  std::int64_t total = 0;
  for (const auto& agg : probe.aggregates()) { total += agg.invocations; }
  EXPECT_EQ(total, std::int64_t(kThreads) * kIters);
  EXPECT_EQ(std::int64_t(probe.invocations().size()) + probe.dropped_invocations(),
            total);
  EXPECT_EQ(probe.locality_tiles(), kThreads * (kIters / 16 + (kIters % 16 ? 1 : 0)));
  EXPECT_GT(probe.locality().pairs, 0);

  MetricsRegistry metrics;
  probe.publish(metrics);
  EXPECT_GT(metrics.gauge("kernel_probe_self_s").value(), 0.0);
}

} // namespace
} // namespace mrpic::obs
