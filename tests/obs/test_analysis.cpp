#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/cluster/sim_cluster.hpp"
#include "src/dist/distribution_mapping.hpp"
#include "src/obs/analysis.hpp"
#include "src/obs/rank_recorder.hpp"
#include "src/perf/flop_counter.hpp"
#include "src/perf/machine.hpp"
#include "src/perf/scaling_model.hpp"

namespace mrpic::obs::analysis {
namespace {

// Three ranks; rank 0 is compute-heavy, messages relay 0 -> 1 -> 2 so the
// latency chain crosses ranks.
RankStepBreakdown make_breakdown() {
  RankStepBreakdown bd;
  bd.step = 7;
  bd.ranks.resize(3);
  for (int r = 0; r < 3; ++r) { bd.ranks[r].rank = r; }
  bd.ranks[0].compute_s = 1.0;
  bd.ranks[1].compute_s = 0.2;
  bd.ranks[2].compute_s = 0.1;
  bd.ranks[0].comm_s = 0.1;
  bd.ranks[1].comm_s = 0.2;
  bd.ranks[2].comm_s = 0.1;
  bd.ranks[0].messages = 1;
  bd.ranks[1].messages = 2;
  bd.ranks[2].messages = 1;
  return bd;
}

std::vector<HaloMessage> make_messages() {
  HaloMessage a; // 0 -> 1
  a.step = 7;
  a.src_rank = 0;
  a.dst_rank = 1;
  a.latency_s = 0.02;
  a.transfer_s = 0.08;
  HaloMessage b; // 1 -> 2
  b.step = 7;
  b.src_rank = 1;
  b.dst_rank = 2;
  b.latency_s = 0.02;
  b.transfer_s = 0.08;
  return {a, b};
}

TEST(AnalysisDag, ChainLengthEqualsRecordedPerRankTime) {
  const auto bd = make_breakdown();
  const auto dag = build_step_dag(bd, make_messages());
  // Per-rank chain length (finish of the rank's last node) must equal the
  // recorded compute_s + comm_s exactly; residual nodes absorb any comm the
  // message log does not cover.
  std::vector<double> finish(3, 0.0);
  for (const auto& n : dag.nodes) {
    if (n.kind == SegmentKind::Message) {
      finish[n.src_rank] = std::max(finish[n.src_rank], n.finish_s);
      finish[n.dst_rank] = std::max(finish[n.dst_rank], n.finish_s);
    } else {
      finish[n.rank] = std::max(finish[n.rank], n.finish_s);
    }
  }
  // Rank 0: compute 1.0, then message a (0.1) -> 1.1. Rank 1: a gated by
  // rank 0 finishes 1.1, then b -> 1.2, residual absorbs nothing (logged
  // 0.2 == comm_s). Rank 2: compute 0.1, b finishes 1.2.
  EXPECT_DOUBLE_EQ(finish[0], 1.1);
  EXPECT_DOUBLE_EQ(finish[1], 1.2);
  EXPECT_DOUBLE_EQ(finish[2], 1.2);
  // The relayed latency chain pushes the makespan past the scalar model
  // total max(compute + comm) = 1.1 — the effect only the DAG can see.
  EXPECT_DOUBLE_EQ(dag.modeled_total_s, 1.1);
  EXPECT_DOUBLE_EQ(dag.makespan_s, 1.2);
}

TEST(AnalysisDag, ResidualNodeCoversUnloggedComm) {
  auto bd = make_breakdown();
  bd.ranks[2].comm_s = 0.35; // 0.1 logged via message b + 0.25 residual
  const auto dag = build_step_dag(bd, make_messages());
  double residual = 0;
  for (const auto& n : dag.nodes) {
    if (n.kind == SegmentKind::HaloResidual) {
      EXPECT_EQ(n.rank, 2);
      residual += n.duration_s;
    }
  }
  EXPECT_NEAR(residual, 0.25, 1e-15);
}

TEST(AnalysisDag, MessagesSerializeOnTheNic) {
  RankStepBreakdown bd;
  bd.ranks.resize(2);
  bd.ranks[0].comm_s = 0.2;
  bd.ranks[1].comm_s = 0.2;
  HaloMessage m;
  m.src_rank = 0;
  m.dst_rank = 1;
  m.latency_s = 0.02;
  m.transfer_s = 0.08;
  const auto dag = build_step_dag(bd, {m, m});
  std::vector<const DagNode*> msgs;
  for (const auto& n : dag.nodes) {
    if (n.kind == SegmentKind::Message) { msgs.push_back(&n); }
  }
  ASSERT_EQ(msgs.size(), 2u);
  EXPECT_DOUBLE_EQ(msgs[0]->finish_s, 0.1);
  EXPECT_DOUBLE_EQ(msgs[1]->start_s, 0.1); // second send waits for the NIC
  EXPECT_DOUBLE_EQ(dag.makespan_s, 0.2);
}

TEST(AnalysisCriticalPath, CompositionSumsToMakespan) {
  const auto path = critical_path(make_breakdown(), make_messages());
  EXPECT_DOUBLE_EQ(path.makespan_s, 1.2);
  EXPECT_NEAR(path.compute_s + path.transfer_s + path.latency_s + path.retry_s,
              path.makespan_s, 1e-12);
  // The gating chain: rank 0's compute, message 0->1, message 1->2.
  EXPECT_DOUBLE_EQ(path.compute_s, 1.0);
  EXPECT_DOUBLE_EQ(path.latency_s, 0.04);
  EXPECT_DOUBLE_EQ(path.transfer_s, 0.16);
  ASSERT_FALSE(path.rank_chain.empty());
  EXPECT_EQ(path.rank_chain.front(), 0);
  EXPECT_EQ(path.rank_chain.back(), 2);
}

TEST(AnalysisCriticalPath, SummaryAggregatesAndRanksStragglers) {
  RankRecorder rec(3);
  rec.set_step(0);
  rec.add_step(make_breakdown(), make_messages());
  const auto paths = critical_paths(rec);
  ASSERT_EQ(paths.size(), 1u);
  const auto s = summarize(paths, rec.nranks());
  EXPECT_EQ(s.steps, 1);
  EXPECT_DOUBLE_EQ(s.makespan_s, 1.2);
  const auto order = s.stragglers();
  ASSERT_FALSE(order.empty());
  EXPECT_EQ(order.front(), 0); // rank 0's 1.0 s compute dominates the path
  EXPECT_EQ(s.finishes_per_rank[2], 1);
}

TEST(AnalysisLoss, StepOverheadTermsSumExactlyWithZeroResidual) {
  const auto t = decompose_step_overhead(make_breakdown(), 0.02);
  // ideal = mean compute -> residual is identically zero.
  EXPECT_DOUBLE_EQ(t.residual, 0.0);
  EXPECT_NEAR(t.invariant_gap(), 0.0, 1e-15);
  EXPECT_EQ(t.compute_critical_rank, 0);
  EXPECT_EQ(t.comm_critical_rank, 1);
  // T = C_max + W_max = 1.0 + 0.2; lambda = 1.0 / (1.3/3).
  EXPECT_DOUBLE_EQ(t.total_s, 1.2);
  EXPECT_NEAR(t.lambda, 1.0 / (1.3 / 3.0), 1e-12);
  // Latency term: comm-critical rank has 2 messages * 0.02 s.
  EXPECT_NEAR(t.latency * t.total_s, 0.04, 1e-15);
}

TEST(AnalysisLoss, ResilTermsChargeDetectAndCheckpoint) {
  const auto t = decompose_loss(make_breakdown(), 0.02, /*ideal_s=*/1.0,
                                /*detect_s=*/0.1, /*checkpoint_s=*/0.2);
  EXPECT_DOUBLE_EQ(t.total_s, 1.5); // 1.0 + 0.2 + 0.1 + 0.2
  EXPECT_NEAR(t.resil * t.total_s, 0.3, 1e-15);
  EXPECT_NEAR(t.invariant_gap(), 0.0, 1e-12);
}

// Acceptance gate (run as the `attribution_invariant` ctest): on the weak-
// and strong-scaling recorder sweeps the loss terms must sum to
// 1 - efficiency within 1e-9 at every node count.
TEST(AttributionInvariant, WeakScalingSweepTermsSumToLoss) {
  const auto& summit = perf::machine_by_name("Summit");
  cluster::CommModel cm;
  cm.latency_s = summit.net_latency_s;
  cm.bandwidth_Bps = summit.net_bandwidth_Bps;
  perf::StepTimeModel st;
  const double comp = st.node_seconds(summit, 64.0 * 64 * 64, 64.0 * 64 * 64) *
                      summit.devices_per_node;
  obs::RankRecorder recorder(64);
  std::vector<double> totals;
  double t1 = 0;
  int sweep_point = 0;
  for (int rpd : {1, 2, 3, 4}) {
    const int nranks = rpd * rpd * rpd;
    const Box3 domain(IntVect3(0, 0, 0),
                      IntVect3(64 * rpd - 1, 64 * rpd - 1, 64 * rpd - 1));
    const auto ba = BoxArray<3>::decompose(domain, 64);
    const auto dm =
        dist::DistributionMapping::make(ba, nranks, dist::Strategy::SpaceFillingCurve);
    cluster::SimCluster cl(nranks, cm);
    recorder.set_step(sweep_point++);
    const auto cost =
        cl.step_cost(ba, dm, std::vector<Real>(ba.size(), comp), 9, 4, 8, &recorder);
    if (rpd == 1) { t1 = cost.total_s; }
    totals.push_back(cost.total_s);
  }
  ASSERT_EQ(recorder.steps().size(), 4u);
  for (std::size_t i = 0; i < recorder.steps().size(); ++i) {
    const auto t = decompose_loss(recorder.steps()[i], cm.latency_s, t1);
    // The decomposition reconstructs the scalar model's step time and
    // efficiency, and its terms sum to the loss within 1e-9 (acceptance
    // tolerance; the identity is exact up to FP rounding).
    EXPECT_NEAR(t.total_s, totals[i], 1e-12 * totals[i]);
    EXPECT_NEAR(t.efficiency, t1 / totals[i], 1e-9);
    EXPECT_LT(std::abs(t.invariant_gap()), 1e-9);
    // Clean weak-scaling sweep: uniform per-box work, one box per rank.
    EXPECT_NEAR(t.residual, 0.0, 1e-12);
    EXPECT_NEAR(t.imbalance, 0.0, 1e-12);
  }
}

TEST(AttributionInvariant, StrongScalingSweepTermsSumToLoss) {
  const auto& summit = perf::machine_by_name("Summit");
  cluster::CommModel cm;
  cm.latency_s = summit.net_latency_s;
  cm.bandwidth_Bps = summit.net_bandwidth_Bps;
  const Box3 domain(IntVect3(0, 0, 0), IntVect3(127, 127, 127));
  const auto ba = BoxArray<3>::decompose(domain, 32);
  perf::StepTimeModel st;
  const double box_comp =
      st.node_seconds(summit, 32.0 * 32 * 32, 32.0 * 32 * 32) * summit.devices_per_node;
  obs::RankRecorder recorder(64);
  double t1 = 0;
  int sweep_point = 0;
  std::vector<int> rank_counts = {1, 2, 4, 8, 16, 32, 64};
  for (int nranks : rank_counts) {
    const auto dm =
        dist::DistributionMapping::make(ba, nranks, dist::Strategy::SpaceFillingCurve);
    cluster::SimCluster cl(nranks, cm);
    recorder.set_step(sweep_point++);
    const auto cost =
        cl.step_cost(ba, dm, std::vector<Real>(ba.size(), box_comp), 9, 4, 8, &recorder);
    if (nranks == 1) { t1 = cost.total_s; }
  }
  for (std::size_t i = 0; i < recorder.steps().size(); ++i) {
    const auto t =
        decompose_loss(recorder.steps()[i], cm.latency_s, t1 / rank_counts[i]);
    EXPECT_LT(std::abs(t.invariant_gap()), 1e-9) << "point " << i;
    EXPECT_GT(t.efficiency, 0.0);
  }
}

TEST(AnalysisRoofline, PlacementAgainstMachinePeaks) {
  const auto& m = perf::machine_by_name("Summit");
  // Low intensity: memory bound, roof = intensity * bandwidth.
  const auto low = roofline_point("gather", 1e9, 1e9, m);
  EXPECT_DOUBLE_EQ(low.intensity, 1.0);
  EXPECT_TRUE(low.memory_bound);
  EXPECT_DOUBLE_EQ(low.roof_tflops, m.tbyte_s_device);
  // High intensity: compute bound, roof = device peak.
  const auto high = roofline_point("dense", 1e12, 1e6, m);
  EXPECT_FALSE(high.memory_bound);
  EXPECT_DOUBLE_EQ(high.roof_tflops, m.dp_tflops_device);
  // Attainment: attained/roof from a measured time.
  const auto timed = roofline_point("gather", 1e12, 1e12, m, /*time_s=*/1.0);
  EXPECT_NEAR(timed.attained_tflops, 1.0, 1e-12);
  EXPECT_NEAR(timed.attainment, 1.0 / timed.roof_tflops, 1e-12);
}

TEST(AnalysisRoofline, PicKernelBytesMatchStepTimeModelAggregate) {
  const double p = 1e6, c = 2e5;
  const auto bytes = pic_kernel_bytes(p, c);
  double particle_bytes = 0;
  for (const auto& [k, v] : bytes) {
    if (k != "field_solve") { particle_bytes += v; }
  }
  // Stage split must re-aggregate to StepTimeModel's 5000 B/particle +
  // 400 B/cell effective traffic.
  EXPECT_DOUBLE_EQ(particle_bytes, 5000.0 * p);
  EXPECT_DOUBLE_EQ(bytes.at("field_solve"), 400.0 * c);
  // Mixed precision scales every stage by the model's 0.6 traffic factor.
  const auto mp = pic_kernel_bytes(p, c, true);
  EXPECT_DOUBLE_EQ(mp.at("gather"), 0.6 * bytes.at("gather"));
}

TEST(AnalysisRoofline, FlopCounterKernelsArePlaced) {
  const auto& m = perf::machine_by_name("Frontier");
  perf::FlopCounter fc;
  fc.record("gather", std::int64_t(4e9));
  fc.record("push", std::int64_t(1e9));
  fc.record("mystery", std::int64_t(1e6)); // no traffic metadata
  const auto points =
      roofline(fc, pic_kernel_bytes(1e6, 2e5), m, {{"gather", 0.001}});
  ASSERT_EQ(points.size(), 3u);
  for (const auto& p : points) {
    if (p.kernel == "gather") {
      EXPECT_DOUBLE_EQ(p.flops, 4e9);
      EXPECT_DOUBLE_EQ(p.bytes, 2400.0 * 1e6);
      EXPECT_GT(p.attainment, 0.0); // measured time supplied
    } else if (p.kernel == "mystery") {
      // Placed at the ridge point, flagged by bytes == 0.
      EXPECT_DOUBLE_EQ(p.bytes, 0.0);
      EXPECT_DOUBLE_EQ(p.intensity, m.dp_tflops_device / m.tbyte_s_device);
      EXPECT_DOUBLE_EQ(p.time_s, 0.0);
    }
  }
}

} // namespace
} // namespace mrpic::obs::analysis
