#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "src/obs/event_log.hpp"

namespace mrpic::obs {
namespace {

TEST(EventLog, PublishAssignsMonotoneSeqAndWall) {
  EventLog log;
  const Event a = log.publish("lifecycle", "run_start", EventSeverity::Info, -1);
  const Event b = log.publish("health", "alert", EventSeverity::Warn, 3, "drift",
                              {{"value", 1.5}, {"bound", 1.0}});
  const Event c = log.publish("lifecycle", "abort", EventSeverity::Critical, 7);

  EXPECT_EQ(a.seq, 0);
  EXPECT_EQ(b.seq, 1);
  EXPECT_EQ(c.seq, 2);
  EXPECT_LE(a.wall_s, b.wall_s);
  EXPECT_LE(b.wall_s, c.wall_s);

  EXPECT_EQ(log.num_events(), 3);
  EXPECT_EQ(log.num_events(EventSeverity::Info), 1);
  EXPECT_EQ(log.num_events(EventSeverity::Warn), 1);
  EXPECT_EQ(log.num_events(EventSeverity::Critical), 1);

  const auto snap = log.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[1].category, "health");
  EXPECT_DOUBLE_EQ(snap[1].value("value"), 1.5);
  EXPECT_TRUE(std::isnan(snap[1].value("missing")));
}

TEST(EventLog, HistoryLimitBoundsMemoryNotCounts) {
  EventLogConfig cfg;
  cfg.history_limit = 4;
  EventLog log(cfg);
  for (int i = 0; i < 10; ++i) {
    log.publish("resil", "checkpoint", EventSeverity::Info, i);
  }
  EXPECT_EQ(log.num_events(), 10);
  EXPECT_EQ(log.num_dropped(), 6);
  const auto snap = log.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap.front().seq, 6);  // oldest retained
  EXPECT_EQ(snap.back().seq, 9);
}

TEST(EventLog, LineRoundTrip) {
  Event ev;
  ev.seq = 17;
  ev.step = 420;
  ev.wall_s = 1.25;
  ev.category = "rebalance";
  ev.kind = "remap";
  ev.severity = EventSeverity::Warn;
  ev.detail = "imbalance \"spike\"\n(line 2)";
  ev.data = {{"imbalance_before", 1.8}, {"imbalance_after", 1.1}};

  const std::string line = EventLog::event_line(ev);
  EXPECT_EQ(line.find('\n'), std::string::npos);
  const Event back = EventLog::parse_event(line);
  EXPECT_EQ(back.seq, ev.seq);
  EXPECT_EQ(back.step, ev.step);
  EXPECT_DOUBLE_EQ(back.wall_s, ev.wall_s);
  EXPECT_EQ(back.category, ev.category);
  EXPECT_EQ(back.kind, ev.kind);
  EXPECT_EQ(back.severity, ev.severity);
  EXPECT_EQ(back.detail, ev.detail);
  EXPECT_DOUBLE_EQ(back.value("imbalance_before"), 1.8);
  EXPECT_DOUBLE_EQ(back.value("imbalance_after"), 1.1);

  EXPECT_THROW(EventLog::parse_event("not json"), std::runtime_error);
  EXPECT_THROW(EventLog::parse_event("{\"seq\": 1}"),
               std::runtime_error);  // no schema
  EXPECT_THROW(EventLog::parse_event("{\"schema\": \"other.v9\", \"seq\": 1}"),
               std::runtime_error);
}

TEST(EventLog, DurableFileAndTolerantReader) {
  const std::string path = "test_event_log.jsonl";
  std::remove(path.c_str());
  {
    EventLogConfig cfg;
    cfg.path = path;
    EventLog log(cfg);
    log.publish("lifecycle", "run_start", EventSeverity::Info, -1, "demo");
    log.publish("resil", "crash", EventSeverity::Critical, 5, "rank 2 down",
                {{"rank", 2}});
    // Flushed per event: the file is complete NOW, with the log still live.
    std::size_t skipped = 0;
    const auto mid = EventLog::read_events_jsonl(path, &skipped);
    EXPECT_EQ(mid.size(), 2u);
    EXPECT_EQ(skipped, 0u);
  }

  // Contaminate: malformed line + foreign-schema line + blank line.
  {
    std::ofstream os(path, std::ios::app);
    os << "{{{ not json\n";
    os << "{\"schema\": \"mrpic.metrics.v1\", \"step\": 1}\n";
    os << "\n";
  }
  std::size_t skipped = 0;
  const auto events = EventLog::read_events_jsonl(path, &skipped);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(skipped, 2u);  // blank lines are not counted, junk lines are
  EXPECT_EQ(events[0].kind, "run_start");
  EXPECT_EQ(events[1].severity, EventSeverity::Critical);
  EXPECT_DOUBLE_EQ(events[1].value("rank"), 2.0);
  // Disk order equals seq order (the ordering contract).
  EXPECT_LT(events[0].seq, events[1].seq);
  EXPECT_LE(events[0].wall_s, events[1].wall_s);

  EXPECT_THROW(EventLog::read_events_jsonl("no_such_file.jsonl"),
               std::runtime_error);
  std::remove(path.c_str());
}

TEST(EventLog, AppendModeContinuesAcrossIncarnations) {
  const std::string path = "test_event_log_append.jsonl";
  std::remove(path.c_str());
  {
    EventLogConfig cfg;
    cfg.path = path;
    EventLog log(cfg);
    log.publish("lifecycle", "run_start", EventSeverity::Info, -1);
  }
  {
    EventLogConfig cfg;
    cfg.path = path;
    cfg.append = true;  // replay incarnation keeps the earlier timeline
    EventLog log(cfg);
    log.publish("resil", "replay", EventSeverity::Warn, 4);
  }
  const auto events = EventLog::read_events_jsonl(path);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, "run_start");
  EXPECT_EQ(events[1].kind, "replay");
  std::remove(path.c_str());
}

TEST(EventLog, SeverityNamesRoundTripAndTolerate) {
  EXPECT_EQ(event_severity_from_string(to_string(EventSeverity::Info)),
            EventSeverity::Info);
  EXPECT_EQ(event_severity_from_string(to_string(EventSeverity::Warn)),
            EventSeverity::Warn);
  EXPECT_EQ(event_severity_from_string(to_string(EventSeverity::Critical)),
            EventSeverity::Critical);
  // Unknown names degrade to Info instead of throwing (reader tolerance).
  EXPECT_EQ(event_severity_from_string("catastrophic"), EventSeverity::Info);
}

} // namespace
} // namespace mrpic::obs
